// Package p2pmpi is a Go reproduction of P2P-MPI's co-allocation system
// as published in "Large-Scale Experiment of Co-allocation Strategies
// for Peer-to-Peer SuperComputing in P2P-MPI" (Genaud & Rattanapoka,
// HPGC/IPDPS 2008).
//
// The package is a facade over the internal subsystems:
//
//   - the open placement-strategy registry — the paper's co-allocation
//     strategies (spread, concentrate), the mixed extension and the
//     random/minsites/comm-aware policies — plus the replica-safe rank
//     assignment (internal/core);
//   - the P2P middleware: supernode, MPD daemons, reservation services
//     and the full 8-step submission protocol (internal/overlay,
//     internal/mpd, internal/reservation);
//   - an MPJ-like MPI library with selectable collective algorithms and
//     transparent process replication (internal/mpi);
//   - the NAS EP and IS kernels, both real and as calibrated
//     virtual-time models (internal/nas);
//   - the modelled Grid'5000 testbed, synthetic grid topologies that
//     scale worlds to thousands of hosts, and the experiment harness
//     that regenerates every table and figure of the paper plus the
//     beyond-the-paper concurrency and scale sweeps (internal/grid,
//     internal/simnet, internal/exp).
//
// Everything runs in two worlds from the same code: real TCP sockets on
// a wall clock (vtime.Real + transport.TCP), or the deterministic
// virtual-time Grid'5000 simulation used by the evaluation.
package p2pmpi

import (
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/exp"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Strategy names an allocation policy (§4.3 of the paper plus the
// registered extensions); it is the key of the placement registry.
type Strategy = core.Strategy

// The built-in strategies.
const (
	Spread      = core.Spread
	Concentrate = core.Concentrate
	Mixed       = core.Mixed
	Random      = core.Random
	MinSites    = core.MinSites
	CommAware   = core.CommAware
)

// ParseStrategy converts a command-line name into a Strategy; it accepts
// exactly the registered names (see PlacementNames).
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Placement is the open placement-policy interface: implement Name and
// Allocate, register the policy, and it becomes selectable by name in
// JobSpec, the scheduler and both CLIs.
type Placement = core.Placement

// RegisterPlacement adds (or replaces) a placement policy in the
// registry under p.Name().
func RegisterPlacement(p Placement) { core.Register(p) }

// LookupPlacement resolves a strategy name to its registered policy.
func LookupPlacement(name string) (Placement, error) { return core.Lookup(name) }

// PlacementNames lists every registered strategy name in sorted order.
func PlacementNames() []string { return core.Names() }

// Strategies returns every registered strategy, for ranging in
// experiments and tools.
func Strategies() []Strategy { return core.Strategies() }

// Allocation core: exported for direct use of the paper's algorithms.
type (
	// HostSlot is one reserved host in ascending-latency order.
	HostSlot = core.HostSlot
	// Assignment is a computed process placement.
	Assignment = core.Assignment
	// Proc is one (rank, replica) pair on a host.
	Proc = core.Proc
)

// Allocate distributes n×r processes over the selected hosts with the
// given strategy and assigns MPI ranks such that no two replicas of a
// rank share a host.
func Allocate(slist []HostSlot, n, r int, s Strategy) (*Assignment, error) {
	return core.Allocate(slist, n, r, s)
}

// Feasible checks the paper's feasibility conditions (§4.2 step 6).
func Feasible(slist []HostSlot, n, r int) error { return core.Feasible(slist, n, r) }

// Middleware types.
type (
	// JobSpec mirrors `p2pmpirun -n N -r R -a strategy prog args...`.
	JobSpec = mpd.JobSpec
	// JobResult is the submitter's view of a finished job.
	JobResult = mpd.JobResult
	// Program is an MPI application body run once per process.
	Program = mpd.Program
	// Env is the per-process execution environment.
	Env = mpd.Env
	// MPD is the per-host daemon.
	MPD = mpd.MPD
	// MPDConfig configures a daemon.
	MPDConfig = mpd.Config
	// MPDShared is the deployment-invariant half of MPDConfig; one
	// block may back every daemon of a deployment.
	MPDShared = mpd.Shared
	// HostProfile models host hardware for virtual-time runs.
	HostProfile = mpd.HostProfile
	// PeerInfo identifies a peer and its service addresses.
	PeerInfo = proto.PeerInfo
	// Supernode is the bootstrap/membership daemon — standalone, or one
	// member of a federated K-shard tier (SupernodeConfig.Federation).
	Supernode = overlay.Supernode
	// SupernodeConfig configures a supernode.
	SupernodeConfig = overlay.SupernodeConfig
	// SupernodeStats counts a supernode's membership-plane work
	// (gossip exchanges, fostered/redirected registrations, staleness).
	SupernodeStats = overlay.SupernodeStats
)

// ShardAssign returns a host's home shard in a K-shard supernode
// federation: rendezvous hashing, the same function daemons and
// supernodes compute independently.
func ShardAssign(hostID string, k int) int { return overlay.ShardAssign(hostID, k) }

// NewMPD creates an MPD daemon over the given runtime and network.
func NewMPD(rt vtime.Runtime, net transport.Network, cfg MPDConfig) *MPD {
	return mpd.New(rt, net, cfg)
}

// NewSupernode creates a supernode daemon.
func NewSupernode(rt vtime.Runtime, net transport.Network, cfg SupernodeConfig) *Supernode {
	return overlay.NewSupernode(rt, net, cfg)
}

// Hostname is the paper's experiment program: each process echoes the
// name of the host it runs on.
func Hostname(env *Env) error { return mpd.Hostname(env) }

// MPI library surface.
type (
	// Comm is a per-process communicator.
	Comm = mpi.Comm
	// CommConfig configures a process's communicator.
	CommConfig = mpi.Config
	// Data is a message body (bytes and/or modelled size).
	Data = mpi.Data
	// Slot locates one process in the application.
	Slot = mpi.Slot
	// Algorithms selects collective implementations.
	Algorithms = mpi.Algorithms
)

// MPI wildcards and operators.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
	OpSum     = mpi.OpSum
	OpMax     = mpi.OpMax
	OpMin     = mpi.OpMin
	OpProd    = mpi.OpProd
)

// Join brings a process into an application world.
func Join(cfg CommConfig) (*Comm, error) { return mpi.Join(cfg) }

// RunLocal executes fn as n in-process MPI ranks — the quickest way to
// use the MPI library without the middleware.
func RunLocal(rt vtime.Runtime, net transport.Network, host string, basePort, n int,
	algs Algorithms, fn func(c *Comm) error) []error {
	return mpi.RunLocal(rt, net, host, basePort, n, algs, fn)
}

// Runtimes and transports.
type (
	// Runtime abstracts the clock and goroutine spawning.
	Runtime = vtime.Runtime
	// Scheduler is the deterministic virtual-time runtime.
	Scheduler = vtime.Scheduler
	// Network abstracts listeners and dialing.
	Network = transport.Network
)

// RealRuntime returns the wall-clock runtime.
func RealRuntime() Runtime { return vtime.Real{} }

// NewScheduler returns a fresh virtual-time scheduler.
func NewScheduler() *Scheduler { return vtime.New() }

// TCPNetwork returns the real TCP transport.
func TCPNetwork() Network { return transport.TCP{} }

// Grid'5000 model, synthetic topologies and the experiment harness.
type (
	// Grid is a testbed model: Table 1 or a generated topology.
	Grid = grid.Grid
	// TopologySpec describes a testbed to build; the zero value is the
	// paper's Grid'5000, synthetic specs scale to thousands of hosts.
	TopologySpec = grid.TopologySpec
	// World is a fully deployed simulated testbed.
	World = exp.World
	// WorldOptions tunes a simulated world (WorldOptions.Topology
	// selects the testbed).
	WorldOptions = exp.Options
)

// Grid5000 builds the paper's Table 1 testbed model.
func Grid5000() *Grid { return grid.Grid5000() }

// SyntheticGrid generates a testbed from a synthetic topology spec.
func SyntheticGrid(spec TopologySpec) *Grid { return grid.Synthetic(spec) }

// ParseTopologySpec parses a -grid style topology string ("grid5000" or
// "synth:S=12,H=400,C=2,seed=7").
func ParseTopologySpec(s string) (TopologySpec, error) { return grid.ParseTopologySpec(s) }

// NewSimulatedGrid builds (without booting) the complete simulated
// deployment described by opts.Topology — one compute peer per grid
// host (350 for the default Grid'5000), a supernode and a submitter
// frontend.
func NewSimulatedGrid(opts WorldOptions) *World { return exp.NewWorld(opts) }

// DefaultWorldOptions returns the harness defaults for a seed.
func DefaultWorldOptions(seed int64) WorldOptions { return exp.DefaultOptions(seed) }

// Fault-injection surface (see internal/churn): seeded host churn on
// simulated worlds.
type (
	// ChurnConfig describes a failure model: per-host MTBF/MTTR with
	// exponential or Weibull lifetimes, optional correlated whole-site
	// outages, warmup and horizon.
	ChurnConfig = churn.Config
	// ChurnDriver replays an injected timeline; Stop reports what was
	// injected.
	ChurnDriver = churn.Driver
)

// Spin is the built-in fixed-duration program ("spin 90" runs each
// process for 90 virtual seconds) used by the churn experiments.
func Spin(env *Env) error { return mpd.Spin(env) }

// NAS benchmark surface.
type (
	// EPClass and ISClass parameterize the kernels.
	EPClass = nas.EPClass
	ISClass = nas.ISClass
)

// NAS program constructors (real kernels, verified against NPB).
func EPProgram(cls EPClass) Program { return nas.EPProgram(cls) }

// ISProgram returns the real IS benchmark program.
func ISProgram(cls ISClass) Program { return nas.ISProgram(cls) }

// NAS classes evaluated by the paper.
var (
	EPClassS = nas.EPClassS
	EPClassW = nas.EPClassW
	EPClassA = nas.EPClassA
	EPClassB = nas.EPClassB
	ISClassS = nas.ISClassS
	ISClassW = nas.ISClassW
	ISClassA = nas.ISClassA
	ISClassB = nas.ISClassB
)

// Latency estimators (the paper's future-work study).
type LatencyEstimator = latency.Estimator

// Estimator kinds.
const (
	EstimatorLast   = latency.KindLast
	EstimatorMean   = latency.KindMean
	EstimatorEWMA   = latency.KindEWMA
	EstimatorMedian = latency.KindMedian
	EstimatorMin    = latency.KindMin
)

// NewLatencyEstimator constructs an estimator of the given kind.
func NewLatencyEstimator(kind latency.Kind, window int) (LatencyEstimator, error) {
	return latency.New(kind, window)
}

// Version is the release tag of this reproduction.
const Version = "1.0.0"

// DefaultJobTimeout bounds a submission when JobSpec.Timeout is zero.
const DefaultJobTimeout = 5 * time.Minute
