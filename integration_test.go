package p2pmpi

// End-to-end integration over real TCP on localhost: the same daemons,
// protocol and MPI library that the virtual-time experiments use, but on
// OS sockets and the wall clock — the mpiboot / p2pmpirun deployment of
// the paper in miniature.

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// freePort grabs an OS-assigned TCP port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func tcpPrograms() map[string]mpd.Program {
	return map[string]mpd.Program{
		"hostname": mpd.Hostname,
		"ep-tiny": func(env *mpd.Env) error {
			c, err := env.Comm()
			if err != nil {
				return err
			}
			lo := int64(env.Rank) * (1 << 14) / int64(env.Size)
			hi := int64(env.Rank+1) * (1 << 14) / int64(env.Size)
			r := nas.EPChunk(lo, hi)
			sums, err := c.AllreduceF64([]float64{r.Sx, r.Sy}, mpi.OpSum)
			if err != nil {
				return err
			}
			fmt.Fprintf(&env.Out, "%.6f %.6f", sums[0], sums[1])
			return nil
		},
		"is-T": nas.ISProgram(nas.ISClassT),
	}
}

// tcpWorld boots a supernode + k peers + submitter over localhost TCP.
type tcpWorld struct {
	sn        *overlay.Supernode
	peers     []*mpd.MPD
	submitter *mpd.MPD
}

func newTCPWorld(t *testing.T, k, p int) *tcpWorld {
	t.Helper()
	rt := vtime.Real{}
	tcp := transport.TCP{}

	snAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	w := &tcpWorld{}
	w.sn = overlay.NewSupernode(rt, tcp, overlay.SupernodeConfig{Addr: snAddr})
	if err := w.sn.Start(); err != nil {
		t.Fatalf("supernode: %v", err)
	}
	t.Cleanup(w.sn.Close)

	mk := func(id string, pLimit, procBase int) *mpd.MPD {
		d := mpd.New(rt, tcp, mpd.Config{
			Self: proto.PeerInfo{
				ID: id, Site: "local",
				MPDAddr: fmt.Sprintf("127.0.0.1:%d", freePort(t)),
				RSAddr:  fmt.Sprintf("127.0.0.1:%d", freePort(t)),
			},
			P:    pLimit,
			Seed: int64(len(id)),
			Shared: &mpd.Shared{
				SupernodeAddr: snAddr,
				Programs:      tcpPrograms(),
				// Tight loops so the world converges within test time: all
				// daemons boot concurrently and discover each other through
				// the refresh cycle.
				PingInterval:    300 * time.Millisecond,
				RefreshInterval: 500 * time.Millisecond,
				ReserveTimeout:  2 * time.Second,
				ProcBasePort:    procBase,
			},
		})
		if err := d.Start(); err != nil {
			t.Fatalf("mpd %s: %v", id, err)
		}
		t.Cleanup(d.Close)
		return d
	}
	for i := 0; i < k; i++ {
		// Distinct proc-port windows per peer: all share 127.0.0.1.
		w.peers = append(w.peers, mk(fmt.Sprintf("peer%02d", i), p, 42000+i*500))
	}
	w.submitter = mk("submitter", 0, 49000)

	// Let registrations and a ping round settle on the wall clock.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if w.submitter.Cache().Size() == k {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := w.submitter.Cache().Size(); got != k {
		t.Fatalf("submitter cache has %d peers, want %d", got, k)
	}
	time.Sleep(500 * time.Millisecond) // one ping round for latencies
	return w
}

func TestTCPHostnameJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock sleeps")
	}
	w := newTCPWorld(t, 3, 2)
	res, err := w.submitter.Submit(mpd.JobSpec{
		Program: "hostname", N: 4, R: 1, Strategy: Spread,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 || len(res.Results) != 4 {
		t.Fatalf("results: %+v", res.Results)
	}
	hosts := map[string]int{}
	for _, r := range res.Results {
		if !strings.HasPrefix(string(r.Output), "peer") {
			t.Fatalf("output %q", r.Output)
		}
		hosts[string(r.Output)]++
	}
	// Spread over 3 peers with P=2: 4 = 2+1+1.
	if len(hosts) != 3 {
		t.Fatalf("spread used %d hosts: %v", len(hosts), hosts)
	}
}

func TestTCPMPIProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock sleeps")
	}
	w := newTCPWorld(t, 3, 2)
	res, err := w.submitter.Submit(mpd.JobSpec{
		Program: "ep-tiny", N: 4, R: 1, Strategy: Concentrate,
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	// Every rank reports the same globally-reduced sums, equal to the
	// sequential computation.
	whole := nas.EPChunk(0, 1<<14)
	want := fmt.Sprintf("%.6f %.6f", whole.Sx, whole.Sy)
	for _, r := range res.Results {
		if string(r.Output) != want {
			t.Fatalf("rank %d output %q, want %q", r.Rank, r.Output, want)
		}
	}
}

func TestTCPISKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock sleeps")
	}
	w := newTCPWorld(t, 3, 2)
	res, err := w.submitter.Submit(mpd.JobSpec{
		Program: "is-T", N: 3, R: 1, Strategy: Spread,
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	for _, r := range res.Results {
		if !strings.Contains(string(r.Output), "verified") {
			t.Fatalf("rank %d output %q", r.Rank, r.Output)
		}
	}
}

func TestTCPTransportFraming(t *testing.T) {
	// Direct transport-level check: big frames, virtual sizes, timeouts.
	tcp := transport.TCP{}
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		if len(m.Payload) != 1<<20 || m.Virtual != 777 {
			done <- fmt.Errorf("got %d bytes virtual %d", len(m.Payload), m.Virtual)
			return
		}
		if err := c.Send(transport.Message{Payload: []byte("ack")}); err != nil {
			done <- err
			return
		}
		_, err = c.Recv() // hold the conn open until the client closes
		done <- nil
		_ = err
	}()

	c, err := tcp.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := c.Send(transport.Message{Payload: big, Virtual: 777}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.RecvTimeout(5 * time.Second)
	if err != nil || string(reply.Payload) != "ack" {
		t.Fatalf("reply %q err %v", reply.Payload, err)
	}
	// Timeout path: the server is holding the conn open, silent.
	if _, err := c.RecvTimeout(50 * time.Millisecond); err != transport.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	c.Close() // unblocks the server's final Recv
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	tcp := transport.TCP{}
	if _, err := tcp.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestFacadeSurface(t *testing.T) {
	// The facade aliases must interoperate with the internal packages.
	g := Grid5000()
	if g.TotalHosts() != 350 {
		t.Fatal("facade grid broken")
	}
	slist := []HostSlot{{ID: "a", P: 2}, {ID: "b", P: 2}}
	asg, err := Allocate(slist, 3, 1, Concentrate)
	if err != nil || asg.TotalProcs() != 3 {
		t.Fatalf("facade allocate: %v %+v", err, asg)
	}
	if _, err := ParseStrategy("spread"); err != nil {
		t.Fatal(err)
	}
	if err := Feasible(slist, 10, 1); err == nil {
		t.Fatal("feasible on 4 capacity for 10 procs")
	}
	est, err := NewLatencyEstimator(EstimatorEWMA, 8)
	if err != nil {
		t.Fatal(err)
	}
	est.Add(time.Millisecond)
	if est.Estimate() != time.Millisecond {
		t.Fatal("estimator broken")
	}
}

func TestFacadeRunLocalRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	base := freePort(t)
	errs := RunLocal(RealRuntime(), TCPNetwork(), "127.0.0.1", base, 4, Algorithms{},
		func(c *Comm) error {
			sum, err := c.AllreduceF64([]float64{float64(c.Rank())}, OpSum)
			if err != nil {
				return err
			}
			if sum[0] != 6 {
				return fmt.Errorf("sum = %v", sum[0])
			}
			return nil
		})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
