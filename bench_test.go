package p2pmpi

// One benchmark per table/figure of the paper (the regeneration targets
// indexed in DESIGN.md §4) plus the ablation benches for the design
// choices DESIGN.md §5 calls out. Absolute wall time here measures the
// simulator; the *virtual* quantities the paper reports are attached via
// b.ReportMetric.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/exp"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/stats"
	"p2pmpi/internal/vtime"
)

// BenchmarkTable1Inventory regenerates Table 1.
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := grid.Grid5000()
		if g.TotalHosts() != 350 || g.TotalCores() != 1040 {
			b.Fatal("inventory mismatch")
		}
		_ = exp.RenderTable1()
	}
	b.ReportMetric(350, "hosts")
	b.ReportMetric(1040, "cores")
}

// BenchmarkFig2Concentrate regenerates Figure 2 (both panels: hosts and
// cores per site under concentrate, n = 100..600).
func BenchmarkFig2Concentrate(b *testing.B) {
	var last []exp.SitePoint
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig2(exp.DefaultOptions(42), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	// Headline check values from the paper: nancy saturates at 240 cores
	// and lyon appears at n=250.
	for _, p := range last {
		if p.N == 250 {
			b.ReportMetric(float64(p.CoresBySite[grid.Nancy]), "nancy-cores@250")
			b.ReportMetric(float64(p.HostsBySite[grid.Lyon]), "lyon-hosts@250")
		}
	}
}

// BenchmarkFig3Spread regenerates Figure 3 (spread allocation).
func BenchmarkFig3Spread(b *testing.B) {
	var last []exp.SitePoint
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig3(exp.DefaultOptions(42), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	for _, p := range last {
		if p.N == 400 {
			// The paper's "stair at 400": nancy cores jump to 60+50.
			b.ReportMetric(float64(p.CoresBySite[grid.Nancy]), "nancy-cores@400")
		}
	}
}

// BenchmarkFig4EP regenerates Figure 4 left (EP CLASS B times).
func BenchmarkFig4EP(b *testing.B) {
	var last []exp.TimePoint
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig4EP(exp.DefaultOptions(42), nil, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	for _, p := range last {
		if p.N == 32 {
			b.ReportMetric(p.Seconds, fmt.Sprintf("%s-sec@32", p.Strategy))
		}
	}
}

// BenchmarkFig4IS regenerates Figure 4 right (IS CLASS B times).
func BenchmarkFig4IS(b *testing.B) {
	var last []exp.TimePoint
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig4IS(exp.DefaultOptions(42), nil, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	for _, p := range last {
		if p.N == 64 {
			b.ReportMetric(p.Seconds, fmt.Sprintf("%s-sec@64", p.Strategy))
		}
	}
}

// BenchmarkAblationLatencyEstimators grades every estimator's ranking
// quality (Kendall tau against the true site order) under the jitter
// model — the paper's stated future work on measurement accuracy.
func BenchmarkAblationLatencyEstimators(b *testing.B) {
	base := []time.Duration{
		87 * time.Microsecond / 2,
		10576 * time.Microsecond / 2,
		11612 * time.Microsecond / 2,
		12674 * time.Microsecond / 2,
		13204 * time.Microsecond / 2,
		17167 * time.Microsecond / 2,
	}
	truth := make([]float64, len(base))
	for i, d := range base {
		truth[i] = float64(d)
	}
	for _, kind := range latency.Kinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			var tauSum float64
			for i := 0; i < b.N; i++ {
				tb := latency.NewTable(kind, 8)
				for round := 0; round < 8; round++ {
					for s, d := range base {
						j := rng.NormFloat64() * (float64(d)*0.08 + float64(250*time.Microsecond))
						if j < 0 {
							j = -j
						}
						tb.Observe(fmt.Sprintf("site%d", s), d+time.Duration(j))
					}
				}
				est := make([]float64, len(base))
				for s := range base {
					est[s] = float64(tb.Estimate(fmt.Sprintf("site%d", s)))
				}
				tauSum += stats.KendallTau(truth, est)
			}
			b.ReportMetric(tauSum/float64(b.N), "kendall-tau")
		})
	}
}

// BenchmarkAblationCollectives compares the collective algorithm
// implementations on a 32-rank virtual world, reporting virtual
// completion time per operation.
func BenchmarkAblationCollectives(b *testing.B) {
	cases := []struct {
		name string
		algs mpi.Algorithms
		op   func(c *mpi.Comm) error
	}{
		{"allreduce/recursive-doubling", mpi.Algorithms{Allreduce: mpi.AllreduceRecursiveDoubling},
			func(c *mpi.Comm) error {
				_, err := c.Allreduce(mpi.Data{Virtual: 1024}, mpi.VirtualCombiner)
				return err
			}},
		{"allreduce/reduce-bcast", mpi.Algorithms{Allreduce: mpi.AllreduceReduceBcast},
			func(c *mpi.Comm) error {
				_, err := c.Allreduce(mpi.Data{Virtual: 1024}, mpi.VirtualCombiner)
				return err
			}},
		{"bcast/binomial", mpi.Algorithms{Bcast: mpi.BcastBinomial},
			func(c *mpi.Comm) error {
				_, err := c.Bcast(0, mpi.Data{Virtual: 1024})
				return err
			}},
		{"bcast/linear", mpi.Algorithms{Bcast: mpi.BcastLinear},
			func(c *mpi.Comm) error {
				_, err := c.Bcast(0, mpi.Data{Virtual: 1024})
				return err
			}},
		{"alltoall/pairwise", mpi.Algorithms{Alltoall: mpi.AlltoallPairwise}, alltoallOp},
		{"alltoall/linear", mpi.Algorithms{Alltoall: mpi.AlltoallLinear}, alltoallOp},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var virtualTotal time.Duration
			for i := 0; i < b.N; i++ {
				virtualTotal += collectiveVirtualTime(b, tc.algs, tc.op)
			}
			b.ReportMetric(float64(virtualTotal.Microseconds())/float64(b.N), "virtual-us/op")
		})
	}
}

func alltoallOp(c *mpi.Comm) error {
	parts := make([]mpi.Data, c.Size())
	for i := range parts {
		parts[i] = mpi.Data{Virtual: 1024}
	}
	_, err := c.Alltoall(parts)
	return err
}

// collectiveVirtualTime runs one collective over 32 ranks spread across
// 4 simulated sites and returns the virtual time it took.
func collectiveVirtualTime(b *testing.B, algs mpi.Algorithms, op func(c *mpi.Comm) error) time.Duration {
	b.Helper()
	s := vtime.New()
	defer s.Shutdown()
	hostSite := make(map[string]string)
	const n = 32
	for i := 0; i < n; i++ {
		hostSite[fmt.Sprintf("h%02d", i)] = fmt.Sprintf("site%d", i%4)
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: 3 * time.Millisecond},
		simnet.Config{Seed: 9, NICBps: 1e9})

	var elapsed time.Duration
	s.Go("bench", func() {
		slots := make([]mpi.Slot, n)
		for i := range slots {
			h := fmt.Sprintf("h%02d", i)
			slots[i] = mpi.Slot{Rank: i, Global: i, HostID: h, Addr: fmt.Sprintf("%s:%d", h, 46000+i)}
		}
		mb := s.NewMailbox()
		start := s.Elapsed()
		for i := 0; i < n; i++ {
			slot := slots[i]
			s.Go("rank", func() {
				c, err := mpi.Join(mpi.Config{
					Self: slot, Slots: slots, N: n, R: 1,
					Net: net.Node(slot.HostID), RT: s, Algorithms: algs,
				})
				if err != nil {
					mb.Push(err)
					return
				}
				defer c.Close()
				mb.Push(op(c))
			})
		}
		for i := 0; i < n; i++ {
			if v, _ := mb.Pop(); v != nil {
				b.Errorf("rank failed: %v", v)
			}
		}
		elapsed = s.Elapsed() - start
	})
	s.Wait()
	return elapsed
}

// BenchmarkAblationMixedStrategy contrasts the three strategies on the
// same 250-process request over the Table 1 host list, reporting how
// many hosts and sites each uses.
func BenchmarkAblationMixedStrategy(b *testing.B) {
	g := grid.Grid5000()
	var slist []core.HostSlot
	for i, h := range g.Hosts {
		slist = append(slist, core.HostSlot{
			ID: h.ID, Site: h.Site, P: h.Cores,
			Latency: g.SiteRTT(grid.Nancy, h.Site) + time.Duration(i),
		})
	}
	for _, st := range []core.Strategy{core.Spread, core.Concentrate, core.Mixed} {
		st := st
		b.Run(st.String(), func(b *testing.B) {
			var hosts, sites int
			for i := 0; i < b.N; i++ {
				asg, err := core.Allocate(slist, 250, 1, st)
				if err != nil {
					b.Fatal(err)
				}
				hosts = asg.UsedHosts()
				sites = len(asg.HostsBySite())
			}
			b.ReportMetric(float64(hosts), "hosts-used")
			b.ReportMetric(float64(sites), "sites-used")
		})
	}
}

// BenchmarkAblationOverbooking measures allocation success against dead
// peers for different overbooking factors: the §4.2 "overbooking to
// anticipate unavailable hosts" design choice.
func BenchmarkAblationOverbooking(b *testing.B) {
	for _, factor := range []float64{1.0, 1.2, 1.5} {
		factor := factor
		b.Run(fmt.Sprintf("factor-%.1f", factor), func(b *testing.B) {
			success := 0
			for i := 0; i < b.N; i++ {
				if overbookTrial(b, factor, int64(i)) {
					success++
				}
			}
			b.ReportMetric(float64(success)/float64(b.N), "success-rate")
		})
	}
}

// overbookTrial books 8 processes on 16 peers of which 4 are dead, with
// the candidate fan-out bounded by the overbooking factor.
func overbookTrial(b *testing.B, factor float64, seed int64) bool {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	const peers, dead, n = 16, 4, 8
	deadSet := make(map[int]bool)
	for len(deadSet) < dead {
		deadSet[rng.Intn(peers)] = true
	}
	book := int(float64(n)*factor + 0.5)
	if book > peers {
		book = peers
	}
	alive := 0
	for i := 0; i < book; i++ {
		if !deadSet[i] {
			alive++
		}
	}
	return alive >= n
}
