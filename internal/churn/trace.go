package churn

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DistKind selects a lifetime distribution family.
type DistKind string

const (
	// DistExponential is the memoryless baseline: constant hazard rate,
	// the classic MTBF/MTTR renewal model.
	DistExponential DistKind = "exp"
	// DistWeibull with shape < 1 is heavy-tailed (many short lifetimes,
	// a few very long ones), the shape grid operational studies report
	// for real node uptime. The configured mean is preserved: the scale
	// parameter is derived as mean / Γ(1 + 1/shape).
	DistWeibull DistKind = "weibull"
)

// ParseDistKind validates a -dist command-line value.
func ParseDistKind(s string) (DistKind, error) {
	switch DistKind(s) {
	case "", DistExponential:
		return DistExponential, nil
	case DistWeibull:
		return DistWeibull, nil
	}
	return "", fmt.Errorf("churn: unknown distribution %q (want exp or weibull)", s)
}

// Config describes a failure model. The zero value injects nothing
// (MTBF 0 disables per-host churn, SiteMTBF 0 disables site outages).
type Config struct {
	// Seed drives every lifetime draw. Traces are a pure function of
	// (Seed, host set, Config): the same inputs always replay the same
	// failures.
	Seed int64
	// MTBF is the mean uptime between failures of one host; 0 disables
	// per-host failures.
	MTBF time.Duration
	// MTTR is the mean repair (down) time of one host (default MTBF/10).
	MTTR time.Duration
	// UpDist and DownDist select the lifetime distribution families
	// (default exponential for both).
	UpDist, DownDist DistKind
	// WeibullShape is the shape parameter used by any Weibull
	// distribution (default 0.7, heavy-tailed).
	WeibullShape float64
	// SiteMTBF and SiteMTTR enable correlated whole-site outages: every
	// host of the struck site goes down together (switch or power-domain
	// failure). 0 disables them. SiteMTTR defaults to SiteMTBF/20.
	SiteMTBF, SiteMTTR time.Duration
	// Warmup is a quiet period before the first failure can strike,
	// letting the deployment boot and warm its caches.
	Warmup time.Duration
	// Horizon bounds the generated timeline (offsets from driver start).
	Horizon time.Duration
}

func (c Config) withDefaults() Config {
	if c.MTTR <= 0 {
		c.MTTR = c.MTBF / 10
	}
	if c.MTTR <= 0 {
		c.MTTR = time.Minute
	}
	if c.UpDist == "" {
		c.UpDist = DistExponential
	}
	if c.DownDist == "" {
		c.DownDist = DistExponential
	}
	if c.WeibullShape <= 0 {
		c.WeibullShape = 0.7
	}
	if c.SiteMTBF > 0 && c.SiteMTTR <= 0 {
		c.SiteMTTR = c.SiteMTBF / 20
	}
	return c
}

// Event is one transition on the injected timeline.
type Event struct {
	// At is the virtual-time offset from driver start.
	At time.Duration
	// Host is the affected host.
	Host string
	// Down is true for a failure, false for a repair.
	Down bool
	// Site is set when the event belongs to a correlated whole-site
	// outage rather than an individual host failure.
	Site string
}

// subSeed derives a per-entity RNG seed from the master seed and a
// stable label, so every host's renewal process is independent of the
// order hosts are supplied in.
func subSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return seed ^ int64(h.Sum64())
}

// draw samples one lifetime from the configured family. The result is
// never negative; a zero draw is possible and harmless (an instant
// transition).
func draw(rng *rand.Rand, kind DistKind, mean time.Duration, shape float64) time.Duration {
	m := float64(mean)
	u := 1 - rng.Float64() // (0, 1]
	var x float64
	switch kind {
	case DistWeibull:
		scale := m / math.Gamma(1+1/shape)
		x = scale * math.Pow(-math.Log(u), 1/shape)
	default:
		x = -m * math.Log(u)
	}
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	return time.Duration(x)
}

// Trace expands the failure model into a sorted event timeline for the
// given hosts. siteOf maps a host to its site for correlated outages
// (nil disables them regardless of SiteMTBF). The result is
// deterministic in (hosts-as-a-set, cfg): permuting the host slice
// yields a byte-identical trace.
func Trace(hosts []string, siteOf func(string) string, cfg Config) []Event {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return nil
	}
	var out []Event

	if cfg.MTBF > 0 {
		for _, h := range hosts {
			rng := rand.New(rand.NewSource(subSeed(cfg.Seed, "host:"+h)))
			t := cfg.Warmup + draw(rng, cfg.UpDist, cfg.MTBF, cfg.WeibullShape)
			for t < cfg.Horizon {
				out = append(out, Event{At: t, Host: h, Down: true})
				d := draw(rng, cfg.DownDist, cfg.MTTR, cfg.WeibullShape)
				if t+d >= cfg.Horizon {
					break // stays down past the horizon
				}
				t += d
				out = append(out, Event{At: t, Host: h, Down: false})
				t += draw(rng, cfg.UpDist, cfg.MTBF, cfg.WeibullShape)
			}
		}
	}

	if cfg.SiteMTBF > 0 && siteOf != nil {
		bySite := make(map[string][]string)
		for _, h := range hosts {
			if s := siteOf(h); s != "" {
				bySite[s] = append(bySite[s], h)
			}
		}
		sites := make([]string, 0, len(bySite))
		for s := range bySite {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			members := append([]string(nil), bySite[s]...)
			sort.Strings(members)
			rng := rand.New(rand.NewSource(subSeed(cfg.Seed, "site:"+s)))
			t := cfg.Warmup + draw(rng, cfg.UpDist, cfg.SiteMTBF, cfg.WeibullShape)
			for t < cfg.Horizon {
				for _, h := range members {
					out = append(out, Event{At: t, Host: h, Down: true, Site: s})
				}
				d := draw(rng, cfg.DownDist, cfg.SiteMTTR, cfg.WeibullShape)
				if t+d >= cfg.Horizon {
					break
				}
				t += d
				for _, h := range members {
					out = append(out, Event{At: t, Host: h, Down: false, Site: s})
				}
				t += draw(rng, cfg.UpDist, cfg.SiteMTBF, cfg.WeibullShape)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Down != b.Down {
			return a.Down // failures apply before repairs at an instant
		}
		return a.Site < b.Site
	})
	return out
}
