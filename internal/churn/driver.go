package churn

import (
	"sync"
	"time"

	"p2pmpi/internal/vtime"
)

// Hooks receive the deduplicated liveness transitions of the replay.
// They run on the driver's actor, one at a time, in timeline order —
// implementations may touch scheduler-bound state freely but must not
// block forever.
type Hooks struct {
	// Down fires when a host loses its last liveness cause (first
	// failure while up).
	Down func(host string)
	// Up fires when a host regains liveness (every overlapping cause —
	// own failure and site outage — has cleared).
	Up func(host string)
}

// Stats summarises an injection run.
type Stats struct {
	// Failures and Restores count deduplicated host transitions actually
	// fired (a host failing inside a site outage does not fail twice).
	Failures, Restores int
	// SiteOutages counts whole-site outage onsets.
	SiteOutages int
	// HostDownTime accumulates per-host downtime, summed over hosts.
	HostDownTime time.Duration
	// Observed is the injection span from Start to Stop (or now).
	Observed time.Duration
	// Hosts is the platform host count DownFraction normalizes over
	// (SetHostCount; defaults to the distinct hosts in the trace —
	// an overestimate of downtime whenever some hosts never failed).
	Hosts int
}

// DownFraction returns HostDownTime / (Hosts × Observed): the measured
// fraction of host-time spent down, the quantity MTTR/(MTBF+MTTR)
// predicts for exponential lifetimes.
func (s Stats) DownFraction() float64 {
	if s.Hosts == 0 || s.Observed <= 0 {
		return 0
	}
	return float64(s.HostDownTime) / (float64(s.Hosts) * float64(s.Observed))
}

// Driver replays a trace against a vtime.Runtime. Overlapping down
// causes are reference-counted per host so the hooks see each host
// transition at most once per actual liveness change.
type Driver struct {
	rt    vtime.Runtime
	trace []Event
	hooks Hooks

	mu         sync.Mutex
	started    bool
	stopped    bool
	startAt    time.Time
	downCauses map[string]int
	downSince  map[string]time.Time
	siteActive map[string]bool
	stats      Stats
}

// NewDriver builds a driver over a precomputed trace (see Trace).
func NewDriver(rt vtime.Runtime, trace []Event, hooks Hooks) *Driver {
	hostSet := make(map[string]bool)
	for _, ev := range trace {
		hostSet[ev.Host] = true
	}
	return &Driver{
		rt:         rt,
		trace:      trace,
		hooks:      hooks,
		downCauses: make(map[string]int),
		downSince:  make(map[string]time.Time),
		siteActive: make(map[string]bool),
		stats:      Stats{Hosts: len(hostSet)},
	}
}

// SetHostCount tells the driver how many hosts the platform has, so
// DownFraction normalizes over the whole platform rather than only the
// hosts that happen to appear in the trace (at MTBF long relative to
// the horizon most hosts never fail, and a trace-derived denominator
// would overstate platform downtime). Call before Start; non-positive
// values keep the trace-derived count.
func (d *Driver) SetHostCount(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > 0 {
		d.stats.Hosts = n
	}
}

// Start spawns the replay actor. Idempotent.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.rt.Go("churn.driver", d.replay)
}

// GlobalRuntime is the slice of a sharded scheduler domain
// (vtime.Domain) the barrier-scheduled replay needs.
type GlobalRuntime interface {
	Now() time.Time
	Elapsed() time.Duration
	// ScheduleGlobal runs fn at an absolute virtual elapsed time, with
	// every shard parked at that time.
	ScheduleGlobal(at time.Duration, fn func())
}

// StartGlobal replays the trace as domain-global events instead of a
// replay actor: each transition fires at a window barrier, when every
// shard is parked at the event's exact virtual time. That makes the
// hooks' world mutations (failing a host's network links, crashing its
// daemon) race-free against all shard event loops — the barrier is the
// happens-before edge — which is what a sharded world requires. The
// timeline is the same one Start would replay. Idempotent.
func (d *Driver) StartGlobal(g GlobalRuntime) {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.startAt = g.Now()
	base := g.Elapsed()
	d.mu.Unlock()
	for _, ev := range d.trace {
		ev := ev
		g.ScheduleGlobal(base+ev.At, func() { d.fireGlobal(ev) })
	}
}

func (d *Driver) fireGlobal(ev Event) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	fire := d.applyLocked(ev)
	d.mu.Unlock()
	if fire != nil {
		fire(ev.Host)
	}
}

func (d *Driver) replay() {
	start := d.rt.Now()
	d.mu.Lock()
	d.startAt = start
	d.mu.Unlock()
	for _, ev := range d.trace {
		if wait := start.Add(ev.At).Sub(d.rt.Now()); wait > 0 {
			d.rt.Sleep(wait)
		}
		d.mu.Lock()
		if d.stopped {
			d.mu.Unlock()
			return
		}
		fire := d.applyLocked(ev)
		d.mu.Unlock()
		if fire != nil {
			fire(ev.Host)
		}
	}
}

// applyLocked folds one event into the liveness view and returns the
// hook to fire (nil when the event changed no observable state).
func (d *Driver) applyLocked(ev Event) func(string) {
	if ev.Down {
		if ev.Site != "" && !d.siteActive[ev.Site] {
			d.siteActive[ev.Site] = true
			d.stats.SiteOutages++
		}
		d.downCauses[ev.Host]++
		if d.downCauses[ev.Host] == 1 {
			d.stats.Failures++
			d.downSince[ev.Host] = d.rt.Now()
			return d.hooks.Down
		}
		return nil
	}
	if ev.Site != "" {
		d.siteActive[ev.Site] = false
	}
	if d.downCauses[ev.Host] == 0 {
		return nil // spurious repair (trace truncated at horizon)
	}
	d.downCauses[ev.Host]--
	if d.downCauses[ev.Host] > 0 {
		return nil // still down for another cause
	}
	d.stats.Restores++
	d.stats.HostDownTime += d.rt.Now().Sub(d.downSince[ev.Host])
	delete(d.downSince, ev.Host)
	return d.hooks.Up
}

// Alive reports whether the driver currently considers a host up.
func (d *Driver) Alive(host string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.downCauses[host] == 0
}

// Stop halts injection (no further hooks fire) and returns the settled
// stats: hosts still down are charged their downtime up to now.
// Idempotent; later calls return the same snapshot.
func (d *Driver) Stop() Stats {
	now := d.rt.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.stopped {
		d.stopped = true
		for h, since := range d.downSince {
			d.stats.HostDownTime += now.Sub(since)
			delete(d.downSince, h)
		}
		if d.started {
			d.stats.Observed = now.Sub(d.startAt)
		}
	}
	return d.stats
}
