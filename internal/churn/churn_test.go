package churn

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"p2pmpi/internal/vtime"
)

func testHosts(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%02d", i)
	}
	return hosts
}

func siteOfTest(h string) string {
	// Two sites: even hosts east, odd hosts west.
	if (int(h[len(h)-1]-'0'))%2 == 0 {
		return "east"
	}
	return "west"
}

// TestTraceDeterministicAndOrderFree is the replay property: a trace is
// a pure function of (seed, host set, config) — regenerating it, or
// generating it from a permuted host slice, yields the identical event
// sequence. quick.Check sweeps seeds.
func TestTraceDeterministicAndOrderFree(t *testing.T) {
	hosts := testHosts(9)
	prop := func(seed int64) bool {
		cfg := Config{
			Seed: seed, MTBF: 300 * time.Second, MTTR: 30 * time.Second,
			SiteMTBF: 1800 * time.Second, SiteMTTR: 120 * time.Second,
			Horizon: time.Hour,
		}
		a := Trace(hosts, siteOfTest, cfg)
		b := Trace(hosts, siteOfTest, cfg)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		shuffled := append([]string(nil), hosts...)
		rng := rand.New(rand.NewSource(seed ^ 7))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c := Trace(shuffled, siteOfTest, cfg)
		return reflect.DeepEqual(a, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSorted(t *testing.T) {
	cfg := Config{Seed: 3, MTBF: 120 * time.Second, MTTR: 20 * time.Second,
		SiteMTBF: 600 * time.Second, Horizon: 2 * time.Hour}
	tr := Trace(testHosts(6), siteOfTest, cfg)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatalf("unsorted at %d: %v after %v", i, tr[i], tr[i-1])
		}
	}
	for _, ev := range tr {
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("event outside horizon: %v", ev)
		}
	}
}

func TestTraceWarmupQuietPeriod(t *testing.T) {
	cfg := Config{Seed: 11, MTBF: 60 * time.Second, MTTR: 10 * time.Second,
		Warmup: 5 * time.Minute, Horizon: time.Hour}
	for _, ev := range Trace(testHosts(8), nil, cfg) {
		if ev.Down && ev.At < cfg.Warmup {
			t.Fatalf("failure %v struck inside the warmup window", ev)
		}
	}
}

// TestDistributionMeans checks the generators hit their configured
// means: exponential directly, Weibull via the Γ-corrected scale.
func TestDistributionMeans(t *testing.T) {
	const n = 20000
	mean := 100 * time.Second
	for _, kind := range []DistKind{DistExponential, DistWeibull} {
		rng := rand.New(rand.NewSource(42))
		var sum float64
		for i := 0; i < n; i++ {
			sum += draw(rng, kind, mean, 0.7).Seconds()
		}
		got := sum / n
		if math.Abs(got-mean.Seconds()) > 0.05*mean.Seconds() {
			t.Fatalf("%s: empirical mean %.1fs, want ~%.0fs", kind, got, mean.Seconds())
		}
	}
}

// TestSteadyStateDownFraction replays a long exponential trace and
// checks the measured down fraction against MTTR/(MTBF+MTTR).
func TestSteadyStateDownFraction(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	cfg := Config{Seed: 5, MTBF: 100 * time.Second, MTTR: 10 * time.Second,
		Horizon: 3 * time.Hour}
	hosts := testHosts(9)
	d := NewDriver(s, Trace(hosts, nil, cfg), Hooks{})
	d.Start()
	s.RunFor(cfg.Horizon)
	st := d.Stop()
	if st.Failures == 0 || st.Restores == 0 {
		t.Fatalf("no churn injected: %+v", st)
	}
	want := cfg.MTTR.Seconds() / (cfg.MTBF.Seconds() + cfg.MTTR.Seconds())
	if got := st.DownFraction(); math.Abs(got-want) > 0.03 {
		t.Fatalf("down fraction %.4f, want ~%.4f (±0.03)", got, want)
	}
	if st.Hosts != len(hosts) {
		t.Fatalf("stats cover %d hosts, trace has %d", st.Hosts, len(hosts))
	}
}

// TestSetHostCountNormalizesDownFraction: DownFraction must divide by
// the platform size, not by the (possibly much smaller) set of hosts
// that happened to fail within the horizon.
func TestSetHostCountNormalizesDownFraction(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	trace := []Event{
		{At: 10 * time.Second, Host: "h0", Down: true},
		{At: 40 * time.Second, Host: "h0", Down: false},
	}
	d := NewDriver(s, trace, Hooks{})
	d.SetHostCount(10) // platform has 10 hosts; only one ever failed
	d.Start()
	s.RunFor(time.Minute)
	st := d.Stop()
	want := 30.0 / (10 * 60.0)
	if got := st.DownFraction(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("down fraction %.4f, want %.4f (platform-normalized)", got, want)
	}
}

// TestDriverRefCountsOverlappingCauses pins the dedup contract: a host
// that fails individually during a site-wide outage must produce one
// Down and one Up, the Up only after both causes cleared.
func TestDriverRefCountsOverlappingCauses(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	trace := []Event{
		{At: 10 * time.Second, Host: "h0", Down: true, Site: "east"}, // site outage
		{At: 20 * time.Second, Host: "h0", Down: true},               // own failure, overlapping
		{At: 30 * time.Second, Host: "h0", Down: false, Site: "east"},
		{At: 50 * time.Second, Host: "h0", Down: false},
	}
	type tr struct {
		at   time.Duration
		down bool
	}
	var log []tr
	d := NewDriver(s, trace, Hooks{
		Down: func(string) { log = append(log, tr{s.Elapsed(), true}) },
		Up:   func(string) { log = append(log, tr{s.Elapsed(), false}) },
	})
	d.Start()
	s.RunFor(time.Minute)
	want := []tr{{10 * time.Second, true}, {50 * time.Second, false}}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("transitions %v, want %v", log, want)
	}
	st := d.Stop()
	if st.Failures != 1 || st.Restores != 1 || st.SiteOutages != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HostDownTime != 40*time.Second {
		t.Fatalf("downtime %v, want 40s", st.HostDownTime)
	}
	if !d.Alive("h0") {
		t.Fatal("h0 should be alive after both causes cleared")
	}
}

// TestSiteOutageTakesWholeSiteDown checks correlation: every host of
// the struck site fails at the same instant.
func TestSiteOutageTakesWholeSiteDown(t *testing.T) {
	cfg := Config{Seed: 9, SiteMTBF: 600 * time.Second, SiteMTTR: 60 * time.Second,
		Horizon: 2 * time.Hour}
	tr := Trace(testHosts(8), siteOfTest, cfg)
	if len(tr) == 0 {
		t.Fatal("no site outages generated")
	}
	byOnset := make(map[time.Duration]map[string][]string) // at -> site -> hosts
	for _, ev := range tr {
		if !ev.Down {
			continue
		}
		if ev.Site == "" {
			t.Fatalf("host-level event %v with MTBF disabled", ev)
		}
		if byOnset[ev.At] == nil {
			byOnset[ev.At] = make(map[string][]string)
		}
		byOnset[ev.At][ev.Site] = append(byOnset[ev.At][ev.Site], ev.Host)
	}
	for at, sites := range byOnset {
		for site, hosts := range sites {
			if len(hosts) != 4 {
				t.Fatalf("outage at %v struck %d hosts of %s, want all 4", at, len(hosts), site)
			}
		}
	}
}

// TestStopHaltsInjection: hooks must not fire after Stop.
func TestStopHaltsInjection(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	fired := 0
	trace := []Event{
		{At: 10 * time.Second, Host: "h0", Down: true},
		{At: 40 * time.Second, Host: "h1", Down: true},
	}
	d := NewDriver(s, trace, Hooks{Down: func(string) { fired++ }})
	d.Start()
	s.RunFor(20 * time.Second)
	st := d.Stop()
	s.RunFor(time.Minute)
	if fired != 1 {
		t.Fatalf("fired %d hooks, want 1 (h1 was stopped out)", fired)
	}
	if st.Observed != 20*time.Second {
		t.Fatalf("observed %v, want 20s", st.Observed)
	}
	if again := d.Stop(); again != st {
		t.Fatalf("second Stop returned different stats: %+v vs %+v", again, st)
	}
}
