// Package churn is the deterministic fault-injection engine: it turns a
// seed and a failure model into a reproducible timeline of host up/down
// transitions and replays that timeline against a virtual-time world.
//
// The paper ran its co-allocation experiments on a cooperative,
// failure-free Grid'5000 snapshot, but P2P-MPI's premise is
// replication-based fault tolerance on unreliable peers. This package
// supplies the missing experiment axis: per-host renewal processes with
// exponential or Weibull lifetime distributions (MTBF for uptime, MTTR
// for repair), plus optional correlated whole-site outages modelling
// switch and power-domain failures — the dominant real-grid failure mode
// reported in Grid'5000's own operational record.
//
// The engine is split so replay is trivially byte-identical:
//
//   - Trace expands (hosts, Config) into a sorted []Event. Every host
//     owns an RNG seeded from hash(Config.Seed, hostID), so the trace is
//     a pure function of its inputs and independent of the order the
//     host slice is supplied in — the property the determinism tests
//     pin.
//   - Driver replays a trace on a vtime.Runtime, invoking the caller's
//     Down/Up hooks. Overlapping causes (a host-level failure inside a
//     site-wide outage) are reference-counted: Down fires on the first
//     cause, Up only once every cause has cleared.
//
// exp.World.StartChurn wires the hooks into a simulated deployment:
// simnet drops the host's links, the host MPD crashes (local jobs die
// unreported, reservations are released as failures — not conflicts),
// and a reviving host re-registers with the supernode.
package churn
