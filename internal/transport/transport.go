package transport

import (
	"errors"
	"time"
)

// Common transport errors.
var (
	// ErrClosed is returned by operations on a closed conn or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout is returned by RecvTimeout when the deadline passes.
	ErrTimeout = errors.New("transport: timeout")
	// ErrUnreachable is returned by Dial when the address has no listener.
	ErrUnreachable = errors.New("transport: unreachable")
)

// Message is one framed datagram. Payload carries real bytes; Virtual, if
// non-zero, declares an additional modelled size in bytes used by the
// simulator to compute transfer time without allocating the data. A
// Class-B NAS IS exchange is sent as a small header with Virtual set to
// the would-be buffer size.
type Message struct {
	Payload []byte
	Virtual int64

	// pool, when set by the delivering transport, is where Release
	// returns the payload buffer. Receivers that are done with Payload
	// (typically right after decoding the frame) call Release so the
	// transport can recycle the copy; everyone else may simply drop the
	// message and let the GC take it.
	pool *BufferPool
}

// Size returns the modelled size of the message on the wire.
func (m Message) Size() int64 { return int64(len(m.Payload)) + m.Virtual }

// Pooled returns a message whose payload was drawn from pool, for
// transports that recycle delivery buffers.
func Pooled(payload []byte, virtual int64, pool *BufferPool) Message {
	return Message{Payload: payload, Virtual: virtual, pool: pool}
}

// Release hands the payload buffer back to the transport that delivered
// the message. It must be the receiver's last use of Payload (and of any
// decoded view aliasing it). Safe to call on unpooled messages: it is a
// no-op when no pool is attached.
func (m Message) Release() {
	if m.pool != nil && m.Payload != nil {
		m.pool.Put(m.Payload)
	}
}

// Conn is a reliable, ordered, message-oriented connection.
// Send and Recv may be used concurrently with each other; concurrent
// Sends (or concurrent Recvs) are serialized by the implementation.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Recv blocks until a message arrives or the conn closes.
	Recv() (Message, error)
	// RecvTimeout is Recv with a deadline; d < 0 means block forever.
	// It returns ErrTimeout when the deadline expires first.
	RecvTimeout(d time.Duration) (Message, error)
	// Close tears the connection down. Pending receivers unblock with
	// ErrClosed once the in-flight queue drains.
	Close() error
	// LocalAddr and RemoteAddr return the endpoint addresses.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on one address.
type Listener interface {
	// Accept blocks until an inbound connection arrives.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the bound address.
	Addr() string
}

// CallbackListener is implemented by listeners that can hand inbound
// connections to a callback instead of an Accept loop. The handler runs
// in the transport's delivery context and must not block — typically it
// just spawns the serving actor. Daemons that install a handler never
// call Accept, so an idle daemon needs no goroutine parked per
// listener; transports without the capability fall back to Accept.
type CallbackListener interface {
	Listener
	// OnConn installs the inbound-connection handler. Must be called
	// before the listener can receive its first connection, and at most
	// once.
	OnConn(handler func(Conn))
}

// Network is the factory for listeners and outbound connections.
// Addresses are strings; the TCP implementation uses "host:port" resolved
// by the OS, the simulator uses "hostID:port" resolved by the topology.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// RequestReply dials addr, sends req, waits up to timeout for a single
// reply and closes the connection. It is the client-side idiom used by
// most control-plane exchanges (registration, ping, reservation).
func RequestReply(n Network, addr string, req Message, timeout time.Duration) (Message, error) {
	c, err := n.Dial(addr)
	if err != nil {
		return Message{}, err
	}
	defer c.Close()
	if err := c.Send(req); err != nil {
		return Message{}, err
	}
	return c.RecvTimeout(timeout)
}
