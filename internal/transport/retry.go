package transport

import (
	"math/rand"
	"time"
)

// The robustness layer over RequestReply: error classification, seeded
// exponential-backoff-plus-jitter retries and a per-peer circuit
// breaker. Everything here is clock-agnostic — callers pass a Clock
// (vtime.Runtime satisfies it) so retries burn virtual time in the
// simulator and wall time against a real network.

// Retryable classifies an RPC failure: true for failures a retry can
// plausibly fix (the request or reply timed out in flight, the listener
// was briefly absent — ErrTimeout, ErrUnreachable), false for "peer
// gone" conditions where the connection itself is dead (ErrClosed) and
// the caller should fail over instead of hammering a corpse.
func Retryable(err error) bool {
	switch err {
	case ErrTimeout, ErrUnreachable:
		return true
	}
	return false
}

// Clock abstracts time for the retry machinery. vtime.Runtime satisfies
// it directly.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RetryPolicy tunes RequestReplyRetry. The zero value performs exactly
// one attempt — no retries, no backoff — which is the historical
// behavior of every call site.
type RetryPolicy struct {
	// Retries is the number of re-attempts after the first try.
	Retries int
	// Backoff is the base delay before the first retry; attempt k waits
	// Backoff·2^(k-1), each delay multiplied by a seeded uniform jitter
	// in [0.5, 1.5) so synchronized clients spread out. Defaults to 1s
	// when Retries > 0.
	Backoff time.Duration
	// Seed drives the jitter draws (deterministic under the simulator).
	Seed int64
}

// delay returns the backoff before re-attempt k (1-based).
func (p RetryPolicy) delay(rng *rand.Rand, k int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = time.Second
	}
	d := base << uint(k-1)
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// RequestReplyRetry is RequestReply with deadline-bounded retries:
// each attempt gets the full timeout, retryable failures (Retryable)
// back off exponentially with seeded jitter and try again, terminal
// failures and success return immediately. It returns the last error
// alongside the attempt count (total tries, ≥ 1) so callers can meter
// retry volume. A nil clock degrades to a single attempt.
func RequestReplyRetry(clock Clock, n Network, addr string, req Message, timeout time.Duration, p RetryPolicy) (Message, int, error) {
	m, err := RequestReply(n, addr, req, timeout)
	if err == nil || p.Retries <= 0 || clock == nil || !Retryable(err) {
		return m, 1, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for k := 1; k <= p.Retries; k++ {
		clock.Sleep(p.delay(rng, k))
		m, err = RequestReply(n, addr, req, timeout)
		if err == nil || !Retryable(err) {
			return m, 1 + k, err
		}
	}
	return m, 1 + p.Retries, err
}

// Breaker is a consecutive-failure circuit breaker for one peer. After
// Threshold consecutive failures it opens for Cooldown: Allow reports
// false and the caller should skip the peer (a gray supernode stops
// absorbing every client's full retry budget). Any success closes it.
// The zero value (Threshold 0) never opens. Not safe for concurrent
// use; callers guard it with their own lock (the simulator's actors
// are already serialized per scheduler).
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// 0 disables it.
	Threshold int
	// Cooldown is how long the breaker stays open (default 30s).
	Cooldown time.Duration

	fails     int
	openUntil time.Time
}

// Allow reports whether a call to the peer should proceed now.
func (b *Breaker) Allow(now time.Time) bool {
	if b.Threshold <= 0 {
		return true
	}
	return !now.Before(b.openUntil)
}

// Record feeds one call outcome into the breaker.
func (b *Breaker) Record(now time.Time, err error) {
	if b.Threshold <= 0 {
		return
	}
	if err == nil {
		b.fails = 0
		b.openUntil = time.Time{}
		return
	}
	b.fails++
	if b.fails >= b.Threshold {
		cd := b.Cooldown
		if cd <= 0 {
			cd = 30 * time.Second
		}
		b.openUntil = now.Add(cd)
		b.fails = 0
	}
}
