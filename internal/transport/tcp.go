package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// maxFrame bounds a single framed message (payload bytes on the wire).
// Control messages are tiny; MPI data frames are chunked well below this.
const maxFrame = 64 << 20

// TCP is the real-network implementation of Network. Frames are
// length-prefixed on a stream socket: 4 bytes payload length, 8 bytes
// virtual size, then the payload.
type TCP struct{}

// Listen binds a TCP listener on addr ("host:port", ":0" for ephemeral).
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial opens a TCP connection to addr.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return newTCPConn(c), nil
}

var _ Network = TCP{}

type tcpListener struct {
	l      net.Listener
	closed sync.Once
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error {
	var err error
	t.closed.Do(func() { err = t.l.Close() })
	return err
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	hdr     [12]byte // per-conn recv header scratch (guarded by recvMu)
	sendHdr [12]byte // guarded by sendMu
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than throughput here
	}
	return &tcpConn{c: c}
}

func (t *tcpConn) Send(m Message) error {
	if len(m.Payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(m.Payload))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.BigEndian.PutUint32(t.sendHdr[0:4], uint32(len(m.Payload)))
	binary.BigEndian.PutUint64(t.sendHdr[4:12], uint64(m.Virtual))
	if _, err := t.c.Write(t.sendHdr[:]); err != nil {
		return mapNetErr(err)
	}
	if len(m.Payload) > 0 {
		if _, err := t.c.Write(m.Payload); err != nil {
			return mapNetErr(err)
		}
	}
	return nil
}

func (t *tcpConn) Recv() (Message, error) { return t.RecvTimeout(-1) }

func (t *tcpConn) RecvTimeout(d time.Duration) (Message, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if d >= 0 {
		if err := t.c.SetReadDeadline(time.Now().Add(d)); err != nil {
			return Message{}, mapNetErr(err)
		}
		defer t.c.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(t.c, t.hdr[:]); err != nil {
		return Message{}, mapNetErr(err)
	}
	n := binary.BigEndian.Uint32(t.hdr[0:4])
	if n > maxFrame {
		return Message{}, fmt.Errorf("transport: oversized frame %d", n)
	}
	m := Message{Virtual: int64(binary.BigEndian.Uint64(t.hdr[4:12]))}
	if n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(t.c, m.Payload); err != nil {
			return Message{}, mapNetErr(err)
		}
	}
	return m, nil
}

func (t *tcpConn) Close() error      { return t.c.Close() }
func (t *tcpConn) LocalAddr() string { return t.c.LocalAddr().String() }
func (t *tcpConn) RemoteAddr() string {
	return t.c.RemoteAddr().String()
}

func mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return ErrTimeout
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}
