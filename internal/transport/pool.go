package transport

import "math/bits"

// BufferPool is a size-classed free list for message payload buffers.
// The simulated network allocates one payload copy per message in
// flight; at sweep scale that is hundreds of thousands of short-lived
// slices per experiment point, so the copies are recycled instead:
// senders take buffers from the pool and receivers hand them back with
// Message.Release once the frame is decoded.
//
// The pool is deliberately unsynchronized. Its only production user is
// simnet, where every call site runs in scheduler context (actors and
// event callbacks execute one at a time, with cross-goroutine
// visibility established by the scheduler's own synchronization). A
// concurrent transport must either wrap it in a lock or not use it —
// a Message with a nil pool makes Release a no-op, so pooling is
// strictly opt-in per transport.
type BufferPool struct {
	classes [poolClasses][][]byte
}

const (
	poolMinBits = 6  // smallest class: 64 B
	poolMaxBits = 20 // largest class: 1 MiB; bigger buffers are not pooled
	poolClasses = poolMaxBits + 1
)

// class returns the smallest class whose capacity covers n, or -1 when
// n is out of pooled range.
func class(n int) int {
	if n <= 1<<poolMinBits {
		return poolMinBits
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c > poolMaxBits {
		return -1
	}
	return c
}

// Get returns a zero-filled-or-dirty buffer of length n (contents are
// unspecified; callers overwrite it). Buffers beyond the pooled range
// fall back to the allocator.
func (p *BufferPool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := class(n)
	if c < 0 {
		return make([]byte, n)
	}
	if l := len(p.classes[c]); l > 0 {
		b := p.classes[c][l-1]
		p.classes[c][l-1] = nil
		p.classes[c] = p.classes[c][:l-1]
		return b[:n]
	}
	// Empty class: carve a block into fixed-capacity sub-buffers instead
	// of allocating one. A burst of sends that outruns the receivers (so
	// nothing has been recycled yet) then costs one allocation per block
	// of messages. Sub-buffers use full slice expressions, so appends
	// past a carved capacity copy out rather than trample a neighbour.
	size := 1 << c
	count := carveTarget / size
	if count < 2 {
		return make([]byte, n, size)
	}
	block := make([]byte, size*count)
	for i := 1; i < count; i++ {
		p.classes[c] = append(p.classes[c], block[i*size:i*size:(i+1)*size])
	}
	return block[0:n:size]
}

// carveTarget is the block size Get carves small classes from.
const carveTarget = 16 << 10

// Retention bounds: a class keeps at most poolRetainBytes worth of
// buffers (but at least poolMinRetain of them, so alternating
// request/reply traffic stays allocation-free), and classes above
// poolRetainMaxClass keep nothing at all. Without a bound the pool's
// high-water mark is permanent: a boot storm that has every host's
// registration reply in flight at once would park hundreds of MB in
// free lists that steady state never touches again, and even a handful
// of retained gossip anti-entropy frames (hundreds of KB each, a few
// exchanges per second across a whole federation) costs more than the
// traffic they save. Excess buffers go back to the GC; a later burst
// re-carves blocks at one allocation per carveTarget of traffic, and
// big frames fall back to the allocator outright.
const (
	poolRetainBytes    = 64 << 10
	poolRetainMaxClass = 16 // 64 KiB; bigger buffers are never retained
	poolMinRetain      = 4
)

// maxRetain returns how many buffers class c may keep.
func maxRetain(c int) int {
	if c > poolRetainMaxClass {
		return 0
	}
	n := poolRetainBytes >> c
	if n < poolMinRetain {
		n = poolMinRetain
	}
	return n
}

// Put recycles a buffer previously handed out by Get. Buffers whose
// capacity does not match a pool class, and buffers beyond the class's
// retention bound, are dropped to the GC.
func (p *BufferPool) Put(b []byte) {
	c := cap(b)
	if c < 1<<poolMinBits || c > 1<<poolMaxBits || c&(c-1) != 0 {
		return
	}
	k := bits.TrailingZeros(uint(c))
	if len(p.classes[k]) >= maxRetain(k) {
		return
	}
	p.classes[k] = append(p.classes[k], b[:0])
}
