// Package transport defines the message-oriented network abstraction all
// P2P-MPI middleware is written against, with two interchangeable
// implementations: real TCP (tcp.go) and the simulated Grid'5000 network
// (package simnet). Daemons, reservation services, the multi-job
// scheduler and the MPI library see only these interfaces, which is what
// lets the identical protocol code run on localhost sockets and inside
// the virtual-time simulator.
//
// The unit of exchange is the framed Message; RequestReply layers the
// one-shot RPC pattern used by the control protocols (reserve, cancel,
// prepare, start, ping) on top of a Conn.
package transport
