package transport

import (
	"errors"
	"testing"
	"time"
)

// fakeClock advances instantly on Sleep and records the waits.
type fakeClock struct {
	now    time.Time
	sleeps []time.Duration
}

func (c *fakeClock) Now() time.Time { return c.now }
func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

// scriptConn returns one scripted reply (or error) per exchange.
type scriptConn struct {
	err error
}

func (c *scriptConn) Send(m Message) error { return nil }
func (c *scriptConn) Recv() (Message, error) {
	return c.RecvTimeout(-1)
}
func (c *scriptConn) RecvTimeout(d time.Duration) (Message, error) {
	if c.err != nil {
		return Message{}, c.err
	}
	return Message{Payload: []byte("ok")}, nil
}
func (c *scriptConn) Close() error       { return nil }
func (c *scriptConn) LocalAddr() string  { return "local:1" }
func (c *scriptConn) RemoteAddr() string { return "remote:1" }

// scriptNet fails attempt i with errs[i] (nil = success); attempts past
// the script succeed. A dialErrs entry fails the Dial itself.
type scriptNet struct {
	errs     []error
	dialErrs []error
	dials    int
}

func (n *scriptNet) Listen(addr string) (Listener, error) { return nil, ErrUnreachable }
func (n *scriptNet) Dial(addr string) (Conn, error) {
	i := n.dials
	n.dials++
	if i < len(n.dialErrs) && n.dialErrs[i] != nil {
		return nil, n.dialErrs[i]
	}
	var err error
	if i < len(n.errs) {
		err = n.errs[i]
	}
	return &scriptConn{err: err}, nil
}

func TestRetryableClassification(t *testing.T) {
	if !Retryable(ErrTimeout) || !Retryable(ErrUnreachable) {
		t.Fatal("timeouts and unreachable must be retryable")
	}
	if Retryable(ErrClosed) {
		t.Fatal("a closed conn means the peer is gone; retrying is failover's job")
	}
	if Retryable(errors.New("other")) || Retryable(nil) {
		t.Fatal("unknown errors and nil must not be retryable")
	}
}

func TestRequestReplyRetryRecovers(t *testing.T) {
	net := &scriptNet{errs: []error{ErrTimeout, ErrTimeout, nil}}
	clock := &fakeClock{}
	m, tries, err := RequestReplyRetry(clock, net, "a:1", Message{}, time.Second,
		RetryPolicy{Retries: 3, Backoff: time.Second, Seed: 7})
	if err != nil || string(m.Payload) != "ok" {
		t.Fatalf("got %q, %v", m.Payload, err)
	}
	if tries != 3 {
		t.Fatalf("tries = %d, want 3", tries)
	}
	if len(clock.sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.sleeps))
	}
	// Exponential envelope with jitter in [0.5, 1.5): attempt k waits
	// base·2^(k-1)·jitter.
	if clock.sleeps[0] < 500*time.Millisecond || clock.sleeps[0] >= 1500*time.Millisecond {
		t.Fatalf("first backoff %v outside [0.5s, 1.5s)", clock.sleeps[0])
	}
	if clock.sleeps[1] < time.Second || clock.sleeps[1] >= 3*time.Second {
		t.Fatalf("second backoff %v outside [1s, 3s)", clock.sleeps[1])
	}
}

func TestRequestReplyRetryDeterministicBackoff(t *testing.T) {
	run := func() []time.Duration {
		net := &scriptNet{errs: []error{ErrTimeout, ErrTimeout, ErrTimeout, nil}}
		clock := &fakeClock{}
		if _, _, err := RequestReplyRetry(clock, net, "a:1", Message{}, time.Second,
			RetryPolicy{Retries: 5, Backoff: 2 * time.Second, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return clock.sleeps
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("slept %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d diverged across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRequestReplyRetryStopsOnTerminalError(t *testing.T) {
	net := &scriptNet{errs: []error{ErrTimeout, ErrClosed, nil}}
	clock := &fakeClock{}
	_, tries, err := RequestReplyRetry(clock, net, "a:1", Message{}, time.Second,
		RetryPolicy{Retries: 5, Backoff: time.Second})
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if tries != 2 {
		t.Fatalf("tries = %d, want 2 (no retry after peer-gone)", tries)
	}
}

func TestRequestReplyRetryZeroPolicySingleAttempt(t *testing.T) {
	net := &scriptNet{errs: []error{ErrTimeout, nil}}
	clock := &fakeClock{}
	_, tries, err := RequestReplyRetry(clock, net, "a:1", Message{}, time.Second, RetryPolicy{})
	if err != ErrTimeout || tries != 1 || len(clock.sleeps) != 0 {
		t.Fatalf("zero policy must behave like RequestReply: err=%v tries=%d sleeps=%d",
			err, tries, len(clock.sleeps))
	}
}

func TestRequestReplyRetryDialErrors(t *testing.T) {
	net := &scriptNet{dialErrs: []error{ErrUnreachable, nil}}
	clock := &fakeClock{}
	m, tries, err := RequestReplyRetry(clock, net, "a:1", Message{}, time.Second,
		RetryPolicy{Retries: 2, Backoff: time.Second})
	if err != nil || string(m.Payload) != "ok" || tries != 2 {
		t.Fatalf("got %q, tries=%d, %v", m.Payload, tries, err)
	}
}

func TestBreaker(t *testing.T) {
	now := time.Unix(1000, 0)
	b := Breaker{Threshold: 3, Cooldown: 10 * time.Second}
	for i := 0; i < 2; i++ {
		b.Record(now, ErrTimeout)
		if !b.Allow(now) {
			t.Fatalf("open after %d failures, threshold is 3", i+1)
		}
	}
	b.Record(now, ErrTimeout)
	if b.Allow(now) {
		t.Fatal("still closed after 3 consecutive failures")
	}
	if b.Allow(now.Add(9 * time.Second)) {
		t.Fatal("reopened inside the cooldown")
	}
	if !b.Allow(now.Add(10 * time.Second)) {
		t.Fatal("still open after the cooldown")
	}
	// A success closes it and resets the streak.
	b.Record(now.Add(11*time.Second), nil)
	b.Record(now.Add(12*time.Second), ErrTimeout)
	b.Record(now.Add(13*time.Second), ErrTimeout)
	if !b.Allow(now.Add(13 * time.Second)) {
		t.Fatal("opened before a fresh streak reached the threshold")
	}
	// Threshold 0 never opens.
	var off Breaker
	for i := 0; i < 10; i++ {
		off.Record(now, ErrTimeout)
	}
	if !off.Allow(now) {
		t.Fatal("zero-value breaker must never open")
	}
}
