// Package faults is the network-nemesis engine: it turns a seed and a
// misbehavior model into a reproducible timeline of network-fault
// transitions and replays it against a virtual-time world. Where the
// churn package models clean crash-stop (a host is up or silently
// gone), this one models the messier failures Grid'5000's operational
// record says dominate real deployments:
//
//   - site↔site partitions — renewal episodes that cut either one
//     random site pair or (Split) a full bisection of the platform,
//     the cut that splits a supernode federation into islands;
//   - per-link degradation — a constant drop probability and latency
//     multiplier on every cross-site link;
//   - gray-failure hosts — a seeded fraction of hosts that stay alive
//     (they answer what gets through) but intermittently drop or slow
//     all their traffic;
//   - bounded message duplication — data frames are occasionally
//     delivered twice, the second copy delayed past later traffic, so
//     receivers see duplicated and reordered frames.
//
// The engine mirrors churn's two-file shape so replay is trivially
// byte-identical:
//
//   - Trace expands (sites, hosts, Config) into a sorted []Event.
//     Partition episodes draw from one RNG seeded off the sorted site
//     list; every gray candidate owns an RNG seeded from
//     hash(Config.Seed, hostID). The trace is a pure function of its
//     inputs as sets — permuting the input slices yields an identical
//     timeline (the property the determinism tests pin).
//   - Driver replays a trace on a vtime.Runtime, invoking Partition and
//     Gray hooks. Overlapping episodes that cut the same site pair are
//     reference-counted so hooks see each link transition exactly once,
//     and the Healed hook fires when the last active cut lifts.
//
// The constant knobs (link loss/latency multiplier, duplication) need
// no timeline; exp.World.StartFaults applies them to simnet once at
// start and wires the hooks into simnet's barrier-fenced fault state
// (SetCut, SetGray). Config round-trips through the -faults
// command-line syntax via ParseFaultSpec and String.
package faults
