package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseFaultSpecAccepts(t *testing.T) {
	cases := []struct {
		in   string
		want Config
	}{
		{"", Config{LatMult: 1, GraySlow: 1}},
		{"none", Config{LatMult: 1, GraySlow: 1}},
		{"  none  ", Config{LatMult: 1, GraySlow: 1}},
		{"part:mtbf=10m", Config{PartMTBF: 10 * time.Minute, PartMTTR: time.Minute, LatMult: 1, GraySlow: 1}},
		{"part:mtbf=600,mttr=60,split=1", Config{
			PartMTBF: 10 * time.Minute, PartMTTR: time.Minute, Split: true, LatMult: 1, GraySlow: 1}},
		{"link:loss=0.3,mult=2", Config{Loss: 0.3, LatMult: 2, GraySlow: 1}},
		{"link:mult=4", Config{LatMult: 4, GraySlow: 1}},
		{"gray:frac=0.25,mtbf=5m,mttr=30s,drop=0.5,slow=3", Config{
			GrayFrac: 0.25, GrayMTBF: 5 * time.Minute, GrayMTTR: 30 * time.Second,
			GrayDrop: 0.5, GraySlow: 3, LatMult: 1}},
		{"gray:frac=0.1,mtbf=10m", Config{
			GrayFrac: 0.1, GrayMTBF: 10 * time.Minute, GrayMTTR: time.Minute,
			GrayDrop: 0.5, GraySlow: 1, LatMult: 1}},
		{"dup:p=0.01,delay=5", Config{
			DupProb: 0.01, DupDelay: 5 * time.Second, LatMult: 1, GraySlow: 1}},
		{"dup:p=0.01", Config{
			DupProb: 0.01, DupDelay: 100 * time.Millisecond, LatMult: 1, GraySlow: 1}},
		{"part:mtbf=10m;link:loss=0.1;dup:p=0.02", Config{
			PartMTBF: 10 * time.Minute, PartMTTR: time.Minute,
			Loss: 0.1, DupProb: 0.02, DupDelay: 100 * time.Millisecond,
			LatMult: 1, GraySlow: 1}},
	}
	for _, c := range cases {
		got, err := ParseFaultSpec(c.in)
		if err != nil {
			t.Fatalf("ParseFaultSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseFaultSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFaultSpecRejects(t *testing.T) {
	for _, in := range []string{
		"chaos:level=11",                // unknown kind
		":",                             // empty kind
		"part:mtbf=10m;part:mttr=1m",    // duplicate clause
		"part:mtbf=10m,mtbf=20m",        // duplicate field
		"part:mtbf",                     // not key=value
		"part:mtbf=",                    // empty value
		"part:split=maybe",              // bad bool
		"part:split=1",                  // part without mtbf
		"part:mtbf=-5",                  // negative duration
		"link:loss=1",                   // loss must stay below 1
		"link:loss=bad",                 // bad float
		"link:loss=NaN",                 // NaN
		"link:mult=0.5",                 // multiplier below 1
		"link:mult=1e9",                 // multiplier out of range
		"gray:drop=0.5",                 // gray without frac/mtbf
		"gray:frac=2,mtbf=10m",          // frac above 1
		"gray:frac=0.5,mtbf=10m,drop=1", // gray drop must stay below 1
		"dup:delay=5",                   // dup without p
		"part:rate=5",                   // unknown field for the kind
		"link:mtbf=10m",                 // field from another kind
	} {
		if got, err := ParseFaultSpec(in); err == nil {
			t.Fatalf("ParseFaultSpec(%q) accepted as %+v, want error", in, got)
		}
	}
}

func TestFaultSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"none",
		"part:mtbf=10m,mttr=1m,split=1",
		"link:loss=0.3,mult=2",
		"gray:frac=0.1,mtbf=5m,mttr=30s,drop=0.5,slow=3",
		"dup:p=0.01,delay=5",
		"part:mtbf=600;link:loss=0.25;gray:frac=0.2,mtbf=300;dup:p=0.05",
	} {
		c, err := ParseFaultSpec(in)
		if err != nil {
			t.Fatalf("ParseFaultSpec(%q): %v", in, err)
		}
		again, err := ParseFaultSpec(c.String())
		if err != nil {
			t.Fatalf("%q renders as %q which does not re-parse: %v", in, c.String(), err)
		}
		if again != c {
			t.Fatalf("round trip diverged: %q → %+v → %q → %+v", in, c, c.String(), again)
		}
	}
}

// FuzzParseFaultSpec holds the -faults parser to its contract: never
// panic on any input, and every accepted spec round-trips through
// String() to an equal config.
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"none",
		"part:mtbf=10m,mttr=1m,split=1",
		"part:mtbf=600,mttr=60",
		"link:loss=0.3,mult=2",
		"gray:frac=0.1,mtbf=5m,mttr=30s,drop=0.5,slow=3",
		"gray:frac=0.1,mtbf=300",
		"dup:p=0.01,delay=5",
		"part:mtbf=10m;link:loss=0.1;gray:frac=0.2,mtbf=5m;dup:p=0.02",
		"part:split=1",
		"part:mtbf=10m;part:mttr=1m",
		"link:loss=1",
		"link:mult=0.5",
		"link:loss=0x1p-3",
		"gray:frac=2,mtbf=10m",
		"dup:delay=5",
		"chaos:level=11",
		"part:mtbf",
		"part:mtbf=,split=maybe",
		strings.Repeat("part:", 40),
		strings.Repeat(";", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseFaultSpec(s)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", s, verr)
		}
		again, err := ParseFaultSpec(c.String())
		if err != nil {
			t.Fatalf("accepted spec %q renders as %q which does not re-parse: %v", s, c.String(), err)
		}
		if again != c {
			t.Fatalf("round trip diverged: %q → %+v → %q → %+v", s, c, c.String(), again)
		}
	})
}
