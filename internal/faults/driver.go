package faults

import (
	"sync"
	"time"

	"p2pmpi/internal/vtime"
)

// Hooks receive the deduplicated fault transitions of the replay. They
// run on the driver's actor (or at a domain barrier under StartGlobal),
// one at a time, in timeline order — implementations may touch
// scheduler-bound state freely but must not block forever.
type Hooks struct {
	// Partition fires when a site pair's link is first cut (on) and when
	// its last overlapping cut lifts (off).
	Partition func(a, b string, on bool)
	// Gray fires on a host's gray-episode boundaries.
	Gray func(host string, on bool)
	// Healed fires when the last active cut of a partition spell lifts:
	// the network is whole again and anti-entropy can reconverge. start
	// is when the spell began (the first cut of the spell).
	Healed func(start, end time.Time)
}

// Stats summarises an injection run.
type Stats struct {
	// Partitions counts partition spells (transitions from a whole
	// network to one with at least one active cut). CutPairs counts
	// deduplicated per-link cut onsets.
	Partitions, CutPairs int
	// GrayEpisodes counts gray-episode onsets.
	GrayEpisodes int
	// PartitionTime accumulates wall time with at least one active cut.
	PartitionTime time.Duration
	// Observed is the injection span from Start to Stop (or now).
	Observed time.Duration
}

// Driver replays a fault trace against a vtime.Runtime. Overlapping
// episodes cutting the same site pair are reference-counted so the
// hooks see each link transition at most once per actual state change.
type Driver struct {
	rt    vtime.Runtime
	trace []Event
	hooks Hooks

	mu         sync.Mutex
	started    bool
	stopped    bool
	startAt    time.Time
	cutCauses  map[[2]string]int
	grayActive map[string]bool
	activeCuts int
	splitSince time.Time
	stats      Stats
}

// NewDriver builds a driver over a precomputed trace (see Trace).
func NewDriver(rt vtime.Runtime, trace []Event, hooks Hooks) *Driver {
	return &Driver{
		rt:         rt,
		trace:      trace,
		hooks:      hooks,
		cutCauses:  make(map[[2]string]int),
		grayActive: make(map[string]bool),
	}
}

// Start spawns the replay actor. Idempotent.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.rt.Go("faults.driver", d.replay)
}

// GlobalRuntime is the slice of a sharded scheduler domain
// (vtime.Domain) the barrier-scheduled replay needs.
type GlobalRuntime interface {
	Now() time.Time
	Elapsed() time.Duration
	// ScheduleGlobal runs fn at an absolute virtual elapsed time, with
	// every shard parked at that time.
	ScheduleGlobal(at time.Duration, fn func())
}

// StartGlobal replays the trace as domain-global events instead of a
// replay actor: each transition fires at a window barrier, when every
// shard is parked at the event's exact virtual time. That makes the
// hooks' world mutations (cutting simnet links, flipping gray state)
// race-free against all shard event loops — the barrier is the
// happens-before edge — and, because fault state then only changes at
// instants where both engines are parked, keeps the sequential and
// sharded traces byte-identical. Idempotent.
func (d *Driver) StartGlobal(g GlobalRuntime) {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.startAt = g.Now()
	base := g.Elapsed()
	d.mu.Unlock()
	for _, ev := range d.trace {
		ev := ev
		g.ScheduleGlobal(base+ev.At, func() { d.fireGlobal(ev) })
	}
}

func (d *Driver) fireGlobal(ev Event) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	fire := d.applyLocked(ev)
	d.mu.Unlock()
	if fire != nil {
		fire()
	}
}

func (d *Driver) replay() {
	start := d.rt.Now()
	d.mu.Lock()
	d.startAt = start
	d.mu.Unlock()
	for _, ev := range d.trace {
		if wait := start.Add(ev.At).Sub(d.rt.Now()); wait > 0 {
			d.rt.Sleep(wait)
		}
		d.mu.Lock()
		if d.stopped {
			d.mu.Unlock()
			return
		}
		fire := d.applyLocked(ev)
		d.mu.Unlock()
		if fire != nil {
			fire()
		}
	}
}

// applyLocked folds one event into the fault view and returns the hook
// invocation to fire (nil when the event changed no observable state).
func (d *Driver) applyLocked(ev Event) func() {
	now := d.rt.Now()
	switch ev.Kind {
	case EvPartition:
		key := [2]string{ev.A, ev.B}
		if ev.On {
			d.cutCauses[key]++
			if d.cutCauses[key] > 1 {
				return nil // already cut by an overlapping episode
			}
			d.stats.CutPairs++
			d.activeCuts++
			if d.activeCuts == 1 {
				d.stats.Partitions++
				d.splitSince = now
			}
			if h := d.hooks.Partition; h != nil {
				return func() { h(ev.A, ev.B, true) }
			}
			return nil
		}
		if d.cutCauses[key] == 0 {
			return nil // spurious heal (trace truncated at horizon)
		}
		d.cutCauses[key]--
		if d.cutCauses[key] > 0 {
			return nil // still cut for another episode
		}
		delete(d.cutCauses, key)
		d.activeCuts--
		var healed func(start, end time.Time)
		var since time.Time
		if d.activeCuts == 0 {
			d.stats.PartitionTime += now.Sub(d.splitSince)
			healed, since = d.hooks.Healed, d.splitSince
		}
		part := d.hooks.Partition
		if part == nil && healed == nil {
			return nil
		}
		return func() {
			if part != nil {
				part(ev.A, ev.B, false)
			}
			if healed != nil {
				healed(since, now)
			}
		}
	case EvGray:
		if ev.On == d.grayActive[ev.Host] {
			return nil
		}
		d.grayActive[ev.Host] = ev.On
		if ev.On {
			d.stats.GrayEpisodes++
		}
		if h := d.hooks.Gray; h != nil {
			return func() { h(ev.Host, ev.On) }
		}
	}
	return nil
}

// Cut reports whether the driver currently considers a site pair cut.
func (d *Driver) Cut(a, b string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cutCauses[pairOf(a, b)] > 0
}

// Gray reports whether a host is currently inside a gray episode.
func (d *Driver) Gray(host string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.grayActive[host]
}

// Stop halts injection (no further hooks fire) and returns the settled
// stats: an open partition spell is charged up to now. Idempotent;
// later calls return the same snapshot.
func (d *Driver) Stop() Stats {
	now := d.rt.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.stopped {
		d.stopped = true
		if d.activeCuts > 0 {
			d.stats.PartitionTime += now.Sub(d.splitSince)
			d.activeCuts = 0
		}
		if d.started {
			d.stats.Observed = now.Sub(d.startAt)
		}
	}
	return d.stats
}
