package faults

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"p2pmpi/internal/vtime"
)

func testSites(n int) []string {
	sites := make([]string, n)
	for i := range sites {
		sites[i] = fmt.Sprintf("s%02d", i)
	}
	return sites
}

func testHosts(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%02d", i)
	}
	return hosts
}

func nemesisConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		PartMTBF: 10 * time.Minute, PartMTTR: time.Minute, Split: true,
		GrayFrac: 0.4, GrayMTBF: 5 * time.Minute, GrayMTTR: 30 * time.Second,
		GrayDrop: 0.5, GraySlow: 2,
		Horizon: 2 * time.Hour,
	}
}

// TestTraceDeterministicAndOrderFree is the replay property: a trace is
// a pure function of (seed, site set, host set, config) — regenerating
// it, or generating it concurrently from permuted input slices, yields
// the identical event sequence. quick.Check sweeps seeds.
func TestTraceDeterministicAndOrderFree(t *testing.T) {
	sites, hosts := testSites(5), testHosts(12)
	prop := func(seed int64) bool {
		cfg := nemesisConfig(seed)
		want := Trace(sites, hosts, cfg)
		// Eight concurrent generations from independently permuted
		// inputs: any order dependence or shared hidden state between
		// the per-entity RNGs shows up as a diverging replica.
		results := make([][]Event, 8)
		done := make(chan int)
		for i := range results {
			go func(i int) {
				rng := rand.New(rand.NewSource(seed ^ int64(i*2654435761)))
				ss := append([]string(nil), sites...)
				hh := append([]string(nil), hosts...)
				rng.Shuffle(len(ss), func(a, b int) { ss[a], ss[b] = ss[b], ss[a] })
				rng.Shuffle(len(hh), func(a, b int) { hh[a], hh[b] = hh[b], hh[a] })
				results[i] = Trace(ss, hh, cfg)
				done <- i
			}(i)
		}
		for range results {
			<-done
		}
		for _, got := range results {
			if !reflect.DeepEqual(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSortedAndBounded(t *testing.T) {
	cfg := nemesisConfig(3)
	tr := Trace(testSites(4), testHosts(8), cfg)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatalf("unsorted at %d: %v after %v", i, tr[i], tr[i-1])
		}
	}
	for _, ev := range tr {
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("event outside horizon: %v", ev)
		}
		if ev.Kind == EvPartition && ev.A >= ev.B {
			t.Fatalf("uncanonical pair: %v", ev)
		}
	}
}

func TestTraceWarmupQuietPeriod(t *testing.T) {
	cfg := nemesisConfig(11)
	cfg.Warmup = 20 * time.Minute
	for _, ev := range Trace(testSites(4), testHosts(8), cfg) {
		if ev.On && ev.At < cfg.Warmup {
			t.Fatalf("onset %v struck inside the warmup window", ev)
		}
	}
}

// TestSplitCutsBisectThePlatform: with Split, every episode's cut set
// must be exactly island × complement for some non-trivial bisection —
// the cut that severs a spread-out federation into two worlds.
func TestSplitCutsBisectThePlatform(t *testing.T) {
	sites := testSites(5)
	cfg := Config{Seed: 7, PartMTBF: 5 * time.Minute, PartMTTR: 30 * time.Second,
		Split: true, Horizon: 4 * time.Hour}
	tr := Trace(sites, nil, cfg)
	byOnset := map[time.Duration][][2]string{}
	for _, ev := range tr {
		if ev.Kind == EvPartition && ev.On {
			byOnset[ev.At] = append(byOnset[ev.At], [2]string{ev.A, ev.B})
		}
	}
	if len(byOnset) == 0 {
		t.Fatal("no partition episodes generated")
	}
	for at, pairs := range byOnset {
		// Recover the island containing sites[0] from the pair set and
		// check the cut is exactly island × complement.
		cut := map[[2]string]bool{}
		for _, p := range pairs {
			cut[p] = true
		}
		island := map[string]bool{sites[0]: true}
		for _, s := range sites[1:] {
			if !cut[pairOf(sites[0], s)] {
				island[s] = true
			}
		}
		if len(island) == len(sites) {
			t.Fatalf("episode at %v cut nothing reachable from %s", at, sites[0])
		}
		want := 0
		for _, a := range sites {
			for _, b := range sites {
				if a < b && island[a] != island[b] {
					want++
					if !cut[pairOf(a, b)] {
						t.Fatalf("episode at %v is not a bisection: %s↔%s uncut", at, a, b)
					}
				}
			}
		}
		if len(cut) != want {
			t.Fatalf("episode at %v cut %d pairs, bisection needs %d", at, len(cut), want)
		}
	}
}

// TestGrayFracSelectsSeededSubset: the gray candidate set is a seeded
// per-host property — roughly GrayFrac of the hosts, identical across
// regenerations.
func TestGrayFracSelectsSeededSubset(t *testing.T) {
	hosts := testHosts(200)
	cfg := Config{Seed: 21, GrayFrac: 0.3, GrayMTBF: 10 * time.Minute,
		GrayMTTR: time.Minute, GrayDrop: 0.5, Horizon: 6 * time.Hour}
	grayHosts := map[string]bool{}
	for _, ev := range Trace(nil, hosts, cfg) {
		if ev.Kind == EvGray {
			grayHosts[ev.Host] = true
		}
	}
	frac := float64(len(grayHosts)) / float64(len(hosts))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("gray fraction %.2f, want ~0.3", frac)
	}
}

// TestDriverRefCountsOverlappingCuts pins the dedup contract: a pair
// cut by two overlapping episodes fires one Partition(on) and one
// Partition(off), the off only after both episodes ended.
func TestDriverRefCountsOverlappingCuts(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	trace := []Event{
		{At: 10 * time.Second, Kind: EvPartition, A: "a", B: "b", On: true},
		{At: 20 * time.Second, Kind: EvPartition, A: "a", B: "b", On: true},
		{At: 30 * time.Second, Kind: EvPartition, A: "a", B: "b", On: false},
		{At: 50 * time.Second, Kind: EvPartition, A: "a", B: "b", On: false},
	}
	type tr struct {
		at time.Duration
		on bool
	}
	var log []tr
	var healed []time.Duration
	d := NewDriver(s, trace, Hooks{
		Partition: func(a, b string, on bool) { log = append(log, tr{s.Elapsed(), on}) },
		Healed:    func(start, end time.Time) { healed = append(healed, end.Sub(start)) },
	})
	d.Start()
	s.RunFor(time.Minute)
	want := []tr{{10 * time.Second, true}, {50 * time.Second, false}}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("transitions %v, want %v", log, want)
	}
	if !reflect.DeepEqual(healed, []time.Duration{40 * time.Second}) {
		t.Fatalf("healed spells %v, want [40s]", healed)
	}
	st := d.Stop()
	if st.Partitions != 1 || st.CutPairs != 1 || st.PartitionTime != 40*time.Second {
		t.Fatalf("stats %+v", st)
	}
	if d.Cut("b", "a") {
		t.Fatal("pair should be healed")
	}
}

// TestDriverGrayAndStop: gray hooks replay, Stop halts injection and
// settles an open partition spell.
func TestDriverGrayAndStop(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	trace := []Event{
		{At: 5 * time.Second, Kind: EvGray, Host: "h0", On: true},
		{At: 10 * time.Second, Kind: EvPartition, A: "a", B: "b", On: true},
		{At: 40 * time.Second, Kind: EvGray, Host: "h0", On: false},
	}
	var grayLog []bool
	d := NewDriver(s, trace, Hooks{
		Gray: func(host string, on bool) { grayLog = append(grayLog, on) },
	})
	d.Start()
	s.RunFor(20 * time.Second)
	if !d.Gray("h0") || !d.Cut("a", "b") {
		t.Fatal("mid-run state not visible")
	}
	st := d.Stop()
	s.RunFor(time.Minute)
	if !reflect.DeepEqual(grayLog, []bool{true}) {
		t.Fatalf("gray transitions %v, want [true] (the off was stopped out)", grayLog)
	}
	if st.GrayEpisodes != 1 || st.Partitions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.PartitionTime != 10*time.Second {
		t.Fatalf("open spell charged %v, want 10s", st.PartitionTime)
	}
	if st.Observed != 20*time.Second {
		t.Fatalf("observed %v, want 20s", st.Observed)
	}
	if again := d.Stop(); again != st {
		t.Fatalf("second Stop returned different stats: %+v vs %+v", again, st)
	}
}

// TestTraceEmptyWithoutHorizon: a zero horizon generates nothing, and
// the constant-only knobs produce no timeline either.
func TestTraceEmptyWithoutHorizon(t *testing.T) {
	if tr := Trace(testSites(3), testHosts(3), Config{Seed: 1, PartMTBF: time.Minute}); tr != nil {
		t.Fatalf("zero horizon produced %d events", len(tr))
	}
	cfg := Config{Seed: 1, Loss: 0.3, LatMult: 2, DupProb: 0.1, Horizon: time.Hour}
	if tr := Trace(testSites(3), testHosts(3), cfg); len(tr) != 0 {
		t.Fatalf("constant-only config produced %d events", len(tr))
	}
}
