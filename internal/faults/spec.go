package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Config describes a network-fault model. The zero value injects
// nothing. Build it directly or parse the -faults command-line syntax
// with ParseFaultSpec:
//
//	part:mtbf=10m,mttr=1m,split=1
//	link:loss=0.3,mult=2
//	gray:frac=0.1,mtbf=5m,mttr=30s,drop=0.5,slow=3
//	dup:p=0.01,delay=5
//	part:mtbf=10m;link:loss=0.1;dup:p=0.01
//
// Clauses are joined by ";"; "" and "none" mean no faults.
type Config struct {
	// Seed drives every episode draw. Traces are a pure function of
	// (Seed, site set, host set, Config): the same inputs always replay
	// the same faults. Not part of the spec string.
	Seed int64

	// PartMTBF is the mean healthy time between partition episodes; 0
	// disables partitions. PartMTTR is the mean episode duration
	// (default PartMTBF/10). With Split each episode cuts a random
	// bisection of the site set — the federation-splitting cut — instead
	// of a single random site pair.
	PartMTBF, PartMTTR time.Duration
	Split              bool

	// Loss is a constant drop probability applied to every cross-site
	// data frame; LatMult multiplies every cross-site link's base
	// latency (1 = unchanged). Handshake frames (SYN/accept/FIN) are
	// exempt from random loss, modelling transport-level retransmission.
	Loss    float64
	LatMult float64

	// GrayFrac of the hosts (a seeded per-host draw) are gray-failure
	// candidates: during episodes of mean length GrayMTTR, arriving
	// every GrayMTBF of healthy time, the host stays up but drops
	// GrayDrop of its data frames and slows all its traffic by GraySlow.
	// GrayFrac or GrayMTBF at 0 disables gray failures. GrayMTTR
	// defaults to GrayMTBF/10; a gray episode with neither drop nor
	// slow configured defaults to drop=0.5.
	GrayFrac           float64
	GrayMTBF, GrayMTTR time.Duration
	GrayDrop           float64
	GraySlow           float64

	// DupProb duplicates each delivered data frame with this
	// probability; the copy arrives a uniform draw of up to DupDelay
	// (default 100ms) later, unordered against later traffic — the
	// reordering mechanism. 0 disables duplication.
	DupProb  float64
	DupDelay time.Duration

	// Warmup is a quiet period before the first episode can strike.
	// Horizon bounds the generated timeline (offsets from driver
	// start). Neither is part of the spec string.
	Warmup  time.Duration
	Horizon time.Duration
}

func (c Config) withDefaults() Config {
	if c.PartMTBF > 0 && c.PartMTTR <= 0 {
		c.PartMTTR = c.PartMTBF / 10
	}
	if c.LatMult < 1 {
		c.LatMult = 1
	}
	if c.GraySlow < 1 {
		c.GraySlow = 1
	}
	if c.GrayFrac > 0 && c.GrayMTBF > 0 {
		if c.GrayMTTR <= 0 {
			c.GrayMTTR = c.GrayMTBF / 10
		}
		if c.GrayDrop <= 0 && c.GraySlow <= 1 {
			c.GrayDrop = 0.5 // a gray host that neither drops nor slows is healthy
		}
	}
	if c.DupProb > 0 && c.DupDelay <= 0 {
		c.DupDelay = 100 * time.Millisecond
	}
	return c
}

// Normalized returns the config with defaults applied — the form
// ParseFaultSpec returns and Trace works from. Callers that build a
// Config literal and read derived fields (GrayDrop, DupDelay, the
// MTTRs) should normalize first.
func (c Config) Normalized() Config { return c.withDefaults() }

// Enabled reports whether the model injects anything at all.
func (c Config) Enabled() bool {
	c = c.withDefaults()
	return c.PartMTBF > 0 || c.Loss > 0 || c.LatMult > 1 ||
		(c.GrayFrac > 0 && c.GrayMTBF > 0) || c.DupProb > 0
}

// Validate reports whether the model is runnable.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"link loss", c.Loss},
		{"gray frac", c.GrayFrac},
		{"gray drop", c.GrayDrop},
		{"dup p", c.DupProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v != p.v || p.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	// Probability 1 on a drop knob would sever every data path forever;
	// total outages are what partitions and churn are for.
	if c.Loss >= 1 {
		return fmt.Errorf("faults: link loss must be below 1, got %g", c.Loss)
	}
	if c.GrayDrop >= 1 {
		return fmt.Errorf("faults: gray drop must be below 1, got %g", c.GrayDrop)
	}
	for _, m := range []struct {
		name string
		v    float64
	}{{"link mult", c.LatMult}, {"gray slow", c.GraySlow}} {
		if m.v != m.v || m.v < 0 || (m.v > 0 && m.v < 1) || m.v > 1e6 {
			return fmt.Errorf("faults: %s %g outside [1, 1e6]", m.name, m.v)
		}
	}
	return nil
}

// String renders the model in the exact syntax ParseFaultSpec accepts
// (round-trip property: ParseFaultSpec(c.String()) ≡ c.withDefaults(),
// ignoring Seed/Warmup/Horizon, which are not spec fields).
func (c Config) String() string {
	c = c.withDefaults()
	var clauses []string
	if c.PartMTBF > 0 {
		s := fmt.Sprintf("part:mtbf=%s,mttr=%s", c.PartMTBF, c.PartMTTR)
		if c.Split {
			s += ",split=1"
		}
		clauses = append(clauses, s)
	}
	if c.Loss > 0 || c.LatMult > 1 {
		clauses = append(clauses, fmt.Sprintf("link:loss=%s,mult=%s",
			formatProb(c.Loss), formatProb(c.LatMult)))
	}
	if c.GrayFrac > 0 && c.GrayMTBF > 0 {
		clauses = append(clauses, fmt.Sprintf("gray:frac=%s,mtbf=%s,mttr=%s,drop=%s,slow=%s",
			formatProb(c.GrayFrac), c.GrayMTBF, c.GrayMTTR,
			formatProb(c.GrayDrop), formatProb(c.GraySlow)))
	}
	if c.DupProb > 0 {
		clauses = append(clauses, fmt.Sprintf("dup:p=%s,delay=%s",
			formatProb(c.DupProb), c.DupDelay))
	}
	if len(clauses) == 0 {
		return "none"
	}
	return strings.Join(clauses, ";")
}

func formatProb(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseFaultSpec parses the -faults command-line syntax
// ("kind:key=value,...;kind:key=value,..."). Unknown kinds, unknown
// keys, malformed values and invalid combinations are errors, never
// panics — the fuzz target holds the parser to that.
func ParseFaultSpec(s string) (Config, error) {
	var c Config
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return c.withDefaults(), nil
	}
	seenKind := map[string]bool{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, rest, _ := strings.Cut(clause, ":")
		kind := strings.TrimSpace(head)
		switch kind {
		case "part", "link", "gray", "dup":
		case "":
			return c, fmt.Errorf("faults: empty fault clause in %q", s)
		default:
			return c, fmt.Errorf("faults: unknown fault clause %q (want part, link, gray or dup)", kind)
		}
		if seenKind[kind] {
			return c, fmt.Errorf("faults: duplicate %s clause", kind)
		}
		seenKind[kind] = true
		seen := map[string]bool{}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			if !ok || val == "" {
				return c, fmt.Errorf("faults: %s field %q is not key=value", kind, kv)
			}
			if seen[key] {
				return c, fmt.Errorf("faults: duplicate %s field %q", kind, key)
			}
			seen[key] = true
			var err error
			switch kind + ":" + key {
			case "part:mtbf":
				err = parseDurInto(&c.PartMTBF, val)
			case "part:mttr":
				err = parseDurInto(&c.PartMTTR, val)
			case "part:split":
				var b bool
				if b, err = strconv.ParseBool(val); err != nil {
					err = fmt.Errorf("bad bool %q", val)
				} else {
					c.Split = b
				}
			case "link:loss":
				err = parseProbInto(&c.Loss, val)
			case "link:mult":
				err = parseProbInto(&c.LatMult, val)
			case "gray:frac":
				err = parseProbInto(&c.GrayFrac, val)
			case "gray:mtbf":
				err = parseDurInto(&c.GrayMTBF, val)
			case "gray:mttr":
				err = parseDurInto(&c.GrayMTTR, val)
			case "gray:drop":
				err = parseProbInto(&c.GrayDrop, val)
			case "gray:slow":
				err = parseProbInto(&c.GraySlow, val)
			case "dup:p":
				err = parseProbInto(&c.DupProb, val)
			case "dup:delay":
				err = parseDurInto(&c.DupDelay, val)
			default:
				err = fmt.Errorf("unknown field %q (want %s)", key, strings.Join(faultFields(kind), "|"))
			}
			if err != nil {
				return c, fmt.Errorf("faults: %s %s: %w", kind, key, err)
			}
		}
	}
	// A present clause must actually enable its subsystem, or String
	// would drop it and the round trip would silently lose fields.
	if seenKind["part"] && c.PartMTBF <= 0 {
		return c, fmt.Errorf("faults: part clause needs mtbf > 0")
	}
	if seenKind["gray"] && (c.GrayFrac <= 0 || c.GrayMTBF <= 0) {
		return c, fmt.Errorf("faults: gray clause needs frac > 0 and mtbf > 0")
	}
	if seenKind["dup"] && c.DupProb <= 0 {
		return c, fmt.Errorf("faults: dup clause needs p > 0")
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c.withDefaults(), nil
}

func faultFields(kind string) []string {
	var f []string
	switch kind {
	case "part":
		f = []string{"mtbf", "mttr", "split"}
	case "link":
		f = []string{"loss", "mult"}
	case "gray":
		f = []string{"frac", "mtbf", "mttr", "drop", "slow"}
	case "dup":
		f = []string{"p", "delay"}
	}
	sort.Strings(f)
	return f
}

// parseProbInto parses a non-negative finite value for the probability
// and multiplier knobs; range checks live in Validate.
func parseProbInto(dst *float64, s string) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", s)
	}
	if v < 0 || v != v || v > 1e12 {
		return fmt.Errorf("value %q out of range", s)
	}
	*dst = v
	return nil
}

// parseDurInto parses a duration: bare numbers are seconds ("600"), Go
// durations work too ("10m").
func parseDurInto(dst *time.Duration, s string) error {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		// The 1e9-second bound (~31 years) keeps the nanosecond
		// conversion far from int64 overflow.
		if secs < 0 || secs != secs || secs > 1e9 {
			return fmt.Errorf("duration %q out of range", s)
		}
		*dst = time.Duration(secs * float64(time.Second))
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", s)
	}
	*dst = d
	return nil
}
