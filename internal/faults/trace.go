package faults

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// EventKind tags one timeline transition family.
type EventKind uint8

const (
	// EvPartition cuts (On) or heals (Off) one site↔site link.
	EvPartition EventKind = iota
	// EvGray starts (On) or ends (Off) one host's gray episode.
	EvGray
)

// Event is one transition on the injected fault timeline.
type Event struct {
	// At is the virtual-time offset from driver start.
	At time.Duration
	// Kind selects which of the following fields apply.
	Kind EventKind
	// A and B name the cut site pair for EvPartition, with A < B.
	A, B string
	// Host is the affected host for EvGray.
	Host string
	// On is true for an onset, false for a lift.
	On bool
}

// subSeed derives a per-entity RNG seed from the master seed and a
// stable label, so every entity's renewal process is independent of the
// order the input slices are supplied in.
func subSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return seed ^ int64(h.Sum64())
}

// expDraw samples one exponential lifetime. The result is never
// negative; a zero draw is possible and harmless.
func expDraw(rng *rand.Rand, mean time.Duration) time.Duration {
	u := 1 - rng.Float64() // (0, 1]
	x := -float64(mean) * math.Log(u)
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	return time.Duration(x)
}

// Trace expands the fault model into a sorted event timeline for the
// given sites and hosts. The result is deterministic in
// (sites-as-a-set, hosts-as-a-set, cfg): permuting either input slice
// yields a byte-identical trace. Only the episodic subsystems
// (partitions, gray hosts) appear on the timeline; the constant knobs
// (Loss, LatMult, DupProb) have no transitions to schedule.
func Trace(sites, hosts []string, cfg Config) []Event {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return nil
	}
	var out []Event

	if cfg.PartMTBF > 0 && len(sites) >= 2 {
		ss := append([]string(nil), sites...)
		sort.Strings(ss)
		rng := rand.New(rand.NewSource(subSeed(cfg.Seed, "part")))
		t := cfg.Warmup + expDraw(rng, cfg.PartMTBF)
		for t < cfg.Horizon {
			pairs := drawCut(rng, ss, cfg.Split)
			d := expDraw(rng, cfg.PartMTTR)
			for _, p := range pairs {
				out = append(out, Event{At: t, Kind: EvPartition, A: p[0], B: p[1], On: true})
			}
			if t+d >= cfg.Horizon {
				break // stays cut past the horizon
			}
			t += d
			for _, p := range pairs {
				out = append(out, Event{At: t, Kind: EvPartition, A: p[0], B: p[1], On: false})
			}
			t += expDraw(rng, cfg.PartMTBF)
		}
	}

	if cfg.GrayFrac > 0 && cfg.GrayMTBF > 0 {
		for _, h := range hosts {
			rng := rand.New(rand.NewSource(subSeed(cfg.Seed, "gray:"+h)))
			// The first draw decides candidacy, so the gray set is a
			// seeded property of the host, not of the host-slice order.
			if rng.Float64() >= cfg.GrayFrac {
				continue
			}
			t := cfg.Warmup + expDraw(rng, cfg.GrayMTBF)
			for t < cfg.Horizon {
				out = append(out, Event{At: t, Kind: EvGray, Host: h, On: true})
				d := expDraw(rng, cfg.GrayMTTR)
				if t+d >= cfg.Horizon {
					break // stays gray past the horizon
				}
				t += d
				out = append(out, Event{At: t, Kind: EvGray, Host: h, On: false})
				t += expDraw(rng, cfg.GrayMTBF)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.On && !b.On // onsets apply before lifts at an instant
	})
	return out
}

// drawCut picks the site pairs one partition episode severs: a single
// random pair, or with split a cyclic bisection — a contiguous run of
// the sorted site ring against everything else, which always separates
// the platform (and any federation spread across it) into two islands.
func drawCut(rng *rand.Rand, sorted []string, split bool) [][2]string {
	n := len(sorted)
	if !split {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		return [][2]string{pairOf(sorted[i], sorted[j])}
	}
	off := rng.Intn(n)
	k := 1 + rng.Intn(n-1) // group size in [1, n-1]: both islands non-empty
	in := make(map[string]bool, k)
	for i := 0; i < k; i++ {
		in[sorted[(off+i)%n]] = true
	}
	var pairs [][2]string
	for _, a := range sorted {
		if !in[a] {
			continue
		}
		for _, b := range sorted {
			if !in[b] {
				pairs = append(pairs, pairOf(a, b))
			}
		}
	}
	return pairs
}

// pairOf canonicalizes a site pair (A < B).
func pairOf(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}
