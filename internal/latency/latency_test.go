package latency

import (
	"math/rand"
	"testing"
	"time"

	"p2pmpi/internal/stats"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestUnknownBeforeFirstSample(t *testing.T) {
	for _, k := range Kinds {
		e := MustNew(k, 4)
		if e.Estimate() != Unknown {
			t.Errorf("%s: fresh estimator returned %v", k, e.Estimate())
		}
		if e.Samples() != 0 {
			t.Errorf("%s: fresh estimator has samples", k)
		}
	}
}

func TestLastEstimator(t *testing.T) {
	e := MustNew(KindLast, 0)
	e.Add(ms(10))
	e.Add(ms(30))
	if e.Estimate() != ms(30) || e.Samples() != 2 {
		t.Fatalf("last = %v (n=%d)", e.Estimate(), e.Samples())
	}
}

func TestMeanEstimatorWindow(t *testing.T) {
	e := MustNew(KindMean, 2)
	e.Add(ms(10))
	e.Add(ms(20))
	e.Add(ms(40)) // evicts 10
	if got := e.Estimate(); got != ms(30) {
		t.Fatalf("mean = %v, want 30ms", got)
	}
}

func TestMedianEstimator(t *testing.T) {
	e := MustNew(KindMedian, 5)
	for _, v := range []int{10, 1000, 12, 11, 13} { // one outlier
		e.Add(ms(v))
	}
	if got := e.Estimate(); got != ms(12) {
		t.Fatalf("median = %v, want 12ms", got)
	}
	// Even-sized window averages the middle pair.
	e2 := MustNew(KindMedian, 4)
	for _, v := range []int{10, 20, 30, 40} {
		e2.Add(ms(v))
	}
	if got := e2.Estimate(); got != ms(25) {
		t.Fatalf("even median = %v, want 25ms", got)
	}
}

func TestMinEstimator(t *testing.T) {
	e := MustNew(KindMin, 3)
	e.Add(ms(20))
	e.Add(ms(10))
	e.Add(ms(30))
	if e.Estimate() != ms(10) {
		t.Fatalf("min = %v", e.Estimate())
	}
	e.Add(ms(15)) // evicts 20, min stays 10
	e.Add(ms(40)) // evicts 10, min becomes 15
	if e.Estimate() != ms(15) {
		t.Fatalf("min after eviction = %v, want 15ms", e.Estimate())
	}
}

func TestEWMAConverges(t *testing.T) {
	e := MustNew(KindEWMA, 7) // alpha = 0.25
	e.Add(ms(100))
	for i := 0; i < 100; i++ {
		e.Add(ms(10))
	}
	got := e.Estimate()
	if got < ms(10) || got > ms(11) {
		t.Fatalf("ewma did not converge: %v", got)
	}
}

func TestEWMAFirstSampleSeeds(t *testing.T) {
	e := MustNew(KindEWMA, 7)
	e.Add(ms(42))
	if e.Estimate() != ms(42) {
		t.Fatalf("first sample should seed the EWMA, got %v", e.Estimate())
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("bogus"), 4); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestTableRanking(t *testing.T) {
	tb := NewTable(KindLast, 0)
	tb.Observe("sophia", ms(17))
	tb.Observe("nancy", ms(1))
	tb.Observe("lyon", ms(10))
	got := tb.Rank([]string{"sophia", "unmeasured", "nancy", "lyon"})
	want := []string{"nancy", "lyon", "sophia", "unmeasured"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
}

func TestTableRankDeterministicOnTies(t *testing.T) {
	tb := NewTable(KindLast, 0)
	tb.Observe("b", ms(5))
	tb.Observe("a", ms(5))
	got := tb.Rank([]string{"b", "a"})
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("tie break not deterministic: %v", got)
	}
}

func TestTableForget(t *testing.T) {
	tb := NewTable(KindMean, 4)
	tb.Observe("x", ms(5))
	if tb.Len() != 1 {
		t.Fatal("observe did not create estimator")
	}
	tb.Forget("x")
	if tb.Len() != 0 || tb.Estimate("x") != Unknown {
		t.Fatal("forget did not clear state")
	}
}

func TestTableRankDoesNotMutateInput(t *testing.T) {
	tb := NewTable(KindLast, 0)
	tb.Observe("z", ms(1))
	in := []string{"a", "z"}
	_ = tb.Rank(in)
	if in[0] != "a" || in[1] != "z" {
		t.Fatal("Rank mutated its input")
	}
}

// TestEstimatorRankingQualityUnderNoise reproduces the motivation for the
// paper's future work: with noisy single-sample measurements, close sites
// interleave; windowed estimators recover the true ranking better. We
// check that the median-of-8 estimator achieves at least as high a
// Kendall tau as the last-sample estimator on average.
func TestEstimatorRankingQualityUnderNoise(t *testing.T) {
	base := []time.Duration{ms(1), ms(10), ms(11), ms(12), ms(13), ms(17)}
	truth := make([]float64, len(base))
	for i, b := range base {
		truth[i] = float64(b)
	}
	rng := rand.New(rand.NewSource(5))
	noisy := func(b time.Duration) time.Duration {
		j := rng.NormFloat64() * float64(b) * 0.12
		if j < 0 {
			j = -j
		}
		return b + time.Duration(j)
	}

	const trials = 50
	var tauLast, tauMedian float64
	for trial := 0; trial < trials; trial++ {
		last := NewTable(KindLast, 0)
		med := NewTable(KindMedian, 8)
		ids := []string{"a", "b", "c", "d", "e", "f"}
		for round := 0; round < 8; round++ {
			for i, id := range ids {
				s := noisy(base[i])
				last.Observe(id, s)
				med.Observe(id, s)
			}
		}
		score := func(tb *Table) float64 {
			est := make([]float64, len(ids))
			for i, id := range ids {
				est[i] = float64(tb.Estimate(id))
			}
			return stats.KendallTau(truth, est)
		}
		tauLast += score(last)
		tauMedian += score(med)
	}
	tauLast /= trials
	tauMedian /= trials
	if tauMedian < tauLast {
		t.Fatalf("median estimator (tau=%.3f) should beat last-sample (tau=%.3f) under noise",
			tauMedian, tauLast)
	}
	if tauMedian < 0.9 {
		t.Fatalf("median estimator tau = %.3f, want ≥ 0.9", tauMedian)
	}
}
