// Package latency implements the peer latency bookkeeping of the MPD
// cache: round-trip samples from application-level pings feed an
// estimator, and the estimate orders the cached peer list before
// reservation (paper §4.1).
//
// The paper measures RTT with a single application-level echo and notes
// that accuracy "may differ from the RTT given by an ICMP echo" and is
// "subject to CPU and TCP load variations"; improving it is listed as
// future work. This package therefore ships a family of estimators
// (last sample, sliding mean, EWMA, sliding median, sliding minimum) and
// a ranking-quality harness (Kendall tau against the true latency order)
// used by the ablation benchmarks.
package latency

import (
	"fmt"
	"sort"
	"time"
)

// Estimator condenses a stream of RTT samples into one current estimate.
type Estimator interface {
	// Add records one round-trip sample.
	Add(rtt time.Duration)
	// Estimate returns the current estimate; Unknown if no sample yet.
	Estimate() time.Duration
	// Samples returns how many samples were recorded.
	Samples() int
}

// Unknown is returned by estimators before their first sample. It sorts
// after every real latency.
const Unknown = time.Duration(1<<63 - 1)

// Kind names an estimator family for configuration and ablations.
type Kind string

// The available estimator kinds.
const (
	KindLast   Kind = "last"   // most recent sample (the paper's behaviour)
	KindMean   Kind = "mean"   // sliding-window mean
	KindEWMA   Kind = "ewma"   // exponentially weighted moving average
	KindMedian Kind = "median" // sliding-window median
	KindMin    Kind = "min"    // sliding-window minimum
)

// Kinds lists every estimator family in a stable order.
var Kinds = []Kind{KindLast, KindMean, KindEWMA, KindMedian, KindMin}

// New constructs an estimator of the given kind. Window is the sample
// window for windowed kinds (≤ 0 means 8); EWMA uses alpha = 2/(window+1).
func New(kind Kind, window int) (Estimator, error) {
	if window <= 0 {
		window = 8
	}
	switch kind {
	case KindLast:
		return &lastEstimator{}, nil
	case KindMean:
		return &windowEstimator{window: window, reduce: reduceMean}, nil
	case KindEWMA:
		return &ewmaEstimator{alpha: 2.0 / float64(window+1)}, nil
	case KindMedian:
		return &windowEstimator{window: window, reduce: reduceMedian}, nil
	case KindMin:
		return &windowEstimator{window: window, reduce: reduceMin}, nil
	default:
		return nil, fmt.Errorf("latency: unknown estimator kind %q", kind)
	}
}

// MustNew is New for static configuration; it panics on error.
func MustNew(kind Kind, window int) Estimator {
	e, err := New(kind, window)
	if err != nil {
		panic(err)
	}
	return e
}

type lastEstimator struct {
	last time.Duration
	n    int
}

func (e *lastEstimator) Add(rtt time.Duration) { e.last = rtt; e.n++ }
func (e *lastEstimator) Estimate() time.Duration {
	if e.n == 0 {
		return Unknown
	}
	return e.last
}
func (e *lastEstimator) Samples() int { return e.n }

type ewmaEstimator struct {
	alpha float64
	cur   float64
	n     int
}

func (e *ewmaEstimator) Add(rtt time.Duration) {
	if e.n == 0 {
		e.cur = float64(rtt)
	} else {
		e.cur = e.alpha*float64(rtt) + (1-e.alpha)*e.cur
	}
	e.n++
}

func (e *ewmaEstimator) Estimate() time.Duration {
	if e.n == 0 {
		return Unknown
	}
	return time.Duration(e.cur)
}
func (e *ewmaEstimator) Samples() int { return e.n }

type windowEstimator struct {
	window int
	buf    []time.Duration
	head   int
	n      int
	reduce func([]time.Duration) time.Duration
}

func (e *windowEstimator) Add(rtt time.Duration) {
	if len(e.buf) < e.window {
		e.buf = append(e.buf, rtt)
	} else {
		e.buf[e.head] = rtt
		e.head = (e.head + 1) % e.window
	}
	e.n++
}

func (e *windowEstimator) Estimate() time.Duration {
	if len(e.buf) == 0 {
		return Unknown
	}
	return e.reduce(e.buf)
}
func (e *windowEstimator) Samples() int { return e.n }

func reduceMean(buf []time.Duration) time.Duration {
	var sum time.Duration
	for _, v := range buf {
		sum += v
	}
	return sum / time.Duration(len(buf))
}

func reduceMedian(buf []time.Duration) time.Duration {
	tmp := append([]time.Duration(nil), buf...)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}

func reduceMin(buf []time.Duration) time.Duration {
	minV := buf[0]
	for _, v := range buf[1:] {
		if v < minV {
			minV = v
		}
	}
	return minV
}

// Table tracks one estimator per peer and produces the latency-sorted
// peer ordering the booking step consumes.
type Table struct {
	kind   Kind
	window int
	peers  map[string]Estimator
}

// NewTable creates a table producing estimators of the given kind. The
// peer map is built on first sample — a table that never observes
// (every compute peer of a large world) stays three words.
func NewTable(kind Kind, window int) *Table {
	return &Table{kind: kind, window: window}
}

// MakeTable is NewTable by value, for embedding a table inside a larger
// per-peer structure without a separate heap object.
func MakeTable(kind Kind, window int) Table {
	return Table{kind: kind, window: window}
}

// Observe records a sample for a peer, creating its estimator on first use.
func (t *Table) Observe(peer string, rtt time.Duration) {
	e := t.peers[peer]
	if e == nil {
		e = MustNew(t.kind, t.window)
		if t.peers == nil {
			t.peers = make(map[string]Estimator)
		}
		t.peers[peer] = e
	}
	e.Add(rtt)
}

// Estimate returns the current estimate for a peer (Unknown if none).
func (t *Table) Estimate(peer string) time.Duration {
	if e := t.peers[peer]; e != nil {
		return e.Estimate()
	}
	return Unknown
}

// Forget drops a peer's history (used when a peer is marked dead).
func (t *Table) Forget(peer string) { delete(t.peers, peer) }

// Len returns the number of tracked peers.
func (t *Table) Len() int { return len(t.peers) }

// Rank sorts the given peer IDs by ascending estimate; peers without
// samples (Unknown) go last. Ties break by peer ID so the order is
// deterministic.
func (t *Table) Rank(peers []string) []string {
	out := append([]string(nil), peers...)
	sort.SliceStable(out, func(i, j int) bool {
		ei, ej := t.Estimate(out[i]), t.Estimate(out[j])
		if ei != ej {
			return ei < ej
		}
		return out[i] < out[j]
	})
	return out
}
