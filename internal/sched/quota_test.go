package sched

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/vtime"
)

// TestQuotaTwoClassPop pins the two-class pop: once a tenant overdraws
// its bucket, an in-budget tenant's job bypasses the over-budget head
// of queue (one Throttled event), and the over-budget job still runs
// when nobody can pay. Also checks the owned/borrowed slot-second split
// on each job handle.
func TestQuotaTwoClassPop(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), 10*time.Second)
	// Burst covers half of one job: every 2-proc 10s job costs 20
	// slot-sec against a 10 slot-sec burst, so the first completion
	// drives its tenant over budget. The accrual rate is negligible over
	// the test horizon.
	sc := New(s, fake, scarceHosts(), Config{
		Workers: 1, Seed: 1, QuotaRate: 1e-4, QuotaBurst: 10,
	})
	var order []int
	jobByID := map[int]*Job{}
	s.Go("test.main", func() {
		sc.Start()
		// All three land in the heap before the single worker's first
		// pop, so pop order alone decides the schedule.
		sc.EnqueuePri(jobSpec(2), 0, 9) // drains tenant 0's bucket
		sc.EnqueuePri(jobSpec(2), 0, 5) // over-budget by the time it's seen
		sc.EnqueuePri(jobSpec(2), 1, 1) // low priority but in budget
		for _, j := range sc.Wait(3) {
			order = append(order, j.ID)
			jobByID[j.ID] = j
			if j.Err != nil {
				t.Errorf("job %d: %v", j.ID, j.Err)
			}
		}
		sc.Close()
	})
	s.Wait()
	// Pop 1: everyone in budget, highest priority wins (job 0). Pop 2:
	// tenant 0 is now at -10, so low-priority job 2 (tenant 1) bypasses
	// the higher-priority job 1 — the one Throttled event. Pop 3: only
	// job 1 left; taking the heap best is not a throttle.
	if want := fmt.Sprint([]int{0, 2, 1}); fmt.Sprint(order) != want {
		t.Fatalf("completion order %v, want %v", order, want)
	}
	if st := sc.Stats(); st.Throttled != 1 {
		t.Errorf("throttled = %d, want 1", st.Throttled)
	}
	// Cost is N×R×held = 20 slot-sec per job. Job 0 spends the 10 burst
	// then borrows 10; job 2 does the same against tenant 1's fresh
	// bucket; job 1 runs with tenant 0 deep in debt and borrows ~all.
	check := func(id int, owned, borrowed float64) {
		t.Helper()
		j := jobByID[id]
		if math.Abs(j.OwnedSlotSec-owned) > 0.05 || math.Abs(j.BorrowedSlotSec-borrowed) > 0.05 {
			t.Errorf("job %d owned/borrowed = %.3f/%.3f, want %.1f/%.1f",
				id, j.OwnedSlotSec, j.BorrowedSlotSec, owned, borrowed)
		}
	}
	check(0, 10, 10)
	check(2, 10, 10)
	check(1, 0, 20)
}

// TestQuotaBucketAccrual pins the lazy token bucket: new tenants start
// at full burst, balance accrues at QuotaRate per virtual second, and
// the burst caps it.
func TestQuotaBucketAccrual(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 1, Seed: 1, QuotaRate: 2, QuotaBurst: 100})
	s.Go("test.main", func() {
		if b := sc.bucketFor(5); b.balance != 100 {
			t.Errorf("new tenant balance = %g, want full burst 100", b.balance)
		}
		sc.buckets[5].balance = -50 // simulate a deep overdraw
		s.Sleep(30 * time.Second)
		if got := sc.bucketFor(5).balance; math.Abs(got-10) > 1e-9 {
			t.Errorf("balance after 30s = %g, want -50 + 2*30 = 10", got)
		}
		s.Sleep(time.Hour)
		if got := sc.bucketFor(5).balance; got != 100 {
			t.Errorf("balance after an hour = %g, want capped at burst 100", got)
		}
	})
	s.Wait()
}

// TestPreemptEviction drives the full eviction path against the fake
// cluster: a starved in-budget high-priority job evicts exactly one
// victim — the lowest-priority, youngest over-budget running job — via
// the kill handle; the victim fails with ErrPreempted, every slot comes
// back exactly once, and the preemptor completes on its retry.
func TestPreemptEviction(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Minute)
	// Backoff well above the fake's 1s kill-poll granularity, so the
	// victim's slots are free before the preemptor retries.
	sc := New(s, fake, scarceHosts(), Config{
		Workers: 4, Retries: 4, Backoff: 5 * time.Second, Seed: 1,
		QuotaRate: 1e-4, QuotaBurst: 10, Preempt: true,
	})
	var jobs []*Job
	s.Go("test.main", func() {
		sc.Start()
		// Drive tenant 1 over budget: one completed 2×60s job costs 120
		// slot-sec against a 10 slot-sec burst.
		sc.EnqueuePri(jobSpec(2), 1, 3)
		sc.Wait(1)
		// Saturate all 6 procs with tenant 1's over-budget work...
		sc.EnqueuePri(jobSpec(2), 1, 1) // job 1
		sc.EnqueuePri(jobSpec(2), 1, 0) // job 2
		sc.EnqueuePri(jobSpec(2), 1, 0) // job 3: lowest priority, youngest
		s.Sleep(2 * time.Second)        // let the workers admit all three
		// ...then starve a high-priority in-budget job from tenant 0.
		sc.EnqueuePri(jobSpec(2), 0, 5) // job 4
		jobs = append(jobs, sc.Wait(4)...)
		sc.Close()
	})
	s.Wait()

	if len(jobs) != 4 {
		t.Fatalf("drained %d jobs, want 4", len(jobs))
	}
	byID := map[int]*Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	// Victim order is lowest priority first, then youngest (highest ID):
	// among {1(pri1), 2(pri0), 3(pri0)} that is job 3, deterministically.
	if j := byID[3]; j == nil || !errors.Is(j.Err, mpd.ErrPreempted) {
		t.Fatalf("job 3 err = %v, want ErrPreempted", byID[3].Err)
	}
	for _, id := range []int{1, 2, 4} {
		if j := byID[id]; j.Err != nil {
			t.Errorf("job %d: %v", id, j.Err)
		}
	}
	if byID[4].Attempts < 2 {
		t.Errorf("preemptor attempts = %d, want >= 2 (saturated once, then admitted)", byID[4].Attempts)
	}
	st := sc.Stats()
	if st.Preemptions != 1 {
		t.Errorf("preemptions = %d, want exactly 1", st.Preemptions)
	}
	// Exactly-once release: both the scheduler's view and the cluster's
	// ground truth must account every slot back.
	if got := sc.Ledger().InFlight(); got != 0 {
		t.Errorf("ledger still tracks %d in-flight applications", got)
	}
	if got := sc.Ledger().FreeProcs(); got != 6 {
		t.Errorf("ledger free procs = %d, want 6", got)
	}
	if fake.truth.InFlight() != 0 {
		t.Errorf("cluster truth still tracks in-flight applications")
	}
}

// TestPreemptRequiresBudget: an over-budget job never evicts anyone,
// however high its priority — it waits out the backoff like everyone
// else.
func TestPreemptRequiresBudget(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), 30*time.Second)
	sc := New(s, fake, scarceHosts(), Config{
		Workers: 4, Retries: 6, Backoff: 5 * time.Second, Seed: 1,
		QuotaRate: 1e-4, QuotaBurst: 10, Preempt: true,
	})
	s.Go("test.main", func() {
		sc.Start()
		// Both tenants overdraw their buckets up front.
		sc.EnqueuePri(jobSpec(2), 0, 3)
		sc.EnqueuePri(jobSpec(2), 1, 3)
		sc.Wait(2)
		// Tenant 1 saturates the world; over-budget tenant 0 starves at
		// top priority.
		sc.EnqueuePri(jobSpec(2), 1, 0)
		sc.EnqueuePri(jobSpec(2), 1, 0)
		sc.EnqueuePri(jobSpec(2), 1, 0)
		s.Sleep(2 * time.Second)
		sc.EnqueuePri(jobSpec(2), 0, 9)
		for _, j := range sc.Wait(4) {
			if j.Err != nil {
				t.Errorf("job %d: %v (nothing should be evicted)", j.ID, j.Err)
			}
		}
		sc.Close()
	})
	s.Wait()
	if st := sc.Stats(); st.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0: over-budget jobs cannot evict", st.Preemptions)
	}
}
