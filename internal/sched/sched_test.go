package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/vtime"
)

// fakeCluster implements Submitter over a private ground-truth ledger:
// Submit allocates against the truly free slots, holds them for the job
// duration, and fails with mpd.ErrNotEnoughPeers when allocation is
// infeasible — the same outcome a lost RS brokering race produces.
type fakeCluster struct {
	rt    vtime.Runtime
	truth *core.Ledger
	dur   time.Duration // virtual run time per job
	fail  error         // when set, Submit fails after allocation (launch failure)

	mu          sync.Mutex
	submits     int // Submit calls
	lost        int // calls that found no feasible allocation
	inFlight    int
	maxInFlight int
}

func newFakeCluster(rt vtime.Runtime, hosts []core.HostSlot, dur time.Duration) *fakeCluster {
	return &fakeCluster{rt: rt, truth: core.NewLedger(hosts, 1), dur: dur}
}

func (f *fakeCluster) Submit(spec mpd.JobSpec) (*mpd.JobResult, error) {
	f.mu.Lock()
	f.submits++
	f.mu.Unlock()
	// In virtual time this section is atomic: the actor does not yield
	// between snapshot and acquire, exactly like the RS daemons resolve
	// a brokering race with a single winner.
	slist := f.truth.Snapshot()
	asg, err := core.Allocate(slist, spec.N, spec.R, spec.Strategy)
	if err != nil {
		f.mu.Lock()
		f.lost++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", mpd.ErrNotEnoughPeers, err)
	}
	f.truth.Acquire(asg)
	if spec.OnAllocated != nil {
		spec.OnAllocated(asg)
	}
	f.mu.Lock()
	f.inFlight++
	if f.inFlight > f.maxInFlight {
		f.maxInFlight = f.inFlight
	}
	f.mu.Unlock()
	preempted := false
	if spec.Preemptable {
		// Preemptible run: arm a detached kill handle (Kill on a handle
		// that never reaches markRunning only sets the mark — no
		// transport involved) and poll it each virtual second, exactly
		// the observable contract of mpd's checkpoint-kill.
		pre := &mpd.Preemption{}
		if spec.OnPreempt != nil {
			spec.OnPreempt(pre)
		}
		for end := f.rt.Now().Add(f.dur); f.rt.Now().Before(end) && !pre.Killed(); {
			f.rt.Sleep(time.Second)
		}
		preempted = pre.Killed()
	} else {
		f.rt.Sleep(f.dur)
	}
	f.mu.Lock()
	f.inFlight--
	f.mu.Unlock()
	f.truth.Release(asg)
	if preempted {
		return nil, fmt.Errorf("%w: killed by test cluster", mpd.ErrPreempted)
	}
	if f.fail != nil {
		return nil, f.fail
	}
	return &mpd.JobResult{Assignment: asg}, nil
}

func scarceHosts() []core.HostSlot {
	return []core.HostSlot{
		{ID: "h1", Site: "s1", P: 2},
		{ID: "h2", Site: "s1", P: 2},
		{ID: "h3", Site: "s2", P: 2},
	}
}

func jobSpec(n int) mpd.JobSpec {
	return mpd.JobSpec{Program: "hostname", N: n, R: 1, Strategy: core.Concentrate}
}

// runK enqueues k identical jobs and returns them after completion.
func runK(t *testing.T, s *vtime.Scheduler, sc *Scheduler, k, n int) []*Job {
	t.Helper()
	var jobs []*Job
	s.Go("test.main", func() {
		sc.Start()
		for i := 0; i < k; i++ {
			if j := sc.Enqueue(jobSpec(n)); j == nil {
				t.Error("enqueue returned nil")
			}
		}
		jobs = sc.Wait(k)
		sc.Close()
	})
	s.Wait()
	return jobs
}

// TestContentionOverScarceSlots races 6 two-process jobs for 3 hosts
// with one application slot each. The scheduler runs with an
// unconstrained ledger, so every collision is discovered the expensive
// way — through failed submissions — and resolved by backoff-retry.
func TestContentionOverScarceSlots(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), 10*time.Second)
	sc := New(s, fake, nil, Config{Workers: 6, Retries: 6, Backoff: time.Second, Seed: 7})

	jobs := runK(t, s, sc, 6, 2)

	if len(jobs) != 6 {
		t.Fatalf("completed %d jobs, want 6", len(jobs))
	}
	for _, j := range jobs {
		if j.Err != nil {
			t.Errorf("job %d failed: %v", j.ID, j.Err)
		}
	}
	st := sc.Stats()
	if st.Completed != 6 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Only 3 jobs fit at once; the other 3 must have lost at least one
	// race each.
	if fake.maxInFlight != 3 {
		t.Errorf("max in flight = %d, want 3", fake.maxInFlight)
	}
	if st.Conflicts < 3 {
		t.Errorf("conflicts = %d, want >= 3", st.Conflicts)
	}
	if fake.lost != st.Conflicts {
		t.Errorf("cluster saw %d lost races, scheduler counted %d", fake.lost, st.Conflicts)
	}
}

// TestLiveViewAvoidsConflictTraffic runs the same race with the ledger
// tracking the real capacities: admission control holds jobs back while
// the view is saturated, so no submission ever reaches the cluster just
// to lose.
func TestLiveViewAvoidsConflictTraffic(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), 10*time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 6, Retries: 8, Backoff: time.Second, Seed: 7})

	jobs := runK(t, s, sc, 6, 2)

	for _, j := range jobs {
		if j.Err != nil {
			t.Errorf("job %d failed: %v", j.ID, j.Err)
		}
	}
	if fake.lost != 0 {
		t.Errorf("cluster saw %d lost submissions, want 0 (live view should gate them)", fake.lost)
	}
	if fake.submits != 6 {
		t.Errorf("cluster saw %d submissions, want exactly 6", fake.submits)
	}
	// The contention still happened — it was just absorbed by admission
	// control instead of network round-trips.
	if st := sc.Stats(); st.Conflicts < 3 {
		t.Errorf("conflicts = %d, want >= 3", st.Conflicts)
	}
}

// TestSlotsReleasedOnJobFailure verifies the ledger view is handed back
// when a job dies after allocation (launch failure): subsequent jobs
// must see the full capacity again.
func TestSlotsReleasedOnJobFailure(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Second)
	fake.fail = errors.New("launch failed: host rebooted")
	sc := New(s, fake, scarceHosts(), Config{Workers: 2, Retries: -1, Seed: 1})

	jobs := runK(t, s, sc, 4, 2)

	for _, j := range jobs {
		if j.Err == nil {
			t.Errorf("job %d unexpectedly succeeded", j.ID)
		}
		if j.Result != nil {
			t.Errorf("job %d has a result despite failing", j.ID)
		}
	}
	if st := sc.Stats(); st.Failed != 4 {
		t.Fatalf("stats = %+v, want 4 failures", sc.Stats())
	}
	// Every failed job must have released its acquired slots.
	if got := sc.Ledger().InFlight(); got != 0 {
		t.Errorf("ledger still tracks %d in-flight applications", got)
	}
	if got := sc.Ledger().FreeProcs(); got != 6 {
		t.Errorf("ledger free procs = %d, want all 6 back", got)
	}
	if fake.truth.InFlight() != 0 {
		t.Errorf("cluster truth still tracks in-flight applications")
	}
}

// TestSaturatedJobFailsAfterRetries submits a job that can never fit:
// it must fail with ErrSaturated without one Submit reaching the
// cluster.
func TestSaturatedJobFailsAfterRetries(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 1, Retries: 2, Backoff: time.Second, Seed: 1})

	jobs := runK(t, s, sc, 1, 100)

	if len(jobs) != 1 || !errors.Is(jobs[0].Err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", jobs[0].Err)
	}
	if jobs[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", jobs[0].Attempts)
	}
	if fake.submits != 0 {
		t.Errorf("cluster saw %d submissions, want 0", fake.submits)
	}
}

// TestEnqueueAfterClose verifies admission stops at Close while queued
// jobs still drain.
func TestEnqueueAfterClose(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 1, Seed: 1})
	s.Go("test.main", func() {
		sc.Start()
		j := sc.Enqueue(jobSpec(2))
		sc.Close()
		if late := sc.Enqueue(jobSpec(2)); late != nil {
			t.Error("enqueue after close should return nil")
		}
		jobs := sc.Wait(2) // asks for more than exists: returns after drain
		if len(jobs) != 1 || jobs[0] != j {
			t.Errorf("drained %d jobs", len(jobs))
		}
		if jobs[0].Err != nil {
			t.Errorf("queued job failed: %v", jobs[0].Err)
		}
	})
	s.Wait()
}

// TestDeterministicUnderVirtualTime runs the contention scenario twice
// with the same seed and expects identical schedules: same attempt
// counts and identical virtual completion times per job.
func TestDeterministicUnderVirtualTime(t *testing.T) {
	type trace struct {
		attempts  int
		conflicts int
		finished  time.Time
	}
	run := func() []trace {
		s := vtime.New()
		defer s.Shutdown()
		fake := newFakeCluster(s, scarceHosts(), 10*time.Second)
		sc := New(s, fake, nil, Config{Workers: 6, Retries: 6, Backoff: time.Second, Seed: 42})
		jobs := runK(t, s, sc, 6, 2)
		out := make([]trace, len(jobs))
		for _, j := range jobs {
			out[j.ID] = trace{j.Attempts, j.Conflicts, j.Finished}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPriorityAdmission: with one worker busy, later high-priority jobs
// overtake earlier low-priority ones; within a priority level FIFO
// order holds.
func TestPriorityAdmission(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), 10*time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 1, Seed: 1})
	var order []int
	s.Go("test.main", func() {
		sc.Start()
		// All five land in the heap before the worker's first pop (the
		// enqueuing actor does not yield), so the heap alone decides the
		// schedule.
		sc.EnqueuePri(jobSpec(2), 0, 0) // low, first in
		sc.EnqueuePri(jobSpec(2), 1, 0) // low, second in
		sc.EnqueuePri(jobSpec(2), 2, 2) // high, first in
		sc.EnqueuePri(jobSpec(2), 3, 1) // mid
		sc.EnqueuePri(jobSpec(2), 4, 2) // high, second in
		for _, j := range sc.Wait(5) {
			order = append(order, j.ID)
			if j.Err != nil {
				t.Errorf("job %d: %v", j.ID, j.Err)
			}
		}
		sc.Close()
	})
	s.Wait()
	// Completion order on one worker is execution order: priority desc,
	// FIFO within a level.
	want := []int{2, 4, 3, 0, 1}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("completion order %v, want %v", order, want)
	}
}

// TestUniformPriorityIsFIFO: EnqueuePri with equal priorities completes
// in exact enqueue order on one worker — the degenerate case the
// closed-system golden files depend on.
func TestUniformPriorityIsFIFO(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	fake := newFakeCluster(s, scarceHosts(), time.Second)
	sc := New(s, fake, scarceHosts(), Config{Workers: 1, Seed: 1})
	var order []int
	s.Go("test.main", func() {
		sc.Start()
		for i := 0; i < 8; i++ {
			sc.EnqueuePri(jobSpec(2), i, 3)
		}
		for _, j := range sc.Wait(8) {
			order = append(order, j.ID)
		}
		sc.Close()
	})
	s.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("completion order %v, want 0..7 in order", order)
		}
	}
}
