// Package sched is the multi-job co-allocation scheduler: it runs many
// simultaneous JobSpec submissions against one P2P-MPI deployment, where
// the paper's harness (§5) only ever submits one job at a time.
//
// Concurrent jobs contend for the same host slots — every peer's owner
// allows J simultaneous applications (J = 1 in the experiments), so two
// brokering rounds racing for the same host resolve with one ReserveOK
// and one ReserveNOK. The scheduler manages that contention at three
// levels:
//
//   - a live slot ledger (core.Ledger): each worker charges the
//     assignment of its in-flight job to a shared, mutating view of host
//     capacities, and the next submission excludes saturated hosts from
//     booking instead of discovering the conflict through NOK
//     round-trips. core.Allocate therefore runs against a view that
//     reflects the scheduler's own concurrent placements, not a one-shot
//     snapshot;
//   - admission control: a job whose n×r demand exceeds the ledger's
//     residual capacity backs off without generating any network
//     traffic;
//   - backoff-retry: a submission that still loses the race (peers
//     outside the ledger's knowledge, or capacity freed between
//     snapshot and brokering) is retried after an exponentially growing,
//     deterministically jittered pause.
//
// The scheduler is written against vtime.Runtime and mailboxes, so the
// same code drives real deployments on the wall clock (vtime.Real) and
// the deterministic virtual-time Grid'5000 worlds of the experiment
// harness, where it powers the K-concurrent-jobs experiment family.
package sched
