package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/vtime"
)

// ErrSaturated is returned for a job whose demand never fit the ledger's
// residual capacity within its retry budget: the scheduler refused to
// spend brokering traffic on a request that could not be placed.
var ErrSaturated = errors.New("sched: not enough free slots for the job")

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// Submitter runs one job to completion — *mpd.MPD is the production
// implementation; tests substitute fakes.
type Submitter interface {
	Submit(spec mpd.JobSpec) (*mpd.JobResult, error)
}

// Config tunes a Scheduler.
type Config struct {
	// Workers bounds the number of jobs in flight at once (default 4).
	Workers int
	// Retries is the per-job contention retry budget (default 3): a
	// submission that fails for lack of hosts is re-run after a backoff
	// this many times before the job is failed. Set -1 to disable
	// retrying.
	Retries int
	// Backoff is the base pause before a retry, doubled every attempt
	// and stretched by a deterministic jitter (default 2s).
	Backoff time.Duration
	// JPerHost is the owner J limit assumed by the live ledger view
	// (default 1, the experiments' setting).
	JPerHost int
	// Seed drives the backoff jitter.
	Seed int64
	// IsContention classifies a Submit error as retryable contention.
	// The default treats mpd.ErrNotEnoughPeers — the "lost the
	// reservation race" outcome — as contention and everything else
	// (unknown program, launch failure) as final.
	IsContention func(error) bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Second
	}
	if c.JPerHost <= 0 {
		c.JPerHost = 1
	}
	if c.IsContention == nil {
		c.IsContention = func(err error) bool {
			return errors.Is(err, mpd.ErrNotEnoughPeers) || errors.Is(err, ErrSaturated)
		}
	}
}

// Job is the scheduler's handle for one queued submission. Its fields
// are written by the worker that runs it and must only be read after the
// job came back through Wait.
type Job struct {
	// ID numbers jobs in enqueue order, starting at 0.
	ID int
	// Spec is the submission as enqueued.
	Spec mpd.JobSpec
	// Tenant tags the submitting tenant for per-tenant accounting (open
	// workloads; 0 for plain Enqueue).
	Tenant int
	// Priority orders admission: a free worker always picks the highest
	// pending priority, ties broken by enqueue order. All-equal
	// priorities (plain Enqueue) degenerate to exact FIFO.
	Priority int
	// Result and Err record the terminal outcome.
	Result *mpd.JobResult
	Err    error
	// Attempts counts Submit calls (plus admission checks that backed
	// off); Conflicts counts the attempts lost to contention.
	Attempts  int
	Conflicts int
	// Wasted accumulates the runtime spent inside attempts that ended
	// in an error — brokering rounds that lost the race, launches onto
	// hosts that died, runs a mid-flight failure forced to re-book. The
	// churn experiments multiply it by the job's process count to
	// charge re-booked slot-hours.
	Wasted time.Duration
	// Enqueued, Started and Finished are runtime timestamps; Started is
	// the first attempt's begin.
	Enqueued, Started, Finished time.Time
}

// Wait returns the job's completion-to-enqueue latency.
func (j *Job) Latency() time.Duration { return j.Finished.Sub(j.Enqueued) }

// Stats aggregates scheduler counters.
type Stats struct {
	Enqueued  int
	Completed int // jobs finished successfully
	Failed    int // jobs finished with an error
	Attempts  int // Submit calls plus admission backoffs
	Conflicts int // attempts lost to slot contention
}

// Scheduler drives concurrent job submissions through a bounded worker
// pool over a shared live view of host slots.
type Scheduler struct {
	rt     vtime.Runtime
	sub    Submitter
	ledger *core.Ledger
	cfg    Config

	queue vtime.Mailbox // admission tokens, one per pending job
	done  vtime.Mailbox // *Job, terminal

	mu      sync.Mutex
	pending jobHeap // jobs awaiting a worker, max-priority first
	rng     *rand.Rand
	stats   Stats
	nextID  int
	started bool
	closed  bool
	live    int // running workers
}

// jobHeap orders pending jobs by priority (desc), then enqueue order
// (asc). With uniform priorities the pop order is exactly the push
// order, so the closed-system experiments see the same FIFO schedule
// they always did.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// New builds a scheduler over the given hosts (nil hosts = unconstrained
// ledger, used when capacities are unknown). Call Start to spawn the
// workers.
func New(rt vtime.Runtime, sub Submitter, hosts []core.HostSlot, cfg Config) *Scheduler {
	cfg.fillDefaults()
	return &Scheduler{
		rt:     rt,
		sub:    sub,
		ledger: core.NewLedger(hosts, cfg.JPerHost),
		cfg:    cfg,
		queue:  rt.NewMailbox(),
		done:   rt.NewMailbox(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Ledger exposes the live slot view (experiments and tests).
func (s *Scheduler) Ledger() *core.Ledger { return s.ledger }

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start spawns the worker pool. Idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.live = s.cfg.Workers
	for i := 0; i < s.cfg.Workers; i++ {
		i := i
		s.rt.Go(fmt.Sprintf("sched.worker.%d", i), func() { s.worker() })
	}
}

// Enqueue queues a job for execution and returns its handle, or nil
// after Close. It never blocks and may be called from any goroutine.
func (s *Scheduler) Enqueue(spec mpd.JobSpec) *Job {
	return s.EnqueuePri(spec, 0, 0)
}

// EnqueuePri queues a job with a tenant tag and an admission priority:
// among pending jobs, a free worker always takes the highest priority,
// FIFO within a priority level. Open-system drivers use this to feed
// multi-tenant arrival streams; Enqueue is EnqueuePri(spec, 0, 0).
func (s *Scheduler) EnqueuePri(spec mpd.JobSpec, tenant, priority int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	job := &Job{ID: s.nextID, Spec: spec, Tenant: tenant, Priority: priority, Enqueued: s.rt.Now()}
	s.nextID++
	s.stats.Enqueued++
	heap.Push(&s.pending, job)
	// Push a token under the mutex: Close also takes it, so a handle is
	// only ever returned for a job that reached the queue before it
	// closed (Push on a closed mailbox would silently drop the job). The
	// mailbox stays the FIFO wake-up channel; the heap decides which job
	// the woken worker actually runs.
	s.queue.Push(struct{}{})
	return job
}

// Close stops admission. Queued jobs still run to completion; workers
// exit once the queue drains, after which Wait unblocks.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()
}

// Wait pops k completed jobs (blocking; must run on a runtime actor or
// goroutine). It returns fewer than k only when the scheduler was closed
// and every queued job already completed.
func (s *Scheduler) Wait(k int) []*Job {
	jobs, _ := s.WaitTimeout(k, -1)
	return jobs
}

// WaitTimeout is Wait bounded by a total deadline; d < 0 waits forever.
func (s *Scheduler) WaitTimeout(k int, d time.Duration) ([]*Job, error) {
	var deadline time.Time
	if d >= 0 {
		deadline = s.rt.Now().Add(d)
	}
	var out []*Job
	for len(out) < k {
		wait := time.Duration(-1)
		if d >= 0 {
			if wait = deadline.Sub(s.rt.Now()); wait < 0 {
				return out, vtime.ErrTimeout
			}
		}
		v, err := s.done.PopTimeout(wait)
		if err != nil {
			return out, err
		}
		out = append(out, v.(*Job))
	}
	return out, nil
}

func (s *Scheduler) worker() {
	defer func() {
		s.mu.Lock()
		s.live--
		last := s.live == 0
		s.mu.Unlock()
		if last {
			s.done.Close()
		}
	}()
	for {
		if _, ok := s.queue.Pop(); !ok {
			return
		}
		// One token per pending job, so the heap is never empty here.
		s.mu.Lock()
		job := heap.Pop(&s.pending).(*Job)
		s.mu.Unlock()
		s.runJob(job)
		job.Finished = s.rt.Now()
		s.mu.Lock()
		if job.Err == nil {
			s.stats.Completed++
		} else {
			s.stats.Failed++
		}
		s.mu.Unlock()
		s.done.Push(job)
	}
}

// runJob executes one job with admission control against the live
// ledger and backoff-retry on contention.
func (s *Scheduler) runJob(job *Job) {
	need := job.Spec.N * job.Spec.R
	job.Started = s.rt.Now()
	for attempt := 0; ; attempt++ {
		job.Attempts++
		s.mu.Lock()
		s.stats.Attempts++
		s.mu.Unlock()

		var err error
		var res *mpd.JobResult
		attemptStart := s.rt.Now()
		if free := s.ledger.FreeProcs(); free >= 0 && free < need {
			// Admission control: the live view cannot place this job, so
			// back off without brokering.
			err = fmt.Errorf("%w: need %d processes, %d free", ErrSaturated, need, free)
		} else {
			res, err = s.attempt(job)
		}
		if err != nil {
			job.Wasted += s.rt.Now().Sub(attemptStart)
		}
		if err == nil || !s.cfg.IsContention(err) || attempt >= s.cfg.Retries {
			job.Result, job.Err = res, err
			return
		}
		job.Conflicts++
		s.mu.Lock()
		s.stats.Conflicts++
		d := s.cfg.Backoff << uint(attempt)
		d += time.Duration(s.rng.Int63n(int64(d)/2 + 1)) // deterministic jitter
		s.mu.Unlock()
		s.rt.Sleep(d)
	}
}

// attempt runs one Submit with the ledger charged for the job's
// lifetime: busy hosts are excluded from booking, the assignment is
// acquired the moment allocation succeeds, and released when the job
// finishes — successfully or not.
func (s *Scheduler) attempt(job *Job) (*mpd.JobResult, error) {
	spec := job.Spec
	if busy := s.ledger.Busy(); len(busy) > 0 {
		spec.Exclude = append(append([]string(nil), spec.Exclude...), busy...)
	}
	var acquired *core.Assignment
	userHook := spec.OnAllocated
	spec.OnAllocated = func(a *core.Assignment) {
		acquired = a
		s.ledger.Acquire(a)
		if userHook != nil {
			userHook(a)
		}
	}
	res, err := s.sub.Submit(spec)
	if acquired != nil {
		s.ledger.Release(acquired)
	}
	return res, err
}
