package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/vtime"
)

// ErrSaturated is returned for a job whose demand never fit the ledger's
// residual capacity within its retry budget: the scheduler refused to
// spend brokering traffic on a request that could not be placed.
var ErrSaturated = errors.New("sched: not enough free slots for the job")

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// Submitter runs one job to completion — *mpd.MPD is the production
// implementation; tests substitute fakes.
type Submitter interface {
	Submit(spec mpd.JobSpec) (*mpd.JobResult, error)
}

// Config tunes a Scheduler.
type Config struct {
	// Workers bounds the number of jobs in flight at once (default 4).
	Workers int
	// Retries is the per-job contention retry budget (default 3): a
	// submission that fails for lack of hosts is re-run after a backoff
	// this many times before the job is failed. Set -1 to disable
	// retrying.
	Retries int
	// Backoff is the base pause before a retry, doubled every attempt
	// and stretched by a deterministic jitter (default 2s).
	Backoff time.Duration
	// JPerHost is the owner J limit assumed by the live ledger view
	// (default 1, the experiments' setting).
	JPerHost int
	// Seed drives the backoff jitter.
	Seed int64
	// IsContention classifies a Submit error as retryable contention.
	// The default treats mpd.ErrNotEnoughPeers — the "lost the
	// reservation race" outcome — as contention and everything else
	// (unknown program, launch failure) as final.
	IsContention func(error) bool
	// QuotaRate enables per-tenant admission quotas: each tenant earns
	// QuotaRate slot-seconds of budget per virtual second into a token
	// bucket capped at QuotaBurst, and every finished job debits
	// N×R×runtime from its tenant's bucket. While a tenant's balance is
	// negative its pending jobs queue behind every in-budget tenant's,
	// regardless of priority. 0 disables quotas entirely (the exact
	// legacy admission path).
	QuotaRate float64
	// QuotaBurst caps a tenant's accumulated budget in slot-seconds
	// (default 3600×QuotaRate — one hour of accrual).
	QuotaBurst float64
	// Preempt arms the preemption primitive: a queued job that cannot
	// be admitted for lack of slots may checkpoint-kill the weakest
	// strictly-lower-priority running job — with quotas on, only if the
	// preemptor's tenant is in budget and the victim's is not. The
	// victim's reservation returns through the normal release path, its
	// burned slot-seconds are charged to its tenant, and the job fails
	// with mpd.ErrPreempted (not counted as contention).
	Preempt bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Second
	}
	if c.JPerHost <= 0 {
		c.JPerHost = 1
	}
	if c.IsContention == nil {
		c.IsContention = func(err error) bool {
			return errors.Is(err, mpd.ErrNotEnoughPeers) || errors.Is(err, ErrSaturated)
		}
	}
	if c.QuotaRate > 0 && c.QuotaBurst <= 0 {
		c.QuotaBurst = 3600 * c.QuotaRate
	}
}

// Job is the scheduler's handle for one queued submission. Its fields
// are written by the worker that runs it and must only be read after the
// job came back through Wait.
type Job struct {
	// ID numbers jobs in enqueue order, starting at 0.
	ID int
	// Spec is the submission as enqueued.
	Spec mpd.JobSpec
	// Tenant tags the submitting tenant for per-tenant accounting (open
	// workloads; 0 for plain Enqueue).
	Tenant int
	// Priority orders admission: a free worker always picks the highest
	// pending priority, ties broken by enqueue order. All-equal
	// priorities (plain Enqueue) degenerate to exact FIFO.
	Priority int
	// Result and Err record the terminal outcome.
	Result *mpd.JobResult
	Err    error
	// Attempts counts Submit calls (plus admission checks that backed
	// off); Conflicts counts the attempts lost to contention.
	Attempts  int
	Conflicts int
	// Wasted accumulates the runtime spent inside attempts that ended
	// in an error — brokering rounds that lost the race, launches onto
	// hosts that died, runs a mid-flight failure forced to re-book. The
	// churn experiments multiply it by the job's process count to
	// charge re-booked slot-hours.
	Wasted time.Duration
	// OwnedSlotSec and BorrowedSlotSec split the job's N×R×runtime
	// slot-second consumption into the part covered by the tenant's
	// quota balance and the part borrowed beyond it. Both stay zero
	// with quotas off.
	OwnedSlotSec, BorrowedSlotSec float64
	// Enqueued, Started and Finished are runtime timestamps; Started is
	// the first attempt's begin.
	Enqueued, Started, Finished time.Time
}

// Wait returns the job's completion-to-enqueue latency.
func (j *Job) Latency() time.Duration { return j.Finished.Sub(j.Enqueued) }

// Stats aggregates scheduler counters.
type Stats struct {
	Enqueued    int
	Completed   int // jobs finished successfully
	Failed      int // jobs finished with an error
	Attempts    int // Submit calls plus admission backoffs
	Conflicts   int // attempts lost to slot contention
	Throttled   int // admission pops where an over-budget job was bypassed
	Preemptions int // running jobs killed to make room
}

// Scheduler drives concurrent job submissions through a bounded worker
// pool over a shared live view of host slots.
type Scheduler struct {
	rt     vtime.Runtime
	sub    Submitter
	ledger *core.Ledger
	cfg    Config

	queue vtime.Mailbox // admission tokens, one per pending job
	done  vtime.Mailbox // *Job, terminal

	mu      sync.Mutex
	pending jobHeap // jobs awaiting a worker, max-priority first
	rng     *rand.Rand
	stats   Stats
	nextID  int
	started bool
	closed  bool
	live    int // running workers

	buckets map[int]*bucket     // per-tenant quota state (quotas on)
	running map[int]*runningJob // in-flight preemptable jobs by ID
}

// bucket is one tenant's token-bucket quota: a slot-second balance
// accrued lazily at QuotaRate per virtual second, capped at QuotaBurst.
type bucket struct {
	balance float64
	last    time.Time
}

// runningJob pairs an in-flight job with its live preemption handle.
type runningJob struct {
	job *Job
	pre *mpd.Preemption
}

// jobHeap orders pending jobs by priority (desc), then enqueue order
// (asc). With uniform priorities the pop order is exactly the push
// order, so the closed-system experiments see the same FIFO schedule
// they always did.
type jobHeap []*Job

// jobBefore is the admission total order (priority desc, enqueue asc)
// as a standalone predicate — the heap and the quota-aware scan share
// it.
func jobBefore(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return jobBefore(h[i], h[j]) }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// New builds a scheduler over the given hosts (nil hosts = unconstrained
// ledger, used when capacities are unknown). Call Start to spawn the
// workers.
func New(rt vtime.Runtime, sub Submitter, hosts []core.HostSlot, cfg Config) *Scheduler {
	cfg.fillDefaults()
	return &Scheduler{
		rt:      rt,
		sub:     sub,
		ledger:  core.NewLedger(hosts, cfg.JPerHost),
		cfg:     cfg,
		queue:   rt.NewMailbox(),
		done:    rt.NewMailbox(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		buckets: make(map[int]*bucket),
		running: make(map[int]*runningJob),
	}
}

// Ledger exposes the live slot view (experiments and tests).
func (s *Scheduler) Ledger() *core.Ledger { return s.ledger }

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start spawns the worker pool. Idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.live = s.cfg.Workers
	for i := 0; i < s.cfg.Workers; i++ {
		i := i
		s.rt.Go(fmt.Sprintf("sched.worker.%d", i), func() { s.worker() })
	}
}

// Enqueue queues a job for execution and returns its handle, or nil
// after Close. It never blocks and may be called from any goroutine.
func (s *Scheduler) Enqueue(spec mpd.JobSpec) *Job {
	return s.EnqueuePri(spec, 0, 0)
}

// EnqueuePri queues a job with a tenant tag and an admission priority:
// among pending jobs, a free worker always takes the highest priority,
// FIFO within a priority level. Open-system drivers use this to feed
// multi-tenant arrival streams; Enqueue is EnqueuePri(spec, 0, 0).
func (s *Scheduler) EnqueuePri(spec mpd.JobSpec, tenant, priority int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	job := &Job{ID: s.nextID, Spec: spec, Tenant: tenant, Priority: priority, Enqueued: s.rt.Now()}
	s.nextID++
	s.stats.Enqueued++
	heap.Push(&s.pending, job)
	// Push a token under the mutex: Close also takes it, so a handle is
	// only ever returned for a job that reached the queue before it
	// closed (Push on a closed mailbox would silently drop the job). The
	// mailbox stays the FIFO wake-up channel; the heap decides which job
	// the woken worker actually runs.
	s.queue.Push(struct{}{})
	return job
}

// Close stops admission. Queued jobs still run to completion; workers
// exit once the queue drains, after which Wait unblocks.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()
}

// Wait pops k completed jobs (blocking; must run on a runtime actor or
// goroutine). It returns fewer than k only when the scheduler was closed
// and every queued job already completed.
func (s *Scheduler) Wait(k int) []*Job {
	jobs, _ := s.WaitTimeout(k, -1)
	return jobs
}

// WaitTimeout is Wait bounded by a total deadline; d < 0 waits forever.
func (s *Scheduler) WaitTimeout(k int, d time.Duration) ([]*Job, error) {
	var deadline time.Time
	if d >= 0 {
		deadline = s.rt.Now().Add(d)
	}
	var out []*Job
	for len(out) < k {
		wait := time.Duration(-1)
		if d >= 0 {
			if wait = deadline.Sub(s.rt.Now()); wait < 0 {
				return out, vtime.ErrTimeout
			}
		}
		v, err := s.done.PopTimeout(wait)
		if err != nil {
			return out, err
		}
		out = append(out, v.(*Job))
	}
	return out, nil
}

func (s *Scheduler) worker() {
	defer func() {
		s.mu.Lock()
		s.live--
		last := s.live == 0
		s.mu.Unlock()
		if last {
			s.done.Close()
		}
	}()
	for {
		if _, ok := s.queue.Pop(); !ok {
			return
		}
		// One token per pending job, so the heap is never empty here.
		s.mu.Lock()
		job := s.popLocked()
		s.mu.Unlock()
		s.runJob(job)
		job.Finished = s.rt.Now()
		s.mu.Lock()
		if job.Err == nil {
			s.stats.Completed++
		} else {
			s.stats.Failed++
		}
		s.mu.Unlock()
		s.done.Push(job)
	}
}

// popLocked takes the next job off the pending heap. With quotas off
// this is exactly heap.Pop — the legacy schedule. With quotas on, jobs
// from tenants with a non-negative balance outrank over-budget ones:
// the worker takes the best in-budget job under the usual
// priority-then-FIFO order and falls back to the over-budget pool only
// when no tenant can pay. Bypassing the heap's global best counts one
// Throttled event. Caller holds s.mu.
func (s *Scheduler) popLocked() *Job {
	if s.cfg.QuotaRate <= 0 {
		return heap.Pop(&s.pending).(*Job)
	}
	bestAll, bestIn := -1, -1
	for i, j := range s.pending {
		if bestAll < 0 || jobBefore(j, s.pending[bestAll]) {
			bestAll = i
		}
		if s.bucketFor(j.Tenant).balance >= 0 {
			if bestIn < 0 || jobBefore(j, s.pending[bestIn]) {
				bestIn = i
			}
		}
	}
	pick := bestAll
	if bestIn >= 0 {
		pick = bestIn
	}
	if pick != bestAll {
		s.stats.Throttled++
	}
	return heap.Remove(&s.pending, pick).(*Job)
}

// bucketFor returns tenant's quota bucket, accrued to now. New tenants
// start with a full burst. Caller holds s.mu; quotas must be on.
func (s *Scheduler) bucketFor(tenant int) *bucket {
	now := s.rt.Now()
	b, ok := s.buckets[tenant]
	if !ok {
		b = &bucket{balance: s.cfg.QuotaBurst, last: now}
		s.buckets[tenant] = b
		return b
	}
	b.balance += s.cfg.QuotaRate * now.Sub(b.last).Seconds()
	if b.balance > s.cfg.QuotaBurst {
		b.balance = s.cfg.QuotaBurst
	}
	b.last = now
	return b
}

// charge debits a finished attempt's N×R×held slot-seconds from the
// job's tenant bucket, splitting the cost into owned (covered by the
// balance on hand) and borrowed (beyond it) on the job handle. No-op
// with quotas off.
func (s *Scheduler) charge(job *Job, held time.Duration) {
	if s.cfg.QuotaRate <= 0 || held <= 0 {
		return
	}
	cost := float64(job.Spec.N*job.Spec.R) * held.Seconds()
	s.mu.Lock()
	b := s.bucketFor(job.Tenant)
	avail := b.balance
	if avail < 0 {
		avail = 0
	}
	owned := cost
	if owned > avail {
		owned = avail
	}
	b.balance -= cost
	job.OwnedSlotSec += owned
	job.BorrowedSlotSec += cost - owned
	s.mu.Unlock()
}

// tryPreempt kills the weakest eligible running job on behalf of a
// starved pending one: the victim must hold strictly lower priority,
// and with quotas on the preemptor's tenant must be in budget while the
// victim's is over. Victims are ordered lowest priority first, then
// youngest — evict the cheapest, most recently admitted work. The kill
// reuses the crash/release path, so the reservation returns without
// conflict accounting; the victim fails with mpd.ErrPreempted and its
// burned slot-seconds stay charged to its tenant.
func (s *Scheduler) tryPreempt(job *Job) bool {
	s.mu.Lock()
	if s.cfg.QuotaRate > 0 && s.bucketFor(job.Tenant).balance < 0 {
		s.mu.Unlock()
		return false // over-budget jobs do not get to evict anyone
	}
	var victim *runningJob
	for _, r := range s.running {
		if r.job.Priority >= job.Priority {
			continue
		}
		if s.cfg.QuotaRate > 0 && s.bucketFor(r.job.Tenant).balance >= 0 {
			continue // in-budget work is safe
		}
		if victim == nil || preemptBefore(r.job, victim.job) {
			victim = r
		}
	}
	if victim == nil {
		s.mu.Unlock()
		return false
	}
	delete(s.running, victim.job.ID) // one kill per victim
	s.stats.Preemptions++
	s.mu.Unlock()
	victim.pre.Kill()
	return true
}

// preemptBefore orders preemption victims (total, so victim choice is
// deterministic whatever order the running set is scanned in).
func preemptBefore(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.ID > b.ID
}

// runJob executes one job with admission control against the live
// ledger and backoff-retry on contention.
func (s *Scheduler) runJob(job *Job) {
	need := job.Spec.N * job.Spec.R
	job.Started = s.rt.Now()
	for attempt := 0; ; attempt++ {
		job.Attempts++
		s.mu.Lock()
		s.stats.Attempts++
		s.mu.Unlock()

		var err error
		var res *mpd.JobResult
		attemptStart := s.rt.Now()
		if free := s.ledger.FreeProcs(); free >= 0 && free < need {
			// Admission control: the live view cannot place this job, so
			// back off without brokering.
			err = fmt.Errorf("%w: need %d processes, %d free", ErrSaturated, need, free)
		} else {
			res, err = s.attempt(job)
		}
		if err != nil {
			job.Wasted += s.rt.Now().Sub(attemptStart)
		}
		if err == nil || !s.cfg.IsContention(err) || attempt >= s.cfg.Retries {
			job.Result, job.Err = res, err
			return
		}
		job.Conflicts++
		s.mu.Lock()
		s.stats.Conflicts++
		d := s.cfg.Backoff << uint(attempt)
		d += time.Duration(s.rng.Int63n(int64(d)/2 + 1)) // deterministic jitter
		s.mu.Unlock()
		if s.cfg.Preempt && errors.Is(err, ErrSaturated) {
			// Starved for slots: try to evict a weaker over-budget
			// running job so the backoff retry finds room.
			s.tryPreempt(job)
		}
		s.rt.Sleep(d)
	}
}

// attempt runs one Submit with the ledger charged for the job's
// lifetime: busy hosts are excluded from booking, the assignment is
// acquired the moment allocation succeeds, and released when the job
// finishes — successfully or not.
func (s *Scheduler) attempt(job *Job) (*mpd.JobResult, error) {
	spec := job.Spec
	if busy := s.ledger.Busy(); len(busy) > 0 {
		spec.Exclude = append(append([]string(nil), spec.Exclude...), busy...)
	}
	var acquired *core.Assignment
	var heldFrom time.Time
	userHook := spec.OnAllocated
	spec.OnAllocated = func(a *core.Assignment) {
		acquired = a
		heldFrom = s.rt.Now()
		s.ledger.Acquire(a)
		if userHook != nil {
			userHook(a)
		}
	}
	if s.cfg.Preempt {
		spec.Preemptable = true
		userPre := spec.OnPreempt
		spec.OnPreempt = func(p *mpd.Preemption) {
			s.mu.Lock()
			s.running[job.ID] = &runningJob{job: job, pre: p}
			s.mu.Unlock()
			if userPre != nil {
				userPre(p)
			}
		}
	}
	res, err := s.sub.Submit(spec)
	if s.cfg.Preempt {
		s.mu.Lock()
		delete(s.running, job.ID)
		s.mu.Unlock()
	}
	if acquired != nil {
		s.ledger.Release(acquired)
		s.charge(job, s.rt.Now().Sub(heldFrom))
	}
	return res, err
}
