package workload

import (
	"sync"
	"time"

	"p2pmpi/internal/vtime"
)

// Stats summarises a replay.
type Stats struct {
	// Submitted counts submissions actually handed to the hook.
	Submitted int
	// Observed is the replay span from Start to Stop (or to the last
	// submission).
	Observed time.Duration
}

// Driver replays a submission trace against a vtime.Runtime: one actor
// sleeps along the timeline and hands each Submission to the hook at
// its exact virtual arrival time, in timeline order. The hook runs on
// the driver's actor and must not block for the duration of the job —
// hand the submission to a scheduler queue (sched.Scheduler.Enqueue
// never blocks) and return. The same shape as churn.Driver, so open
// workloads and fault injection compose on one world.
type Driver struct {
	rt     vtime.Runtime
	next   func() (Submission, bool)
	submit func(Submission)

	mu      sync.Mutex
	started bool
	stopped bool
	startAt time.Time
	stats   Stats
	done    chan struct{}
}

// NewDriver builds a driver over a precomputed trace (see Trace).
func NewDriver(rt vtime.Runtime, trace []Submission, submit func(Submission)) *Driver {
	i := 0
	return NewStreamDriver(rt, func() (Submission, bool) {
		if i >= len(trace) {
			return Submission{}, false
		}
		sub := trace[i]
		i++
		return sub, true
	}, submit)
}

// NewStreamDriver builds a driver over a pull source instead of a
// materialized trace: next is called once per submission, from the
// replay actor only, and must return timeline-ordered submissions until
// it reports false. Pair it with workload.Stream for long-horizon
// replays whose full trace would not fit in memory.
func NewStreamDriver(rt vtime.Runtime, next func() (Submission, bool), submit func(Submission)) *Driver {
	return &Driver{rt: rt, next: next, submit: submit, done: make(chan struct{})}
}

// Start spawns the replay actor. Idempotent.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.rt.Go("workload.driver", d.replay)
}

func (d *Driver) replay() {
	defer close(d.done)
	start := d.rt.Now()
	d.mu.Lock()
	d.startAt = start
	d.mu.Unlock()
	for {
		sub, ok := d.next()
		if !ok {
			return
		}
		if wait := start.Add(sub.At).Sub(d.rt.Now()); wait > 0 {
			d.rt.Sleep(wait)
		}
		// Stop/submit must be atomic per submission: a Stop that lands
		// between the stopped check and the hook call would otherwise
		// count a submission as Submitted and then suppress it — or
		// deliver it after Stop returned its settled stats. Holding d.mu
		// across both makes each submission all-or-nothing. The hook
		// must not block (documented on Driver), so the critical
		// section stays short.
		d.mu.Lock()
		if d.stopped {
			d.mu.Unlock()
			return
		}
		d.stats.Submitted++
		d.submit(sub)
		d.mu.Unlock()
	}
}

// Drained reports whether the replay actor delivered the whole trace
// (polled by harness pump loops; never blocks).
func (d *Driver) Drained() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// Stop halts the replay (no further submissions fire) and returns the
// settled stats. Idempotent; later calls return the same snapshot.
func (d *Driver) Stop() Stats {
	now := d.rt.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.stopped {
		d.stopped = true
		if d.started {
			d.stats.Observed = now.Sub(d.startAt)
		}
	}
	return d.stats
}
