package workload

import (
	"strings"
	"testing"
)

// FuzzParseArrivalSpec holds the -arrival parser to its contract: never
// panic on any input, and every accepted spec round-trips through
// String() to an equal spec.
func FuzzParseArrivalSpec(f *testing.F) {
	for _, seed := range []string{
		"poisson:rate=0.5",
		"diurnal:peak=2,trough=0.2",
		"diurnal:peak=2,trough=0.2,period=24h,maintevery=6h,maintdur=30m",
		"diurnal:peak=1e3,trough=0,period=600",
		"poisson:rate=1,rate=2",
		"diurnal:peak=,trough=0.2",
		"weekly:peak=2,trough=0.2",
		"weekly:peak=25,trough=10,period=336h,maintevery=24h,maintdur=2h",
		"weekly:peak=1,trough=2",
		"weibull:shape=2",
		"poisson:rate=0x1p10",
		"diurnal:peak=2,trough=0.2,period=-5s",
		strings.Repeat("diurnal:", 40),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseArrivalSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", s, verr)
		}
		again, err := ParseArrivalSpec(spec.String())
		if err != nil {
			t.Fatalf("accepted spec %q renders as %q which does not re-parse: %v", s, spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round trip diverged: %q → %+v → %q → %+v", s, spec, spec.String(), again)
		}
	})
}
