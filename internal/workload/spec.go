package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ArrivalKind selects an arrival-process family.
type ArrivalKind string

const (
	// ArrivalPoisson is the homogeneous Poisson process: exponential
	// inter-arrival times at a constant rate, the open-queue baseline.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalDiurnal is a nonhomogeneous Poisson process whose rate
	// follows a piecewise day/night load curve between Trough and Peak,
	// optionally with periodic maintenance-window blackouts — the shape
	// of the Grid'5000 "year in the life" platform report.
	ArrivalDiurnal ArrivalKind = "diurnal"
	// ArrivalWeekly composes the diurnal day curve with a seven-day
	// weekday/weekend envelope: working days carry the full diurnal
	// shape, Saturday and Sunday a flattened fraction of it — the weekly
	// utilization rhythm of the Grid'5000 "year in the life" report,
	// which shows weekday submission rates roughly twice the weekend's.
	// Period covers the whole week (default 168h).
	ArrivalWeekly ArrivalKind = "weekly"
)

// ArrivalSpec describes one arrival process. Build it directly or parse
// the -arrival command-line syntax with ParseArrivalSpec:
//
//	poisson:rate=0.5
//	diurnal:peak=2,trough=0.2,period=24h
//	diurnal:peak=2,trough=0.2,period=24h,maintevery=6h,maintdur=30m
//	weekly:peak=2,trough=0.2
//
// Rates are submissions per virtual second, summed over all tenants.
type ArrivalSpec struct {
	Kind ArrivalKind
	// Rate is the constant rate of a Poisson process (subs/s).
	Rate float64
	// Peak and Trough bound the diurnal rate curve (subs/s).
	Peak, Trough float64
	// Period is the diurnal cycle length (default 24h). The curve is the
	// fixed 24-slot day profile scaled onto this period, so short test
	// periods compress a full day shape.
	Period time.Duration
	// MaintEvery and MaintDur carve periodic maintenance blackouts: every
	// MaintEvery, arrivals stop for MaintDur (the window opens at phase
	// 0 of each maintenance cycle). Zero disables.
	MaintEvery, MaintDur time.Duration
}

// dayProfile is the fixed piecewise diurnal shape, one weight per 24th
// of the period, normalized to [0, 1]: quiet night, morning ramp,
// afternoon peak, evening tail — the canonical production-grid load
// curve. Rate(t) maps it onto [Trough, Peak].
var dayProfile = [24]float64{
	0.05, 0.02, 0.00, 0.00, 0.02, 0.08, // 00-06: night trough
	0.20, 0.40, 0.65, 0.85, 0.95, 1.00, // 06-12: morning ramp
	1.00, 0.95, 0.90, 0.90, 0.85, 0.70, // 12-18: sustained peak
	0.55, 0.40, 0.30, 0.20, 0.12, 0.08, // 18-24: evening tail
}

// weekProfile is the fixed weekday/weekend envelope for the weekly kind,
// one multiplier per day starting Monday. Working days carry the full
// diurnal curve; the weekend runs at roughly half load with Sunday the
// quietest — the weekly submission rhythm of the Grid'5000 platform
// report.
var weekProfile = [7]float64{
	1.00, 1.00, 1.00, 1.00, 0.90, // Mon-Fri
	0.55, 0.45, // Sat, Sun
}

// withDefaults normalizes a spec (non-destructive).
func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Kind == "" {
		a.Kind = ArrivalPoisson
	}
	if a.Kind == ArrivalDiurnal && a.Period <= 0 {
		a.Period = 24 * time.Hour
	}
	if a.Kind == ArrivalWeekly && a.Period <= 0 {
		a.Period = 7 * 24 * time.Hour
	}
	return a
}

// Validate reports whether the spec is runnable.
func (a ArrivalSpec) Validate() error {
	a = a.withDefaults()
	switch a.Kind {
	case ArrivalPoisson:
		if a.Rate <= 0 {
			return fmt.Errorf("workload: poisson arrival needs rate > 0, got %g", a.Rate)
		}
	case ArrivalDiurnal, ArrivalWeekly:
		if a.Peak <= 0 {
			return fmt.Errorf("workload: %s arrival needs peak > 0, got %g", a.Kind, a.Peak)
		}
		if a.Trough < 0 || a.Trough > a.Peak {
			return fmt.Errorf("workload: %s trough %g outside [0, peak=%g]", a.Kind, a.Trough, a.Peak)
		}
		if a.Period <= 0 {
			return fmt.Errorf("workload: %s period must be positive, got %v", a.Kind, a.Period)
		}
		if (a.MaintEvery > 0) != (a.MaintDur > 0) {
			return fmt.Errorf("workload: maintenance needs both maintevery and maintdur")
		}
		if a.MaintEvery > 0 && a.MaintDur >= a.MaintEvery {
			return fmt.Errorf("workload: maintdur %v must be shorter than maintevery %v", a.MaintDur, a.MaintEvery)
		}
	default:
		return fmt.Errorf("workload: unknown arrival kind %q (want poisson, diurnal or weekly)", a.Kind)
	}
	return nil
}

// MaxRate returns the rate-function ceiling — the thinning envelope of
// the trace generator.
func (a ArrivalSpec) MaxRate() float64 {
	a = a.withDefaults()
	if a.Kind == ArrivalPoisson {
		return a.Rate
	}
	return a.Peak
}

// RateAt returns the instantaneous arrival rate at offset t from trace
// start (subs/s, summed over tenants).
func (a ArrivalSpec) RateAt(t time.Duration) float64 {
	a = a.withDefaults()
	if a.Kind == ArrivalPoisson {
		return a.Rate
	}
	if t < 0 {
		// Extend periodically: Go's % keeps the dividend's sign, and a
		// negative phase would index the day tables out of range.
		if t %= a.Period; t < 0 {
			t += a.Period
		}
	}
	if a.MaintEvery > 0 {
		if phase := t % a.MaintEvery; phase < a.MaintDur {
			return 0 // maintenance blackout
		}
	}
	phase := float64(t%a.Period) / float64(a.Period) // [0, 1)
	week := 1.0
	if a.Kind == ArrivalWeekly {
		// The period covers seven days: each seventh gets the full
		// diurnal shape scaled by that day's weekday/weekend weight.
		dayPos := phase * 7
		day := int(dayPos)
		if day > 6 {
			day = 6
		}
		week = weekProfile[day]
		phase = dayPos - float64(day) // [0, 1) within the day
	}
	pos := phase * 24
	slot := int(pos)
	if slot > 23 {
		slot = 23
	}
	next := (slot + 1) % 24
	frac := pos - float64(slot)
	shape := dayProfile[slot]*(1-frac) + dayProfile[next]*frac
	return a.Trough + (a.Peak-a.Trough)*shape*week
}

// String renders the spec in the exact syntax ParseArrivalSpec accepts
// (round-trip property: ParseArrivalSpec(s.String()) ≡ s).
func (a ArrivalSpec) String() string {
	a = a.withDefaults()
	var b strings.Builder
	switch a.Kind {
	case ArrivalDiurnal, ArrivalWeekly:
		fmt.Fprintf(&b, "%s:peak=%s,trough=%s,period=%s",
			a.Kind, formatRate(a.Peak), formatRate(a.Trough), a.Period)
		if a.MaintEvery > 0 {
			fmt.Fprintf(&b, ",maintevery=%s,maintdur=%s", a.MaintEvery, a.MaintDur)
		}
	default:
		fmt.Fprintf(&b, "poisson:rate=%s", formatRate(a.Rate))
	}
	return b.String()
}

func formatRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

// ParseArrivalSpec parses the -arrival command-line syntax
// ("kind:key=value,key=value"). Unknown kinds, unknown keys, malformed
// values and invalid combinations are errors, never panics — the fuzz
// target holds the parser to that.
func ParseArrivalSpec(s string) (ArrivalSpec, error) {
	var a ArrivalSpec
	head, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	a.Kind = ArrivalKind(strings.TrimSpace(head))
	switch a.Kind {
	case ArrivalPoisson, ArrivalDiurnal, ArrivalWeekly:
	case "":
		return a, fmt.Errorf("workload: empty arrival spec")
	default:
		return a, fmt.Errorf("workload: unknown arrival kind %q (want poisson, diurnal or weekly)", a.Kind)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || val == "" {
			return a, fmt.Errorf("workload: arrival spec field %q is not key=value", kv)
		}
		if seen[key] {
			return a, fmt.Errorf("workload: duplicate arrival field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "rate":
			err = parseRateInto(&a.Rate, val)
		case "peak":
			err = parseRateInto(&a.Peak, val)
		case "trough":
			err = parseRateInto(&a.Trough, val)
		case "period":
			err = parseDurInto(&a.Period, val)
		case "maintevery":
			err = parseDurInto(&a.MaintEvery, val)
		case "maintdur":
			err = parseDurInto(&a.MaintDur, val)
		default:
			err = fmt.Errorf("unknown field %q (want %s)", key, strings.Join(arrivalFields(a.Kind), "|"))
		}
		if err != nil {
			return a, fmt.Errorf("workload: arrival %s: %w", key, err)
		}
	}
	if a.Kind == ArrivalPoisson && (a.Peak != 0 || a.Trough != 0 || a.Period != 0 || a.MaintEvery != 0 || a.MaintDur != 0) {
		return a, fmt.Errorf("workload: poisson arrival takes only rate=")
	}
	if a.Kind != ArrivalPoisson && a.Rate != 0 {
		return a, fmt.Errorf("workload: %s arrival takes peak=/trough=, not rate=", a.Kind)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a.withDefaults(), nil
}

func arrivalFields(k ArrivalKind) []string {
	if k == ArrivalPoisson {
		return []string{"rate"}
	}
	f := []string{"peak", "trough", "period", "maintevery", "maintdur"}
	sort.Strings(f)
	return f
}

// parseRateInto parses a non-negative finite rate.
func parseRateInto(dst *float64, s string) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad rate %q", s)
	}
	if v < 0 || v != v || v > 1e12 {
		return fmt.Errorf("rate %q out of range", s)
	}
	*dst = v
	return nil
}

// parseDurInto parses a duration: bare numbers are seconds ("600"), Go
// durations work too ("10m").
func parseDurInto(dst *time.Duration, s string) error {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if secs < 0 || secs != secs || secs > 1e12 {
			return fmt.Errorf("duration %q out of range", s)
		}
		*dst = time.Duration(secs * float64(time.Second))
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", s)
	}
	*dst = d
	return nil
}
