package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Submission is one arriving job request on the open-system timeline.
type Submission struct {
	// At is the virtual-time offset from trace start.
	At time.Duration
	// Seq numbers submissions in timeline order over the whole trace
	// (assigned after the cross-tenant merge).
	Seq int
	// Tenant is the submitting tenant's index (0-based; tenant 0 has
	// the largest rate share and the highest priority).
	Tenant int
	// Priority is the admission priority (higher is more urgent).
	Priority int
	// N is the requested rank count, drawn bounded-Pareto.
	N int
	// Seconds is the service duration (failure-free spin time), drawn
	// bounded-Pareto.
	Seconds float64
	// Deadline is the SLO completion deadline as an offset from trace
	// start: At + factor×Seconds, where factor comes from the config's
	// per-priority-class DeadlineFactors. Zero means no deadline
	// (DeadlineFactors unset). Derived from the existing draws — setting
	// factors never perturbs the arrival or size streams.
	Deadline time.Duration
}

// Config describes an open-system workload. Traces are a pure function
// of the Config: the same Config always generates the same trace, and
// the per-tenant generators are independently seeded, so the trace is
// byte-identical however tenant streams are generated or merged (the
// order-independence property test in trace_test.go holds Trace to
// this).
type Config struct {
	// Seed drives every draw, fanned out per tenant.
	Seed int64
	// Arrival is the platform-wide arrival process; each tenant owns a
	// thinned copy at its rate share.
	Arrival ArrivalSpec
	// Tenants is the number of submitting users (default 1).
	Tenants int
	// TenantSkew shapes the tenants' rate shares as a Zipf law: tenant
	// i's share ∝ (i+1)^−skew. 0 (the default) gives equal shares; 1
	// reproduces the few-heavy-users imbalance platform reports show.
	TenantSkew float64
	// PriorityLevels stratifies tenants into admission priorities
	// (default 1 = everyone equal). With L levels, tenant i gets
	// priority L−1−⌊i·L/Tenants⌋: the first tenants — the heavy users —
	// are also the privileged ones.
	PriorityLevels int
	// NMin, NMax and NAlpha shape the bounded-Pareto rank-count draw
	// (defaults 2, 32, 1.4): many small jobs, a heavy tail of wide
	// ones.
	NMin, NMax int
	NAlpha     float64
	// DurMin, DurMax and DurAlpha shape the bounded-Pareto service
	// duration in seconds (defaults 20, 1800, 1.3).
	DurMin, DurMax float64
	DurAlpha       float64
	// DeadlineFactors gives each priority class an SLO deadline
	// multiplier: a job of priority p with factor f must finish by
	// At + f×Seconds. Index 0 is priority 0 (the lowest class); a class
	// beyond the slice reuses the last entry. Empty disables deadlines
	// (every Submission.Deadline stays zero).
	DeadlineFactors []float64
	// Horizon bounds the arrival timeline (required).
	Horizon time.Duration
	// MaxSubmissions caps the trace size after the merge (0 = no cap);
	// a runaway rate×horizon product truncates instead of exhausting
	// memory.
	MaxSubmissions int
}

func (c Config) withDefaults() Config {
	c.Arrival = c.Arrival.withDefaults()
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.PriorityLevels <= 0 {
		c.PriorityLevels = 1
	}
	if c.NMin <= 0 {
		c.NMin = 2
	}
	if c.NMax < c.NMin {
		c.NMax = 32
		if c.NMax < c.NMin {
			c.NMax = c.NMin
		}
	}
	if c.NAlpha <= 0 {
		c.NAlpha = 1.4
	}
	if c.DurMin <= 0 {
		c.DurMin = 20
	}
	if c.DurMax < c.DurMin {
		c.DurMax = 1800
		if c.DurMax < c.DurMin {
			c.DurMax = c.DurMin
		}
	}
	if c.DurAlpha <= 0 {
		c.DurAlpha = 1.3
	}
	return c
}

// Validate reports whether the config can generate a trace.
func (c Config) Validate() error {
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("workload: config needs a positive horizon")
	}
	return nil
}

// subSeed derives a per-tenant RNG seed from the master seed and a
// stable label, so every tenant's arrival stream is independent of the
// order streams are generated in — the same construction churn uses
// per host.
func subSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return seed ^ int64(h.Sum64())
}

// tenantWeight returns tenant i's normalized rate share.
func tenantWeight(c Config, i int) float64 {
	if c.Tenants == 1 {
		return 1
	}
	var total float64
	for j := 0; j < c.Tenants; j++ {
		total += math.Pow(float64(j+1), -c.TenantSkew)
	}
	return math.Pow(float64(i+1), -c.TenantSkew) / total
}

// TenantPriority returns tenant i's admission priority under c.
func TenantPriority(c Config, i int) int {
	c = c.withDefaults()
	return c.PriorityLevels - 1 - i*c.PriorityLevels/c.Tenants
}

// deadlineFactor returns the SLO multiplier for priority class pri, or
// 0 when deadlines are disabled. Classes beyond the configured slice
// reuse the last factor.
func deadlineFactor(c Config, pri int) float64 {
	if len(c.DeadlineFactors) == 0 {
		return 0
	}
	if pri < 0 {
		pri = 0
	}
	if pri >= len(c.DeadlineFactors) {
		pri = len(c.DeadlineFactors) - 1
	}
	return c.DeadlineFactors[pri]
}

// boundedPareto inverts the bounded-Pareto CDF on [lo, hi] with tail
// index alpha: the heavy-tailed-but-bounded shape grid workload
// archives report for both job widths and runtimes.
func boundedPareto(u, alpha, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	la, ha := math.Pow(lo, -alpha), math.Pow(hi, -alpha)
	return math.Pow(la-u*(la-ha), -1/alpha)
}

// TenantTrace generates tenant i's submission stream: a thinned
// nonhomogeneous Poisson process at the tenant's rate share, with
// bounded-Pareto sizes and durations drawn from the tenant's own
// seeded stream. The result is sorted by At and independent of every
// other tenant. Seq fields are zero — the cross-tenant merge assigns
// them.
func TenantTrace(cfg Config, i int) []Submission {
	c := cfg.withDefaults()
	w := tenantWeight(c, i)
	envelope := c.Arrival.MaxRate() * w
	if envelope <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(subSeed(c.Seed, fmt.Sprintf("tenant:%d", i))))
	pri := TenantPriority(c, i)
	var out []Submission
	var t time.Duration
	for {
		// Exponential envelope step (thinning): 1−U ∈ (0, 1].
		dt := -math.Log(1-rng.Float64()) / envelope
		t += time.Duration(dt * float64(time.Second))
		if t >= c.Horizon || t < 0 {
			break
		}
		// Accept with prob rate(t)/envelope-rate; the rejected draws
		// still consume one uniform so the stream stays aligned.
		if rng.Float64()*c.Arrival.MaxRate() > c.Arrival.RateAt(t) {
			continue
		}
		n := int(math.Round(boundedPareto(rng.Float64(), c.NAlpha, float64(c.NMin), float64(c.NMax))))
		if n < c.NMin {
			n = c.NMin
		}
		if n > c.NMax {
			n = c.NMax
		}
		secs := boundedPareto(rng.Float64(), c.DurAlpha, c.DurMin, c.DurMax)
		sub := Submission{At: t, Tenant: i, Priority: pri, N: n, Seconds: secs}
		if f := deadlineFactor(c, pri); f > 0 {
			sub.Deadline = t + time.Duration(f*secs*float64(time.Second))
		}
		out = append(out, sub)
		if c.MaxSubmissions > 0 && len(out) >= c.MaxSubmissions {
			break
		}
	}
	return out
}

// Trace expands the workload into the full submission timeline: every
// tenant's stream, merged and sorted by (At, Tenant), Seq assigned in
// timeline order, truncated to MaxSubmissions. Deterministic in cfg
// alone, and order-independent: generating the tenant streams in any
// order (or in parallel) yields a byte-identical trace, because each
// stream is a pure function of (Seed, tenant index) and the merge key
// is total.
func Trace(cfg Config) ([]Submission, error) {
	c := cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Submission
	for i := 0; i < c.Tenants; i++ {
		out = append(out, TenantTrace(cfg, i)...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Tenant < out[b].Tenant
	})
	if c.MaxSubmissions > 0 && len(out) > c.MaxSubmissions {
		out = out[:c.MaxSubmissions]
	}
	for i := range out {
		out[i].Seq = i
	}
	return out, nil
}
