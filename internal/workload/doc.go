// Package workload generates open-system submission traces: seeded
// arrival processes (homogeneous Poisson, piecewise diurnal rate
// curves with maintenance-window blackouts) over multi-tenant user
// populations with Zipf rate shares and stratified priorities, with
// bounded-Pareto job widths and service durations — the empirical
// shapes of the Grid'5000 "year in the life" platform report, replayed
// against the co-allocation middleware instead of the paper's closed
// K-job batches.
//
// The contract mirrors internal/churn: Trace expands a Config into a
// deterministic, order-independent submission timeline (each tenant's
// stream is a pure function of (Seed, tenant index); the cross-tenant
// merge key is total), and Driver replays it on a vtime.Runtime,
// handing each Submission to a non-blocking hook at its exact virtual
// arrival time. Traces therefore compose with churn injection and with
// the sharded vtime.Domain engine, and replay byte-identically at any
// -workers/-shards/-sn setting — the open-family golden tests rest on
// this.
//
// ParseArrivalSpec parses the gridbench -arrival syntax
// ("poisson:rate=0.5", "diurnal:peak=2,trough=0.2,period=24h,
// maintevery=6h,maintdur=30m"); a fuzz target holds the parser to
// never panicking and to round-tripping through ArrivalSpec.String.
package workload
