package workload

import (
	"testing"
	"time"

	"p2pmpi/internal/vtime"
)

// streamConfigs spans the generator's feature space: poisson, diurnal
// with maintenance, the weekly curve, tenant skew both ways, priority
// stratification, deadlines, and both kinds of MaxSubmissions cut
// (per-tenant and global).
func streamConfigs() []Config {
	return []Config{
		{Seed: 1, Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 0.6}, Tenants: 3, Horizon: time.Hour},
		{Seed: 42, Arrival: diurnalSpec(), Tenants: 5, TenantSkew: 1, PriorityLevels: 3, Horizon: 2 * time.Hour},
		{Seed: 7, Arrival: ArrivalSpec{Kind: ArrivalWeekly, Peak: 2, Trough: 0.2},
			Tenants: 4, TenantSkew: -1, PriorityLevels: 2, Horizon: 168 * time.Hour,
			MaxSubmissions: 5000, DeadlineFactors: []float64{6, 3}},
		{Seed: 9, Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 2}, Tenants: 2,
			Horizon: time.Hour, MaxSubmissions: 50, DeadlineFactors: []float64{4}},
	}
}

// TestStreamMatchesTrace is the structural-equivalence property the
// streaming replay path rests on: pulling the lazy generator dry must
// reproduce the materialized Trace byte for byte — same merge order,
// same Seq numbering, same deadline assignment, same truncation.
func TestStreamMatchesTrace(t *testing.T) {
	for ci, cfg := range streamConfigs() {
		trace, err := Trace(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		for i, want := range trace {
			peek, ok := s.Peek()
			if !ok {
				t.Fatalf("config %d: stream dry at %d of %d", ci, i, len(trace))
			}
			if peek != want {
				t.Fatalf("config %d: Peek[%d] = %+v, want %+v", ci, i, peek, want)
			}
			got, ok := s.Next()
			if !ok || got != want {
				t.Fatalf("config %d: Next[%d] = %+v (ok=%v), want %+v", ci, i, got, ok, want)
			}
		}
		if sub, ok := s.Next(); ok {
			t.Fatalf("config %d: stream longer than trace: extra %+v", ci, sub)
		}
		if _, ok := s.Peek(); ok {
			t.Fatalf("config %d: Peek still live after exhaustion", ci)
		}
	}
}

// TestWeeklyRate pins the weekly curve's shape: weekday plateaus are
// equal, Friday dips, the weekend sits lowest, and the within-day
// diurnal shape still applies on top.
func TestWeeklyRate(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalWeekly, Peak: 2, Trough: 0.2}
	spec = spec.withDefaults()
	if spec.Period != 168*time.Hour {
		t.Fatalf("weekly default period = %v, want 168h", spec.Period)
	}
	day := spec.Period / 7
	// Sample each day at its local noon (peak of the within-day shape).
	noon := func(d int) float64 { return spec.RateAt(time.Duration(d)*day + day/2) }
	for d := 1; d < 4; d++ {
		if noon(d) != noon(0) {
			t.Errorf("weekday %d noon rate %g != monday %g", d, noon(d), noon(0))
		}
	}
	if !(noon(4) < noon(0)) {
		t.Errorf("friday %g not below the weekday plateau %g", noon(4), noon(0))
	}
	if !(noon(5) < noon(4)) || !(noon(6) < noon(5)) {
		t.Errorf("weekend not the trough: fri=%g sat=%g sun=%g", noon(4), noon(5), noon(6))
	}
	// Within a day the diurnal shape applies: 4am sits below noon.
	if early := spec.RateAt(4 * time.Hour * 168 / 168); !(early < noon(0)) {
		t.Errorf("4am rate %g not below noon %g", early, noon(0))
	}
	// The envelope still bounds the curve everywhere.
	for i := 0; i < 20_000; i++ {
		at := spec.Period / 20_000 * time.Duration(i)
		if r := spec.RateAt(at); r > spec.MaxRate()+1e-12 {
			t.Fatalf("rate %g at %v exceeds envelope %g", r, at, spec.MaxRate())
		}
	}
}

// TestWeeklyParseRoundTrip: the weekly kind survives String → Parse.
func TestWeeklyParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"weekly:peak=2,trough=0.2",
		"weekly:peak=1.5,trough=0,period=336h",
		"weekly:peak=3,trough=0.5,maintevery=24h,maintdur=2h",
	} {
		a, err := ParseArrivalSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		b, err := ParseArrivalSpec(a.String())
		if err != nil {
			t.Fatalf("%q → %q: %v", s, a.String(), err)
		}
		if a != b {
			t.Fatalf("%q round-tripped to %+v, want %+v", s, b, a)
		}
	}
	for _, s := range []string{
		"weekly:peak=0",
		"weekly:trough=1",
		"weekly:peak=1,trough=2",
		"weekly:peak=1,rate=1",
	} {
		if _, err := ParseArrivalSpec(s); err == nil {
			t.Errorf("%q parsed without error", s)
		}
	}
}

// TestDeadlines: deadline factors are pure decoration — they never
// perturb the arrival/size/priority draws — and each submission's
// deadline is At + factor×Seconds with the factor picked by priority
// class (last entry reused beyond the slice, empty slice = none).
func TestDeadlines(t *testing.T) {
	base := testConfig()
	plain, err := Trace(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.DeadlineFactors = []float64{10, 5} // classes 2.. reuse 5
	dl, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dl) != len(plain) {
		t.Fatalf("deadline factors changed the trace length: %d vs %d", len(dl), len(plain))
	}
	for i := range dl {
		want := plain[i]
		got := dl[i]
		got.Deadline = 0
		if got != want {
			t.Fatalf("submission %d perturbed by deadline factors:\nwith:    %+v\nwithout: %+v", i, dl[i], want)
		}
		f := 5.0
		if dl[i].Priority == 0 {
			f = 10
		} else if dl[i].Priority == 1 {
			f = 5
		}
		wantDL := dl[i].At + time.Duration(f*dl[i].Seconds*float64(time.Second))
		if dl[i].Deadline != wantDL {
			t.Fatalf("submission %d (pri %d): deadline %v, want %v", i, dl[i].Priority, dl[i].Deadline, wantDL)
		}
	}
	for i := range plain {
		if plain[i].Deadline != 0 {
			t.Fatalf("submission %d has a deadline with factors unset", i)
		}
	}
}

// TestDriverStopSubmitAtomic closes the stop/submit race: a Stop
// landing between the driver's stopped check and the hook call used to
// count a submission as Submitted and then deliver it after Stop
// returned its settled stats. Now each submission is all-or-nothing:
// whatever Stop's snapshot says was submitted is exactly what the hook
// saw, no matter where the stop lands. Run under -race, many cut
// points.
func TestDriverStopSubmitAtomic(t *testing.T) {
	cfg := Config{
		Seed:    11,
		Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 2},
		Tenants: 2,
		Horizon: 10 * time.Minute,
	}
	trace, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < 20; cut++ {
		s := vtime.New()
		delivered := 0
		d := NewDriver(s, trace, func(Submission) { delivered++ })
		d.Start()
		// Stop from a competing actor somewhere mid-replay.
		stopAt := cfg.Horizon * time.Duration(cut) / 20
		var snap Stats
		s.Go("test.stopper", func() {
			s.Sleep(stopAt)
			snap = d.Stop()
		})
		s.RunFor(cfg.Horizon + time.Minute)
		if delivered != snap.Submitted {
			t.Fatalf("cut %d: hook saw %d submissions, Stop's snapshot says %d", cut, delivered, snap.Submitted)
		}
		if late := d.Stop(); late.Submitted != snap.Submitted {
			t.Fatalf("cut %d: second Stop drifted: %d vs %d", cut, late.Submitted, snap.Submitted)
		}
		s.Shutdown()
	}
}

// TestStreamDriverReplay: the pull-based driver delivers a Stream's
// submissions at their exact virtual arrival times, identical to the
// materialized replay.
func TestStreamDriverReplay(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 1},
		Tenants: 2,
		Horizon: 5 * time.Minute,
	}
	trace, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := vtime.New()
	defer s.Shutdown()
	start := s.Now()
	var got []Submission
	var at []time.Duration
	d := NewStreamDriver(s, stream.Next, func(sub Submission) {
		got = append(got, sub)
		at = append(at, s.Now().Sub(start))
	})
	d.Start()
	s.RunFor(cfg.Horizon + time.Minute)
	if !d.Drained() {
		t.Fatal("stream driver did not drain")
	}
	if len(got) != len(trace) {
		t.Fatalf("replayed %d submissions, want %d", len(got), len(trace))
	}
	for i, sub := range trace {
		if got[i] != sub {
			t.Fatalf("submission %d = %+v, want %+v", i, got[i], sub)
		}
		if at[i] != sub.At {
			t.Fatalf("submission %d fired at %v, trace says %v", i, at[i], sub.At)
		}
	}
	if st := d.Stop(); st.Submitted != len(trace) {
		t.Fatalf("stats say %d submitted, want %d", st.Submitted, len(trace))
	}
}
