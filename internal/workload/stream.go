package workload

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// tenantGen is the lazy form of TenantTrace: the same seeded draw
// sequence (envelope-exp, accept-uniform, N, duration) emitted one
// submission at a time instead of materialized as a slice.
type tenantGen struct {
	cfg      Config // defaults applied
	tenant   int
	pri      int
	envelope float64
	rng      *rand.Rand
	t        time.Duration
	emitted  int
	done     bool
}

func newTenantGen(c Config, i int) *tenantGen {
	g := &tenantGen{cfg: c, tenant: i, pri: TenantPriority(c, i)}
	g.envelope = c.Arrival.MaxRate() * tenantWeight(c, i)
	if g.envelope <= 0 {
		g.done = true
		return g
	}
	g.rng = rand.New(rand.NewSource(subSeed(c.Seed, fmt.Sprintf("tenant:%d", i))))
	return g
}

// next returns the tenant's next submission (Seq unassigned), or false
// when the stream is exhausted. Draw-for-draw identical to TenantTrace,
// including the per-tenant MaxSubmissions cut.
func (g *tenantGen) next() (Submission, bool) {
	if g.done {
		return Submission{}, false
	}
	c := g.cfg
	for {
		dt := -math.Log(1-g.rng.Float64()) / g.envelope
		g.t += time.Duration(dt * float64(time.Second))
		if g.t >= c.Horizon || g.t < 0 {
			g.done = true
			return Submission{}, false
		}
		if g.rng.Float64()*c.Arrival.MaxRate() > c.Arrival.RateAt(g.t) {
			continue
		}
		n := int(math.Round(boundedPareto(g.rng.Float64(), c.NAlpha, float64(c.NMin), float64(c.NMax))))
		if n < c.NMin {
			n = c.NMin
		}
		if n > c.NMax {
			n = c.NMax
		}
		secs := boundedPareto(g.rng.Float64(), c.DurAlpha, c.DurMin, c.DurMax)
		sub := Submission{At: g.t, Tenant: g.tenant, Priority: g.pri, N: n, Seconds: secs}
		if f := deadlineFactor(c, g.pri); f > 0 {
			sub.Deadline = g.t + time.Duration(f*secs*float64(time.Second))
		}
		g.emitted++
		if c.MaxSubmissions > 0 && g.emitted >= c.MaxSubmissions {
			g.done = true
		}
		return sub, true
	}
}

// streamHead is one tenant's next submission sitting in the merge heap.
type streamHead struct {
	sub Submission
	gen *tenantGen
}

type streamHeap []streamHead

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	if h[i].sub.At != h[j].sub.At {
		return h[i].sub.At < h[j].sub.At
	}
	return h[i].sub.Tenant < h[j].sub.Tenant
}
func (h streamHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)   { *h = append(*h, x.(streamHead)) }
func (h *streamHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Stream produces the exact submission timeline Trace would return —
// same merge order, same Seq numbering, same MaxSubmissions truncation
// — in O(tenants) memory instead of O(trace length). It is the replay
// path for week-long multi-million-submission horizons, where the
// materialized trace alone would dwarf the simulated world.
//
// The equivalence is structural: each tenant generator is draw-for-draw
// the TenantTrace loop, and the k-way merge uses Trace's total sort key
// (At, Tenant). The property test in stream_test.go holds the two to
// byte equality.
type Stream struct {
	heads streamHeap
	seq   int
	max   int // 0 = uncapped
}

// NewStream validates cfg and positions the stream at the first
// submission.
func NewStream(cfg Config) (*Stream, error) {
	c := cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{max: c.MaxSubmissions}
	for i := 0; i < c.Tenants; i++ {
		g := newTenantGen(c, i)
		if sub, ok := g.next(); ok {
			s.heads = append(s.heads, streamHead{sub, g})
		}
	}
	heap.Init(&s.heads)
	return s, nil
}

// Peek returns the next submission without consuming it (Seq already
// assigned), or false when the stream is exhausted.
func (s *Stream) Peek() (Submission, bool) {
	if s.done() {
		return Submission{}, false
	}
	sub := s.heads[0].sub
	sub.Seq = s.seq
	return sub, true
}

// Next consumes and returns the next submission in timeline order, or
// false when the stream is exhausted.
func (s *Stream) Next() (Submission, bool) {
	if s.done() {
		return Submission{}, false
	}
	top := &s.heads[0]
	sub := top.sub
	if nxt, ok := top.gen.next(); ok {
		top.sub = nxt
		heap.Fix(&s.heads, 0)
	} else {
		heap.Pop(&s.heads)
	}
	sub.Seq = s.seq
	s.seq++
	return sub, true
}

func (s *Stream) done() bool {
	return len(s.heads) == 0 || (s.max > 0 && s.seq >= s.max)
}
