package workload

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"p2pmpi/internal/vtime"
)

func diurnalSpec() ArrivalSpec {
	return ArrivalSpec{
		Kind: ArrivalDiurnal, Peak: 2, Trough: 0.2,
		Period: time.Hour, MaintEvery: 20 * time.Minute, MaintDur: 2 * time.Minute,
	}
}

func testConfig() Config {
	return Config{
		Seed:           42,
		Arrival:        diurnalSpec(),
		Tenants:        5,
		TenantSkew:     1,
		PriorityLevels: 3,
		Horizon:        2 * time.Hour,
	}
}

// TestTraceDeterministic: same config, same bytes.
func TestTraceDeterministic(t *testing.T) {
	a, err := Trace(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trace(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same config differ")
	}
	if len(a) < 100 {
		t.Fatalf("trace suspiciously small: %d submissions", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("trace not sorted at %d", i)
		}
		if a[i].Seq != i {
			t.Fatalf("seq %d at index %d", a[i].Seq, i)
		}
	}
}

// TestTraceOrderIndependent is the property the golden open-family
// tests rest on: the merged trace is byte-identical regardless of the
// order (or concurrency) in which tenant streams are generated.
// Tenant streams are generated in a random permutation — concurrently —
// merged manually with the same total key, and compared against Trace.
func TestTraceOrderIndependent(t *testing.T) {
	cfg := testConfig()
	want, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(1)).Perm(cfg.Tenants)
	parts := make([][]Submission, cfg.Tenants)
	var wg sync.WaitGroup
	for _, i := range perm {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[i] = TenantTrace(cfg, i)
		}()
	}
	wg.Wait()
	var got []Submission
	for _, i := range perm {
		got = append(got, parts[i]...)
	}
	sort.Slice(got, func(a, b int) bool {
		if got[a].At != got[b].At {
			return got[a].At < got[b].At
		}
		return got[a].Tenant < got[b].Tenant
	})
	for i := range got {
		got[i].Seq = i
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted concurrent generation diverged (%d vs %d submissions)", len(got), len(want))
	}
}

// TestTraceShapes: sizes/durations stay inside their bounded-Pareto
// bounds, priorities follow the tenant strata, the heavy tenants
// dominate under skew, and maintenance windows are empty.
func TestTraceShapes(t *testing.T) {
	cfg := testConfig()
	trace, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.withDefaults()
	byTenant := make([]int, cfg.Tenants)
	for _, s := range trace {
		if s.N < c.NMin || s.N > c.NMax {
			t.Fatalf("N=%d outside [%d, %d]", s.N, c.NMin, c.NMax)
		}
		if s.Seconds < c.DurMin || s.Seconds > c.DurMax {
			t.Fatalf("dur=%g outside [%g, %g]", s.Seconds, c.DurMin, c.DurMax)
		}
		if want := TenantPriority(cfg, s.Tenant); s.Priority != want {
			t.Fatalf("tenant %d priority %d, want %d", s.Tenant, s.Priority, want)
		}
		// Maintenance blackout: no arrivals in [k·every, k·every+dur).
		if phase := s.At % c.Arrival.MaintEvery; phase < c.Arrival.MaintDur {
			t.Fatalf("submission at %v inside maintenance window (phase %v)", s.At, phase)
		}
		byTenant[s.Tenant]++
	}
	if byTenant[0] <= byTenant[cfg.Tenants-1] {
		t.Fatalf("skew=1 but tenant 0 (%d subs) not heavier than tenant %d (%d subs)",
			byTenant[0], cfg.Tenants-1, byTenant[cfg.Tenants-1])
	}
	if TenantPriority(cfg, 0) <= TenantPriority(cfg, cfg.Tenants-1) {
		t.Fatal("tenant 0 should hold the highest priority")
	}
}

// TestPoissonRate: the homogeneous generator hits its configured rate
// within sampling noise, and diurnal arrival counts track the rate
// curve (peak hours beat trough hours).
func TestPoissonRate(t *testing.T) {
	cfg := Config{
		Seed:    7,
		Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 0.5},
		Horizon: 10 * time.Hour,
	}
	trace, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * cfg.Horizon.Seconds()
	if got := float64(len(trace)); math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("poisson rate 0.5/s over %v: %v submissions, want ≈%v", cfg.Horizon, got, want)
	}

	dCfg := Config{Seed: 7, Arrival: diurnalSpec(), Horizon: 12 * time.Hour}
	dTrace, err := Trace(dCfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := diurnalSpec()
	var peakN, troughN int
	for _, s := range dTrace {
		phase := float64(s.At%spec.Period) / float64(spec.Period)
		switch {
		case phase >= 0.4 && phase < 0.6: // mid-day plateau
			peakN++
		case phase < 0.2: // night trough
			troughN++
		}
	}
	if peakN <= 2*troughN {
		t.Fatalf("diurnal shape missing: peak-window %d vs trough-window %d arrivals", peakN, troughN)
	}
}

// TestDriverReplay: the driver fires every submission at its exact
// virtual time, in order.
func TestDriverReplay(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 1},
		Tenants: 2,
		Horizon: 5 * time.Minute,
	}
	trace, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := vtime.New()
	defer s.Shutdown()
	start := s.Now()
	var got []Submission
	var at []time.Duration
	d := NewDriver(s, trace, func(sub Submission) {
		got = append(got, sub)
		at = append(at, s.Now().Sub(start))
	})
	d.Start()
	s.RunFor(cfg.Horizon + time.Minute)
	if !d.Drained() {
		t.Fatal("driver did not drain")
	}
	if !reflect.DeepEqual(got, trace) {
		t.Fatalf("replayed %d submissions, want %d (or order diverged)", len(got), len(trace))
	}
	for i, sub := range trace {
		if at[i] != sub.At {
			t.Fatalf("submission %d fired at %v, trace says %v", i, at[i], sub.At)
		}
	}
	st := d.Stop()
	if st.Submitted != len(trace) {
		t.Fatalf("stats say %d submitted, want %d", st.Submitted, len(trace))
	}
}

// TestParseArrivalSpecRoundTrip: String() re-parses to the same spec,
// for handwritten and quick-generated specs.
func TestParseArrivalSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"poisson:rate=0.5",
		"poisson:rate=2",
		"diurnal:peak=2,trough=0.2",
		"diurnal:peak=1.5,trough=0,period=10m",
		"diurnal:peak=3,trough=0.5,period=24h,maintevery=6h,maintdur=30m",
	} {
		a, err := ParseArrivalSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		b, err := ParseArrivalSpec(a.String())
		if err != nil {
			t.Fatalf("%q → %q: %v", s, a.String(), err)
		}
		if a != b {
			t.Fatalf("%q round-tripped to %+v, want %+v", s, b, a)
		}
	}
	check := func(peak, trough float64, periodMin uint16) bool {
		peak = math.Abs(peak)
		if peak == 0 || math.IsInf(peak, 0) || math.IsNaN(peak) || peak > 1e11 {
			return true
		}
		trough = math.Mod(math.Abs(trough), peak)
		spec := ArrivalSpec{
			Kind: ArrivalDiurnal, Peak: peak, Trough: trough,
			Period: time.Duration(int(periodMin)+1) * time.Minute,
		}
		got, err := ParseArrivalSpec(spec.String())
		return err == nil && got == spec.withDefaults()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestParseArrivalSpecRejects: malformed specs error out cleanly.
func TestParseArrivalSpecRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"poisson",
		"poisson:rate=0",
		"poisson:rate=-1",
		"poisson:rate=abc",
		"poisson:peak=2",
		"poisson:rate=1,rate=2",
		"diurnal:peak=0",
		"diurnal:trough=1",
		"diurnal:peak=1,trough=2",
		"diurnal:peak=1,rate=1",
		"diurnal:peak=1,maintevery=1h",
		"diurnal:peak=1,maintevery=10m,maintdur=20m",
		"diurnal:peak=1,bogus=3",
		"weibull:rate=1",
		"poisson:rate",
		"poisson:=1",
	} {
		if _, err := ParseArrivalSpec(s); err == nil {
			t.Errorf("%q parsed without error", s)
		}
	}
}

// TestRateAtEnvelope: the thinning envelope really is an upper bound of
// the rate function everywhere (otherwise the generator would silently
// under-sample the peak).
func TestRateAtEnvelope(t *testing.T) {
	spec := diurnalSpec()
	for i := 0; i < 10_000; i++ {
		at := time.Duration(i) * spec.Period / 2500
		if r := spec.RateAt(at); r > spec.MaxRate()+1e-12 {
			t.Fatalf("rate %g at %v exceeds envelope %g", r, at, spec.MaxRate())
		}
	}
}

// TestTraceCap: MaxSubmissions truncates from the tail of the merged
// timeline.
func TestTraceCap(t *testing.T) {
	cfg := testConfig()
	full, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSubmissions = 50
	capped, err := Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 50 {
		t.Fatalf("capped trace has %d submissions", len(capped))
	}
	if !reflect.DeepEqual(capped, full[:50]) {
		t.Fatal("capped trace is not a prefix of the full trace")
	}
}

func ExampleParseArrivalSpec() {
	spec, _ := ParseArrivalSpec("diurnal:peak=2,trough=0.2,period=24h,maintevery=6h,maintdur=30m")
	fmt.Println(spec.Kind, spec.Peak, spec.Trough)
	fmt.Println(spec.RateAt(10 * time.Minute)) // inside the first maintenance window
	// Output:
	// diurnal 2 0.2
	// 0
}
