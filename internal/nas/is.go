package nas

import (
	"fmt"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/mpi"
)

// ISClass parameterizes the IS kernel: 2^TotalKeysLog2 keys in
// [0, 2^MaxKeyLog2), bucketed into 2^BucketsLog2 buckets, ranked over
// Iterations rounds.
type ISClass struct {
	Name          string
	TotalKeysLog2 uint
	MaxKeyLog2    uint
	BucketsLog2   uint
	Iterations    int
}

// The official IS classes (NPB is.c) plus a tiny class T for tests.
var (
	ISClassS = ISClass{Name: "S", TotalKeysLog2: 16, MaxKeyLog2: 11, BucketsLog2: 10, Iterations: 10}
	ISClassW = ISClass{Name: "W", TotalKeysLog2: 20, MaxKeyLog2: 16, BucketsLog2: 10, Iterations: 10}
	ISClassA = ISClass{Name: "A", TotalKeysLog2: 23, MaxKeyLog2: 19, BucketsLog2: 10, Iterations: 10}
	ISClassB = ISClass{Name: "B", TotalKeysLog2: 25, MaxKeyLog2: 21, BucketsLog2: 10, Iterations: 10}
	ISClassT = ISClass{Name: "T", TotalKeysLog2: 12, MaxKeyLog2: 9, BucketsLog2: 6, Iterations: 3}
)

// ISClassByName resolves a class letter.
func ISClassByName(name string) (ISClass, error) {
	switch name {
	case "S":
		return ISClassS, nil
	case "W":
		return ISClassW, nil
	case "A":
		return ISClassA, nil
	case "B":
		return ISClassB, nil
	case "T":
		return ISClassT, nil
	default:
		return ISClass{}, fmt.Errorf("nas: unknown IS class %q", name)
	}
}

// TotalKeys returns 2^TotalKeysLog2.
func (c ISClass) TotalKeys() int64 { return 1 << c.TotalKeysLog2 }

// MaxKey returns 2^MaxKeyLog2.
func (c ISClass) MaxKey() int32 { return 1 << c.MaxKeyLog2 }

// Buckets returns 2^BucketsLog2.
func (c ISClass) Buckets() int { return 1 << c.BucketsLog2 }

// ISKeys generates the key block [lo, hi) of the IS sequence: key i
// consumes stream values 4i+1..4i+4 and equals
// floor(MaxKey/4 · (r1+r2+r3+r4)), NPB's create_seq.
func ISKeys(cls ISClass, lo, hi int64) []int32 {
	g := At(ISSeed, uint64(4*lo))
	k := float64(cls.MaxKey()) / 4
	out := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		x := g.Next() + g.Next() + g.Next() + g.Next()
		out = append(out, int32(k*x))
	}
	return out
}

// isRange splits the key sequence evenly over size processes.
func isRange(cls ISClass, rank, size int) (lo, hi int64) {
	total := cls.TotalKeys()
	per := total / int64(size)
	rem := total % int64(size)
	lo = int64(rank)*per + min64(int64(rank), rem)
	hi = lo + per
	if int64(rank) < rem {
		hi++
	}
	return lo, hi
}

// bucketSplit assigns bucket ownership to processes so that cumulative
// key counts balance (NPB's bucket distribution): it returns, for each
// process, the first bucket it owns; process j owns buckets
// [split[j], split[j+1]).
func bucketSplit(totals []int64, nprocs int) []int {
	var totalKeys int64
	for _, t := range totals {
		totalKeys += t
	}
	split := make([]int, nprocs+1)
	split[nprocs] = len(totals)
	var cum int64
	proc := 1
	for b := 0; b < len(totals) && proc < nprocs; b++ {
		cum += totals[b]
		for proc < nprocs && cum >= int64(proc)*totalKeys/int64(nprocs) {
			split[proc] = b + 1
			proc++
		}
	}
	for ; proc < nprocs; proc++ {
		split[proc] = len(totals)
	}
	return split
}

// ISResult summarizes one process's verified outcome.
type ISResult struct {
	ReceivedKeys int
	GlobalStart  int64
	TotalKeys    int64
}

// ISProgram returns the real IS benchmark as an MPD program. Each
// iteration performs NPB IS's exact communication schedule — Allreduce
// of the bucket histogram, Alltoall of the send counts, Alltoallv of the
// keys — followed by the local counting rank. After the last iteration a
// full verification checks global sortedness and key conservation.
func ISProgram(cls ISClass) mpd.Program {
	return func(env *mpd.Env) error {
		c, err := env.Comm()
		if err != nil {
			return err
		}
		res, err := RunIS(cls, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(&env.Out, "IS class %s: keys=%d received=%d start=%d verified",
			cls.Name, res.TotalKeys, res.ReceivedKeys, res.GlobalStart)
		return nil
	}
}

// RunIS executes the IS kernel on an existing communicator and fully
// verifies the result. It is the engine behind ISProgram and is exported
// for direct use in tests and examples.
func RunIS(cls ISClass, c *mpi.Comm) (ISResult, error) {
	rank, size := c.Rank(), c.Size()
	lo, hi := isRange(cls, rank, size)
	keys := ISKeys(cls, lo, hi)
	nBuckets := cls.Buckets()
	shift := cls.MaxKeyLog2 - cls.BucketsLog2

	var received []int32
	for iter := 1; iter <= cls.Iterations; iter++ {
		// NPB's per-iteration key modification (each process mutates its
		// local array positions iter and iter+Iterations).
		if len(keys) > iter {
			keys[iter] = int32(iter)
		}
		if len(keys) > iter+cls.Iterations {
			keys[iter+cls.Iterations] = cls.MaxKey() - int32(iter)
		}

		// Local histogram.
		counts := make([]int64, nBuckets)
		for _, k := range keys {
			counts[int(uint32(k)>>shift)]++
		}
		totals, err := c.AllreduceI64(counts, mpi.OpSum)
		if err != nil {
			return ISResult{}, fmt.Errorf("is allreduce: %w", err)
		}
		split := bucketSplit(totals, size)

		// Partition local keys by destination process.
		bucketOwner := make([]int, nBuckets)
		for p := 0; p < size; p++ {
			for b := split[p]; b < split[p+1]; b++ {
				bucketOwner[b] = p
			}
		}
		outKeys := make([][]int32, size)
		for _, k := range keys {
			p := bucketOwner[int(uint32(k)>>shift)]
			outKeys[p] = append(outKeys[p], k)
		}

		// Alltoall of the counts (NPB sends send_count first)...
		countParts := make([]mpi.Data, size)
		for p := 0; p < size; p++ {
			countParts[p] = mpi.Data{Bytes: mpi.EncodeI64s([]int64{int64(len(outKeys[p]))})}
		}
		if _, err := c.Alltoall(countParts); err != nil {
			return ISResult{}, fmt.Errorf("is alltoall: %w", err)
		}
		// ...then Alltoallv of the key payloads.
		keyParts := make([]mpi.Data, size)
		for p := 0; p < size; p++ {
			keyParts[p] = mpi.Data{Bytes: mpi.EncodeI32s(outKeys[p])}
		}
		gotParts, err := c.Alltoallv(keyParts)
		if err != nil {
			return ISResult{}, fmt.Errorf("is alltoallv: %w", err)
		}
		received = received[:0]
		for _, part := range gotParts {
			ks, err := mpi.DecodeI32s(part.Bytes)
			if err != nil {
				return ISResult{}, err
			}
			received = append(received, ks...)
		}

		// Local counting rank over my bucket range (the per-iteration
		// "rank" computation of NPB IS).
		loKey := int32(split[rank]) << shift
		hiKey := int32(split[rank+1]) << shift
		if split[rank+1] == nBuckets {
			hiKey = cls.MaxKey()
		}
		width := int(hiKey - loKey)
		if width < 0 {
			return ISResult{}, fmt.Errorf("is: negative key range [%d,%d)", loKey, hiKey)
		}
		keyCounts := make([]int32, width+1)
		for _, k := range received {
			if k < loKey || k >= hiKey {
				return ISResult{}, fmt.Errorf("is: key %d outside my range [%d,%d)", k, loKey, hiKey)
			}
			keyCounts[k-loKey]++
		}
		// Prefix-sum the counts into ranks (kept local, as NPB does).
		var acc int32
		for i := range keyCounts {
			acc += keyCounts[i]
			keyCounts[i] = acc
		}
	}

	// Full verification: global sortedness and key conservation.
	sorted := countingSort(received)
	myCount := int64(len(sorted))
	totalArr, err := c.AllreduceI64([]int64{myCount}, mpi.OpSum)
	if err != nil {
		return ISResult{}, err
	}
	if totalArr[0] != cls.TotalKeys() {
		return ISResult{}, fmt.Errorf("is: %d keys survived, want %d", totalArr[0], cls.TotalKeys())
	}
	scan, err := c.Scan(mpi.Data{Bytes: mpi.EncodeI64s([]int64{myCount})}, mpi.I64Combiner(mpi.OpSum))
	if err != nil {
		return ISResult{}, err
	}
	scanVals, err := mpi.DecodeI64s(scan.Bytes)
	if err != nil {
		return ISResult{}, err
	}
	globalStart := scanVals[0] - myCount

	// Boundary exchange: my maximum must not exceed my right
	// neighbour's minimum (empty partitions forward their left bound).
	const boundaryTag = 77
	myMax := int32(-1)
	if len(sorted) > 0 {
		myMax = sorted[len(sorted)-1]
	}
	if rank < size-1 {
		if err := c.Send(rank+1, boundaryTag, mpi.Data{Bytes: mpi.EncodeI32s([]int32{myMax})}); err != nil {
			return ISResult{}, err
		}
	}
	if rank > 0 {
		d, _, err := c.Recv(rank-1, boundaryTag)
		if err != nil {
			return ISResult{}, err
		}
		leftMax, err := mpi.DecodeI32s(d.Bytes)
		if err != nil {
			return ISResult{}, err
		}
		if len(sorted) > 0 && leftMax[0] > sorted[0] {
			return ISResult{}, fmt.Errorf("is: boundary violation: left max %d > my min %d", leftMax[0], sorted[0])
		}
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			return ISResult{}, fmt.Errorf("is: local order violated at %d", i)
		}
	}
	return ISResult{
		ReceivedKeys: len(received),
		GlobalStart:  globalStart,
		TotalKeys:    totalArr[0],
	}, nil
}

// countingSort sorts int32 keys (non-negative, bounded) ascending.
func countingSort(keys []int32) []int32 {
	if len(keys) == 0 {
		return nil
	}
	minK, maxK := keys[0], keys[0]
	for _, k := range keys {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	counts := make([]int32, int(maxK-minK)+1)
	for _, k := range keys {
		counts[k-minK]++
	}
	out := make([]int32, 0, len(keys))
	for v, n := range counts {
		for ; n > 0; n-- {
			out = append(out, minK+int32(v))
		}
	}
	return out
}
