// Package nas implements the NAS Parallel Benchmarks kernels the paper
// evaluates (§5): EP (Embarrassingly Parallel) and IS (Integer Sort),
// both as real MPI programs verified against the NPB reference values
// and as virtual-time "pattern" programs that execute the identical
// communication schedule under the performance model (the paper ran the
// Java translations of EP and IS; we run Go translations).
package nas

// The NPB linear congruential generator: x_{k+1} = a * x_k mod 2^46 with
// a = 5^13. NPB implements the 46-bit modular multiply in double
// precision; here it is exact integer arithmetic — (a*b) mod 2^46 equals
// the low 46 bits of the wrapping 64-bit product because 2^46 divides
// 2^64.

const (
	// LCGMultiplier is a = 5^13, the NPB generator multiplier.
	LCGMultiplier = uint64(1220703125)
	// EPSeed and ISSeed are the benchmark seeds from the NPB sources.
	EPSeed = uint64(271828183)
	ISSeed = uint64(314159265)

	mask46 = (uint64(1) << 46) - 1
	r46    = 1.0 / float64(uint64(1)<<46)
)

// LCG is the NPB pseudo-random stream in exact integer form.
type LCG struct {
	x uint64
}

// NewLCG returns a generator positioned at the given seed.
func NewLCG(seed uint64) *LCG { return &LCG{x: seed & mask46} }

// Next advances the stream and returns a uniform value in (0, 1).
func (g *LCG) Next() float64 {
	g.x = (g.x * LCGMultiplier) & mask46
	return float64(g.x) * r46
}

// State returns the current 46-bit state.
func (g *LCG) State() uint64 { return g.x }

// Skip advances the stream by n steps in O(log n) using the power jump
// x_{k+n} = a^n x_k mod 2^46 — NPB's find_my_seed, used so each MPI
// process can start generating at its own offset.
func (g *LCG) Skip(n uint64) {
	g.x = (powMod46(LCGMultiplier, n) * g.x) & mask46
}

// At returns a generator positioned n steps after the given seed.
func At(seed, n uint64) *LCG {
	g := NewLCG(seed)
	g.Skip(n)
	return g
}

// powMod46 computes a^n mod 2^46 by binary exponentiation.
func powMod46(a, n uint64) uint64 {
	result := uint64(1)
	base := a & mask46
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & mask46
		}
		base = (base * base) & mask46
		n >>= 1
	}
	return result
}
