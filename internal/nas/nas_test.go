package nas

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"p2pmpi/internal/mpi"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

func TestLCGSkipMatchesSequential(t *testing.T) {
	seq := NewLCG(EPSeed)
	for i := 0; i < 1000; i++ {
		seq.Next()
	}
	jumped := At(EPSeed, 1000)
	if seq.State() != jumped.State() {
		t.Fatalf("skip(1000) state %d != sequential %d", jumped.State(), seq.State())
	}
}

func TestLCGSkipZeroAndOne(t *testing.T) {
	g := At(EPSeed, 0)
	if g.State() != EPSeed {
		t.Fatal("skip 0 moved the stream")
	}
	a := NewLCG(EPSeed)
	a.Next()
	b := At(EPSeed, 1)
	if a.State() != b.State() {
		t.Fatal("skip 1 != one step")
	}
}

func TestLCGValuesInUnitInterval(t *testing.T) {
	g := NewLCG(ISSeed)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %v outside (0,1) at step %d", v, i)
		}
	}
}

func TestLCGUniformity(t *testing.T) {
	g := NewLCG(EPSeed)
	const n = 200000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(g.Next()*10)]++
	}
	for b, c := range buckets {
		frac := float64(c) / n
		if frac < 0.09 || frac > 0.11 {
			t.Fatalf("bucket %d has fraction %v", b, frac)
		}
	}
}

// TestEPPartitionInvariance is the core distributed-correctness property:
// any process decomposition must reproduce the sequential result exactly.
func TestEPPartitionInvariance(t *testing.T) {
	const m = 16 // 65536 pairs
	whole := EPChunk(0, 1<<m)
	for _, nproc := range []int{2, 3, 7, 16} {
		var sx, sy float64
		var q [10]int64
		for p := 0; p < nproc; p++ {
			lo, hi := epRange(m, p, nproc)
			r := EPChunk(lo, hi)
			sx += r.Sx
			sy += r.Sy
			for i := range q {
				q[i] += r.Q[i]
			}
		}
		if !almostEq(sx, whole.Sx) || !almostEq(sy, whole.Sy) {
			t.Fatalf("nproc=%d: sums diverge: (%v,%v) vs (%v,%v)", nproc, sx, sy, whole.Sx, whole.Sy)
		}
		if q != whole.Q {
			t.Fatalf("nproc=%d: counts diverge: %v vs %v", nproc, q, whole.Q)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}

func TestEPRangesCoverExactly(t *testing.T) {
	for _, nproc := range []int{1, 3, 5, 32, 61} {
		var total int64
		prevHi := int64(0)
		for p := 0; p < nproc; p++ {
			lo, hi := epRange(20, p, nproc)
			if lo != prevHi {
				t.Fatalf("gap at proc %d: lo=%d prev=%d", p, lo, prevHi)
			}
			total += hi - lo
			prevHi = hi
		}
		if total != 1<<20 {
			t.Fatalf("nproc=%d covers %d pairs", nproc, total)
		}
	}
}

// TestEPClassSReference verifies the official class S sums, proving the
// generator and Gaussian kernel match NPB bit-for-bit behaviour.
func TestEPClassSReference(t *testing.T) {
	if testing.Short() {
		t.Skip("class S takes ~1s of real compute")
	}
	r := EPChunk(0, 1<<EPClassS.M)
	if err := EPVerify(EPClassS, r); err != nil {
		t.Fatal(err)
	}
}

func TestEPVerifyRejectsWrongSums(t *testing.T) {
	r := EPResult{Sx: 1, Sy: 2}
	if err := EPVerify(EPClassS, r); err == nil {
		t.Fatal("bogus sums verified")
	}
	// Unofficial class (no refs) always verifies.
	if err := EPVerify(EPClass{Name: "X", M: 10}, r); err != nil {
		t.Fatal(err)
	}
}

func TestISKeysDeterministicAndBounded(t *testing.T) {
	cls := ISClassT
	a := ISKeys(cls, 0, 256)
	b := ISKeys(cls, 0, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic key sequence")
		}
		if a[i] < 0 || a[i] >= cls.MaxKey() {
			t.Fatalf("key %d out of range", a[i])
		}
	}
	// Block generation equals whole-sequence slices.
	whole := ISKeys(cls, 0, 512)
	tail := ISKeys(cls, 256, 512)
	for i := range tail {
		if tail[i] != whole[256+i] {
			t.Fatalf("block at offset diverges at %d", i)
		}
	}
}

func TestBucketSplitBalances(t *testing.T) {
	totals := make([]int64, 64)
	for i := range totals {
		totals[i] = 100
	}
	split := bucketSplit(totals, 4)
	if split[0] != 0 || split[4] != 64 {
		t.Fatalf("split = %v", split)
	}
	for p := 0; p < 4; p++ {
		n := split[p+1] - split[p]
		if n != 16 {
			t.Fatalf("proc %d owns %d buckets: %v", p, n, split)
		}
	}
}

func TestBucketSplitSkewed(t *testing.T) {
	// All keys in one bucket: one proc owns it; split stays monotone.
	totals := make([]int64, 16)
	totals[3] = 1000
	split := bucketSplit(totals, 4)
	for p := 0; p < 4; p++ {
		if split[p] > split[p+1] {
			t.Fatalf("split not monotone: %v", split)
		}
	}
	if split[4] != 16 {
		t.Fatalf("split = %v", split)
	}
}

func TestCountingSort(t *testing.T) {
	in := []int32{5, 2, 9, 2, 0, 7, 5}
	got := countingSort(in)
	want := append([]int32(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
	if countingSort(nil) != nil {
		t.Fatal("empty sort")
	}
}

// runISWorld executes IS over an in-process virtual world.
func runISWorld(t *testing.T, cls ISClass, n int) []ISResult {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	net := simnet.New(s, &simnet.StaticTopology{
		HostSite: map[string]string{"hub": "local"},
		DefLat:   200 * time.Microsecond,
	}, simnet.Config{Seed: 5, NICBps: 1e9})

	results := make([]ISResult, n)
	s.Go("world", func() {
		errs := mpi.RunLocal(s, net.Node("hub"), "hub", 42000, n, mpi.Algorithms{},
			func(c *mpi.Comm) error {
				r, err := RunIS(cls, c)
				if err == nil {
					results[c.Rank()] = r
				}
				return err
			})
		for rank, err := range errs {
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}
	})
	s.Wait()
	return results
}

func TestISFullVerification(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		results := runISWorld(t, ISClassT, n)
		var total int64
		starts := make([]int64, 0, n)
		for _, r := range results {
			total += int64(r.ReceivedKeys)
			starts = append(starts, r.GlobalStart)
		}
		if total != ISClassT.TotalKeys() {
			t.Fatalf("n=%d: %d keys, want %d", n, total, ISClassT.TotalKeys())
		}
		// Global start offsets must tile the key space.
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		if starts[0] != 0 {
			t.Fatalf("n=%d: first offset %d", n, starts[0])
		}
	}
}

func TestISClassSParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("class S IS moves 2.5 MB of keys")
	}
	results := runISWorld(t, ISClassS, 4)
	var total int64
	for _, r := range results {
		total += int64(r.ReceivedKeys)
	}
	if total != ISClassS.TotalKeys() {
		t.Fatalf("class S: %d keys, want %d", total, ISClassS.TotalKeys())
	}
}

func TestISClassLookup(t *testing.T) {
	for _, name := range []string{"S", "W", "A", "B", "T"} {
		cls, err := ISClassByName(name)
		if err != nil || cls.Name != name {
			t.Fatalf("lookup %s: %+v %v", name, cls, err)
		}
	}
	if _, err := ISClassByName("Z"); err == nil {
		t.Fatal("bogus class accepted")
	}
	for _, name := range []string{"S", "W", "A", "B"} {
		cls, err := EPClassByName(name)
		if err != nil || cls.Name != name {
			t.Fatalf("EP lookup %s failed", name)
		}
	}
	if _, err := EPClassByName("Z"); err == nil {
		t.Fatal("bogus EP class accepted")
	}
}

func TestEPProgramOverMPI(t *testing.T) {
	// Drive EPProgram's engine (chunk + allreduce combination) through a
	// real in-process world using a tiny custom class.
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	net := simnet.New(s, &simnet.StaticTopology{
		HostSite: map[string]string{"hub": "local"},
		DefLat:   100 * time.Microsecond,
	}, simnet.Config{Seed: 6, NICBps: 1e9})

	const m = 14
	whole := EPChunk(0, 1<<m)
	s.Go("world", func() {
		errs := mpi.RunLocal(s, net.Node("hub"), "hub", 43000, 5, mpi.Algorithms{},
			func(c *mpi.Comm) error {
				lo, hi := epRange(m, c.Rank(), c.Size())
				r := EPChunk(lo, hi)
				sums, err := c.AllreduceF64([]float64{r.Sx, r.Sy}, mpi.OpSum)
				if err != nil {
					return err
				}
				if !almostEq(sums[0], whole.Sx) || !almostEq(sums[1], whole.Sy) {
					return fmt.Errorf("rank %d: global sums (%v,%v) vs (%v,%v)",
						c.Rank(), sums[0], sums[1], whole.Sx, whole.Sy)
				}
				return nil
			})
		for rank, err := range errs {
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}
	})
	s.Wait()
}
