package nas

import (
	"fmt"
	"time"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/mpi"
)

// CostModel calibrates the virtual-time NAS runs. The constants absorb
// everything between the abstract kernel and the paper's 2008 Java
// runtime (JIT quality, object serialization, GC): they were tuned so
// the Figure 4 curves land in the paper's range, and the *shape* of the
// figures — who wins where — emerges from allocation, contention and
// WAN latency, not from these scalars. See EXPERIMENTS.md.
type CostModel struct {
	// EPFlopsPerPair and EPBytesPerPair cost one Gaussian pair.
	EPFlopsPerPair float64
	EPBytesPerPair float64
	// ISFlopsPerKey and ISBytesPerKey cost one key per ranking
	// iteration (histogram + counting rank passes).
	ISFlopsPerKey float64
	ISBytesPerKey float64
}

// DefaultCostModel is the calibration used by the experiment harness.
func DefaultCostModel() CostModel {
	return CostModel{
		EPFlopsPerPair: 540,
		EPBytesPerPair: 400,
		ISFlopsPerKey:  150,
		ISBytesPerKey:  300,
	}
}

// reportElapsed measures the synchronized kernel span: all processes
// barrier, run body, and the maximum elapsed time is printed by rank 0
// (the "Total time" of Figure 4).
func reportElapsed(env *mpd.Env, c *mpi.Comm, body func() error) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	start := env.RT.Now()
	if err := body(); err != nil {
		return err
	}
	elapsed := env.RT.Now().Sub(start).Seconds()
	maxed, err := c.AllreduceF64([]float64{elapsed}, mpi.OpMax)
	if err != nil {
		return err
	}
	if env.Rank == 0 && env.Replica == 0 {
		fmt.Fprintf(&env.Out, "%.6f", maxed[0])
	}
	return nil
}

// EPModelProgram is the virtual-time EP run: the exact communication
// schedule of EPProgram (two scalar allreduces plus the annulus-count
// reduction) with the computation charged to the performance model.
func EPModelProgram(cls EPClass, cost CostModel) mpd.Program {
	return func(env *mpd.Env) error {
		c, err := env.Comm()
		if err != nil {
			return err
		}
		return reportElapsed(env, c, func() error {
			lo, hi := epRange(cls.M, env.Rank, env.Size)
			pairs := float64(hi - lo)
			env.Compute(pairs*cost.EPFlopsPerPair, pairs*cost.EPBytesPerPair)
			if _, err := c.Allreduce(mpi.Data{Virtual: 16}, mpi.VirtualCombiner); err != nil {
				return err
			}
			if _, err := c.Allreduce(mpi.Data{Virtual: 16}, mpi.VirtualCombiner); err != nil {
				return err
			}
			_, err := c.Allreduce(mpi.Data{Virtual: 80}, mpi.VirtualCombiner)
			return err
		})
	}
}

// ISModelProgram is the virtual-time IS run: per iteration, the bucket
// histogram allreduce, the send-count alltoall and the key alltoallv
// (with modelled sizes), plus the local passes charged to the
// performance model — NPB IS's schedule at Class B scale without
// allocating gigabytes.
func ISModelProgram(cls ISClass, cost CostModel) mpd.Program {
	return func(env *mpd.Env) error {
		c, err := env.Comm()
		if err != nil {
			return err
		}
		return reportElapsed(env, c, func() error {
			size := int64(c.Size())
			myKeys := cls.TotalKeys() / size
			keyBytes := int64(4)

			for iter := 0; iter < cls.Iterations; iter++ {
				// Histogram + counting-rank passes over my keys.
				env.Compute(float64(myKeys)*cost.ISFlopsPerKey,
					float64(myKeys)*cost.ISBytesPerKey)

				// Bucket histogram reduction (NUM_BUCKETS int32 counts).
				bucketBytes := int64(cls.Buckets() * 4)
				if _, err := c.Allreduce(mpi.Data{Virtual: bucketBytes}, mpi.VirtualCombiner); err != nil {
					return err
				}
				// Send counts, one int per destination.
				counts := make([]mpi.Data, c.Size())
				for i := range counts {
					counts[i] = mpi.Data{Virtual: 8}
				}
				if _, err := c.Alltoall(counts); err != nil {
					return err
				}
				// Key redistribution: my keys leave evenly (the bucket
				// split balances keys by construction).
				parts := make([]mpi.Data, c.Size())
				per := myKeys * keyBytes / size
				for i := range parts {
					parts[i] = mpi.Data{Virtual: per}
				}
				if _, err := c.Alltoallv(parts); err != nil {
					return err
				}
			}
			// Full verification pass: one more sweep over the keys and
			// the boundary/count exchanges.
			env.Compute(float64(myKeys)*cost.ISFlopsPerKey/2,
				float64(myKeys)*cost.ISBytesPerKey/2)
			if _, err := c.Allreduce(mpi.Data{Virtual: 8}, mpi.VirtualCombiner); err != nil {
				return err
			}
			return nil
		})
	}
}

// ParseModelOutput reads the seconds printed by reportElapsed.
func ParseModelOutput(out []byte) (time.Duration, error) {
	var secs float64
	if _, err := fmt.Sscanf(string(out), "%f", &secs); err != nil {
		return 0, fmt.Errorf("nas: cannot parse model output %q: %w", out, err)
	}
	return time.Duration(secs * float64(time.Second)), nil
}
