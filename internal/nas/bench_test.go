package nas

import "testing"

// BenchmarkEPPairs measures the Gaussian-pair kernel rate (the compute
// inner loop of the real EP runs).
func BenchmarkEPPairs(b *testing.B) {
	b.SetBytes(16) // two 8-byte randoms per pair
	r := EPChunk(0, int64(b.N))
	_ = r
}

// BenchmarkLCGSkip measures the O(log n) stream jump used by every
// process to find its offset.
func BenchmarkLCGSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewLCG(EPSeed)
		g.Skip(uint64(i) * 1e9)
	}
}

// BenchmarkISKeyGeneration measures NPB key-sequence generation.
func BenchmarkISKeyGeneration(b *testing.B) {
	n := int64(b.N)
	if n > 1<<22 {
		n = 1 << 22
	}
	b.ResetTimer()
	done := int64(0)
	for done < int64(b.N) {
		chunk := n
		if int64(b.N)-done < chunk {
			chunk = int64(b.N) - done
		}
		_ = ISKeys(ISClassB, 0, chunk)
		done += chunk
	}
}

// BenchmarkCountingSort measures the per-iteration local ranking cost.
func BenchmarkCountingSort(b *testing.B) {
	keys := ISKeys(ISClassS, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = countingSort(keys)
	}
}
