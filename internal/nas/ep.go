package nas

import (
	"fmt"
	"math"

	"p2pmpi/internal/mpd"
	"p2pmpi/internal/mpi"
)

// EPClass parameterizes the EP kernel: 2^M Gaussian pairs.
type EPClass struct {
	Name string
	M    uint // total pairs = 2^M
	// SxRef/SyRef are the NPB reference sums; zero means unverified
	// (custom sizes).
	SxRef, SyRef float64
}

// The official EP classes with their verification values (NPB ep.f).
var (
	EPClassS = EPClass{Name: "S", M: 24, SxRef: -3.247834652034740e+3, SyRef: -6.958407078382297e+3}
	EPClassW = EPClass{Name: "W", M: 25, SxRef: -2.863319731645753e+3, SyRef: -6.320053679109499e+3}
	EPClassA = EPClass{Name: "A", M: 28, SxRef: -4.295875165629892e+3, SyRef: -1.580732573678431e+4}
	EPClassB = EPClass{Name: "B", M: 30, SxRef: 4.033815542441498e+4, SyRef: -2.660669192809235e+4}
)

// EPClassByName resolves an official class letter.
func EPClassByName(name string) (EPClass, error) {
	switch name {
	case "S":
		return EPClassS, nil
	case "W":
		return EPClassW, nil
	case "A":
		return EPClassA, nil
	case "B":
		return EPClassB, nil
	default:
		return EPClass{}, fmt.Errorf("nas: unknown EP class %q", name)
	}
}

// EPResult is the kernel outcome.
type EPResult struct {
	Sx, Sy float64
	Q      [10]int64 // annulus counts
	Pairs  int64     // accepted pairs (sum of Q)
}

// EPChunk computes the EP kernel over pair indices [lo, hi). Pair i
// consumes stream values 2i+1 and 2i+2 of the EP random sequence, so
// any partition of [0, 2^M) over processes reproduces the sequential
// result exactly.
func EPChunk(lo, hi int64) EPResult {
	var res EPResult
	g := At(EPSeed, uint64(2*lo))
	for i := lo; i < hi; i++ {
		x1 := 2*g.Next() - 1
		x2 := 2*g.Next() - 1
		t := x1*x1 + x2*x2
		if t > 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		xk := x1 * f
		yk := x2 * f
		ax, ay := math.Abs(xk), math.Abs(yk)
		l := int(math.Max(ax, ay))
		res.Q[l]++
		res.Sx += xk
		res.Sy += yk
	}
	for _, q := range res.Q {
		res.Pairs += q
	}
	return res
}

// EPVerify checks a result against the class reference sums with NPB's
// relative tolerance.
func EPVerify(cls EPClass, r EPResult) error {
	if cls.SxRef == 0 && cls.SyRef == 0 {
		return nil // unofficial size: nothing to verify against
	}
	const eps = 1e-8
	if relErr(r.Sx, cls.SxRef) > eps {
		return fmt.Errorf("nas: EP class %s sx = %.15e, want %.15e", cls.Name, r.Sx, cls.SxRef)
	}
	if relErr(r.Sy, cls.SyRef) > eps {
		return fmt.Errorf("nas: EP class %s sy = %.15e, want %.15e", cls.Name, r.Sy, cls.SyRef)
	}
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs((got - want) / want)
}

// epRange splits 2^M pairs evenly over size processes; rank gets
// [lo, hi).
func epRange(m uint, rank, size int) (lo, hi int64) {
	total := int64(1) << m
	per := total / int64(size)
	rem := total % int64(size)
	lo = int64(rank)*per + min64(int64(rank), rem)
	hi = lo + per
	if int64(rank) < rem {
		hi++
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// EPProgram returns the real EP benchmark as an MPD program: every
// process computes its pair range, then the partial sums and annulus
// counts are combined with Allreduce exactly as NPB EP does (two scalar
// reductions plus the 10-bin count reduction).
func EPProgram(cls EPClass) mpd.Program {
	return func(env *mpd.Env) error {
		c, err := env.Comm()
		if err != nil {
			return err
		}
		lo, hi := epRange(cls.M, env.Rank, env.Size)
		res := EPChunk(lo, hi)

		sums, err := c.AllreduceF64([]float64{res.Sx, res.Sy}, mpi.OpSum)
		if err != nil {
			return err
		}
		qs := make([]int64, 10)
		copy(qs, res.Q[:])
		qsum, err := c.AllreduceI64(qs, mpi.OpSum)
		if err != nil {
			return err
		}
		global := EPResult{Sx: sums[0], Sy: sums[1]}
		copy(global.Q[:], qsum)
		for _, q := range global.Q {
			global.Pairs += q
		}
		if err := EPVerify(cls, global); err != nil {
			return err
		}
		fmt.Fprintf(&env.Out, "EP class %s: sx=%.10e sy=%.10e pairs=%d",
			cls.Name, global.Sx, global.Sy, global.Pairs)
		return nil
	}
}
