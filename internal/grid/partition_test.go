package grid

import (
	"testing"
	"time"
)

func testGrid(t *testing.T, spec string) *Grid {
	t.Helper()
	s, err := ParseTopologySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s.Build()
}

// TestPartitionSitesInvariants: every partition is contiguous over
// SiteOrder, covers every site exactly once, puts the origin in shard
// 0, and never makes an empty shard.
func TestPartitionSitesInvariants(t *testing.T) {
	for _, spec := range []string{"synth:S=3,H=8", "synth:S=5,H=4", "synth:S=9,H=2"} {
		g := testGrid(t, spec)
		for n := 1; n <= len(g.SiteOrder)+3; n++ {
			p := g.PartitionSites(n)
			want := n
			if want > len(g.SiteOrder) {
				want = len(g.SiteOrder)
			}
			if p.N() != want {
				t.Fatalf("%s n=%d: got %d shards, want %d", spec, n, p.N(), want)
			}
			// Concatenating the shards must reproduce SiteOrder — the
			// contiguity that keeps shard 0's host ranks a prefix.
			var flat []string
			for i, shard := range p.Shards {
				if len(shard) == 0 {
					t.Fatalf("%s n=%d: shard %d empty", spec, n, i)
				}
				for _, s := range shard {
					if p.SiteShard[s] != i {
						t.Fatalf("%s n=%d: SiteShard[%s]=%d, want %d", spec, n, s, p.SiteShard[s], i)
					}
				}
				flat = append(flat, shard...)
			}
			if len(flat) != len(g.SiteOrder) {
				t.Fatalf("%s n=%d: %d sites partitioned, want %d", spec, n, len(flat), len(g.SiteOrder))
			}
			for i, s := range g.SiteOrder {
				if flat[i] != s {
					t.Fatalf("%s n=%d: partition not contiguous over SiteOrder: %v", spec, n, p.Shards)
				}
			}
			if p.SiteShard[g.Origin] != 0 {
				t.Fatalf("%s n=%d: origin %s not on shard 0", spec, n, g.Origin)
			}
		}
	}
}

// TestPartitionBalance: with as many shards as sites, each site is its
// own shard; with fewer, host counts stay within one site of balanced.
func TestPartitionBalance(t *testing.T) {
	g := testGrid(t, "synth:S=6,H=10")
	p := g.PartitionSites(6)
	for i, shard := range p.Shards {
		if len(shard) != 1 {
			t.Fatalf("shard %d = %v, want one site each", i, shard)
		}
	}
	p = g.PartitionSites(3)
	counts := make([]int, p.N())
	hostsBySite := g.HostsBySite()
	for site, sh := range p.SiteShard {
		counts[sh] += hostsBySite[site]
	}
	for i, c := range counts {
		if c != 20 { // 60 hosts over 3 shards of 2 equal sites each
			t.Fatalf("shard %d has %d hosts, want 20 (counts %v)", i, c, counts)
		}
	}
}

// TestMinCrossLatency: the conservative lookahead is the true minimum
// one-way latency over cross-shard site pairs — verified against a
// brute-force scan — and zero only for single-shard partitions.
func TestMinCrossLatency(t *testing.T) {
	g := Grid5000()
	for n := 1; n <= len(g.SiteOrder); n++ {
		p := g.PartitionSites(n)
		got := g.MinCrossLatency(p)
		if n == 1 {
			if got != 0 {
				t.Fatalf("n=1: lookahead %v, want 0", got)
			}
			continue
		}
		min := time.Duration(0)
		for _, a := range g.SiteOrder {
			for _, b := range g.SiteOrder {
				if p.SiteShard[a] == p.SiteShard[b] {
					continue
				}
				l := g.SiteRTT(a, b) / 2
				if min == 0 || l < min {
					min = l
				}
			}
		}
		if got != min || got <= 0 {
			t.Fatalf("n=%d: lookahead %v, brute force %v", n, got, min)
		}
	}
}
