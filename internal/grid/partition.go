package grid

import "time"

// Partition assigns every site of a grid to one of n shards for the
// conservative parallel simulator. Sites are never split: a site's LAN
// traffic (87 µs RTTs, the vast majority of message volume once a
// supernode shard is co-located) stays inside one shard's event loop,
// and only inter-site backbone traffic crosses shards.
type Partition struct {
	// Shards holds contiguous runs of the grid's SiteOrder. Contiguity
	// in SiteOrder matters for determinism: host ranks are assigned in
	// site order, so shard k owns exactly one contiguous rank range and
	// the cross-shard merge's rank tiebreak reproduces the sequential
	// boot order. Shard 0 always contains the origin site (where the
	// frontal/submitter lives).
	Shards [][]string
	// SiteShard maps each site name to its shard index.
	SiteShard map[string]int
}

// PartitionSites splits the grid's sites into at most n contiguous,
// host-balanced shards. n is clamped to [1, number of sites]; the
// returned partition always has at least one site per shard. Balancing
// is greedy by host count over the SiteOrder walk — deterministic, and
// within a site of optimal for the synthetic grids (equal hosts per
// site) this exists to serve.
func (g *Grid) PartitionSites(n int) *Partition {
	sites := g.SiteOrder
	if n < 1 {
		n = 1
	}
	if n > len(sites) {
		n = len(sites)
	}
	counts := g.HostsBySite()
	total := 0
	for _, s := range sites {
		total += counts[s]
	}
	p := &Partition{SiteShard: make(map[string]int, len(sites))}
	// Greedy walk: each shard takes at least one site, then keeps taking
	// until it holds its fair share of the remaining hosts — but always
	// leaves one site apiece for the shards still to come. The last
	// shard's target equals everything left, so the walk consumes the
	// whole site list.
	start := 0
	remaining := total
	for k := 0; k < n; k++ {
		shardsLeft := n - k
		target := (remaining + shardsLeft - 1) / shardsLeft
		end := start + 1
		acc := counts[sites[start]]
		for end < len(sites) && len(sites)-end > shardsLeft-1 && acc < target {
			acc += counts[sites[end]]
			end++
		}
		run := sites[start:end]
		p.Shards = append(p.Shards, run)
		for _, s := range run {
			p.SiteShard[s] = k
		}
		remaining -= acc
		start = end
	}
	return p
}

// N returns the number of shards.
func (p *Partition) N() int { return len(p.Shards) }

// MinCrossLatency returns the minimum one-way base latency between any
// pair of sites in different shards — the conservative lookahead for the
// windowed parallel protocol. One-way latency is SiteRTT/2, matching
// what the simulated network charges per hop. Returns 0 when the
// partition has a single shard (no cross traffic, no lookahead needed).
func (g *Grid) MinCrossLatency(p *Partition) time.Duration {
	if p.N() <= 1 {
		return 0
	}
	var min time.Duration
	first := true
	for i, run := range p.Shards {
		for _, a := range run {
			for j := i + 1; j < len(p.Shards); j++ {
				for _, b := range p.Shards[j] {
					l := g.SiteRTT(a, b) / 2
					if first || l < min {
						min = l
						first = false
					}
				}
			}
		}
	}
	return min
}
