package grid

import (
	"testing"
	"time"
)

func TestTable1Totals(t *testing.T) {
	g := Grid5000()
	if got := g.TotalHosts(); got != 350 {
		t.Fatalf("total hosts = %d, want 350", got)
	}
	// 240+100+180+240+16+48+64+152 — the sum of Table 1's core column.
	if got := g.TotalCores(); got != 1040 {
		t.Fatalf("total cores = %d, want 1040", got)
	}
}

// TestFigureLegendTotals checks the per-site host/core counts printed in
// the legends of Figures 2 and 3.
func TestFigureLegendTotals(t *testing.T) {
	g := Grid5000()
	hosts := g.HostsBySite()
	cores := g.CoresBySite()
	want := []struct {
		site  string
		hosts int
		cores int
	}{
		{Nancy, 60, 240},
		{Lyon, 50, 100},
		{Rennes, 90, 180},
		{Bordeaux, 60, 240},
		{Grenoble, 20, 64},
		{Sophia, 70, 216},
	}
	for _, w := range want {
		if hosts[w.site] != w.hosts {
			t.Errorf("%s hosts = %d, want %d", w.site, hosts[w.site], w.hosts)
		}
		if cores[w.site] != w.cores {
			t.Errorf("%s cores = %d, want %d", w.site, cores[w.site], w.cores)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	g := Grid5000()
	if len(g.Clusters) != 8 {
		t.Fatalf("clusters = %d, want 8", len(g.Clusters))
	}
	for _, c := range g.Clusters {
		if c.CoresPerHost*c.Nodes != c.Cores {
			t.Errorf("%s: %d cores/host x %d nodes != %d cores",
				c.Name, c.CoresPerHost, c.Nodes, c.Cores)
		}
		if c.CPUs != c.Nodes*2 {
			t.Errorf("%s: every Table 1 cluster is dual-socket, CPUs=%d nodes=%d",
				c.Name, c.CPUs, c.Nodes)
		}
	}
}

func TestCoresPerHost(t *testing.T) {
	g := Grid5000()
	want := map[string]int{
		"grelon": 4, "capricorn": 2, "paravent": 2, "bordereau": 4,
		"idpot": 2, "idcalc": 4, "azur": 2, "sol": 4,
	}
	for _, c := range g.Clusters {
		if c.CoresPerHost != want[c.Name] {
			t.Errorf("%s cores/host = %d, want %d", c.Name, c.CoresPerHost, want[c.Name])
		}
	}
}

func TestRTTOrderingMatchesPaper(t *testing.T) {
	g := Grid5000()
	prev := time.Duration(0)
	for _, s := range Sites {
		rtt := g.SiteInfo[s].RTTFromOrigin
		if rtt < prev {
			t.Fatalf("site %s breaks the paper's RTT ordering", s)
		}
		prev = rtt
	}
	if g.SiteInfo[Lyon].RTTFromOrigin != 10576*time.Microsecond {
		t.Fatalf("lyon RTT = %v", g.SiteInfo[Lyon].RTTFromOrigin)
	}
}

func TestSiteRTTSymmetric(t *testing.T) {
	g := Grid5000()
	for _, a := range Sites {
		for _, b := range Sites {
			if g.SiteRTT(a, b) != g.SiteRTT(b, a) {
				t.Fatalf("RTT(%s,%s) asymmetric", a, b)
			}
		}
	}
}

func TestSiteRTTStarApproximation(t *testing.T) {
	g := Grid5000()
	got := g.SiteRTT(Lyon, Sophia)
	want := (g.SiteInfo[Lyon].RTTFromOrigin + g.SiteInfo[Sophia].RTTFromOrigin) / 2
	if got != want {
		t.Fatalf("lyon-sophia RTT = %v, want %v", got, want)
	}
}

func TestBordeauxBandwidth(t *testing.T) {
	g := Grid5000()
	if bw := g.SiteBandwidth(Nancy, Bordeaux); bw != 1_000_000_000 {
		t.Fatalf("nancy-bordeaux bandwidth = %d, want 1 Gb/s", bw)
	}
	if bw := g.SiteBandwidth(Nancy, Lyon); bw != 10_000_000_000 {
		t.Fatalf("nancy-lyon bandwidth = %d, want 10 Gb/s", bw)
	}
}

func TestHostLookup(t *testing.T) {
	g := Grid5000()
	h := g.HostByID("grelon-1.nancy")
	if h == nil || h.Site != Nancy || h.Cores != 4 {
		t.Fatalf("grelon-1.nancy lookup: %+v", h)
	}
	if g.HostByID("nonexistent") != nil {
		t.Fatal("bogus lookup should return nil")
	}
	c := g.ClusterOf(h)
	if c == nil || c.Name != "grelon" {
		t.Fatalf("ClusterOf = %+v", c)
	}
}

func TestHostIDsUnique(t *testing.T) {
	g := Grid5000()
	seen := make(map[string]bool)
	for _, h := range g.Hosts {
		if seen[h.ID] {
			t.Fatalf("duplicate host ID %s", h.ID)
		}
		seen[h.ID] = true
	}
}
