package grid_test

import (
	"fmt"

	"p2pmpi/internal/grid"
)

// ExampleParseTopologySpec parses the -grid command-line syntax and
// expands it into a deployable testbed.
func ExampleParseTopologySpec() {
	spec, err := grid.ParseTopologySpec("synth:S=4,H=25,C=2,seed=7")
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	g := spec.Build()
	fmt.Printf("%d sites, %d hosts, %d cores\n",
		len(g.SiteOrder), g.TotalHosts(), g.TotalCores())
	fmt.Printf("origin site: %s\n", g.Origin)
	fmt.Printf("round-trips back through String(): %s\n", spec)
	// Output:
	// 4 sites, 100 hosts, 200 cores
	// origin site: s1
	// round-trips back through String(): synth:S=4,H=25,C=2,seed=7,rttmin=5ms,rttmax=25ms
}
