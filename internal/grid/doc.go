// Package grid models the testbeds the experiments deploy on.
//
// Two families:
//
//   - Grid5000 reproduces the paper's platform exactly: Table 1's
//     eight clusters across six sites, the inter-site round-trip times
//     printed in the figure legends, the 10 Gb/s backbone (1 Gb/s
//     toward bordeaux), and the per-host performance characteristics
//     (2008-era core speed and memory bandwidth) that the virtual-time
//     benchmark runs calibrate against.
//   - Synthetic generates seeded grids of arbitrary size from a
//     TopologySpec: S sites at uniformly drawn origin RTTs, H hosts
//     per site, configurable cores, bandwidth and compute model. The
//     "-grid synth:S=12,H=400" command-line syntax parses through
//     ParseTopologySpec (see the example).
//
// A TopologySpec's zero value builds Grid5000, which keeps every
// pre-existing caller byte-compatible; TopologySpec.Build is the
// single entry point the experiment harness uses.
package grid
