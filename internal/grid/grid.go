package grid

import (
	"fmt"
	"sync"
	"time"
)

// Site names, in the paper's latency order from the origin (nancy).
const (
	Nancy    = "nancy"
	Lyon     = "lyon"
	Rennes   = "rennes"
	Bordeaux = "bordeaux"
	Grenoble = "grenoble"
	Sophia   = "sophia"
)

// Sites lists every site in ascending RTT from nancy, the order the
// figures use in their legends.
var Sites = []string{Nancy, Lyon, Rennes, Bordeaux, Grenoble, Sophia}

// Site describes one Grid'5000 site as seen from the origin site.
type Site struct {
	Name string
	// RTTFromOrigin is the round-trip time from nancy measured at the
	// site frontends, as printed in the paper's figure legends.
	RTTFromOrigin time.Duration
	// BandwidthBps is the backbone capacity toward this site.
	BandwidthBps int64
}

// Cluster is one row of the paper's Table 1 plus calibration data.
type Cluster struct {
	Site  string
	Name  string
	CPU   string
	Nodes int
	CPUs  int
	Cores int

	// CoresPerHost = Cores / Nodes; every host of a cluster is uniform.
	CoresPerHost int

	// CoreGFLOPS is the sustained per-core compute rate used by the
	// virtual-time performance model (2008-era estimates).
	CoreGFLOPS float64
	// HostMemBWGBs is the per-host memory bandwidth shared by all
	// processes concentrated on that host.
	HostMemBWGBs float64
}

// Host is one allocatable machine.
type Host struct {
	ID      string
	Site    string
	Cluster string
	Cores   int
	// Index is the position of the host within its cluster (0-based).
	Index int
}

// Grid is the full testbed: sites, clusters and the expanded host list.
// Both the Table 1 inventory (Grid5000) and generated testbeds
// (Synthetic) produce this same shape, so everything downstream — the
// simulated network, the experiment harness, the CSV renderers — works
// on either.
type Grid struct {
	Origin   string
	SiteInfo map[string]*Site
	Clusters []*Cluster
	Hosts    []*Host

	// SiteOrder lists the sites in ascending RTT from the origin — the
	// order the paper's figure legends use. For Grid5000 it equals the
	// package-level Sites slice.
	SiteOrder []string
	// LocalRTT is the intra-site round-trip time.
	LocalRTT time.Duration

	// hostByID is built on first HostByID call: a million-host scale
	// world whose harness resolves sites straight off the Host structs
	// never pays for the index (tens of MB at that size). indexOnce
	// makes the lazy build safe under the parallel world construction.
	hostByID  map[string]*Host
	indexOnce sync.Once
}

// SiteNames returns the grid's sites in legend (ascending-RTT) order.
func (g *Grid) SiteNames() []string { return g.SiteOrder }

const (
	gbps  = int64(1_000_000_000)
	tenGb = 10 * gbps
)

// Grid5000 builds the testbed of the paper's Table 1. The returned grid
// has 350 hosts and 1040 cores; the figure legends' per-site totals
// (sophia 70 hosts/216 cores, grenoble 20/64, ...) fall out of it.
func Grid5000() *Grid {
	g := &Grid{
		Origin:    Nancy,
		SiteOrder: append([]string(nil), Sites...),
		LocalRTT:  87 * time.Microsecond,
		SiteInfo: map[string]*Site{
			Nancy:    {Name: Nancy, RTTFromOrigin: 87 * time.Microsecond, BandwidthBps: tenGb},
			Lyon:     {Name: Lyon, RTTFromOrigin: 10576 * time.Microsecond, BandwidthBps: tenGb},
			Rennes:   {Name: Rennes, RTTFromOrigin: 11612 * time.Microsecond, BandwidthBps: tenGb},
			Bordeaux: {Name: Bordeaux, RTTFromOrigin: 12674 * time.Microsecond, BandwidthBps: 1 * gbps},
			Grenoble: {Name: Grenoble, RTTFromOrigin: 13204 * time.Microsecond, BandwidthBps: tenGb},
			Sophia:   {Name: Sophia, RTTFromOrigin: 17167 * time.Microsecond, BandwidthBps: tenGb},
		},
		Clusters: []*Cluster{
			{Site: Nancy, Name: "grelon", CPU: "Intel Xeon 5110", Nodes: 60, CPUs: 120, Cores: 240,
				CoreGFLOPS: 1.9, HostMemBWGBs: 5.0},
			{Site: Lyon, Name: "capricorn", CPU: "AMD Opteron 246", Nodes: 50, CPUs: 100, Cores: 100,
				CoreGFLOPS: 2.0, HostMemBWGBs: 6.0},
			{Site: Rennes, Name: "paravent", CPU: "AMD Opteron 246", Nodes: 90, CPUs: 180, Cores: 180,
				CoreGFLOPS: 2.0, HostMemBWGBs: 6.0},
			{Site: Bordeaux, Name: "bordereau", CPU: "AMD Opteron 2218", Nodes: 60, CPUs: 120, Cores: 240,
				CoreGFLOPS: 2.4, HostMemBWGBs: 7.0},
			{Site: Grenoble, Name: "idpot", CPU: "Intel Xeon IA32", Nodes: 8, CPUs: 16, Cores: 16,
				CoreGFLOPS: 1.8, HostMemBWGBs: 3.5},
			{Site: Grenoble, Name: "idcalc", CPU: "Intel Itanium 2", Nodes: 12, CPUs: 24, Cores: 48,
				CoreGFLOPS: 2.2, HostMemBWGBs: 6.0},
			{Site: Sophia, Name: "azur", CPU: "AMD Opteron 246", Nodes: 32, CPUs: 64, Cores: 64,
				CoreGFLOPS: 2.0, HostMemBWGBs: 6.0},
			{Site: Sophia, Name: "sol", CPU: "AMD Opteron 2218", Nodes: 38, CPUs: 76, Cores: 152,
				CoreGFLOPS: 2.4, HostMemBWGBs: 7.0},
		},
	}
	for _, c := range g.Clusters {
		c.CoresPerHost = c.Cores / c.Nodes
		for i := 0; i < c.Nodes; i++ {
			h := &Host{
				ID:      fmt.Sprintf("%s-%d.%s", c.Name, i+1, c.Site),
				Site:    c.Site,
				Cluster: c.Name,
				Cores:   c.CoresPerHost,
				Index:   i,
			}
			g.Hosts = append(g.Hosts, h)
		}
	}
	return g
}

// HostByID returns the host with the given ID, or nil. The index is
// built on first call.
func (g *Grid) HostByID(id string) *Host {
	g.indexOnce.Do(func() {
		g.hostByID = make(map[string]*Host, len(g.Hosts))
		for _, h := range g.Hosts {
			g.hostByID[h.ID] = h
		}
	})
	return g.hostByID[id]
}

// ClusterOf returns the cluster a host belongs to, or nil.
func (g *Grid) ClusterOf(h *Host) *Cluster {
	for _, c := range g.Clusters {
		if c.Site == h.Site && c.Name == h.Cluster {
			return c
		}
	}
	return nil
}

// HostsBySite counts hosts per site (the figure-legend numbers).
func (g *Grid) HostsBySite() map[string]int {
	out := make(map[string]int)
	for _, h := range g.Hosts {
		out[h.Site]++
	}
	return out
}

// CoresBySite counts cores per site (the figure-legend numbers).
func (g *Grid) CoresBySite() map[string]int {
	out := make(map[string]int)
	for _, h := range g.Hosts {
		out[h.Site] += h.Cores
	}
	return out
}

// TotalHosts returns the number of allocatable hosts (350 for Table 1).
func (g *Grid) TotalHosts() int { return len(g.Hosts) }

// TotalCores returns the number of cores (1040 for Table 1).
func (g *Grid) TotalCores() int {
	n := 0
	for _, h := range g.Hosts {
		n += h.Cores
	}
	return n
}

// SiteRTT returns the base round-trip time between two sites. Within a
// site it is the grid's local RTT (0.087 ms for Grid5000, the value
// printed for nancy). Between the origin and a remote site it is the
// legend value. Between two remote sites (which the paper does not
// report) it uses the star approximation through the backbone: half the
// sum of the two legs' one-way times, doubled — i.e. (rtt(a)+rtt(b))/2.
func (g *Grid) SiteRTT(a, b string) time.Duration {
	if a == b {
		return g.LocalRTT
	}
	sa, sb := g.SiteInfo[a], g.SiteInfo[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("grid: unknown site pair %q-%q", a, b))
	}
	if a == g.Origin {
		return sb.RTTFromOrigin
	}
	if b == g.Origin {
		return sa.RTTFromOrigin
	}
	return (sa.RTTFromOrigin + sb.RTTFromOrigin) / 2
}

// SiteBandwidth returns the bottleneck backbone capacity between sites:
// the minimum of the two sites' uplinks; intra-site traffic runs at
// cluster Ethernet speed (1 Gb/s per host NIC, modelled elsewhere), so
// the site pipe is effectively unconstrained locally.
func (g *Grid) SiteBandwidth(a, b string) int64 {
	if a == b {
		return tenGb
	}
	ba := g.SiteInfo[a].BandwidthBps
	bb := g.SiteInfo[b].BandwidthBps
	if ba < bb {
		return ba
	}
	return bb
}
