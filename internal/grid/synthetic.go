package grid

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TopologySpec describes a testbed to build: either the paper's Table 1
// inventory or a generated grid of configurable size, so experiments can
// scale worlds far past the 350 hosts of Grid'5000.
//
// The zero value builds Grid5000, which keeps every pre-existing caller
// byte-compatible.
type TopologySpec struct {
	// Kind selects the family: "" or "grid5000" for Table 1, "synth" for
	// a generated grid.
	Kind string

	// Sites is the number of generated sites (synth; default 6).
	Sites int
	// HostsPerSite is the number of hosts per generated site (default 60).
	HostsPerSite int
	// CoresPerHost is the per-host core count (default 2).
	CoresPerHost int
	// Seed drives the inter-site RTT draws (default 1).
	Seed int64
	// RTTMin and RTTMax bound the uniform origin-to-site RTT distribution
	// (defaults 5ms and 25ms, bracketing the paper's 10.5–17.2 ms legend
	// values). The origin site itself sits at LocalRTT.
	RTTMin, RTTMax time.Duration
	// LocalRTT is the intra-site RTT (default 87µs, the nancy value).
	LocalRTT time.Duration
	// BandwidthBps is every site's backbone uplink (default 10 Gb/s).
	BandwidthBps int64
	// CoreGFLOPS and HostMemBWGBs calibrate the virtual-time compute
	// model of every generated host (defaults 2.0 and 6.0, the modal
	// Table 1 values).
	CoreGFLOPS   float64
	HostMemBWGBs float64
	// Supernodes is the membership-federation width K deployed on this
	// topology (default 1, the paper's single supernode; K > 1 shards
	// the host list across K gossiping supernodes placed round-robin
	// over the sites). It does not change the generated grid itself —
	// supernodes ride on extra non-compute hosts — but travels with the
	// spec so a "-grid synth:...,sn=4" world is self-describing.
	Supernodes int
}

// IsSynthetic reports whether the spec builds a generated grid.
func (s TopologySpec) IsSynthetic() bool { return s.Kind == "synth" }

func (s *TopologySpec) fillDefaults() {
	if s.Sites <= 0 {
		s.Sites = 6
	}
	if s.HostsPerSite <= 0 {
		s.HostsPerSite = 60
	}
	if s.CoresPerHost <= 0 {
		s.CoresPerHost = 2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.RTTMin <= 0 {
		s.RTTMin = 5 * time.Millisecond
	}
	if s.RTTMax <= 0 {
		// The documented default, independent of RTTMin: a caller who
		// raises only rttmin keeps the 25ms ceiling (or a point
		// distribution at rttmin when that exceeds the ceiling).
		s.RTTMax = 25 * time.Millisecond
		if s.RTTMax < s.RTTMin {
			s.RTTMax = s.RTTMin
		}
	}
	if s.RTTMax < s.RTTMin {
		// An explicit max below the (possibly defaulted) min wins: the
		// distribution degenerates to a point rather than silently
		// discarding the caller's bound.
		s.RTTMin = s.RTTMax
	}
	if s.LocalRTT <= 0 {
		s.LocalRTT = 87 * time.Microsecond
	}
	if s.BandwidthBps <= 0 {
		s.BandwidthBps = tenGb
	}
	if s.CoreGFLOPS <= 0 {
		s.CoreGFLOPS = 2.0
	}
	if s.HostMemBWGBs <= 0 {
		s.HostMemBWGBs = 6.0
	}
	if s.Supernodes <= 0 {
		s.Supernodes = 1
	}
}

// Defaulted returns the spec with every unset field resolved to its
// default — the single source of truth for what a partial spec builds.
func (s TopologySpec) Defaulted() TopologySpec {
	s.fillDefaults()
	return s
}

// TotalHosts returns the host count the spec expands to.
func (s TopologySpec) TotalHosts() int {
	if !s.IsSynthetic() {
		return 350 // Table 1
	}
	s.fillDefaults()
	return s.Sites * s.HostsPerSite
}

// Build expands the spec into a Grid.
func (s TopologySpec) Build() *Grid {
	if !s.IsSynthetic() {
		return Grid5000()
	}
	return Synthetic(s)
}

// String renders the spec in the canonical -grid flag syntax; feeding
// the result back through ParseTopologySpec rebuilds the same world.
func (s TopologySpec) String() string {
	if !s.IsSynthetic() {
		return "grid5000"
	}
	s.fillDefaults()
	out := fmt.Sprintf("synth:S=%d,H=%d,C=%d,seed=%d,rttmin=%s,rttmax=%s",
		s.Sites, s.HostsPerSite, s.CoresPerHost, s.Seed, s.RTTMin, s.RTTMax)
	// Secondary knobs appear only when they differ from the defaults, so
	// the common case stays short; the comparison derives the defaults
	// from fillDefaults itself rather than restating them.
	def := TopologySpec{Kind: "synth"}.Defaulted()
	if s.BandwidthBps != def.BandwidthBps {
		out += fmt.Sprintf(",bw=%d", s.BandwidthBps)
	}
	if s.LocalRTT != def.LocalRTT {
		out += fmt.Sprintf(",local=%s", s.LocalRTT)
	}
	if s.CoreGFLOPS != def.CoreGFLOPS {
		out += fmt.Sprintf(",gflops=%g", s.CoreGFLOPS)
	}
	if s.HostMemBWGBs != def.HostMemBWGBs {
		out += fmt.Sprintf(",membw=%g", s.HostMemBWGBs)
	}
	if s.Supernodes != def.Supernodes {
		out += fmt.Sprintf(",sn=%d", s.Supernodes)
	}
	return out
}

// Synthetic generates a testbed: spec.Sites sites of spec.HostsPerSite
// uniform hosts each, one cluster per site, with origin-to-site RTTs
// drawn uniformly from [RTTMin, RTTMax] by a seeded generator. Sites are
// named s01, s02, ... in ascending-RTT order (the figure-legend
// convention), with s01 the origin at LocalRTT; inter-remote-site RTTs
// fall out of the same star approximation Grid5000 uses. The generation
// is fully determined by the spec, so worlds built from equal specs are
// identical.
func Synthetic(spec TopologySpec) *Grid {
	spec.fillDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	rtts := make([]time.Duration, spec.Sites-1)
	span := int64(spec.RTTMax - spec.RTTMin)
	for i := range rtts {
		rtts[i] = spec.RTTMin
		if span > 0 {
			rtts[i] += time.Duration(rng.Int63n(span + 1))
		}
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })

	width := len(strconv.Itoa(spec.Sites))
	g := &Grid{
		Origin:   fmt.Sprintf("s%0*d", width, 1),
		LocalRTT: spec.LocalRTT,
		SiteInfo: make(map[string]*Site),
	}
	// One slab for every Host struct and one append-built ID per host:
	// at a million hosts the per-object allocator overhead and the
	// fmt.Sprintf scratch otherwise dominate construction. The Hosts
	// pointer slice keeps the exported shape unchanged.
	slab := make([]Host, spec.Sites*spec.HostsPerSite)
	g.Hosts = make([]*Host, 0, len(slab))
	idBuf := make([]byte, 0, 32)
	for i := 0; i < spec.Sites; i++ {
		name := fmt.Sprintf("s%0*d", width, i+1)
		rtt := spec.LocalRTT
		if i > 0 {
			rtt = rtts[i-1]
		}
		g.SiteOrder = append(g.SiteOrder, name)
		g.SiteInfo[name] = &Site{Name: name, RTTFromOrigin: rtt, BandwidthBps: spec.BandwidthBps}
		c := &Cluster{
			Site:         name,
			Name:         "c" + name[1:],
			CPU:          "synthetic",
			Nodes:        spec.HostsPerSite,
			CPUs:         spec.HostsPerSite,
			Cores:        spec.HostsPerSite * spec.CoresPerHost,
			CoresPerHost: spec.CoresPerHost,
			CoreGFLOPS:   spec.CoreGFLOPS,
			HostMemBWGBs: spec.HostMemBWGBs,
		}
		g.Clusters = append(g.Clusters, c)
		for j := 0; j < spec.HostsPerSite; j++ {
			idBuf = append(idBuf[:0], c.Name...)
			idBuf = append(idBuf, '-')
			idBuf = strconv.AppendInt(idBuf, int64(j+1), 10)
			idBuf = append(idBuf, '.')
			idBuf = append(idBuf, name...)
			h := &slab[i*spec.HostsPerSite+j]
			*h = Host{
				ID:      string(idBuf),
				Site:    name,
				Cluster: c.Name,
				Cores:   spec.CoresPerHost,
				Index:   j,
			}
			g.Hosts = append(g.Hosts, h)
		}
	}
	return g
}

// ParseTopologySpec parses a -grid flag value:
//
//	grid5000
//	synth
//	synth:S=12,H=400,C=2,seed=7,rttmin=5ms,rttmax=25ms
//
// Keys (case-insensitive): S/sites, H/hosts (hosts per site), C/cores
// (cores per host), seed, rttmin, rttmax, local (intra-site RTT), bw
// (bits per second), gflops, membw, sn/supernodes (membership
// federation width). Omitted keys take the TopologySpec defaults.
func ParseTopologySpec(s string) (TopologySpec, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "grid5000":
		return TopologySpec{Kind: "grid5000"}, nil
	case "synth":
		return TopologySpec{Kind: "synth"}, nil
	}
	rest, ok := strings.CutPrefix(s, "synth:")
	if !ok {
		return TopologySpec{}, fmt.Errorf("grid: unknown topology %q (want grid5000 or synth:S=...,H=...)", s)
	}
	spec := TopologySpec{Kind: "synth"}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return TopologySpec{}, fmt.Errorf("grid: topology field %q is not key=value", kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "s", "sites":
			spec.Sites, err = parsePositiveInt(val)
		case "h", "hosts":
			spec.HostsPerSite, err = parsePositiveInt(val)
		case "c", "cores":
			spec.CoresPerHost, err = parsePositiveInt(val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err == nil && spec.Seed == 0 {
				err = fmt.Errorf("seed 0 is reserved as the unset default (it would alias seed 1); pick a non-zero seed")
			}
		case "rttmin":
			spec.RTTMin, err = time.ParseDuration(strings.TrimSpace(val))
		case "rttmax":
			spec.RTTMax, err = time.ParseDuration(strings.TrimSpace(val))
		case "local":
			spec.LocalRTT, err = time.ParseDuration(strings.TrimSpace(val))
		case "bw":
			spec.BandwidthBps, err = strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		case "gflops":
			spec.CoreGFLOPS, err = strconv.ParseFloat(strings.TrimSpace(val), 64)
		case "membw":
			spec.HostMemBWGBs, err = strconv.ParseFloat(strings.TrimSpace(val), 64)
		case "sn", "supernodes":
			spec.Supernodes, err = parsePositiveInt(val)
		default:
			return TopologySpec{}, fmt.Errorf("grid: unknown topology key %q", key)
		}
		if err != nil {
			return TopologySpec{}, fmt.Errorf("grid: topology field %q: %v", kv, err)
		}
	}
	if spec.RTTMin > 0 && spec.RTTMax > 0 && spec.RTTMax < spec.RTTMin {
		return TopologySpec{}, fmt.Errorf("grid: rttmax %v < rttmin %v", spec.RTTMax, spec.RTTMin)
	}
	return spec, nil
}

func parsePositiveInt(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if v < 1 {
		return 0, fmt.Errorf("value %d out of range", v)
	}
	return v, nil
}
