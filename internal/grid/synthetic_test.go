package grid

import (
	"reflect"
	"testing"
	"time"
)

func TestSyntheticSizes(t *testing.T) {
	g := Synthetic(TopologySpec{Kind: "synth", Sites: 12, HostsPerSite: 400, CoresPerHost: 2, Seed: 7})
	if got := g.TotalHosts(); got != 4800 {
		t.Fatalf("hosts = %d, want 4800", got)
	}
	if got := g.TotalCores(); got != 9600 {
		t.Fatalf("cores = %d, want 9600", got)
	}
	if len(g.SiteOrder) != 12 || len(g.Clusters) != 12 {
		t.Fatalf("sites = %d, clusters = %d", len(g.SiteOrder), len(g.Clusters))
	}
	perSite := g.HostsBySite()
	for _, s := range g.SiteOrder {
		if perSite[s] != 400 {
			t.Fatalf("site %s has %d hosts", s, perSite[s])
		}
	}
	// Every host resolves through the ID table and back to its cluster.
	h := g.Hosts[1234]
	if g.HostByID(h.ID) != h {
		t.Fatalf("HostByID(%q) broken", h.ID)
	}
	if c := g.ClusterOf(h); c == nil || c.CoresPerHost != 2 {
		t.Fatalf("ClusterOf(%q) = %+v", h.ID, c)
	}
}

func TestSyntheticRTTOrderingAndStar(t *testing.T) {
	g := Synthetic(TopologySpec{Kind: "synth", Sites: 8, HostsPerSite: 4, Seed: 3,
		RTTMin: 5 * time.Millisecond, RTTMax: 25 * time.Millisecond})
	if g.Origin != g.SiteOrder[0] {
		t.Fatalf("origin %q is not the first site %q", g.Origin, g.SiteOrder[0])
	}
	prev := time.Duration(-1)
	for _, s := range g.SiteOrder {
		rtt := g.SiteInfo[s].RTTFromOrigin
		if rtt < prev {
			t.Fatalf("SiteOrder not ascending: %s at %v after %v", s, rtt, prev)
		}
		prev = rtt
		if s != g.Origin && (rtt < 5*time.Millisecond || rtt > 25*time.Millisecond) {
			t.Fatalf("site %s RTT %v outside [5ms, 25ms]", s, rtt)
		}
	}
	// Intra-site, origin-leg and star-approximated RTTs behave like
	// Grid5000's.
	a, b := g.SiteOrder[2], g.SiteOrder[5]
	if got := g.SiteRTT(a, a); got != g.LocalRTT {
		t.Fatalf("local RTT = %v", got)
	}
	if got := g.SiteRTT(g.Origin, b); got != g.SiteInfo[b].RTTFromOrigin {
		t.Fatalf("origin leg = %v", got)
	}
	want := (g.SiteInfo[a].RTTFromOrigin + g.SiteInfo[b].RTTFromOrigin) / 2
	if got := g.SiteRTT(a, b); got != want {
		t.Fatalf("star RTT = %v, want %v", got, want)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := TopologySpec{Kind: "synth", Sites: 5, HostsPerSite: 3, Seed: 42}
	g1, g2 := Synthetic(spec), Synthetic(spec)
	if !reflect.DeepEqual(g1.SiteOrder, g2.SiteOrder) {
		t.Fatal("site order differs between identical specs")
	}
	for _, s := range g1.SiteOrder {
		if g1.SiteInfo[s].RTTFromOrigin != g2.SiteInfo[s].RTTFromOrigin {
			t.Fatalf("site %s RTT differs", s)
		}
	}
	g3 := Synthetic(TopologySpec{Kind: "synth", Sites: 5, HostsPerSite: 3, Seed: 43})
	same := true
	for i, s := range g1.SiteOrder {
		if g3.SiteInfo[g3.SiteOrder[i]].RTTFromOrigin != g1.SiteInfo[s].RTTFromOrigin {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical RTT draws")
	}
}

func TestTopologySpecBuildDefaultsToGrid5000(t *testing.T) {
	var zero TopologySpec
	g := zero.Build()
	if g.TotalHosts() != 350 || g.Origin != Nancy {
		t.Fatalf("zero spec built %d hosts origin %q", g.TotalHosts(), g.Origin)
	}
	if !reflect.DeepEqual(g.SiteOrder, Sites) {
		t.Fatalf("Grid5000 SiteOrder = %v", g.SiteOrder)
	}
	if zero.TotalHosts() != 350 {
		t.Fatalf("zero spec TotalHosts = %d", zero.TotalHosts())
	}
}

func TestParseTopologySpec(t *testing.T) {
	spec, err := ParseTopologySpec("synth:S=12,H=400,C=4,seed=9,rttmin=2ms,rttmax=30ms")
	if err != nil {
		t.Fatal(err)
	}
	want := TopologySpec{Kind: "synth", Sites: 12, HostsPerSite: 400, CoresPerHost: 4,
		Seed: 9, RTTMin: 2 * time.Millisecond, RTTMax: 30 * time.Millisecond}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if spec.TotalHosts() != 4800 {
		t.Fatalf("TotalHosts = %d", spec.TotalHosts())
	}
	if _, err := ParseTopologySpec("grid5000"); err != nil {
		t.Fatal(err)
	}
	if s, err := ParseTopologySpec("synth"); err != nil || !s.IsSynthetic() {
		t.Fatalf("bare synth: %+v, %v", s, err)
	}
	for _, bad := range []string{"mesh", "synth:S", "synth:S=0", "synth:bogus=1", "synth:H=x",
		"synth:rttmin=10ms,rttmax=3ms", "synth:seed=0"} {
		if _, err := ParseTopologySpec(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// An explicit max below the default min is honoured, not discarded:
	// the draw degenerates to exactly that bound.
	tight, err := ParseTopologySpec("synth:S=4,H=2,rttmax=3ms")
	if err != nil {
		t.Fatal(err)
	}
	g := Synthetic(tight)
	for _, s := range g.SiteOrder[1:] {
		if got := g.SiteInfo[s].RTTFromOrigin; got != 3*time.Millisecond {
			t.Fatalf("site %s RTT %v, want the explicit 3ms cap", s, got)
		}
	}
	// Canonical String round-trips through the parser.
	rt, err := ParseTopologySpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Sites != spec.Sites || rt.HostsPerSite != spec.HostsPerSite || rt.Seed != spec.Seed {
		t.Fatalf("round trip %+v -> %+v", spec, rt)
	}
}
