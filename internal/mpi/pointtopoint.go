package mpi

import (
	"time"

	"p2pmpi/internal/vtime"
)

// Sendrecv performs the classic combined exchange: send to dst and
// receive from src in one deadlock-free operation (sends never block in
// this library, so the pair is safe in any schedule, including
// self-exchange).
func (c *Comm) Sendrecv(dst, sendTag int, out Data, src, recvTag int) (Data, Status, error) {
	if err := c.Send(dst, sendTag, out); err != nil {
		return Data{}, Status{}, err
	}
	return c.Recv(src, recvTag)
}

// Probe blocks until a message matching (src, tag) is available and
// returns its envelope without consuming it; a following Recv with the
// returned status fields observes the same message.
func (c *Comm) Probe(src, tag int) (Status, error) {
	return c.probe(src, tag, -1)
}

// ProbeTimeout is Probe bounded by d (< 0 blocks forever).
func (c *Comm) ProbeTimeout(src, tag int, d time.Duration) (Status, error) {
	return c.probe(src, tag, d)
}

// Iprobe is the non-blocking probe: it reports whether a matching
// message is already buffered.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	c.drainInboxNonblocking()
	for _, ev := range c.pend {
		if matches(ev, src, tag) {
			return Status{Source: ev.srcRank, Tag: ev.tag}, true
		}
	}
	return Status{}, false
}

func (c *Comm) probe(src, tag int, d time.Duration) (Status, error) {
	var deadline time.Time
	hasDeadline := d >= 0
	if hasDeadline {
		deadline = c.cfg.RT.Now().Add(d)
	}
	for _, ev := range c.pend {
		if matches(ev, src, tag) {
			return Status{Source: ev.srcRank, Tag: ev.tag}, nil
		}
	}
	for {
		wait := time.Duration(-1)
		if hasDeadline {
			wait = deadline.Sub(c.cfg.RT.Now())
			if wait < 0 {
				return Status{}, ErrTimeout
			}
		}
		v, err := c.inbox.PopTimeout(wait)
		if err == vtime.ErrTimeout {
			return Status{}, ErrTimeout
		}
		if err != nil {
			return Status{}, ErrClosed
		}
		ev := v.(envelope)
		if !c.accept(&ev) {
			continue
		}
		// Buffer it either way: Probe never consumes.
		c.pend = append(c.pend, ev)
		if matches(ev, src, tag) {
			return Status{Source: ev.srcRank, Tag: ev.tag}, nil
		}
	}
}

// drainInboxNonblocking moves already-delivered envelopes into the
// matching buffer without parking the caller.
func (c *Comm) drainInboxNonblocking() {
	for {
		v, err := c.inbox.PopTimeout(0)
		if err != nil {
			return
		}
		ev := v.(envelope)
		if c.accept(&ev) {
			c.pend = append(c.pend, ev)
		}
	}
}
