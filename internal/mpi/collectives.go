package mpi

import "fmt"

// Combiner merges two message bodies during a reduction. It must be
// associative and commutative (the algorithms reorder operands). For
// modelled (virtual-size) runs a combiner typically just propagates the
// size; for real data it decodes, reduces and re-encodes.
type Combiner func(a, b Data) Data

// collective op codes, folded into internal (negative) tags.
const (
	opBarrier = iota
	opBcast
	opReduce
	opAllreduce
	opGather
	opAllgather
	opScatter
	opAlltoall
	opAlltoallv
	opScan
)

// nextColTag allocates the internal tag for one collective call. All
// processes execute collectives in the same order, so their counters
// agree; the tag is at most -2, so it can never collide with user tags
// (>= 0) or the AnyTag sentinel (-1), and it is invisible to AnyTag
// receives.
func (c *Comm) nextColTag(op int) int {
	c.mu.Lock()
	seq := c.colSeq
	c.colSeq++
	c.mu.Unlock()
	return -int(seq*16+uint64(op)) - 2
}

// recvCol receives one collective message with an exact (src, tag) match.
func (c *Comm) recvCol(src, tag int) (Data, error) {
	d, _, err := c.RecvTimeout(src, tag, -1)
	return d, err
}

// Barrier blocks until every process has entered it (dissemination
// algorithm, ⌈log2 p⌉ rounds).
func (c *Comm) Barrier() error {
	tag := c.nextColTag(opBarrier)
	p := c.size
	for k := 1; k < p; k <<= 1 {
		to := (c.rank + k) % p
		from := (c.rank - k + p) % p
		if err := c.send(to, tag, Data{}); err != nil {
			return err
		}
		if _, err := c.recvCol(from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every process and returns the local
// copy (root returns its input).
func (c *Comm) Bcast(root int, d Data) (Data, error) {
	if root < 0 || root >= c.size {
		return Data{}, ErrInvalidRank
	}
	tag := c.nextColTag(opBcast)
	switch c.cfg.Algorithms.Bcast {
	case BcastLinear:
		return c.bcastLinear(root, d, tag)
	default:
		return c.bcastBinomial(root, d, tag)
	}
}

func (c *Comm) bcastLinear(root int, d Data, tag int) (Data, error) {
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, d); err != nil {
				return Data{}, err
			}
		}
		return d, nil
	}
	return c.recvCol(root, tag)
}

func (c *Comm) bcastBinomial(root int, d Data, tag int) (Data, error) {
	p := c.size
	rel := (c.rank - root + p) % p
	// Receive from the parent (owner of my lowest set bit).
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			got, err := c.recvCol(src, tag)
			if err != nil {
				return Data{}, err
			}
			d = got
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			if err := c.send(dst, tag, d); err != nil {
				return Data{}, err
			}
		}
		mask >>= 1
	}
	return d, nil
}

// Reduce combines everyone's data at root. Non-roots return zero Data.
func (c *Comm) Reduce(root int, d Data, combine Combiner) (Data, error) {
	if root < 0 || root >= c.size {
		return Data{}, ErrInvalidRank
	}
	tag := c.nextColTag(opReduce)
	switch c.cfg.Algorithms.Reduce {
	case ReduceLinear:
		return c.reduceLinear(root, d, combine, tag)
	default:
		return c.reduceBinomial(root, d, combine, tag)
	}
}

func (c *Comm) reduceLinear(root int, d Data, combine Combiner, tag int) (Data, error) {
	if c.rank != root {
		return Data{}, c.send(root, tag, d)
	}
	acc := d
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		got, err := c.recvCol(r, tag)
		if err != nil {
			return Data{}, err
		}
		acc = combine(acc, got)
	}
	return acc, nil
}

func (c *Comm) reduceBinomial(root int, d Data, combine Combiner, tag int) (Data, error) {
	p := c.size
	rel := (c.rank - root + p) % p
	acc := d
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask == 0 {
			partner := rel | mask
			if partner < p {
				src := (partner + root) % p
				got, err := c.recvCol(src, tag)
				if err != nil {
					return Data{}, err
				}
				acc = combine(acc, got)
			}
		} else {
			dst := (rel - mask + root) % p
			if err := c.send(dst, tag, acc); err != nil {
				return Data{}, err
			}
			return Data{}, nil
		}
	}
	return acc, nil
}

// Allreduce combines everyone's data and returns the result everywhere.
func (c *Comm) Allreduce(d Data, combine Combiner) (Data, error) {
	switch c.cfg.Algorithms.Allreduce {
	case AllreduceReduceBcast:
		res, err := c.Reduce(0, d, combine)
		if err != nil {
			return Data{}, err
		}
		return c.Bcast(0, res)
	default:
		return c.allreduceRecDoubling(d, combine)
	}
}

// allreduceRecDoubling implements MPICH-style recursive doubling with the
// standard non-power-of-two pre/post phase.
func (c *Comm) allreduceRecDoubling(d Data, combine Combiner) (Data, error) {
	tag := c.nextColTag(opAllreduce)
	p := c.size
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	acc := d
	newRank := -1

	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		// Fold into the odd neighbour, then sit out the doubling phase.
		if err := c.send(c.rank+1, tag, acc); err != nil {
			return Data{}, err
		}
	case c.rank < 2*rem:
		got, err := c.recvCol(c.rank-1, tag)
		if err != nil {
			return Data{}, err
		}
		acc = combine(acc, got)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	if newRank >= 0 {
		toReal := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toReal(newRank ^ mask)
			if err := c.send(partner, tag, acc); err != nil {
				return Data{}, err
			}
			got, err := c.recvCol(partner, tag)
			if err != nil {
				return Data{}, err
			}
			acc = combine(acc, got)
		}
	}

	// Deliver the result back to the folded-out even ranks.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			got, err := c.recvCol(c.rank+1, tag)
			if err != nil {
				return Data{}, err
			}
			acc = got
		} else {
			if err := c.send(c.rank-1, tag, acc); err != nil {
				return Data{}, err
			}
		}
	}
	return acc, nil
}

// Gather collects everyone's data at root, indexed by rank. Non-roots
// return nil.
func (c *Comm) Gather(root int, d Data) ([]Data, error) {
	if root < 0 || root >= c.size {
		return nil, ErrInvalidRank
	}
	tag := c.nextColTag(opGather)
	if c.rank != root {
		return nil, c.send(root, tag, d)
	}
	out := make([]Data, c.size)
	out[root] = d
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		got, err := c.recvCol(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Allgather collects everyone's data at every process.
func (c *Comm) Allgather(d Data) ([]Data, error) {
	switch c.cfg.Algorithms.Allgather {
	case AllgatherLinear:
		all, err := c.Gather(0, d)
		if err != nil {
			return nil, err
		}
		joined, err := c.Bcast(0, packMany(all))
		if err != nil {
			return nil, err
		}
		return unpackMany(joined, c.size)
	default:
		return c.allgatherRing(d)
	}
}

func (c *Comm) allgatherRing(d Data) ([]Data, error) {
	tag := c.nextColTag(opAllgather)
	p := c.size
	out := make([]Data, p)
	out[c.rank] = d
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := (c.rank - step + p) % p
		recvIdx := (c.rank - step - 1 + p) % p
		if err := c.send(right, tag, out[sendIdx]); err != nil {
			return nil, err
		}
		got, err := c.recvCol(left, tag)
		if err != nil {
			return nil, err
		}
		out[recvIdx] = got
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i and returns the local
// part. Only root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts []Data) (Data, error) {
	if root < 0 || root >= c.size {
		return Data{}, ErrInvalidRank
	}
	tag := c.nextColTag(opScatter)
	if c.rank == root {
		if len(parts) != c.size {
			return Data{}, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.size, len(parts))
		}
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, parts[r]); err != nil {
				return Data{}, err
			}
		}
		return parts[root], nil
	}
	return c.recvCol(root, tag)
}

// Alltoall sends parts[i] to rank i and returns what each rank sent here.
func (c *Comm) Alltoall(parts []Data) ([]Data, error) {
	if len(parts) != c.size {
		return nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", c.size, len(parts))
	}
	tag := c.nextColTag(opAlltoall)
	return c.exchange(parts, tag, c.cfg.Algorithms.Alltoall)
}

// Alltoallv is Alltoall with per-destination sizes; in this byte-oriented
// API it is the same exchange, kept separate to mirror the MPI surface
// (NAS IS uses Alltoallv for its key redistribution).
func (c *Comm) Alltoallv(parts []Data) ([]Data, error) {
	if len(parts) != c.size {
		return nil, fmt.Errorf("mpi: alltoallv needs %d parts, got %d", c.size, len(parts))
	}
	tag := c.nextColTag(opAlltoallv)
	return c.exchange(parts, tag, c.cfg.Algorithms.Alltoall)
}

func (c *Comm) exchange(parts []Data, tag int, alg AlltoallAlg) ([]Data, error) {
	p := c.size
	out := make([]Data, p)
	out[c.rank] = parts[c.rank]
	switch alg {
	case AlltoallLinear:
		for r := 0; r < p; r++ {
			if r == c.rank {
				continue
			}
			if err := c.send(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		for r := 0; r < p; r++ {
			if r == c.rank {
				continue
			}
			got, err := c.recvCol(r, tag)
			if err != nil {
				return nil, err
			}
			out[r] = got
		}
	default: // pairwise: balanced rounds, partner distance rotates
		for round := 1; round < p; round++ {
			to := (c.rank + round) % p
			from := (c.rank - round + p) % p
			if err := c.send(to, tag, parts[to]); err != nil {
				return nil, err
			}
			got, err := c.recvCol(from, tag)
			if err != nil {
				return nil, err
			}
			out[from] = got
		}
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank k returns the
// combination of ranks 0..k (linear chain).
func (c *Comm) Scan(d Data, combine Combiner) (Data, error) {
	tag := c.nextColTag(opScan)
	acc := d
	if c.rank > 0 {
		got, err := c.recvCol(c.rank-1, tag)
		if err != nil {
			return Data{}, err
		}
		acc = combine(got, acc)
	}
	if c.rank < c.size-1 {
		if err := c.send(c.rank+1, tag, acc); err != nil {
			return Data{}, err
		}
	}
	return acc, nil
}

// packMany/unpackMany concatenate Data bodies for gather+bcast composites.
func packMany(parts []Data) Data {
	var total int
	var virt int64
	for _, p := range parts {
		total += 8 + len(p.Bytes)
		virt += p.Virtual
	}
	buf := make([]byte, 0, total)
	for _, p := range parts {
		var hdr [8]byte
		n := len(p.Bytes)
		for i := 0; i < 8; i++ {
			hdr[i] = byte(n >> (8 * (7 - i)))
		}
		buf = append(buf, hdr[:]...)
		buf = append(buf, p.Bytes...)
	}
	return Data{Bytes: buf, Virtual: virt}
}

func unpackMany(d Data, n int) ([]Data, error) {
	out := make([]Data, 0, n)
	b := d.Bytes
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("mpi: corrupt packed gather")
		}
		var sz int
		for j := 0; j < 8; j++ {
			sz = sz<<8 | int(b[j])
		}
		b = b[8:]
		if sz < 0 || sz > len(b) {
			return nil, fmt.Errorf("mpi: corrupt packed gather size %d", sz)
		}
		part := Data{Virtual: d.Virtual / int64(n)}
		if sz > 0 {
			part.Bytes = b[:sz]
		}
		b = b[sz:]
		out = append(out, part)
	}
	return out, nil
}
