package mpi

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// BenchmarkAllreduce8 measures wall cost of a full 8-rank allreduce
// round (simulator + library overhead; virtual time is free).
func BenchmarkAllreduce8(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error {
		_, err := c.AllreduceF64([]float64{float64(c.Rank())}, OpSum)
		return err
	})
}

// BenchmarkAlltoall8 measures an 8-rank pairwise exchange round.
func BenchmarkAlltoall8(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error {
		parts := make([]Data, c.Size())
		for i := range parts {
			parts[i] = Data{Bytes: []byte{byte(i)}}
		}
		_, err := c.Alltoall(parts)
		return err
	})
}

// BenchmarkSendRecvPair measures one message hop between two ranks.
func BenchmarkSendRecvPair(b *testing.B) {
	s := vtime.New()
	defer s.Shutdown()
	net := simnet.New(s, &simnet.StaticTopology{
		HostSite: map[string]string{"hub": "x"},
		DefLat:   100 * time.Microsecond,
	}, simnet.Config{Seed: 3, NICBps: 1e9})

	s.Go("world", func() {
		errs := RunLocal(s, net.Node("hub"), "hub", 47000, 2, Algorithms{},
			func(c *Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						if err := c.Send(1, 0, Data{Bytes: []byte{1}}); err != nil {
							return err
						}
						if _, _, err := c.Recv(1, 0); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < b.N; i++ {
					if _, _, err := c.Recv(0, 0); err != nil {
						return err
					}
					if err := c.Send(0, 0, Data{Bytes: []byte{1}}); err != nil {
						return err
					}
				}
				return nil
			})
		for rank, err := range errs {
			if err != nil {
				b.Errorf("rank %d: %v", rank, err)
			}
		}
	})
	b.ResetTimer()
	s.Wait()
}

func benchCollective(b *testing.B, n int, op func(c *Comm) error) {
	b.Helper()
	s := vtime.New()
	defer s.Shutdown()
	hostSite := make(map[string]string)
	for i := 0; i < n; i++ {
		hostSite[fmt.Sprintf("h%d", i)] = "x"
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: 100 * time.Microsecond},
		simnet.Config{Seed: 4, NICBps: 1e9})

	s.Go("world", func() {
		slots := make([]Slot, n)
		for i := range slots {
			h := fmt.Sprintf("h%d", i)
			slots[i] = Slot{Rank: i, Global: i, HostID: h, Addr: fmt.Sprintf("%s:%d", h, 47100+i)}
		}
		mb := s.NewMailbox()
		for i := 0; i < n; i++ {
			slot := slots[i]
			s.Go("rank", func() {
				c, err := Join(Config{Self: slot, Slots: slots, N: n, R: 1,
					Net: net.Node(slot.HostID), RT: s})
				if err != nil {
					mb.Push(err)
					return
				}
				defer c.Close()
				for it := 0; it < b.N; it++ {
					if err := op(c); err != nil {
						mb.Push(err)
						return
					}
				}
				mb.Push(nil)
			})
		}
		for i := 0; i < n; i++ {
			if v, _ := mb.Pop(); v != nil {
				b.Errorf("rank failed: %v", v)
			}
		}
	})
	b.ResetTimer()
	s.Wait()
}
