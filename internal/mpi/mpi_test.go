package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// world spins up n logical ranks (each with r replicas) on their own
// simulated hosts and runs fn in every process. It returns per-slot
// errors after all processes finish.
type world struct {
	s     *vtime.Scheduler
	net   *simnet.Net
	slots []Slot
	n, r  int
	algs  Algorithms
}

func newWorld(t *testing.T, n, r int, algs Algorithms) *world {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hostSite := make(map[string]string)
	var slots []Slot
	for rank := 0; rank < n; rank++ {
		for rep := 0; rep < r; rep++ {
			g := rank*r + rep
			host := fmt.Sprintf("host%03d", g)
			hostSite[host] = fmt.Sprintf("site%d", g%4)
			slots = append(slots, Slot{
				Rank: rank, Replica: rep, Global: g,
				HostID: host, Addr: fmt.Sprintf("%s:%d", host, 40000+g),
			})
		}
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: time.Millisecond},
		simnet.Config{Seed: 17, NICBps: 1e9})
	return &world{s: s, net: net, slots: slots, n: n, r: r, algs: algs}
}

// run launches fn on every slot and waits for completion; errors are
// reported per slot.
func (w *world) run(t *testing.T, fn func(c *Comm) error) {
	t.Helper()
	errs := make([]error, len(w.slots))
	for i, slot := range w.slots {
		i, slot := i, slot
		w.s.Go(fmt.Sprintf("proc.g%d", slot.Global), func() {
			c, err := Join(Config{
				Self: slot, Slots: w.slots, N: w.n, R: w.r,
				Net: w.net.Node(slot.HostID), RT: w.s, Algorithms: w.algs,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			errs[i] = fn(c)
		})
	}
	w.s.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d (%+v): %v", i, w.slots[i], err)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, Data{Bytes: []byte("hello")})
		}
		d, st, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(d.Bytes) != "hello" || st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("got %q from %d tag %d", d.Bytes, st.Source, st.Tag)
		}
		return nil
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, Data{Bytes: []byte("first")}); err != nil {
				return err
			}
			return c.Send(1, 2, Data{Bytes: []byte("second")})
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		d2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(d2.Bytes) != "second" || string(d1.Bytes) != "first" {
			return fmt.Errorf("mismatch: %q %q", d2.Bytes, d1.Bytes)
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newWorld(t, 3, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank()+10, Data{Bytes: []byte{byte(c.Rank())}})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			d, st, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(d.Bytes[0]) != st.Source || st.Tag != st.Source+10 {
				return fmt.Errorf("bad envelope %+v", st)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing source: %v", seen)
		}
		return nil
	})
}

func TestRecvTimeout(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 1 {
			_, _, err := c.RecvTimeout(0, 5, 100*time.Millisecond)
			if err != ErrTimeout {
				return fmt.Errorf("err = %v, want ErrTimeout", err)
			}
		}
		return nil
	})
}

func TestSendValidation(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if err := c.Send(5, 1, Data{}); err == nil {
			return fmt.Errorf("send to rank 5 of 2 accepted")
		}
		if err := c.Send(0, -3, Data{}); err == nil {
			return fmt.Errorf("negative user tag accepted")
		}
		return nil
	})
}

func TestRingPass(t *testing.T) {
	const n = 8
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		token := []byte{0}
		if c.Rank() == 0 {
			if err := c.Send(1, 0, Data{Bytes: token}); err != nil {
				return err
			}
			d, _, err := c.Recv(n-1, 0)
			if err != nil {
				return err
			}
			if int(d.Bytes[0]) != n-1 {
				return fmt.Errorf("token = %d, want %d", d.Bytes[0], n-1)
			}
			return nil
		}
		d, _, err := c.Recv(c.Rank()-1, 0)
		if err != nil {
			return err
		}
		return c.Send((c.Rank()+1)%n, 0, Data{Bytes: []byte{d.Bytes[0] + 1}})
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 7
	w := newWorld(t, n, 1, Algorithms{})
	var entered [n]time.Duration
	var exited [n]time.Duration
	w.run(t, func(c *Comm) error {
		// Stagger entries; nobody may exit before the last entry.
		w.s.Sleep(time.Duration(c.Rank()) * 10 * time.Millisecond)
		entered[c.Rank()] = w.s.Elapsed()
		if err := c.Barrier(); err != nil {
			return err
		}
		exited[c.Rank()] = w.s.Elapsed()
		return nil
	})
	lastEntry := entered[0]
	for _, e := range entered {
		if e > lastEntry {
			lastEntry = e
		}
	}
	for r, x := range exited {
		if x < lastEntry {
			t.Fatalf("rank %d exited barrier at %v before last entry %v", r, x, lastEntry)
		}
	}
}

func bcastCheck(t *testing.T, alg BcastAlg, sizes ...int) {
	t.Helper()
	for _, n := range sizes {
		w := newWorld(t, n, 1, Algorithms{Bcast: alg})
		root := (n - 1) / 2
		payload := []byte("broadcast-payload")
		w.run(t, func(c *Comm) error {
			var in Data
			if c.Rank() == root {
				in = Data{Bytes: payload}
			}
			out, err := c.Bcast(root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(out.Bytes, payload) {
				return fmt.Errorf("rank %d got %q", c.Rank(), out.Bytes)
			}
			return nil
		})
	}
}

func TestBcastBinomial(t *testing.T) { bcastCheck(t, BcastBinomial, 1, 2, 3, 5, 8, 9) }
func TestBcastLinear(t *testing.T)   { bcastCheck(t, BcastLinear, 1, 2, 5, 8) }

func reduceCheck(t *testing.T, alg ReduceAlg, n int) {
	t.Helper()
	w := newWorld(t, n, 1, Algorithms{Reduce: alg})
	root := n - 1
	w.run(t, func(c *Comm) error {
		vals := []float64{float64(c.Rank()), 1}
		got, err := c.ReduceF64(root, vals, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() != root {
			if got != nil {
				return fmt.Errorf("non-root received %v", got)
			}
			return nil
		}
		wantSum := float64(n*(n-1)) / 2
		if got[0] != wantSum || got[1] != float64(n) {
			return fmt.Errorf("reduce = %v, want [%v %v]", got, wantSum, n)
		}
		return nil
	})
}

func TestReduceBinomial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 8} {
		reduceCheck(t, ReduceBinomial, n)
	}
}
func TestReduceLinear(t *testing.T) { reduceCheck(t, ReduceLinear, 5) }

func allreduceCheck(t *testing.T, alg AllreduceAlg, sizes ...int) {
	t.Helper()
	for _, n := range sizes {
		w := newWorld(t, n, 1, Algorithms{Allreduce: alg})
		w.run(t, func(c *Comm) error {
			got, err := c.AllreduceF64([]float64{float64(c.Rank() + 1)}, OpSum)
			if err != nil {
				return err
			}
			want := float64(n*(n+1)) / 2
			if got[0] != want {
				return fmt.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got[0], want)
			}
			max, err := c.AllreduceI64([]int64{int64(c.Rank())}, OpMax)
			if err != nil {
				return err
			}
			if max[0] != int64(n-1) {
				return fmt.Errorf("max = %v", max[0])
			}
			return nil
		})
	}
}

func TestAllreduceRecursiveDoubling(t *testing.T) {
	allreduceCheck(t, AllreduceRecursiveDoubling, 1, 2, 3, 4, 5, 6, 7, 8, 9)
}
func TestAllreduceReduceBcast(t *testing.T) { allreduceCheck(t, AllreduceReduceBcast, 5, 8) }

func TestGatherScatter(t *testing.T) {
	const n = 6
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		all, err := c.Gather(0, Data{Bytes: []byte{byte(c.Rank() * 2)}})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r, d := range all {
				if int(d.Bytes[0]) != r*2 {
					return fmt.Errorf("gather[%d] = %v", r, d.Bytes)
				}
			}
		} else if all != nil {
			return fmt.Errorf("non-root gather returned data")
		}
		var parts []Data
		if c.Rank() == 0 {
			for r := 0; r < n; r++ {
				parts = append(parts, Data{Bytes: []byte{byte(r * 3)}})
			}
		}
		mine, err := c.Scatter(0, parts)
		if err != nil {
			return err
		}
		if int(mine.Bytes[0]) != c.Rank()*3 {
			return fmt.Errorf("scatter = %v", mine.Bytes)
		}
		return nil
	})
}

func allgatherCheck(t *testing.T, alg AllgatherAlg, n int) {
	t.Helper()
	w := newWorld(t, n, 1, Algorithms{Allgather: alg})
	w.run(t, func(c *Comm) error {
		all, err := c.Allgather(Data{Bytes: []byte{byte(c.Rank() + 100)}})
		if err != nil {
			return err
		}
		for r, d := range all {
			if len(d.Bytes) != 1 || int(d.Bytes[0]) != r+100 {
				return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), r, d.Bytes)
			}
		}
		return nil
	})
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		allgatherCheck(t, AllgatherRing, n)
	}
}
func TestAllgatherLinear(t *testing.T) { allgatherCheck(t, AllgatherLinear, 6) }

func alltoallCheck(t *testing.T, alg AlltoallAlg, n int) {
	t.Helper()
	w := newWorld(t, n, 1, Algorithms{Alltoall: alg})
	w.run(t, func(c *Comm) error {
		parts := make([]Data, n)
		for i := range parts {
			parts[i] = Data{Bytes: []byte{byte(c.Rank()), byte(i)}}
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for src, d := range got {
			if int(d.Bytes[0]) != src || int(d.Bytes[1]) != c.Rank() {
				return fmt.Errorf("rank %d: from %d got %v", c.Rank(), src, d.Bytes)
			}
		}
		return nil
	})
}

func TestAlltoallPairwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		alltoallCheck(t, AlltoallPairwise, n)
	}
}
func TestAlltoallLinear(t *testing.T) { alltoallCheck(t, AlltoallLinear, 5) }

func TestAlltoallvVariableSizes(t *testing.T) {
	const n = 5
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		parts := make([]Data, n)
		for i := range parts {
			// Rank r sends r*i bytes to rank i.
			parts[i] = Data{Bytes: bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()*i)}
		}
		got, err := c.Alltoallv(parts)
		if err != nil {
			return err
		}
		for src, d := range got {
			want := src * c.Rank()
			if len(d.Bytes) != want {
				return fmt.Errorf("rank %d: |from %d| = %d, want %d", c.Rank(), src, len(d.Bytes), want)
			}
		}
		return nil
	})
}

func TestScanPrefixSums(t *testing.T) {
	const n = 6
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		res, err := c.Scan(Data{Bytes: EncodeI64s([]int64{int64(c.Rank() + 1)})}, I64Combiner(OpSum))
		if err != nil {
			return err
		}
		vals, err := DecodeI64s(res.Bytes)
		if err != nil {
			return err
		}
		k := int64(c.Rank() + 1)
		if vals[0] != k*(k+1)/2 {
			return fmt.Errorf("rank %d: scan = %d, want %d", c.Rank(), vals[0], k*(k+1)/2)
		}
		return nil
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Tag separation: successive collectives must not cross-talk.
	const n = 4
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			got, err := c.AllreduceI64([]int64{int64(i)}, OpSum)
			if err != nil {
				return err
			}
			if got[0] != int64(i*n) {
				return fmt.Errorf("iter %d: %d", i, got[0])
			}
		}
		return nil
	})
}

func TestVirtualPayloadCostsTime(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	var took time.Duration
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, Data{Virtual: 10 << 20}) // 10 MB modelled
		}
		start := w.s.Elapsed()
		_, _, err := c.Recv(0, 0)
		took = w.s.Elapsed() - start
		return err
	})
	// 10 MB over 1 Gb/s ≈ 84 ms; with only-latency it would be ~1 ms.
	if took < 50*time.Millisecond {
		t.Fatalf("virtual payload was free: %v", took)
	}
}

func TestReplicatedDeliveryExactlyOnce(t *testing.T) {
	// n=2, r=2: every message from rank 0 must reach rank 1 exactly once
	// even though two replicas of rank 0 execute the same sends.
	w := newWorld(t, 2, 2, Algorithms{})
	counts := make(map[int]int)
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, i, Data{Bytes: []byte{byte(i)}}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 5; i++ {
			d, st, err := c.RecvTimeout(0, i, 5*time.Second)
			if err != nil {
				return fmt.Errorf("replica %d recv %d: %w", c.Replica(), i, err)
			}
			if int(d.Bytes[0]) != i {
				return fmt.Errorf("payload %v for tag %d", d.Bytes, st.Tag)
			}
			if c.Replica() == 0 {
				counts[i]++
			}
		}
		// No sixth message may arrive (duplicates would).
		_, _, err := c.RecvTimeout(0, AnyTag, 2*time.Second)
		if err != ErrTimeout {
			return fmt.Errorf("duplicate delivery detected: %v", err)
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		if counts[i] != 1 {
			t.Fatalf("message %d delivered %d times", i, counts[i])
		}
	}
}

func TestFailoverPromotesBackupAndResends(t *testing.T) {
	// Rank 0 runs two replicas. The leader's host dies mid-stream; the
	// backup must take over and rank 1 must still see every message once.
	w := newWorld(t, 2, 2, Algorithms{})
	leaderHost := w.slots[0].HostID // rank 0 replica 0
	var got []int
	w.run(t, func(c *Comm) error {
		switch {
		case c.Rank() == 0:
			for i := 0; i < 6; i++ {
				if err := c.Send(1, 10+i, Data{Bytes: []byte{byte(i)}}); err != nil {
					return err
				}
				w.s.Sleep(300 * time.Millisecond)
				if i == 2 && c.Replica() == 0 {
					w.net.FailHost(leaderHost)
					return nil // this replica is dead now
				}
			}
			// A replicated process must not tear down right after its
			// last send: like MPI_Finalize, it lingers so a backup can
			// still take over and flush its log.
			w.s.Sleep(10 * time.Second)
			return nil
		case c.Replica() == 0: // rank 1 replica 0 collects
			for i := 0; i < 6; i++ {
				d, _, err := c.RecvTimeout(0, 10+i, 30*time.Second)
				if err != nil {
					return fmt.Errorf("recv %d: %w", i, err)
				}
				got = append(got, int(d.Bytes[0]))
			}
			return nil
		default: // rank 1 replica 1 just drains in the background
			for {
				if _, _, err := c.RecvTimeout(0, AnyTag, 20*time.Second); err != nil {
					return nil
				}
			}
		}
	})
	if len(got) != 6 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequence broken: %v", got)
		}
	}
}
