// Package mpi is the MPJ-like message-passing library of P2P-MPI (§3.1):
// an MPI-style API over the transport abstraction, so the same programs
// run on real TCP sockets and inside the virtual-time Grid'5000 model.
//
// Features exercised by the paper and implemented here:
//
//   - point-to-point Send/Recv with tags and wildcards;
//   - the collectives NAS IS and EP need (Barrier, Bcast, Reduce,
//     Allreduce, Gather, Allgather, Scatter, Alltoall, Alltoallv, Scan)
//     with selectable algorithms (linear / binomial tree / recursive
//     doubling / ring / pairwise) for the ablation benchmarks;
//   - transparent process replication (§3.2 "fault tolerance"): with
//     replication degree r > 1 the group leader transmits, backups log,
//     heartbeat failure detection promotes a backup, and receivers
//     deduplicate by sequence number — user programs are unchanged;
//   - virtual payloads: a message can declare its modelled size without
//     carrying bytes, which the simulator charges for transfer time.
//     This is how Class-B NAS runs execute without gigabytes of RAM.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Wildcards for Recv.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches any user tag.
	AnyTag = -1
)

// MPI errors.
var (
	// ErrClosed is returned on operations after Close.
	ErrClosed = errors.New("mpi: communicator closed")
	// ErrInvalidRank is returned for out-of-range ranks.
	ErrInvalidRank = errors.New("mpi: invalid rank")
	// ErrTimeout is returned by RecvTimeout.
	ErrTimeout = errors.New("mpi: receive timeout")
)

// Data is one message body: real bytes, a modelled size, or both.
type Data struct {
	Bytes   []byte
	Virtual int64
}

// Size returns the modelled on-wire size of the data.
func (d Data) Size() int64 { return int64(len(d.Bytes)) + d.Virtual }

// Slot describes one process of the application: its logical rank, its
// replica index, its job-wide slot number and where it listens.
type Slot struct {
	Rank    int
	Replica int
	Global  int
	HostID  string
	Addr    string
}

// Status describes a received message's envelope.
type Status struct {
	Source int
	Tag    int
}

// Algorithms selects collective implementations; zero values pick the
// defaults noted on each constant set.
type Algorithms struct {
	Bcast     BcastAlg
	Reduce    ReduceAlg
	Allreduce AllreduceAlg
	Allgather AllgatherAlg
	Alltoall  AlltoallAlg
}

// BcastAlg selects the broadcast algorithm.
type BcastAlg int

// Broadcast algorithms (default BcastBinomial).
const (
	BcastBinomial BcastAlg = iota // log(p) rounds down a binomial tree
	BcastLinear                   // root sends p-1 messages
)

// ReduceAlg selects the reduce algorithm.
type ReduceAlg int

// Reduce algorithms (default ReduceBinomial).
const (
	ReduceBinomial ReduceAlg = iota // binomial tree toward the root
	ReduceLinear                    // everyone sends to the root
)

// AllreduceAlg selects the allreduce algorithm.
type AllreduceAlg int

// Allreduce algorithms (default AllreduceRecursiveDoubling).
const (
	AllreduceRecursiveDoubling AllreduceAlg = iota // log(p) exchange rounds
	AllreduceReduceBcast                           // reduce to 0 then bcast
)

// AllgatherAlg selects the allgather algorithm.
type AllgatherAlg int

// Allgather algorithms (default AllgatherRing).
const (
	AllgatherRing   AllgatherAlg = iota // p-1 ring steps
	AllgatherLinear                     // gather to 0 then bcast
)

// AlltoallAlg selects the all-to-all exchange schedule.
type AlltoallAlg int

// Alltoall algorithms (default AlltoallPairwise).
const (
	AlltoallPairwise AlltoallAlg = iota // p-1 balanced exchange rounds
	AlltoallLinear                      // naive: p-1 sends then p-1 recvs
)

// Config describes one process's view of the application.
type Config struct {
	// Self is this process's slot; Slots is the full table (n×r rows).
	Self  Slot
	Slots []Slot
	// N is the logical process count; R the replication degree.
	N, R int
	// Net and RT bind the process to a transport and a clock.
	Net transport.Network
	RT  vtime.Runtime
	// Algorithms tunes collectives (zero = defaults).
	Algorithms Algorithms
	// HeartbeatInterval and FailTimeout drive the replica failure
	// detector (only used when R > 1). Defaults: 200ms / 1s.
	HeartbeatInterval time.Duration
	FailTimeout       time.Duration
	// DialRetries and DialBackoff tune lazy connection setup.
	DialRetries int
	DialBackoff time.Duration
}

// envelope kinds on the wire.
const (
	kindData      = 0
	kindHeartbeat = 1
)

// header layout: kind(1) srcRank(4) srcReplica(4) dstRank(4) seq(8) tag(8).
const headerLen = 29

type envelope struct {
	kind       byte
	srcRank    int
	srcReplica int
	dstRank    int
	seq        uint64
	tag        int
	data       Data
}

func encodeEnvelope(ev envelope) transport.Message {
	buf := make([]byte, headerLen+len(ev.data.Bytes))
	buf[0] = ev.kind
	binary.BigEndian.PutUint32(buf[1:], uint32(int32(ev.srcRank)))
	binary.BigEndian.PutUint32(buf[5:], uint32(int32(ev.srcReplica)))
	binary.BigEndian.PutUint32(buf[9:], uint32(int32(ev.dstRank)))
	binary.BigEndian.PutUint64(buf[13:], ev.seq)
	binary.BigEndian.PutUint64(buf[21:], uint64(int64(ev.tag)))
	copy(buf[headerLen:], ev.data.Bytes)
	return transport.Message{Payload: buf, Virtual: ev.data.Virtual}
}

func decodeEnvelope(m transport.Message) (envelope, error) {
	if len(m.Payload) < headerLen {
		return envelope{}, fmt.Errorf("mpi: short frame (%d bytes)", len(m.Payload))
	}
	ev := envelope{
		kind:       m.Payload[0],
		srcRank:    int(int32(binary.BigEndian.Uint32(m.Payload[1:]))),
		srcReplica: int(int32(binary.BigEndian.Uint32(m.Payload[5:]))),
		dstRank:    int(int32(binary.BigEndian.Uint32(m.Payload[9:]))),
		seq:        binary.BigEndian.Uint64(m.Payload[13:]),
		tag:        int(int64(binary.BigEndian.Uint64(m.Payload[21:]))),
	}
	if len(m.Payload) > headerLen {
		ev.data.Bytes = m.Payload[headerLen:]
	}
	ev.data.Virtual = m.Virtual
	return ev, nil
}
