package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is a predefined reduction operator for the typed helpers.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// EncodeF64s encodes a float64 slice little-endian.
func EncodeF64s(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeF64s decodes a little-endian float64 slice.
func DecodeF64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: f64 payload of %d bytes", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// EncodeI64s encodes an int64 slice little-endian.
func EncodeI64s(vs []int64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// DecodeI64s decodes a little-endian int64 slice.
func DecodeI64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: i64 payload of %d bytes", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// EncodeI32s encodes an int32 slice little-endian (the NAS IS key type).
func EncodeI32s(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// DecodeI32s decodes a little-endian int32 slice.
func DecodeI32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mpi: i32 payload of %d bytes", len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

func applyF64(op Op, a, b float64) float64 {
	switch op {
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	case OpProd:
		return a * b
	default:
		return a + b
	}
}

func applyI64(op Op, a, b int64) int64 {
	switch op {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	default:
		return a + b
	}
}

// F64Combiner returns a Combiner reducing float64 vectors element-wise.
func F64Combiner(op Op) Combiner {
	return func(a, b Data) Data {
		av, err := DecodeF64s(a.Bytes)
		if err != nil {
			panic(err)
		}
		bv, err := DecodeF64s(b.Bytes)
		if err != nil {
			panic(err)
		}
		if len(av) != len(bv) {
			panic(fmt.Sprintf("mpi: combine length mismatch %d vs %d", len(av), len(bv)))
		}
		out := make([]float64, len(av))
		for i := range av {
			out[i] = applyF64(op, av[i], bv[i])
		}
		return Data{Bytes: EncodeF64s(out)}
	}
}

// I64Combiner returns a Combiner reducing int64 vectors element-wise.
func I64Combiner(op Op) Combiner {
	return func(a, b Data) Data {
		av, err := DecodeI64s(a.Bytes)
		if err != nil {
			panic(err)
		}
		bv, err := DecodeI64s(b.Bytes)
		if err != nil {
			panic(err)
		}
		if len(av) != len(bv) {
			panic(fmt.Sprintf("mpi: combine length mismatch %d vs %d", len(av), len(bv)))
		}
		out := make([]int64, len(av))
		for i := range av {
			out[i] = applyI64(op, av[i], bv[i])
		}
		return Data{Bytes: EncodeI64s(out)}
	}
}

// VirtualCombiner models a reduction of fixed-size vectors: the result
// has the same modelled size as the larger operand. Used by the
// virtual-time NAS pattern runs.
func VirtualCombiner(a, b Data) Data {
	v := a.Virtual
	if b.Virtual > v {
		v = b.Virtual
	}
	return Data{Virtual: v}
}

// AllreduceF64 reduces float64 vectors across all ranks.
func (c *Comm) AllreduceF64(vals []float64, op Op) ([]float64, error) {
	res, err := c.Allreduce(Data{Bytes: EncodeF64s(vals)}, F64Combiner(op))
	if err != nil {
		return nil, err
	}
	return DecodeF64s(res.Bytes)
}

// AllreduceI64 reduces int64 vectors across all ranks.
func (c *Comm) AllreduceI64(vals []int64, op Op) ([]int64, error) {
	res, err := c.Allreduce(Data{Bytes: EncodeI64s(vals)}, I64Combiner(op))
	if err != nil {
		return nil, err
	}
	return DecodeI64s(res.Bytes)
}

// ReduceF64 reduces float64 vectors at root; non-roots return nil.
func (c *Comm) ReduceF64(root int, vals []float64, op Op) ([]float64, error) {
	res, err := c.Reduce(root, Data{Bytes: EncodeF64s(vals)}, F64Combiner(op))
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return DecodeF64s(res.Bytes)
}

// BcastI64 broadcasts an int64 vector from root.
func (c *Comm) BcastI64(root int, vals []int64) ([]int64, error) {
	var d Data
	if c.rank == root {
		d = Data{Bytes: EncodeI64s(vals)}
	}
	res, err := c.Bcast(root, d)
	if err != nil {
		return nil, err
	}
	return DecodeI64s(res.Bytes)
}
