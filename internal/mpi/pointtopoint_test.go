package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestSendrecvRingShift(t *testing.T) {
	const n = 6
	w := newWorld(t, n, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		got, st, err := c.Sendrecv(right, 3, Data{Bytes: []byte{byte(c.Rank())}}, left, 3)
		if err != nil {
			return err
		}
		if int(got.Bytes[0]) != left || st.Source != left {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), got.Bytes, st.Source)
		}
		return nil
	})
}

func TestSendrecvSelf(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		got, _, err := c.Sendrecv(c.Rank(), 9, Data{Bytes: []byte("me")}, c.Rank(), 9)
		if err != nil {
			return err
		}
		if string(got.Bytes) != "me" {
			return fmt.Errorf("self exchange got %q", got.Bytes)
		}
		return nil
	})
}

func TestProbeDoesNotConsume(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, Data{Bytes: []byte("probe-me")})
		}
		st, err := c.Probe(0, 5)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 5 {
			return fmt.Errorf("probe status %+v", st)
		}
		// Probing again still sees it; receiving gets the payload.
		if st2, err := c.Probe(AnySource, AnyTag); err != nil || st2.Tag != 5 {
			return fmt.Errorf("second probe %+v %v", st2, err)
		}
		d, _, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(d.Bytes) != "probe-me" {
			return fmt.Errorf("recv after probe got %q", d.Bytes)
		}
		return nil
	})
}

func TestProbeTimeout(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 1 {
			if _, err := c.ProbeTimeout(0, 5, 50*time.Millisecond); err != ErrTimeout {
				return fmt.Errorf("err = %v", err)
			}
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, Data{Bytes: []byte("x")})
		}
		if _, ok := c.Iprobe(0, 4); ok {
			// Unlikely this early, but acceptable: message already in.
			return nil
		}
		// Wait for delivery, then Iprobe must see it.
		w.s.Sleep(time.Second)
		st, ok := c.Iprobe(0, 4)
		if !ok || st.Tag != 4 {
			return fmt.Errorf("iprobe missed delivered message: %+v %v", st, ok)
		}
		if _, ok := c.Iprobe(0, 99); ok {
			return fmt.Errorf("iprobe matched a non-existent tag")
		}
		d, _, err := c.Recv(0, 4)
		if err != nil || string(d.Bytes) != "x" {
			return fmt.Errorf("recv after iprobe: %q %v", d.Bytes, err)
		}
		return nil
	})
}

func TestProbeThenOutOfOrderRecv(t *testing.T) {
	// Probe buffers everything it scans; tag matching must survive.
	w := newWorld(t, 2, 1, Algorithms{})
	w.run(t, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, Data{Bytes: []byte("a")}); err != nil {
				return err
			}
			return c.Send(1, 2, Data{Bytes: []byte("b")})
		}
		if _, err := c.Probe(0, 2); err != nil {
			return err
		}
		d1, _, err := c.Recv(0, 1)
		if err != nil || string(d1.Bytes) != "a" {
			return fmt.Errorf("tag1: %q %v", d1.Bytes, err)
		}
		d2, _, err := c.Recv(0, 2)
		if err != nil || string(d2.Bytes) != "b" {
			return fmt.Errorf("tag2: %q %v", d2.Bytes, err)
		}
		return nil
	})
}
