package mpi

import (
	"fmt"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// RunLocal executes fn as n unreplicated MPI processes against the given
// network, all listening on host at consecutive ports from basePort. It
// is the quickest way to run an MPI program without the middleware: over
// vtime.Real and transport.TCP it runs n goroutines on localhost; over a
// scheduler and simnet it runs in virtual time.
//
// Under a virtual-time runtime RunLocal must be called from an actor (it
// blocks on a runtime mailbox). It returns one error slot per rank.
func RunLocal(rt vtime.Runtime, net transport.Network, host string, basePort, n int,
	algs Algorithms, fn func(c *Comm) error) []error {

	slots := make([]Slot, n)
	for i := 0; i < n; i++ {
		slots[i] = Slot{
			Rank: i, Replica: 0, Global: i,
			HostID: host,
			Addr:   fmt.Sprintf("%s:%d", host, basePort+i),
		}
	}
	type done struct {
		rank int
		err  error
	}
	mb := rt.NewMailbox()
	for i := 0; i < n; i++ {
		slot := slots[i]
		rt.Go(fmt.Sprintf("mpi.local.r%d", slot.Rank), func() {
			c, err := Join(Config{
				Self: slot, Slots: slots, N: n, R: 1,
				Net: net, RT: rt, Algorithms: algs,
			})
			if err != nil {
				mb.Push(done{rank: slot.Rank, err: err})
				return
			}
			defer c.Close()
			defer func() {
				if r := recover(); r != nil {
					mb.Push(done{rank: slot.Rank, err: fmt.Errorf("panic: %v", r)})
				}
			}()
			mb.Push(done{rank: slot.Rank, err: fn(c)})
		})
	}
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		v, ok := mb.Pop()
		if !ok {
			break
		}
		d := v.(done)
		errs[d.rank] = d.err
	}
	return errs
}
