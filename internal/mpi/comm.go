package mpi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p2pmpi/internal/replica"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Comm is one process's communicator over the whole application world.
// A Comm belongs to a single logical thread of execution (the MPI
// process): Send/Recv/collectives must not be called concurrently from
// several goroutines, matching MPI's single-threaded funneled model.
type Comm struct {
	cfg  Config
	rank int
	size int

	ln     transport.Listener
	inbox  vtime.Mailbox // envelopes from the receive pumps
	pend   []envelope    // out-of-match-order buffer (unexpected queue)
	closed bool

	mu       sync.Mutex // guards conns, seqs, log, group, dedup, closed
	conns    map[string]transport.Conn
	sendSeq  map[int]uint64 // next seq per destination rank
	lastSeen map[int]uint64 // dedup: last delivered seq per source rank
	group    *replica.Group // this rank's replica group (r > 1)
	sendLog  []loggedSend   // backup copy for failover resend
	byRank   map[int][]Slot // rank -> its replica slots
	colSeq   uint64         // collective operation counter
	hbStop   bool           // stops heartbeat/monitor loops
}

type loggedSend struct {
	dstRank int
	seq     uint64
	tag     int
	data    Data
}

// Join brings the process into the application: it binds the listener,
// starts the receive pumps and (for r > 1) the replica heartbeat. All
// processes of the job must eventually call Join for communication to
// proceed; there is no global synchronization in Join itself.
func Join(cfg Config) (*Comm, error) {
	if cfg.N <= 0 || cfg.R <= 0 {
		return nil, fmt.Errorf("mpi: bad world size n=%d r=%d", cfg.N, cfg.R)
	}
	if len(cfg.Slots) != cfg.N*cfg.R {
		return nil, fmt.Errorf("mpi: table has %d slots, want %d", len(cfg.Slots), cfg.N*cfg.R)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 200 * time.Millisecond
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = time.Second
	}
	if cfg.DialRetries <= 0 {
		cfg.DialRetries = 10
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 20 * time.Millisecond
	}

	c := &Comm{
		cfg:      cfg,
		rank:     cfg.Self.Rank,
		size:     cfg.N,
		inbox:    cfg.RT.NewMailbox(),
		conns:    make(map[string]transport.Conn),
		sendSeq:  make(map[int]uint64),
		lastSeen: make(map[int]uint64),
		byRank:   make(map[int][]Slot),
		group:    replica.NewGroup(cfg.R, cfg.Self.Replica, cfg.FailTimeout, cfg.RT.Now()),
	}
	for _, s := range cfg.Slots {
		c.byRank[s.Rank] = append(c.byRank[s.Rank], s)
	}
	for r := range c.byRank {
		slots := c.byRank[r]
		sort.Slice(slots, func(i, j int) bool { return slots[i].Replica < slots[j].Replica })
	}

	ln, err := cfg.Net.Listen(cfg.Self.Addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s: %w", cfg.Self.Addr, err)
	}
	c.ln = ln
	cfg.RT.Go(fmt.Sprintf("mpi.accept.r%d", c.rank), c.acceptLoop)
	if cfg.R > 1 {
		cfg.RT.Go(fmt.Sprintf("mpi.hb.r%d", c.rank), c.heartbeatLoop)
		cfg.RT.Go(fmt.Sprintf("mpi.fd.r%d", c.rank), c.monitorLoop)
	}
	return c, nil
}

// Rank returns this process's logical MPI rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of logical processes n.
func (c *Comm) Size() int { return c.size }

// Replica returns this process's replica index within its rank group.
func (c *Comm) Replica() int { return c.cfg.Self.Replica }

// IsLeader reports whether this replica currently transmits for its rank.
func (c *Comm) IsLeader() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.group.IsLeader()
}

// Close tears the communicator down: listener, connections and loops.
func (c *Comm) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.hbStop = true
	conns := make([]transport.Conn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = make(map[string]transport.Conn)
	c.mu.Unlock()

	c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.inbox.Close()
	return nil
}

func (c *Comm) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.cfg.RT.Go(fmt.Sprintf("mpi.pump.r%d", c.rank), func() { c.pump(conn) })
	}
}

// pump moves envelopes from one inbound connection to the inbox.
func (c *Comm) pump(conn transport.Conn) {
	defer conn.Close()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		ev, err := decodeEnvelope(m)
		if err != nil {
			continue // corrupt frame: drop
		}
		if ev.kind == kindHeartbeat {
			c.mu.Lock()
			if ev.srcRank == c.rank {
				c.group.HeartbeatFrom(ev.srcReplica, c.cfg.RT.Now())
			}
			c.mu.Unlock()
			continue
		}
		c.inbox.Push(ev)
	}
}

// connTo returns (dialing lazily) the connection to a slot address.
func (c *Comm) connTo(addr string) (transport.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	var conn transport.Conn
	var err error
	backoff := c.cfg.DialBackoff
	for try := 0; try < c.cfg.DialRetries; try++ {
		conn, err = c.cfg.Net.Dial(addr)
		if err == nil {
			break
		}
		c.cfg.RT.Sleep(backoff)
		backoff *= 2
	}
	if err != nil {
		return nil, fmt.Errorf("mpi: dial %s: %w", addr, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if prev, ok := c.conns[addr]; ok { // lost a benign race with ourselves
		c.mu.Unlock()
		conn.Close()
		return prev, nil
	}
	c.conns[addr] = conn
	c.mu.Unlock()
	return conn, nil
}

// Send transmits data to the given logical rank with a user tag (>= 0).
// Under replication only the group leader actually transmits; backups
// log the message for failover resend. Every replica of the destination
// rank receives its own copy.
func (c *Comm) Send(dst, tag int, d Data) error {
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("%w: send to %d of %d", ErrInvalidRank, dst, c.size)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be >= 0 (got %d)", tag)
	}
	return c.send(dst, tag, d)
}

// send is the tag-unchecked internal path shared with collectives.
func (c *Comm) send(dst, tag int, d Data) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	seq := c.sendSeq[dst] + 1
	c.sendSeq[dst] = seq
	leader := c.group.IsLeader()
	if !leader {
		c.sendLog = append(c.sendLog, loggedSend{dstRank: dst, seq: seq, tag: tag, data: d})
	}
	c.mu.Unlock()

	if !leader {
		return nil // a backup computes but does not transmit
	}
	return c.transmit(dst, seq, tag, d)
}

// transmit delivers one envelope to every replica of dst.
func (c *Comm) transmit(dst int, seq uint64, tag int, d Data) error {
	ev := envelope{
		kind:       kindData,
		srcRank:    c.rank,
		srcReplica: c.cfg.Self.Replica,
		dstRank:    dst,
		seq:        seq,
		tag:        tag,
		data:       d,
	}
	c.mu.Lock()
	targets := append([]Slot(nil), c.byRank[dst]...)
	c.mu.Unlock()

	var firstErr error
	for _, t := range targets {
		if t.Global == c.cfg.Self.Global {
			// Self delivery: bypass the network.
			cp := ev
			if len(d.Bytes) > 0 {
				cp.data.Bytes = append([]byte(nil), d.Bytes...)
			}
			c.inbox.Push(cp)
			continue
		}
		conn, err := c.connTo(t.Addr)
		if err != nil {
			// The replica may be dead; its MPD reports that separately.
			if firstErr == nil && len(targets) == 1 {
				firstErr = err
			}
			continue
		}
		if err := conn.Send(encodeEnvelope(ev)); err != nil && firstErr == nil && len(targets) == 1 {
			firstErr = err
		}
	}
	return firstErr
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource and AnyTag match anything. It returns the data and envelope
// status.
func (c *Comm) Recv(src, tag int) (Data, Status, error) {
	return c.RecvTimeout(src, tag, -1)
}

// RecvTimeout is Recv bounded by d (< 0 blocks forever).
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Data, Status, error) {
	var deadline time.Time
	hasDeadline := d >= 0
	if hasDeadline {
		deadline = c.cfg.RT.Now().Add(d)
	}
	// First scan the unexpected-message buffer.
	for i, ev := range c.pend {
		if matches(ev, src, tag) {
			c.pend = append(c.pend[:i], c.pend[i+1:]...)
			return ev.data, Status{Source: ev.srcRank, Tag: ev.tag}, nil
		}
	}
	for {
		wait := time.Duration(-1)
		if hasDeadline {
			wait = deadline.Sub(c.cfg.RT.Now())
			if wait < 0 {
				return Data{}, Status{}, ErrTimeout
			}
		}
		v, err := c.inbox.PopTimeout(wait)
		if err == vtime.ErrTimeout {
			return Data{}, Status{}, ErrTimeout
		}
		if err != nil {
			return Data{}, Status{}, ErrClosed
		}
		ev := v.(envelope)
		if !c.accept(&ev) {
			continue // duplicate after failover
		}
		if matches(ev, src, tag) {
			return ev.data, Status{Source: ev.srcRank, Tag: ev.tag}, nil
		}
		c.pend = append(c.pend, ev)
	}
}

// accept performs replication dedup: drop any envelope whose sequence
// number does not advance its source stream.
func (c *Comm) accept(ev *envelope) bool {
	if c.cfg.R == 1 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.seq <= c.lastSeen[ev.srcRank] {
		return false
	}
	c.lastSeen[ev.srcRank] = ev.seq
	return true
}

func matches(ev envelope, src, tag int) bool {
	if src != AnySource && ev.srcRank != src {
		return false
	}
	switch {
	case tag == AnyTag:
		// The wildcard matches user messages only, never the internal
		// (negative) collective tags.
		return ev.tag >= 0
	default:
		return ev.tag == tag
	}
}

// heartbeatLoop broadcasts liveness to the rank group's other replicas.
func (c *Comm) heartbeatLoop() {
	for {
		c.cfg.RT.Sleep(c.cfg.HeartbeatInterval)
		c.mu.Lock()
		if c.hbStop {
			c.mu.Unlock()
			return
		}
		peers := append([]Slot(nil), c.byRank[c.rank]...)
		c.mu.Unlock()
		ev := envelope{
			kind:       kindHeartbeat,
			srcRank:    c.rank,
			srcReplica: c.cfg.Self.Replica,
			dstRank:    c.rank,
		}
		for _, p := range peers {
			if p.Global == c.cfg.Self.Global {
				continue
			}
			if conn, err := c.connTo(p.Addr); err == nil {
				conn.Send(encodeEnvelope(ev))
			}
		}
	}
}

// monitorLoop runs the failure detector; on promotion to leadership it
// resends the backup log so no message is lost.
func (c *Comm) monitorLoop() {
	for {
		c.cfg.RT.Sleep(c.cfg.FailTimeout / 2)
		c.mu.Lock()
		if c.hbStop {
			c.mu.Unlock()
			return
		}
		wasLeader := c.group.IsLeader()
		c.group.Suspect(c.cfg.RT.Now())
		promoted := !wasLeader && c.group.IsLeader()
		var log []loggedSend
		if promoted {
			log = append(log, c.sendLog...)
			c.sendLog = nil
		}
		c.mu.Unlock()
		if promoted {
			for _, ls := range log {
				c.transmit(ls.dstRank, ls.seq, ls.tag, ls.data)
			}
		}
	}
}
