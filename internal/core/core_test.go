package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// mkSlist builds a uniform slist of k hosts with capacity p each.
func mkSlist(k, p int) []HostSlot {
	out := make([]HostSlot, k)
	for i := range out {
		out[i] = HostSlot{
			ID:      fmt.Sprintf("h%03d", i),
			Site:    fmt.Sprintf("site%d", i/10),
			P:       p,
			Latency: time.Duration(i) * time.Millisecond,
			Cores:   p,
		}
	}
	return out
}

func TestCapacityRule(t *testing.T) {
	cases := []struct{ p, n, want int }{
		{4, 100, 4},  // owner limit binds
		{100, 4, 4},  // ci must not exceed n
		{0, 10, 0},   // host accepts nothing
		{-3, 10, 0},  // negative owner limit sanitized
		{10, 10, 10}, // equal
	}
	for _, c := range cases {
		if got := Capacity(c.p, c.n); got != c.want {
			t.Errorf("Capacity(%d,%d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestFeasibleConditions(t *testing.T) {
	// (a) |slist| >= r
	err := Feasible(mkSlist(1, 4), 3, 2)
	if !errors.Is(err, ErrTooFewHosts) {
		t.Fatalf("err = %v, want ErrTooFewHosts", err)
	}
	// (b) sum ci >= n*r
	err = Feasible(mkSlist(2, 1), 3, 1)
	if !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("err = %v, want ErrInsufficientCapacity", err)
	}
	// Paper example: n=3 r=2 on two hosts works when P >= 3.
	if err := Feasible(mkSlist(2, 3), 3, 2); err != nil {
		t.Fatalf("paper example infeasible: %v", err)
	}
	if err := Feasible(mkSlist(2, 3), 0, 1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("n=0 accepted: %v", err)
	}
	if err := Feasible(mkSlist(2, 3), 1, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("r=0 accepted: %v", err)
	}
}

func TestFeasibleUsesCappedCapacity(t *testing.T) {
	// One host with P=100 cannot host n=5, r=2 alone: c = min(100,5) = 5 < 10.
	err := Feasible(mkSlist(1, 100), 5, 2)
	if !errors.Is(err, ErrTooFewHosts) {
		// r=2 needs 2 hosts first
		t.Fatalf("err = %v", err)
	}
	err = Feasible(mkSlist(2, 100), 5, 3)
	if !errors.Is(err, ErrTooFewHosts) {
		t.Fatalf("err = %v", err)
	}
	// 2 hosts, P=100, n=5, r=2: capacity = 2*min(100,5) = 10 = n*r. Feasible.
	if err := Feasible(mkSlist(2, 100), 5, 2); err != nil {
		t.Fatalf("should be exactly feasible: %v", err)
	}
}

func TestSpreadRoundRobin(t *testing.T) {
	// 10 hosts, capacity 4, 13 processes: first 3 hosts get 2, rest get 1.
	a, err := Allocate(mkSlist(10, 4), 13, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 2, 1, 1, 1, 1, 1, 1, 1}
	for i, w := range want {
		if a.U[i] != w {
			t.Fatalf("U = %v, want %v", a.U, want)
		}
	}
}

func TestSpreadOneProcPerHostWhenEnoughHosts(t *testing.T) {
	a, err := Allocate(mkSlist(100, 4), 60, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range a.U {
		if i < 60 && u != 1 {
			t.Fatalf("host %d got %d processes, want 1", i, u)
		}
		if i >= 60 && u != 0 {
			t.Fatalf("host %d got %d processes, want 0", i, u)
		}
	}
}

func TestSpreadRespectsCapacityHoles(t *testing.T) {
	slist := mkSlist(5, 2)
	slist[1].P = 0 // dead-end host
	a, err := Allocate(slist, 8, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	if a.U[1] != 0 {
		t.Fatalf("zero-capacity host received %d", a.U[1])
	}
	if a.TotalProcs() != 8 {
		t.Fatalf("total = %d", a.TotalProcs())
	}
}

func TestConcentrateFillsInOrder(t *testing.T) {
	// 10 hosts, capacity 4, 13 processes: 4+4+4+1.
	a, err := Allocate(mkSlist(10, 4), 13, 1, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 4, 1, 0, 0, 0, 0, 0, 0}
	for i, w := range want {
		if a.U[i] != w {
			t.Fatalf("U = %v, want %v", a.U, want)
		}
	}
}

func TestConcentratePrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(30)
		slist := mkSlist(k, 0)
		total := 0
		n := 1 + rng.Intn(20)
		for i := range slist {
			slist[i].P = rng.Intn(6)
			total += Capacity(slist[i].P, n)
		}
		if total == 0 {
			continue
		}
		procs := 1 + rng.Intn(total)
		if n > procs {
			n = procs
		}
		a, err := Allocate(slist, procs, 1, Concentrate)
		if errors.Is(err, ErrInsufficientCapacity) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// After the first host that is not filled to capacity, all u must be 0.
		brokeOff := false
		for i, u := range a.U {
			if brokeOff && u != 0 {
				t.Fatalf("trial %d: not a prefix allocation: U=%v caps(P)=%v", trial, a.U, slist)
			}
			if u < Capacity(slist[i].P, a.N) {
				brokeOff = true
			}
		}
	}
}

func TestSpreadBalanceProperty(t *testing.T) {
	// For any i, j: u_i can exceed u_j by more than 1 only if host j is
	// saturated (u_j == c_j).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(30)
		n := 1 + rng.Intn(40)
		slist := mkSlist(k, 0)
		total := 0
		for i := range slist {
			slist[i].P = rng.Intn(6)
			total += Capacity(slist[i].P, n)
		}
		if total < n {
			continue
		}
		a, err := Allocate(slist, n, 1, Spread)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.U {
			for j := range a.U {
				cj := Capacity(slist[j].P, n)
				if a.U[i] > a.U[j]+1 && a.U[j] < cj {
					t.Fatalf("trial %d: unbalanced spread: U=%v", trial, a.U)
				}
			}
		}
	}
}

func TestRankAssignmentPaperExample(t *testing.T) {
	// p2pmpirun -n 3 -r 2 on two hosts: P0,P1,P2 on H0 and replicas on H1.
	a, err := Allocate(mkSlist(2, 3), 3, 2, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if a.U[0] != 3 || a.U[1] != 3 {
		t.Fatalf("U = %v", a.U)
	}
	for h := 0; h < 2; h++ {
		for l, pl := range a.Procs[h] {
			if pl.Rank != l {
				t.Fatalf("host %d slot %d has rank %d", h, l, pl.Rank)
			}
		}
	}
	// Replica numbering: copies on H0 are replica 0, on H1 replica 1.
	for _, pl := range a.Procs[0] {
		if pl.Replica != 0 {
			t.Fatalf("H0 placement %+v", pl)
		}
	}
	for _, pl := range a.Procs[1] {
		if pl.Replica != 1 {
			t.Fatalf("H1 placement %+v", pl)
		}
	}
}

// checkInvariants verifies every structural invariant of an assignment.
func checkInvariants(t *testing.T, a *Assignment, slist []HostSlot, n, r int) {
	t.Helper()
	if a.TotalProcs() != n*r {
		t.Fatalf("total procs = %d, want %d", a.TotalProcs(), n*r)
	}
	copies := make(map[int]int)
	for i, procs := range a.Procs {
		if len(procs) != a.U[i] {
			t.Fatalf("host %d: |procs|=%d != U=%d", i, len(procs), a.U[i])
		}
		ci := Capacity(slist[i].P, n)
		if a.U[i] > ci {
			t.Fatalf("host %d overloaded: %d > c=%d", i, a.U[i], ci)
		}
		seen := make(map[int]bool)
		for _, pl := range procs {
			if pl.Rank < 0 || pl.Rank >= n {
				t.Fatalf("rank %d out of range", pl.Rank)
			}
			if seen[pl.Rank] {
				t.Fatalf("host %d hosts two replicas of rank %d (criterion (b) violated)", i, pl.Rank)
			}
			seen[pl.Rank] = true
			copies[pl.Rank]++
		}
	}
	for rank := 0; rank < n; rank++ {
		if copies[rank] != r {
			t.Fatalf("rank %d has %d copies, want %d", rank, copies[rank], r)
		}
	}
	// Replica indices of each rank must be 0..r-1, each exactly once.
	replicaSeen := make(map[[2]int]bool)
	for _, procs := range a.Procs {
		for _, pl := range procs {
			key := [2]int{pl.Rank, pl.Replica}
			if pl.Replica < 0 || pl.Replica >= r || replicaSeen[key] {
				t.Fatalf("bad replica numbering %+v", pl)
			}
			replicaSeen[key] = true
		}
	}
}

func TestInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	strategies := []Strategy{Spread, Concentrate, Mixed}
	trials := 0
	for trials < 500 {
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(50)
		r := 1 + rng.Intn(3)
		slist := mkSlist(k, 0)
		for i := range slist {
			slist[i].P = rng.Intn(8)
		}
		st := strategies[rng.Intn(len(strategies))]
		a, err := Allocate(slist, n, r, st)
		if err != nil {
			continue // infeasible draw
		}
		trials++
		checkInvariants(t, a, slist, n, r)
	}
}

func TestReplicasNeverColocateEvenWithHugeP(t *testing.T) {
	// Hosts advertising P >> n must still be capped at n processes.
	for _, st := range []Strategy{Spread, Concentrate, Mixed} {
		a, err := Allocate(mkSlist(3, 1000), 4, 3, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		checkInvariants(t, a, a.Hosts, 4, 3)
	}
}

func TestMixedRoundRobinsAcrossSites(t *testing.T) {
	// 3 sites x 4 hosts x capacity 4; 24 processes should use 2 hosts per
	// site (concentrated within hosts) rather than 6 hosts of one site.
	slist := make([]HostSlot, 12)
	for i := range slist {
		slist[i] = HostSlot{
			ID:   fmt.Sprintf("h%d", i),
			Site: fmt.Sprintf("s%d", i%3), // interleaved latency order
			P:    4,
		}
	}
	a, err := Allocate(slist, 24, 1, Mixed)
	if err != nil {
		t.Fatal(err)
	}
	perSite := a.ProcsBySite()
	for s, c := range perSite {
		if c != 8 {
			t.Fatalf("site %s got %d procs, want 8 (%v)", s, c, perSite)
		}
	}
	for i, u := range a.U {
		if u != 0 && u != 4 {
			t.Fatalf("mixed should fill hosts completely: U[%d]=%d", i, u)
		}
	}
}

func TestAllocateZeroCapacityHostCancelled(t *testing.T) {
	slist := mkSlist(4, 2)
	slist[0].P = 0 // e.g. the submitter frontend
	a, err := Allocate(slist, 6, 1, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	if a.U[0] != 0 || len(a.Procs[0]) != 0 {
		t.Fatalf("frontend received processes: %v", a.U)
	}
	if a.UsedHosts() != 3 {
		t.Fatalf("used hosts = %d", a.UsedHosts())
	}
}

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, st := range []Strategy{Spread, Concentrate, Mixed, Random, MinSites, CommAware} {
		got, err := ParseStrategy(st.String())
		if err != nil || got != st {
			t.Fatalf("round trip %v: got %v err %v", st, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, err := Allocate(mkSlist(4, 2), 2, 1, Strategy("bogus")); err == nil {
		t.Fatal("Allocate accepted an unregistered strategy")
	}
	// The zero value keeps the historical default: spread.
	if st, err := ParseStrategy(""); err != nil || st != Spread {
		t.Fatalf("empty name: got %v err %v", st, err)
	}
}

func TestSiteCounters(t *testing.T) {
	slist := []HostSlot{
		{ID: "a", Site: "x", P: 2},
		{ID: "b", Site: "x", P: 2},
		{ID: "c", Site: "y", P: 2},
	}
	a, err := Allocate(slist, 5, 1, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	hosts := a.HostsBySite()
	procs := a.ProcsBySite()
	if hosts["x"] != 2 || hosts["y"] != 1 {
		t.Fatalf("hosts by site = %v", hosts)
	}
	if procs["x"] != 4 || procs["y"] != 1 {
		t.Fatalf("procs by site = %v", procs)
	}
}

func TestAllocateDoesNotMutateInput(t *testing.T) {
	slist := mkSlist(5, 2)
	orig := append([]HostSlot(nil), slist...)
	if _, err := Allocate(slist, 4, 2, Spread); err != nil {
		t.Fatal(err)
	}
	for i := range slist {
		if slist[i] != orig[i] {
			t.Fatal("Allocate mutated its input slist")
		}
	}
}

func BenchmarkAllocateSpread600(b *testing.B) {
	slist := mkSlist(350, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Allocate(slist, 600, 1, Spread); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateConcentrate600(b *testing.B) {
	slist := mkSlist(350, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Allocate(slist, 600, 1, Concentrate); err != nil {
			b.Fatal(err)
		}
	}
}
