package core

import (
	"errors"
	"fmt"
	"time"
)

// Strategy names a process-placement policy. It is the registry key:
// JobSpecs, experiment points and CSV rows all carry the strategy by
// name, so new policies travel through the middleware without any enum
// plumbing. The zero value selects Spread (the historical default).
type Strategy string

// The built-in allocation strategies (registered in strategies.go).
const (
	// Spread maps one process per host in latency order, wrapping around
	// while capacity remains (paper §4.3, first algorithm).
	Spread Strategy = "spread"
	// Concentrate fills each host up to its capacity in latency order
	// (paper §4.3, second algorithm).
	Concentrate Strategy = "concentrate"
	// Mixed is the extension strategy: round-robin across sites,
	// concentrate within a host.
	Mixed Strategy = "mixed"
	// Random permutes the slist with a seeded generator and spreads over
	// the permuted order — the baseline that ignores latency entirely.
	Random Strategy = "random"
	// MinSites packs the job into the fewest sites that can hold it,
	// concentrating within each chosen site.
	MinSites Strategy = "minsites"
	// CommAware greedily grows a cluster of hosts with minimal estimated
	// pairwise RTT to the already-chosen set.
	CommAware Strategy = "comm-aware"
)

// String returns the command-line name of the strategy.
func (s Strategy) String() string {
	if s == "" {
		return string(Spread)
	}
	return string(s)
}

// ParseStrategy converts a -a command-line value to a Strategy. It
// accepts exactly the names registered in the placement registry, so
// ParseStrategy, Lookup and Names always agree.
func ParseStrategy(name string) (Strategy, error) {
	if _, err := Lookup(name); err != nil {
		return "", err
	}
	if name == "" {
		return Spread, nil
	}
	return Strategy(name), nil
}

// HostSlot is one reserved host, in the latency order of slist.
type HostSlot struct {
	// ID is the host identity (its peer ID).
	ID string
	// Site is the host's site, used only by the Mixed strategy and for
	// reporting; the paper's strategies never look at it.
	Site string
	// P is the owner's limit on processes per MPI application.
	P int
	// Latency is the measured latency from the submitter (diagnostic).
	Latency time.Duration
	// Cores is the host's core count (diagnostic; P usually equals it).
	Cores int
}

// Allocation errors returned by Feasible and Allocate.
var (
	// ErrTooFewHosts: |slist| < r, replicas could not avoid sharing hosts
	// (feasibility condition (a), §4.2 step 6).
	ErrTooFewHosts = errors.New("core: fewer selected hosts than the replication degree")
	// ErrInsufficientCapacity: Σ c_i < n×r (feasibility condition (b)).
	ErrInsufficientCapacity = errors.New("core: selected hosts cannot accommodate all processes")
	// ErrBadRequest: n < 1 or r < 1.
	ErrBadRequest = errors.New("core: invalid request")
)

// Capacity returns c_i = min(P, n): a host must never receive more than n
// processes even if its owner allows more, since the (n+1)-th process of
// an application on one host would necessarily duplicate a rank.
func Capacity(p, n int) int {
	if p < 0 {
		p = 0
	}
	if p < n {
		return p
	}
	return n
}

// Feasible checks the two feasibility conditions of §4.2 step 6:
// (a) |slist| ≥ r and (b) Σ c_i ≥ n×r.
func Feasible(slist []HostSlot, n, r int) error {
	if n < 1 || r < 1 {
		return ErrBadRequest
	}
	if len(slist) < r {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewHosts, len(slist), r)
	}
	total := 0
	for _, h := range slist {
		total += Capacity(h.P, n)
	}
	if total < n*r {
		return fmt.Errorf("%w: capacity %d < %d processes", ErrInsufficientCapacity, total, n*r)
	}
	return nil
}

// Proc is one mapped process: MPI rank plus replica number.
type Proc struct {
	Rank    int
	Replica int
}

// Assignment is the result of an allocation: how many processes each host
// of slist received and which (rank, replica) pairs they are.
type Assignment struct {
	// Hosts is the slist the allocation was computed over.
	Hosts []HostSlot
	// U[i] is the number of processes mapped to Hosts[i]; hosts with
	// U[i] == 0 have their reservation cancelled (paper §4.3).
	U []int
	// Procs[i] lists the placements on Hosts[i], in rank-assignment
	// order.
	Procs [][]Proc
	// N and R echo the request.
	N, R int
	// Strategy echoes the policy used.
	Strategy Strategy
}

// Allocate distributes n×r processes over slist with the named strategy
// and numbers their ranks: the compatibility entry point over the
// placement registry. The slist order is significant: it must be the
// ascending-latency order produced by the reservation step.
//
// Beyond dispatching, Allocate is the safety chokepoint the middleware
// submits through: it re-checks feasibility and validates the returned
// assignment, so a registered third-party policy that forgets Feasible
// or overfills a host cannot smuggle a replica-unsafe placement into a
// launch.
func Allocate(slist []HostSlot, n, r int, strategy Strategy) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	p, err := Lookup(string(strategy))
	if err != nil {
		return nil, err
	}
	a, err := p.Allocate(slist, n, r)
	if err != nil {
		return nil, err
	}
	if err := a.checkSafety(slist, n, r); err != nil {
		return nil, fmt.Errorf("core: strategy %q produced an invalid assignment: %w", p.Name(), err)
	}
	return a, nil
}

// checkSafety verifies the structural invariants every placement must
// uphold: Hosts echoes slist (same hosts, same order — the launch path
// resolves placements through a.Hosts, so a permuted or duplicated
// Hosts slice would defeat the per-index checks below), one U entry per
// host, u_i ≤ min(P_i, n), exactly n×r processes, and no host carrying
// two replicas of one rank (the §4.2 criterion (b)). Built-in policies
// satisfy this by construction; the check guards registry extensions.
func (a *Assignment) checkSafety(slist []HostSlot, n, r int) error {
	if len(a.U) != len(slist) || len(a.Procs) != len(slist) || len(a.Hosts) != len(slist) {
		return errors.New("U/Procs/Hosts length does not match slist")
	}
	for i := range slist {
		if a.Hosts[i].ID != slist[i].ID {
			return fmt.Errorf("Hosts[%d] = %q does not echo slist (%q)", i, a.Hosts[i].ID, slist[i].ID)
		}
	}
	total := 0
	pairs := make(map[[2]int]bool, n*r)
	for i, u := range a.U {
		if u < 0 || u > Capacity(slist[i].P, n) {
			return fmt.Errorf("host %d assigned %d processes, capacity %d", i, u, Capacity(slist[i].P, n))
		}
		if len(a.Procs[i]) != u {
			return fmt.Errorf("host %d has %d placements for u=%d", i, len(a.Procs[i]), u)
		}
		seen := make(map[int]bool, u)
		for _, pl := range a.Procs[i] {
			if pl.Rank < 0 || pl.Rank >= n || pl.Replica < 0 || pl.Replica >= r {
				return fmt.Errorf("host %d placement %+v out of range", i, pl)
			}
			if seen[pl.Rank] {
				return fmt.Errorf("host %d carries two replicas of rank %d", i, pl.Rank)
			}
			seen[pl.Rank] = true
			// Globally, every (rank, replica) pair must appear exactly
			// once; with total == n×r and the range checks above, this
			// forces all n×r pairs to be present.
			key := [2]int{pl.Rank, pl.Replica}
			if pairs[key] {
				return fmt.Errorf("(rank %d, replica %d) placed twice", pl.Rank, pl.Replica)
			}
			pairs[key] = true
		}
		total += u
	}
	if total != n*r {
		return fmt.Errorf("placed %d processes, want %d", total, n*r)
	}
	return nil
}

// assignRanks numbers the placed processes with the paper's §4.3
// algorithm: walk slist, hand out ranks 0,1,...,n-1,0,1,... consecutively
// across hosts. Because u_i ≤ c_i ≤ n, a host can never receive the same
// rank twice, which is exactly criterion (b): replicas of a rank always
// land on distinct hosts.
func assignRanks(u []int, n int) [][]Proc {
	procs := make([][]Proc, len(u))
	rank := 0
	copies := make([]int, n) // replica counter per rank
	for i, ui := range u {
		if ui == 0 {
			continue // reservation cancelled for this host
		}
		procs[i] = make([]Proc, 0, ui)
		for l := 0; l < ui; l++ {
			procs[i] = append(procs[i], Proc{Rank: rank, Replica: copies[rank]})
			copies[rank]++
			rank++
			if rank >= n {
				rank = 0
			}
		}
	}
	return procs
}

// UsedHosts returns the number of hosts with at least one process.
func (a *Assignment) UsedHosts() int {
	n := 0
	for _, u := range a.U {
		if u > 0 {
			n++
		}
	}
	return n
}

// HostsBySite counts used hosts per site.
func (a *Assignment) HostsBySite() map[string]int {
	out := make(map[string]int)
	for i, u := range a.U {
		if u > 0 {
			out[a.Hosts[i].Site]++
		}
	}
	return out
}

// ProcsBySite counts mapped processes ("allocated cores") per site.
func (a *Assignment) ProcsBySite() map[string]int {
	out := make(map[string]int)
	for i, u := range a.U {
		if u > 0 {
			out[a.Hosts[i].Site] += u
		}
	}
	return out
}

// TotalProcs returns Σ u_i (always n×r for a successful allocation).
func (a *Assignment) TotalProcs() int {
	n := 0
	for _, u := range a.U {
		n += u
	}
	return n
}
