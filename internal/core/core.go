// Package core implements the paper's primary contribution: the
// co-allocation strategies of P2P-MPI (§4.3).
//
// Given the selected host list slist (the n×r lowest-latency reserved
// hosts), an allocation strategy decides how many processes u_i each host
// receives, subject to the capacity rule c_i = min(P_i, n), and MPI ranks
// are then numbered so that no two replicas of one rank share a host.
//
// Two strategies come from the paper:
//
//   - spread: round-robin one process per host, maximising the memory
//     available to each process while keeping locality as a secondary
//     objective (the closest hosts still absorb the remainder first);
//   - concentrate: fill each host to capacity before touching the next,
//     maximising process locality at the risk of memory contention.
//
// A third strategy, mixed, implements the paper's "future work" idea:
// hosts are filled to capacity (locality within a host) but sites are
// visited round-robin (spreading across sites).
package core

import (
	"errors"
	"fmt"
	"time"
)

// Strategy selects a process-placement policy.
type Strategy int

// The available allocation strategies.
const (
	// Spread maps one process per host in latency order, wrapping around
	// while capacity remains (paper §4.3, first algorithm).
	Spread Strategy = iota
	// Concentrate fills each host up to its capacity in latency order
	// (paper §4.3, second algorithm).
	Concentrate
	// Mixed is the extension strategy: round-robin across sites,
	// concentrate within a host.
	Mixed
)

// String returns the command-line name of the strategy.
func (s Strategy) String() string {
	switch s {
	case Spread:
		return "spread"
	case Concentrate:
		return "concentrate"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy converts a -a command-line value to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "spread":
		return Spread, nil
	case "concentrate":
		return Concentrate, nil
	case "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("core: unknown allocation strategy %q", name)
	}
}

// HostSlot is one reserved host, in the latency order of slist.
type HostSlot struct {
	// ID is the host identity (its peer ID).
	ID string
	// Site is the host's site, used only by the Mixed strategy and for
	// reporting; the paper's strategies never look at it.
	Site string
	// P is the owner's limit on processes per MPI application.
	P int
	// Latency is the measured latency from the submitter (diagnostic).
	Latency time.Duration
	// Cores is the host's core count (diagnostic; P usually equals it).
	Cores int
}

// Allocation errors returned by Feasible and Allocate.
var (
	// ErrTooFewHosts: |slist| < r, replicas could not avoid sharing hosts
	// (feasibility condition (a), §4.2 step 6).
	ErrTooFewHosts = errors.New("core: fewer selected hosts than the replication degree")
	// ErrInsufficientCapacity: Σ c_i < n×r (feasibility condition (b)).
	ErrInsufficientCapacity = errors.New("core: selected hosts cannot accommodate all processes")
	// ErrBadRequest: n < 1 or r < 1.
	ErrBadRequest = errors.New("core: invalid request")
)

// Capacity returns c_i = min(P, n): a host must never receive more than n
// processes even if its owner allows more, since the (n+1)-th process of
// an application on one host would necessarily duplicate a rank.
func Capacity(p, n int) int {
	if p < 0 {
		p = 0
	}
	if p < n {
		return p
	}
	return n
}

// Feasible checks the two feasibility conditions of §4.2 step 6:
// (a) |slist| ≥ r and (b) Σ c_i ≥ n×r.
func Feasible(slist []HostSlot, n, r int) error {
	if n < 1 || r < 1 {
		return ErrBadRequest
	}
	if len(slist) < r {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewHosts, len(slist), r)
	}
	total := 0
	for _, h := range slist {
		total += Capacity(h.P, n)
	}
	if total < n*r {
		return fmt.Errorf("%w: capacity %d < %d processes", ErrInsufficientCapacity, total, n*r)
	}
	return nil
}

// Placement is one mapped process: MPI rank plus replica number.
type Placement struct {
	Rank    int
	Replica int
}

// Assignment is the result of an allocation: how many processes each host
// of slist received and which (rank, replica) pairs they are.
type Assignment struct {
	// Hosts is the slist the allocation was computed over.
	Hosts []HostSlot
	// U[i] is the number of processes mapped to Hosts[i]; hosts with
	// U[i] == 0 have their reservation cancelled (paper §4.3).
	U []int
	// Procs[i] lists the placements on Hosts[i], in rank-assignment
	// order.
	Procs [][]Placement
	// N and R echo the request.
	N, R int
	// Strategy echoes the policy used.
	Strategy Strategy
}

// Allocate distributes n×r processes over slist with the given strategy
// and numbers their ranks. The slist order is significant: it must be the
// ascending-latency order produced by the reservation step.
func Allocate(slist []HostSlot, n, r int, strategy Strategy) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	caps := make([]int, len(slist))
	for i, h := range slist {
		caps[i] = Capacity(h.P, n)
	}

	var u []int
	switch strategy {
	case Spread:
		u = spread(caps, n*r)
	case Concentrate:
		u = concentrate(caps, n*r)
	case Mixed:
		u = mixed(slist, caps, n*r)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}

	a := &Assignment{
		Hosts:    append([]HostSlot(nil), slist...),
		U:        u,
		Procs:    assignRanks(u, n),
		N:        n,
		R:        r,
		Strategy: strategy,
	}
	return a, nil
}

// spread is the paper's first algorithm: visit hosts in slist order
// repeatedly, placing one process per visit while the host has remaining
// capacity, until d = n×r processes are placed.
func spread(caps []int, total int) []int {
	u := make([]int, len(caps))
	d := 0
	for d < total {
		progress := false
		for i := 0; i < len(caps) && d < total; i++ {
			if u[i] < caps[i] {
				u[i]++
				d++
				progress = true
			}
		}
		if !progress { // unreachable when Feasible passed; defensive
			panic("core: spread allocation stuck")
		}
	}
	return u
}

// concentrate is the paper's second algorithm: give each host
// min(c_i, remaining) processes in slist order.
func concentrate(caps []int, total int) []int {
	u := make([]int, len(caps))
	d := 0
	for i := 0; i < len(caps) && d < total; i++ {
		take := caps[i]
		if take > total-d {
			take = total - d
		}
		u[i] = take
		d += take
	}
	if d < total {
		panic("core: concentrate allocation stuck")
	}
	return u
}

// mixed visits sites round-robin (in order of each site's first, i.e.
// lowest-latency, host) and fills one whole host per visit.
func mixed(slist []HostSlot, caps []int, total int) []int {
	u := make([]int, len(slist))
	// Per-site queues of host indices, preserving latency order.
	var siteOrder []string
	hostsOf := make(map[string][]int)
	for i, h := range slist {
		if _, ok := hostsOf[h.Site]; !ok {
			siteOrder = append(siteOrder, h.Site)
		}
		hostsOf[h.Site] = append(hostsOf[h.Site], i)
	}
	d := 0
	for d < total {
		progress := false
		for _, site := range siteOrder {
			if d >= total {
				break
			}
			q := hostsOf[site]
			// Pop saturated hosts at the front of this site's queue.
			for len(q) > 0 && u[q[0]] >= caps[q[0]] {
				q = q[1:]
			}
			hostsOf[site] = q
			if len(q) == 0 {
				continue
			}
			i := q[0]
			take := caps[i] - u[i]
			if take > total-d {
				take = total - d
			}
			u[i] += take
			d += take
			if take > 0 {
				progress = true
			}
		}
		if !progress {
			panic("core: mixed allocation stuck")
		}
	}
	return u
}

// assignRanks numbers the placed processes with the paper's §4.3
// algorithm: walk slist, hand out ranks 0,1,...,n-1,0,1,... consecutively
// across hosts. Because u_i ≤ c_i ≤ n, a host can never receive the same
// rank twice, which is exactly criterion (b): replicas of a rank always
// land on distinct hosts.
func assignRanks(u []int, n int) [][]Placement {
	procs := make([][]Placement, len(u))
	rank := 0
	copies := make([]int, n) // replica counter per rank
	for i, ui := range u {
		if ui == 0 {
			continue // reservation cancelled for this host
		}
		procs[i] = make([]Placement, 0, ui)
		for l := 0; l < ui; l++ {
			procs[i] = append(procs[i], Placement{Rank: rank, Replica: copies[rank]})
			copies[rank]++
			rank++
			if rank >= n {
				rank = 0
			}
		}
	}
	return procs
}

// UsedHosts returns the number of hosts with at least one process.
func (a *Assignment) UsedHosts() int {
	n := 0
	for _, u := range a.U {
		if u > 0 {
			n++
		}
	}
	return n
}

// HostsBySite counts used hosts per site.
func (a *Assignment) HostsBySite() map[string]int {
	out := make(map[string]int)
	for i, u := range a.U {
		if u > 0 {
			out[a.Hosts[i].Site]++
		}
	}
	return out
}

// ProcsBySite counts mapped processes ("allocated cores") per site.
func (a *Assignment) ProcsBySite() map[string]int {
	out := make(map[string]int)
	for i, u := range a.U {
		if u > 0 {
			out[a.Hosts[i].Site] += u
		}
	}
	return out
}

// TotalProcs returns Σ u_i (always n×r for a successful allocation).
func (a *Assignment) TotalProcs() int {
	n := 0
	for _, u := range a.U {
		n += u
	}
	return n
}
