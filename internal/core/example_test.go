package core_test

import (
	"fmt"

	"p2pmpi/internal/core"
)

// oddHosts is a toy placement policy: spread over the odd-indexed
// hosts of slist first. It exists to show the registry contract — a
// real policy would implement a scheduling idea.
type oddHosts struct{}

func (oddHosts) Name() string { return "odd-hosts" }

func (oddHosts) Allocate(slist []core.HostSlot, n, r int) (*core.Assignment, error) {
	// Delegate the actual placement to a built-in: a thin wrapper is
	// all the registry needs to see.
	p, err := core.Lookup(string(core.Spread))
	if err != nil {
		return nil, err
	}
	reordered := make([]core.HostSlot, 0, len(slist))
	for i := 1; i < len(slist); i += 2 {
		reordered = append(reordered, slist[i])
	}
	for i := 0; i < len(slist); i += 2 {
		reordered = append(reordered, slist[i])
	}
	a, err := p.Allocate(reordered, n, r)
	if err != nil {
		return nil, err
	}
	// Echo the caller's slist order, as the safety check requires.
	byID := make(map[string]int, len(reordered))
	for i, h := range reordered {
		byID[h.ID] = i
	}
	out := &core.Assignment{Hosts: slist, N: n, R: r, Strategy: "odd-hosts",
		U: make([]int, len(slist)), Procs: make([][]core.Proc, len(slist))}
	for i, h := range slist {
		j := byID[h.ID]
		out.U[i] = a.U[j]
		out.Procs[i] = a.Procs[j]
	}
	return out, nil
}

// ExampleRegister registers a custom placement policy and selects it
// by name through the same entry point the middleware submits through.
func ExampleRegister() {
	core.Register(oddHosts{})

	slist := []core.HostSlot{
		{ID: "a", Site: "east", P: 2},
		{ID: "b", Site: "east", P: 2},
		{ID: "c", Site: "west", P: 2},
		{ID: "d", Site: "west", P: 2},
	}
	asg, err := core.Allocate(slist, 2, 1, core.Strategy("odd-hosts"))
	if err != nil {
		fmt.Println("allocate:", err)
		return
	}
	for i, u := range asg.U {
		if u > 0 {
			fmt.Printf("%s: %d process(es)\n", asg.Hosts[i].ID, u)
		}
	}
	// Output:
	// b: 1 process(es)
	// d: 1 process(es)
}
