package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestRegistryRoundTrips: ParseStrategy, Lookup and Names agree for
// every registered strategy, and unknown names fail cleanly everywhere.
func TestRegistryRoundTrips(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d strategies (%v), want the 3 paper + 3 extension policies", len(names), names)
	}
	for _, want := range []Strategy{Spread, Concentrate, Mixed, Random, MinSites, CommAware} {
		found := false
		for _, n := range names {
			if n == string(want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in strategy %q missing from Names() = %v", want, names)
		}
	}
	for _, name := range names {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, p.Name())
		}
		st, err := ParseStrategy(name)
		if err != nil || st.String() != name {
			t.Fatalf("ParseStrategy(%q) = %v, %v", name, st, err)
		}
	}
	if got := Strategies(); len(got) != len(names) {
		t.Fatalf("Strategies() = %v, want one per name %v", got, names)
	}
	if _, err := Lookup("no-such-strategy"); err == nil {
		t.Fatal("Lookup accepted an unknown name")
	}
	if _, err := ParseStrategy("no-such-strategy"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown name")
	}
}

// TestRegistryCustomPolicy: a user-registered policy becomes selectable
// by name through the same entry points the built-ins use.
func TestRegistryCustomPolicy(t *testing.T) {
	Register(uvecPlacement{name: "test-firsthost", u: func(slist []HostSlot, caps []int, total int) []int {
		return concentrate(caps, total)
	}})
	defer func() {
		regMu.Lock()
		delete(registry, "test-firsthost")
		regMu.Unlock()
	}()
	st, err := ParseStrategy("test-firsthost")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(mkSlist(3, 4), 4, 1, st)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != "test-firsthost" || a.TotalProcs() != 4 {
		t.Fatalf("custom policy produced %+v", a)
	}
}

// overfillPlacement is a deliberately broken policy: it dumps every
// process onto the first host, ignoring the capacity rule.
type overfillPlacement struct{}

func (overfillPlacement) Name() string { return "test-overfill" }
func (overfillPlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	u := make([]int, len(slist))
	u[0] = n * r
	return &Assignment{
		Hosts: append([]HostSlot(nil), slist...),
		U:     u, Procs: assignRanks(u, n*r), N: n, R: r,
		Strategy: "test-overfill",
	}, nil
}

// permutePlacement is a deliberately broken policy: it computes a valid
// u-vector but reports a reordered Hosts slice, so per-index checks
// against slist would look consistent while the launch path (which
// resolves through Hosts) would co-locate replicas.
type permutePlacement struct{}

func (permutePlacement) Name() string { return "test-permute" }
func (permutePlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	u := concentrate(capacities(slist, n), n*r)
	hosts := append([]HostSlot(nil), slist...)
	hosts[0], hosts[len(hosts)-1] = hosts[len(hosts)-1], hosts[0]
	return &Assignment{
		Hosts: hosts, U: u, Procs: assignRanks(u, n), N: n, R: r,
		Strategy: "test-permute",
	}, nil
}

// dupRankPlacement is a deliberately broken policy: locally valid on
// every host, but it clones (rank 0, replica 0) across hosts instead of
// covering all ranks.
type dupRankPlacement struct{}

func (dupRankPlacement) Name() string { return "test-duprank" }
func (dupRankPlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	u := spread(capacities(slist, n), n*r)
	procs := make([][]Proc, len(slist))
	for i, ui := range u {
		for l := 0; l < ui; l++ {
			procs[i] = append(procs[i], Proc{Rank: 0, Replica: 0})
		}
	}
	return &Assignment{
		Hosts: append([]HostSlot(nil), slist...),
		U:     u, Procs: procs, N: n, R: r,
		Strategy: "test-duprank",
	}, nil
}

// TestAllocateRejectsUnsafeThirdPartyPolicy: the compat Allocate entry
// point the middleware submits through must catch a registered policy
// that violates the capacity/replica-safety invariants — by overfilling
// a host, mis-echoing the slist, or duplicating (rank, replica) pairs
// across hosts.
func TestAllocateRejectsUnsafeThirdPartyPolicy(t *testing.T) {
	Register(overfillPlacement{})
	Register(permutePlacement{})
	Register(dupRankPlacement{})
	defer func() {
		regMu.Lock()
		delete(registry, "test-overfill")
		delete(registry, "test-permute")
		delete(registry, "test-duprank")
		regMu.Unlock()
	}()
	if _, err := Allocate(mkSlist(4, 2), 4, 2, "test-overfill"); err == nil {
		t.Fatal("overfilling policy passed the safety chokepoint")
	}
	if _, err := Allocate(mkSlist(4, 2), 4, 2, "test-permute"); err == nil {
		t.Fatal("host-permuting policy passed the safety chokepoint")
	}
	if _, err := Allocate(mkSlist(4, 2), 4, 2, "test-duprank"); err == nil {
		t.Fatal("rank-duplicating policy passed the safety chokepoint")
	}
}

// randomSlist draws a property-test slist: uneven capacities, duplicated
// and interleaved sites, arbitrary latencies (including zero).
func randomSlist(rng *rand.Rand) []HostSlot {
	k := 1 + rng.Intn(40)
	out := make([]HostSlot, k)
	for i := range out {
		out[i] = HostSlot{
			ID:      fmt.Sprintf("h%03d", i),
			Site:    fmt.Sprintf("s%d", rng.Intn(1+k/4)),
			P:       rng.Intn(8),
			Latency: time.Duration(rng.Intn(20)) * time.Millisecond,
		}
	}
	return out
}

// TestAllRegisteredStrategiesReplicaSafe drives every registered policy
// with random slists and checks the full invariant set: exactly n×r
// processes, u_i ≤ min(P_i, n), and no two replicas of one rank on one
// host — the criterion every placement must uphold.
func TestAllRegisteredStrategiesReplicaSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		trials := 0
		for trials < 150 {
			slist := randomSlist(rng)
			n := 1 + rng.Intn(50)
			r := 1 + rng.Intn(3)
			feasErr := Feasible(slist, n, r)
			a, err := p.Allocate(slist, n, r)
			if (feasErr == nil) != (err == nil) {
				t.Fatalf("%s: Feasible=%v but Allocate err=%v", name, feasErr, err)
			}
			if err != nil {
				if !errors.Is(err, ErrTooFewHosts) && !errors.Is(err, ErrInsufficientCapacity) && !errors.Is(err, ErrBadRequest) {
					t.Fatalf("%s: unexpected error class %v", name, err)
				}
				continue
			}
			trials++
			checkInvariants(t, a, slist, n, r)
			if a.Strategy.String() != name {
				t.Fatalf("%s: assignment tagged %q", name, a.Strategy)
			}
		}
	}
}

// TestAllRegisteredStrategiesDeterministic: every registered policy maps
// identical inputs to identical assignments (a replayable-simulation
// requirement, and what makes the seeded random baseline a baseline).
func TestAllRegisteredStrategiesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			slist := randomSlist(rng)
			n := 1 + rng.Intn(30)
			a1, err1 := p.Allocate(slist, n, 1)
			a2, err2 := p.Allocate(slist, n, 1)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: nondeterministic error", name)
			}
			if err1 != nil {
				continue
			}
			if !reflect.DeepEqual(a1.U, a2.U) || !reflect.DeepEqual(a1.Procs, a2.Procs) {
				t.Fatalf("%s: nondeterministic assignment", name)
			}
		}
	}
}

// TestMinSitesUsesFewestSites: on a layout where the latency order would
// scatter the job, minsites must fit it into the single biggest site.
func TestMinSitesUsesFewestSites(t *testing.T) {
	// Sites a..d interleaved in latency order; site "big" can hold all.
	var slist []HostSlot
	for i := 0; i < 12; i++ {
		slist = append(slist, HostSlot{
			ID:      fmt.Sprintf("h%02d", i),
			Site:    fmt.Sprintf("s%d", i%4),
			P:       1,
			Latency: time.Duration(i) * time.Millisecond,
		})
	}
	for i := 0; i < 4; i++ {
		slist = append(slist, HostSlot{
			ID:      fmt.Sprintf("big%d", i),
			Site:    "big",
			P:       4,
			Latency: time.Duration(100+i) * time.Millisecond,
		})
	}
	a, err := Allocate(slist, 8, 1, MinSites)
	if err != nil {
		t.Fatal(err)
	}
	if sites := a.HostsBySite(); len(sites) != 1 || sites["big"] == 0 {
		t.Fatalf("minsites scattered across %v", sites)
	}
	// spread, by contrast, uses 4+ sites here.
	sp, err := Allocate(slist, 8, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.HostsBySite()) < 4 {
		t.Fatalf("spread unexpectedly compact: %v", sp.HostsBySite())
	}
}

// TestCommAwareBuildsTightCluster: given one far site that can hold the
// whole job and near hosts scattered one per site, comm-aware must stay
// within few sites rather than follow raw latency order.
func TestCommAwareBuildsTightCluster(t *testing.T) {
	// The closest host sits alone in its site; a co-located cluster of
	// comparable latency follows; the remaining hosts are lone singles at
	// increasing distance. Under the star RTT estimate (0 within a site,
	// lat(a)+lat(b) across) the cluster snowballs after the first pick:
	// every additional cluster host costs only its submitter leg against
	// the out-of-site chosen hosts, while a lone host pays pairwise legs
	// against the whole chosen set.
	slist := []HostSlot{
		{ID: "near0", Site: "lone0", P: 1, Latency: 5 * time.Millisecond},
	}
	for i := 0; i < 6; i++ {
		slist = append(slist, HostSlot{
			ID:      fmt.Sprintf("cl%d", i),
			Site:    "cluster",
			P:       2,
			Latency: 6 * time.Millisecond,
		})
	}
	for i := 1; i < 6; i++ {
		slist = append(slist, HostSlot{
			ID:      fmt.Sprintf("near%d", i),
			Site:    fmt.Sprintf("lone%d", i),
			P:       1,
			Latency: time.Duration(6+i) * time.Millisecond,
		})
	}
	a, err := Allocate(slist, 8, 1, CommAware)
	if err != nil {
		t.Fatal(err)
	}
	sites := a.HostsBySite()
	if sites["cluster"] < 4 {
		t.Fatalf("comm-aware ignored the co-located cluster: %v", sites)
	}
	if len(sites) != 2 {
		t.Fatalf("comm-aware scattered across %d sites: %v", len(sites), sites)
	}
	// spread on the same slist straddles many more sites.
	sp, err := Allocate(slist, 8, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.HostsBySite()) <= 2 {
		t.Fatalf("spread unexpectedly compact: %v", sp.HostsBySite())
	}
}

// TestRandomPlacementSeedSensitivity: the baseline is deterministic per
// input but decorrelates across inputs and across explicit seeds.
func TestRandomPlacementSeedSensitivity(t *testing.T) {
	slist := mkSlist(30, 2)
	a1, err := RandomPlacement{}.Allocate(slist, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RandomPlacement{}.Allocate(slist, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.U, a2.U) {
		t.Fatal("random placement not deterministic per input")
	}
	b, err := RandomPlacement{Seed: 99}.Allocate(slist, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1.U, b.U) {
		t.Fatal("seed had no effect (astronomically unlikely)")
	}
}
