package core

import (
	"fmt"
	"sync"
)

// Ledger is a live, mutating view of host slots shared by concurrent
// submissions. Where a single Submit works from a one-shot snapshot of
// the peer cache, a multi-job scheduler must know which hosts its own
// in-flight jobs already occupy: the ledger tracks, per host, the
// processes and applications acquired by running assignments, so the
// next job can exclude saturated hosts before brokering instead of
// discovering the conflict through ReserveNOK round-trips.
//
// A ledger built with no hosts is unconstrained: it reports nothing busy
// and unlimited free capacity. This is the degenerate mode used when
// host capacities are unknown (real-TCP submissions, where P values only
// arrive inside ReserveOK answers).
//
// All methods are safe for concurrent use.
type Ledger struct {
	mu    sync.Mutex
	hosts []HostSlot
	index map[string]int // host ID -> hosts offset
	procs []int          // processes acquired per host
	apps  []int          // applications acquired per host
	j     int            // owner J assumed for every host
}

// NewLedger builds a ledger over the given hosts (order preserved; it
// becomes the Snapshot order). jPerHost is the owner J limit assumed for
// every host — the number of simultaneous applications a host accepts —
// matching the paper's experiments where every peer runs with J = 1.
func NewLedger(hosts []HostSlot, jPerHost int) *Ledger {
	if jPerHost <= 0 {
		jPerHost = 1
	}
	l := &Ledger{
		hosts: append([]HostSlot(nil), hosts...),
		index: make(map[string]int, len(hosts)),
		procs: make([]int, len(hosts)),
		apps:  make([]int, len(hosts)),
		j:     jPerHost,
	}
	for i, h := range l.hosts {
		l.index[h.ID] = i
	}
	return l
}

// Unconstrained reports whether the ledger tracks no hosts and therefore
// imposes no view on submissions.
func (l *Ledger) Unconstrained() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.hosts) == 0
}

// freeLocked returns the residual process capacity of host i, zero when
// its application slots are exhausted.
func (l *Ledger) freeLocked(i int) int {
	if l.apps[i] >= l.j {
		return 0
	}
	free := l.hosts[i].P - l.procs[i]
	if free < 0 {
		free = 0
	}
	return free
}

// Snapshot returns the hosts that can still accept work, in ledger
// order, with P reduced to the residual capacity. The result is the
// slist-shaped input a scheduler feeds to Feasible before spending
// network round-trips on brokering.
func (l *Ledger) Snapshot() []HostSlot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []HostSlot
	for i, h := range l.hosts {
		if free := l.freeLocked(i); free > 0 {
			h.P = free
			out = append(out, h)
		}
	}
	return out
}

// Busy returns the IDs of hosts with no residual capacity — saturated
// process slots or exhausted application slots. These are the hosts a
// concurrent submission should exclude from booking.
func (l *Ledger) Busy() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for i, h := range l.hosts {
		if l.freeLocked(i) == 0 {
			out = append(out, h.ID)
		}
	}
	return out
}

// FreeProcs returns the total residual process capacity across all
// hosts, or -1 for an unconstrained ledger.
func (l *Ledger) FreeProcs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.hosts) == 0 {
		return -1
	}
	total := 0
	for i := range l.hosts {
		total += l.freeLocked(i)
	}
	return total
}

// InFlight returns the number of acquired (not yet released)
// applications summed over hosts, i.e. Σ apps_i. A job placed on five
// hosts counts five.
func (l *Ledger) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, a := range l.apps {
		total += a
	}
	return total
}

// Acquire charges the assignment's placed processes to the ledger: every
// host with u_i > 0 gains one application and u_i processes. Hosts the
// ledger does not track (e.g. the submitter itself) are ignored.
func (l *Ledger) Acquire(a *Assignment) {
	l.charge(a, +1)
}

// Release refunds a previous Acquire. Releasing an assignment that was
// never acquired corrupts the view; the ledger clamps at zero and
// panics only on negative application counts, which always indicate a
// double release.
func (l *Ledger) Release(a *Assignment) {
	l.charge(a, -1)
}

func (l *Ledger) charge(a *Assignment, sign int) {
	if a == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, u := range a.U {
		if u == 0 {
			continue
		}
		idx, ok := l.index[a.Hosts[i].ID]
		if !ok {
			continue
		}
		l.procs[idx] += sign * u
		l.apps[idx] += sign
		if l.procs[idx] < 0 {
			l.procs[idx] = 0
		}
		if l.apps[idx] < 0 {
			panic(fmt.Sprintf("core: ledger double release on host %s", a.Hosts[i].ID))
		}
	}
}
