// Package core implements the paper's primary contribution: the
// co-allocation strategies of P2P-MPI (§4.3) behind an open placement
// registry, plus the live slot ledger the multi-job scheduler plans
// against.
//
// Given the selected host list slist (the n×r lowest-latency reserved
// hosts), an allocation strategy decides how many processes u_i each
// host receives, subject to the capacity rule c_i = min(P_i, n), and
// MPI ranks are then numbered so that no two replicas of one rank
// share a host — the replica-safety criterion that makes the
// replication degree a real fault-tolerance knob.
//
// Placement policies are open: a policy implements the Placement
// interface, calls Register (see the example), and is from then on
// selectable by name everywhere a Strategy travels — JobSpec, the
// schedulers, both CLIs and the experiment CSVs. Allocate is the
// safety chokepoint: it re-checks feasibility and validates every
// returned assignment, so a registered third-party policy cannot
// smuggle a replica-unsafe placement into a launch.
//
// Two strategies come from the paper:
//
//   - spread: round-robin one process per host, maximising the memory
//     available to each process while keeping locality as a secondary
//     objective (the closest hosts still absorb the remainder first);
//   - concentrate: fill each host to capacity before touching the
//     next, maximising process locality at the risk of memory
//     contention.
//
// A third strategy, mixed, implements the paper's "future work" idea:
// hosts are filled to capacity (locality within a host) but sites are
// visited round-robin (spreading across sites). Beyond the paper, the
// registry also ships random (a seeded baseline), minsites (pack into
// the fewest sites) and comm-aware (grow a low-RTT cluster of hosts,
// after Bender et al.'s communication-aware processor allocation).
package core
