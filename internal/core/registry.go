package core

import (
	"fmt"
	"sort"
	"sync"
)

// Placement is an open process-placement policy: given the reserved host
// list slist (in ascending-latency order) and a request for n ranks with
// replication degree r, it decides how many processes each host receives
// and how ranks are numbered.
//
// Implementations must be deterministic in their inputs (the simulation
// harness replays worlds bit-for-bit) and must respect the capacity rule
// u_i ≤ min(P_i, n); producing ranks through assignRanks-style numbering
// then guarantees the replica-safety criterion (no two replicas of one
// rank on one host). Register makes a policy selectable by name
// everywhere a Strategy travels: JobSpec, the schedulers, both CLIs and
// the experiment harness.
type Placement interface {
	// Name is the registry key and command-line spelling of the policy.
	Name() string
	// Allocate maps n×r processes onto slist or fails with the
	// feasibility errors of this package.
	Allocate(slist []HostSlot, n, r int) (*Assignment, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Placement)
)

// Register adds (or replaces) a placement policy under p.Name(). It
// panics on an empty name — a nameless policy could never be selected.
func Register(p Placement) {
	name := p.Name()
	if name == "" {
		panic("core: Register: placement with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = p
}

// Lookup resolves a strategy name to its registered policy. The empty
// name resolves to Spread, preserving the historical zero-value default
// of JobSpec.Strategy.
func Lookup(name string) (Placement, error) {
	if name == "" {
		name = string(Spread)
	}
	regMu.RLock()
	p, ok := registry[name]
	var known []string
	if !ok {
		for n := range registry {
			known = append(known, n)
		}
	}
	regMu.RUnlock()
	if !ok {
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown allocation strategy %q (registered: %v)", name, known)
	}
	return p, nil
}

// Names lists every registered strategy name in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Strategies returns Names as Strategy values, for ranging over every
// registered policy in experiments and CLIs.
func Strategies() []Strategy {
	names := Names()
	out := make([]Strategy, len(names))
	for i, n := range names {
		out[i] = Strategy(n)
	}
	return out
}
