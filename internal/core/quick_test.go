package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// genSlist is a quick.Generator-compatible random slist description.
type genSlist struct {
	Caps []uint8 // P per host, 0..7
	N    uint8   // 1..48
	R    uint8   // 1..3
	St   uint8   // strategy selector
}

// Generate implements quick.Generator with bounded, always-interesting
// shapes.
func (genSlist) Generate(r *rand.Rand, size int) reflect.Value {
	g := genSlist{
		Caps: make([]uint8, 1+r.Intn(40)),
		N:    uint8(1 + r.Intn(48)),
		R:    uint8(1 + r.Intn(3)),
		St:   uint8(r.Intn(3)),
	}
	for i := range g.Caps {
		g.Caps[i] = uint8(r.Intn(8))
	}
	return reflect.ValueOf(g)
}

func (g genSlist) slist() []HostSlot {
	out := make([]HostSlot, len(g.Caps))
	for i, p := range g.Caps {
		out[i] = HostSlot{
			ID:      string(rune('A'+i%26)) + string(rune('0'+i/26)),
			Site:    string(rune('a' + i%5)),
			P:       int(p),
			Latency: time.Duration(i) * time.Millisecond,
		}
	}
	return out
}

// TestQuickAllocationInvariants drives the allocator with random shapes
// and checks every published invariant in one pass:
//   - exactly n×r processes are placed;
//   - no host exceeds c_i = min(P_i, n);
//   - every rank has exactly r copies, all on distinct hosts;
//   - infeasible inputs are rejected exactly when the conditions say so.
func TestQuickAllocationInvariants(t *testing.T) {
	f := func(g genSlist) bool {
		n, r := int(g.N), int(g.R)
		slist := g.slist()
		st := []Strategy{Spread, Concentrate, Mixed}[g.St%3]

		feasErr := Feasible(slist, n, r)
		asg, err := Allocate(slist, n, r, st)
		if (feasErr == nil) != (err == nil) {
			t.Logf("feasible=%v but allocate err=%v", feasErr, err)
			return false
		}
		if err != nil {
			return true
		}
		if asg.TotalProcs() != n*r {
			return false
		}
		copies := make(map[int]int)
		for i, procs := range asg.Procs {
			if len(procs) != asg.U[i] {
				return false
			}
			if asg.U[i] > Capacity(slist[i].P, n) {
				return false
			}
			seen := make(map[int]bool)
			for _, pl := range procs {
				if pl.Rank < 0 || pl.Rank >= n || seen[pl.Rank] {
					return false
				}
				seen[pl.Rank] = true
				copies[pl.Rank]++
			}
		}
		for rank := 0; rank < n; rank++ {
			if copies[rank] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpreadDominatesHostCount checks the defining relation between
// the two paper strategies: spread never uses fewer hosts than
// concentrate for the same feasible request.
func TestQuickSpreadDominatesHostCount(t *testing.T) {
	f := func(g genSlist) bool {
		n, r := int(g.N), int(g.R)
		slist := g.slist()
		if Feasible(slist, n, r) != nil {
			return true
		}
		sp, err1 := Allocate(slist, n, r, Spread)
		co, err2 := Allocate(slist, n, r, Concentrate)
		if err1 != nil || err2 != nil {
			return false
		}
		return sp.UsedHosts() >= co.UsedHosts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcentrateMinimizesHosts verifies concentrate's defining
// property: it uses the minimum possible number of hosts, i.e. the
// shortest slist prefix (by capacity) that covers n×r processes.
func TestQuickConcentrateMinimizesHosts(t *testing.T) {
	f := func(g genSlist) bool {
		n, r := int(g.N), int(g.R)
		slist := g.slist()
		if Feasible(slist, n, r) != nil {
			return true
		}
		co, err := Allocate(slist, n, r, Concentrate)
		if err != nil {
			return false
		}
		// Count the minimal prefix cover.
		need := n * r
		minHosts := 0
		for _, h := range slist {
			if need <= 0 {
				break
			}
			c := Capacity(h.P, n)
			if c > 0 {
				minHosts++
				need -= c
			}
		}
		return co.UsedHosts() == minHosts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: identical inputs produce identical assignments.
func TestQuickDeterminism(t *testing.T) {
	f := func(g genSlist) bool {
		n, r := int(g.N), int(g.R)
		slist := g.slist()
		st := []Strategy{Spread, Concentrate, Mixed}[g.St%3]
		a1, err1 := Allocate(slist, n, r, st)
		a2, err2 := Allocate(slist, n, r, st)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return reflect.DeepEqual(a1.U, a2.U) && reflect.DeepEqual(a1.Procs, a2.Procs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRankAssignmentContiguity: within one host, assigned ranks are
// consecutive modulo n (the paper's numbering walks ranks 0..n-1
// cyclically across hosts).
func TestQuickRankAssignmentContiguity(t *testing.T) {
	f := func(g genSlist) bool {
		n, r := int(g.N), int(g.R)
		slist := g.slist()
		st := []Strategy{Spread, Concentrate, Mixed}[g.St%3]
		asg, err := Allocate(slist, n, r, st)
		if err != nil {
			return true
		}
		for _, procs := range asg.Procs {
			for k := 1; k < len(procs); k++ {
				if procs[k].Rank != (procs[k-1].Rank+1)%n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
