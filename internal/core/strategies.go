package core

import (
	"hash/fnv"
	"math/rand"
	"sort"
)

// This file holds the registered placement policies. The paper's
// spread/concentrate (§4.3) and the mixed extension keep their original
// u-vector algorithms; random, minsites and comm-aware go beyond the
// paper. All six produce u-vectors with u_i ≤ min(P_i, n) and number
// ranks through assignRanks, so every registered policy inherits the
// replica-safety criterion.

func init() {
	Register(uvecPlacement{name: string(Spread), u: func(slist []HostSlot, caps []int, total int) []int {
		return spread(caps, total)
	}})
	Register(uvecPlacement{name: string(Concentrate), u: func(slist []HostSlot, caps []int, total int) []int {
		return concentrate(caps, total)
	}})
	Register(uvecPlacement{name: string(Mixed), u: func(slist []HostSlot, caps []int, total int) []int {
		return mixed(slist, caps, total)
	}})
	Register(uvecPlacement{name: string(MinSites), u: minSites})
	Register(RandomPlacement{})
	Register(CommAwarePlacement{})
}

// capacities returns c_i = min(P_i, n) for every host of slist.
func capacities(slist []HostSlot, n int) []int {
	caps := make([]int, len(slist))
	for i, h := range slist {
		caps[i] = Capacity(h.P, n)
	}
	return caps
}

// finish assembles the Assignment for a computed u-vector.
func finish(slist []HostSlot, u []int, n, r int, name string) *Assignment {
	return &Assignment{
		Hosts:    append([]HostSlot(nil), slist...),
		U:        u,
		Procs:    assignRanks(u, n),
		N:        n,
		R:        r,
		Strategy: Strategy(name),
	}
}

// uvecPlacement adapts a u-vector algorithm to the Placement interface:
// feasibility check, capacity capping and rank numbering are shared.
type uvecPlacement struct {
	name string
	u    func(slist []HostSlot, caps []int, total int) []int
}

func (p uvecPlacement) Name() string { return p.name }

func (p uvecPlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	return finish(slist, p.u(slist, capacities(slist, n), n*r), n, r, p.name), nil
}

// spread is the paper's first algorithm: visit hosts in slist order
// repeatedly, placing one process per visit while the host has remaining
// capacity, until d = n×r processes are placed.
func spread(caps []int, total int) []int {
	u := make([]int, len(caps))
	d := 0
	for d < total {
		progress := false
		for i := 0; i < len(caps) && d < total; i++ {
			if u[i] < caps[i] {
				u[i]++
				d++
				progress = true
			}
		}
		if !progress { // unreachable when Feasible passed; defensive
			panic("core: spread allocation stuck")
		}
	}
	return u
}

// concentrate is the paper's second algorithm: give each host
// min(c_i, remaining) processes in slist order.
func concentrate(caps []int, total int) []int {
	u := make([]int, len(caps))
	d := 0
	for i := 0; i < len(caps) && d < total; i++ {
		take := caps[i]
		if take > total-d {
			take = total - d
		}
		u[i] = take
		d += take
	}
	if d < total {
		panic("core: concentrate allocation stuck")
	}
	return u
}

// mixed visits sites round-robin (in order of each site's first, i.e.
// lowest-latency, host) and fills one whole host per visit.
func mixed(slist []HostSlot, caps []int, total int) []int {
	u := make([]int, len(slist))
	// Per-site queues of host indices, preserving latency order.
	var siteOrder []string
	hostsOf := make(map[string][]int)
	for i, h := range slist {
		if _, ok := hostsOf[h.Site]; !ok {
			siteOrder = append(siteOrder, h.Site)
		}
		hostsOf[h.Site] = append(hostsOf[h.Site], i)
	}
	d := 0
	for d < total {
		progress := false
		for _, site := range siteOrder {
			if d >= total {
				break
			}
			q := hostsOf[site]
			// Pop saturated hosts at the front of this site's queue.
			for len(q) > 0 && u[q[0]] >= caps[q[0]] {
				q = q[1:]
			}
			hostsOf[site] = q
			if len(q) == 0 {
				continue
			}
			i := q[0]
			take := caps[i] - u[i]
			if take > total-d {
				take = total - d
			}
			u[i] += take
			d += take
			if take > 0 {
				progress = true
			}
		}
		if !progress {
			panic("core: mixed allocation stuck")
		}
	}
	return u
}

// minSites packs the job into as few sites as a greedy cover allows:
// sites are taken in descending total-capacity order (ties broken by the
// position of the site's lowest-latency host), and hosts within a chosen
// site are filled to capacity in slist order. It minimises the number of
// WAN boundaries the application straddles, at the price of ignoring the
// latency ranking across sites.
func minSites(slist []HostSlot, caps []int, total int) []int {
	type site struct {
		first int // index of the site's first (lowest-latency) host
		cap   int
		hosts []int
	}
	var sites []*site
	byName := make(map[string]*site)
	for i, h := range slist {
		s := byName[h.Site]
		if s == nil {
			s = &site{first: i}
			byName[h.Site] = s
			sites = append(sites, s)
		}
		s.cap += caps[i]
		s.hosts = append(s.hosts, i)
	}
	// Capacity desc, ties by the site's first (lowest-latency) host:
	// deterministic for any slist.
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].cap != sites[j].cap {
			return sites[i].cap > sites[j].cap
		}
		return sites[i].first < sites[j].first
	})
	u := make([]int, len(slist))
	d := 0
	for _, s := range sites {
		for _, i := range s.hosts {
			if d >= total {
				return u
			}
			take := caps[i]
			if take > total-d {
				take = total - d
			}
			u[i] = take
			d += take
		}
	}
	if d < total {
		panic("core: minsites allocation stuck")
	}
	return u
}

// RandomPlacement is the seeded baseline: it permutes the slist with a
// deterministic generator and spreads one process per host over the
// permuted order. The generator is seeded from Seed XOR an FNV hash of
// the request (host IDs, n, r), so identical inputs always produce
// identical placements — a requirement of the replayable simulation —
// while different requests decorrelate.
type RandomPlacement struct {
	// Seed perturbs the per-request derived seed; zero is a valid seed.
	Seed int64
}

// Name implements Placement.
func (RandomPlacement) Name() string { return string(Random) }

// Allocate implements Placement.
func (p RandomPlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	for _, hs := range slist {
		h.Write([]byte(hs.ID))
		h.Write([]byte{0})
	}
	h.Write([]byte{byte(n), byte(n >> 8), byte(r)})
	rng := rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64())))
	perm := rng.Perm(len(slist))

	caps := capacities(slist, n)
	total := n * r
	u := make([]int, len(slist))
	d := 0
	for d < total {
		progress := false
		for _, i := range perm {
			if d >= total {
				break
			}
			if u[i] < caps[i] {
				u[i]++
				d++
				progress = true
			}
		}
		if !progress {
			panic("core: random allocation stuck")
		}
	}
	return finish(slist, u, n, r, string(Random)), nil
}

// CommAwarePlacement grows a communication-tight host cluster in the
// spirit of Bender et al.'s communication-aware processor allocation:
// starting from the lowest-latency host, it repeatedly picks the host
// with the smallest total estimated RTT to the already-chosen set and
// fills it to capacity.
//
// Pairwise RTT between hosts a and b is estimated from the submitter's
// star measurements: zero within a site, Latency(a)+Latency(b) across
// sites (traffic relayed through the backbone the submitter also
// traverses). With per-site aggregates the score of a candidate h is
//
//	score(h) = Latency(h)·(m − m_site(h)) + (L − L_site(h))
//
// where m and L count and sum the latencies of chosen hosts (m_site,
// L_site restricted to h's site), making each greedy step O(1) per
// candidate and the whole allocation O(|slist| · hosts-chosen).
type CommAwarePlacement struct{}

// Name implements Placement.
func (CommAwarePlacement) Name() string { return string(CommAware) }

// Allocate implements Placement.
func (CommAwarePlacement) Allocate(slist []HostSlot, n, r int) (*Assignment, error) {
	if err := Feasible(slist, n, r); err != nil {
		return nil, err
	}
	caps := capacities(slist, n)
	total := n * r
	u := make([]int, len(slist))

	var m float64 // chosen hosts
	var l float64 // Σ latency over chosen hosts
	mSite := make(map[string]float64)
	lSite := make(map[string]float64)

	d := 0
	for d < total {
		best, bestScore := -1, 0.0
		for i, h := range slist {
			if u[i] > 0 || caps[i] == 0 {
				continue
			}
			lat := float64(h.Latency)
			score := lat // first pick: closest host to the submitter
			if m > 0 {
				score = lat*(m-mSite[h.Site]) + (l - lSite[h.Site])
			}
			if best == -1 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			panic("core: comm-aware allocation stuck")
		}
		take := caps[best]
		if take > total-d {
			take = total - d
		}
		u[best] = take
		d += take
		hb := slist[best]
		m++
		l += float64(hb.Latency)
		mSite[hb.Site]++
		lSite[hb.Site] += float64(hb.Latency)
	}
	return finish(slist, u, n, r, string(CommAware)), nil
}
