package core

import (
	"reflect"
	"sort"
	"testing"
)

func ledgerHosts() []HostSlot {
	return []HostSlot{
		{ID: "a", Site: "s1", P: 4},
		{ID: "b", Site: "s1", P: 2},
		{ID: "c", Site: "s2", P: 1},
	}
}

func TestLedgerAcquireRelease(t *testing.T) {
	l := NewLedger(ledgerHosts(), 1)
	if got := l.FreeProcs(); got != 7 {
		t.Fatalf("FreeProcs = %d, want 7", got)
	}
	asg, err := Allocate(ledgerHosts(), 4, 1, Concentrate)
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate: all 4 processes on host a.
	l.Acquire(asg)
	if got := l.FreeProcs(); got != 3 {
		t.Fatalf("after acquire FreeProcs = %d, want 3", got)
	}
	if got := l.Busy(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Busy = %v, want [a]", got)
	}
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	snap := l.Snapshot()
	var ids []string
	for _, h := range snap {
		ids = append(ids, h.ID)
	}
	if !reflect.DeepEqual(ids, []string{"b", "c"}) {
		t.Fatalf("Snapshot hosts = %v, want [b c]", ids)
	}
	l.Release(asg)
	if got := l.FreeProcs(); got != 7 {
		t.Fatalf("after release FreeProcs = %d, want 7", got)
	}
	if got := l.Busy(); got != nil {
		t.Fatalf("Busy after release = %v, want none", got)
	}
}

func TestLedgerJLimitSaturatesHost(t *testing.T) {
	// With J=1, a host running any application is busy even when its
	// process slots are not exhausted.
	l := NewLedger(ledgerHosts(), 1)
	asg, err := Allocate(ledgerHosts(), 2, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	// Spread: one process each on a and b; both hold an application now.
	l.Acquire(asg)
	busy := l.Busy()
	sort.Strings(busy)
	if !reflect.DeepEqual(busy, []string{"a", "b"}) {
		t.Fatalf("Busy = %v, want [a b]", busy)
	}
	// With J=2 the same acquisition leaves residual capacity visible.
	l2 := NewLedger(ledgerHosts(), 2)
	l2.Acquire(asg)
	if got := l2.Busy(); got != nil {
		t.Fatalf("J=2 Busy = %v, want none", got)
	}
	snap := l2.Snapshot()
	if snap[0].ID != "a" || snap[0].P != 3 {
		t.Fatalf("J=2 snapshot[0] = %+v, want a with residual P=3", snap[0])
	}
}

func TestLedgerUnconstrained(t *testing.T) {
	l := NewLedger(nil, 1)
	if !l.Unconstrained() {
		t.Fatal("empty ledger should be unconstrained")
	}
	if got := l.FreeProcs(); got != -1 {
		t.Fatalf("FreeProcs = %d, want -1", got)
	}
	if got := l.Busy(); got != nil {
		t.Fatalf("Busy = %v, want none", got)
	}
	// Acquiring assignments over unknown hosts is a no-op, not a crash.
	asg, err := Allocate(ledgerHosts(), 2, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	l.Acquire(asg)
	l.Release(asg)
}

func TestLedgerDoubleReleasePanics(t *testing.T) {
	l := NewLedger(ledgerHosts(), 1)
	asg, err := Allocate(ledgerHosts(), 2, 1, Spread)
	if err != nil {
		t.Fatal(err)
	}
	l.Acquire(asg)
	l.Release(asg)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	l.Release(asg)
}
