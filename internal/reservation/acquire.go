package reservation

import (
	"errors"
	"sort"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// ErrContended is returned by Acquire when, after every retry round, the
// gathered offers still do not satisfy the caller's Enough predicate.
// Every reservation obtained along the way has been released: the
// acquisition is all-or-nothing.
var ErrContended = errors.New("reservation: could not secure enough hosts")

// Conflicts aggregates the reserve outcomes of one acquisition across
// all its brokering rounds. It is the raw material of the scheduler's
// reservation-conflict rate.
type Conflicts struct {
	// OK counts ReserveOK answers (including surplus offers that were
	// cancelled again).
	OK int
	// NOK counts ReserveNOK answers — the contention signal: a host that
	// answered but had no free application slot (or denied the
	// submitter).
	NOK int
	// Dead counts peers that never answered.
	Dead int
	// Rounds is the number of brokering rounds performed (1 + retries
	// actually used).
	Rounds int
}

// Attempts returns the total number of reserve requests answered or
// timed out.
func (c Conflicts) Attempts() int { return c.OK + c.NOK + c.Dead }

// Rate returns NOK / Attempts, the fraction of reserve requests lost to
// contention; zero when nothing was attempted.
func (c Conflicts) Rate() float64 {
	if a := c.Attempts(); a > 0 {
		return float64(c.NOK) / float64(a)
	}
	return 0
}

// Add accumulates the counters of another acquisition into c.
func (c *Conflicts) Add(o Conflicts) {
	c.OK += o.OK
	c.NOK += o.NOK
	c.Dead += o.Dead
	c.Rounds += o.Rounds
}

// AcquireSpec configures an atomic multi-host acquisition.
type AcquireSpec struct {
	// Req is the Reserve request fanned out to every candidate; its Key
	// identifies the acquisition at every host.
	Req proto.Reserve
	// Timeout bounds each brokering round (per-peer answer deadline).
	Timeout time.Duration
	// Need is the number of offers the caller intends to use (the slist
	// cut, normally n×r); offers beyond Need are cancelled immediately.
	// Zero means keep everything.
	Need int
	// Enough decides whether the accumulated offers suffice. When it
	// returns false and retries remain, refused peers are re-asked after
	// a backoff; when retries are exhausted, everything is released and
	// Acquire fails with ErrContended. A nil Enough accepts any outcome
	// after a single round (the paper's one-shot §4.2 behaviour).
	Enough func(offers []Offer) bool
	// Retries is the number of extra brokering rounds after the first.
	Retries int
	// Backoff is the pause before each retry round, doubled every round
	// (default 2s when retrying).
	Backoff time.Duration
}

// Acquire implements atomic multi-host reservation on top of Broker:
// it fans Reserve out to the candidates, accumulates positive offers
// across backoff-retry rounds (re-asking only peers that answered NOK —
// their application slot may have freed up), cancels surplus offers
// beyond spec.Need, and either returns a result satisfying spec.Enough
// or releases every obtained reservation and reports ErrContended.
//
// The returned offers are in candidate order regardless of which round
// produced them — callers pass candidates in ascending latency, and
// both the Need cut here and the slist fed to core.Allocate rely on
// that order surviving retries. Dead peers are dropped from retry
// rounds — a peer that did not answer is assumed gone, and asking
// again would only stretch the round. The Conflicts counters are
// returned even on failure so callers can account contention.
func Acquire(rt vtime.Runtime, net transport.Network, candidates []proto.PeerInfo,
	spec AcquireSpec) (BrokerResult, Conflicts, error) {

	var (
		acc   BrokerResult
		stats Conflicts
	)
	orderOf := make(map[string]int, len(candidates))
	for i, c := range candidates {
		orderOf[c.ID] = i
	}
	if spec.Backoff <= 0 {
		spec.Backoff = 2 * time.Second
	}
	remaining := candidates
	backoff := spec.Backoff
	for round := 0; ; round++ {
		res := Broker(rt, net, remaining, spec.Req, spec.Timeout)
		stats.Rounds++
		stats.OK += len(res.Offers)
		stats.NOK += len(res.Refused)
		stats.Dead += len(res.Dead)
		acc.Offers = append(acc.Offers, res.Offers...)
		acc.Dead = append(acc.Dead, res.Dead...)
		acc.Refused = res.Refused // only the final round's refusals stand

		if spec.Enough == nil || spec.Enough(acc.Offers) {
			break
		}
		if round >= spec.Retries || len(res.Refused) == 0 {
			// Atomic failure: hand every reservation back.
			ReleaseAll(rt, net, offerPeers(acc.Offers), spec.Req.Key, spec.Timeout)
			return acc, stats, ErrContended
		}
		rt.Sleep(backoff)
		backoff *= 2
		remaining = res.Refused
	}

	// Restore candidate (ascending latency) order: a retry round can
	// win a nearer host after a farther one, and the cut below must not
	// keep the far host just because it answered first.
	sort.SliceStable(acc.Offers, func(i, j int) bool {
		return orderOf[acc.Offers[i].Peer.ID] < orderOf[acc.Offers[j].Peer.ID]
	})

	// Cancel the surplus beyond Need, keeping the earliest (lowest
	// latency) offers.
	if spec.Need > 0 && len(acc.Offers) > spec.Need {
		surplus := acc.Offers[spec.Need:]
		acc.Offers = acc.Offers[:spec.Need]
		ReleaseAll(rt, net, offerPeers(surplus), spec.Req.Key, spec.Timeout)
	}
	return acc, stats, nil
}

func offerPeers(offers []Offer) []proto.PeerInfo {
	peers := make([]proto.PeerInfo, len(offers))
	for i, o := range offers {
		peers[i] = o.Peer
	}
	return peers
}

// ReleaseAll cancels the reservation key at every given peer
// concurrently and waits for the acknowledgements (bounded by timeout
// per peer). Unlike a fire-and-forget Cancel, waiting makes the release
// atomic from the caller's point of view: when ReleaseAll returns, no
// J slot is still consumed by this key at any reachable peer.
func ReleaseAll(rt vtime.Runtime, net transport.Network, peers []proto.PeerInfo,
	key string, timeout time.Duration) {

	if len(peers) == 0 {
		return
	}
	mb := rt.NewMailbox()
	for _, p := range peers {
		p := p
		rt.Go("rs.release", func() {
			transport.RequestReply(net, p.RSAddr,
				transport.Message{Payload: proto.MustMarshal(&proto.Cancel{Key: key})}, timeout)
			mb.Push(struct{}{})
		})
	}
	for range peers {
		mb.PopTimeout(2*timeout + 15*time.Second)
	}
}
