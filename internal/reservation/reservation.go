package reservation

import (
	"errors"
	"sync"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Reasons sent in ReserveNOK replies.
const (
	ReasonDenied = "submitter denied by owner preferences"
	ReasonBusy   = "J limit reached"
	ReasonClosed = "service shutting down"
)

// ErrUnknownKey is returned when validating or consuming a key the RS
// does not hold.
var ErrUnknownKey = errors.New("reservation: unknown key")

// Config carries the owner preferences and service settings.
type Config struct {
	// Addr is the RS listen address.
	Addr string
	// J is the number of distinct applications the owner accepts to run
	// simultaneously (default 1).
	J int
	// P is the number of processes per application the owner accepts;
	// advertised in ReserveOK. Zero means the host runs no processes.
	P int
	// Deny lists submitter peer IDs refused by the owner.
	Deny []string
	// HoldTTL bounds how long an unstarted reservation is held.
	HoldTTL time.Duration
}

// Service is one peer's Reservation Service daemon.
type Service struct {
	rt  vtime.Runtime
	net transport.Network
	cfg Config

	mu       sync.Mutex
	ln       transport.Listener
	closed   bool
	held     map[string]*hold // by key
	running  map[string]bool  // job keys currently executing
	denySet  map[string]bool
	accepted int64 // stats: total accepted reservations
	rejected int64
	failed   int64 // reservations dropped by host failure (not conflicts)
}

type hold struct {
	key       string
	jobID     string
	submitter string
	expiresAt time.Time
}

// New creates an RS daemon (not yet started).
func New(rt vtime.Runtime, net transport.Network, cfg Config) *Service {
	if cfg.J <= 0 {
		cfg.J = 1
	}
	if cfg.HoldTTL <= 0 {
		cfg.HoldTTL = 60 * time.Second
	}
	// held/running are built on first write and denySet only when the
	// owner actually denies someone — lookups on nil maps are free, and
	// a 1M-host world carries three empty maps per host otherwise.
	var deny map[string]bool
	if len(cfg.Deny) > 0 {
		deny = make(map[string]bool, len(cfg.Deny))
		for _, id := range cfg.Deny {
			deny[id] = true
		}
	}
	return &Service{rt: rt, net: net, cfg: cfg, denySet: deny}
}

// Start binds the listener and spawns the accept loop.
func (s *Service) Start() error {
	ln, err := s.net.Listen(s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	// As in the MPD: spawn serving actors straight from the transport's
	// delivery callback when supported, so an idle RS parks no accept
	// goroutine.
	if cl, ok := ln.(transport.CallbackListener); ok {
		cl.OnConn(func(c transport.Conn) {
			s.rt.Go("rs.conn", func() { s.serveConn(c) })
		})
	} else {
		s.rt.Go("rs.accept", s.acceptLoop)
	}
	return nil
}

// Close stops the daemon. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

func (s *Service) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.rt.Go("rs.conn", func() { s.serveConn(c) })
	}
}

func (s *Service) serveConn(c transport.Conn) {
	defer c.Close()
	var scratch []byte
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		_, req, err := proto.Unmarshal(m.Payload)
		m.Release()
		if err != nil {
			return
		}
		var reply any
		switch r := req.(type) {
		case *proto.Reserve:
			reply = s.handleReserve(r)
		case *proto.Cancel:
			s.CancelKey(r.Key)
			reply = &proto.CancelAck{Key: r.Key}
		default:
			return
		}
		scratch, err = proto.AppendMarshal(scratch[:0], reply)
		if err != nil {
			return
		}
		if err := c.Send(transport.Message{Payload: scratch}); err != nil {
			return
		}
	}
}

// handleReserve applies §4.2 step 4: deny-list check, J-limit check,
// then hold the key and answer OK with the host's P value.
func (s *Service) handleReserve(r *proto.Reserve) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejected++
		return &proto.ReserveNOK{Key: r.Key, Reason: ReasonClosed}
	}
	if s.denySet[r.Submitter.ID] {
		s.rejected++
		return &proto.ReserveNOK{Key: r.Key, Reason: ReasonDenied}
	}
	s.expireLocked()
	// A duplicated Reserve frame (network-level duplication, or a retry
	// whose first copy was answered) for a key already consumed into a
	// running application is acknowledged without re-holding it — the
	// stale copy must not leak a hold that blocks the J slot until TTL.
	if _, run := s.running[r.Key]; run {
		return &proto.ReserveOK{Key: r.Key, P: s.cfg.P}
	}
	// The J limit counts applications: running ones plus distinct held
	// reservations. Re-reserving with the same key refreshes the hold.
	if _, refresh := s.held[r.Key]; !refresh {
		if len(s.running)+len(s.held) >= s.cfg.J {
			s.rejected++
			return &proto.ReserveNOK{Key: r.Key, Reason: ReasonBusy}
		}
	}
	if s.held == nil {
		s.held = make(map[string]*hold)
	}
	s.held[r.Key] = &hold{
		key:       r.Key,
		jobID:     r.JobID,
		submitter: r.Submitter.ID,
		expiresAt: s.rt.Now().Add(s.cfg.HoldTTL),
	}
	s.accepted++
	return &proto.ReserveOK{Key: r.Key, P: s.cfg.P}
}

func (s *Service) expireLocked() {
	now := s.rt.Now()
	for k, h := range s.held {
		if h.expiresAt.Before(now) {
			delete(s.held, k)
		}
	}
}

// ValidateKey reports whether the RS holds a reservation under this key
// (the launch-time check of §4.2 step 7).
func (s *Service) ValidateKey(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	_, ok := s.held[key]
	return ok
}

// Consume converts a held reservation into a running application. It is
// called by the local MPD when the job actually starts.
func (s *Service) Consume(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if _, ok := s.held[key]; !ok {
		return ErrUnknownKey
	}
	delete(s.held, key)
	if s.running == nil {
		s.running = make(map[string]bool)
	}
	s.running[key] = true
	return nil
}

// Release ends a running application (or drops a held key), freeing its
// J slot.
func (s *Service) Release(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, key)
	delete(s.held, key)
}

// FailAll models the host crashing: every held reservation and running
// application is dropped at once, freeing all J slots for when the host
// comes back. The releases are charged to a dedicated failure counter —
// NOT to the rejected counter — because the reservation-conflict rate
// (rejected / attempts) measures contention between submitters, and a
// host failure is not contention: counting it there would make churn
// sweeps misread infrastructure loss as scheduler pressure. It returns
// the number of reservations dropped.
func (s *Service) FailAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.held) + len(s.running)
	s.held = make(map[string]*hold)
	s.running = make(map[string]bool)
	s.failed += int64(n)
	return n
}

// FailedReleases returns the number of reservations dropped by host
// failures (FailAll), kept separate from the rejected counter.
func (s *Service) FailedReleases() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// CancelKey drops a held reservation (remote Cancel or local decision).
func (s *Service) CancelKey(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.held, key)
}

// Held returns the number of held (unstarted) reservations.
func (s *Service) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return len(s.held)
}

// Running returns the number of running applications.
func (s *Service) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// Stats returns (accepted, rejected) reservation counts.
func (s *Service) Stats() (accepted, rejected int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.rejected
}

// Client side: the submitter's RS broker (§4.2 steps 2-5).

// Offer is one positive answer gathered by Broker, in request order.
type Offer struct {
	Peer proto.PeerInfo
	P    int
}

// BrokerResult separates responders from the silent (dead) and refusing
// peers after a brokering round.
type BrokerResult struct {
	// Offers holds the OK answers, preserving the order in which peers
	// were asked (ascending latency), which becomes the rlist order.
	Offers []Offer
	// Refused lists peers that answered NOK.
	Refused []proto.PeerInfo
	// Dead lists peers that did not answer before the timeout.
	Dead []proto.PeerInfo
}

// Broker fans a Reserve request out to the RS of every candidate peer and
// gathers answers until the timeout (§4.2 step 3: "RS-RS brokering").
// The fan-out is concurrent; the result preserves candidate order.
func Broker(rt vtime.Runtime, net transport.Network, candidates []proto.PeerInfo,
	req proto.Reserve, timeout time.Duration) BrokerResult {

	type answer struct {
		idx  int
		dead bool
		ok   bool
		p    int
	}
	mb := rt.NewMailbox()
	for i, cand := range candidates {
		i, cand := i, cand
		rt.Go("rs.broker", func() {
			r := req // copy; each request carries the same key
			a := answer{idx: i, dead: true}
			reply, err := transport.RequestReply(net, cand.RSAddr,
				transport.Message{Payload: proto.MustMarshal(&r)}, timeout)
			if err == nil {
				if _, msg, err := proto.Unmarshal(reply.Payload); err == nil {
					switch m := msg.(type) {
					case *proto.ReserveOK:
						a.dead, a.ok, a.p = false, true, m.P
					case *proto.ReserveNOK:
						a.dead, a.ok = false, false
					}
				}
				reply.Release()
			}
			mb.Push(a)
		})
	}

	// Every worker pushes exactly one answer within roughly the timeout
	// (RequestReply is itself bounded); the margin covers dial time.
	results := make([]*answer, len(candidates))
	for range candidates {
		v, err := mb.PopTimeout(2*timeout + 15*time.Second)
		if err != nil {
			break
		}
		a := v.(answer)
		results[a.idx] = &a
	}

	var out BrokerResult
	for i, cand := range candidates {
		a := results[i]
		switch {
		case a == nil || a.dead:
			out.Dead = append(out.Dead, cand)
		case a.ok:
			out.Offers = append(out.Offers, Offer{Peer: cand, P: a.p})
		default:
			out.Refused = append(out.Refused, cand)
		}
	}
	return out
}
