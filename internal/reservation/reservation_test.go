package reservation

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

func world(t *testing.T, hosts ...string) (*vtime.Scheduler, *simnet.Net) {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hs := make(map[string]string, len(hosts))
	for _, h := range hosts {
		hs[h] = "site-" + h
	}
	n := simnet.New(s, &simnet.StaticTopology{HostSite: hs, DefLat: 2 * time.Millisecond},
		simnet.Config{Seed: 9, NICBps: 1e9})
	return s, n
}

func submitter() proto.PeerInfo {
	return proto.PeerInfo{ID: "frontal", MPDAddr: "frontal:9000", RSAddr: "frontal:9001"}
}

func reserveVia(t *testing.T, s *vtime.Scheduler, n *simnet.Net, from string, req *proto.Reserve, rsAddr string) any {
	t.Helper()
	reply, err := transport.RequestReply(n.Node(from), rsAddr,
		transport.Message{Payload: proto.MustMarshal(req)}, time.Second)
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return msg
}

func TestReserveOKCarriesP(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 4})
	s.Go("main", func() {
		if err := rs.Start(); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		msg := reserveVia(t, s, n, "frontal", &proto.Reserve{
			Key: "k1", JobID: "job1", Submitter: submitter(), N: 10}, "h1:9001")
		ok, isOK := msg.(*proto.ReserveOK)
		if !isOK || ok.P != 4 || ok.Key != "k1" {
			t.Errorf("reply = %+v", msg)
		}
		if rs.Held() != 1 {
			t.Errorf("held = %d", rs.Held())
		}
		rs.Close()
	})
	s.Wait()
}

func TestJLimitRejectsSecondApplication(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	s.Go("main", func() {
		rs.Start()
		m1 := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", JobID: "j1", Submitter: submitter()}, "h1:9001")
		if _, isOK := m1.(*proto.ReserveOK); !isOK {
			t.Errorf("first reserve rejected: %+v", m1)
		}
		m2 := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "b", JobID: "j2", Submitter: submitter()}, "h1:9001")
		nok, isNOK := m2.(*proto.ReserveNOK)
		if !isNOK || nok.Reason != ReasonBusy {
			t.Errorf("second reserve = %+v", m2)
		}
		// Same key again is a refresh, not a second application.
		m3 := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", JobID: "j1", Submitter: submitter()}, "h1:9001")
		if _, isOK := m3.(*proto.ReserveOK); !isOK {
			t.Errorf("refresh rejected: %+v", m3)
		}
		rs.Close()
	})
	s.Wait()
}

func TestDenyList(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 2, P: 2, Deny: []string{"frontal"}})
	s.Go("main", func() {
		rs.Start()
		m := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", Submitter: submitter()}, "h1:9001")
		nok, isNOK := m.(*proto.ReserveNOK)
		if !isNOK || nok.Reason != ReasonDenied {
			t.Errorf("reply = %+v", m)
		}
		a, r := rs.Stats()
		if a != 0 || r != 1 {
			t.Errorf("stats = %d/%d", a, r)
		}
		rs.Close()
	})
	s.Wait()
}

func TestHoldExpiry(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2, HoldTTL: 5 * time.Second})
	s.Go("main", func() {
		rs.Start()
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", Submitter: submitter()}, "h1:9001")
		if !rs.ValidateKey("a") {
			t.Error("key invalid right after reserve")
		}
		s.Sleep(6 * time.Second)
		if rs.ValidateKey("a") {
			t.Error("key still valid after TTL")
		}
		// The expired hold freed the J slot.
		m := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "b", Submitter: submitter()}, "h1:9001")
		if _, isOK := m.(*proto.ReserveOK); !isOK {
			t.Errorf("slot not freed by expiry: %+v", m)
		}
		rs.Close()
	})
	s.Wait()
}

func TestConsumeAndRelease(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	s.Go("main", func() {
		rs.Start()
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", Submitter: submitter()}, "h1:9001")
		if err := rs.Consume("a"); err != nil {
			t.Errorf("consume: %v", err)
		}
		if rs.Running() != 1 || rs.Held() != 0 {
			t.Errorf("running=%d held=%d", rs.Running(), rs.Held())
		}
		if err := rs.Consume("a"); err != ErrUnknownKey {
			t.Errorf("double consume err = %v", err)
		}
		// Running app occupies the J slot.
		m := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "b", Submitter: submitter()}, "h1:9001")
		if _, isNOK := m.(*proto.ReserveNOK); !isNOK {
			t.Errorf("J not enforced while running: %+v", m)
		}
		rs.Release("a")
		m2 := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "c", Submitter: submitter()}, "h1:9001")
		if _, isOK := m2.(*proto.ReserveOK); !isOK {
			t.Errorf("release did not free slot: %+v", m2)
		}
		rs.Close()
	})
	s.Wait()
}

// TestFailAllIsNotAConflict pins the churn accounting contract: a
// release caused by the host crashing frees every slot but must not
// bump the rejected counter that feeds the reservation-conflict rate.
func TestFailAllIsNotAConflict(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 2, P: 2})
	s.Go("main", func() {
		rs.Start()
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", Submitter: submitter()}, "h1:9001")
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "b", Submitter: submitter()}, "h1:9001")
		if err := rs.Consume("a"); err != nil {
			t.Errorf("consume: %v", err)
		}
		_, rejBefore := rs.Stats()

		if dropped := rs.FailAll(); dropped != 2 {
			t.Errorf("FailAll dropped %d reservations, want 2 (one held, one running)", dropped)
		}
		if rs.Held() != 0 || rs.Running() != 0 {
			t.Errorf("after crash: held=%d running=%d", rs.Held(), rs.Running())
		}
		if _, rej := rs.Stats(); rej != rejBefore {
			t.Errorf("host failure counted as conflict: rejected %d -> %d", rejBefore, rej)
		}
		if rs.FailedReleases() != 2 {
			t.Errorf("failed releases = %d, want 2", rs.FailedReleases())
		}
		// The rebooted host accepts fresh reservations immediately.
		m := reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "c", Submitter: submitter()}, "h1:9001")
		if _, isOK := m.(*proto.ReserveOK); !isOK {
			t.Errorf("crashed host did not free its slots: %+v", m)
		}
		rs.Close()
	})
	s.Wait()
}

func TestRemoteCancel(t *testing.T) {
	s, n := world(t, "frontal", "h1")
	rs := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	s.Go("main", func() {
		rs.Start()
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "a", Submitter: submitter()}, "h1:9001")
		reply, err := transport.RequestReply(n.Node("frontal"), "h1:9001",
			transport.Message{Payload: proto.MustMarshal(&proto.Cancel{Key: "a"})}, time.Second)
		if err != nil {
			t.Errorf("cancel: %v", err)
			return
		}
		_, msg, _ := proto.Unmarshal(reply.Payload)
		if ack, ok := msg.(*proto.CancelAck); !ok || ack.Key != "a" {
			t.Errorf("cancel reply = %+v", msg)
		}
		if rs.Held() != 0 {
			t.Errorf("held = %d after cancel", rs.Held())
		}
		rs.Close()
	})
	s.Wait()
}

func TestBrokerGathersInCandidateOrder(t *testing.T) {
	hosts := []string{"frontal", "h1", "h2", "h3", "h4"}
	s, n := world(t, hosts...)
	var services []*Service
	for i, h := range hosts[1:] {
		cfg := Config{Addr: h + ":9001", J: 1, P: i + 1}
		if h == "h3" {
			cfg.Deny = []string{"frontal"} // h3 refuses
		}
		services = append(services, New(s, n.Node(h), cfg))
	}
	var res BrokerResult
	s.Go("main", func() {
		for _, rs := range services {
			rs.Start()
		}
		var cands []proto.PeerInfo
		for _, h := range hosts[1:] {
			cands = append(cands, proto.PeerInfo{ID: h, RSAddr: h + ":9001"})
		}
		res = Broker(s, n.Node("frontal"), cands,
			proto.Reserve{Key: "k", JobID: "j", Submitter: submitter(), N: 4}, 2*time.Second)
		for _, rs := range services {
			rs.Close()
		}
	})
	s.Wait()
	if len(res.Offers) != 3 {
		t.Fatalf("offers = %+v", res.Offers)
	}
	// Candidate order h1, h2, h4 preserved with their P values 1, 2, 4.
	wantIDs := []string{"h1", "h2", "h4"}
	wantP := []int{1, 2, 4}
	for i, o := range res.Offers {
		if o.Peer.ID != wantIDs[i] || o.P != wantP[i] {
			t.Fatalf("offer %d = %+v", i, o)
		}
	}
	if len(res.Refused) != 1 || res.Refused[0].ID != "h3" {
		t.Fatalf("refused = %+v", res.Refused)
	}
	if len(res.Dead) != 0 {
		t.Fatalf("dead = %+v", res.Dead)
	}
}

func TestBrokerMarksSilentPeersDead(t *testing.T) {
	s, n := world(t, "frontal", "h1", "h2")
	rs1 := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	var res BrokerResult
	var took time.Duration
	s.Go("main", func() {
		rs1.Start()
		// h2 exists in the topology but runs no RS.
		cands := []proto.PeerInfo{
			{ID: "h1", RSAddr: "h1:9001"},
			{ID: "h2", RSAddr: "h2:9001"},
		}
		start := s.Elapsed()
		res = Broker(s, n.Node("frontal"), cands,
			proto.Reserve{Key: "k", Submitter: submitter()}, time.Second)
		took = s.Elapsed() - start
		rs1.Close()
	})
	s.Wait()
	if len(res.Offers) != 1 || res.Offers[0].Peer.ID != "h1" {
		t.Fatalf("offers = %+v", res.Offers)
	}
	if len(res.Dead) != 1 || res.Dead[0].ID != "h2" {
		t.Fatalf("dead = %+v", res.Dead)
	}
	if took > 5*time.Second {
		t.Fatalf("broker took %v; refused dial should fail fast", took)
	}
}

func TestBrokerLargeFanOut(t *testing.T) {
	const k = 120
	hosts := []string{"frontal"}
	for i := 0; i < k; i++ {
		hosts = append(hosts, fmt.Sprintf("h%03d", i))
	}
	s, n := world(t, hosts...)
	var services []*Service
	for _, h := range hosts[1:] {
		services = append(services, New(s, n.Node(h), Config{Addr: h + ":9001", J: 1, P: 2}))
	}
	var res BrokerResult
	s.Go("main", func() {
		for _, rs := range services {
			rs.Start()
		}
		var cands []proto.PeerInfo
		for _, h := range hosts[1:] {
			cands = append(cands, proto.PeerInfo{ID: h, RSAddr: h + ":9001"})
		}
		res = Broker(s, n.Node("frontal"), cands,
			proto.Reserve{Key: "k", Submitter: submitter(), N: k}, 5*time.Second)
		for _, rs := range services {
			rs.Close()
		}
	})
	s.Wait()
	if len(res.Offers) != k {
		t.Fatalf("offers = %d/%d (dead=%d refused=%d)", len(res.Offers), k, len(res.Dead), len(res.Refused))
	}
}
