package reservation

import (
	"errors"
	"testing"
	"time"

	"p2pmpi/internal/proto"
)

func peerInfo(h string) proto.PeerInfo {
	return proto.PeerInfo{ID: h, Site: "site-" + h, MPDAddr: h + ":9000", RSAddr: h + ":9001"}
}

// atLeast returns an Enough predicate demanding k offers.
func atLeast(k int) func([]Offer) bool {
	return func(offers []Offer) bool { return len(offers) >= k }
}

func TestAcquireCancelsSurplusBeyondNeed(t *testing.T) {
	hosts := []string{"frontal", "h1", "h2", "h3"}
	s, n := world(t, hosts...)
	var services []*Service
	for _, h := range hosts[1:] {
		services = append(services, New(s, n.Node(h), Config{Addr: h + ":9001", J: 1, P: 2}))
	}
	s.Go("main", func() {
		for _, rs := range services {
			rs.Start()
		}
		var cands []proto.PeerInfo
		for _, h := range hosts[1:] {
			cands = append(cands, peerInfo(h))
		}
		res, stats, err := Acquire(s, n.Node("frontal"), cands, AcquireSpec{
			Req:     proto.Reserve{Key: "k", JobID: "j", Submitter: submitter()},
			Timeout: time.Second,
			Need:    2,
		})
		if err != nil {
			t.Errorf("acquire: %v", err)
		}
		if len(res.Offers) != 2 || res.Offers[0].Peer.ID != "h1" || res.Offers[1].Peer.ID != "h2" {
			t.Errorf("offers = %+v", res.Offers)
		}
		if stats.OK != 3 || stats.NOK != 0 || stats.Rounds != 1 {
			t.Errorf("stats = %+v", stats)
		}
		// The surplus host h3 must have had its hold cancelled.
		if services[2].Held() != 0 {
			t.Errorf("h3 still holds %d reservations", services[2].Held())
		}
		if services[0].Held() != 1 || services[1].Held() != 1 {
			t.Errorf("kept hosts holds = %d/%d", services[0].Held(), services[1].Held())
		}
		for _, rs := range services {
			rs.Close()
		}
	})
	s.Wait()
}

func TestAcquireRetriesRefusedPeersAfterBackoff(t *testing.T) {
	hosts := []string{"frontal", "h1", "h2"}
	s, n := world(t, hosts...)
	rs1 := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	rs2 := New(s, n.Node("h2"), Config{Addr: "h2:9001", J: 1, P: 2})
	s.Go("main", func() {
		rs1.Start()
		rs2.Start()
		// A competing job occupies h2's only J slot...
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "other", Submitter: submitter()}, "h2:9001")
		// ...and releases it 3 seconds from now, while Acquire is in its
		// first backoff pause.
		s.Go("competitor", func() {
			s.Sleep(3 * time.Second)
			rs2.CancelKey("other")
		})
		res, stats, err := Acquire(s, n.Node("frontal"), []proto.PeerInfo{peerInfo("h1"), peerInfo("h2")},
			AcquireSpec{
				Req:     proto.Reserve{Key: "k", JobID: "j", Submitter: submitter()},
				Timeout: time.Second,
				Need:    2,
				Enough:  atLeast(2),
				Retries: 2,
				Backoff: 4 * time.Second,
			})
		if err != nil {
			t.Errorf("acquire: %v", err)
		}
		if len(res.Offers) != 2 {
			t.Errorf("offers = %+v", res.Offers)
		}
		if stats.Rounds != 2 || stats.NOK != 1 || stats.OK != 2 {
			t.Errorf("stats = %+v", stats)
		}
		rs1.Close()
		rs2.Close()
	})
	s.Wait()
}

// TestAcquireRetryPreservesLatencyOrder makes the NEAREST candidate
// lose round one and win on retry: the returned offers must still come
// back in candidate (ascending latency) order, or the Need cut would
// keep a farther host over a nearer one.
func TestAcquireRetryPreservesLatencyOrder(t *testing.T) {
	hosts := []string{"frontal", "h1", "h2", "h3"}
	s, n := world(t, hosts...)
	var services []*Service
	for _, h := range hosts[1:] {
		services = append(services, New(s, n.Node(h), Config{Addr: h + ":9001", J: 1, P: 2}))
	}
	rs1 := services[0]
	s.Go("main", func() {
		for _, rs := range services {
			rs.Start()
		}
		// h1 — the closest candidate — is busy during round one only.
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "other", Submitter: submitter()}, "h1:9001")
		s.Go("competitor", func() {
			s.Sleep(3 * time.Second)
			rs1.CancelKey("other")
		})
		res, _, err := Acquire(s, n.Node("frontal"),
			[]proto.PeerInfo{peerInfo("h1"), peerInfo("h2"), peerInfo("h3")},
			AcquireSpec{
				Req:     proto.Reserve{Key: "k", JobID: "j", Submitter: submitter()},
				Timeout: time.Second,
				Need:    2,
				Enough:  atLeast(3),
				Retries: 2,
				Backoff: 4 * time.Second,
			})
		if err != nil {
			t.Errorf("acquire: %v", err)
		}
		// The cut must keep h1 and h2 — not h2 and h3, the round-one
		// winners.
		if len(res.Offers) != 2 || res.Offers[0].Peer.ID != "h1" || res.Offers[1].Peer.ID != "h2" {
			t.Errorf("offers = %+v, want [h1 h2]", res.Offers)
		}
		if services[2].Held() != 0 {
			t.Errorf("h3 still holds %d reservations", services[2].Held())
		}
		for _, rs := range services {
			rs.Close()
		}
	})
	s.Wait()
}

func TestAcquireAtomicFailureReleasesEverything(t *testing.T) {
	hosts := []string{"frontal", "h1", "h2"}
	s, n := world(t, hosts...)
	rs1 := New(s, n.Node("h1"), Config{Addr: "h1:9001", J: 1, P: 2})
	rs2 := New(s, n.Node("h2"), Config{Addr: "h2:9001", J: 1, P: 2})
	s.Go("main", func() {
		rs1.Start()
		rs2.Start()
		// h2 is permanently busy: the acquisition can never reach 2 offers.
		reserveVia(t, s, n, "frontal", &proto.Reserve{Key: "other", Submitter: submitter()}, "h2:9001")
		_, stats, err := Acquire(s, n.Node("frontal"), []proto.PeerInfo{peerInfo("h1"), peerInfo("h2")},
			AcquireSpec{
				Req:     proto.Reserve{Key: "k", JobID: "j", Submitter: submitter()},
				Timeout: time.Second,
				Need:    2,
				Enough:  atLeast(2),
				Retries: 1,
				Backoff: time.Second,
			})
		if !errors.Is(err, ErrContended) {
			t.Errorf("err = %v, want ErrContended", err)
		}
		if stats.Rounds != 2 || stats.NOK != 2 {
			t.Errorf("stats = %+v", stats)
		}
		// All-or-nothing: h1's obtained hold was released again.
		if rs1.Held() != 0 {
			t.Errorf("h1 still holds %d reservations after failed acquire", rs1.Held())
		}
		// Only the competitor's hold remains at h2.
		if rs2.Held() != 1 {
			t.Errorf("h2 holds = %d, want the competitor's 1", rs2.Held())
		}
		rs1.Close()
		rs2.Close()
	})
	s.Wait()
}

func TestConflictsRate(t *testing.T) {
	c := Conflicts{OK: 6, NOK: 3, Dead: 1}
	if got := c.Attempts(); got != 10 {
		t.Fatalf("attempts = %d", got)
	}
	if got := c.Rate(); got != 0.3 {
		t.Fatalf("rate = %v", got)
	}
	var zero Conflicts
	if zero.Rate() != 0 {
		t.Fatal("zero rate")
	}
	zero.Add(c)
	if zero.NOK != 3 || zero.OK != 6 {
		t.Fatalf("add = %+v", zero)
	}
}
