// Package reservation implements the Reservation Service (RS) introduced
// for co-allocation (§3.2, §4.2): the per-peer daemon that negotiates
// resource holds between submitters and hosts.
//
// The host-side RS enforces the owner's preferences (§4.1): the number J
// of simultaneous applications, and a deny list of submitter IDs. It
// answers Reserve with OK (carrying the host's P setting) or NOK, holds
// the reservation under its unique hash key until it is started,
// cancelled or expired, and later validates the key presented by the
// launch request (§4.2 step 7).
//
// The submitter side offers two layers. Broker is the paper's one-shot
// RS-RS brokering round: a concurrent Reserve fan-out that partitions
// candidates into offers, refusals and dead peers. Acquire builds atomic
// multi-host acquisition on top of it for the multi-job scheduler:
// offers accumulate across backoff-retry rounds, surplus reservations
// are cancelled, and a round that cannot satisfy the caller releases
// every obtained hold again — all-or-nothing, so a failed acquisition
// never leaks J slots. ReleaseAll is the matching synchronous cancel
// fan-out.
package reservation
