package exp

import (
	"testing"

	"p2pmpi/internal/core"
)

// TestFig4ISCrossover checks the headline claim of Figure 4 right: IS
// favours spread at 32 processes (single-site placement, no memory
// contention) and concentrate at 64 (four spread processes leave nancy
// and WAN latency dominates).
func TestFig4ISCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid and runs Class-B IS patterns")
	}
	w := bootedWorld(t)

	conc, err := NASSweep(w, "is-model-B", core.Concentrate, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := NASSweep(w, "is-model-B", core.Spread, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	c32, c64 := conc[0].Seconds, conc[1].Seconds
	s32, s64 := spread[0].Seconds, spread[1].Seconds

	if s32 >= c32 {
		t.Errorf("IS at 32: spread %.2fs should beat concentrate %.2fs", s32, c32)
	}
	if s64 <= c64 {
		t.Errorf("IS at 64: concentrate %.2fs should beat spread %.2fs", c64, s64)
	}
	// The spread curve must rise sharply between 32 and 64 (the paper's
	// WAN-latency slowdown); concentrate must not rise.
	if s64 < 1.5*s32 {
		t.Errorf("spread did not degrade: %.2fs -> %.2fs", s32, s64)
	}
	if c64 > 1.2*c32 {
		t.Errorf("concentrate not roughly constant: %.2fs -> %.2fs", c32, c64)
	}
}

// TestFig4EPEquilibrium checks Figure 4 left at the top end: by 512
// processes the two strategies are within ~15% of each other (the
// paper's "equilibrium").
func TestFig4EPEquilibrium(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid")
	}
	w := bootedWorld(t)
	conc, err := NASSweep(w, "ep-model-B", core.Concentrate, []int{512})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := NASSweep(w, "ep-model-B", core.Spread, []int{512})
	if err != nil {
		t.Fatal(err)
	}
	c, s := conc[0].Seconds, spread[0].Seconds
	ratio := s / c
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("EP at 512: spread/concentrate = %.3f, want within 15%% of 1", ratio)
	}
}
