package exp

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Wall-clock sweep benchmarks: the engine-level microbenchmarks
// (vtime.BenchmarkEventThroughput, simnet.BenchmarkMessageDelivery) can
// look healthy while an experiment family rots through a slow layer
// between them, so the units CI actually cares about — one full sweep —
// are benchmarked too.

func scaleSweep2000Config() ScaleConfig {
	base, err := grid.ParseTopologySpec("synth:S=12,H=400")
	if err != nil {
		panic(err)
	}
	return ScaleConfig{Base: base, HostCounts: []int{2000}, N: 32}
}

// BenchmarkScaleSweep2000 runs the flagship beyond-the-paper workload:
// every registered strategy submitting on a freshly booted 2000-host
// synthetic world (the `gridbench -exp scale -hosts 2000` path).
func BenchmarkScaleSweep2000(b *testing.B) {
	cfg := scaleSweep2000Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScaleSweep(DefaultOptions(42), cfg, DefaultWorkers()); err != nil {
			b.Fatal(err)
		}
	}
}

func churnPointConfig() ChurnConfig {
	base, err := grid.ParseTopologySpec("synth:S=3,H=8")
	if err != nil {
		panic(err)
	}
	return ChurnConfig{
		Base:       base,
		Strategies: nil, // default: all; narrowed below
		MTBFs:      []time.Duration{300 * time.Second},
		Rs:         []int{1},
		N:          6,
		Jobs:       3,
		JobSeconds: 40,
		MTTR:       60 * time.Second,
		Detect:     10 * time.Second,
	}
}

// BenchmarkChurnSweepPoint runs one survivability sweep point (the CI
// churn smoke shape): a small world under seeded failures, one MTBF ×
// replication coordinate, three spin jobs with the detector armed.
func BenchmarkChurnSweepPoint(b *testing.B) {
	cfg := churnPointConfig()
	cfg.Strategies = []core.Strategy{core.Spread}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ChurnSweep(DefaultOptions(42), cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitPerfBenchJSON writes BENCH_perf.json — the engine's perf
// trajectory record, one point per commit in CI — when BENCH_PERF_JSON
// names the output path. It measures the four numbers the fast-path
// work is accountable for: discrete-event throughput, simulated message
// throughput, steady-state allocations on the codec and delivery paths,
// and the 2000-host scale sweep's wall time. See docs/PERF.md for how
// to read it.
func TestEmitPerfBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_PERF_JSON")
	if out == "" {
		t.Skip("BENCH_PERF_JSON not set")
	}

	// Discrete-event throughput: one actor sleeping through virtual
	// ticks, the vtime.BenchmarkEventThroughput body.
	evt := testing.Benchmark(func(b *testing.B) {
		s := vtime.New()
		defer s.Shutdown()
		s.Go("ticker", func() {
			for i := 0; i < b.N; i++ {
				s.Sleep(time.Millisecond)
			}
		})
		b.ResetTimer()
		s.Wait()
	})
	evtNs := float64(evt.T.Nanoseconds()) / float64(evt.N)

	// Simulated message throughput: the simnet.BenchmarkMessageDelivery
	// body (burst of sends across a WAN link drained by one receiver).
	msg := testing.Benchmark(func(b *testing.B) {
		s := vtime.New()
		defer s.Shutdown()
		topo := &simnet.StaticTopology{
			HostSite: map[string]string{"a1": "east", "b1": "west"},
			DefLat:   5 * time.Millisecond,
		}
		n := simnet.New(s, topo, simnet.DefaultConfig(1))
		s.Go("server", func() {
			l, _ := n.Node("b1").Listen("b1:1")
			c, _ := l.Accept()
			for i := 0; i < b.N; i++ {
				m, err := c.Recv()
				if err != nil {
					return
				}
				m.Release()
			}
		})
		s.Go("client", func() {
			s.Sleep(time.Millisecond)
			c, _ := n.Node("a1").Dial("b1:1")
			m := transport.Message{Payload: []byte("0123456789abcdef")}
			for i := 0; i < b.N; i++ {
				c.Send(m)
			}
		})
		b.ResetTimer()
		s.Wait()
	})
	msgNs := float64(msg.T.Nanoseconds()) / float64(msg.N)

	// Steady-state allocations, measured exactly as the enforcing tests
	// (proto.TestRoundTripZeroAllocSteadyState, simnet.TestMessageDelivery-
	// ZeroAllocSteadyState) do.
	protoAllocs := func() float64 {
		scratch := make([]byte, 0, 128)
		req := &proto.JobPing{Nonce: 12345, JobID: "job-42"}
		var got proto.JobPing
		scratch, _ = proto.AppendMarshal(scratch[:0], req)
		proto.DecodeInto(scratch, &got)
		return testing.AllocsPerRun(200, func() {
			scratch, _ = proto.AppendMarshal(scratch[:0], req)
			proto.DecodeInto(scratch, &got)
		})
	}()
	simnetAllocs := func() float64 {
		s := vtime.New()
		defer s.Shutdown()
		topo := &simnet.StaticTopology{
			HostSite: map[string]string{"a1": "east", "b1": "west"},
			DefLat:   5 * time.Millisecond,
		}
		n := simnet.New(s, topo, simnet.DefaultConfig(1))
		s.Go("server", func() {
			l, _ := n.Node("b1").Listen("b1:1")
			c, _ := l.Accept()
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				m.Release()
			}
		})
		var client transport.Conn
		s.Go("client", func() { client, _ = n.Node("a1").Dial("b1:1") })
		s.Wait()
		payload := []byte("0123456789abcdef")
		step := func() {
			client.Send(transport.Message{Payload: payload})
			s.Wait()
		}
		for i := 0; i < 200; i++ {
			step()
		}
		return testing.AllocsPerRun(500, step)
	}()

	// The flagship sweep, timed on the wall clock like gridbench runs it.
	cfg := scaleSweep2000Config()
	start := time.Now()
	pts, err := ScaleSweep(DefaultOptions(42), cfg, DefaultWorkers())
	if err != nil {
		t.Fatal(err)
	}
	sweepWall := time.Since(start)

	record := map[string]any{
		"event_ns_per_op":               evtNs,
		"events_per_sec":                1e9 / evtNs,
		"message_ns_per_op":             msgNs,
		"msgs_per_sec":                  1e9 / msgNs,
		"proto_roundtrip_allocs_per_op": protoAllocs,
		"simnet_delivery_allocs_per_op": simnetAllocs,
		"scale_sweep_hosts":             pts[0].Hosts,
		"scale_sweep_points":            len(pts),
		"scale_sweep_wall_seconds":      sweepWall.Seconds(),
	}
	blob, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f events/s, %.0f msgs/s, sweep %.2fs",
		out, 1e9/evtNs, 1e9/msgNs, sweepWall.Seconds())
}
