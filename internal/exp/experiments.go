package exp

import (
	"fmt"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
)

// SitePoint is one x-value of Figures 2 and 3: where the processes of an
// n-process request landed.
type SitePoint struct {
	N           int
	HostsBySite map[string]int
	CoresBySite map[string]int // "allocated cores" = mapped processes
}

// TimePoint is one x-value of Figure 4.
type TimePoint struct {
	N        int
	Strategy core.Strategy
	Seconds  float64
}

// CoAllocationSweep reproduces Figure 2 (strategy = Concentrate) or
// Figure 3 (strategy = Spread): it submits the hostname program for
// n = 100..600 step 50 against a booted world and records the per-site
// allocation of every run.
func CoAllocationSweep(w *World, strategy core.Strategy, ns []int) ([]SitePoint, error) {
	if ns == nil {
		ns = DefaultFig23Ns()
	}
	var out []SitePoint
	for _, n := range ns {
		res, err := w.Submit(mpd.JobSpec{
			Program:  "hostname",
			N:        n,
			R:        1,
			Strategy: strategy,
			Timeout:  10 * time.Minute,
		})
		if err != nil {
			return out, fmt.Errorf("n=%d: %w", n, err)
		}
		if f := res.Failures(); f > 0 {
			return out, fmt.Errorf("n=%d: %d slots failed", n, f)
		}
		out = append(out, SitePoint{
			N:           n,
			HostsBySite: res.Assignment.HostsBySite(),
			CoresBySite: res.Assignment.ProcsBySite(),
		})
	}
	return out, nil
}

// DefaultFig23Ns returns the paper's x-axis: 100..600 step 50.
func DefaultFig23Ns() []int {
	var ns []int
	for n := 100; n <= 600; n += 50 {
		ns = append(ns, n)
	}
	return ns
}

// DefaultFig4EPNs returns the EP process counts of Figure 4 (left).
func DefaultFig4EPNs() []int { return []int{32, 64, 128, 256, 512} }

// DefaultFig4ISNs returns the IS process counts of Figure 4 (right).
func DefaultFig4ISNs() []int { return []int{32, 64, 128} }

// NASSweep reproduces one curve of Figure 4: the named model program
// under one strategy across process counts. Each run reports the
// maximum process time (the paper's "Total time").
func NASSweep(w *World, program string, strategy core.Strategy, ns []int) ([]TimePoint, error) {
	var out []TimePoint
	for _, n := range ns {
		res, err := w.Submit(mpd.JobSpec{
			Program:  program,
			N:        n,
			R:        1,
			Strategy: strategy,
			Timeout:  30 * time.Minute,
		})
		if err != nil {
			return out, fmt.Errorf("%s n=%d: %w", program, n, err)
		}
		if f := res.Failures(); f > 0 {
			return out, fmt.Errorf("%s n=%d: %d slots failed", program, n, f)
		}
		raw, ok := res.OutputOf(0, 0)
		if !ok {
			return out, fmt.Errorf("%s n=%d: rank 0 reported nothing", program, n)
		}
		d, err := nas.ParseModelOutput(raw)
		if err != nil {
			return out, err
		}
		out = append(out, TimePoint{N: n, Strategy: strategy, Seconds: d.Seconds()})
	}
	return out, nil
}

// Fig2 runs the concentrate co-allocation sweep on a fresh world.
func Fig2(opts Options, ns []int) ([]SitePoint, error) {
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return nil, err
	}
	return CoAllocationSweep(w, core.Concentrate, ns)
}

// Fig3 runs the spread co-allocation sweep on a fresh world.
func Fig3(opts Options, ns []int) ([]SitePoint, error) {
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return nil, err
	}
	return CoAllocationSweep(w, core.Spread, ns)
}

// Fig4EP runs both strategies of the EP benchmark (Figure 4, left)
// across a pool of up to `workers` OS threads (one world per strategy).
func Fig4EP(opts Options, ns []int, workers int) ([]TimePoint, error) {
	if ns == nil {
		ns = DefaultFig4EPNs()
	}
	return fig4("ep-model-B", opts, ns, workers)
}

// Fig4IS runs both strategies of the IS benchmark (Figure 4, right).
func Fig4IS(opts Options, ns []int, workers int) ([]TimePoint, error) {
	if ns == nil {
		ns = DefaultFig4ISNs()
	}
	return fig4("is-model-B", opts, ns, workers)
}

// fig4 measures both strategy curves. Each strategy owns an independent
// world, so the two can run in parallel on separate OS threads; the
// output is assembled in fixed strategy order and is byte-identical to
// a sequential (workers = 1) run.
func fig4(program string, opts Options, ns []int, workers int) ([]TimePoint, error) {
	strategies := []core.Strategy{core.Concentrate, core.Spread}
	results := make([][]TimePoint, len(strategies))
	err := runPool(len(strategies), workers, func(i int) error {
		w := NewWorld(opts)
		if err := w.Boot(); err != nil {
			w.Close()
			return err
		}
		pts, err := NASSweep(w, program, strategies[i], ns)
		w.Close()
		if err != nil {
			return err
		}
		results[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []TimePoint
	for _, pts := range results {
		out = append(out, pts...)
	}
	return out, nil
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Site    string
	Cluster string
	CPU     string
	Nodes   int
	CPUs    int
	Cores   int
}

// Table1 regenerates the resource inventory from the grid model.
func Table1() []Table1Row {
	g := grid.Grid5000()
	rows := make([]Table1Row, 0, len(g.Clusters))
	for _, c := range g.Clusters {
		rows = append(rows, Table1Row{
			Site: c.Site, Cluster: c.Name, CPU: c.CPU,
			Nodes: c.Nodes, CPUs: c.CPUs, Cores: c.Cores,
		})
	}
	return rows
}
