package exp

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

// Golden-trace regression tests: the committed CSVs under testdata/ pin
// the exact output of one tiny fixed-seed run of each experiment
// family. Every run here must reproduce them byte for byte — whatever
// the worker count, and (for the static scale world) whatever the
// supernode-federation width. This replaces the ad-hoc manual golden
// comparisons earlier PRs did by hand: any change that moves a virtual
// timestamp, a jitter draw or a placement now fails visibly in CI, and
// intentional changes regenerate the files with
//
//	UPDATE_GOLDEN=1 go test -run TestGolden ./internal/exp/
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from the committed golden:\n--- want ---\n%s--- got ---\n%s",
			name, want, got)
	}
}

func goldenBase(t *testing.T) grid.TopologySpec {
	t.Helper()
	spec, err := grid.ParseTopologySpec("synth:S=3,H=8")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestGoldenScaleTrace: the scale family, across worker counts 1/4/8
// and federation widths 1/4 — six runs, one committed byte string.
func TestGoldenScaleTrace(t *testing.T) {
	cfg := ScaleConfig{Base: goldenBase(t), N: 6}
	var first string
	for _, k := range []int{1, 4} {
		for _, workers := range []int{1, 4, 8} {
			c := cfg
			c.Supernodes = []int{k}
			pts, err := ScaleSweep(DefaultOptions(42), c, workers)
			if err != nil {
				t.Fatalf("sn=%d workers=%d: %v", k, workers, err)
			}
			csv := ScalePointsCSV(pts)
			if first == "" {
				first = csv
				continue
			}
			if csv != first {
				t.Fatalf("sn=%d workers=%d diverged:\n--- first ---\n%s--- this run ---\n%s",
					k, workers, first, csv)
			}
		}
	}
	goldenCompare(t, "golden_scale.csv", first)
}

// TestGoldenChurnTrace: one survivability point per R, across worker
// counts — the fault-injection timeline, detector probes, failovers and
// re-books all replay identically.
func TestGoldenChurnTrace(t *testing.T) {
	cfg := ChurnConfig{
		Base:       goldenBase(t),
		Strategies: []core.Strategy{core.Spread},
		MTBFs:      []time.Duration{300 * time.Second},
		Rs:         []int{1, 2},
		N:          6,
		Jobs:       3,
		JobSeconds: 40,
		MTTR:       time.Minute,
		Detect:     10 * time.Second,
	}
	var first string
	for _, workers := range []int{1, 4, 8} {
		pts, err := ChurnSweep(DefaultOptions(42), cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		csv := ChurnPointsCSV(pts)
		if first == "" {
			first = csv
			continue
		}
		if csv != first {
			t.Fatalf("workers=%d diverged:\n--- first ---\n%s--- this run ---\n%s",
				workers, first, csv)
		}
	}
	goldenCompare(t, "golden_churn.csv", first)
}

// TestGoldenConcTrace: the K-concurrent-jobs family across worker
// counts.
func TestGoldenConcTrace(t *testing.T) {
	opts := DefaultOptions(42)
	opts.Topology = goldenBase(t)
	var first string
	for _, workers := range []int{1, 4, 8} {
		pts, err := ConcurrentSweep(opts, core.Spread, []int{1, 2}, ConcurrentConfig{N: 6}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		csv := ConcurrentPointsCSV(pts)
		if first == "" {
			first = csv
			continue
		}
		if csv != first {
			t.Fatalf("workers=%d diverged:\n--- first ---\n%s--- this run ---\n%s",
				workers, first, csv)
		}
	}
	goldenCompare(t, "golden_conc.csv", first)
}
