package exp

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/sched"
	"p2pmpi/internal/stats"
	"p2pmpi/internal/vtime"
	"p2pmpi/internal/workload"
)

// The open-system experiment family replaces the closed K-job batches
// with what a production platform actually sees: jobs arriving on their
// own clock — Poisson or diurnal rate curves with maintenance
// blackouts, heavy-tailed sizes and durations, multi-tenant users with
// skewed rates and stratified priorities (internal/workload) — replayed
// against a booted world through the priority scheduler, for hours of
// virtual steady state. Every per-job metric goes into streaming
// sketches (internal/stats), so a point's memory footprint is O(1) in
// the submission count: a million-submission sweep holds a few t-digest
// centroids, not a million samples. Reported per (strategy) point:
// steady-state utilization, queue-wait percentiles, bounded-slowdown
// percentiles, and Jain fairness over the per-tenant mean slowdown.

// OpenPoint is one steady-state measurement of a strategy under an
// open arrival process.
type OpenPoint struct {
	Strategy core.Strategy
	// Arrival echoes the arrival spec (ParseArrivalSpec syntax).
	Arrival string
	// Tenants, N, R and Hosts echo the workload and world shape (N is
	// the mean drawn width over measured submissions).
	Tenants int
	R       int
	Hosts   int
	// HorizonSeconds and WarmupSeconds bound the arrival timeline and
	// the truncated transient.
	HorizonSeconds, WarmupSeconds float64
	// Submitted counts all replayed submissions; Measured the ones past
	// warm-up that the statistics cover; Completed/Failed partition the
	// measured ones by outcome.
	Submitted, Measured, Completed, Failed int
	// MeanN averages the drawn job width over measured submissions.
	MeanN float64
	// Utilization is the measured busy slot-seconds (service time ×
	// width, completed jobs) over the platform's slot capacity for the
	// post-warm-up window.
	Utilization float64
	// MeanWaitSeconds and the percentiles summarize queue wait —
	// enqueue-to-finish latency minus service time, clamped at 0 — from
	// a t-digest (documented rank error ≤ stats.TDigest.MaxRankError).
	MeanWaitSeconds                float64
	WaitP50Seconds, WaitP90Seconds float64
	WaitP99Seconds                 float64
	// MeanSlowdown and SlowdownP99 summarize bounded slowdown:
	// max(1, latency / max(service, 10s)).
	MeanSlowdown, SlowdownP99 float64
	// JainFairness is Jain's index over the per-tenant mean bounded
	// slowdown of measured completed jobs (1 = perfectly even).
	JainFairness float64
	// FailuresInjected and DownFraction report composed churn (zero
	// when the point ran failure-free).
	FailuresInjected int
	DownFraction     float64
	// QuotaThrottleRate is the fraction of admission decisions that
	// bypassed the head-of-queue job because its tenant was over budget
	// (0 with quotas off); Preemptions counts running jobs checkpoint-
	// killed to make room for in-budget work.
	QuotaThrottleRate float64
	Preemptions       int
	// SLOAttainment is the fraction of measured deadline-carrying jobs
	// that finished within their deadline (failed jobs count as missed);
	// TardinessP99Seconds is the 99th-percentile lateness among
	// completed violators. Both stay 0 without DeadlineFactors.
	SLOAttainment       float64
	TardinessP99Seconds float64
}

// WarmupAuto selects the default warm-up of Duration/10. It exists so
// an explicit Warmup of zero can mean "measure from t=0": the zero
// value used to be silently rewritten to Duration/10, which made a
// deliberate no-warm-up sweep impossible to request.
const WarmupAuto = time.Duration(-1)

// OpenConfig tunes an open-system sweep.
type OpenConfig struct {
	// Base is the topology template (synthetic or grid5000).
	Base grid.TopologySpec
	// Strategies lists the policies to compare (default: every
	// registered strategy).
	Strategies []core.Strategy
	// Arrival is the platform-wide arrival process (required).
	Arrival workload.ArrivalSpec
	// Tenants, TenantSkew and PriorityLevels shape the user population
	// (defaults 1 / 0 / 1; see workload.Config).
	Tenants        int
	TenantSkew     float64
	PriorityLevels int
	// Duration is the arrival horizon (required); Warmup is the leading
	// transient excluded from the statistics — WarmupAuto picks
	// Duration/10, zero (and any other negative) disables truncation.
	Duration, Warmup time.Duration
	// R is the replication degree per job (default 1).
	R int
	// NMin, NMax, NAlpha, DurMin, DurMax and DurAlpha forward to
	// workload.Config (bounded-Pareto widths and service durations;
	// zero keeps the workload defaults).
	NMin, NMax     int
	NAlpha         float64
	DurMin, DurMax float64
	DurAlpha       float64
	// MaxSubmissions caps the trace per point (0 = no cap).
	MaxSubmissions int
	// Workers bounds the scheduler's in-flight jobs (default 8).
	Workers int
	// Retries, Backoff and Timeout configure the scheduler (defaults
	// 4 / 5s / 3×DurMax + 2min).
	Retries int
	Backoff time.Duration
	Timeout time.Duration
	// MTBF composes host churn with the open workload (0 = failure-free).
	// MTTR, Dist, WeibullShape, SiteMTBF and SiteMTTR mirror ChurnConfig;
	// Detect arms the mid-run failure detector (default 10s when churning).
	MTBF, MTTR         time.Duration
	Dist               churn.DistKind
	WeibullShape       float64
	SiteMTBF, SiteMTTR time.Duration
	Detect             time.Duration
	// QuotaRate and QuotaBurst arm per-tenant token-bucket quotas in the
	// scheduler (slot-seconds per virtual second / slot-seconds; zero
	// rate disables, zero burst defaults to an hour at rate). Preempt
	// additionally lets starved in-budget jobs checkpoint-kill the
	// lowest-priority over-budget running job. See sched.Config.
	QuotaRate, QuotaBurst float64
	Preempt               bool
	// DeadlineFactors forwards per-priority-class deadline multipliers
	// to workload.Config: priority class p gets a deadline of
	// At + DeadlineFactors[p]×Seconds (last entry reused beyond the
	// slice; empty disables deadlines).
	DeadlineFactors []float64

	// observe, when set, sees every measured job next to its submission
	// (tests compare sketch percentiles against exact samples).
	observe func(j *sched.Job, sub workload.Submission)
}

func (c *OpenConfig) fillDefaults() error {
	if len(c.Strategies) == 0 {
		c.Strategies = core.Strategies()
	}
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("exp: open sweep needs a positive -duration")
	}
	if c.Warmup == WarmupAuto {
		c.Warmup = c.Duration / 10
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Warmup >= c.Duration {
		return fmt.Errorf("exp: warmup %v must be shorter than duration %v", c.Warmup, c.Duration)
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.R <= 0 {
		c.R = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Retries <= 0 {
		c.Retries = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Second
	}
	if c.Timeout <= 0 {
		durMax := c.DurMax
		if durMax <= 0 {
			durMax = 1800 // the workload default
		}
		c.Timeout = time.Duration(3*durMax)*time.Second + 2*time.Minute
	}
	if c.MTBF > 0 {
		if c.MTTR <= 0 {
			c.MTTR = time.Minute
		}
		if c.Detect <= 0 {
			c.Detect = 10 * time.Second
		}
	}
	return nil
}

// workloadConfig assembles the trace generator input for one point. It
// deliberately excludes the strategy: every strategy compared in one
// sweep replays the identical arrival timeline, so cross-strategy
// differences are attributable to policy, not trace luck.
func (c OpenConfig) workloadConfig(seed int64) workload.Config {
	return workload.Config{
		Seed:           openSeed(seed),
		Arrival:        c.Arrival,
		Tenants:        c.Tenants,
		TenantSkew:     c.TenantSkew,
		PriorityLevels: c.PriorityLevels,
		NMin:           c.NMin, NMax: c.NMax, NAlpha: c.NAlpha,
		DurMin: c.DurMin, DurMax: c.DurMax, DurAlpha: c.DurAlpha,
		Horizon:         c.Duration,
		MaxSubmissions:  c.MaxSubmissions,
		DeadlineFactors: c.DeadlineFactors,
	}
}

// openSeed fans the sweep seed out to the workload generator, away from
// the world's own jitter streams.
func openSeed(seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte("open|workload"))
	return seed ^ int64(h.Sum64())
}

// openChurnSeed seeds composed churn — like churnSeed, a pure function
// of the failure model so every strategy faces the identical timeline.
func openChurnSeed(seed int64, mtbf, mttr time.Duration) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "open|churn|%d|%d", mtbf, mttr)
	return seed ^ int64(h.Sum64())
}

// openAccum accumulates one point's statistics in O(1) memory per
// metric: two t-digest streams for the platform-wide distributions plus
// O(tenants) moments for fairness. The million-submission footprint
// test feeds this path directly.
type openAccum struct {
	wait, slow, tard *stats.Stream
	tenantSlow       []float64 // per-tenant slowdown sums
	tenantJobs       []int64
	busyProcSec      float64
	widthSum         float64
	measured         int
	completed        int
	failed           int
	withDeadline     int
	sloMet           int
	violators        int
}

func newOpenAccum(tenants int) *openAccum {
	return &openAccum{
		wait:       stats.NewStream(),
		slow:       stats.NewStream(),
		tard:       stats.NewStream(),
		tenantSlow: make([]float64, tenants),
		tenantJobs: make([]int64, tenants),
	}
}

// observe folds one measured job in. waitS and slowdown are ignored
// for failed jobs (they never completed, so neither is defined).
func (a *openAccum) observe(tenant, width int, waitS, slowdown, serviceS float64, failed bool) {
	a.measured++
	a.widthSum += float64(width)
	if failed {
		a.failed++
		return
	}
	a.completed++
	a.wait.Add(waitS)
	a.slow.Add(slowdown)
	a.busyProcSec += serviceS * float64(width)
	// The per-tenant moments grow to fit whatever id arrives: an
	// out-of-range tenant (a caller sizing the accumulator low, or a
	// trace with sparse ids) must shift the fairness index, not silently
	// vanish from it. Only negative ids — not addressable — are dropped.
	if tenant >= 0 {
		for tenant >= len(a.tenantSlow) {
			a.tenantSlow = append(a.tenantSlow, 0)
			a.tenantJobs = append(a.tenantJobs, 0)
		}
		a.tenantSlow[tenant] += slowdown
		a.tenantJobs[tenant]++
	}
}

// observeDeadline folds one measured deadline-carrying job's SLO
// outcome. Failed jobs count as missed but contribute no tardiness
// sample (work that never finished has no finite lateness); completed
// jobs split into on-time and violators, whose lateness in seconds
// feeds the tardiness digest.
func (a *openAccum) observeDeadline(failed bool, tardS float64) {
	a.withDeadline++
	if failed {
		return
	}
	if tardS <= 0 {
		a.sloMet++
		return
	}
	a.violators++
	a.tard.Add(tardS)
}

// jain computes Jain's fairness index over the per-tenant mean
// slowdowns (tenants with no measured completions are skipped).
func (a *openAccum) jain() float64 {
	var sum, sumSq float64
	var n int
	for i, jobs := range a.tenantJobs {
		if jobs == 0 {
			continue
		}
		mean := a.tenantSlow[i] / float64(jobs)
		sum += mean
		sumSq += mean * mean
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// boundedSlowdown is the standard queueing metric: latency over service
// time, with service floored at 10s so sub-second jobs cannot blow the
// ratio up, and the whole thing floored at 1.
func boundedSlowdown(latency, service float64) float64 {
	const floor = 10
	s := math.Max(service, floor)
	return math.Max(1, latency/s)
}

// jobIDHeap is the fold's reorder buffer: completed jobs arrive in
// completion order and leave in trace (ID) order.
type jobIDHeap []*sched.Job

func (h jobIDHeap) Len() int           { return len(h) }
func (h jobIDHeap) Less(i, j int) bool { return h[i].ID < h[j].ID }
func (h jobIDHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobIDHeap) Push(x any)        { *h = append(*h, x.(*sched.Job)) }
func (h *jobIDHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// RunOpen boots one world, replays the open arrival stream through the
// priority scheduler (optionally under churn and quotas), and reduces
// the steady-state window to an OpenPoint. The trace is never
// materialized: submissions are generated lazily (workload.Stream) and
// completed jobs are folded into the sketches as they finish, so a
// week-long multi-million-submission replay holds the in-flight
// backlog, not the horizon.
func RunOpen(opts Options, cfg OpenConfig, strategy core.Strategy) (OpenPoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return OpenPoint{}, err
	}
	stream, err := workload.NewStream(cfg.workloadConfig(opts.Seed))
	if err != nil {
		return OpenPoint{}, err
	}
	if _, ok := stream.Peek(); !ok {
		return OpenPoint{}, fmt.Errorf("exp: open trace is empty — raise the rate or the duration")
	}

	o := opts
	o.Topology = cfg.Base
	if cfg.Base.TotalHosts() > 1000 {
		// Same membership-traffic diet as churnAt: on big worlds the
		// long steady-state horizon would drown in O(world) host-list
		// replies that no measurement consumes.
		if o.MaxPeersReturned == 0 {
			nMax := cfg.NMax
			if nMax <= 0 {
				nMax = 32
			}
			bound := 4 * (int(math.Ceil(1.2*float64(nMax*cfg.R))) + 2)
			if bound < 512 {
				bound = 512
			}
			o.MaxPeersReturned = bound
		}
		if o.PeerRefreshInterval == 0 {
			o.PeerRefreshInterval = time.Hour
		}
		if o.PeerCacheCap == 0 {
			o.PeerCacheCap = 2
		}
	}
	if cfg.Duration >= 24*time.Hour {
		// Long-horizon diet: at the paper's 20s frontal cadence a week of
		// virtual time is ~30k probe rounds over every host — the replay
		// spends its wall clock on liveness traffic no measurement
		// consumes. Day-plus horizons slacken every cadence still at its
		// default; an explicit setting always wins.
		if o.FrontalPingInterval == 20*time.Second {
			o.FrontalPingInterval = 10 * time.Minute
		}
		if o.PeerAliveInterval == 0 {
			o.PeerAliveInterval = 30 * time.Minute
		}
		if o.PeerRefreshInterval == 0 {
			o.PeerRefreshInterval = 2 * time.Hour
		}
		if o.PeerCacheCap == 0 {
			o.PeerCacheCap = 2
		}
		if o.MaxPeersReturned == 0 {
			o.MaxPeersReturned = 512
		}
	}
	w := NewWorld(o)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return OpenPoint{}, err
	}

	// The slack beyond the horizon no longer scales with trace length —
	// the stream's length is unknown up front — so every point gets the
	// 64-job drain allowance on top of its duration.
	budget := int(cfg.Duration/time.Second) + runJobsBudget(64)
	var churnDriver *churn.Driver
	if cfg.MTBF > 0 {
		churnDriver = w.StartChurn(churn.Config{
			Seed:         openChurnSeed(opts.Seed, cfg.MTBF, cfg.MTTR),
			MTBF:         cfg.MTBF,
			MTTR:         cfg.MTTR,
			UpDist:       cfg.Dist,
			DownDist:     cfg.Dist,
			WeibullShape: cfg.WeibullShape,
			SiteMTBF:     cfg.SiteMTBF,
			SiteMTTR:     cfg.SiteMTTR,
			Horizon:      time.Duration(budget) * time.Second,
		})
	}

	sc := sched.New(w.S, w.Frontal, w.HostSlots(), sched.Config{
		Workers:      cfg.Workers,
		Retries:      cfg.Retries,
		Backoff:      cfg.Backoff,
		Seed:         opts.Seed,
		IsContention: ChurnRetryable,
		QuotaRate:    cfg.QuotaRate,
		QuotaBurst:   cfg.QuotaBurst,
		Preempt:      cfg.Preempt,
	})
	// pending holds each submission only from enqueue to fold — with the
	// reorder buffer below, the sole per-submission state the replay
	// retains. Guarded by pmu: the hook runs on the driver actor, the
	// fold on the harness actor.
	var (
		pmu      sync.Mutex
		pending  = make(map[int]workload.Submission)
		enqueued int
	)
	drv := workload.NewStreamDriver(w.S, stream.Next, func(sub workload.Submission) {
		spec := mpd.JobSpec{
			Program:        "spin",
			Args:           []string{fmt.Sprintf("%g", sub.Seconds)},
			N:              sub.N,
			R:              cfg.R,
			Strategy:       strategy,
			Timeout:        cfg.Timeout,
			FailureDetect:  cfg.Detect,
			ReserveRetries: 1,
		}
		if job := sc.EnqueuePri(spec, sub.Tenant, sub.Priority); job != nil {
			pmu.Lock()
			pending[job.ID] = sub
			enqueued++
			pmu.Unlock()
		}
	})

	// The driver is the scheduler's only client, so job IDs equal stream
	// sequence numbers. Reduce in trace order — never completion order —
	// via a min-heap reorder buffer that releases contiguous IDs from 0,
	// so the sketch state is a pure function of the job set and the CSV
	// is byte-identical across -workers/-shards/-sn.
	acc := newOpenAccum(cfg.Tenants)
	var reorder jobIDHeap
	// popped counts jobs taken off the completion mailbox; folded the
	// ones released from the reorder buffer in ID order. They diverge
	// while an ID gap is in flight, so the drain phase must wait on
	// popped — not folded — or it would over-ask the mailbox.
	popped, folded := 0, 0
	fold := func(jobs []*sched.Job) error {
		popped += len(jobs)
		for _, j := range jobs {
			heap.Push(&reorder, j)
		}
		for len(reorder) > 0 && reorder[0].ID == folded {
			j := heap.Pop(&reorder).(*sched.Job)
			pmu.Lock()
			sub, ok := pending[j.ID]
			delete(pending, j.ID)
			pmu.Unlock()
			if !ok || sub.Seq != j.ID {
				return fmt.Errorf("exp: job %d does not match a pending submission", j.ID)
			}
			folded++
			if sub.At < cfg.Warmup {
				continue // warm-up transient
			}
			latency := j.Latency().Seconds()
			wait := math.Max(0, latency-sub.Seconds)
			failed := j.Err != nil || j.Result == nil || j.Result.LostRanks() > 0
			acc.observe(sub.Tenant, sub.N, wait, boundedSlowdown(latency, sub.Seconds), sub.Seconds, failed)
			if sub.Deadline > 0 {
				acc.observeDeadline(failed, (sub.At.Seconds()+latency)-sub.Deadline.Seconds())
			}
			if cfg.observe != nil {
				cfg.observe(j, sub)
			}
		}
		return nil
	}

	_, err = submitPumped(w, budget, "exp.open", func() (struct{}, error) {
		sc.Start()
		drv.Start()
		start := w.S.Now()
		left := func() time.Duration {
			d := time.Duration(budget)*time.Second - w.S.Now().Sub(start)
			if d < 0 {
				d = 0
			}
			return d
		}
		// Phase 1: fold completions while the replay still feeds, so the
		// retained handles track the in-flight backlog, not the horizon.
		for !drv.Drained() {
			if left() == 0 {
				return struct{}{}, fmt.Errorf("exp: open replay exhausted its %ds budget after %d jobs", budget, folded)
			}
			jobs, werr := sc.WaitTimeout(1, time.Second)
			if werr != nil && !errors.Is(werr, vtime.ErrTimeout) {
				return struct{}{}, fmt.Errorf("exp: open completion stream closed after %d jobs: %w", folded, werr)
			}
			if ferr := fold(jobs); ferr != nil {
				return struct{}{}, ferr
			}
		}
		// Phase 2: the stream is fully enqueued; wait out the stragglers.
		pmu.Lock()
		total := enqueued
		pmu.Unlock()
		if popped < total {
			jobs, werr := sc.WaitTimeout(total-popped, left())
			if ferr := fold(jobs); ferr != nil {
				return struct{}{}, ferr
			}
			if werr != nil && folded < total {
				return struct{}{}, fmt.Errorf("exp: open workload stalled after %d/%d jobs: %w", folded, total, werr)
			}
		}
		if folded != total {
			return struct{}{}, fmt.Errorf("exp: open fold incomplete: %d of %d jobs", folded, total)
		}
		sc.Close()
		return struct{}{}, nil
	})
	drvStats := drv.Stop()
	var injected churn.Stats
	if churnDriver != nil {
		injected = churnDriver.Stop()
	}
	if err != nil {
		return OpenPoint{}, err
	}
	if drvStats.Submitted != folded {
		return OpenPoint{}, fmt.Errorf("exp: driver replayed %d submissions but %d completed", drvStats.Submitted, folded)
	}
	scStats := sc.Stats()

	pt := OpenPoint{
		Strategy:         strategy,
		Arrival:          cfg.Arrival.String(),
		Tenants:          cfg.Tenants,
		R:                cfg.R,
		Hosts:            w.Grid.TotalHosts(),
		HorizonSeconds:   cfg.Duration.Seconds(),
		WarmupSeconds:    cfg.Warmup.Seconds(),
		Submitted:        drvStats.Submitted,
		Measured:         acc.measured,
		Completed:        acc.completed,
		Failed:           acc.failed,
		FailuresInjected: injected.Failures,
		DownFraction:     injected.DownFraction(),
		Preemptions:      scStats.Preemptions,
	}
	if scStats.Enqueued > 0 {
		pt.QuotaThrottleRate = float64(scStats.Throttled) / float64(scStats.Enqueued)
	}
	if acc.withDeadline > 0 {
		pt.SLOAttainment = float64(acc.sloMet) / float64(acc.withDeadline)
	}
	if acc.violators > 0 {
		pt.TardinessP99Seconds = acc.tard.Quantile(0.99)
	}
	if acc.measured > 0 {
		pt.MeanN = acc.widthSum / float64(acc.measured)
	}
	if acc.completed > 0 {
		pt.MeanWaitSeconds = acc.wait.Mean()
		pt.WaitP50Seconds = acc.wait.Quantile(0.50)
		pt.WaitP90Seconds = acc.wait.Quantile(0.90)
		pt.WaitP99Seconds = acc.wait.Quantile(0.99)
		pt.MeanSlowdown = acc.slow.Mean()
		pt.SlowdownP99 = acc.slow.Quantile(0.99)
		pt.JainFairness = acc.jain()
	}
	var totalProcs float64
	for _, h := range w.Grid.Hosts {
		totalProcs += float64(h.Cores)
	}
	if window := (cfg.Duration - cfg.Warmup).Seconds(); totalProcs > 0 && window > 0 {
		pt.Utilization = acc.busyProcSec / (totalProcs * window)
	}
	return pt, nil
}

// OpenSweep measures every configured strategy against the identical
// arrival timeline. Each strategy owns an independent, freshly booted
// world, so points run across a bounded pool with byte-identical
// results to a sequential run. Results follow cfg.Strategies order.
func OpenSweep(opts Options, cfg OpenConfig, workers int) ([]OpenPoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	out := make([]OpenPoint, len(cfg.Strategies))
	err := runPool(len(cfg.Strategies), workers, func(i int) error {
		pt, err := RunOpen(opts, cfg, cfg.Strategies[i])
		if err != nil {
			return fmt.Errorf("open %s: %w", cfg.Strategies[i], err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OpenPointsCSV renders an open sweep as CSV, one row per strategy.
func OpenPointsCSV(pts []OpenPoint) string {
	var b strings.Builder
	b.WriteString("strategy,arrival,tenants,r,hosts,horizon_s,warmup_s,submitted,measured," +
		"completed,failed,mean_n,utilization,mean_wait_s,wait_p50_s,wait_p90_s,wait_p99_s," +
		"mean_slowdown,slowdown_p99,jain,failures_injected,down_fraction," +
		"quota_throttle_rate,preemptions,slo_attainment,tardiness_p99\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.0f,%.0f,%d,%d,%d,%d,%.2f,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%d,%.4f,%.4f,%d,%.4f,%.3f\n",
			p.Strategy, p.Arrival, p.Tenants, p.R, p.Hosts, p.HorizonSeconds, p.WarmupSeconds,
			p.Submitted, p.Measured, p.Completed, p.Failed, p.MeanN, p.Utilization,
			p.MeanWaitSeconds, p.WaitP50Seconds, p.WaitP90Seconds, p.WaitP99Seconds,
			p.MeanSlowdown, p.SlowdownP99, p.JainFairness, p.FailuresInjected, p.DownFraction,
			p.QuotaThrottleRate, p.Preemptions, p.SLOAttainment, p.TardinessP99Seconds)
	}
	return b.String()
}

// RenderOpenPoints prints an open sweep as a table.
func RenderOpenPoints(title string, pts []OpenPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %6s %5s %5s %7s %8s %8s %8s %8s %8s %6s %7s %7s\n",
		"strategy", "jobs", "done", "fail", "util", "wait-p50", "wait-p90", "wait-p99", "slow-p99", "jain", "down%", "preempt", "slo%")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %6d %5d %5d %6.1f%% %7.1fs %7.1fs %7.1fs %8.2f %8.3f %5.1f%% %7d %6.1f%%\n",
			p.Strategy, p.Measured, p.Completed, p.Failed, 100*p.Utilization,
			p.WaitP50Seconds, p.WaitP90Seconds, p.WaitP99Seconds,
			p.SlowdownP99, p.JainFairness, 100*p.DownFraction,
			p.Preemptions, 100*p.SLOAttainment)
	}
	return b.String()
}
