package exp

import (
	"strings"
	"testing"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Cluster != "grelon" || rows[0].Nodes != 60 || rows[0].Cores != 240 {
		t.Fatalf("first row = %+v", rows[0])
	}
	out := RenderTable1()
	for _, want := range []string{"grelon", "capricorn", "paravent", "bordereau",
		"idpot", "idcalc", "azur", "sol", "350"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// bootedWorld caches one booted deployment per test run (booting 350
// daemons is the expensive part; submissions are cheap).
func bootedWorld(t *testing.T) *World {
	t.Helper()
	w := NewWorld(DefaultOptions(42))
	if err := w.Boot(); err != nil {
		w.Close()
		t.Fatalf("boot: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestConcentrateAllocationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full 350-peer grid")
	}
	w := bootedWorld(t)

	pts, err := CoAllocationSweep(w, core.Concentrate, []int{100, 250, 600})
	if err != nil {
		t.Fatal(err)
	}

	// n=100: concentrate stays entirely at nancy (25 hosts x 4 cores).
	p100 := pts[0]
	if p100.CoresBySite[grid.Nancy] != 100 {
		t.Errorf("n=100: nancy cores = %d, want 100 (%v)", p100.CoresBySite[grid.Nancy], p100.CoresBySite)
	}
	if p100.HostsBySite[grid.Nancy] != 25 {
		t.Errorf("n=100: nancy hosts = %d, want 25", p100.HostsBySite[grid.Nancy])
	}

	// n=250: nancy saturated (60 hosts / 240 cores), 10 processes spill
	// to the nearest other sites (the paper observed 5 lyon hosts).
	p250 := pts[1]
	if p250.HostsBySite[grid.Nancy] != 60 || p250.CoresBySite[grid.Nancy] != 240 {
		t.Errorf("n=250: nancy %d hosts / %d cores, want 60/240",
			p250.HostsBySite[grid.Nancy], p250.CoresBySite[grid.Nancy])
	}
	spill := 0
	for _, s := range []string{grid.Lyon, grid.Rennes, grid.Bordeaux} {
		spill += p250.CoresBySite[s]
	}
	if spill != 10 {
		t.Errorf("n=250: spill = %d cores at %v, want 10 near sites", spill, p250.CoresBySite)
	}
	if p250.CoresBySite[grid.Sophia] != 0 {
		t.Errorf("n=250: sophia used: %v", p250.CoresBySite)
	}

	// n=600: everything still totals 600 processes.
	p600 := pts[2]
	total := 0
	for _, c := range p600.CoresBySite {
		total += c
	}
	if total != 600 {
		t.Errorf("n=600: total = %d", total)
	}
}

func TestSpreadAllocationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full 350-peer grid")
	}
	w := bootedWorld(t)

	pts, err := CoAllocationSweep(w, core.Spread, []int{100, 400})
	if err != nil {
		t.Fatal(err)
	}

	// n=100: one process per host on the 100 closest hosts; nancy's 60
	// hosts all used, the rest at the nearest sites.
	p100 := pts[0]
	if p100.HostsBySite[grid.Nancy] != 60 || p100.CoresBySite[grid.Nancy] != 60 {
		t.Errorf("n=100: nancy %d hosts / %d cores, want 60/60",
			p100.HostsBySite[grid.Nancy], p100.CoresBySite[grid.Nancy])
	}
	totalHosts := 0
	for _, h := range p100.HostsBySite {
		totalHosts += h
	}
	if totalHosts != 100 {
		t.Errorf("n=100: used %d hosts, want 100", totalHosts)
	}
	if p100.HostsBySite[grid.Sophia] != 0 {
		t.Errorf("n=100: sophia used: %v", p100.HostsBySite)
	}

	// n=400 > 350 hosts: every host runs one process and the 50 extra
	// land on the closest multi-core hosts — nancy's stair (§5.1).
	p400 := pts[1]
	totalHosts = 0
	for _, h := range p400.HostsBySite {
		totalHosts += h
	}
	if totalHosts != 350 {
		t.Errorf("n=400: used %d hosts, want all 350", totalHosts)
	}
	if p400.CoresBySite[grid.Nancy] != 110 {
		t.Errorf("n=400: nancy cores = %d, want 110 (60 + 50 second processes)",
			p400.CoresBySite[grid.Nancy])
	}
}

func TestRenderSitePoints(t *testing.T) {
	pts := []SitePoint{{
		N:           100,
		HostsBySite: map[string]int{grid.Nancy: 25},
		CoresBySite: map[string]int{grid.Nancy: 100},
	}}
	out := RenderSitePoints("Figure 2 (concentrate)", pts)
	if !strings.Contains(out, "25/100") || !strings.Contains(out, "nan(h/c)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderTimePoints(t *testing.T) {
	pts := []TimePoint{
		{N: 64, Strategy: core.Concentrate, Seconds: 2.5},
		{N: 32, Strategy: core.Concentrate, Seconds: 3.5},
		{N: 32, Strategy: core.Spread, Seconds: 1.5},
		{N: 64, Strategy: core.Spread, Seconds: 4.5},
	}
	out := RenderTimePoints("Figure 4 (IS)", pts)
	if !strings.Contains(out, "3.500") || !strings.Contains(out, "4.500") {
		t.Fatalf("render:\n%s", out)
	}
	// Rows sorted by n.
	if strings.Index(out, "32") > strings.Index(out, "64") {
		t.Fatalf("rows out of order:\n%s", out)
	}
}

func TestFig4EPPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid twice")
	}
	w := bootedWorld(t)
	conc, err := NASSweep(w, "ep-model-B", core.Concentrate, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := NASSweep(w, "ep-model-B", core.Spread, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	c, s := conc[0].Seconds, spread[0].Seconds
	if c <= 0 || s <= 0 {
		t.Fatalf("non-positive times: %v %v", c, s)
	}
	// Figure 4 left: spread is faster than concentrate at 32 processes.
	if s >= c {
		t.Errorf("EP at 32: spread %.2fs should beat concentrate %.2fs", s, c)
	}
}
