package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

// churnTestConfig is the shared tiny-world sweep used by the
// determinism and survivability tests: 72 hosts, short jobs, an MTBF
// low enough that failures reliably strike mid-run, and a retry budget
// tight enough that re-booking cannot always save an unreplicated job
// (with generous retries the scheduler masks R=1 losses, and the
// replication contrast the tests pin would vanish).
func churnTestConfig() ChurnConfig {
	return ChurnConfig{
		Base:       grid.TopologySpec{Kind: "synth", Sites: 3, HostsPerSite: 24, CoresPerHost: 2, Seed: 5},
		Strategies: []core.Strategy{core.Spread},
		MTBFs:      []time.Duration{240 * time.Second},
		Rs:         []int{1, 2},
		N:          8,
		Jobs:       4,
		JobSeconds: 60,
		Retries:    1,
	}
}

// TestChurnSweepDeterministicAcrossWorkers is the replay property the
// issue pins: a seeded churn trace — failures, failovers, and the
// resulting CSV — must be byte-identical whatever the pool width.
func TestChurnSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := churnTestConfig()
	opts := DefaultOptions(42)
	sequential, err := ChurnSweep(opts, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ChurnSweep(opts, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	csvSeq, csvPar := ChurnPointsCSV(sequential), ChurnPointsCSV(parallel)
	if csvSeq != csvPar {
		t.Fatalf("churn sweep depends on worker count:\nworkers=1:\n%s\nworkers=4:\n%s", csvSeq, csvPar)
	}
	// And a full re-run replays the same timeline.
	again, err := ChurnSweep(opts, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ChurnPointsCSV(again) != csvSeq {
		t.Fatalf("churn sweep is not a pure function of its seed")
	}
}

// TestChurnReplicationImprovesSurvival is the acceptance property:
// under aggressive churn, R=1 jobs must die (success < 100%) and R=2
// must measurably beat R=1 — replica failover actually engaging.
func TestChurnReplicationImprovesSurvival(t *testing.T) {
	pts, err := ChurnSweep(DefaultOptions(42), churnTestConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (R=1, R=2)", len(pts))
	}
	r1, r2 := pts[0], pts[1]
	if r1.R != 1 || r2.R != 2 {
		t.Fatalf("point order %+v", pts)
	}
	if r1.FailuresInjected == 0 || r2.FailuresInjected == 0 {
		t.Fatalf("no churn injected: %+v", pts)
	}
	if r1.SuccessRate >= 1.0 {
		t.Fatalf("R=1 success rate %.2f under mtbf=%gs churn — failures never bit",
			r1.SuccessRate, r1.MTBFSeconds)
	}
	if r2.SuccessRate <= r1.SuccessRate {
		t.Fatalf("replication did not help: R=1 %.2f vs R=2 %.2f",
			r1.SuccessRate, r2.SuccessRate)
	}
	if r2.Failovers == 0 {
		t.Fatalf("R=2 succeeded without a single failover — replication was never exercised: %+v", r2)
	}
	// R=1 cannot fail over (there is no backup); its failures surface
	// as re-booked attempts and wasted slot-hours instead.
	if r1.Failovers != 0 {
		t.Fatalf("R=1 reported %d failovers", r1.Failovers)
	}
	if r1.Rebooks == 0 || r1.WastedSlotHours == 0 {
		t.Fatalf("R=1 failures produced no re-book accounting: %+v", r1)
	}
}

func TestChurnSweepNeedsMTBF(t *testing.T) {
	_, err := ChurnSweep(DefaultOptions(1), ChurnConfig{Base: smallSynthSpec()}, 1)
	if err == nil || !strings.Contains(err.Error(), "MTBF") {
		t.Fatalf("missing MTBF axis not rejected: %v", err)
	}
}

func TestChurnPointsCSVShape(t *testing.T) {
	pts := []ChurnPoint{{
		Strategy: core.Spread, MTBFSeconds: 600, MTTRSeconds: 60,
		N: 8, R: 2, Jobs: 4, Hosts: 72, Succeeded: 3, Failed: 1,
		SuccessRate: 0.75, MeanSeconds: 80, Inflation: 1.33,
		Failovers: 2, HostsLostMidRun: 3, Rebooks: 2, WastedSlotHours: 0.5,
		FailuresInjected: 11, DownFraction: 0.09,
	}}
	csv := ChurnPointsCSV(pts)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV:\n%s", csv)
	}
	if !strings.HasPrefix(lines[0], "strategy,mtbf_s,mttr_s,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "spread,600,60,8,2,4,72,3,1,0.7500,") {
		t.Fatalf("row %q", lines[1])
	}
}

// TestEmitChurnBenchJSON writes BENCH_churn.json — the survivability
// trajectory CI keeps per commit — when BENCH_CHURN_JSON names the
// output path. The tracked quantities are the experiment's outputs
// (success rate, failovers, waste) rather than ns/op: a regression in
// the failover path shows up as survival numbers moving, not as a
// microbenchmark.
func TestEmitChurnBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_CHURN_JSON")
	if out == "" {
		t.Skip("BENCH_CHURN_JSON not set")
	}
	start := time.Now()
	pts, err := ChurnSweep(DefaultOptions(42), churnTestConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Name             string  `json:"name"`
		Strategy         string  `json:"strategy"`
		MTBFSeconds      float64 `json:"mtbf_s"`
		R                int     `json:"r"`
		SuccessRate      float64 `json:"success_rate"`
		Inflation        float64 `json:"inflation"`
		Failovers        int     `json:"failovers"`
		Rebooks          int     `json:"rebooks"`
		WastedSlotHours  float64 `json:"wasted_slot_hours"`
		FailuresInjected int     `json:"failures_injected"`
	}
	var entries []entry
	for _, p := range pts {
		entries = append(entries, entry{
			Name:             fmt.Sprintf("ChurnSweep/%s/mtbf=%.0f/r=%d", p.Strategy, p.MTBFSeconds, p.R),
			Strategy:         p.Strategy.String(),
			MTBFSeconds:      p.MTBFSeconds,
			R:                p.R,
			SuccessRate:      p.SuccessRate,
			Inflation:        p.Inflation,
			Failovers:        p.Failovers,
			Rebooks:          p.Rebooks,
			WastedSlotHours:  p.WastedSlotHours,
			FailuresInjected: p.FailuresInjected,
		})
	}
	blob, err := json.MarshalIndent(map[string]any{
		"benchmarks":   entries,
		"wall_seconds": time.Since(start).Seconds(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", out, len(entries))
}
