package exp

import (
	"math"
	"testing"
	"testing/quick"
)

// TestJainSparseTenants property-tests the fairness accumulator against
// adversarial tenant ids: the accumulator is sized low on purpose, ids
// arrive sparse and far out of range, and negative ids are the only
// ones dropped. The index must match a reference computed over exactly
// the non-negative ids and stay within Jain's (0, 1] range whenever any
// tenant measured.
func TestJainSparseTenants(t *testing.T) {
	f := func(raw []uint16) bool {
		a := newOpenAccum(2) // deliberately undersized
		maxID := -1
		sums := map[int]float64{}
		counts := map[int]int64{}
		for _, r := range raw {
			tenant := int(r%67) - 5 // ids in [-5, 61], mostly out of range
			slow := 1 + float64(r%13)
			a.observe(tenant, 2, 0.5, slow, 30, false)
			if tenant >= 0 {
				sums[tenant] += slow
				counts[tenant]++
				if tenant > maxID {
					maxID = tenant
				}
			}
		}
		// Reference Jain over the per-tenant means, folded in the same
		// ascending-id order as the accumulator's dense slices.
		var sum, sumSq float64
		n := 0
		for id := 0; id <= maxID; id++ {
			if counts[id] == 0 {
				continue
			}
			mean := sums[id] / float64(counts[id])
			sum += mean
			sumSq += mean * mean
			n++
		}
		want := 0.0
		if n > 0 && sumSq > 0 {
			want = sum * sum / (float64(n) * sumSq)
		}
		got := a.jain()
		if math.Abs(got-want) > 1e-12 {
			t.Logf("jain = %g, reference = %g over %d tenants", got, want, n)
			return false
		}
		if n > 0 && (got <= 0 || got > 1+1e-12) {
			t.Logf("jain = %g outside (0, 1] with %d tenants measured", got, n)
			return false
		}
		return n > 0 || got == 0 // nothing measured -> index must be 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}

	// Pinned edge cases the generator may not hit.
	a := newOpenAccum(1)
	if a.jain() != 0 {
		t.Errorf("empty accumulator jain = %g, want 0", a.jain())
	}
	a.observe(-3, 2, 0, 2, 30, false) // negative id: dropped
	if a.jain() != 0 {
		t.Errorf("negative-id-only jain = %g, want 0", a.jain())
	}
	a.observe(40, 2, 0, 2, 30, false) // single live tenant, far out of range
	if a.jain() != 1 {
		t.Errorf("single-tenant jain = %g, want exactly 1", a.jain())
	}
}
