package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"p2pmpi/internal/grid"
)

// shard50kOptions returns the 50,000-host federated flagship — 16
// sites × 3125 hosts under a K=16 supernode tier — partitioned onto
// the given number of shard event loops.
func shard50kOptions(shards int) Options {
	spec, err := grid.ParseTopologySpec("synth:S=16,H=3125")
	if err != nil {
		panic(err)
	}
	o := DefaultOptions(42)
	o.Topology = spec
	o.Supernodes = 16
	o.Shards = shards
	// The big-world knobs every >2000-host sweep point runs with (see
	// scaleAt): bounded host-list replies, slow compute-peer refreshes,
	// capped unread snapshot retention and a staggered boot, without
	// which the boot storm dominates everything. The keep-alive cadence
	// stays at the 30s default deliberately — steady-state membership
	// traffic is the workload this benchmark times.
	o.MaxPeersReturned = 512
	o.PeerRefreshInterval = time.Hour
	o.PeerCacheCap = 2
	o.BootSpread = 2 * time.Minute
	return o
}

// shard50kSpan is the virtual span the speedup numbers time: four full
// keep-alive cycles of steady-state membership traffic on the booted
// world, long enough that per-window barrier costs are amortized and
// short enough to run per commit.
const shard50kSpan = 2 * time.Minute

// BenchmarkShardedScaleSweep50k times steady-state advancement of the
// 50k-host K=16 world across shard counts. Boot is excluded — the
// benchmark measures the within-world event path the sharding exists
// to parallelize, per virtual span. SHARD_BENCH_50K gates it: one
// sample costs a 50k boot per shard count, which is too heavy for the
// default `-benchtime=1x ./...` CI smoke.
func BenchmarkShardedScaleSweep50k(b *testing.B) {
	if os.Getenv("SHARD_BENCH_50K") == "" {
		b.Skip("SHARD_BENCH_50K not set (one sample boots three 50k-host worlds)")
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			w := NewWorld(shard50kOptions(shards))
			defer w.Close()
			if err := w.Boot(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RunFor(shard50kSpan)
			}
		})
	}
}

// shard50kWall boots the 50k/K=16 world at the given shard count and
// returns the wall time of advancing it one measurement span.
func shard50kWall(t *testing.T, shards int) time.Duration {
	t.Helper()
	w := NewWorld(shard50kOptions(shards))
	defer w.Close()
	start := time.Now()
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	boot := time.Since(start)
	start = time.Now()
	w.RunFor(shard50kSpan)
	wall := time.Since(start)
	t.Logf("shards=%d: boot %.1fs, %v virtual span in %.1fs wall",
		shards, boot.Seconds(), shard50kSpan, wall.Seconds())
	return wall
}

// TestShardSpeedupGate measures the within-world speedup of `-shards 8`
// over `-shards 1` on the 50k-host K=16 world — the acceptance number
// for the conservative-parallel engine — and merges it into the
// BENCH_perf.json record named by SHARD_SPEEDUP_JSON.
//
// The numbers are recorded honestly wherever they are measured: on a
// single-core runner the sharded run *loses* (barriers and outbox
// merges with zero concurrency to pay for them), so the ≥4× bar is
// enforced only when at least 8 cores are available to run 8 shards.
// `shard_speedup_cores` rides along in the record so a trajectory
// reader can tell the two regimes apart.
func TestShardSpeedupGate(t *testing.T) {
	out := os.Getenv("SHARD_SPEEDUP_JSON")
	if out == "" {
		t.Skip("SHARD_SPEEDUP_JSON not set (boots two 50k-host worlds)")
	}

	seq := shard50kWall(t, 1)
	sh8 := shard50kWall(t, 8)
	cores := runtime.GOMAXPROCS(0)
	speedup := seq.Seconds() / sh8.Seconds()
	t.Logf("within-world speedup at -shards 8: %.2fx on %d cores", speedup, cores)

	// Merge into the existing perf record (TestEmitPerfBenchJSON writes
	// it earlier in the CI job) rather than clobbering it.
	record := map[string]any{}
	if blob, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(blob, &record); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	record["shard_speedup_8"] = speedup
	record["shard_speedup_cores"] = cores
	record["shard_wall_seconds_1"] = seq.Seconds()
	record["shard_wall_seconds_8"] = sh8.Seconds()
	record["shard_sweep_hosts"] = 50000
	record["shard_sweep_sn"] = 16
	blob, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if cores >= 8 && speedup < 4 {
		t.Fatalf("shards=8 speedup %.2fx on %d cores, want >= 4x", speedup, cores)
	}
}
