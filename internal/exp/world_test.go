package exp

import (
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
)

func TestWorldConstruction(t *testing.T) {
	w := NewWorld(DefaultOptions(1))
	defer w.Close()
	if len(w.Peers) != 350 {
		t.Fatalf("peers = %d, want 350", len(w.Peers))
	}
	if w.Grid.TotalCores() != 1040 {
		t.Fatalf("cores = %d", w.Grid.TotalCores())
	}
	// Every peer must advertise P = its core count (§5).
	counts := map[string]int{}
	for _, h := range w.Grid.Hosts {
		counts[h.ID] = h.Cores
	}
	_ = counts
}

func TestProgramsRegistry(t *testing.T) {
	progs := Programs(nas.DefaultCostModel())
	for _, name := range []string{"hostname", "ep-model-B", "is-model-B"} {
		if progs[name] == nil {
			t.Fatalf("program %q missing", name)
		}
	}
}

func TestDefaultNs(t *testing.T) {
	ns := DefaultFig23Ns()
	if len(ns) != 11 || ns[0] != 100 || ns[10] != 600 {
		t.Fatalf("fig2/3 ns = %v", ns)
	}
	if got := DefaultFig4EPNs(); len(got) != 5 || got[4] != 512 {
		t.Fatalf("fig4 EP ns = %v", got)
	}
	if got := DefaultFig4ISNs(); len(got) != 3 || got[2] != 128 {
		t.Fatalf("fig4 IS ns = %v", got)
	}
}

func TestSubmitUnknownProgramFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid")
	}
	w := bootedWorld(t)
	if _, err := w.Submit(mpd.JobSpec{Program: "nope", N: 1, R: 1}); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestReplicatedHostnameOnGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid")
	}
	w := bootedWorld(t)
	res, err := w.Submit(mpd.JobSpec{
		Program: "hostname", N: 100, R: 2, Strategy: core.Spread,
		Timeout: 10 * time.Minute,
	})
	if err != nil {
		t.Fatalf("replicated job: %v", err)
	}
	if res.Failures() != 0 || len(res.Results) != 200 {
		t.Fatalf("failures=%d results=%d", res.Failures(), len(res.Results))
	}
	// Replica-distinctness at grid scale.
	byRank := map[int]map[string]bool{}
	for _, r := range res.Results {
		if byRank[r.Rank] == nil {
			byRank[r.Rank] = map[string]bool{}
		}
		host := string(r.Output)
		if byRank[r.Rank][host] {
			t.Fatalf("rank %d has two replicas on %s", r.Rank, host)
		}
		byRank[r.Rank][host] = true
	}
}
