// Package exp is the experiment harness: it deploys the complete
// P2P-MPI middleware on a modelled testbed and regenerates every table
// and figure of the paper's evaluation (§5), then extends the
// evaluation along axes the paper never swept.
//
// A World is one booted deployment — one compute peer per grid host,
// one supernode, one submitter frontend — under a virtual clock
// (vtime.Scheduler) and a simulated network (simnet.Net). The zero
// topology builds the paper's Grid'5000 (Table 1, 350 hosts);
// grid.TopologySpec scales synthetic worlds to thousands.
//
// Experiment families:
//
//   - Table1/Fig2/Fig3/Fig4: the paper's figures (experiments.go,
//     estimators.go); see EXPERIMENTS.md for the paper-vs-measured
//     record.
//   - ConcurrentJobs/ConcurrentSweep: K simultaneous jobs through the
//     multi-job scheduler, measuring slot contention (concurrent.go).
//   - ScaleSweep: every registered placement strategy across growing
//     world sizes (scale.go).
//   - ChurnSweep: survivability under seeded host failures — success
//     rate, completion-time inflation, replica failovers and wasted
//     slot-hours per (strategy, MTBF, replication degree) point
//     (churn.go, internal/churn).
//
// Sweeps whose points own independent worlds run across a bounded
// worker pool (parallel.go): because each world is deterministic under
// its seed, outputs are byte-identical whatever the pool width — the
// property the *DeterministicAcrossWorkers tests pin.
package exp
