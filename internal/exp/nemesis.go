package exp

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/faults"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/sched"
)

// The nemesis experiment family measures partition tolerance — the
// failure modes the churn family's clean crash-stop model never
// exercises. Each point boots a fresh world, arms a seeded network
// nemesis (site-pair partitions including federation-splitting cuts,
// uniform link loss, gray hosts, frame duplication — internal/faults),
// and pushes a batch of fixed-duration jobs through the multi-job
// scheduler with the RPC robustness layer configured per the sweep.
// What comes out, per (loss, partition duration): the job success
// rate, the completion-time inflation over the failure-free baseline,
// the retry volume the robustness layer spent, and — on federated
// worlds — the split-brain window and anti-entropy healing latency.

// NemesisPoint is one (loss, partition duration) measurement.
type NemesisPoint struct {
	// Loss and PartDurSeconds are the swept coordinates; PartMTBFSeconds
	// echoes the fixed spell cadence (0 when partitions are off at this
	// point).
	Loss            float64
	PartDurSeconds  float64
	PartMTBFSeconds float64
	// N, R and Jobs echo the submitted batch; Hosts is the booted world
	// size.
	N, R, Jobs int
	Hosts      int
	// Succeeded and Failed partition the batch by outcome (the
	// replication-level criterion: every rank delivered through at least
	// one replica).
	Succeeded, Failed int
	SuccessRate       float64
	// MeanSeconds averages the enqueue-to-finish virtual time of
	// succeeded jobs; Inflation divides it by the failure-free job
	// duration.
	MeanSeconds float64
	Inflation   float64
	// Failovers counts ranks rescued by a backup replica over succeeded
	// jobs; HostsLost counts hosts the detectors wrote off over all
	// final attempts; Rebooks counts extra submission attempts beyond
	// the first.
	Failovers int
	HostsLost int
	Rebooks   int
	// Partitions, PartitionSeconds and CutPairs echo what the fault
	// driver actually injected: partition spells, total time with at
	// least one active cut, and deduplicated per-link cut onsets.
	Partitions       int
	PartitionSeconds float64
	CutPairs         int
	// FailuresInjected counts host crashes when a churn model is
	// composed onto the point (NemesisConfig.MTBF > 0).
	FailuresInjected int

	// The membership-tier measurements below depend on the federation
	// width and are reported by NemesisFederationCSV, not the pinned
	// NemesisPointsCSV (same split as the scale family's two CSVs).

	// SN is the federation width of the measured world. RPCRetries and
	// BreakerSkips sum the robustness layer's counters over the frontal
	// and every compute peer; GrayEpisodes counts injected gray-host
	// onsets (gray can strike the supernode tier's dedicated hosts).
	SN           int
	RPCRetries   int64
	BreakerSkips int64
	GrayEpisodes int
	// HealSamples counts partition spells whose post-heal federation
	// convergence was observed; HealMeanSeconds and HealMaxSeconds
	// measure the lag from the last cut lifting to every member holding
	// element-wise equal version vectors (0 on unfederated worlds).
	HealSamples     int
	HealMeanSeconds float64
	HealMaxSeconds  float64
}

// NemesisConfig tunes a nemesis sweep.
type NemesisConfig struct {
	// Base is the topology template (synthetic or grid5000).
	Base grid.TopologySpec
	// Strategy is the placement policy (default: the first registered
	// strategy). The sweep holds it fixed — the axes are fault knobs,
	// not policies.
	Strategy core.Strategy
	// Losses is the uniform cross-site drop-probability axis.
	Losses []float64
	// PartDurs is the mean-partition-duration axis; a 0 entry disables
	// partitions at that point (the loss-only baseline).
	PartDurs []time.Duration
	// PartMTBF is the mean healthy time between partition spells
	// (default 5m).
	PartMTBF time.Duration
	// NoSplit injects single random site-pair cuts instead of the
	// default federation-splitting bisections.
	NoSplit bool
	// LatMult multiplies every cross-site latency (default 1); Dup
	// duplicates delivered frames with this probability, the copy
	// arriving up to DupDelay later.
	LatMult  float64
	Dup      float64
	DupDelay time.Duration
	// GrayFrac/GrayMTBF/GrayMTTR/GrayDrop/GraySlow configure gray-host
	// episodes (0 disables; see faults.Config).
	GrayFrac           float64
	GrayMTBF, GrayMTTR time.Duration
	GrayDrop, GraySlow float64
	// MTBF composes host churn onto every point (0 disables); MTTR is
	// its repair time (default 60s when MTBF > 0).
	MTBF, MTTR time.Duration
	// N is the rank count per job (default 6); R the replication degree
	// (default 2); Jobs the batch size per point (default 4).
	N, R, Jobs int
	// JobSeconds is the spin duration of each job — the failure-free
	// completion baseline (default 60).
	JobSeconds float64
	// Workers bounds the scheduler's in-flight jobs per point (default
	// 2); Retries is the per-job re-book budget (default 4); Detect the
	// failure-detector probe period (default 10s); Timeout bounds each
	// submission attempt (default 3×JobSeconds plus two minutes).
	Workers int
	Retries int
	Detect  time.Duration
	Timeout time.Duration
	// RPCRetries is the robustness layer's re-attempt budget (default
	// 2; -1 disables retries entirely — the no-robustness baseline the
	// bench artifact compares against). RPCBackoff is the base backoff
	// (default mpd's 1s); BreakerThreshold arms the per-supernode
	// circuit breaker (0 = off).
	RPCRetries       int
	RPCBackoff       time.Duration
	BreakerThreshold int
}

func (c *NemesisConfig) fillDefaults() error {
	if c.Strategy == "" {
		c.Strategy = core.Strategies()[0]
	}
	if len(c.Losses) == 0 {
		c.Losses = []float64{0, 0.1, 0.3}
	}
	for _, l := range c.Losses {
		if l < 0 || l >= 1 {
			return fmt.Errorf("exp: bad loss %g (want [0, 1))", l)
		}
	}
	if len(c.PartDurs) == 0 {
		c.PartDurs = []time.Duration{0, time.Minute}
	}
	for _, d := range c.PartDurs {
		if d < 0 {
			return fmt.Errorf("exp: bad partition duration %v", d)
		}
	}
	if c.PartMTBF <= 0 {
		c.PartMTBF = 5 * time.Minute
	}
	if c.MTBF > 0 && c.MTTR <= 0 {
		c.MTTR = time.Minute
	}
	if c.N <= 0 {
		c.N = 6
	}
	if c.R <= 0 {
		c.R = 2
	}
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.JobSeconds <= 0 {
		c.JobSeconds = 60
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Retries <= 0 {
		c.Retries = 4
	}
	if c.Detect <= 0 {
		c.Detect = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Duration(3*c.JobSeconds)*time.Second + 2*time.Minute
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	}
	return nil
}

// nemesisSeed derives the per-point injection seed: a pure function of
// the (loss, partition duration) coordinates, so replays and worker
// counts cannot move it.
func nemesisSeed(seed int64, loss float64, partDur time.Duration) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "nemesis|%g|%d", loss, partDur)
	return seed ^ int64(h.Sum64())
}

// NemesisSweep measures every (loss, partition duration) point. Each
// point owns an independent, freshly booted world with its own
// injection trace, so points run across a bounded pool with
// byte-identical results to a sequential run. Results are ordered
// (loss, partition duration).
func NemesisSweep(opts Options, cfg NemesisConfig, workers int) ([]NemesisPoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	type coord struct {
		loss    float64
		partDur time.Duration
	}
	var coords []coord
	for _, loss := range cfg.Losses {
		for _, pd := range cfg.PartDurs {
			coords = append(coords, coord{loss, pd})
		}
	}
	out := make([]NemesisPoint, len(coords))
	err := runPool(len(coords), workers, func(i int) error {
		c := coords[i]
		pt, err := nemesisAt(opts, cfg, c.loss, c.partDur)
		if err != nil {
			return fmt.Errorf("loss=%g partdur=%v: %w", c.loss, c.partDur, err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// nemesisAt boots one world, arms the nemesis, and runs the batch.
func nemesisAt(opts Options, cfg NemesisConfig, loss float64, partDur time.Duration) (NemesisPoint, error) {
	o := opts
	o.Topology = cfg.Base
	if rr := cfg.RPCRetries; rr > 0 {
		o.RPCRetries = rr
	}
	o.RPCBackoff = cfg.RPCBackoff
	o.BreakerThreshold = cfg.BreakerThreshold
	if cfg.Base.TotalHosts() > 1000 {
		// Same large-world membership-noise bounds as churnAt.
		if o.MaxPeersReturned == 0 {
			bound := 4 * (int(math.Ceil(1.2*float64(cfg.N*cfg.R))) + 2)
			if bound < 512 {
				bound = 512
			}
			o.MaxPeersReturned = bound
		}
		if o.PeerRefreshInterval == 0 {
			o.PeerRefreshInterval = time.Hour
		}
		if o.PeerCacheCap == 0 {
			o.PeerCacheCap = 2
		}
	}
	w := NewWorld(o)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return NemesisPoint{}, err
	}

	budget := runJobsBudget(cfg.Jobs) // RunJobs' pump budget, in virtual seconds
	fc := faults.Config{
		Seed:     nemesisSeed(opts.Seed, loss, partDur),
		Loss:     loss,
		LatMult:  cfg.LatMult,
		DupProb:  cfg.Dup,
		DupDelay: cfg.DupDelay,
		GrayFrac: cfg.GrayFrac,
		GrayMTBF: cfg.GrayMTBF, GrayMTTR: cfg.GrayMTTR,
		GrayDrop: cfg.GrayDrop, GraySlow: cfg.GraySlow,
		Horizon: time.Duration(budget) * time.Second,
	}
	if partDur > 0 {
		fc.PartMTBF = cfg.PartMTBF
		fc.PartMTTR = partDur
		fc.Split = !cfg.NoSplit
	}
	if err := fc.Validate(); err != nil {
		return NemesisPoint{}, err
	}
	driver, hw := w.StartFaults(fc)
	var churnDriver *churn.Driver
	if cfg.MTBF > 0 {
		churnDriver = w.StartChurn(churn.Config{
			Seed:    churnSeed(opts.Seed, cfg.MTBF, cfg.R),
			MTBF:    cfg.MTBF,
			MTTR:    cfg.MTTR,
			Horizon: time.Duration(budget) * time.Second,
		})
	}

	spec := mpd.JobSpec{
		Program:        "spin",
		Args:           []string{fmt.Sprintf("%g", cfg.JobSeconds)},
		N:              cfg.N,
		R:              cfg.R,
		Strategy:       cfg.Strategy,
		Timeout:        cfg.Timeout,
		FailureDetect:  cfg.Detect,
		ReserveRetries: 1,
	}
	jobs, _, err := RunJobs(w, spec, cfg.Jobs, sched.Config{
		Workers:      cfg.Workers,
		Retries:      cfg.Retries,
		Backoff:      5 * time.Second,
		Seed:         opts.Seed,
		IsContention: ChurnRetryable,
	})
	injected := driver.Stop()
	heal := hw.Stats()
	var crashes churn.Stats
	if churnDriver != nil {
		crashes = churnDriver.Stop()
	}
	if err != nil {
		return NemesisPoint{}, err
	}

	pt := NemesisPoint{
		Loss:           loss,
		PartDurSeconds: partDur.Seconds(),
		N:              cfg.N, R: cfg.R, Jobs: cfg.Jobs,
		Hosts:            w.Grid.TotalHosts(),
		Partitions:       injected.Partitions,
		PartitionSeconds: injected.PartitionTime.Seconds(),
		CutPairs:         injected.CutPairs,
		GrayEpisodes:     injected.GrayEpisodes,
		FailuresInjected: crashes.Failures,
		SN:               len(w.SNs),
		HealSamples:      heal.HealSamples,
		HealMaxSeconds:   heal.HealMax.Seconds(),
	}
	if partDur > 0 {
		pt.PartMTBFSeconds = cfg.PartMTBF.Seconds()
	}
	if heal.HealSamples > 0 {
		pt.HealMeanSeconds = heal.HealTime.Seconds() / float64(heal.HealSamples)
	}
	st := w.Frontal.Stats()
	pt.RPCRetries, pt.BreakerSkips = st.RPCRetries, st.BreakerSkips
	for _, p := range w.Peers {
		ps := p.Stats()
		pt.RPCRetries += ps.RPCRetries
		pt.BreakerSkips += ps.BreakerSkips
	}
	var sumSecs float64
	for _, j := range jobs {
		pt.Rebooks += j.Attempts - 1
		if j.Result != nil {
			pt.HostsLost += j.Result.Failover.HostsLost
		}
		if j.Err != nil || j.Result.LostRanks() > 0 {
			pt.Failed++
			continue
		}
		pt.Succeeded++
		sumSecs += j.Latency().Seconds()
		pt.Failovers += j.Result.Failover.Failovers
	}
	pt.SuccessRate = float64(pt.Succeeded) / float64(cfg.Jobs)
	if pt.Succeeded > 0 {
		pt.MeanSeconds = sumSecs / float64(pt.Succeeded)
		pt.Inflation = pt.MeanSeconds / cfg.JobSeconds
	}
	return pt, nil
}

// NemesisPointsCSV renders the job-plane measurements, one row per
// (loss, partition duration) point. Every column is independent of the
// federation width, like ScalePointsCSV: the golden regression pins
// this rendering byte-for-byte across -workers, -shards AND -sn. The
// width-dependent membership-tier columns (retry volume, breaker
// skips, gray episodes on supernode hosts, healing latency) live in
// NemesisFederationCSV.
func NemesisPointsCSV(pts []NemesisPoint) string {
	var b strings.Builder
	b.WriteString("loss,part_s,part_mtbf_s,n,r,jobs,hosts,succeeded,failed,success_rate," +
		"mean_s,inflation,failovers,hosts_lost,rebooks,partitions,partition_s,cut_pairs," +
		"failures_injected\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%g,%.0f,%.0f,%d,%d,%d,%d,%d,%d,%.4f,%.3f,%.4f,%d,%d,%d,%d,%.3f,%d,%d\n",
			p.Loss, p.PartDurSeconds, p.PartMTBFSeconds, p.N, p.R, p.Jobs, p.Hosts,
			p.Succeeded, p.Failed, p.SuccessRate, p.MeanSeconds, p.Inflation,
			p.Failovers, p.HostsLost, p.Rebooks, p.Partitions, p.PartitionSeconds,
			p.CutPairs, p.FailuresInjected)
	}
	return b.String()
}

// NemesisFederationCSV renders the membership-tier measurements —
// retry volume, breaker skips, gray episodes and the split-brain /
// healing stats. These depend on the federation width (a wider tier
// has more cross-site membership traffic to retry and its own hosts
// can go gray), so this CSV is pinned per fixed deployment shape
// (sequential vs sharded), not across -sn.
func NemesisFederationCSV(pts []NemesisPoint) string {
	var b strings.Builder
	b.WriteString("loss,part_s,sn,rpc_retries,breaker_skips,gray_episodes," +
		"splits,split_s,heal_samples,heal_mean_s,heal_max_s\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%g,%.0f,%d,%d,%d,%d,%d,%.3f,%d,%.4f,%.4f\n",
			p.Loss, p.PartDurSeconds, p.SN, p.RPCRetries, p.BreakerSkips,
			p.GrayEpisodes, p.Partitions, p.PartitionSeconds,
			p.HealSamples, p.HealMeanSeconds, p.HealMaxSeconds)
	}
	return b.String()
}

// RenderNemesisPoints prints a nemesis sweep as a table.
func RenderNemesisPoints(title string, pts []NemesisPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s %8s %8s %9s %9s %7s %7s %8s %7s %9s\n",
		"loss", "part(s)", "success", "mean(s)", "inflate", "rebook", "lost", "retries", "splits", "heal(s)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6g %8.0f %6.0f%% %9.1f %8.2fx %7d %7d %8d %7d %9.2f\n",
			p.Loss, p.PartDurSeconds, 100*p.SuccessRate, p.MeanSeconds, p.Inflation,
			p.Rebooks, p.HostsLost, p.RPCRetries, p.Partitions, p.HealMeanSeconds)
	}
	return b.String()
}
