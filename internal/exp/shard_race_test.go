package exp

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/sched"
)

// TestShardChurnBarrierRace exercises the sharded barrier path under
// maximum contention for the race detector: a federated world (4
// supernodes on dedicated hosts) split over 3 shard event loops, with
// the churn engine killing hosts — compute hosts and supernode hosts
// alike — at window barriers while jobs run. MTBF well below the run
// horizon makes nearly every host (and with it at least one supernode
// host) cycle down and up mid-run, so the test drives the cross-shard
// failover, FIN, and re-registration machinery while shard workers run
// concurrently. VTIME_CHECK arms the lookahead-safety assertion for
// the whole run.
//
// The run must (a) finish, (b) inject a substantial failure load, and
// (c) reproduce the single-shard timeline byte for byte — no event
// lost or double-fired at any barrier.
func TestShardChurnBarrierRace(t *testing.T) {
	t.Setenv("VTIME_CHECK", "1")

	spec, err := grid.ParseTopologySpec("synth:S=3,H=8")
	if err != nil {
		t.Fatal(err)
	}

	run := func(shards int) (sched.Stats, churn.Stats, []string) {
		o := DefaultOptions(99)
		o.Topology = spec
		o.Supernodes = 4
		o.Shards = shards
		w := NewWorld(o)
		defer w.Close()
		if err := w.Boot(); err != nil {
			t.Fatal(err)
		}
		budget := runJobsBudget(4)
		driver := w.StartChurn(churn.Config{
			Seed:    churnSeed(99, 60*time.Second, 2),
			MTBF:    60 * time.Second,
			MTTR:    30 * time.Second,
			Horizon: time.Duration(budget) * time.Second,
		})
		jspec := mpd.JobSpec{
			Program: "spin", Args: []string{"30"},
			N: 6, R: 2, Strategy: core.Spread,
			Timeout:        3 * time.Minute,
			FailureDetect:  5 * time.Second,
			ReserveRetries: 1,
		}
		jobs, stats, err := RunJobs(w, jspec, 4, sched.Config{
			Workers: 2, Retries: 4, Backoff: 5 * time.Second,
			Seed: 99, IsContention: ChurnRetryable,
		})
		injected := driver.Stop()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		lines := make([]string, 0, len(jobs))
		for _, j := range jobs {
			lines = append(lines, jobLine(j))
		}
		return stats, injected, lines
	}

	seqSched, seqInj, seqJobs := run(1)
	shSched, shInj, shJobs := run(3)

	if seqInj.Failures < 10 {
		t.Fatalf("churn load too light to mean anything: %d failures", seqInj.Failures)
	}
	if shInj != seqInj {
		t.Fatalf("injected churn diverged:\nseq: %+v\nsharded: %+v", seqInj, shInj)
	}
	if shSched != seqSched {
		t.Fatalf("scheduler stats diverged:\nseq: %+v\nsharded: %+v", seqSched, shSched)
	}
	for i := range seqJobs {
		if shJobs[i] != seqJobs[i] {
			t.Fatalf("job %d diverged:\nseq:     %s\nsharded: %s", i, seqJobs[i], shJobs[i])
		}
	}
}

// jobLine flattens the determinism-relevant outcome of one job.
func jobLine(j *sched.Job) string {
	fo, hl := -1, -1
	if j.Result != nil {
		fo = j.Result.Failover.Failovers
		hl = j.Result.Failover.HostsLost
	}
	errs := "<nil>"
	if j.Err != nil {
		errs = j.Err.Error()
	}
	return fmt.Sprintf("%v|%v|%d|%d|%d|%d|%s",
		j.Latency(), j.Wasted, j.Attempts, j.Conflicts, fo, hl, errs)
}
