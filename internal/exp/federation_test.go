package exp

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/overlay"
)

// tinySynth parses the small fixed-seed world the federation tests run
// on: 3 sites × 8 hosts.
func tinySynth(t *testing.T) grid.TopologySpec {
	t.Helper()
	spec, err := grid.ParseTopologySpec("synth:S=3,H=8")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestFederatedWorldBoots: a K=4 federation on a small synthetic world
// boots, every member converges to the full merged membership, the
// owned shards partition the peers, and the submitter's view is as
// complete as in a standalone world.
func TestFederatedWorldBoots(t *testing.T) {
	opts := DefaultOptions(42)
	opts.Topology = tinySynth(t)
	opts.Supernodes = 4
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if len(w.SNs) != 4 || len(w.SNAddrs) != 4 {
		t.Fatalf("want 4 supernodes, have %d (%v)", len(w.SNs), w.SNAddrs)
	}
	world := len(w.Peers) + 1 // peers + frontal
	owned := 0
	for i, sn := range w.SNs {
		owned += sn.PeerCount()
		if got := sn.MergedCount(); got != world {
			t.Errorf("sn%d merged view has %d entries, want %d", i, got, world)
		}
	}
	if owned != world {
		t.Errorf("shards own %d entries in total, want %d (a peer is double- or un-registered)", owned, world)
	}
	// Every peer must live in its rendezvous home shard (nothing failed
	// over during a clean boot).
	for i, sn := range w.SNs {
		for _, id := range sn.OwnedIDs() {
			if home := overlay.ShardAssign(id, len(w.SNs)); home != i {
				t.Errorf("host %s registered at shard %d, home is %d", id, i, home)
			}
		}
	}
	if got := w.Frontal.Cache().Size(); got != len(w.Peers) {
		t.Errorf("frontal knows %d peers, want %d", got, len(w.Peers))
	}
	fed := w.FederationStats()
	if fed.GossipExchanges == 0 {
		t.Error("no gossip exchanges recorded")
	}
	if fed.StaleSamples == 0 {
		t.Error("no staleness samples recorded")
	}
	if fed.Fostered != 0 || fed.Redirects != 0 {
		t.Errorf("clean boot fostered %d / redirected %d registrations", fed.Fostered, fed.Redirects)
	}
}

// TestScaleCSVIdenticalAcrossFederationWidth is the federation's
// flagship determinism property (and the PR's acceptance criterion): on
// a small fixed-seed static world, a K=1 and a K=4 membership tier
// produce byte-identical scale-experiment CSVs. Placement cannot tell
// the tiers apart — the gossip staleness bound is tighter than anything
// the booking path observes — and the per-flow jitter streams keep the
// extra control traffic from perturbing data-plane timing.
func TestScaleCSVIdenticalAcrossFederationWidth(t *testing.T) {
	cfg := ScaleConfig{
		Base:       tinySynth(t),
		Strategies: []core.Strategy{core.Spread, core.Concentrate, "comm-aware"},
		N:          6,
	}
	csvAt := func(k int) string {
		t.Helper()
		c := cfg
		c.Supernodes = []int{k}
		pts, err := ScaleSweep(DefaultOptions(42), c, 1)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		return ScalePointsCSV(pts)
	}
	k1, k4 := csvAt(1), csvAt(4)
	if k1 != k4 {
		t.Fatalf("K=1 and K=4 scale CSVs differ:\n--- K=1 ---\n%s--- K=4 ---\n%s", k1, k4)
	}
	if !strings.Contains(k1, "spread") {
		t.Fatalf("CSV looks empty:\n%s", k1)
	}
}

// TestEmitFederationBenchJSON writes BENCH_federation.json — the
// membership tier's trajectory record, one point per commit in CI —
// when BENCH_FEDERATION_JSON names the output path. It sweeps a
// 2000-host world across federation widths K = 1/4/16 and records, per
// K, the numbers the federation is accountable for: mean registration
// latency, mean gossip propagation staleness, membership-plane bytes
// per submission window, completion time and the wall clock of the
// whole sweep.
func TestEmitFederationBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_FEDERATION_JSON")
	if out == "" {
		t.Skip("BENCH_FEDERATION_JSON not set")
	}
	base, err := grid.ParseTopologySpec("synth:S=8,H=250")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	pts, err := ScaleSweep(DefaultOptions(42), ScaleConfig{
		Base:       base,
		Strategies: []core.Strategy{core.Spread},
		HostCounts: []int{2000},
		Supernodes: []int{1, 4, 16},
		N:          64,
	}, DefaultWorkers())
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	type point struct {
		Name      string  `json:"name"`
		SN        int     `json:"sn"`
		Hosts     int     `json:"hosts"`
		Seconds   float64 `json:"seconds"`
		RegMS     float64 `json:"reg_ms"`
		StaleMS   float64 `json:"stale_ms"`
		MembBytes int64   `json:"memb_bytes"`
	}
	record := struct {
		Points      []point `json:"points"`
		WallSeconds float64 `json:"wall_seconds"`
	}{WallSeconds: wall.Seconds()}
	for _, p := range pts {
		record.Points = append(record.Points, point{
			Name:  "ScaleSweep/" + p.Strategy.String(),
			SN:    p.SN,
			Hosts: p.Hosts, Seconds: p.Seconds,
			RegMS: p.RegMS, StaleMS: p.StaleMS, MembBytes: p.MembBytes,
		})
	}
	blob, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d points, sweep %.2fs wall", out, len(record.Points), wall.Seconds())
}

// TestChurnSweepOnFederatedWorld: the survivability family runs end to
// end on a federated world — StartChurn injects failures on the
// dedicated supernode hosts too, so registrations cross shards mid-
// sweep — and the batch still completes with jobs succeeding.
func TestChurnSweepOnFederatedWorld(t *testing.T) {
	opts := DefaultOptions(42)
	opts.Supernodes = 3
	pts, err := ChurnSweep(opts, ChurnConfig{
		Base:       tinySynth(t),
		Strategies: []core.Strategy{core.Spread},
		MTBFs:      []time.Duration{300 * time.Second},
		Rs:         []int{2},
		N:          6,
		Jobs:       3,
		JobSeconds: 40,
		MTTR:       time.Minute,
		Detect:     10 * time.Second,
	}, 1)
	if err != nil {
		t.Fatalf("federated churn sweep: %v", err)
	}
	if len(pts) != 1 || pts[0].Jobs != 3 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Succeeded == 0 {
		t.Fatalf("no job survived churn on the federated world: %+v", pts[0])
	}
	if pts[0].FailuresInjected == 0 {
		t.Fatalf("churn injected nothing: %+v", pts[0])
	}
}

// TestFederationSurvivesSupernodeDeath: killing one shard's supernode
// mid-world forces its peers through the cross-shard failover path; the
// surviving members still answer with a complete merged view, and after
// the revival the federation heals back to home-shard ownership.
func TestFederationSurvivesSupernodeDeath(t *testing.T) {
	opts := DefaultOptions(7)
	opts.Topology = tinySynth(t)
	opts.Supernodes = 3
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	world := len(w.Peers) + 1

	// Kill shard 1's host. Its peers keep running (the supernode host is
	// dedicated); their keep-alives and re-registrations must foster
	// them into surviving shards.
	victim := w.snHosts[1].id
	w.Net.FailHost(victim)
	// Two full re-register cycles: the alive loop re-registers every 5th
	// 30s tick.
	w.S.RunFor(6 * time.Minute)

	for _, i := range []int{0, 2} {
		if got := w.SNs[i].MergedCount(); got != world {
			t.Errorf("surviving sn%d merged view has %d entries, want %d", i, got, world)
		}
	}
	fostered := w.SNs[0].Stats().Fostered + w.SNs[2].Stats().Fostered
	if w.SNs[1].PeerCount() > 0 && fostered == 0 {
		t.Error("shard 1 died with peers but nobody fostered them")
	}

	// Revive. Peers drift home on their next full re-registration; the
	// foster entries expire by TTL and gossip propagates the removals.
	w.Net.RestoreHost(victim)
	w.S.RunFor(15 * time.Minute) // > TTL (10m) past the re-register

	for i, sn := range w.SNs {
		if got := sn.MergedCount(); got != world {
			t.Errorf("healed sn%d merged view has %d entries, want %d", i, got, world)
		}
	}
	// Ownership is back at the rendezvous homes.
	total := 0
	for _, sn := range w.SNs {
		total += sn.PeerCount()
	}
	if total != world {
		t.Errorf("after healing the shards own %d entries, want %d", total, world)
	}
}
