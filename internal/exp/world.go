// Package exp is the experiment harness: it deploys the complete P2P-MPI
// middleware on the modelled Grid'5000 testbed and regenerates every
// table and figure of the paper's evaluation (§5). See EXPERIMENTS.md
// for the paper-vs-measured record.
package exp

import (
	"errors"
	"fmt"
	"time"

	"p2pmpi/internal/grid"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// FrontalHost is the submitter machine at nancy (job origin, §5). It
// also hosts the supernode and accepts no processes (P = 0).
const FrontalHost = "frontal.nancy"

// SupernodeAddr is the bootstrap address inside the world.
const SupernodeAddr = FrontalHost + ":8800"

// Options tunes a World.
type Options struct {
	// Seed drives all stochastic elements (jitter, keys).
	Seed int64
	// FrontalPingInterval is the submitter's probe period; the paper's
	// MPD pings periodically and the ranking noise between submissions
	// comes from here.
	FrontalPingInterval time.Duration
	// PeerPingInterval is the probe period of compute peers. Only the
	// submitter's measurements influence the experiments, so the harness
	// keeps peers' own probing sparse to bound simulation cost.
	PeerPingInterval time.Duration
	// Cost calibrates the NAS virtual-time runs.
	Cost nas.CostModel
	// Estimator selects the submitter's latency estimator (default:
	// KindLast, the paper's single-sample behaviour). Used by the
	// estimator study.
	Estimator       latency.Kind
	EstimatorWindow int
}

// DefaultOptions returns the harness configuration used for the paper's
// figures.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                seed,
		FrontalPingInterval: 20 * time.Second,
		PeerPingInterval:    time.Hour,
		Cost:                nas.DefaultCostModel(),
	}
}

// World is one booted deployment: 350 peers, one supernode, one
// submitter frontend, all under a virtual clock.
type World struct {
	S       *vtime.Scheduler
	Net     *simnet.Net
	Grid    *grid.Grid
	SN      *overlay.Supernode
	Frontal *mpd.MPD
	Peers   []*mpd.MPD
	opts    Options
}

// Programs returns the registry every peer runs: the paper's hostname
// experiment and the Class-B NAS pattern programs.
func Programs(cost nas.CostModel) map[string]mpd.Program {
	return map[string]mpd.Program{
		"hostname":   mpd.Hostname,
		"ep-model-B": nas.EPModelProgram(nas.EPClassB, cost),
		"is-model-B": nas.ISModelProgram(nas.ISClassB, cost),
	}
}

// NewWorld builds (without booting) the full testbed.
func NewWorld(opts Options) *World {
	s := vtime.New()
	g := grid.Grid5000()
	topo := simnet.NewGridTopology(g)
	topo.AddHost(FrontalHost, grid.Nancy)
	net := simnet.New(s, topo, simnet.DefaultConfig(opts.Seed))

	w := &World{S: s, Net: net, Grid: g, opts: opts}
	w.SN = overlay.NewSupernode(s, net.Node(FrontalHost), overlay.SupernodeConfig{
		Addr: SupernodeAddr,
		TTL:  10 * time.Minute,
	})

	programs := Programs(opts.Cost)
	w.Frontal = mpd.New(s, net.Node(FrontalHost), mpd.Config{
		Self: proto.PeerInfo{
			ID: FrontalHost, Site: grid.Nancy,
			MPDAddr: FrontalHost + ":9000", RSAddr: FrontalHost + ":9001",
		},
		SupernodeAddr:   SupernodeAddr,
		P:               0, // the frontend submits, it does not compute
		Programs:        programs,
		PingInterval:    opts.FrontalPingInterval,
		Estimator:       opts.Estimator,
		EstimatorWindow: opts.EstimatorWindow,
		Seed:            opts.Seed,
	})

	for _, h := range g.Hosts {
		cl := g.ClusterOf(h)
		w.Peers = append(w.Peers, mpd.New(s, net.Node(h.ID), mpd.Config{
			Self: proto.PeerInfo{
				ID: h.ID, Site: h.Site,
				MPDAddr: h.ID + ":9000", RSAddr: h.ID + ":9001",
			},
			SupernodeAddr: SupernodeAddr,
			// The experiments set P to the number of cores of the host
			// (§5: "their P parameter is set to the number of cores").
			P: h.Cores,
			J: 1,
			Profile: mpd.HostProfile{
				Cores:      h.Cores,
				CoreGFLOPS: cl.CoreGFLOPS,
				MemBWGBs:   cl.HostMemBWGBs,
			},
			Programs:     programs,
			PingInterval: opts.PeerPingInterval,
			Seed:         opts.Seed + int64(h.Index) + int64(len(h.ID))*131,
		}))
	}
	return w
}

// Boot starts every daemon and warms up the submitter's latency table
// (one cache refresh plus a ping round over all 350 peers).
func (w *World) Boot() error {
	var bootErr error
	w.S.Go("exp.boot", func() {
		if err := w.SN.Start(); err != nil {
			bootErr = err
			return
		}
		if err := w.Frontal.Start(); err != nil {
			bootErr = err
			return
		}
		for _, p := range w.Peers {
			if err := p.Start(); err != nil {
				bootErr = err
				return
			}
		}
	})
	w.S.RunFor(2 * time.Second)
	if bootErr != nil {
		return bootErr
	}
	// The frontal registered before the peers: refresh its view and
	// measure everyone, as the MPD does before booking (§4.2 step 2).
	w.S.Go("exp.warm", func() {
		if peers, err := overlay.FetchFrom(w.Net.Node(FrontalHost), SupernodeAddr, 2*time.Second); err == nil {
			w.Frontal.Cache().Update(peers)
		}
	})
	w.S.RunFor(5 * time.Second)
	w.S.RunFor(w.opts.FrontalPingInterval + 10*time.Second) // one full probe round
	if got := w.Frontal.Cache().Size(); got != len(w.Peers) {
		return fmt.Errorf("exp: frontal knows %d peers, want %d", got, len(w.Peers))
	}
	return nil
}

// Close shuts every daemon down and stops the scheduler.
func (w *World) Close() {
	w.SN.Close()
	w.Frontal.Close()
	for _, p := range w.Peers {
		p.Close()
	}
	w.S.Shutdown()
}

// ErrPumpExhausted is returned when a submission exceeds the pump budget.
var ErrPumpExhausted = errors.New("exp: submission did not complete within the simulated budget")

// Submit runs one job from the frontal, pumping the virtual clock until
// it completes (budget: one virtual hour).
func (w *World) Submit(spec mpd.JobSpec) (*mpd.JobResult, error) {
	type outcome struct {
		res *mpd.JobResult
		err error
	}
	ch := make(chan outcome, 1)
	w.S.Go("exp.submit", func() {
		res, err := w.Frontal.Submit(spec)
		ch <- outcome{res, err}
	})
	for i := 0; i < 3600; i++ {
		w.S.RunFor(time.Second)
		select {
		case o := <-ch:
			return o.res, o.err
		default:
		}
	}
	return nil, ErrPumpExhausted
}
