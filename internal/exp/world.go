package exp

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/faults"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// FrontalHost is the submitter machine at nancy (job origin, §5) on the
// default Grid5000 topology. It also hosts the supernode and accepts no
// processes (P = 0). Worlds built from other topologies compute their
// own frontal ID ("frontal." + origin site); use World.FrontalID.
const FrontalHost = "frontal.nancy"

// SupernodeAddr is the bootstrap address inside a Grid5000 world; other
// topologies use World.SNAddr.
const SupernodeAddr = FrontalHost + ":8800"

// Options tunes a World.
type Options struct {
	// Seed drives all stochastic elements (jitter, keys).
	Seed int64
	// Topology selects the testbed to deploy. The zero value builds the
	// paper's Grid'5000 (Table 1, 350 hosts); synthetic specs scale
	// worlds to thousands of hosts (grid.ParseTopologySpec for the
	// "synth:S=12,H=400" syntax).
	Topology grid.TopologySpec
	// FrontalPingInterval is the submitter's probe period; the paper's
	// MPD pings periodically and the ranking noise between submissions
	// comes from here.
	FrontalPingInterval time.Duration
	// PeerPingInterval is the probe period of compute peers. Only the
	// submitter's measurements influence the experiments, so the harness
	// keeps peers' own probing sparse to bound simulation cost.
	PeerPingInterval time.Duration
	// Cost calibrates the NAS virtual-time runs.
	Cost nas.CostModel
	// Estimator selects the submitter's latency estimator (default:
	// KindLast, the paper's single-sample behaviour). Used by the
	// estimator study.
	Estimator       latency.Kind
	EstimatorWindow int
	// MaxPeersReturned bounds the supernode's host-list replies (0 =
	// unbounded). See overlay.SupernodeConfig.MaxPeersReturned.
	MaxPeersReturned int
	// PeerRefreshInterval overrides the compute peers' cache-refresh
	// period (0 keeps the middleware default). Long-horizon sweeps on
	// multi-thousand-host worlds stretch it: every peer refresh ships a
	// host-list reply, an O(world) message that no measurement consumes
	// — only the submitter's view feeds the experiments. The frontal's
	// refresh period is never touched.
	PeerRefreshInterval time.Duration
	// PeerCacheCap bounds the total entries a compute peer's cache
	// retains before anything reads it (0 = unbounded, the historical
	// behaviour). The frontal is always exempt — its view feeds every
	// measurement. Large-world sweeps set this: an unread boot snapshot
	// of MaxPeersReturned entries per host is the dominant per-host
	// retention at hundreds of thousands of hosts.
	PeerCacheCap int
	// Supernodes is the membership-federation width K. 0 defers to the
	// topology spec's sn value (itself defaulting to 1). K = 1 deploys
	// the paper's single supernode on the frontal host — the historical
	// world, bit-for-bit. K > 1 shards the membership across K
	// supernodes on dedicated hosts placed round-robin over the sites
	// (site-aware: a whole-site outage cannot take the whole tier down),
	// gossiping digests so each can answer with a near-complete merged
	// view; peers register with their rendezvous-hash home shard and
	// fail over across shards.
	Supernodes int
	// GossipInterval overrides the federation's digest-exchange period
	// (default 250ms; only meaningful when Supernodes > 1).
	GossipInterval time.Duration
	// BootSpread staggers the daemon starts over this virtual span (0 =
	// the historical everyone-at-vtime-0 boot). Booting a million
	// daemons at the same virtual instant means a million registration
	// actors in flight at once — gigabytes of goroutine stacks;
	// spreading the starts bounds live-actor concurrency to roughly
	// hosts × (registration RTT / spread). Each daemon's start time is a
	// pure function of its global boot rank, so staggered worlds keep
	// byte-identical trajectories across -shards. Huge-world sweeps
	// (>100k hosts) default this; see scaleAt.
	BootSpread time.Duration
	// PeerAliveInterval overrides the compute peers' supernode
	// keep-alive period (0 keeps the middleware default, 30s). The
	// frontal is never touched. Huge-world sweeps stretch it: at a
	// million hosts the default cadence is 33k keep-alive round trips
	// per virtual second of pure liveness noise, and the supernode TTL
	// (10 minutes) tolerates a far sparser heartbeat.
	PeerAliveInterval time.Duration
	// RPCRetries, RPCBackoff and BreakerThreshold configure the daemons'
	// RPC robustness layer (see mpd.Shared): retryable control-plane
	// failures re-try with seeded exponential backoff, and a
	// per-supernode circuit breaker skips gray members. All zero — the
	// default — keeps every exchange single-shot, the historical
	// behaviour, so fault-free worlds replay bit-for-bit.
	RPCRetries       int
	RPCBackoff       time.Duration
	BreakerThreshold int
	// Shards partitions the world's sites onto that many independent
	// event-loop shards run as a conservative parallel simulation
	// (windowed barriers, cross-site lookahead — see vtime.Domain and
	// docs/PERF.md). 0 or 1 keeps the historical single sequential
	// scheduler, bit-for-bit. Clamped to the site count. The CSV outputs
	// of the sweep families are identical across shard counts; only
	// wall-clock time changes.
	Shards int
}

// DefaultOptions returns the harness configuration used for the paper's
// figures.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                seed,
		FrontalPingInterval: 20 * time.Second,
		PeerPingInterval:    time.Hour,
		Cost:                nas.DefaultCostModel(),
	}
}

// World is one booted deployment: one compute peer per grid host, a
// supernode tier (one member, or a K-shard federation), one submitter
// frontend, all under a virtual clock.
type World struct {
	// S is the scheduler daemon code on shard 0 (the origin site, the
	// frontal, every K=1 supernode) runs under — in an unsharded world,
	// the only scheduler. External actors that talk to the frontal
	// (submission, warm-up) spawn here.
	S *vtime.Scheduler
	// D is the shard domain of a sharded world (Options.Shards > 1),
	// nil otherwise. Use World.RunFor — not S.RunFor — to advance time
	// so both layouts pump correctly.
	D       *vtime.Domain
	Net     *simnet.Net
	Grid    *grid.Grid
	SN      *overlay.Supernode // SNs[0], kept for single-supernode callers
	SNs     []*overlay.Supernode
	Frontal *mpd.MPD
	Peers   []*mpd.MPD
	// FrontalID and SNAddr locate the submitter frontend and supernode
	// inside this world ("frontal.<origin>" / "frontal.<origin>:8800";
	// equal to the FrontalHost/SupernodeAddr constants on Grid5000).
	// SNAddrs lists the whole federation in shard order (len 1 when
	// Supernodes <= 1).
	FrontalID string
	SNAddr    string
	SNAddrs   []string
	// snHosts names the dedicated supernode hosts of a federation (empty
	// when the single supernode rides on the frontal) with their sites —
	// churn injects failures on them too.
	snHosts   []snHost
	siteShard map[string]int // site -> shard index (nil unsharded)
	opts      Options
}

// snHost pins one dedicated supernode host to its site.
type snHost struct{ id, site string }

// Programs returns the registry every peer runs: the paper's hostname
// experiment, the Class-B NAS pattern programs, and spin (a
// fixed-duration worker, the unit of work of the churn sweeps).
func Programs(cost nas.CostModel) map[string]mpd.Program {
	return map[string]mpd.Program{
		"hostname":   mpd.Hostname,
		"spin":       mpd.Spin,
		"ep-model-B": nas.EPModelProgram(nas.EPClassB, cost),
		"is-model-B": nas.ISModelProgram(nas.ISClassB, cost),
	}
}

// NewWorld builds (without booting) the full testbed described by
// opts.Topology (Grid5000 by default).
func NewWorld(opts Options) *World {
	g := opts.Topology.Build()
	k := opts.Supernodes
	if k <= 0 {
		k = opts.Topology.Defaulted().Supernodes
	}
	if k < 1 {
		k = 1
	}
	frontalID := "frontal." + g.Origin
	snAddr := frontalID + ":8800"
	topo := simnet.NewGridTopology(g)
	topo.AddHost(frontalID, g.Origin)

	w := &World{Grid: g, FrontalID: frontalID, SNAddr: snAddr, opts: opts}
	if k == 1 {
		w.SNAddrs = []string{snAddr}
	} else {
		// A K-shard federation on dedicated hosts, spread round-robin
		// over the sites (site-aware: one switch or power domain cannot
		// take the whole membership tier down). Dedicated hosts keep the
		// tier's traffic off the frontal's and the compute peers' NICs,
		// which is what lets a federated world reproduce a standalone
		// world's data-plane timeline exactly.
		w.SNAddrs = make([]string, k)
		for i := 0; i < k; i++ {
			site := g.SiteOrder[i%len(g.SiteOrder)]
			id := fmt.Sprintf("snfed%02d.%s", i+1, site)
			w.snHosts = append(w.snHosts, snHost{id: id, site: site})
			w.SNAddrs[i] = id + ":8800"
			topo.AddHost(id, site)
		}
		w.SNAddr = w.SNAddrs[0]
	}

	// Host ranks in sequential boot-spawn order (supernode tier,
	// frontal, grid hosts): the cross-shard merge breaks timestamp
	// ties by rank, which reproduces the sequential ordering of the
	// vtime-0 registration storm. The single-shard engine provisions
	// from the same lists — ranks are inert there, but the slab and the
	// explicit sites spare it the per-host allocations and the grid's
	// O(world) host index.
	ranked := make([]string, 0, len(w.snHosts)+1+len(g.Hosts))
	sites := make([]string, 0, cap(ranked))
	for _, sh := range w.snHosts {
		ranked = append(ranked, sh.id)
		sites = append(sites, sh.site)
	}
	ranked = append(ranked, frontalID)
	sites = append(sites, g.Origin)
	for _, h := range g.Hosts {
		ranked = append(ranked, h.ID)
		sites = append(sites, h.Site)
	}

	// Scheduler fabric: the historical single sequential scheduler, or a
	// conservative parallel domain partitioned by site. Shard 0 always
	// holds the origin site (Partition contract), so the frontal and its
	// external actors stay on w.S either way.
	if nsh := opts.Shards; nsh > 1 {
		part := g.PartitionSites(nsh)
		if part.SiteShard[g.Origin] != 0 {
			panic("exp: origin site not on shard 0")
		}
		dom := vtime.NewDomain(part.N(), g.MinCrossLatency(part))
		w.D = dom
		w.S = dom.Shard(0)
		w.siteShard = part.SiteShard
		w.Net = simnet.NewSharded(dom, topo, simnet.DefaultConfig(opts.Seed), simnet.ShardConfig{
			SiteShard: part.SiteShard,
			Hosts:     ranked,
			Sites:     sites,
			Check:     os.Getenv("VTIME_CHECK") == "1",
		})
	} else {
		w.S = vtime.New()
		w.Net = simnet.New(w.S, topo, simnet.DefaultConfig(opts.Seed))
		w.Net.Provision(ranked, sites)
	}
	s, net := w.S, w.Net

	// One interner per world: every daemon and supernode canonicalizes
	// the PeerInfo values it retains against it. Pure memory sharing of
	// equal values — trajectories are untouched.
	intern := overlay.NewInterner()

	if k == 1 {
		// The historical world: one supernode co-located with the
		// frontal. Every pre-federation experiment replays bit-for-bit.
		w.SNs = []*overlay.Supernode{overlay.NewSupernode(s, net.Node(frontalID), overlay.SupernodeConfig{
			Addr:             snAddr,
			TTL:              10 * time.Minute,
			MaxPeersReturned: opts.MaxPeersReturned,
			Seed:             opts.Seed,
			Intern:           intern,
		})}
	} else {
		for i := 0; i < k; i++ {
			w.SNs = append(w.SNs, overlay.NewSupernode(w.shardFor(w.snHosts[i].site), net.Node(w.snHosts[i].id), overlay.SupernodeConfig{
				Addr:             w.SNAddrs[i],
				TTL:              10 * time.Minute,
				MaxPeersReturned: opts.MaxPeersReturned,
				Seed:             opts.Seed + int64(i)*1013,
				Shard:            i,
				Federation:       w.SNAddrs,
				GossipInterval:   opts.GossipInterval,
				Intern:           intern,
			}))
		}
	}
	w.SN = w.SNs[0]

	// On synthetic (usually much larger) worlds the daemons skip their
	// boot-time ping round: all-pairs probing is quadratic in world size
	// and only the submitter's latency view feeds the experiments — and
	// the submitter's warm-up (Boot) explicitly waits out one full
	// periodic probe round, so its boot round is redundant too. Skipping
	// the frontal's boot round also keeps its probe flows a pure
	// function of the warmed cache rather than of which peers happened
	// to beat it to its supernode shard, which is what makes K=1 and
	// K>1 worlds probe identically. The Grid5000 path keeps the
	// historical behaviour so published figures replay byte-for-byte.
	bootPing := !opts.Topology.IsSynthetic()

	// In a federation every daemon learns the whole shard-ordered
	// address list and computes its own home shard.
	var federation []string
	if k > 1 {
		federation = w.SNAddrs
	}

	programs := Programs(opts.Cost)
	w.Frontal = mpd.New(s, net.Node(frontalID), mpd.Config{
		Self: proto.PeerInfo{
			ID: frontalID, Site: g.Origin,
			MPDAddr: frontalID + ":9000", RSAddr: frontalID + ":9001",
		},
		P:    0, // the frontend submits, it does not compute
		Seed: opts.Seed,
		Shared: &mpd.Shared{
			SupernodeAddr:    w.SNAddr,
			Federation:       federation,
			Programs:         programs,
			PingInterval:     opts.FrontalPingInterval,
			Estimator:        opts.Estimator,
			EstimatorWindow:  opts.EstimatorWindow,
			NoBootPing:       !bootPing,
			Intern:           intern,
			RPCRetries:       opts.RPCRetries,
			RPCBackoff:       opts.RPCBackoff,
			BreakerThreshold: opts.BreakerThreshold,
		},
	})

	// Provision the compute daemons in parallel. Construction touches no
	// scheduler or simulated-network state — net.Node returns a stateless
	// view, the interner is a concurrent map of value-equal entries, and
	// every lazily built daemon member stays nil — and each worker fills
	// disjoint w.Peers slots by index, so the result is identical to the
	// sequential loop. A million-host world provisions on all cores
	// instead of one.
	w.Peers = make([]*mpd.MPD, len(g.Hosts))
	// One Shared block backs every compute daemon: at a million hosts
	// the deployment-invariant half of the config is the difference
	// between one struct and hundreds of MB of identical copies.
	peerShared := &mpd.Shared{
		SupernodeAddr:    w.SNAddr,
		Federation:       federation,
		AliveInterval:    opts.PeerAliveInterval,
		Programs:         programs,
		PingInterval:     opts.PeerPingInterval,
		RefreshInterval:  opts.PeerRefreshInterval,
		NoBootPing:       !bootPing,
		Intern:           intern,
		PeerCacheCap:     opts.PeerCacheCap,
		RPCRetries:       opts.RPCRetries,
		RPCBackoff:       opts.RPCBackoff,
		BreakerThreshold: opts.BreakerThreshold,
	}
	buildPeer := func(i int) {
		h := g.Hosts[i]
		cl := g.ClusterOf(h)
		w.Peers[i] = mpd.New(w.shardFor(h.Site), net.Node(h.ID), mpd.Config{
			Self: proto.PeerInfo{
				ID: h.ID, Site: h.Site,
				MPDAddr: h.ID + ":9000", RSAddr: h.ID + ":9001",
			},
			// The experiments set P to the number of cores of the host
			// (§5: "their P parameter is set to the number of cores").
			P: h.Cores,
			J: 1,
			Profile: mpd.HostProfile{
				Cores:      h.Cores,
				CoreGFLOPS: cl.CoreGFLOPS,
				MemBWGBs:   cl.HostMemBWGBs,
			},
			Seed:   opts.Seed + int64(h.Index) + int64(len(h.ID))*131,
			Shared: peerShared,
		})
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(g.Hosts) >= 4096 {
		var wg sync.WaitGroup
		chunk := (len(g.Hosts) + workers - 1) / workers
		for lo := 0; lo < len(g.Hosts); lo += chunk {
			hi := lo + chunk
			if hi > len(g.Hosts) {
				hi = len(g.Hosts)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					buildPeer(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := range g.Hosts {
			buildPeer(i)
		}
	}
	return w
}

// shardFor returns the scheduler of the shard owning a site (the single
// scheduler when unsharded). Every daemon runs on the shard of its
// host's site, so its actors only ever touch that shard's network state.
func (w *World) shardFor(site string) *vtime.Scheduler {
	if w.D == nil {
		return w.S
	}
	return w.D.Shard(w.siteShard[site])
}

// shard returns shard i's scheduler (the single scheduler unsharded).
func (w *World) shard(i int) *vtime.Scheduler {
	if w.D == nil {
		return w.S
	}
	return w.D.Shard(i)
}

// RunFor advances the world's virtual clock by d — the whole shard
// domain when sharded, the single scheduler otherwise. Harness code must
// pump through this (not w.S.RunFor) to drive every shard.
func (w *World) RunFor(d time.Duration) {
	if w.D != nil {
		w.D.RunFor(d)
		return
	}
	w.S.RunFor(d)
}

// Boot starts every daemon and warms up the submitter's latency table
// (one cache refresh plus a ping round over all 350 peers).
func (w *World) Boot() error {
	// Group the daemon starts by shard, preserving the global order
	// (supernode tier, frontal, grid hosts) within each shard: one boot
	// actor per shard spawns its daemons in that order, so every shard's
	// vtime-0 registration storm executes in host-rank order and the
	// cross-shard merge's rank tiebreak stitches the shards back into
	// the sequential ordering. In an unsharded world this degenerates to
	// the single historical "exp.boot" actor.
	//
	// With Options.BootSpread set, daemon rank r starts at virtual time
	// r×step instead of 0: each shard's boot actor sleeps up to the
	// global-rank target before every Start, so concurrent registration
	// actors stay bounded. The target is a function of the global rank
	// only — never of the shard layout — so a staggered world's
	// trajectory is identical at every -shards value.
	nsh := 1
	if w.D != nil {
		nsh = w.D.Shards()
	}
	type bootStart struct {
		rank int
		fn   func() error
	}
	starts := make([][]bootStart, nsh)
	rank := 0
	add := func(site string, fn func() error) {
		si := 0
		if w.D != nil {
			si = w.siteShard[site]
		}
		starts[si] = append(starts[si], bootStart{rank: rank, fn: fn})
		rank++
	}
	for i, sn := range w.SNs {
		site := w.Grid.Origin
		if len(w.snHosts) > 0 {
			site = w.snHosts[i].site
		}
		add(site, sn.Start)
	}
	add(w.Grid.Origin, w.Frontal.Start)
	for i, h := range w.Grid.Hosts {
		add(h.Site, w.Peers[i].Start)
	}
	var step time.Duration
	if w.opts.BootSpread > 0 && rank > 1 {
		step = w.opts.BootSpread / time.Duration(rank-1)
	}
	bootErrs := make([]error, nsh)
	for si := range starts {
		si := si
		list := starts[si]
		if len(list) == 0 {
			continue
		}
		rt := w.shard(si)
		rt.Go("exp.boot", func() {
			t0 := rt.Elapsed()
			for _, bs := range list {
				if step > 0 {
					if d := t0 + time.Duration(bs.rank)*step - rt.Elapsed(); d > 0 {
						rt.Sleep(d)
					}
				}
				if err := bs.fn(); err != nil {
					bootErrs[si] = err
					return
				}
			}
		})
	}
	w.RunFor(w.opts.BootSpread + 2*time.Second)
	for _, err := range bootErrs {
		if err != nil {
			return err
		}
	}
	// The frontal registered before the peers: refresh its view and
	// measure everyone, as the MPD does before booking (§4.2 step 2).
	w.S.Go("exp.warm", func() {
		if peers, err := overlay.FetchFrom(w.Net.Node(w.FrontalID), w.SNAddr, 2*time.Second); err == nil {
			w.Frontal.Cache().Update(peers)
		}
	})
	w.RunFor(5 * time.Second)
	w.RunFor(w.opts.FrontalPingInterval + 10*time.Second) // one full probe round
	want := len(w.Peers)
	if limit := w.opts.MaxPeersReturned; limit > 0 && limit-1 < want {
		// A bounded reply window may include the frontal's own registry
		// entry, which the cache drops — so a healthy world can surface
		// at most limit-1 peers from the single warm fetch. Floor at 1
		// so the check still catches a dead supernode (a limit of 1 is
		// below what this harness can boot).
		want = limit - 1
		if want < 1 {
			want = 1
		}
	}
	if got := w.Frontal.Cache().Size(); got < want {
		return fmt.Errorf("exp: frontal knows %d peers, want %d", got, want)
	}
	return nil
}

// StartChurn wires a seeded fault-injection driver into the world and
// starts it: a failing host is dropped by the simulated network and its
// MPD crashes (hosted jobs die unreported, reservations are released as
// failures — not conflicts); a reviving host regains its links and
// re-registers with the supernode. The frontal host (submitter and
// supernode) is exempt: the paper's observer survives, like the
// Grid'5000 frontends. Call Stop on the returned driver to halt
// injection and read the injected totals.
func (w *World) StartChurn(cfg churn.Config) *churn.Driver {
	byID := make(map[string]*mpd.MPD, len(w.Peers))
	hosts := make([]string, 0, len(w.Grid.Hosts)+len(w.snHosts))
	for i, h := range w.Grid.Hosts {
		hosts = append(hosts, h.ID)
		byID[h.ID] = w.Peers[i]
	}
	// A federation's dedicated supernode hosts churn too: killing a
	// shard forces its peers through the cross-shard failover path and
	// the revival through anti-entropy healing. (The single supernode of
	// a K=1 world rides on the exempt frontal, the paper's surviving
	// observer.) Each host's renewal trace is independently seeded, so
	// adding the supernode hosts does not move any compute host's
	// failure timeline.
	snSites := make(map[string]string, len(w.snHosts))
	for _, sh := range w.snHosts {
		hosts = append(hosts, sh.id)
		snSites[sh.id] = sh.site
	}
	siteOf := func(id string) string {
		if h := w.Grid.HostByID(id); h != nil {
			return h.Site
		}
		return snSites[id]
	}
	tr := churn.Trace(hosts, siteOf, cfg)
	d := churn.NewDriver(w.S, tr, churn.Hooks{
		Down: func(id string) {
			w.Net.FailHost(id)
			if p := byID[id]; p != nil {
				p.Crash()
			}
		},
		Up: func(id string) {
			w.Net.RestoreHost(id)
			if p := byID[id]; p != nil {
				p.Reannounce()
			}
		},
	})
	d.SetHostCount(len(hosts)) // normalize DownFraction over the platform
	if w.D != nil {
		// Sharded worlds apply churn at window barriers: the hooks fail
		// hosts and crash daemons across shards, which is only race-free
		// with every shard parked at the transition's exact virtual time.
		d.StartGlobal(w.D)
	} else {
		d.Start()
	}
	return d
}

// StartFaults wires a seeded network-nemesis trace into the world and
// starts it, mirroring StartChurn: site-pair cuts (including
// federation-splitting bisections) toggle simnet link cuts, gray
// episodes degrade the host's links, and the constant knobs — uniform
// loss, latency inflation, bounded duplication — apply for the whole
// run. Sharded worlds replay the trace at window barriers
// (StartGlobal), so fault state only changes with every shard parked
// and the sequential and sharded trajectories stay byte-identical.
// The returned HealWatch measures split-brain windows and, on
// federated worlds, the anti-entropy healing latency after each spell.
func (w *World) StartFaults(cfg faults.Config) (*faults.Driver, *HealWatch) {
	cfg = cfg.Normalized()
	// Constant degradation applies up front, before any traffic flows:
	// the predicates gating the per-frame draws must be window-constant
	// (see simnet/faults.go), and "constant over the run" trivially is.
	w.Net.SetLinkFault(cfg.Loss, cfg.LatMult)
	if cfg.DupProb > 0 {
		w.Net.SetDuplication(cfg.DupProb, cfg.DupDelay)
	}
	sites := append([]string(nil), w.Grid.SiteOrder...)
	// Gray episodes can strike compute hosts and the federation's
	// dedicated supernode hosts (a gray membership shard is what the
	// breaker and failover rotation are for); the frontal — the paper's
	// surviving observer — is exempt, like under churn.
	hosts := make([]string, 0, len(w.Grid.Hosts)+len(w.snHosts))
	for _, h := range w.Grid.Hosts {
		hosts = append(hosts, h.ID)
	}
	for _, sh := range w.snHosts {
		hosts = append(hosts, sh.id)
	}
	hw := &HealWatch{w: w}
	d := faults.NewDriver(w.S, faults.Trace(sites, hosts, cfg), faults.Hooks{
		Partition: func(a, b string, on bool) {
			w.Net.SetCut(a, b, on)
			if on {
				hw.onSplit()
			}
		},
		Gray: func(host string, on bool) {
			w.Net.SetGray(host, cfg.GrayDrop, cfg.GraySlow, on)
		},
		Healed: hw.onHealed,
	})
	if w.D != nil {
		d.StartGlobal(w.D)
	} else {
		d.Start()
	}
	return d, hw
}

// HealStats summarises partition tolerance over one injection run.
type HealStats struct {
	// Splits counts partition spells; SplitTime sums their durations —
	// the total split-brain window during which federation members held
	// divergent membership views.
	Splits    int
	SplitTime time.Duration
	// HealSamples counts spells whose post-heal convergence was
	// observed; HealTime sums (and HealMax tracks the worst of) the lag
	// from the last cut lifting to every federation member reporting
	// element-wise equal version vectors (overlay.KnownVersions).
	HealSamples int
	HealTime    time.Duration
	HealMax     time.Duration
}

// HealWatch accumulates HealStats for one StartFaults run. Its hooks
// run on the fault driver's timeline (driver actor, or domain barriers
// when sharded), so reads of the supernodes' version vectors are
// race-free.
type HealWatch struct {
	w *World

	mu    sync.Mutex
	stats HealStats
	gen   int // invalidates a pending convergence poll chain
}

// healPollInterval is the virtual-time cadence of the post-heal
// convergence poll.
const healPollInterval = 250 * time.Millisecond

// Stats returns a snapshot of the accumulated measurements.
func (h *HealWatch) Stats() HealStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// onSplit invalidates any in-flight convergence poll: a new cut means
// views will diverge again, so the pending spell's healing time is
// unknowable (the next Healed restarts the measurement).
func (h *HealWatch) onSplit() {
	h.mu.Lock()
	h.gen++
	h.mu.Unlock()
}

// onHealed records the spell and, on a federated world, starts polling
// for version-vector convergence to timestamp the healing latency.
func (h *HealWatch) onHealed(start, end time.Time) {
	h.mu.Lock()
	h.stats.Splits++
	h.stats.SplitTime += end.Sub(start)
	h.gen++
	gen := h.gen
	h.mu.Unlock()
	if len(h.w.SNs) < 2 {
		return
	}
	var poll func()
	poll = func() {
		h.mu.Lock()
		stale := gen != h.gen
		h.mu.Unlock()
		if stale {
			return // a newer cut or heal superseded this chain
		}
		if !h.w.fedConverged() {
			h.w.scheduleIn(healPollInterval, poll)
			return
		}
		lag := h.w.now().Sub(end)
		h.mu.Lock()
		h.stats.HealSamples++
		h.stats.HealTime += lag
		if lag > h.stats.HealMax {
			h.stats.HealMax = lag
		}
		h.mu.Unlock()
	}
	h.w.scheduleIn(healPollInterval, poll)
}

// fedConverged reports whether every federation member knows the same
// per-shard version vector — the anti-entropy convergence predicate.
// Callers must hold a race-free vantage point (a domain barrier, or
// the sequential scheduler).
func (w *World) fedConverged() bool {
	base := w.SNs[0].KnownVersions()
	for _, sn := range w.SNs[1:] {
		v := sn.KnownVersions()
		for i := range base {
			if v[i] != base[i] {
				return false
			}
		}
	}
	return true
}

// now returns the world's virtual time from its canonical clock.
func (w *World) now() time.Time {
	if w.D != nil {
		return w.D.Now()
	}
	return w.S.Now()
}

// scheduleIn runs fn after d of virtual time — as a domain-global
// event when sharded (every shard parked), a plain scheduler event
// otherwise — matching the vantage point fault hooks run under.
func (w *World) scheduleIn(d time.Duration, fn func()) {
	if w.D != nil {
		w.D.ScheduleGlobal(w.D.Elapsed()+d, fn)
		return
	}
	w.S.Schedule(d, fn)
}

// Close shuts every daemon down and stops the scheduler.
func (w *World) Close() {
	for _, sn := range w.SNs {
		sn.Close()
	}
	w.Frontal.Close()
	for _, p := range w.Peers {
		p.Close()
	}
	if w.D != nil {
		w.D.Shutdown()
		return
	}
	w.S.Shutdown()
}

// FederationStats sums the supernode tier's membership-plane counters
// over every member.
func (w *World) FederationStats() overlay.SupernodeStats {
	var out overlay.SupernodeStats
	for _, sn := range w.SNs {
		s := sn.Stats()
		out.BytesIn += s.BytesIn
		out.BytesOut += s.BytesOut
		out.GossipExchanges += s.GossipExchanges
		out.GossipBytesIn += s.GossipBytesIn
		out.GossipBytesOut += s.GossipBytesOut
		out.Fostered += s.Fostered
		out.Redirects += s.Redirects
		out.StaleSamples += s.StaleSamples
		out.StaleSumNS += s.StaleSumNS
		if s.StaleMaxNS > out.StaleMaxNS {
			out.StaleMaxNS = s.StaleMaxNS
		}
	}
	return out
}

// MeanRegistrationLatency averages the successful supernode
// registration round trips over every compute peer.
func (w *World) MeanRegistrationLatency() time.Duration {
	var sum, n int64
	for _, p := range w.Peers {
		st := p.Stats()
		sum += st.RegNanos
		n += st.Registrations
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / n)
}

// ErrPumpExhausted is returned when a submission exceeds the pump budget.
var ErrPumpExhausted = errors.New("exp: submission did not complete within the simulated budget")

// Submit runs one job from the frontal, pumping the virtual clock until
// it completes (budget: one virtual hour).
func (w *World) Submit(spec mpd.JobSpec) (*mpd.JobResult, error) {
	type outcome struct {
		res *mpd.JobResult
		err error
	}
	ch := make(chan outcome, 1)
	w.S.Go("exp.submit", func() {
		res, err := w.Frontal.Submit(spec)
		ch <- outcome{res, err}
	})
	for i := 0; i < 3600; i++ {
		w.RunFor(time.Second)
		select {
		case o := <-ch:
			return o.res, o.err
		default:
		}
	}
	return nil, ErrPumpExhausted
}
