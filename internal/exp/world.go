package exp

import (
	"errors"
	"fmt"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/nas"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// FrontalHost is the submitter machine at nancy (job origin, §5) on the
// default Grid5000 topology. It also hosts the supernode and accepts no
// processes (P = 0). Worlds built from other topologies compute their
// own frontal ID ("frontal." + origin site); use World.FrontalID.
const FrontalHost = "frontal.nancy"

// SupernodeAddr is the bootstrap address inside a Grid5000 world; other
// topologies use World.SNAddr.
const SupernodeAddr = FrontalHost + ":8800"

// Options tunes a World.
type Options struct {
	// Seed drives all stochastic elements (jitter, keys).
	Seed int64
	// Topology selects the testbed to deploy. The zero value builds the
	// paper's Grid'5000 (Table 1, 350 hosts); synthetic specs scale
	// worlds to thousands of hosts (grid.ParseTopologySpec for the
	// "synth:S=12,H=400" syntax).
	Topology grid.TopologySpec
	// FrontalPingInterval is the submitter's probe period; the paper's
	// MPD pings periodically and the ranking noise between submissions
	// comes from here.
	FrontalPingInterval time.Duration
	// PeerPingInterval is the probe period of compute peers. Only the
	// submitter's measurements influence the experiments, so the harness
	// keeps peers' own probing sparse to bound simulation cost.
	PeerPingInterval time.Duration
	// Cost calibrates the NAS virtual-time runs.
	Cost nas.CostModel
	// Estimator selects the submitter's latency estimator (default:
	// KindLast, the paper's single-sample behaviour). Used by the
	// estimator study.
	Estimator       latency.Kind
	EstimatorWindow int
	// MaxPeersReturned bounds the supernode's host-list replies (0 =
	// unbounded). See overlay.SupernodeConfig.MaxPeersReturned.
	MaxPeersReturned int
	// PeerRefreshInterval overrides the compute peers' cache-refresh
	// period (0 keeps the middleware default). Long-horizon sweeps on
	// multi-thousand-host worlds stretch it: every peer refresh ships a
	// host-list reply, an O(world) message that no measurement consumes
	// — only the submitter's view feeds the experiments. The frontal's
	// refresh period is never touched.
	PeerRefreshInterval time.Duration
}

// DefaultOptions returns the harness configuration used for the paper's
// figures.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                seed,
		FrontalPingInterval: 20 * time.Second,
		PeerPingInterval:    time.Hour,
		Cost:                nas.DefaultCostModel(),
	}
}

// World is one booted deployment: one compute peer per grid host, one
// supernode, one submitter frontend, all under a virtual clock.
type World struct {
	S       *vtime.Scheduler
	Net     *simnet.Net
	Grid    *grid.Grid
	SN      *overlay.Supernode
	Frontal *mpd.MPD
	Peers   []*mpd.MPD
	// FrontalID and SNAddr locate the submitter frontend and supernode
	// inside this world ("frontal.<origin>" / "frontal.<origin>:8800";
	// equal to the FrontalHost/SupernodeAddr constants on Grid5000).
	FrontalID string
	SNAddr    string
	opts      Options
}

// Programs returns the registry every peer runs: the paper's hostname
// experiment, the Class-B NAS pattern programs, and spin (a
// fixed-duration worker, the unit of work of the churn sweeps).
func Programs(cost nas.CostModel) map[string]mpd.Program {
	return map[string]mpd.Program{
		"hostname":   mpd.Hostname,
		"spin":       mpd.Spin,
		"ep-model-B": nas.EPModelProgram(nas.EPClassB, cost),
		"is-model-B": nas.ISModelProgram(nas.ISClassB, cost),
	}
}

// NewWorld builds (without booting) the full testbed described by
// opts.Topology (Grid5000 by default).
func NewWorld(opts Options) *World {
	s := vtime.New()
	g := opts.Topology.Build()
	frontalID := "frontal." + g.Origin
	snAddr := frontalID + ":8800"
	topo := simnet.NewGridTopology(g)
	topo.AddHost(frontalID, g.Origin)
	net := simnet.New(s, topo, simnet.DefaultConfig(opts.Seed))

	w := &World{S: s, Net: net, Grid: g, FrontalID: frontalID, SNAddr: snAddr, opts: opts}
	w.SN = overlay.NewSupernode(s, net.Node(frontalID), overlay.SupernodeConfig{
		Addr:             snAddr,
		TTL:              10 * time.Minute,
		MaxPeersReturned: opts.MaxPeersReturned,
		Seed:             opts.Seed,
	})

	// On synthetic (usually much larger) worlds the peers skip their
	// boot-time ping round: all-pairs probing is quadratic in world size
	// and only the submitter's latency view feeds the experiments. The
	// Grid5000 path keeps the historical behaviour so published figures
	// replay byte-for-byte.
	peerBootPing := !opts.Topology.IsSynthetic()

	programs := Programs(opts.Cost)
	w.Frontal = mpd.New(s, net.Node(frontalID), mpd.Config{
		Self: proto.PeerInfo{
			ID: frontalID, Site: g.Origin,
			MPDAddr: frontalID + ":9000", RSAddr: frontalID + ":9001",
		},
		SupernodeAddr:   snAddr,
		P:               0, // the frontend submits, it does not compute
		Programs:        programs,
		PingInterval:    opts.FrontalPingInterval,
		Estimator:       opts.Estimator,
		EstimatorWindow: opts.EstimatorWindow,
		Seed:            opts.Seed,
	})

	for _, h := range g.Hosts {
		cl := g.ClusterOf(h)
		w.Peers = append(w.Peers, mpd.New(s, net.Node(h.ID), mpd.Config{
			Self: proto.PeerInfo{
				ID: h.ID, Site: h.Site,
				MPDAddr: h.ID + ":9000", RSAddr: h.ID + ":9001",
			},
			SupernodeAddr: snAddr,
			// The experiments set P to the number of cores of the host
			// (§5: "their P parameter is set to the number of cores").
			P: h.Cores,
			J: 1,
			Profile: mpd.HostProfile{
				Cores:      h.Cores,
				CoreGFLOPS: cl.CoreGFLOPS,
				MemBWGBs:   cl.HostMemBWGBs,
			},
			Programs:        programs,
			PingInterval:    opts.PeerPingInterval,
			RefreshInterval: opts.PeerRefreshInterval,
			NoBootPing:      !peerBootPing,
			Seed:            opts.Seed + int64(h.Index) + int64(len(h.ID))*131,
		}))
	}
	return w
}

// Boot starts every daemon and warms up the submitter's latency table
// (one cache refresh plus a ping round over all 350 peers).
func (w *World) Boot() error {
	var bootErr error
	w.S.Go("exp.boot", func() {
		if err := w.SN.Start(); err != nil {
			bootErr = err
			return
		}
		if err := w.Frontal.Start(); err != nil {
			bootErr = err
			return
		}
		for _, p := range w.Peers {
			if err := p.Start(); err != nil {
				bootErr = err
				return
			}
		}
	})
	w.S.RunFor(2 * time.Second)
	if bootErr != nil {
		return bootErr
	}
	// The frontal registered before the peers: refresh its view and
	// measure everyone, as the MPD does before booking (§4.2 step 2).
	w.S.Go("exp.warm", func() {
		if peers, err := overlay.FetchFrom(w.Net.Node(w.FrontalID), w.SNAddr, 2*time.Second); err == nil {
			w.Frontal.Cache().Update(peers)
		}
	})
	w.S.RunFor(5 * time.Second)
	w.S.RunFor(w.opts.FrontalPingInterval + 10*time.Second) // one full probe round
	want := len(w.Peers)
	if limit := w.opts.MaxPeersReturned; limit > 0 && limit-1 < want {
		// A bounded reply window may include the frontal's own registry
		// entry, which the cache drops — so a healthy world can surface
		// at most limit-1 peers from the single warm fetch. Floor at 1
		// so the check still catches a dead supernode (a limit of 1 is
		// below what this harness can boot).
		want = limit - 1
		if want < 1 {
			want = 1
		}
	}
	if got := w.Frontal.Cache().Size(); got < want {
		return fmt.Errorf("exp: frontal knows %d peers, want %d", got, want)
	}
	return nil
}

// StartChurn wires a seeded fault-injection driver into the world and
// starts it: a failing host is dropped by the simulated network and its
// MPD crashes (hosted jobs die unreported, reservations are released as
// failures — not conflicts); a reviving host regains its links and
// re-registers with the supernode. The frontal host (submitter and
// supernode) is exempt: the paper's observer survives, like the
// Grid'5000 frontends. Call Stop on the returned driver to halt
// injection and read the injected totals.
func (w *World) StartChurn(cfg churn.Config) *churn.Driver {
	byID := make(map[string]*mpd.MPD, len(w.Peers))
	hosts := make([]string, 0, len(w.Grid.Hosts))
	for i, h := range w.Grid.Hosts {
		hosts = append(hosts, h.ID)
		byID[h.ID] = w.Peers[i]
	}
	siteOf := func(id string) string {
		if h := w.Grid.HostByID(id); h != nil {
			return h.Site
		}
		return ""
	}
	tr := churn.Trace(hosts, siteOf, cfg)
	d := churn.NewDriver(w.S, tr, churn.Hooks{
		Down: func(id string) {
			w.Net.FailHost(id)
			if p := byID[id]; p != nil {
				p.Crash()
			}
		},
		Up: func(id string) {
			w.Net.RestoreHost(id)
			if p := byID[id]; p != nil {
				p.Reannounce()
			}
		},
	})
	d.SetHostCount(len(hosts)) // normalize DownFraction over the platform
	d.Start()
	return d
}

// Close shuts every daemon down and stops the scheduler.
func (w *World) Close() {
	w.SN.Close()
	w.Frontal.Close()
	for _, p := range w.Peers {
		p.Close()
	}
	w.S.Shutdown()
}

// ErrPumpExhausted is returned when a submission exceeds the pump budget.
var ErrPumpExhausted = errors.New("exp: submission did not complete within the simulated budget")

// Submit runs one job from the frontal, pumping the virtual clock until
// it completes (budget: one virtual hour).
func (w *World) Submit(spec mpd.JobSpec) (*mpd.JobResult, error) {
	type outcome struct {
		res *mpd.JobResult
		err error
	}
	ch := make(chan outcome, 1)
	w.S.Go("exp.submit", func() {
		res, err := w.Frontal.Submit(spec)
		ch <- outcome{res, err}
	})
	for i := 0; i < 3600; i++ {
		w.S.RunFor(time.Second)
		select {
		case o := <-ch:
			return o.res, o.err
		default:
		}
	}
	return nil, ErrPumpExhausted
}
