package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
)

func smallSynthSpec() grid.TopologySpec {
	return grid.TopologySpec{Kind: "synth", Sites: 3, HostsPerSite: 4, CoresPerHost: 2, Seed: 5}
}

func TestScaleSweepSmallWorld(t *testing.T) {
	cfg := ScaleConfig{Base: smallSynthSpec(), N: 8}
	pts, err := ScaleSweep(DefaultOptions(42), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(core.Strategies())
	if len(pts) != want {
		t.Fatalf("got %d points, want one per registered strategy (%d)", len(pts), want)
	}
	seen := map[core.Strategy]bool{}
	for _, p := range pts {
		seen[p.Strategy] = true
		if p.Hosts != 12 || p.Sites != 3 || p.Cores != 24 {
			t.Fatalf("world shape %+v", p)
		}
		if p.Seconds <= 0 {
			t.Fatalf("%s: non-positive completion time %v", p.Strategy, p.Seconds)
		}
		if p.HostsUsed < 1 || p.SitesUsed < 1 {
			t.Fatalf("%s: empty footprint %+v", p.Strategy, p)
		}
		if p.ReserveOK <= 0 {
			t.Fatalf("%s: no reservation traffic attributed", p.Strategy)
		}
		if p.ConflictRate < 0 || p.ConflictRate > 1 {
			t.Fatalf("%s: conflict rate %v", p.Strategy, p.ConflictRate)
		}
	}
	if len(seen) != want {
		t.Fatalf("duplicate strategies in %v", pts)
	}
	csv := ScalePointsCSV(pts)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != want+1 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "strategy,hosts,") {
		t.Fatalf("CSV header %q", lines[0])
	}
	for _, p := range pts {
		if !strings.Contains(csv, string(p.Strategy)+",12,24,3,8,1,") {
			t.Fatalf("CSV missing row for %s:\n%s", p.Strategy, csv)
		}
	}
}

func TestScaleSweepHostAxisAndSubset(t *testing.T) {
	cfg := ScaleConfig{
		Base:       smallSynthSpec(),
		Strategies: []core.Strategy{core.Spread, core.CommAware},
		HostCounts: []int{6, 12},
		N:          4,
	}
	pts, err := ScaleSweep(DefaultOptions(7), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	// Ordered by host count, then configured strategy order.
	wantHosts := []int{6, 6, 12, 12}
	for i, p := range pts {
		if p.Hosts != wantHosts[i] {
			t.Fatalf("point %d hosts = %d, want %d (%+v)", i, p.Hosts, wantHosts[i], pts)
		}
	}
	if pts[0].Strategy != core.Spread || pts[1].Strategy != core.CommAware {
		t.Fatalf("strategy order %v, %v", pts[0].Strategy, pts[1].Strategy)
	}
}

func TestScaleSweepRejectsGrid5000(t *testing.T) {
	if _, err := ScaleSweep(DefaultOptions(1), ScaleConfig{Base: grid.TopologySpec{Kind: "grid5000"}}, 1); err == nil {
		t.Fatal("scale sweep accepted a non-synthetic base")
	}
}

func TestSyntheticWorldSubmit(t *testing.T) {
	// A synthetic world boots, the frontal learns every peer, and a
	// plain submission lands with the generalized frontal identity.
	opts := DefaultOptions(42)
	opts.Topology = grid.TopologySpec{Kind: "synth", Sites: 4, HostsPerSite: 6, CoresPerHost: 2, Seed: 11}
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	if w.FrontalID == FrontalHost {
		t.Fatalf("synthetic world reused the Grid5000 frontal ID %q", w.FrontalID)
	}
	res, err := w.Submit(mpd.JobSpec{Program: "hostname", N: 10, R: 1, Strategy: core.MinSites})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures() != 0 {
		t.Fatalf("%d failures", res.Failures())
	}
	if res.Assignment.Strategy != core.MinSites {
		t.Fatalf("assignment strategy %q", res.Assignment.Strategy)
	}
}

func TestBoundedSupernodeWorldSubmit(t *testing.T) {
	// With MaxPeersReturned below the job's demand, the submitter must
	// accumulate rotating reply windows across refreshes instead of
	// failing after one fetch on a world with ample hosts.
	opts := DefaultOptions(42)
	opts.Topology = grid.TopologySpec{Kind: "synth", Sites: 4, HostsPerSite: 6, CoresPerHost: 2, Seed: 3}
	opts.MaxPeersReturned = 8
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		t.Fatal(err)
	}
	res, err := w.Submit(mpd.JobSpec{Program: "hostname", N: 16, R: 1, Strategy: core.Spread})
	if err != nil {
		t.Fatalf("submit with bounded supernode replies: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("%d failures", res.Failures())
	}
	if got := res.Assignment.UsedHosts(); got < 9 {
		t.Fatalf("used %d hosts, want more than one reply window (8)", got)
	}
}

// scaleSlist derives an allocation-layer slist from a synthetic grid:
// the submitter-side view of a booked world at that scale.
func scaleSlist(hosts int) []core.HostSlot {
	g := grid.Synthetic(grid.TopologySpec{Kind: "synth", Sites: 12, Seed: 3,
		HostsPerSite: (hosts + 11) / 12, CoresPerHost: 2})
	slist := make([]core.HostSlot, 0, len(g.Hosts))
	for _, h := range g.Hosts {
		slist = append(slist, core.HostSlot{
			ID:      h.ID,
			Site:    h.Site,
			P:       h.Cores,
			Latency: g.SiteInfo[h.Site].RTTFromOrigin,
			Cores:   h.Cores,
		})
	}
	return slist
}

// BenchmarkScaleAllocate is the ScaleSweep micro-benchmark: every
// registered strategy allocating a 512-process job over synthetic
// slists of growing size.
func BenchmarkScaleAllocate(b *testing.B) {
	for _, hosts := range []int{1000, 5000, 10000} {
		slist := scaleSlist(hosts)
		for _, name := range core.Names() {
			st := core.Strategy(name)
			b.Run(fmt.Sprintf("%s/hosts=%d", name, hosts), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// core.Allocate, not Placement.Allocate: the timing
					// must include the registry dispatch and safety
					// validation every real submission pays.
					if _, err := core.Allocate(slist, 512, 1, st); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestEmitScaleBenchJSON writes BENCH_scale.json — the perf-trajectory
// record CI keeps per commit — when BENCH_SCALE_JSON names the output
// path. It times the same bodies as BenchmarkScaleAllocate through
// testing.Benchmark so the JSON and the -bench output measure the same
// thing.
func TestEmitScaleBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_SCALE_JSON")
	if out == "" {
		t.Skip("BENCH_SCALE_JSON not set")
	}
	type entry struct {
		Name     string  `json:"name"`
		Strategy string  `json:"strategy"`
		Hosts    int     `json:"hosts"`
		N        int     `json:"n"`
		NsPerOp  float64 `json:"ns_per_op"`
		AllocsOp int64   `json:"allocs_per_op"`
	}
	var entries []entry
	for _, hosts := range []int{1000, 5000} {
		slist := scaleSlist(hosts)
		for _, name := range core.Names() {
			st := core.Strategy(name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Allocate(slist, 512, 1, st); err != nil {
						b.Fatal(err)
					}
				}
			})
			entries = append(entries, entry{
				Name:     fmt.Sprintf("ScaleAllocate/%s/hosts=%d", name, hosts),
				Strategy: name,
				Hosts:    hosts,
				N:        512,
				NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsOp: r.AllocsPerOp(),
			})
		}
	}
	blob, err := json.MarshalIndent(map[string]any{"benchmarks": entries}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", out, len(entries))
}
