package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

// Memory-footprint regression tests: a million-host world has to fit
// in a few GB, so live heap per booted host is a budgeted quantity
// (docs/PERF.md, "The memory model"), enforced here with
// runtime.ReadMemStats the same way the zero-alloc tests enforce the
// message path. Footprint regressions are silent — nothing fails,
// sweeps just stop fitting in RAM — so the budget is a tier-1 test,
// not a benchmark.

// footprintBudgetBytes is the enforced live-heap budget per booted
// host. The measured steady state on the current engine is ~3.0 KB/host
// at 10k hosts under a K=4 federation, ~3.8 KB at 50k under K=16 and
// ~3.3 KB at 100k under K=16 — the K-member last-seen arrays make a
// wider federation cost more per host, and per-world fixed costs
// amortize as the world grows (docs/PERF.md, "The memory model", has
// the per-structure decomposition). The budget leaves headroom for
// noise while still catching any structural regression — an eager map,
// an uninterned table, an unbounded pool — which costs hundreds of
// bytes per host at once.
const footprintBudgetBytes = 4096

// footprintOptions mirrors the knobs every >2000-host scale-sweep
// point runs with (see scaleAt), so the measured retention is the
// sweep's actual steady state, not an unbounded-reply artifact.
func footprintOptions(sites, hostsPerSite, sn int) Options {
	o := DefaultOptions(42)
	o.Topology = grid.TopologySpec{Kind: "synth", Sites: sites, HostsPerSite: hostsPerSite}
	o.Supernodes = sn
	if hosts := sites * hostsPerSite; hosts > 2000 {
		o.MaxPeersReturned = 512
		o.PeerRefreshInterval = time.Hour
		o.PeerCacheCap = 2
		o.BootSpread = 2 * time.Minute
		o.PeerAliveInterval = 4 * time.Minute
	}
	return o
}

// measureFootprint boots a world, runs it to steady state, and returns
// its live-heap cost per host: HeapAlloc growth from before
// construction, with a forced GC on both sides so only retained memory
// counts.
func measureFootprint(t *testing.T, o Options) float64 {
	t.Helper()
	hosts := o.Topology.TotalHosts()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	w := NewWorld(o)
	if err := w.Boot(); err != nil {
		w.Close()
		t.Fatal(err)
	}
	// A minute of virtual steady state before measuring: what a sweep
	// retains is the *running* world, and two of the big sharing wins only
	// land after the boot storm drains — federation members adopt the one
	// canonical merged view on their first quiescent gossip round, and
	// the last straggler registrations stop forcing copy-on-write. Memory
	// at the Boot() return instant transiently holds K private views.
	w.RunFor(time.Minute)
	// Two cycles: sync.Pool victim caches (the decode scratch pools)
	// survive exactly one GC, and they are transient state, not retention.
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perHost := float64(after.HeapAlloc-before.HeapAlloc) / float64(hosts)
	t.Logf("%d hosts, sn=%d: %.0f B/host live at steady state (heap %.1f MB, peak RSS %.2f GB)",
		hosts, o.Supernodes, perHost, float64(after.HeapAlloc-before.HeapAlloc)/(1<<20),
		float64(PeakRSSBytes())/(1<<30))
	w.Close()
	return perHost
}

// TestWorldFootprintBudget enforces the per-host budget on a 10k-host
// federated world — large enough that per-host retention dominates the
// fixed costs, small enough to boot on every `go test ./...` run.
func TestWorldFootprintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 10,000-host world")
	}
	perHost := measureFootprint(t, footprintOptions(10, 1000, 4))
	if perHost > footprintBudgetBytes {
		t.Fatalf("live heap %.0f B/host, budget %d B/host — a per-host structure grew; "+
			"see docs/PERF.md 'The memory model' before raising the budget", perHost, footprintBudgetBytes)
	}
}

// TestFootprintGate compares the measured 10k-host footprint against
// the committed perf/BASELINE.json (pointed to by PERF_GATE_BASELINE,
// the same baseline the event-throughput gate reads). The bar is
// 1.25×: footprint after a forced GC barely varies between runners, so
// a tighter bound than the throughput gate's 2× still rides out noise
// while catching a few-hundred-bytes-per-host structural regression.
func TestFootprintGate(t *testing.T) {
	path := os.Getenv("PERF_GATE_BASELINE")
	if path == "" {
		t.Skip("PERF_GATE_BASELINE not set (CI sets it to perf/BASELINE.json)")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		FootprintBytesPerHost float64 `json:"footprint_bytes_per_host"`
	}
	if err := json.Unmarshal(blob, &baseline); err != nil {
		t.Fatal(err)
	}
	if baseline.FootprintBytesPerHost <= 0 {
		t.Fatalf("%s has no footprint_bytes_per_host", path)
	}
	perHost := measureFootprint(t, footprintOptions(10, 1000, 4))
	if limit := baseline.FootprintBytesPerHost * 1.25; perHost > limit {
		t.Fatalf("live heap %.0f B/host, baseline %.0f (limit %.0f) — re-baseline deliberately, "+
			"with the decomposition from docs/PERF.md 'The memory model' updated in the PR",
			perHost, baseline.FootprintBytesPerHost, limit)
	}
}

// TestWorldFootprint100k measures the 100k-host K=16 flagship
// footprint and merges it into the BENCH_perf.json record named by
// FOOTPRINT_100K_JSON (the CI perf job sets it). The same per-host
// budget is enforced — at this scale the interning and snapshot
// sharing must carry their weight, not just the lazy maps, and the
// K=16 federation pays four times the K=4 last-seen array cost.
func TestWorldFootprint100k(t *testing.T) {
	out := os.Getenv("FOOTPRINT_100K_JSON")
	if out == "" {
		t.Skip("FOOTPRINT_100K_JSON not set (boots a 100,000-host world)")
	}
	perHost := measureFootprint(t, footprintOptions(16, 6250, 16))

	record := map[string]any{}
	if blob, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(blob, &record); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	record["footprint_hosts"] = 100000
	record["footprint_sn"] = 16
	record["footprint_bytes_per_host"] = perHost
	blob, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if perHost > footprintBudgetBytes {
		t.Fatalf("live heap %.0f B/host at 100k, budget %d B/host", perHost, footprintBudgetBytes)
	}
}

// TestScaleExtremePoint completes one full scale-sweep point — boot,
// one strategy submission, CSV-visible measurements — on a huge world
// and records wall clock plus peak RSS into the BENCH_perf.json record
// named by SCALE_EXTREME_JSON. SCALE_EXTREME_HOSTS (default 500000)
// and SCALE_EXTREME_SHARDS (default 8) shape the run: CI's time-boxed
// smoke uses 500k, the release trajectory adds the million-host point.
// Peak RSS is the number the ≤4 GB million-host acceptance bar reads.
func TestScaleExtremePoint(t *testing.T) {
	out := os.Getenv("SCALE_EXTREME_JSON")
	if out == "" {
		t.Skip("SCALE_EXTREME_JSON not set (boots a 500k+ host world)")
	}
	hosts := 500_000
	if v := os.Getenv("SCALE_EXTREME_HOSTS"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &hosts); err != nil {
			t.Fatalf("bad SCALE_EXTREME_HOSTS %q: %v", v, err)
		}
	}
	shards := 8
	if v := os.Getenv("SCALE_EXTREME_SHARDS"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &shards); err != nil {
			t.Fatalf("bad SCALE_EXTREME_SHARDS %q: %v", v, err)
		}
	}

	// The acceptance bar is peak RSS, and Go's default heap goal is
	// 2× live — which at ~3.5 KB/host live would push a million-host run
	// to ~7 GB of dead-plus-live heap. A soft memory limit trades GC
	// frequency for footprint instead; the runs that matter here are
	// memory-bound, not GC-bound. The limit scales with the world
	// (~5 KB/host covers live heap plus boot-transient stacks) and is
	// clamped below the 4 GB bar so the limit, not the GC's 2× default,
	// decides the peak.
	limit := int64(hosts) * 5 << 10
	if lo := int64(1 << 30); limit < lo {
		limit = lo
	}
	if hi := int64(15 << 28); limit > hi { // 3.75 GiB
		limit = hi
	}
	prevLimit := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prevLimit)

	base, err := grid.ParseTopologySpec("synth:S=16,H=1")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(42)
	o.Supernodes = 16
	o.Shards = shards
	cfg := ScaleConfig{
		Base:       base,
		HostCounts: []int{hosts},
		Strategies: core.Strategies()[:1],
		N:          128,
	}
	start := time.Now()
	pts, err := ScaleSweep(o, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	rss := PeakRSSBytes()
	t.Logf("%d hosts, sn=16, shards=%d: sweep point %.1fs wall, peak RSS %.2f GB",
		pts[0].Hosts, shards, wall.Seconds(), float64(rss)/(1<<30))

	record := map[string]any{}
	if blob, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(blob, &record); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	key := fmt.Sprintf("scale_%dk", pts[0].Hosts/1000)
	record[key+"_wall_seconds"] = wall.Seconds()
	record[key+"_peak_rss_bytes"] = rss
	record[key+"_shards"] = shards
	record[key+"_seconds_virtual"] = pts[0].Seconds
	blob, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
