package exp

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSSBytes reports the process's peak resident set size — VmHWM
// from /proc/self/status — or 0 where the kernel does not expose it
// (non-Linux). The scale benchmarks record it next to wall-clock time:
// heap profiles see only live Go objects, while the high-water mark is
// what an operator's machine actually had to provide.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) == 0 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024 // the kernel reports kB
	}
	return 0
}
