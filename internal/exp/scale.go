package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
)

// The scale experiment family goes past the paper's fixed 350-host
// testbed: it boots synthetic worlds of growing host counts and submits
// one job per registered placement strategy on each, recording how
// completion time, allocation footprint and reservation-conflict rate
// behave as the platform grows — the axis Table 1 pinned that a
// production co-allocation service must sweep.

// ScalePoint is one (strategy, world size, federation width)
// measurement.
type ScalePoint struct {
	Strategy core.Strategy
	// Hosts, Cores and Sites describe the booted world.
	Hosts, Cores, Sites int
	// N and R echo the submitted job.
	N, R int
	// Seconds is the submit-to-completion virtual time.
	Seconds float64
	// HostsUsed and SitesUsed are the allocation footprint.
	HostsUsed, SitesUsed int
	// ReserveOK and ReserveNOK count the reservation requests this
	// submission's brokering produced across every host RS; ConflictRate
	// is NOK / (OK + NOK).
	ReserveOK, ReserveNOK int
	ConflictRate          float64
	// SN is the supernode-federation width of the measured world.
	SN int
	// RegMS is the mean supernode-registration round trip over the
	// world's compute peers, in milliseconds. StaleMS is the mean gossip
	// propagation lag of applied shard snapshots (how far behind a
	// merged host-list answer can run about another shard; 0 when SN=1,
	// where every answer is authoritative). MembBytes counts the
	// membership-plane frame bytes (registers, keep-alives, fetches and
	// gossip, requests plus replies) the supernode tier served during
	// this strategy's submission window.
	RegMS, StaleMS float64
	MembBytes      int64
}

// ScaleConfig tunes a scale sweep.
type ScaleConfig struct {
	// Base is the synthetic topology template; HostCounts rescale its
	// HostsPerSite while keeping the site count, RTT distribution and
	// seed fixed. Base must be synthetic (grid5000 cannot grow).
	Base grid.TopologySpec
	// Strategies lists the policies to compare (default: every
	// registered strategy, in Names order).
	Strategies []core.Strategy
	// HostCounts is the world-size axis (default: the base spec's own
	// size). Counts are rounded up to a multiple of the site count.
	HostCounts []int
	// Supernodes is the federation-width axis (default: the base spec's
	// sn value, i.e. {1} unless the -grid string says otherwise). Each
	// (host count, K) coordinate boots its own world, so the sweep
	// compares K = 1/4/16 membership tiers on identical grids.
	Supernodes []int
	// N and R shape the per-strategy job (defaults 128 / 1).
	N, R int
	// Timeout bounds each submission in virtual time (default 10m).
	Timeout time.Duration
}

func (c *ScaleConfig) fillDefaults() error {
	if !c.Base.IsSynthetic() {
		return fmt.Errorf("exp: scale sweep needs a synthetic topology (-grid synth:...), got %q", c.Base.String())
	}
	if len(c.Strategies) == 0 {
		c.Strategies = core.Strategies()
	}
	if len(c.HostCounts) == 0 {
		c.HostCounts = []int{c.Base.TotalHosts()}
	}
	if len(c.Supernodes) == 0 {
		c.Supernodes = []int{c.Base.Defaulted().Supernodes}
	}
	for _, k := range c.Supernodes {
		if k < 1 {
			return fmt.Errorf("exp: bad federation width %d", k)
		}
	}
	if c.N <= 0 {
		c.N = 128
	}
	if c.R <= 0 {
		c.R = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
	return nil
}

// ReserveStats sums the accepted/rejected reservation counters over
// every compute peer's RS daemon.
func (w *World) ReserveStats() (ok, nok int) {
	for _, p := range w.Peers {
		a, r := p.RS().Stats()
		ok += int(a)
		nok += int(r)
	}
	return ok, nok
}

// specForHosts rescales the base topology to approximately the given
// host count by adjusting HostsPerSite (rounding up).
func specForHosts(base grid.TopologySpec, hosts int) grid.TopologySpec {
	spec := base
	sites := base.Defaulted().Sites
	spec.HostsPerSite = (hosts + sites - 1) / sites
	return spec
}

// ScaleSweep measures every configured strategy at every (world size,
// federation width) coordinate. Each coordinate owns an independent,
// freshly booted world (runnable in parallel across the pool); within
// one world the strategies submit sequentially, each charged only the
// reservation and membership traffic of its own window. Results are
// ordered (host count, federation width, strategy) and independent of
// the worker count.
func ScaleSweep(opts Options, cfg ScaleConfig, workers int) ([]ScalePoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	type coord struct{ hosts, sn int }
	var coords []coord
	for _, h := range cfg.HostCounts {
		for _, k := range cfg.Supernodes {
			coords = append(coords, coord{h, k})
		}
	}
	perWorld := make([][]ScalePoint, len(coords))
	err := runPool(len(coords), workers, func(i int) error {
		pts, err := scaleAt(opts, cfg, coords[i].hosts, coords[i].sn)
		if err != nil {
			return fmt.Errorf("hosts=%d sn=%d: %w", coords[i].hosts, coords[i].sn, err)
		}
		perWorld[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ScalePoint
	for _, pts := range perWorld {
		out = append(out, pts...)
	}
	return out, nil
}

// scaleAt boots one world of ~hosts hosts under a K-wide supernode
// tier and runs every strategy on it.
func scaleAt(opts Options, cfg ScaleConfig, hosts, sn int) ([]ScalePoint, error) {
	o := opts
	o.Topology = specForHosts(cfg.Base, hosts)
	o.Supernodes = sn
	if hosts > 2000 {
		// Past a few thousand hosts unbounded host-list replies dominate
		// the simulation the same way they dominate churn horizons (see
		// churnAt): bound the supernode replies well above the booking
		// fan-out and slow the compute peers' refreshes — their cached
		// lists are never consulted, only the frontal's view feeds the
		// measurement. Both knobs stay caller-overridable.
		if o.MaxPeersReturned == 0 {
			bound := 4 * (int(math.Ceil(1.2*float64(cfg.N*cfg.R))) + 2)
			if bound < 512 {
				bound = 512
			}
			o.MaxPeersReturned = bound
		}
		if o.PeerRefreshInterval == 0 {
			o.PeerRefreshInterval = time.Hour
		}
		if o.PeerCacheCap == 0 {
			// Compute peers' caches feed no measurement here, but each
			// would retain its O(MaxPeersReturned) boot snapshot — the
			// dominant per-host memory at 500k–1M hosts. Keep a token
			// couple of entries per host (~128 B instead of ~32 KB).
			o.PeerCacheCap = 2
		}
		if o.BootSpread == 0 {
			// An everyone-at-vtime-0 boot holds one registration actor
			// per host in flight at once; the Go runtime caches every
			// goroutine descriptor that storm ever needed (~720 B each,
			// forever), and the event free lists and buffer pools keep
			// their high-water carve too. Staggering the starts
			// (rank-derived, shard-independent — see Options.BootSpread)
			// turns those peak-concurrency residues into steady-state
			// ones.
			o.BootSpread = 2 * time.Minute
		}
		if o.PeerAliveInterval == 0 {
			// The default 30s keep-alive cadence is thousands of liveness
			// round trips per virtual second on a big world, and the
			// in-flight rounds set the event-arena and buffer-pool
			// high-water marks. Sparsen the heartbeat; the 10min
			// supernode TTL tolerates it with a wide margin.
			o.PeerAliveInterval = 4 * time.Minute
		}
	}
	w := NewWorld(o)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return nil, err
	}
	regMS := float64(w.MeanRegistrationLatency()) / float64(time.Millisecond)
	var out []ScalePoint
	for _, strategy := range cfg.Strategies {
		ok0, nok0 := w.ReserveStats()
		fed0 := w.FederationStats()
		res, err := w.Submit(mpd.JobSpec{
			Program:  "hostname",
			N:        cfg.N,
			R:        cfg.R,
			Strategy: strategy,
			Timeout:  cfg.Timeout,
		})
		if err != nil {
			return out, fmt.Errorf("%s: %w", strategy, err)
		}
		if f := res.Failures(); f > 0 {
			return out, fmt.Errorf("%s: %d slots failed", strategy, f)
		}
		ok1, nok1 := w.ReserveStats()
		fed1 := w.FederationStats()
		pt := ScalePoint{
			Strategy:   strategy,
			Hosts:      w.Grid.TotalHosts(),
			Cores:      w.Grid.TotalCores(),
			Sites:      len(w.Grid.SiteOrder),
			N:          cfg.N,
			R:          cfg.R,
			Seconds:    res.Duration.Seconds(),
			HostsUsed:  res.Assignment.UsedHosts(),
			SitesUsed:  len(res.Assignment.HostsBySite()),
			ReserveOK:  ok1 - ok0,
			ReserveNOK: nok1 - nok0,
			SN:         len(w.SNs),
			RegMS:      regMS,
			StaleMS:    float64(fed1.MeanStaleness()) / float64(time.Millisecond),
			MembBytes:  (fed1.BytesIn + fed1.BytesOut) - (fed0.BytesIn + fed0.BytesOut),
		}
		if total := pt.ReserveOK + pt.ReserveNOK; total > 0 {
			pt.ConflictRate = float64(pt.ReserveNOK) / float64(total)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScalePointsCSV renders a scale sweep as CSV, one row per (host count,
// strategy) point — the per-strategy figure data of the scale family.
// The columns are the placement-facing ones only: a federated and a
// standalone membership tier produce byte-identical output here on a
// static world (the committed K=1 vs K=4 identity test), because the
// gossip staleness bound is tight enough not to move any placement.
// FederationPointsCSV adds the membership-tier columns.
func ScalePointsCSV(pts []ScalePoint) string {
	var b strings.Builder
	b.WriteString("strategy,hosts,cores,sites,n,r,seconds,hosts_used,sites_used," +
		"reserve_ok,reserve_nok,conflict_rate\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%.4f\n",
			p.Strategy, p.Hosts, p.Cores, p.Sites, p.N, p.R, p.Seconds,
			p.HostsUsed, p.SitesUsed, p.ReserveOK, p.ReserveNOK, p.ConflictRate)
	}
	return b.String()
}

// FederationPointsCSV is ScalePointsCSV plus the membership-tier
// columns: the federation width, the mean registration round trip, the
// mean gossip propagation staleness and the membership-plane bytes
// served during each strategy's submission window.
func FederationPointsCSV(pts []ScalePoint) string {
	var b strings.Builder
	b.WriteString("strategy,hosts,cores,sites,n,r,sn,seconds,hosts_used,sites_used," +
		"reserve_ok,reserve_nok,conflict_rate,reg_ms,stale_ms,memb_bytes\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%.4f,%.3f,%.3f,%d\n",
			p.Strategy, p.Hosts, p.Cores, p.Sites, p.N, p.R, p.SN, p.Seconds,
			p.HostsUsed, p.SitesUsed, p.ReserveOK, p.ReserveNOK, p.ConflictRate,
			p.RegMS, p.StaleMS, p.MembBytes)
	}
	return b.String()
}

// RenderScalePoints prints a scale sweep as a table grouped by world
// size.
func RenderScalePoints(title string, pts []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s %3s %-12s %10s %10s %10s %11s %10s %8s %9s %10s\n",
		"hosts", "sn", "strategy", "n", "time(s)", "hosts-used", "sites-used",
		"conflicts", "reg(ms)", "stale(ms)", "memb(KB)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %3d %-12s %10d %10.3f %10d %11d %9.1f%% %8.2f %9.2f %10.1f\n",
			p.Hosts, p.SN, p.Strategy, p.N, p.Seconds, p.HostsUsed, p.SitesUsed,
			100*p.ConflictRate, p.RegMS, p.StaleMS, float64(p.MembBytes)/1024)
	}
	return b.String()
}
