package exp

import (
	"strings"
	"testing"

	"p2pmpi/internal/core"
)

// TestConcurrentJobsContention runs 4 simultaneous 60-process
// concentrate jobs. Nancy alone can host one such job (240 cores), so
// the jobs spill across sites and at least some reservation requests
// collide at J=1 hosts — the regime the paper never measures.
func TestConcurrentJobsContention(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full 350-peer grid")
	}
	pt, err := ConcurrentJobs(DefaultOptions(42), core.Concentrate, 4,
		ConcurrentConfig{N: 60, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Completed != 4 || pt.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 4/0 (%+v)", pt.Completed, pt.Failed, pt)
	}
	if pt.MeanHosts < 15 {
		t.Errorf("mean hosts = %.2f, want >= 15 for n=60 concentrate", pt.MeanHosts)
	}
	if pt.MeanSites < 1 {
		t.Errorf("mean sites = %.2f", pt.MeanSites)
	}
	if pt.ReserveOK == 0 {
		t.Error("no reservation ever accepted")
	}
	// 4×60 = 240 processes demanded at once: with nancy's 240 cores the
	// closest hosts are contended, so some reserve traffic must collide.
	if pt.ReserveNOK == 0 {
		t.Error("expected reservation conflicts under 4 concurrent 60-process jobs")
	}
	if pt.ConflictRate <= 0 || pt.ConflictRate >= 1 {
		t.Errorf("conflict rate = %v, want in (0, 1)", pt.ConflictRate)
	}
	if pt.MakespanSeconds <= 0 || pt.MeanJobSeconds <= 0 {
		t.Errorf("timings = %+v", pt)
	}
}

// TestConcurrentSweepParallelDeterminism is the acceptance check for the
// parallel harness: a sweep run sequentially (workers = 1) and the same
// sweep run on a parallel pool must produce byte-identical CSV.
func TestConcurrentSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid four times")
	}
	cfg := ConcurrentConfig{N: 16, R: 1}
	ks := []int{2, 3}
	seq, err := ConcurrentSweep(DefaultOptions(42), core.Spread, ks, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ConcurrentSweep(DefaultOptions(42), core.Spread, ks, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ConcurrentPointsCSV(seq), ConcurrentPointsCSV(par)
	if a != b {
		t.Fatalf("sequential and parallel sweeps diverged:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	// Sanity: K=3 spread jobs of 16 processes land on 48 distinct hosts.
	if par[1].Completed != 3 {
		t.Fatalf("k=3 completed = %d", par[1].Completed)
	}
}

// TestCoAllocationSweepParallelDeterminism checks the per-point-world
// Figure 2/3 sweep the same way.
func TestCoAllocationSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full grid four times")
	}
	ns := []int{100, 150}
	seq, err := CoAllocationSweepParallel(DefaultOptions(42), core.Concentrate, ns, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CoAllocationSweepParallel(DefaultOptions(42), core.Concentrate, ns, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := SitePointsCSV(seq), SitePointsCSV(par)
	if a != b {
		t.Fatalf("sequential and parallel sweeps diverged:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	// The fresh-world n=100 concentrate point must reproduce the paper's
	// all-nancy allocation (same as the shared-world sweep's first
	// point, which also runs on an unperturbed platform).
	if seq[0].CoresBySite["nancy"] != 100 {
		t.Errorf("n=100 nancy cores = %d, want 100", seq[0].CoresBySite["nancy"])
	}
}

func TestRenderAndCSVConcurrentPoints(t *testing.T) {
	pts := []ConcurrentPoint{{
		K: 4, N: 32, R: 1, Strategy: core.Spread,
		Completed: 4, Attempts: 6, SchedConflicts: 2,
		ReserveOK: 140, ReserveNOK: 12, ConflictRate: 12.0 / 152,
		MeanSites: 2.5, MeanHosts: 32, MeanJobSeconds: 8.25, MakespanSeconds: 30.5,
	}}
	csv := ConcurrentPointsCSV(pts)
	if !strings.Contains(csv, "spread,4,32,1,4,0,6,2,140,12,0.0789,2.50,32.00,8.250,30.500") {
		t.Fatalf("csv:\n%s", csv)
	}
	out := RenderConcurrentPoints("Concurrent jobs (spread)", pts)
	for _, want := range []string{"Concurrent jobs (spread)", "140/12", "7.9%", "30.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
