package exp

import (
	"fmt"
	"strings"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

// SitePointsCSV renders Figure 2/3 data as CSV, one row per demanded
// process count with hosts_<site> and cores_<site> columns — the format
// the paper's gnuplot scripts would consume.
func SitePointsCSV(pts []SitePoint) string {
	var b strings.Builder
	b.WriteString("n")
	for _, s := range grid.Sites {
		fmt.Fprintf(&b, ",hosts_%s,cores_%s", s, s)
	}
	b.WriteString("\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%d", p.N)
		for _, s := range grid.Sites {
			fmt.Fprintf(&b, ",%d,%d", p.HostsBySite[s], p.CoresBySite[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ConcurrentPointsCSV renders a concurrent-jobs sweep as CSV, one row
// per (strategy, K) point.
func ConcurrentPointsCSV(pts []ConcurrentPoint) string {
	var b strings.Builder
	b.WriteString("strategy,k,n,r,completed,failed,attempts,sched_conflicts," +
		"reserve_ok,reserve_nok,conflict_rate,mean_sites,mean_hosts,mean_job_s,makespan_s\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.2f,%.2f,%.3f,%.3f\n",
			p.Strategy, p.K, p.N, p.R, p.Completed, p.Failed, p.Attempts, p.SchedConflicts,
			p.ReserveOK, p.ReserveNOK, p.ConflictRate, p.MeanSites, p.MeanHosts,
			p.MeanJobSeconds, p.MakespanSeconds)
	}
	return b.String()
}

// TimePointsCSV renders Figure 4 data as CSV with one column per
// strategy.
func TimePointsCSV(pts []TimePoint) string {
	type row struct {
		conc, spread float64
		hasC, hasS   bool
	}
	rows := map[int]*row{}
	var ns []int
	for _, p := range pts {
		r := rows[p.N]
		if r == nil {
			r = &row{}
			rows[p.N] = r
			ns = append(ns, p.N)
		}
		// Figure 4 plots exactly the paper's two curves. String()
		// normalizes the zero-value Strategy to spread.
		if name := p.Strategy.String(); name == core.Concentrate.String() {
			r.conc, r.hasC = p.Seconds, true
		} else if name == core.Spread.String() {
			r.spread, r.hasS = p.Seconds, true
		}
	}
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
	var b strings.Builder
	b.WriteString("n,concentrate_s,spread_s\n")
	for _, n := range ns {
		r := rows[n]
		b.WriteString(fmt.Sprintf("%d,", n))
		if r.hasC {
			fmt.Fprintf(&b, "%.6f", r.conc)
		}
		b.WriteString(",")
		if r.hasS {
			fmt.Fprintf(&b, "%.6f", r.spread)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table1CSV renders the inventory as CSV.
func Table1CSV() string {
	var b strings.Builder
	b.WriteString("site,cluster,cpu,nodes,cpus,cores\n")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d\n",
			r.Site, r.Cluster, r.CPU, r.Nodes, r.CPUs, r.Cores)
	}
	return b.String()
}
