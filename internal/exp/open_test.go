package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/sched"
	"p2pmpi/internal/stats"
	"p2pmpi/internal/workload"
)

func openGoldenConfig(t *testing.T) OpenConfig {
	t.Helper()
	return OpenConfig{
		Base:       goldenBase(t),
		Strategies: []core.Strategy{core.Concentrate, core.Spread},
		Arrival: workload.ArrivalSpec{
			Kind: workload.ArrivalDiurnal, Peak: 0.05, Trough: 0.01,
			Period: 30 * time.Minute, MaintEvery: 15 * time.Minute, MaintDur: 90 * time.Second,
		},
		Tenants:        3,
		TenantSkew:     1,
		PriorityLevels: 2,
		Duration:       40 * time.Minute,
		DurMin:         15, DurMax: 120, // short jobs keep the pump cheap
		NMin: 2, NMax: 8,
		Workers: 4,
	}
}

// TestGoldenOpenTrace: the open-system family across worker counts,
// shard counts and federation widths — eight runs, one committed byte
// string. The whole pipeline is pinned: the workload trace, the
// priority admission order, the t-digest percentile state, the
// fairness index.
func TestGoldenOpenTrace(t *testing.T) {
	cfg := openGoldenConfig(t)
	var first string
	var firstLabel string
	for _, sn := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				opts := DefaultOptions(42)
				opts.Supernodes = sn
				opts.Shards = shards
				pts, err := OpenSweep(opts, cfg, workers)
				if err != nil {
					t.Fatalf("sn=%d shards=%d workers=%d: %v", sn, shards, workers, err)
				}
				csv := OpenPointsCSV(pts)
				label := fmt.Sprintf("sn=%d shards=%d workers=%d", sn, shards, workers)
				if first == "" {
					first, firstLabel = csv, label
					continue
				}
				if csv != first {
					t.Fatalf("%s diverged from %s:\n--- first ---\n%s--- this run ---\n%s",
						label, firstLabel, first, csv)
				}
			}
		}
	}
	goldenCompare(t, "golden_open.csv", first)
}

// TestOpenSketchVsExact holds the streaming path to the acceptance
// bound: queue-wait P50/P90/P99 from the t-digest must sit within 1%
// relative error of the exact order statistics of the same run
// (absolute floor 50ms for near-zero quantiles).
func TestOpenSketchVsExact(t *testing.T) {
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Duration = 2 * time.Hour
	var exact []float64
	cfg.observe = func(j *sched.Job, sub workload.Submission) {
		if j.Err != nil || j.Result == nil || j.Result.LostRanks() > 0 {
			return
		}
		exact = append(exact, math.Max(0, j.Latency().Seconds()-sub.Seconds))
	}
	pt, err := RunOpen(DefaultOptions(42), cfg, core.Spread)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Completed < 100 {
		t.Fatalf("run too small to compare quantiles: %d completed jobs", pt.Completed)
	}
	if len(exact) != pt.Completed {
		t.Fatalf("observe hook saw %d completions, point says %d", len(exact), pt.Completed)
	}
	sum := stats.Summarize(exact)
	for _, c := range []struct {
		name         string
		sketch, want float64
	}{
		{"wait_p50", pt.WaitP50Seconds, sum.P50},
		{"wait_p90", pt.WaitP90Seconds, sum.P90},
		{"wait_p99", pt.WaitP99Seconds, sum.P99},
	} {
		tol := math.Max(0.01*math.Abs(c.want), 0.05)
		if diff := math.Abs(c.sketch - c.want); diff > tol {
			t.Errorf("%s: sketch %.4f vs exact %.4f (|diff| %.4f > tol %.4f)",
				c.name, c.sketch, c.want, diff, tol)
		}
	}
	if diff := math.Abs(pt.MeanWaitSeconds - sum.Mean); diff > 1e-9*math.Max(1, sum.Mean) {
		t.Errorf("mean wait: stream %.6f vs exact %.6f", pt.MeanWaitSeconds, sum.Mean)
	}
}

// TestOpenChurnShardRace composes the open arrival process with host
// churn — compute hosts and federated supernode hosts dying and
// reviving mid-steady-state — on a 3-shard world under the race
// detector, with the lookahead-safety check armed. Per-job outcomes
// and the rendered point must match the single-shard run byte for
// byte.
func TestOpenChurnShardRace(t *testing.T) {
	t.Setenv("VTIME_CHECK", "1")
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Arrival = workload.ArrivalSpec{Kind: workload.ArrivalPoisson, Rate: 0.02}
	cfg.Duration = 40 * time.Minute
	cfg.R = 2
	cfg.Workers = 2
	cfg.MTBF = 90 * time.Second
	cfg.MTTR = 45 * time.Second
	cfg.Detect = 5 * time.Second

	run := func(shards int) (string, []string) {
		c := cfg
		var lines []string
		c.observe = func(j *sched.Job, sub workload.Submission) {
			lines = append(lines, fmt.Sprintf("%d|%d|%d|%s", sub.Seq, sub.Tenant, sub.Priority, jobLine(j)))
		}
		opts := DefaultOptions(99)
		opts.Supernodes = 4
		opts.Shards = shards
		pt, err := RunOpen(opts, c, core.Spread)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if pt.FailuresInjected < 10 {
			t.Fatalf("shards=%d: churn load too light to mean anything: %d failures",
				shards, pt.FailuresInjected)
		}
		return OpenPointsCSV([]OpenPoint{pt}), lines
	}

	seqCSV, seqLines := run(1)
	shCSV, shLines := run(3)
	if shCSV != seqCSV {
		t.Fatalf("open point diverged:\n--- seq ---\n%s--- sharded ---\n%s", seqCSV, shCSV)
	}
	if len(shLines) != len(seqLines) {
		t.Fatalf("job count diverged: %d vs %d", len(seqLines), len(shLines))
	}
	for i := range seqLines {
		if shLines[i] != seqLines[i] {
			t.Fatalf("job %d diverged:\nseq:     %s\nsharded: %s", i, seqLines[i], shLines[i])
		}
	}
}

// TestOpenAccumFootprint1M drives a million synthetic completions
// through the open family's accumulation path and holds its retained
// memory O(1): the t-digest streams keep centroids, not samples, and
// the fairness state is O(tenants). This is the layer that lets a
// 10M-submission steady-state sweep run in constant memory.
func TestOpenAccumFootprint1M(t *testing.T) {
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	feed := func(n int) *openAccum {
		acc := newOpenAccum(16)
		u := uint64(1)
		for i := 0; i < n; i++ {
			u = u*6364136223846793005 + 1442695040888963407
			wait := float64(u%100_000) / 1000
			service := 20 + float64(u%1800)
			acc.observe(int(u%16), 2+int(u%30), wait,
				boundedSlowdown(wait+service, service), service, u%97 == 0)
		}
		return acc
	}
	feed(10_000) // warm allocator pools

	before := heap()
	acc := feed(1_000_000)
	after := heap()

	if acc.measured != 1_000_000 {
		t.Fatalf("accumulated %d observations", acc.measured)
	}
	const budget = 1 << 20 // 1 MiB for two digests + per-tenant moments
	if grew := int64(after) - int64(before); grew > budget {
		t.Errorf("1M-submission accumulation grew the heap by %d bytes (budget %d)", grew, budget)
	}
	if rb := acc.wait.Digest().RetainedBytes() + acc.slow.Digest().RetainedBytes(); rb > budget {
		t.Errorf("digests retain %d bytes (budget %d)", rb, budget)
	}
	runtime.KeepAlive(acc)
}

// TestEmitOpenBenchJSON writes BENCH_open.json — the open-system
// steady-state trajectory CI keeps per commit — when BENCH_OPEN_JSON
// names the output path. The tracked quantities are utilization and
// the tail percentiles: a scheduler or sketch regression shows up as
// the steady state moving, not as ns/op.
func TestEmitOpenBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_OPEN_JSON")
	if out == "" {
		t.Skip("BENCH_OPEN_JSON not set")
	}
	start := time.Now()
	pts, err := OpenSweep(DefaultOptions(42), openGoldenConfig(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Name           string  `json:"name"`
		Strategy       string  `json:"strategy"`
		Arrival        string  `json:"arrival"`
		Measured       int     `json:"measured"`
		Completed      int     `json:"completed"`
		Failed         int     `json:"failed"`
		Utilization    float64 `json:"utilization"`
		WaitP50Seconds float64 `json:"wait_p50_s"`
		WaitP90Seconds float64 `json:"wait_p90_s"`
		WaitP99Seconds float64 `json:"wait_p99_s"`
		SlowdownP99    float64 `json:"slowdown_p99"`
		JainFairness   float64 `json:"jain"`
	}
	var entries []entry
	for _, p := range pts {
		entries = append(entries, entry{
			Name:           fmt.Sprintf("OpenSweep/%s/tenants=%d", p.Strategy, p.Tenants),
			Strategy:       p.Strategy.String(),
			Arrival:        p.Arrival,
			Measured:       p.Measured,
			Completed:      p.Completed,
			Failed:         p.Failed,
			Utilization:    p.Utilization,
			WaitP50Seconds: p.WaitP50Seconds,
			WaitP90Seconds: p.WaitP90Seconds,
			WaitP99Seconds: p.WaitP99Seconds,
			SlowdownP99:    p.SlowdownP99,
			JainFairness:   p.JainFairness,
		})
	}
	blob, err := json.MarshalIndent(map[string]any{
		"benchmarks":   entries,
		"wall_seconds": time.Since(start).Seconds(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", out, len(entries))
}
