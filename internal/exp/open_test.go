package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/sched"
	"p2pmpi/internal/stats"
	"p2pmpi/internal/workload"
)

func openGoldenConfig(t *testing.T) OpenConfig {
	t.Helper()
	return OpenConfig{
		Base:       goldenBase(t),
		Strategies: []core.Strategy{core.Concentrate, core.Spread},
		Arrival: workload.ArrivalSpec{
			Kind: workload.ArrivalDiurnal, Peak: 0.05, Trough: 0.01,
			Period: 30 * time.Minute, MaintEvery: 15 * time.Minute, MaintDur: 90 * time.Second,
		},
		Tenants:        3,
		TenantSkew:     1,
		PriorityLevels: 2,
		Duration:       40 * time.Minute,
		// WarmupAuto pins the historical Duration/10 transient cut (an
		// unset Warmup now means "measure from t=0").
		Warmup: WarmupAuto,
		DurMin: 15, DurMax: 120, // short jobs keep the pump cheap
		NMin: 2, NMax: 8,
		Workers: 4,
		// Deadlines are pure measurement — derived from draws the trace
		// already makes — so pinning SLO attainment and tardiness here
		// costs nothing in golden churn.
		DeadlineFactors: []float64{8, 4},
	}
}

// TestGoldenOpenTrace: the open-system family across worker counts,
// shard counts and federation widths — eight runs, one committed byte
// string. The whole pipeline is pinned: the workload trace, the
// priority admission order, the t-digest percentile state, the
// fairness index.
func TestGoldenOpenTrace(t *testing.T) {
	cfg := openGoldenConfig(t)
	var first string
	var firstLabel string
	for _, sn := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				opts := DefaultOptions(42)
				opts.Supernodes = sn
				opts.Shards = shards
				pts, err := OpenSweep(opts, cfg, workers)
				if err != nil {
					t.Fatalf("sn=%d shards=%d workers=%d: %v", sn, shards, workers, err)
				}
				csv := OpenPointsCSV(pts)
				label := fmt.Sprintf("sn=%d shards=%d workers=%d", sn, shards, workers)
				if first == "" {
					first, firstLabel = csv, label
					continue
				}
				if csv != first {
					t.Fatalf("%s diverged from %s:\n--- first ---\n%s--- this run ---\n%s",
						label, firstLabel, first, csv)
				}
			}
		}
	}
	goldenCompare(t, "golden_open.csv", first)
}

// TestOpenWarmupSemantics pins the warm-up sentinel contract: only
// WarmupAuto picks the Duration/10 default. An explicit zero used to be
// silently rewritten to Duration/10 — the zero value was
// indistinguishable from "unset" — which made a deliberate
// measure-from-t=0 sweep impossible to request.
func TestOpenWarmupSemantics(t *testing.T) {
	for _, c := range []struct {
		name string
		in   time.Duration
		want time.Duration
	}{
		{"auto picks a tenth", WarmupAuto, 6 * time.Minute},
		{"explicit zero means zero", 0, 0},
		{"other negatives mean zero", -5 * time.Second, 0},
		{"explicit value passes through", 90 * time.Second, 90 * time.Second},
	} {
		cfg := OpenConfig{
			Arrival:  workload.ArrivalSpec{Kind: workload.ArrivalPoisson, Rate: 1},
			Duration: time.Hour,
			Warmup:   c.in,
		}
		if err := cfg.fillDefaults(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cfg.Warmup != c.want {
			t.Errorf("%s: warmup = %v, want %v", c.name, cfg.Warmup, c.want)
		}
	}

	// End to end: a zero-warm-up point measures every submission.
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Duration = 10 * time.Minute
	cfg.Warmup = 0
	pt, err := RunOpen(DefaultOptions(42), cfg, core.Spread)
	if err != nil {
		t.Fatal(err)
	}
	if pt.WarmupSeconds != 0 {
		t.Errorf("point reports warmup %.0fs, want 0", pt.WarmupSeconds)
	}
	if pt.Measured != pt.Submitted {
		t.Errorf("zero warm-up measured %d of %d submissions", pt.Measured, pt.Submitted)
	}
}

// TestOpenSketchVsExact holds the streaming path to the acceptance
// bound: queue-wait P50/P90/P99 from the t-digest must sit within 1%
// relative error of the exact order statistics of the same run
// (absolute floor 50ms for near-zero quantiles).
func TestOpenSketchVsExact(t *testing.T) {
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Duration = 2 * time.Hour
	var exact []float64
	cfg.observe = func(j *sched.Job, sub workload.Submission) {
		if j.Err != nil || j.Result == nil || j.Result.LostRanks() > 0 {
			return
		}
		exact = append(exact, math.Max(0, j.Latency().Seconds()-sub.Seconds))
	}
	pt, err := RunOpen(DefaultOptions(42), cfg, core.Spread)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Completed < 100 {
		t.Fatalf("run too small to compare quantiles: %d completed jobs", pt.Completed)
	}
	if len(exact) != pt.Completed {
		t.Fatalf("observe hook saw %d completions, point says %d", len(exact), pt.Completed)
	}
	sum := stats.Summarize(exact)
	for _, c := range []struct {
		name         string
		sketch, want float64
	}{
		{"wait_p50", pt.WaitP50Seconds, sum.P50},
		{"wait_p90", pt.WaitP90Seconds, sum.P90},
		{"wait_p99", pt.WaitP99Seconds, sum.P99},
	} {
		tol := math.Max(0.01*math.Abs(c.want), 0.05)
		if diff := math.Abs(c.sketch - c.want); diff > tol {
			t.Errorf("%s: sketch %.4f vs exact %.4f (|diff| %.4f > tol %.4f)",
				c.name, c.sketch, c.want, diff, tol)
		}
	}
	if diff := math.Abs(pt.MeanWaitSeconds - sum.Mean); diff > 1e-9*math.Max(1, sum.Mean) {
		t.Errorf("mean wait: stream %.6f vs exact %.6f", pt.MeanWaitSeconds, sum.Mean)
	}
}

// TestOpenChurnShardRace composes the open arrival process with host
// churn — compute hosts and federated supernode hosts dying and
// reviving mid-steady-state — on a 3-shard world under the race
// detector, with the lookahead-safety check armed. Per-job outcomes
// and the rendered point must match the single-shard run byte for
// byte.
func TestOpenChurnShardRace(t *testing.T) {
	t.Setenv("VTIME_CHECK", "1")
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Arrival = workload.ArrivalSpec{Kind: workload.ArrivalPoisson, Rate: 0.02}
	cfg.Duration = 40 * time.Minute
	cfg.R = 2
	cfg.Workers = 2
	cfg.MTBF = 90 * time.Second
	cfg.MTTR = 45 * time.Second
	cfg.Detect = 5 * time.Second

	run := func(shards int) (string, []string) {
		c := cfg
		var lines []string
		c.observe = func(j *sched.Job, sub workload.Submission) {
			lines = append(lines, fmt.Sprintf("%d|%d|%d|%s", sub.Seq, sub.Tenant, sub.Priority, jobLine(j)))
		}
		opts := DefaultOptions(99)
		opts.Supernodes = 4
		opts.Shards = shards
		pt, err := RunOpen(opts, c, core.Spread)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if pt.FailuresInjected < 10 {
			t.Fatalf("shards=%d: churn load too light to mean anything: %d failures",
				shards, pt.FailuresInjected)
		}
		return OpenPointsCSV([]OpenPoint{pt}), lines
	}

	seqCSV, seqLines := run(1)
	shCSV, shLines := run(3)
	if shCSV != seqCSV {
		t.Fatalf("open point diverged:\n--- seq ---\n%s--- sharded ---\n%s", seqCSV, shCSV)
	}
	if len(shLines) != len(seqLines) {
		t.Fatalf("job count diverged: %d vs %d", len(seqLines), len(shLines))
	}
	for i := range seqLines {
		if shLines[i] != seqLines[i] {
			t.Fatalf("job %d diverged:\nseq:     %s\nsharded: %s", i, seqLines[i], shLines[i])
		}
	}
}

// TestGoldenOpenSLO pins the SLO-aware multi-tenant tier end to end:
// token-bucket quotas throttling the heavy tenant at admission, the
// preemption primitive checkpoint-killing over-budget running work to
// make room for in-budget jobs, and deadline attainment/tardiness
// folding through the t-digests. One committed byte string across
// worker counts and shard counts — four runs — so quota accrual, victim
// choice and the kill/release path are all deterministic under
// parallel execution.
func TestGoldenOpenSLO(t *testing.T) {
	cfg := openGoldenConfig(t)
	cfg.Arrival = workload.ArrivalSpec{
		Kind: workload.ArrivalWeekly, Peak: 0.1, Trough: 0.025,
		Period: 70 * time.Minute,
	}
	cfg.Duration = 50 * time.Minute
	cfg.NMin, cfg.NMax = 4, 16
	cfg.DurMin, cfg.DurMax = 30, 240
	cfg.Workers = 8 // enough in-flight admission to saturate the 48 procs
	// Inverted skew: premium low-volume tenants hold the high priority
	// class while the bulk batch tenant (tenant 2, lowest priority)
	// carries half the arrival rate — the configuration where quota
	// enforcement and preemption actually bite, since the over-budget
	// tenant's running jobs are outranked by in-budget submitters.
	cfg.TenantSkew = -1
	cfg.QuotaRate = 8
	// A small burst (about one mid-size job) makes budget state move on
	// the test's 50-minute horizon; the default hour of accrual would
	// keep every bucket positive for the whole run.
	cfg.QuotaBurst = 300
	cfg.Preempt = true
	cfg.DeadlineFactors = []float64{6, 3}

	var first, firstLabel string
	var firstPts []OpenPoint
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			opts := DefaultOptions(7)
			opts.Supernodes = 4
			opts.Shards = shards
			pts, err := OpenSweep(opts, cfg, workers)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			csv := OpenPointsCSV(pts)
			label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			if first == "" {
				first, firstLabel, firstPts = csv, label, pts
				continue
			}
			if csv != first {
				t.Fatalf("%s diverged from %s:\n--- first ---\n%s--- this run ---\n%s",
					label, firstLabel, first, csv)
			}
		}
	}
	// The golden is only worth committing if it actually exercises the
	// tier: quotas must throttle, preemption must fire, and deadlines
	// must split into met and missed.
	var preempted int
	var throttled, slo bool
	for _, p := range firstPts {
		preempted += p.Preemptions
		throttled = throttled || p.QuotaThrottleRate > 0
		slo = slo || (p.SLOAttainment > 0 && p.SLOAttainment < 1)
	}
	if preempted == 0 {
		t.Error("no preemptions fired — the golden does not cover the kill path")
	}
	if !throttled {
		t.Error("quota never throttled — the golden does not cover two-class admission")
	}
	if !slo {
		t.Error("SLO attainment degenerate — the golden does not cover deadline metrics")
	}
	goldenCompare(t, "golden_slo.csv", first)
}

// TestOpenPreemptChurnShardRace composes preemption and quotas with
// host churn on a sharded world under the race detector: kills racing
// crashes, revivals and the failure detector. Per-job outcomes and the
// rendered point must match the single-shard run byte for byte — which
// also pins reservation release as exactly-once, since a double or
// dropped release would skew capacity and diverge (or stall) one of the
// runs. RunOpen itself enforces submitted == completed.
func TestOpenPreemptChurnShardRace(t *testing.T) {
	t.Setenv("VTIME_CHECK", "1")
	cfg := openGoldenConfig(t)
	cfg.Strategies = []core.Strategy{core.Spread}
	cfg.Arrival = workload.ArrivalSpec{Kind: workload.ArrivalPoisson, Rate: 0.05}
	cfg.Duration = 40 * time.Minute
	cfg.NMin, cfg.NMax = 4, 12
	cfg.DurMin, cfg.DurMax = 30, 240
	cfg.Workers = 8
	// Same inverted-skew shape as TestGoldenOpenSLO: the bulk tenant
	// overdraws its small burst while premium tenants stay in budget
	// and preempt it.
	cfg.TenantSkew = -1
	cfg.QuotaRate = 5
	cfg.QuotaBurst = 300
	cfg.Preempt = true
	// Mild churn: heavy churn makes jobs fail on missing peers before
	// the ledger ever saturates, and preemption only triggers on
	// saturation. ~10% of hosts down keeps the world tight but placeable.
	cfg.MTBF = 20 * time.Minute
	cfg.MTTR = 2 * time.Minute
	cfg.Detect = 5 * time.Second

	run := func(shards int) (string, []string, OpenPoint) {
		c := cfg
		var lines []string
		c.observe = func(j *sched.Job, sub workload.Submission) {
			lines = append(lines, fmt.Sprintf("%d|%d|%d|%s", sub.Seq, sub.Tenant, sub.Priority, jobLine(j)))
		}
		opts := DefaultOptions(99)
		opts.Supernodes = 4
		opts.Shards = shards
		pt, err := RunOpen(opts, c, core.Spread)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return OpenPointsCSV([]OpenPoint{pt}), lines, pt
	}

	seqCSV, seqLines, seqPt := run(1)
	shCSV, shLines, _ := run(4)
	if seqPt.Preemptions < 1 {
		t.Fatalf("no preemptions under churn: the composition is untested")
	}
	if seqPt.FailuresInjected < 5 {
		t.Fatalf("churn too light to mean anything: %d failures", seqPt.FailuresInjected)
	}
	if shCSV != seqCSV {
		t.Fatalf("open point diverged:\n--- seq ---\n%s--- sharded ---\n%s", seqCSV, shCSV)
	}
	if len(shLines) != len(seqLines) {
		t.Fatalf("job count diverged: %d vs %d", len(seqLines), len(shLines))
	}
	for i := range seqLines {
		if shLines[i] != seqLines[i] {
			t.Fatalf("job %d diverged:\nseq:     %s\nsharded: %s", i, seqLines[i], shLines[i])
		}
	}
}

// weekReplayConfig assembles a Grid'5000-grounded week: the weekly
// arrival curve (weekday plateau, weekend trough) over a 168h horizon,
// small heavy-tailed jobs on a 128-host world, deadlines on every
// priority class.
func weekReplayConfig(t *testing.T, peak float64, maxSubs int) (Options, OpenConfig) {
	t.Helper()
	spec, err := grid.ParseTopologySpec("synth:S=4,H=32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := OpenConfig{
		Base:       spec,
		Strategies: []core.Strategy{core.Spread},
		Arrival: workload.ArrivalSpec{
			Kind: workload.ArrivalWeekly, Peak: peak, Trough: peak / 5,
		},
		Tenants:        8,
		TenantSkew:     1,
		PriorityLevels: 2,
		Duration:       168 * time.Hour,
		Warmup:         WarmupAuto,
		NMin:           1, NMax: 4,
		DurMin: 10, DurMax: 60,
		MaxSubmissions:  maxSubs,
		Workers:         64,
		DeadlineFactors: []float64{12, 6},
	}
	// Default options on purpose: a day-plus horizon must trip RunOpen's
	// long-horizon liveness diet, or this test burns its wall clock on
	// 20-second probe rounds — the exact regression the diet guards.
	return DefaultOptions(42), cfg
}

// TestOpenWeekReplaySmoke walks the whole 168-hour weekly arrival curve
// through the streaming replay path — lazy generation, bounded pending
// state, incremental fold — end to end. The full-scale 10M-submission
// run lives behind BENCH_OPEN_REPLAY_SUBS and the CI smoke; this keeps
// the path exercised on every `go test`.
func TestOpenWeekReplaySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long replay")
	}
	opts, cfg := weekReplayConfig(t, 0.01, 2000)
	pt, err := RunOpen(opts, cfg, core.Spread)
	if err != nil {
		t.Fatal(err)
	}
	if pt.HorizonSeconds != 604800 {
		t.Errorf("horizon %.0fs, want a full week", pt.HorizonSeconds)
	}
	if pt.Submitted < 1000 {
		t.Errorf("only %d submissions over a week — arrival curve broken?", pt.Submitted)
	}
	if pt.Measured == 0 || pt.Completed+pt.Failed != pt.Measured {
		t.Errorf("measured %d != completed %d + failed %d", pt.Measured, pt.Completed, pt.Failed)
	}
	if pt.SLOAttainment <= 0 {
		t.Errorf("slo attainment %.4f — deadlines never folded", pt.SLOAttainment)
	}
}

// TestOpenAccumFootprint1M drives a million synthetic completions
// through the open family's accumulation path and holds its retained
// memory O(1): the t-digest streams keep centroids, not samples, and
// the fairness state is O(tenants). This is the layer that lets a
// 10M-submission steady-state sweep run in constant memory.
func TestOpenAccumFootprint1M(t *testing.T) {
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	feed := func(n int) *openAccum {
		acc := newOpenAccum(16)
		u := uint64(1)
		for i := 0; i < n; i++ {
			u = u*6364136223846793005 + 1442695040888963407
			wait := float64(u%100_000) / 1000
			service := 20 + float64(u%1800)
			acc.observe(int(u%16), 2+int(u%30), wait,
				boundedSlowdown(wait+service, service), service, u%97 == 0)
		}
		return acc
	}
	feed(10_000) // warm allocator pools

	before := heap()
	acc := feed(1_000_000)
	after := heap()

	if acc.measured != 1_000_000 {
		t.Fatalf("accumulated %d observations", acc.measured)
	}
	const budget = 1 << 20 // 1 MiB for two digests + per-tenant moments
	if grew := int64(after) - int64(before); grew > budget {
		t.Errorf("1M-submission accumulation grew the heap by %d bytes (budget %d)", grew, budget)
	}
	if rb := acc.wait.Digest().RetainedBytes() + acc.slow.Digest().RetainedBytes(); rb > budget {
		t.Errorf("digests retain %d bytes (budget %d)", rb, budget)
	}
	runtime.KeepAlive(acc)
}

// TestEmitOpenBenchJSON writes BENCH_open.json — the open-system
// steady-state trajectory CI keeps per commit — when BENCH_OPEN_JSON
// names the output path. The tracked quantities are utilization and
// the tail percentiles: a scheduler or sketch regression shows up as
// the steady state moving, not as ns/op.
func TestEmitOpenBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_OPEN_JSON")
	if out == "" {
		t.Skip("BENCH_OPEN_JSON not set")
	}
	start := time.Now()
	pts, err := OpenSweep(DefaultOptions(42), openGoldenConfig(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Name           string  `json:"name"`
		Strategy       string  `json:"strategy"`
		Arrival        string  `json:"arrival"`
		Measured       int     `json:"measured"`
		Completed      int     `json:"completed"`
		Failed         int     `json:"failed"`
		Utilization    float64 `json:"utilization"`
		WaitP50Seconds float64 `json:"wait_p50_s"`
		WaitP90Seconds float64 `json:"wait_p90_s"`
		WaitP99Seconds float64 `json:"wait_p99_s"`
		SlowdownP99    float64 `json:"slowdown_p99"`
		JainFairness   float64 `json:"jain"`
		SLOAttainment  float64 `json:"slo_attainment"`
		TardinessP99   float64 `json:"tardiness_p99_s"`
	}
	var entries []entry
	for _, p := range pts {
		entries = append(entries, entry{
			Name:           fmt.Sprintf("OpenSweep/%s/tenants=%d", p.Strategy, p.Tenants),
			Strategy:       p.Strategy.String(),
			Arrival:        p.Arrival,
			Measured:       p.Measured,
			Completed:      p.Completed,
			Failed:         p.Failed,
			Utilization:    p.Utilization,
			WaitP50Seconds: p.WaitP50Seconds,
			WaitP90Seconds: p.WaitP90Seconds,
			WaitP99Seconds: p.WaitP99Seconds,
			SlowdownP99:    p.SlowdownP99,
			JainFairness:   p.JainFairness,
			SLOAttainment:  p.SLOAttainment,
			TardinessP99:   p.TardinessP99Seconds,
		})
	}
	payload := map[string]any{
		"benchmarks":   entries,
		"wall_seconds": time.Since(start).Seconds(),
	}
	// BENCH_OPEN_REPLAY_SUBS additionally records the long-horizon
	// replay trajectory: a week of weekly arrivals capped at that many
	// submissions, with wall clock and the process's peak RSS, so a
	// memory regression in the streaming path shows up as the replay
	// footprint moving commit over commit.
	if subs := os.Getenv("BENCH_OPEN_REPLAY_SUBS"); subs != "" {
		n, perr := strconv.Atoi(subs)
		if perr != nil || n <= 0 {
			t.Fatalf("BENCH_OPEN_REPLAY_SUBS=%q: %v", subs, perr)
		}
		peak := float64(n) / 300_000 // ≈ n submissions over the week
		if peak < 0.01 {
			peak = 0.01
		}
		ropts, rcfg := weekReplayConfig(t, peak, n)
		rstart := time.Now()
		rpt, rerr := RunOpen(ropts, rcfg, core.Spread)
		if rerr != nil {
			t.Fatal(rerr)
		}
		payload["week_replay"] = map[string]any{
			"max_submissions": n,
			"submitted":       rpt.Submitted,
			"completed":       rpt.Completed,
			"failed":          rpt.Failed,
			"slo_attainment":  rpt.SLOAttainment,
			"wall_seconds":    time.Since(rstart).Seconds(),
			"peak_rss_bytes":  PeakRSSBytes(),
		}
	}
	blob, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", out, len(entries))
}
