package exp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"p2pmpi/internal/churn"
	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/sched"
)

// The churn experiment family measures survivability — the axis the
// paper's failure-free Grid'5000 snapshot never exercised, although
// replication is P2P-MPI's founding feature. Each point boots a fresh
// world, lets a seeded fault-injection driver cycle hosts down and up
// (churn.Trace over MTBF/MTTR distributions, optionally with
// correlated site outages), and pushes a batch of fixed-duration jobs
// through the multi-job scheduler with the mid-run failure detector
// armed. What comes out, per (strategy, MTBF, replication degree R):
// the job success rate, the completion-time inflation over the
// failure-free baseline, replica failovers per job, and the wasted
// (re-booked) slot-hours — the experimental story for the replication
// degree of the original P2P-MPI system.

// ChurnPoint is one (strategy, MTBF, R) measurement.
type ChurnPoint struct {
	Strategy core.Strategy
	// MTBFSeconds and MTTRSeconds echo the injected failure model.
	MTBFSeconds, MTTRSeconds float64
	// N, R and Jobs echo the submitted batch.
	N, R, Jobs int
	// Hosts is the booted world size.
	Hosts int
	// Succeeded and Failed partition the batch by outcome.
	Succeeded, Failed int
	// SuccessRate is Succeeded / Jobs.
	SuccessRate float64
	// MeanSeconds averages the enqueue-to-finish virtual time of
	// succeeded jobs; Inflation divides it by the failure-free job
	// duration (queueing, detection and re-booking included).
	MeanSeconds float64
	Inflation   float64
	// Failovers counts ranks rescued by a backup replica, summed over
	// succeeded jobs; HostsLostMidRun counts hosts the detectors wrote
	// off, summed over all final attempts.
	Failovers       int
	HostsLostMidRun int
	// Rebooks counts extra submission attempts beyond the first, and
	// WastedSlotHours charges every errored attempt's duration times
	// the job's process count — the capacity burned without producing
	// a completed job.
	Rebooks         int
	WastedSlotHours float64
	// FailuresInjected and DownFraction report what the churn engine
	// actually did: deduplicated host failures fired, and the measured
	// fraction of host-time spent down.
	FailuresInjected int
	DownFraction     float64
}

// ChurnConfig tunes a churn sweep.
type ChurnConfig struct {
	// Base is the topology template (synthetic or grid5000).
	Base grid.TopologySpec
	// Strategies lists the policies to compare (default: every
	// registered strategy).
	Strategies []core.Strategy
	// MTBFs is the mean-time-between-failures axis.
	MTBFs []time.Duration
	// Rs is the replication-degree axis (default {1, 2}).
	Rs []int
	// N is the rank count per job (default 16).
	N int
	// Jobs is the batch size per point (default 8).
	Jobs int
	// JobSeconds is the spin duration of each job — the failure-free
	// completion baseline (default 120).
	JobSeconds float64
	// MTTR is the mean repair time (default 60s).
	MTTR time.Duration
	// Dist selects the lifetime distribution for uptimes and downtimes
	// (default exponential; weibull is heavy-tailed with WeibullShape).
	Dist         churn.DistKind
	WeibullShape float64
	// SiteMTBF and SiteMTTR enable correlated whole-site outages
	// (0 disables).
	SiteMTBF, SiteMTTR time.Duration
	// Workers bounds the scheduler's in-flight jobs per point (default
	// 2, keeping capacity pressure low so the measurement isolates
	// survivability from saturation).
	Workers int
	// Retries is the per-job re-book budget (default 4).
	Retries int
	// Detect is the failure-detector probe period (default 10s).
	Detect time.Duration
	// Timeout bounds each submission attempt (default 3×JobSeconds
	// plus two minutes).
	Timeout time.Duration
}

func (c *ChurnConfig) fillDefaults() error {
	if len(c.Strategies) == 0 {
		c.Strategies = core.Strategies()
	}
	if len(c.MTBFs) == 0 {
		return fmt.Errorf("exp: churn sweep needs at least one MTBF (-mtbf)")
	}
	for _, m := range c.MTBFs {
		if m <= 0 {
			return fmt.Errorf("exp: bad MTBF %v", m)
		}
	}
	if len(c.Rs) == 0 {
		c.Rs = []int{1, 2}
	}
	for _, r := range c.Rs {
		if r < 1 {
			return fmt.Errorf("exp: bad replication degree %d", r)
		}
	}
	if c.N <= 0 {
		c.N = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.JobSeconds <= 0 {
		c.JobSeconds = 120
	}
	if c.MTTR <= 0 {
		c.MTTR = time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Retries <= 0 {
		c.Retries = 4
	}
	if c.Detect <= 0 {
		c.Detect = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Duration(3*c.JobSeconds)*time.Second + 2*time.Minute
	}
	return nil
}

// churnSeed derives the per-point injection seed: a pure function of
// the (MTBF, R) coordinates, so replays and worker counts cannot move
// it — and deliberately NOT of the strategy: the host-level failure
// timeline is placement-independent, so every strategy compared at one
// (MTBF, R) point faces the identical trace. Pairing the comparison
// this way keeps cross-strategy differences attributable to policy
// rather than trace luck.
func churnSeed(seed int64, mtbf time.Duration, r int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "churn|%d|%d", mtbf, r)
	return seed ^ int64(h.Sum64())
}

// ChurnRetryable classifies the errors worth a re-book under churn:
// contention (the scheduler's default) plus the two failure outcomes —
// a host dying between Acquire and launch, and a rank losing every
// replica mid-run. Both churn surfaces (the sweep and p2pmpirun's
// -mtbf mode) share it so they agree on what the re-book path covers.
func ChurnRetryable(err error) bool {
	return errors.Is(err, mpd.ErrNotEnoughPeers) ||
		errors.Is(err, sched.ErrSaturated) ||
		errors.Is(err, mpd.ErrLaunchFailed) ||
		errors.Is(err, mpd.ErrRanksLost)
}

// ChurnSweep measures every configured strategy at every (MTBF, R)
// point. Each point owns an independent, freshly booted world with its
// own injection trace, so points run across a bounded pool with
// byte-identical results to a sequential run. Results are ordered
// (MTBF, R, strategy).
func ChurnSweep(opts Options, cfg ChurnConfig, workers int) ([]ChurnPoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	type coord struct {
		mtbf     time.Duration
		r        int
		strategy core.Strategy
	}
	var coords []coord
	for _, mtbf := range cfg.MTBFs {
		for _, r := range cfg.Rs {
			for _, st := range cfg.Strategies {
				coords = append(coords, coord{mtbf, r, st})
			}
		}
	}
	out := make([]ChurnPoint, len(coords))
	err := runPool(len(coords), workers, func(i int) error {
		c := coords[i]
		pt, err := churnAt(opts, cfg, c.mtbf, c.r, c.strategy)
		if err != nil {
			return fmt.Errorf("mtbf=%v r=%d %s: %w", c.mtbf, c.r, c.strategy, err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// churnAt boots one world, injects churn, and runs the batch.
func churnAt(opts Options, cfg ChurnConfig, mtbf time.Duration, r int, strategy core.Strategy) (ChurnPoint, error) {
	o := opts
	o.Topology = cfg.Base
	if cfg.Base.TotalHosts() > 1000 {
		// Large worlds over the long churn horizon drown in membership
		// traffic: every peer refresh and re-registration ships a
		// host-list reply, O(world) per message and O(world²) per
		// virtual minute summed over peers — none of which feeds the
		// measurement. Bound the supernode's replies well above the
		// booking fan-out and slow the compute peers' refreshes (their
		// cached lists are never consulted; the frontal's cadence is
		// untouched). Both knobs stay caller-overridable.
		if o.MaxPeersReturned == 0 {
			bound := 4 * (int(math.Ceil(1.2*float64(cfg.N*r))) + 2)
			if bound < 512 {
				bound = 512
			}
			o.MaxPeersReturned = bound
		}
		if o.PeerRefreshInterval == 0 {
			o.PeerRefreshInterval = time.Hour
		}
		if o.PeerCacheCap == 0 {
			// As in scaleAt: unread compute-peer boot snapshots dominate
			// per-host retention on large worlds.
			o.PeerCacheCap = 2
		}
	}
	w := NewWorld(o)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return ChurnPoint{}, err
	}

	budget := runJobsBudget(cfg.Jobs) // RunJobs' pump budget, in virtual seconds
	driver := w.StartChurn(churn.Config{
		Seed:         churnSeed(opts.Seed, mtbf, r),
		MTBF:         mtbf,
		MTTR:         cfg.MTTR,
		UpDist:       cfg.Dist,
		DownDist:     cfg.Dist,
		WeibullShape: cfg.WeibullShape,
		SiteMTBF:     cfg.SiteMTBF,
		SiteMTTR:     cfg.SiteMTTR,
		Horizon:      time.Duration(budget) * time.Second,
	})

	spec := mpd.JobSpec{
		Program:        "spin",
		Args:           []string{fmt.Sprintf("%g", cfg.JobSeconds)},
		N:              cfg.N,
		R:              r,
		Strategy:       strategy,
		Timeout:        cfg.Timeout,
		FailureDetect:  cfg.Detect,
		ReserveRetries: 1,
	}
	jobs, _, err := RunJobs(w, spec, cfg.Jobs, sched.Config{
		Workers:      cfg.Workers,
		Retries:      cfg.Retries,
		Backoff:      5 * time.Second,
		Seed:         opts.Seed,
		IsContention: ChurnRetryable,
	})
	injected := driver.Stop()
	if err != nil {
		return ChurnPoint{}, err
	}

	pt := ChurnPoint{
		Strategy:    strategy,
		MTBFSeconds: mtbf.Seconds(),
		MTTRSeconds: cfg.MTTR.Seconds(),
		N:           cfg.N, R: r, Jobs: cfg.Jobs,
		Hosts:            w.Grid.TotalHosts(),
		FailuresInjected: injected.Failures,
		DownFraction:     injected.DownFraction(),
	}
	var sumSecs float64
	procs := float64(cfg.N * r)
	for _, j := range jobs {
		pt.Rebooks += j.Attempts - 1
		pt.WastedSlotHours += j.Wasted.Hours() * procs
		if j.Result != nil {
			pt.HostsLostMidRun += j.Result.Failover.HostsLost
		}
		// Success is the replication-level criterion: every rank
		// delivered through at least one replica. A nil error with a
		// rank missing (e.g. its host stayed down past the attempt
		// deadline) is still a failed job.
		if j.Err != nil || j.Result.LostRanks() > 0 {
			pt.Failed++
			continue
		}
		pt.Succeeded++
		sumSecs += j.Latency().Seconds()
		pt.Failovers += j.Result.Failover.Failovers
	}
	pt.SuccessRate = float64(pt.Succeeded) / float64(cfg.Jobs)
	if pt.Succeeded > 0 {
		pt.MeanSeconds = sumSecs / float64(pt.Succeeded)
		pt.Inflation = pt.MeanSeconds / cfg.JobSeconds
	}
	return pt, nil
}

// ChurnPointsCSV renders a churn sweep as CSV, one row per (MTBF, R,
// strategy) point.
func ChurnPointsCSV(pts []ChurnPoint) string {
	var b strings.Builder
	b.WriteString("strategy,mtbf_s,mttr_s,n,r,jobs,hosts,succeeded,failed,success_rate," +
		"mean_s,inflation,failovers,hosts_lost,rebooks,wasted_slot_hours," +
		"failures_injected,down_fraction\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%.0f,%.0f,%d,%d,%d,%d,%d,%d,%.4f,%.3f,%.4f,%d,%d,%d,%.4f,%d,%.4f\n",
			p.Strategy, p.MTBFSeconds, p.MTTRSeconds, p.N, p.R, p.Jobs, p.Hosts,
			p.Succeeded, p.Failed, p.SuccessRate, p.MeanSeconds, p.Inflation,
			p.Failovers, p.HostsLostMidRun, p.Rebooks, p.WastedSlotHours,
			p.FailuresInjected, p.DownFraction)
	}
	return b.String()
}

// RenderChurnPoints prints a churn sweep as a table.
func RenderChurnPoints(title string, pts []ChurnPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s %3s %-12s %8s %9s %9s %5s %7s %10s %9s\n",
		"mtbf(s)", "r", "strategy", "success", "mean(s)", "inflate", "fovr", "rebooks", "waste(s·h)", "down%")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f %3d %-12s %6.0f%% %9.1f %8.2fx %5d %7d %10.3f %8.1f%%\n",
			p.MTBFSeconds, p.R, p.Strategy, 100*p.SuccessRate, p.MeanSeconds,
			p.Inflation, p.Failovers, p.Rebooks, p.WastedSlotHours, 100*p.DownFraction)
	}
	return b.String()
}
