package exp

import (
	"fmt"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
	"p2pmpi/internal/sched"
)

// The concurrent-jobs experiment family goes past the paper's §5: there,
// every job ran alone on an otherwise idle platform. Here K identical
// jobs are submitted simultaneously through the multi-job scheduler and
// contend for the same host slots (every owner runs with J = 1), which
// is the regime a production co-allocation service actually operates in.

// ConcurrentPoint records strategy behaviour under K simultaneous jobs.
type ConcurrentPoint struct {
	K        int
	N, R     int
	Strategy core.Strategy

	// Completed and Failed partition the K jobs by outcome.
	Completed, Failed int
	// Attempts and SchedConflicts are scheduler-level counters: Submit
	// calls (plus admission backoffs) and the attempts lost to
	// contention.
	Attempts, SchedConflicts int
	// ReserveOK and ReserveNOK sum the accepted/rejected reservation
	// requests over every host's RS daemon.
	ReserveOK, ReserveNOK int
	// ConflictRate is ReserveNOK / (ReserveOK + ReserveNOK): the
	// fraction of reservation traffic lost to slot contention.
	ConflictRate float64
	// MeanSites and MeanHosts average the per-job allocation footprint
	// (sites and hosts with at least one process) over completed jobs.
	MeanSites, MeanHosts float64
	// MeanJobSeconds averages each completed job's enqueue-to-finish
	// virtual time — queueing, backoff and execution included.
	MeanJobSeconds float64
	// MakespanSeconds is the virtual time from the first enqueue to the
	// last completion.
	MakespanSeconds float64
}

// ConcurrentConfig tunes the experiment.
type ConcurrentConfig struct {
	// N and R shape each of the K identical jobs (default 32 / 1).
	N, R int
	// Retries and Backoff configure the scheduler's contention handling
	// (defaults 8 / 5s).
	Retries int
	Backoff time.Duration
}

func (c *ConcurrentConfig) fillDefaults() {
	if c.N <= 0 {
		c.N = 32
	}
	if c.R <= 0 {
		c.R = 1
	}
	if c.Retries == 0 {
		c.Retries = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Second
	}
}

// HostSlots returns the world's compute hosts as ledger slots: every
// peer with its core count as capacity (the worlds set P to the core
// count and J to 1, matching §5).
func (w *World) HostSlots() []core.HostSlot {
	var hosts []core.HostSlot
	for _, h := range w.Grid.Hosts {
		hosts = append(hosts, core.HostSlot{ID: h.ID, Site: h.Site, P: h.Cores, Cores: h.Cores})
	}
	return hosts
}

// runJobsBudget is RunJobs' virtual-second pump budget for k jobs: one
// hour plus a minute per job. The churn sweep sizes its injection
// horizon from the same formula so failures keep arriving for as long
// as jobs can still be running.
func runJobsBudget(k int) int { return 3600 + 60*k }

// RunJobs pushes k copies of spec through a fresh multi-job scheduler
// on a booted world, pumping the virtual clock until every job
// completed (budget: one virtual hour plus a minute per job). It
// returns the completed jobs and the scheduler counters; p2pmpirun's
// -jobs mode and the concurrent experiments share this path.
func RunJobs(w *World, spec mpd.JobSpec, k int, cfg sched.Config) ([]*sched.Job, sched.Stats, error) {
	if k < 1 {
		return nil, sched.Stats{}, fmt.Errorf("exp: k = %d", k)
	}
	if cfg.Workers <= 0 {
		// All jobs admitted at once: the only throttling is slot
		// contention itself.
		cfg.Workers = k
	}
	sc := sched.New(w.S, w.Frontal, w.HostSlots(), cfg)
	budget := runJobsBudget(k)
	jobs, err := submitPumped(w, budget, "exp.concurrent", func() ([]*sched.Job, error) {
		sc.Start()
		for i := 0; i < k; i++ {
			sc.Enqueue(spec)
		}
		jobs, err := sc.WaitTimeout(k, time.Duration(budget)*time.Second)
		if err != nil {
			return nil, fmt.Errorf("exp: concurrent jobs stalled: %w", err)
		}
		sc.Close()
		return jobs, nil
	})
	return jobs, sc.Stats(), err
}

// ConcurrentJobs boots a fresh world and runs K identical hostname jobs
// through the multi-job scheduler, all admitted at once.
func ConcurrentJobs(opts Options, strategy core.Strategy, k int, cfg ConcurrentConfig) (ConcurrentPoint, error) {
	cfg.fillDefaults()
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return ConcurrentPoint{}, err
	}
	spec := mpd.JobSpec{
		Program:  "hostname",
		N:        cfg.N,
		R:        cfg.R,
		Strategy: strategy,
		Timeout:  10 * time.Minute,
	}
	jobs, st, err := RunJobs(w, spec, k, sched.Config{
		Retries: cfg.Retries,
		Backoff: cfg.Backoff,
		Seed:    opts.Seed,
	})
	if err != nil {
		return ConcurrentPoint{}, err
	}

	// Makespan: first enqueue to last completion. All enqueues happen at
	// the same virtual instant (Enqueue never blocks).
	var first, last time.Time
	for _, j := range jobs {
		if first.IsZero() || j.Enqueued.Before(first) {
			first = j.Enqueued
		}
		if j.Finished.After(last) {
			last = j.Finished
		}
	}
	pt := ConcurrentPoint{K: k, N: cfg.N, R: cfg.R, Strategy: strategy,
		MakespanSeconds: last.Sub(first).Seconds()}
	pt.Attempts, pt.SchedConflicts = st.Attempts, st.Conflicts
	var sumSites, sumHosts, sumSecs float64
	for _, j := range jobs {
		if j.Err != nil {
			pt.Failed++
			continue
		}
		pt.Completed++
		sumSites += float64(len(j.Result.Assignment.HostsBySite()))
		sumHosts += float64(j.Result.Assignment.UsedHosts())
		sumSecs += j.Latency().Seconds()
	}
	if pt.Completed > 0 {
		pt.MeanSites = sumSites / float64(pt.Completed)
		pt.MeanHosts = sumHosts / float64(pt.Completed)
		pt.MeanJobSeconds = sumSecs / float64(pt.Completed)
	}
	for _, p := range w.Peers {
		a, r := p.RS().Stats()
		pt.ReserveOK += int(a)
		pt.ReserveNOK += int(r)
	}
	if total := pt.ReserveOK + pt.ReserveNOK; total > 0 {
		pt.ConflictRate = float64(pt.ReserveNOK) / float64(total)
	}
	return pt, nil
}

// ConcurrentSweep measures one strategy across the K axis. Every point
// owns an independent world, so points run in parallel across a bounded
// pool with byte-identical results to a sequential (workers = 1) run.
func ConcurrentSweep(opts Options, strategy core.Strategy, ks []int, cfg ConcurrentConfig, workers int) ([]ConcurrentPoint, error) {
	if ks == nil {
		ks = DefaultConcurrentKs()
	}
	out := make([]ConcurrentPoint, len(ks))
	err := runPool(len(ks), workers, func(i int) error {
		p, err := ConcurrentJobs(opts, strategy, ks[i], cfg)
		if err != nil {
			return fmt.Errorf("%v k=%d: %w", strategy, ks[i], err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultConcurrentKs returns the K axis of the concurrent-jobs sweep.
func DefaultConcurrentKs() []int { return []int{1, 2, 4, 8, 16} }
