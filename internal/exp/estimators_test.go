package exp

import (
	"testing"

	"p2pmpi/internal/latency"
)

// TestEstimatorStudyOrdering: on the live grid, a windowed estimator
// must rank peers at least as well as the paper's last-sample behaviour.
func TestEstimatorStudyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full grids")
	}
	pts, err := EstimatorStudy(DefaultOptions(42),
		[]latency.Kind{latency.KindLast, latency.KindMedian}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	last, median := pts[0], pts[1]
	if last.Kind != latency.KindLast || median.Kind != latency.KindMedian {
		t.Fatalf("order = %v %v", last.Kind, median.Kind)
	}
	if last.Tau <= 0.5 || last.Tau > 1 {
		t.Fatalf("last tau = %v, out of plausible range", last.Tau)
	}
	if median.Tau < last.Tau-0.01 {
		t.Fatalf("median tau %.4f worse than last %.4f", median.Tau, last.Tau)
	}
}
