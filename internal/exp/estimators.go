package exp

import (
	"time"

	"p2pmpi/internal/latency"
	"p2pmpi/internal/stats"
)

// EstimatorPoint grades one estimator kind on the live testbed: the
// Kendall tau between the submitter's measured peer ranking and the true
// base-latency ranking, after a number of probe rounds.
type EstimatorPoint struct {
	Kind   latency.Kind
	Rounds int
	Tau    float64
}

// EstimatorStudy implements the paper's stated future work ("improving
// the accuracy of our latency measurement so that it ... becomes less
// sensitive to external load"): it boots one world per estimator kind,
// lets the submitter probe all 350 peers for the given number of rounds,
// and scores how well the resulting booking order matches the true
// latency order.
func EstimatorStudy(opts Options, kinds []latency.Kind, rounds int) ([]EstimatorPoint, error) {
	if kinds == nil {
		kinds = latency.Kinds
	}
	if rounds <= 0 {
		rounds = 4
	}
	var out []EstimatorPoint
	for _, kind := range kinds {
		o := opts
		o.Estimator = kind
		o.EstimatorWindow = 8
		w := NewWorld(o)
		if err := w.Boot(); err != nil {
			w.Close()
			return nil, err
		}
		// Boot already ran one probe round; run the remaining ones.
		for r := 1; r < rounds; r++ {
			w.RunFor(o.FrontalPingInterval + 5*time.Second)
		}
		out = append(out, EstimatorPoint{
			Kind:   kind,
			Rounds: rounds,
			Tau:    rankingTau(w),
		})
		w.Close()
	}
	return out, nil
}

// rankingTau correlates the frontal's latency estimates with the true
// one-way base latencies of every peer.
func rankingTau(w *World) float64 {
	cache := w.Frontal.Cache()
	ids := cache.IDs()
	truth := make([]float64, 0, len(ids))
	est := make([]float64, 0, len(ids))
	for _, id := range ids {
		e := cache.Latency(id)
		if e == latency.Unknown {
			continue
		}
		truth = append(truth, float64(w.Net.BaseOneWay(w.FrontalID, id)))
		est = append(est, float64(e))
	}
	if len(truth) < 2 {
		return 0
	}
	return stats.KendallTau(truth, est)
}
