package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/faults"
)

// nemesisTestConfig is the tiny-world sweep the determinism and golden
// tests share: a loss-only baseline point and a loss+partition point,
// with the RPC robustness layer armed at its defaults. Gray failures
// and composed churn stay off here — both strike the supernode tier's
// dedicated hosts, which only exist on federated worlds, and the
// golden pins the job-plane CSV across federation widths.
func nemesisTestConfig(t *testing.T) NemesisConfig {
	return NemesisConfig{
		Base:       goldenBase(t),
		Strategy:   core.Spread,
		Losses:     []float64{0, 0.2},
		PartDurs:   []time.Duration{30 * time.Second},
		PartMTBF:   2 * time.Minute,
		N:          6,
		R:          2,
		Jobs:       3,
		JobSeconds: 40,
		Detect:     10 * time.Second,
	}
}

// TestGoldenNemesisTrace: the nemesis family with faults enabled,
// across worker counts 1/4, shard counts 1/4 and federation widths
// 1/4 — eight runs, one committed byte string. The fault trace, every
// retry, every detector write-off and every re-book replay
// identically whatever the execution shape; the job-plane CSV is also
// federation-width-independent because booking runs off the boot-time
// cache and retry jitter is drawn per target (see mpd.retryDelay).
func TestGoldenNemesisTrace(t *testing.T) {
	cfg := nemesisTestConfig(t)
	var first string
	var firstShape string
	for _, sn := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				opts := DefaultOptions(42)
				opts.Supernodes = sn
				opts.Shards = shards
				pts, err := NemesisSweep(opts, cfg, workers)
				if err != nil {
					t.Fatalf("sn=%d shards=%d workers=%d: %v", sn, shards, workers, err)
				}
				csv := NemesisPointsCSV(pts)
				if first == "" {
					first, firstShape = csv, fmt.Sprintf("sn=%d shards=%d workers=%d", sn, shards, workers)
					continue
				}
				if csv != first {
					t.Fatalf("sn=%d shards=%d workers=%d diverged from %s:\n--- first ---\n%s--- this run ---\n%s",
						sn, shards, workers, firstShape, first, csv)
				}
			}
		}
	}
	goldenCompare(t, "golden_nemesis.csv", first)
}

// TestNemesisShardRace composes a federation-splitting partition
// schedule, uniform link loss and supernode churn — membership shards
// dying, reviving and re-converging while the network is being cut —
// on a 3-shard world under the race detector, with the
// lookahead-safety check armed. Both renderings (the job-plane CSV
// and the membership-tier CSV, healing latency included) must match
// the single-shard run byte for byte.
func TestNemesisShardRace(t *testing.T) {
	t.Setenv("VTIME_CHECK", "1")
	cfg := nemesisTestConfig(t)
	cfg.Losses = []float64{0.2}
	cfg.PartDurs = []time.Duration{40 * time.Second}
	cfg.MTBF = 90 * time.Second
	cfg.MTTR = 45 * time.Second
	cfg.Jobs = 4
	cfg.Detect = 5 * time.Second
	cfg.BreakerThreshold = 3

	run := func(shards int) (string, string, NemesisPoint) {
		opts := DefaultOptions(99)
		opts.Supernodes = 4
		opts.Shards = shards
		pts, err := NemesisSweep(opts, cfg, 2)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return NemesisPointsCSV(pts), NemesisFederationCSV(pts), pts[0]
	}

	seqCSV, seqFed, seqPt := run(1)
	shCSV, shFed, _ := run(3)
	if seqPt.Partitions < 2 {
		t.Fatalf("partition load too light to mean anything: %+v", seqPt)
	}
	if seqPt.FailuresInjected < 10 {
		t.Fatalf("churn load too light to mean anything: %d failures", seqPt.FailuresInjected)
	}
	if seqPt.RPCRetries == 0 {
		t.Fatalf("robustness layer never retried under 20%% loss: %+v", seqPt)
	}
	if shCSV != seqCSV {
		t.Fatalf("job-plane point diverged:\n--- seq ---\n%s--- sharded ---\n%s", seqCSV, shCSV)
	}
	if shFed != seqFed {
		t.Fatalf("membership-tier point diverged:\n--- seq ---\n%s--- sharded ---\n%s", seqFed, shFed)
	}
}

// TestNemesisZeroSpecIsFreeOfFaultState: a zero fault spec must leave
// the world's network untouched — the faults hook stays nil and the
// nemesis point at loss=0/partdur=0 reports a clean run. This is the
// cheap in-suite proxy for the acceptance bar that fault-free goldens
// stay byte-identical (which the other golden tests enforce directly:
// they never install fault state at all).
func TestNemesisZeroSpecIsFreeOfFaultState(t *testing.T) {
	var zero faults.Config
	if zero.Enabled() {
		t.Fatal("zero faults.Config claims to inject")
	}
	cfg := nemesisTestConfig(t)
	cfg.Losses = []float64{0}
	cfg.PartDurs = []time.Duration{0}
	pts, err := NemesisSweep(DefaultOptions(42), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Partitions != 0 || p.CutPairs != 0 || p.GrayEpisodes != 0 {
		t.Fatalf("fault-free point reports injections: %+v", p)
	}
	if p.SuccessRate != 1 {
		t.Fatalf("fault-free point lost jobs: %+v", p)
	}
	if p.RPCRetries != 0 || p.Rebooks != 0 {
		t.Fatalf("fault-free point needed recovery work: %+v", p)
	}
	if p.Inflation > 1.5 {
		t.Fatalf("fault-free inflation %.2f", p.Inflation)
	}
}

func TestNemesisPointsCSVShape(t *testing.T) {
	pts := []NemesisPoint{{
		Loss: 0.3, PartDurSeconds: 60, PartMTBFSeconds: 300,
		N: 6, R: 2, Jobs: 4, Hosts: 24, Succeeded: 3, Failed: 1,
		SuccessRate: 0.75, MeanSeconds: 80, Inflation: 1.33,
		Failovers: 2, HostsLost: 3, Rebooks: 2,
		Partitions: 5, PartitionSeconds: 290.5, CutPairs: 10,
		FailuresInjected: 7, SN: 4, RPCRetries: 31, BreakerSkips: 4,
		GrayEpisodes: 2, HealSamples: 4, HealMeanSeconds: 0.75, HealMaxSeconds: 1.25,
	}}
	csv := NemesisPointsCSV(pts)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV:\n%s", csv)
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(lines[0], ",")); got != want {
		t.Fatalf("row has %d fields, header %d:\n%s", got, want, csv)
	}
	fed := NemesisFederationCSV(pts)
	flines := strings.Split(strings.TrimSpace(fed), "\n")
	if len(flines) != 2 {
		t.Fatalf("federation CSV:\n%s", fed)
	}
	if got, want := len(strings.Split(flines[1], ",")), len(strings.Split(flines[0], ",")); got != want {
		t.Fatalf("federation row has %d fields, header %d:\n%s", got, want, fed)
	}
	if !strings.Contains(fed, ",4,31,4,") {
		t.Fatalf("federation CSV lost the membership counters:\n%s", fed)
	}
	table := RenderNemesisPoints("nemesis", pts)
	if !strings.Contains(table, "75%") {
		t.Fatalf("table:\n%s", table)
	}
}

// nemesisBenchConfig is the acceptance point: 30% uniform loss plus
// 60-second federation-splitting partitions, unreplicated jobs, and a
// single re-book so the RPC robustness layer — not the scheduler's
// retry budget and not replication — is what recovers launches.
func nemesisBenchConfig(t *testing.T) NemesisConfig {
	return NemesisConfig{
		Base:       goldenBase(t),
		Strategy:   core.Spread,
		Losses:     []float64{0.3},
		PartDurs:   []time.Duration{time.Minute},
		PartMTBF:   90 * time.Second,
		N:          6,
		R:          1,
		Jobs:       10,
		JobSeconds: 60,
		Retries:    1,
		Detect:     10 * time.Second,
	}
}

// TestEmitNemesisBenchJSON writes BENCH_nemesis.json — the
// partition-tolerance trajectory CI keeps per commit — when
// BENCH_NEMESIS_JSON names the output path. It runs the acceptance
// point twice, with the robustness layer armed and disabled, and
// reports the measured recovery margin: retries must recover at least
// the no-retry success rate.
func TestEmitNemesisBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_NEMESIS_JSON")
	if out == "" {
		t.Skip("BENCH_NEMESIS_JSON not set")
	}
	start := time.Now()
	opts := DefaultOptions(42)
	opts.Supernodes = 4 // federated, so the healing latency is measured too

	cfg := nemesisBenchConfig(t)
	withPts, err := NemesisSweep(opts, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	noCfg := cfg
	noCfg.RPCRetries = -1
	noPts, err := NemesisSweep(opts, noCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	withPt, noPt := withPts[0], noPts[0]
	if withPt.RPCRetries == 0 {
		t.Fatalf("robustness layer never retried at 30%% loss: %+v", withPt)
	}
	if noPt.RPCRetries != 0 {
		t.Fatalf("disabled robustness layer still retried: %+v", noPt)
	}
	margin := withPt.SuccessRate - noPt.SuccessRate
	if margin < 0 {
		t.Fatalf("retries lost ground: with %.2f vs without %.2f", withPt.SuccessRate, noPt.SuccessRate)
	}

	type entry struct {
		Name             string  `json:"name"`
		RPCRetries       int     `json:"rpc_retry_budget"`
		Loss             float64 `json:"loss"`
		PartDurSeconds   float64 `json:"part_s"`
		SuccessRate      float64 `json:"success_rate"`
		Inflation        float64 `json:"inflation"`
		RetryVolume      int64   `json:"retry_volume"`
		Rebooks          int     `json:"rebooks"`
		HostsLost        int     `json:"hosts_lost"`
		Partitions       int     `json:"partitions"`
		PartitionSeconds float64 `json:"partition_s"`
		HealSamples      int     `json:"heal_samples"`
		HealMeanSeconds  float64 `json:"heal_mean_s"`
		HealMaxSeconds   float64 `json:"heal_max_s"`
	}
	mk := func(name string, budget int, p NemesisPoint) entry {
		return entry{
			Name: name, RPCRetries: budget,
			Loss: p.Loss, PartDurSeconds: p.PartDurSeconds,
			SuccessRate: p.SuccessRate, Inflation: p.Inflation,
			RetryVolume: p.RPCRetries, Rebooks: p.Rebooks, HostsLost: p.HostsLost,
			Partitions: p.Partitions, PartitionSeconds: p.PartitionSeconds,
			HealSamples: p.HealSamples, HealMeanSeconds: p.HealMeanSeconds,
			HealMaxSeconds: p.HealMaxSeconds,
		}
	}
	blob, err := json.MarshalIndent(map[string]any{
		"benchmarks": []entry{
			mk("NemesisSweep/loss=0.3/part=60s/retries=on", 2, withPt),
			mk("NemesisSweep/loss=0.3/part=60s/retries=off", 0, noPt),
		},
		"recovery_margin": margin,
		"wall_seconds":    time.Since(start).Seconds(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (success with/without retries: %.2f/%.2f, margin %.2f)",
		out, withPt.SuccessRate, noPt.SuccessRate, margin)
}
