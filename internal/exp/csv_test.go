package exp

import (
	"strings"
	"testing"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

func TestSitePointsCSV(t *testing.T) {
	pts := []SitePoint{{
		N:           250,
		HostsBySite: map[string]int{grid.Nancy: 60, grid.Lyon: 5},
		CoresBySite: map[string]int{grid.Nancy: 240, grid.Lyon: 10},
	}}
	out := SitePointsCSV(pts)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n,hosts_nancy,cores_nancy") {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "250,60,240,5,10") {
		t.Fatalf("row = %s", lines[1])
	}
}

func TestTimePointsCSV(t *testing.T) {
	pts := []TimePoint{
		{N: 64, Strategy: core.Spread, Seconds: 4.3},
		{N: 32, Strategy: core.Concentrate, Seconds: 4.09},
		{N: 32, Strategy: core.Spread, Seconds: 2.04},
		{N: 64, Strategy: core.Concentrate, Seconds: 2.64},
	}
	out := TimePointsCSV(pts)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "n,concentrate_s,spread_s" {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "32,4.09") || !strings.HasPrefix(lines[2], "64,2.64") {
		t.Fatalf("rows:\n%s", out)
	}
}

func TestTimePointsCSVMissingStrategy(t *testing.T) {
	pts := []TimePoint{{N: 32, Strategy: core.Spread, Seconds: 1}}
	out := TimePointsCSV(pts)
	if !strings.Contains(out, "32,,1.000000") {
		t.Fatalf("missing column not blank:\n%s", out)
	}
}

func TestTable1CSV(t *testing.T) {
	out := Table1CSV()
	if !strings.Contains(out, "nancy,grelon,Intel Xeon 5110,60,120,240") {
		t.Fatalf("csv:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 9 {
		t.Fatalf("want 1 header + 8 rows:\n%s", out)
	}
}
