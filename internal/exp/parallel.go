package exp

import (
	"runtime"
	"sync"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpd"
)

// DefaultWorkers returns the default parallelism of the sweep pool.
func DefaultWorkers() int { return runtime.NumCPU() }

// runPool runs fn(i) for every i in [0, n) on at most workers OS
// goroutines and returns the first error. Each task owns an independent
// virtual-time world, so OS-level parallelism cannot perturb results:
// outputs are written into index i of the caller's slice and are
// byte-identical whatever the worker count.
func runPool(n, workers int, fn func(i int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// SitePointAt boots a fresh world and records the per-site allocation of
// a single n-process submission — the unit of work of the parallel
// Figure 2/3 sweep.
func SitePointAt(opts Options, strategy core.Strategy, n int) (SitePoint, error) {
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return SitePoint{}, err
	}
	pts, err := CoAllocationSweep(w, strategy, []int{n})
	if err != nil {
		return SitePoint{}, err
	}
	return pts[0], nil
}

// CoAllocationSweepParallel runs every point of a Figure 2/3-style sweep
// in its own independent world, across a bounded worker pool.
//
// Unlike CoAllocationSweep — where the points share one world and each
// submission observes the latency-ranking noise accumulated by its
// predecessors — every point here starts from an identical freshly
// booted deployment. Results are therefore fully determined by (opts,
// strategy, n) alone and independent of the worker count: the CSV
// rendering of a workers=1 run and a workers=N run are byte-identical.
func CoAllocationSweepParallel(opts Options, strategy core.Strategy, ns []int, workers int) ([]SitePoint, error) {
	if ns == nil {
		ns = DefaultFig23Ns()
	}
	out := make([]SitePoint, len(ns))
	err := runPool(len(ns), workers, func(i int) error {
		p, err := SitePointAt(opts, strategy, ns[i])
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TimePointAt boots a fresh world and measures one NAS model run — the
// unit of work of the parallel Figure 4 sweep.
func TimePointAt(opts Options, program string, strategy core.Strategy, n int) (TimePoint, error) {
	w := NewWorld(opts)
	defer w.Close()
	if err := w.Boot(); err != nil {
		return TimePoint{}, err
	}
	pts, err := NASSweep(w, program, strategy, []int{n})
	if err != nil {
		return TimePoint{}, err
	}
	return pts[0], nil
}

// NASSweepParallel is the per-point-world, pool-parallel variant of
// NASSweep, with the same determinism guarantee as
// CoAllocationSweepParallel.
func NASSweepParallel(opts Options, program string, strategy core.Strategy, ns []int, workers int) ([]TimePoint, error) {
	out := make([]TimePoint, len(ns))
	err := runPool(len(ns), workers, func(i int) error {
		p, err := TimePointAt(opts, program, strategy, ns[i])
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// submitPumped runs fn as an actor on the world's scheduler and pumps
// the virtual clock one second at a time until fn finishes or the
// budget of virtual seconds is exhausted.
func submitPumped[T any](w *World, budget int, name string, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	w.S.Go(name, func() {
		v, err := fn()
		ch <- outcome{v, err}
	})
	for i := 0; i < budget; i++ {
		w.RunFor(time.Second)
		select {
		case o := <-ch:
			return o.v, o.err
		default:
		}
	}
	var zero T
	return zero, ErrPumpExhausted
}

// Compile-time check that *mpd.MPD keeps satisfying the scheduler's
// submitter contract used by the concurrent experiments.
var _ interface {
	Submit(mpd.JobSpec) (*mpd.JobResult, error)
} = (*mpd.MPD)(nil)
