package exp

import (
	"fmt"
	"strings"

	"p2pmpi/internal/core"
	"p2pmpi/internal/grid"
)

// RenderTable1 prints the resource inventory in the paper's layout.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Characteristics of available computing resources\n")
	fmt.Fprintf(&b, "%-10s %-11s %-18s %7s %6s %6s\n",
		"Site", "Cluster", "CPU", "#Nodes", "#CPUs", "#Cores")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-10s %-11s %-18s %7d %6d %6d\n",
			r.Site, r.Cluster, r.CPU, r.Nodes, r.CPUs, r.Cores)
	}
	g := grid.Grid5000()
	fmt.Fprintf(&b, "%-10s %-11s %-18s %7d %6d %6d\n",
		"total", "", "", g.TotalHosts(), g.TotalHosts()*2, g.TotalCores())
	return b.String()
}

// RenderSitePoints prints a Figure 2/3 data table: one row per demanded
// process count, one column pair (hosts, cores) per site in the paper's
// legend order.
func RenderSitePoints(title string, pts []SitePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s", "n")
	for _, s := range grid.Sites {
		fmt.Fprintf(&b, " %9s", abbrev(s)+"(h/c)")
	}
	fmt.Fprintf(&b, " %9s\n", "total(h/c)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d", p.N)
		th, tc := 0, 0
		for _, s := range grid.Sites {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("%d/%d", p.HostsBySite[s], p.CoresBySite[s]))
			th += p.HostsBySite[s]
			tc += p.CoresBySite[s]
		}
		fmt.Fprintf(&b, " %9s\n", fmt.Sprintf("%d/%d", th, tc))
	}
	return b.String()
}

func abbrev(site string) string {
	if len(site) > 3 {
		return site[:3]
	}
	return site
}

// RenderConcurrentPoints prints a concurrent-jobs sweep: one row per K,
// with per-strategy allocation footprint, completion time and
// reservation-conflict rate.
func RenderConcurrentPoints(title string, pts []ConcurrentPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %5s %5s %9s %9s %9s %10s %11s %10s\n",
		"k", "done", "fail", "sites", "hosts", "job(s)", "makespan", "rsv ok/nok", "conflicts")
	for _, p := range pts {
		fmt.Fprintf(&b, "%4d %5d %5d %9.2f %9.2f %9.3f %10.3f %5d/%-5d %9.1f%%\n",
			p.K, p.Completed, p.Failed, p.MeanSites, p.MeanHosts,
			p.MeanJobSeconds, p.MakespanSeconds, p.ReserveOK, p.ReserveNOK,
			100*p.ConflictRate)
	}
	return b.String()
}

// RenderTimePoints prints a Figure 4 data table: one row per process
// count, one column per strategy.
func RenderTimePoints(title string, pts []TimePoint) string {
	byN := map[int]map[core.Strategy]float64{}
	var ns []int
	for _, p := range pts {
		if byN[p.N] == nil {
			byN[p.N] = map[core.Strategy]float64{}
			ns = append(ns, p.N)
		}
		byN[p.N][p.Strategy] = p.Seconds
	}
	// Keep first-seen order, but ns may interleave across strategies:
	// deduplicate while preserving ascending process counts.
	seen := map[int]bool{}
	var uniq []int
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s %14s %14s\n", "n", "concentrate(s)", "spread(s)")
	for _, n := range uniq {
		fmt.Fprintf(&b, "%6d %14.3f %14.3f\n",
			n, byN[n][core.Concentrate], byN[n][core.Spread])
	}
	return b.String()
}
