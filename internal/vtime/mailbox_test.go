package vtime

import (
	"testing"
	"time"
)

func TestSchedulerMailboxFanIn(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var got []int
	s.Go("collector", func() {
		for i := 0; i < 5; i++ {
			v, ok := mb.Pop()
			if !ok {
				t.Errorf("mailbox closed early")
				return
			}
			got = append(got, v.(int))
		}
	})
	for i := 0; i < 5; i++ {
		i := i
		s.Go("worker", func() {
			s.Sleep(time.Duration(5-i) * time.Millisecond)
			mb.Push(i)
		})
	}
	s.Wait()
	if len(got) != 5 {
		t.Fatalf("collected %d", len(got))
	}
	// Workers complete in reverse sleep order: 4,3,2,1,0.
	for i, v := range got {
		if v != 4-i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSchedulerMailboxTimeout(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var err error
	s.Go("popper", func() {
		_, err = mb.PopTimeout(time.Second)
	})
	s.Wait()
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
}

func TestRealMailboxBasics(t *testing.T) {
	var r Real
	mb := r.NewMailbox()
	mb.Push(1)
	mb.Push(2)
	if mb.Len() != 2 {
		t.Fatalf("len = %d", mb.Len())
	}
	if v, ok := mb.Pop(); !ok || v.(int) != 1 {
		t.Fatalf("pop = %v %v", v, ok)
	}
	if _, err := mb.PopTimeout(0); err != nil && err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
}

func TestRealMailboxTimeout(t *testing.T) {
	var r Real
	mb := r.NewMailbox()
	start := time.Now()
	_, err := mb.PopTimeout(30 * time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned too early")
	}
}

func TestRealMailboxCrossGoroutine(t *testing.T) {
	var r Real
	mb := r.NewMailbox()
	r.Go("pusher", func() {
		time.Sleep(10 * time.Millisecond)
		mb.Push("hello")
	})
	v, err := mb.PopTimeout(5 * time.Second)
	if err != nil || v.(string) != "hello" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestRealMailboxClose(t *testing.T) {
	var r Real
	mb := r.NewMailbox()
	mb.Push(7)
	mb.Close()
	if v, ok := mb.Pop(); !ok || v.(int) != 7 {
		t.Fatal("buffered item lost on close")
	}
	if _, err := mb.PopTimeout(-1); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	mb.Push(9) // no-op after close
	if mb.Len() != 0 {
		t.Fatal("push after close buffered")
	}
}
