package vtime

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var elapsed time.Duration
	s.Go("sleeper", func() {
		s.Sleep(3 * time.Second)
		elapsed = s.Elapsed()
	})
	s.Wait()
	if elapsed != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", elapsed)
	}
}

func TestSleepOrderingAcrossActors(t *testing.T) {
	s := New()
	var order []string
	for _, tc := range []struct {
		name string
		d    time.Duration
	}{{"c", 30 * time.Millisecond}, {"a", 10 * time.Millisecond}, {"b", 20 * time.Millisecond}} {
		tc := tc
		s.Go(tc.name, func() {
			s.Sleep(tc.d)
			order = append(order, tc.name)
		})
	}
	s.Wait()
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("wake order = %v, want [a b c]", order)
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Go(fmt.Sprintf("actor%d", i), func() {
			s.Sleep(time.Second)
			order = append(order, i)
		})
	}
	s.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; equal deadlines must fire in schedule order (%v)", i, v, order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	s := New()
	var order []string
	s.Go("first", func() {
		s.Yield()
		order = append(order, "first-after-yield")
	})
	s.Go("second", func() {
		order = append(order, "second")
	})
	s.Wait()
	if fmt.Sprint(order) != "[second first-after-yield]" {
		t.Fatalf("yield did not hand off: %v", order)
	}
	if s.Elapsed() != 0 {
		t.Fatalf("Yield advanced the clock to %v", s.Elapsed())
	}
}

func TestQueuePushPop(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var got []int
	s.Go("consumer", func() {
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok {
				t.Errorf("queue closed early")
				return
			}
			got = append(got, v)
		}
	})
	s.Go("producer", func() {
		for i := 1; i <= 3; i++ {
			s.Sleep(time.Millisecond)
			q.Push(i * 10)
		}
	})
	s.Wait()
	if fmt.Sprint(got) != "[10 20 30]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	s := New()
	q := NewQueue[string](s)
	var err error
	var waited time.Duration
	s.Go("consumer", func() {
		start := s.Elapsed()
		_, err = q.PopTimeout(50 * time.Millisecond)
		waited = s.Elapsed() - start
	})
	s.Wait()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if waited != 50*time.Millisecond {
		t.Fatalf("waited %v, want exactly 50ms of virtual time", waited)
	}
}

func TestQueuePopTimeoutItemWins(t *testing.T) {
	s := New()
	q := NewQueue[string](s)
	var v string
	var err error
	s.Go("consumer", func() {
		v, err = q.PopTimeout(time.Second)
	})
	s.Go("producer", func() {
		s.Sleep(10 * time.Millisecond)
		q.Push("hello")
	})
	s.Wait()
	if err != nil || v != "hello" {
		t.Fatalf("got (%q, %v), want (hello, nil)", v, err)
	}
	if s.Elapsed() != 10*time.Millisecond {
		t.Fatalf("clock = %v, want 10ms (timeout event must not fire)", s.Elapsed())
	}
}

func TestQueueTimedOutWaiterDoesNotStealItem(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var slow, fast int
	var slowErr error
	s.Go("slow", func() {
		_, slowErr = q.PopTimeout(time.Millisecond)
		_ = slow
	})
	s.Go("fast", func() {
		s.Sleep(5 * time.Millisecond)
		v, ok := q.Pop()
		if ok {
			fast = v
		}
	})
	s.Go("producer", func() {
		s.Sleep(10 * time.Millisecond)
		q.Push(42)
	})
	s.Wait()
	if slowErr != ErrTimeout {
		t.Fatalf("slow err = %v, want timeout", slowErr)
	}
	if fast != 42 {
		t.Fatalf("fast consumer got %d, want 42", fast)
	}
}

func TestQueueClose(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var ok bool
	s.Go("consumer", func() { _, ok = q.Pop() })
	s.Go("closer", func() {
		s.Sleep(time.Millisecond)
		q.Close()
	})
	s.Wait()
	if ok {
		t.Fatal("Pop returned ok=true after Close")
	}
}

func TestQueueCloseKeepsBufferedItems(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	q.Push(1)
	q.Push(2)
	q.Close()
	var got []int
	var closedOK bool
	s.Go("drainer", func() {
		for {
			v, ok := q.Pop()
			if !ok {
				closedOK = true
				return
			}
			got = append(got, v)
		}
	})
	s.Wait()
	if fmt.Sprint(got) != "[1 2]" || !closedOK {
		t.Fatalf("drained %v (closedOK=%v)", got, closedOK)
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	var tm *Timer
	s.Go("main", func() {
		tm = s.After(time.Second, func() { fired = true })
		s.Sleep(500 * time.Millisecond)
		if !tm.Stop() {
			t.Errorf("Stop returned false before expiry")
		}
		s.Sleep(time.Second)
	})
	s.Wait()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestTimerFires(t *testing.T) {
	s := New()
	var firedAt time.Duration
	s.Go("main", func() {
		s.After(time.Second, func() { firedAt = s.Elapsed() })
		s.Sleep(2 * time.Second)
	})
	s.Wait()
	if firedAt != time.Second {
		t.Fatalf("fired at %v, want 1s", firedAt)
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	ticks := 0
	s.Go("ticker", func() {
		for i := 0; i < 1000; i++ {
			s.Sleep(time.Second)
			ticks++
		}
	})
	advanced := s.RunFor(10*time.Second + time.Millisecond)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if advanced < 10*time.Second {
		t.Fatalf("advanced %v, want >= 10s", advanced)
	}
	s.Shutdown()
}

func TestShutdownUnwindsParkedActors(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var cleaned atomic.Int32
	for i := 0; i < 5; i++ {
		s.Go("blocked", func() {
			defer cleaned.Add(1)
			q.Pop() // parks forever
		})
	}
	s.Wait()
	s.Shutdown()
	deadline := time.Now().Add(2 * time.Second)
	for cleaned.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cleaned.Load() != 5 {
		t.Fatalf("only %d/5 actors unwound after Shutdown", cleaned.Load())
	}
}

func TestNestedGo(t *testing.T) {
	s := New()
	total := 0
	s.Go("parent", func() {
		for i := 0; i < 3; i++ {
			s.Go("child", func() {
				s.Sleep(time.Millisecond)
				total++
			})
		}
		s.Sleep(time.Second)
	})
	s.Wait()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() string {
		s := New()
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			s.Go(fmt.Sprintf("a%d", i), func() {
				for j := 0; j < 5; j++ {
					s.Sleep(time.Duration(i+1) * time.Millisecond)
					log = append(log, fmt.Sprintf("%d.%d", i, j))
				}
			})
		}
		s.Wait()
		return fmt.Sprint(log)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestWaitIdleWithParkedDaemons(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	s.Go("daemon", func() {
		for {
			if _, ok := q.Pop(); !ok {
				return
			}
		}
	})
	s.Go("client", func() {
		q.Push(1)
		s.Sleep(time.Millisecond)
	})
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return with a parked daemon")
	}
	s.Shutdown()
}

func TestElapsedZeroAtStart(t *testing.T) {
	s := New()
	if s.Elapsed() != 0 {
		t.Fatalf("fresh scheduler Elapsed = %v", s.Elapsed())
	}
	if s.PendingEvents() != 0 || s.Actors() != 0 {
		t.Fatal("fresh scheduler not empty")
	}
}

func TestRealRuntimeSmoke(t *testing.T) {
	var r Real
	t0 := r.Now()
	r.Sleep(time.Millisecond)
	if r.Now().Sub(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	done := make(chan struct{})
	r.Go("x", func() { close(done) })
	<-done
}
