package vtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStopped is the panic value used to unwind parked actors when the
// scheduler shuts down. Actor functions are unwound transparently; user
// code never observes it unless it installs its own recover.
var ErrStopped = errors.New("vtime: scheduler stopped")

// Runtime is the minimal execution environment the middleware is written
// against. The Scheduler implements it in virtual time; Real implements it
// on the wall clock, so the very same daemon code runs in both worlds.
type Runtime interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling actor (or goroutine) for d.
	Sleep(d time.Duration)
	// Go starts fn as a new actor (or goroutine). The name is used in
	// diagnostics only.
	Go(name string, fn func())
	// Schedule runs fn once at now+d without dedicating a goroutine to
	// the wait. fn runs outside any actor context and must not block;
	// daemons use it for timer chains (spawn the real work with Go) so
	// an idle daemon holds no parked goroutine per periodic loop.
	Schedule(d time.Duration, fn func())
	// NewMailbox creates a runtime-portable FIFO for blocking hand-offs.
	NewMailbox() Mailbox
}

// actor is the scheduler-side handle for one registered goroutine.
type actor struct {
	name   string
	ch     chan struct{} // wake token, buffered 1
	stop   bool          // set under s.mu by Shutdown
	parked bool          // blocked in park, waiting for a wake
	idx    int           // position in s.all, for O(1) removal
}

// Scheduler is a sequential discrete-event executor.
//
// The hot path is run-to-completion: pure timer events (Sleep expiries,
// queue timeouts) fire inline on the dispatch loop under one lock
// acquisition, and when the next runnable actor is the very goroutine
// driving the dispatch, the hand-off resolves without touching its wake
// channel. A Sleep tick therefore costs one mutex cycle and zero
// allocations; goroutine parking is paid only when control genuinely
// moves between actors.
//
// The zero value is not usable; call New.
type Scheduler struct {
	mu       sync.Mutex
	idleCond *sync.Cond // broadcast when the scheduler goes idle

	epoch    time.Time     // virtual time zero
	now      time.Duration // virtual time since epoch; written under mu
	nowNanos atomic.Int64  // lock-free mirror of now for Now/Elapsed

	// Event storage: a slab of event slots addressed by the 4-ary heap,
	// recycled through a free list so steady-state scheduling does not
	// allocate. See eventq.go.
	slab []event
	free []int32
	heap []int32
	seq  uint64

	runq      []*actor // runnable, not yet executing; ring via rqHead
	rqHead    int
	cur       *actor   // the single executing actor, nil if none
	executing bool     // true while cur runs or an event fires
	all       []*actor // every live actor (parked ones carry a.parked)

	idle    bool
	stopped bool

	limited bool          // when set, events beyond limit do not fire
	limit   time.Duration // virtual-time fence used by RunFor
}

// New returns a scheduler whose virtual clock starts at a fixed epoch
// (2008-04-14 00:00:00 UTC, the week of IPDPS 2008) so that timestamps in
// traces are stable across runs.
func New() *Scheduler {
	a := arenaPool.Get().(*arena)
	s := &Scheduler{
		epoch: time.Date(2008, 4, 14, 0, 0, 0, 0, time.UTC),
		slab:  a.slab[:0],
		free:  a.free[:0],
		heap:  a.heap[:0],
	}
	*a = arena{}
	arenaPool.Put(a)
	s.idleCond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time. It is lock-free: daemon code
// timestamps constantly, and a reader needs only a consistent snapshot
// of the clock, never the event queue.
func (s *Scheduler) Now() time.Time {
	return s.epoch.Add(time.Duration(s.nowNanos.Load()))
}

// Elapsed returns the virtual time elapsed since the epoch. Lock-free.
func (s *Scheduler) Elapsed() time.Duration {
	return time.Duration(s.nowNanos.Load())
}

// setNowLocked advances the clock and its lock-free mirror.
func (s *Scheduler) setNowLocked(t time.Duration) {
	s.now = t
	s.nowNanos.Store(int64(t))
}

// Go registers fn as a new actor and makes it runnable. It may be called
// from outside the scheduler (before Wait) or from inside a running actor.
func (s *Scheduler) Go(name string, fn func()) {
	a := &actor{name: name, ch: make(chan struct{}, 1)}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	a.idx = len(s.all)
	s.all = append(s.all, a)
	s.idle = false
	s.runq = append(s.runq, a)
	s.mu.Unlock()

	go func() {
		<-a.ch // wait for the token
		if a.stop {
			s.actorExit(a, nil)
			return
		}
		defer func() {
			r := recover()
			if r == ErrStopped { // clean shutdown unwind
				r = nil
			}
			s.actorExit(a, r)
		}()
		fn()
	}()
}

// removeActorLocked drops a from the live set (swap-remove).
func (s *Scheduler) removeActorLocked(a *actor) {
	last := len(s.all) - 1
	if a.idx <= last {
		moved := s.all[last]
		s.all[a.idx] = moved
		moved.idx = a.idx
		s.all[last] = nil
		s.all = s.all[:last]
	}
}

// actorExit releases the token when an actor's function returns. A non-nil
// recovered panic value is re-raised on the caller of Wait via a stored
// fault so bugs are not swallowed.
func (s *Scheduler) actorExit(a *actor, fault any) {
	s.mu.Lock()
	s.removeActorLocked(a)
	s.cur = nil
	s.executing = false
	if fault != nil {
		// Surface actor panics loudly: stop the world and re-panic here so
		// the test binary fails with the actor's stack in view.
		s.mu.Unlock()
		panic(fmt.Sprintf("vtime: actor %q panicked: %v", a.name, fault))
	}
	s.dispatchLocked(nil)
	s.mu.Unlock()
}

// Sleep parks the calling actor for d of virtual time. d <= 0 yields the
// token (other runnable actors execute first) without advancing the clock.
func (s *Scheduler) Sleep(d time.Duration) {
	s.mu.Lock()
	a := s.cur
	if a == nil {
		s.mu.Unlock()
		panic("vtime: Sleep called from a non-actor goroutine")
	}
	if d < 0 {
		d = 0
	}
	id := s.newEventLocked(d)
	ev := &s.slab[id]
	ev.kind = evWake
	ev.actor = a
	s.heapPush(id)
	s.parkLocked(a)
	s.mu.Unlock()
}

// Yield lets other runnable actors execute before the caller continues.
func (s *Scheduler) Yield() { s.Sleep(0) }

// After schedules fn to run at now+d as an event callback. fn runs outside
// any actor context and must not block. The returned Timer can cancel it.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 {
		d = 0
	}
	id := s.scheduleFuncLocked(d, fn)
	return &Timer{s: s, id: id, gen: s.slab[id].gen}
}

// Schedule is After without the cancel handle: the allocation-free form
// used on per-message paths (the simulator schedules one delivery event
// per message in flight and never cancels them).
func (s *Scheduler) Schedule(d time.Duration, fn func()) {
	s.mu.Lock()
	if d < 0 {
		d = 0
	}
	s.scheduleFuncLocked(d, fn)
	s.mu.Unlock()
}

// ScheduleArg schedules fn(arg) at now+d. Unlike Schedule with a
// capturing closure, a package-level fn plus a pointer-typed arg costs
// no allocation at all — this is the form the simulator's per-message
// delivery events use. fn runs outside any actor context, with the
// scheduler lock released, and must not block.
func (s *Scheduler) ScheduleArg(d time.Duration, fn func(any), arg any) {
	s.mu.Lock()
	if d < 0 {
		d = 0
	}
	id := s.newEventLocked(d)
	ev := &s.slab[id]
	ev.kind = evFuncArg
	ev.fnArg = fn
	ev.arg = arg
	s.heapPush(id)
	s.mu.Unlock()
}

func (s *Scheduler) scheduleFuncLocked(d time.Duration, fn func()) int32 {
	id := s.newEventLocked(d)
	ev := &s.slab[id]
	ev.kind = evFunc
	ev.fn = fn
	s.heapPush(id)
	return id
}

// Timer is a cancelable scheduled callback.
type Timer struct {
	s   *Scheduler
	id  int32
	gen uint32
}

// Stop cancels the timer. It reports whether the callback had not yet run.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if int(t.id) >= len(t.s.slab) {
		return false // slab donated by Shutdown; nothing left to cancel
	}
	ev := &t.s.slab[t.id]
	if ev.gen != t.gen || ev.canceled {
		return false
	}
	ev.canceled = true
	return true
}

// parkLocked blocks the current actor until some event or other actor
// wakes it. Caller holds s.mu; the lock is held again when parkLocked
// returns. When the dispatch loop selects the parking actor itself as
// the next runner, the hand-off resolves inline — no channel round-trip,
// no goroutine switch. Panics with ErrStopped on shutdown.
func (s *Scheduler) parkLocked(a *actor) {
	if s.stopped {
		s.mu.Unlock()
		panic(ErrStopped)
	}
	a.parked = true
	s.cur = nil
	s.executing = false
	if s.dispatchLocked(a) {
		return // resumed inline: cur == a, executing == true
	}
	s.mu.Unlock()
	<-a.ch
	s.mu.Lock()
	if a.stop {
		s.mu.Unlock()
		panic(ErrStopped)
	}
}

// WakeLocked makes a parked actor runnable. It is exported for use by
// scheduler-integrated primitives in this package; callers must hold no
// scheduler-visible locks of their own.
func (s *Scheduler) WakeLocked(a *actor) {
	if a.parked {
		a.parked = false
		s.runq = append(s.runq, a)
	}
}

// popRunqLocked removes and returns the head of the run queue.
func (s *Scheduler) popRunqLocked() *actor {
	a := s.runq[s.rqHead]
	s.runq[s.rqHead] = nil
	s.rqHead++
	if s.rqHead == len(s.runq) {
		s.runq = s.runq[:0]
		s.rqHead = 0
	}
	return a
}

// dispatchLocked hands the execution token to the next runnable actor, or
// advances the clock by firing events until an actor becomes runnable. If
// neither is possible the scheduler goes idle. Caller holds s.mu.
//
// Internal events (actor wakes, queue-waiter expiries) run to completion
// right here, under the lock — they only mutate scheduler state, so a
// run of pure timer events costs one lock acquisition total. User
// callbacks (After/Schedule) run with the lock released, exactly as
// before, so they can re-enter public APIs; no actor executes meanwhile,
// which keeps callbacks serialized with all actor code.
//
// It returns true when the selected next runner is self (the actor whose
// goroutine is driving this dispatch, parked moments ago): the caller
// resumes inline instead of bouncing a token through its wake channel.
func (s *Scheduler) dispatchLocked(self *actor) bool {
	if s.executing {
		return false
	}
	for {
		if s.rqHead < len(s.runq) {
			a := s.popRunqLocked()
			s.cur = a
			s.executing = true
			if a == self {
				return true
			}
			a.ch <- struct{}{}
			return false
		}
		if s.stopped || len(s.heap) == 0 ||
			(s.limited && s.slab[s.heap[0]].at > s.limit) {
			s.idle = true
			s.idleCond.Broadcast()
			return false
		}
		id := s.heapPop()
		ev := &s.slab[id]
		if ev.canceled {
			s.freeEventLocked(id)
			continue
		}
		if ev.at > s.now {
			s.setNowLocked(ev.at)
		}
		switch ev.kind {
		case evWake:
			a := ev.actor
			s.freeEventLocked(id)
			s.WakeLocked(a)
		case evAbandon:
			w := ev.w
			s.freeEventLocked(id)
			if !w.got && !w.gone {
				w.gone = true
				s.WakeLocked(w.a)
			}
		case evFuncArg:
			fn, arg := ev.fnArg, ev.arg
			s.freeEventLocked(id)
			s.executing = true
			s.mu.Unlock()
			fn(arg)
			s.mu.Lock()
			s.executing = false
		default:
			// Run the callback without the lock so it can use public APIs
			// (Queue.Push, After, Schedule). No actor executes meanwhile,
			// so the callback is still serialized with all actor code.
			fn := ev.fn
			s.freeEventLocked(id)
			s.executing = true
			s.mu.Unlock()
			fn()
			s.mu.Lock()
			s.executing = false
		}
	}
}

// Wait blocks the (external, non-actor) caller until the scheduler is
// idle: no runnable actor and no pending event. Parked actors may remain;
// use Shutdown to unwind them.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	if !s.executing {
		s.idle = false
		s.dispatchLocked(nil)
	}
	for !s.idle {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
}

// RunFor drives the simulation for d of virtual time (or until it runs
// out of events first) and returns the amount of virtual time advanced.
// Events scheduled beyond the fence stay pending for the next RunFor or
// Wait. It must be called from outside the scheduler.
func (s *Scheduler) RunFor(d time.Duration) time.Duration {
	s.mu.Lock()
	start := s.now
	s.limit = s.now + d
	s.limited = true
	s.mu.Unlock()

	s.Wait()

	s.mu.Lock()
	s.limited = false
	if s.now < start+d {
		// Ran out of events early: jump the clock to the fence so that
		// consecutive RunFor calls tile the timeline predictably.
		s.setNowLocked(start + d)
	}
	advanced := s.now - start
	s.mu.Unlock()
	return advanced
}

// NextEventAt reports the virtual timestamp of the earliest pending
// work: the head of the event heap (skipping canceled slots lazily), or
// the current clock when an actor is runnable but not yet executing. ok
// is false when the scheduler has nothing left to do. It is meant to be
// called from outside the scheduler while it is idle — the Domain uses
// it between windows to size the next one.
func (s *Scheduler) NextEventAt() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rqHead < len(s.runq) {
		return s.now, true
	}
	for len(s.heap) > 0 {
		top := s.heap[0]
		if !s.slab[top].canceled {
			return s.slab[top].at, true
		}
		s.heapPop()
		s.freeEventLocked(top)
	}
	return 0, false
}

// RunUntil drives the simulation until the virtual clock reaches the
// absolute elapsed time t: every event stamped at or before t fires, and
// the clock lands exactly on t even if the event queue drains early.
// This is RunFor with an absolute fence; Domain shard workers use it to
// advance all shards to a common horizon. Must be called from outside
// the scheduler.
func (s *Scheduler) RunUntil(t time.Duration) {
	s.mu.Lock()
	if t < s.now {
		t = s.now
	}
	s.limit = t
	s.limited = true
	s.mu.Unlock()

	s.Wait()

	s.mu.Lock()
	s.limited = false
	if s.now < t && !s.stopped {
		s.setNowLocked(t)
	}
	s.mu.Unlock()
}

// AdvanceTo jumps the clock forward to t without firing anything. The
// caller must know that no pending event is stamped before t; the Domain
// uses it to line idle shards up on a barrier time.
func (s *Scheduler) AdvanceTo(t time.Duration) {
	s.mu.Lock()
	if t > s.now {
		s.setNowLocked(t)
	}
	s.mu.Unlock()
}

// Shutdown stops the scheduler: pending events are dropped and every
// parked or queued actor is unwound with ErrStopped. Idempotent.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	for _, id := range s.heap {
		s.freeEventLocked(id)
	}
	// Donate the (fully freed and cleared) event storage for the next
	// scheduler; late API calls on this one see empty slices and still
	// behave (events on a stopped scheduler never fire anyway).
	arenaPool.Put(&arena{slab: s.slab, free: s.free, heap: s.heap[:0]})
	s.slab = nil
	s.free = nil
	s.heap = nil
	// Unwind runnable-but-not-started actors and parked actors.
	for i := s.rqHead; i < len(s.runq); i++ {
		a := s.runq[i]
		s.runq[i] = nil
		a.stop = true
		a.ch <- struct{}{}
	}
	s.runq = s.runq[:0]
	s.rqHead = 0
	for _, a := range s.all {
		if a.parked {
			a.parked = false
			a.stop = true
			a.ch <- struct{}{}
		}
	}
	s.idle = true
	s.idleCond.Broadcast()
	s.mu.Unlock()
}

// Actors returns the number of live actors (for tests and diagnostics).
func (s *Scheduler) Actors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.all)
}

// PendingEvents returns the number of scheduled, uncanceled events.
func (s *Scheduler) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range s.heap {
		if !s.slab[id].canceled {
			n++
		}
	}
	return n
}

// curActorLocked returns the executing actor, panicking when called from
// outside an actor. Caller holds s.mu.
func (s *Scheduler) curActorLocked(op string) *actor {
	if s.cur == nil {
		s.mu.Unlock()
		panic("vtime: " + op + " called from a non-actor goroutine")
	}
	return s.cur
}
