package vtime

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStopped is the panic value used to unwind parked actors when the
// scheduler shuts down. Actor functions are unwound transparently; user
// code never observes it unless it installs its own recover.
var ErrStopped = errors.New("vtime: scheduler stopped")

// Runtime is the minimal execution environment the middleware is written
// against. The Scheduler implements it in virtual time; Real implements it
// on the wall clock, so the very same daemon code runs in both worlds.
type Runtime interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling actor (or goroutine) for d.
	Sleep(d time.Duration)
	// Go starts fn as a new actor (or goroutine). The name is used in
	// diagnostics only.
	Go(name string, fn func())
	// NewMailbox creates a runtime-portable FIFO for blocking hand-offs.
	NewMailbox() Mailbox
}

// actor is the scheduler-side handle for one registered goroutine.
type actor struct {
	name string
	ch   chan struct{} // wake token, buffered 1
	stop bool          // set under s.mu by Shutdown
}

// event is a scheduled callback on the virtual timeline.
type event struct {
	at       time.Duration
	seq      uint64 // FIFO tie-break for equal timestamps
	fn       func() // runs with s.mu NOT held; must not block
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a sequential discrete-event executor.
//
// The zero value is not usable; call New.
type Scheduler struct {
	mu       sync.Mutex
	idleCond *sync.Cond // broadcast when the scheduler goes idle

	epoch time.Time     // virtual time zero
	now   time.Duration // virtual time since epoch

	events eventHeap
	seq    uint64

	runq      []*actor            // runnable, not yet executing
	cur       *actor              // the single executing actor, nil if none
	executing bool                // true while cur runs or an event fires
	parked    map[*actor]struct{} // actors blocked in park
	actors    int                 // live actors

	idle    bool
	stopped bool

	limited bool          // when set, events beyond limit do not fire
	limit   time.Duration // virtual-time fence used by RunFor
}

// New returns a scheduler whose virtual clock starts at a fixed epoch
// (2008-04-14 00:00:00 UTC, the week of IPDPS 2008) so that timestamps in
// traces are stable across runs.
func New() *Scheduler {
	s := &Scheduler{
		epoch:  time.Date(2008, 4, 14, 0, 0, 0, 0, time.UTC),
		parked: make(map[*actor]struct{}),
	}
	s.idleCond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch.Add(s.now)
}

// Elapsed returns the virtual time elapsed since the epoch.
func (s *Scheduler) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go registers fn as a new actor and makes it runnable. It may be called
// from outside the scheduler (before Wait) or from inside a running actor.
func (s *Scheduler) Go(name string, fn func()) {
	a := &actor{name: name, ch: make(chan struct{}, 1)}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.actors++
	s.idle = false
	s.runq = append(s.runq, a)
	s.mu.Unlock()

	go func() {
		<-a.ch // wait for the token
		if a.stop {
			s.actorExit(a, nil)
			return
		}
		defer func() {
			r := recover()
			if r == ErrStopped { // clean shutdown unwind
				r = nil
			}
			s.actorExit(a, r)
		}()
		fn()
	}()
}

// actorExit releases the token when an actor's function returns. A non-nil
// recovered panic value is re-raised on the caller of Wait via a stored
// fault so bugs are not swallowed.
func (s *Scheduler) actorExit(a *actor, fault any) {
	s.mu.Lock()
	s.actors--
	s.cur = nil
	s.executing = false
	if fault != nil {
		// Surface actor panics loudly: stop the world and re-panic here so
		// the test binary fails with the actor's stack in view.
		s.mu.Unlock()
		panic(fmt.Sprintf("vtime: actor %q panicked: %v", a.name, fault))
	}
	s.dispatchLocked()
	s.mu.Unlock()
}

// Sleep parks the calling actor for d of virtual time. d <= 0 yields the
// token (other runnable actors execute first) without advancing the clock.
func (s *Scheduler) Sleep(d time.Duration) {
	s.mu.Lock()
	a := s.cur
	if a == nil {
		s.mu.Unlock()
		panic("vtime: Sleep called from a non-actor goroutine")
	}
	if d < 0 {
		d = 0
	}
	s.scheduleLocked(d, func() { s.WakeLocked(a) })
	s.parkLocked(a)
	s.mu.Unlock()
}

// Yield lets other runnable actors execute before the caller continues.
func (s *Scheduler) Yield() { s.Sleep(0) }

// After schedules fn to run at now+d as an event callback. fn runs outside
// any actor context and must not block. The returned Timer can cancel it.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 {
		d = 0
	}
	ev := s.scheduleLocked(d, fn)
	return &Timer{s: s, ev: ev}
}

// Timer is a cancelable scheduled callback.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Stop cancels the timer. It reports whether the callback had not yet run.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// scheduleLocked inserts an event at now+d. Caller holds s.mu.
func (s *Scheduler) scheduleLocked(d time.Duration, fn func()) *event {
	s.seq++
	ev := &event{at: s.now + d, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return ev
}

// parkLocked blocks the current actor until some event or other actor
// wakes it with WakeLocked. Caller holds s.mu; it is released while parked
// and re-acquired before returning. Panics with ErrStopped on shutdown.
func (s *Scheduler) parkLocked(a *actor) {
	s.parked[a] = struct{}{}
	s.cur = nil
	s.executing = false
	s.dispatchLocked()
	s.mu.Unlock()
	<-a.ch
	s.mu.Lock()
	if a.stop {
		s.mu.Unlock()
		panic(ErrStopped)
	}
}

// WakeLocked makes a parked actor runnable. It is exported for use by
// scheduler-integrated primitives in this package and by simnet; callers
// must hold no scheduler-visible locks of their own (the scheduler mutex
// is taken internally when called via Wake).
func (s *Scheduler) WakeLocked(a *actor) {
	if _, ok := s.parked[a]; ok {
		delete(s.parked, a)
		s.runq = append(s.runq, a)
	}
}

// dispatchLocked hands the execution token to the next runnable actor, or
// advances the clock by firing events until an actor becomes runnable. If
// neither is possible the scheduler goes idle. Caller holds s.mu.
func (s *Scheduler) dispatchLocked() {
	if s.executing {
		return
	}
	for {
		if len(s.runq) > 0 {
			a := s.runq[0]
			copy(s.runq, s.runq[1:])
			s.runq = s.runq[:len(s.runq)-1]
			s.cur = a
			s.executing = true
			a.ch <- struct{}{}
			return
		}
		if s.stopped || len(s.events) == 0 ||
			(s.limited && s.events[0].at > s.limit) {
			s.idle = true
			s.idleCond.Broadcast()
			return
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		// Run the callback without the lock so it can use public APIs
		// (Queue.Push, Wake, After). No actor executes meanwhile, so the
		// callback is still serialized with all actor code.
		s.executing = true
		s.mu.Unlock()
		ev.fn()
		s.mu.Lock()
		s.executing = false
	}
}

// Wait blocks the (external, non-actor) caller until the scheduler is
// idle: no runnable actor and no pending event. Parked actors may remain;
// use Shutdown to unwind them.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	if !s.executing {
		s.idle = false
		s.dispatchLocked()
	}
	for !s.idle {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
}

// RunFor drives the simulation for d of virtual time (or until it runs
// out of events first) and returns the amount of virtual time advanced.
// Events scheduled beyond the fence stay pending for the next RunFor or
// Wait. It must be called from outside the scheduler.
func (s *Scheduler) RunFor(d time.Duration) time.Duration {
	s.mu.Lock()
	start := s.now
	s.limit = s.now + d
	s.limited = true
	s.mu.Unlock()

	s.Wait()

	s.mu.Lock()
	s.limited = false
	if s.now < start+d {
		// Ran out of events early: jump the clock to the fence so that
		// consecutive RunFor calls tile the timeline predictably.
		s.now = start + d
	}
	advanced := s.now - start
	s.mu.Unlock()
	return advanced
}

// Shutdown stops the scheduler: pending events are dropped and every
// parked or queued actor is unwound with ErrStopped. Idempotent.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.events = nil
	// Unwind runnable-but-not-started actors and parked actors.
	for _, a := range s.runq {
		a.stop = true
		a.ch <- struct{}{}
	}
	s.runq = nil
	for a := range s.parked {
		a.stop = true
		delete(s.parked, a)
		a.ch <- struct{}{}
	}
	s.idle = true
	s.idleCond.Broadcast()
	s.mu.Unlock()
}

// Actors returns the number of live actors (for tests and diagnostics).
func (s *Scheduler) Actors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.actors
}

// PendingEvents returns the number of scheduled, uncanceled events.
func (s *Scheduler) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// cur returns the executing actor, panicking when called from outside an
// actor. Caller holds s.mu.
func (s *Scheduler) curActorLocked(op string) *actor {
	if s.cur == nil {
		s.mu.Unlock()
		panic("vtime: " + op + " called from a non-actor goroutine")
	}
	return s.cur
}
