package vtime

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestEventThroughputGate is the benchstat-style CI smoke: it re-times
// the BenchmarkEventThroughput body via testing.Benchmark and fails if
// the result regressed more than 2x against the committed baseline
// (perf/BASELINE.json, pointed to by PERF_GATE_BASELINE). The 2x bar is
// deliberately loose — it absorbs runner-hardware variance while still
// catching the class of regression that matters here: accidentally
// reintroducing a goroutine hand-off, allocation or lock round-trip on
// the per-event path, all of which cost integer multiples.
func TestEventThroughputGate(t *testing.T) {
	path := os.Getenv("PERF_GATE_BASELINE")
	if path == "" {
		t.Skip("PERF_GATE_BASELINE not set (CI sets it to perf/BASELINE.json)")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		EventNs float64 `json:"event_throughput_ns_per_op"`
	}
	if err := json.Unmarshal(blob, &base); err != nil {
		t.Fatal(err)
	}
	if base.EventNs <= 0 {
		t.Fatalf("baseline %s has no event_throughput_ns_per_op", path)
	}

	r := testing.Benchmark(func(b *testing.B) {
		s := New()
		defer s.Shutdown()
		s.Go("ticker", func() {
			for i := 0; i < b.N; i++ {
				s.Sleep(time.Millisecond)
			}
		})
		b.ResetTimer()
		s.Wait()
	})
	got := float64(r.T.Nanoseconds()) / float64(r.N)
	limit := 2 * base.EventNs
	t.Logf("event throughput: %.1f ns/op (baseline %.1f, limit %.1f)", got, base.EventNs, limit)
	if got > limit {
		t.Fatalf("event throughput regressed: %.1f ns/op > 2x baseline %.1f ns/op", got, base.EventNs)
	}
}
