package vtime

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Domain couples N shard schedulers into one conservatively synchronized
// virtual timeline. Each shard is an ordinary run-to-completion
// Scheduler (pooled slab, 4-ary heap — the whole sequential fast path is
// untouched inside a shard); the Domain advances them in lock-step
// windows:
//
//	W = committed horizon (all shard clocks equal W between windows)
//	H = min(earliest pending event across shards + lookahead,
//	        next global event, caller fence)
//
// Every shard runs to H concurrently, then a barrier fires: registered
// drain callbacks (the simulated network's cross-shard merge) run on the
// driver goroutine, global events stamped at or before H fire, and the
// next window begins. The lookahead is the minimum cross-shard delivery
// latency, so anything sent during a window arrives at or after H and
// can be enqueued at the barrier without ever landing in a shard's past
// — the classic null-message-free windowed conservative protocol.
//
// The Domain itself is sequential at the barriers: callbacks and global
// events run with every shard parked, so they may touch any shard's
// state without locks.
type Domain struct {
	shards    []*Scheduler
	lookahead time.Duration

	now time.Duration // committed horizon

	barriers []func() // drain callbacks, run in registration order

	gmu     sync.Mutex // guards globals; ScheduleGlobal may be called from barrier code
	globals []globalEvent
	gsorted bool
	gseq    uint64

	workers []shardWorker
	// nexts caches each shard's pending next-event time (-1 when idle)
	// from the horizon scan in step, so runWindow can tell busy shards
	// from idle ones without re-locking every scheduler.
	nexts []time.Duration
	// pending counts the busy shards still running the current window;
	// the last one to park sends the single completion token on done.
	pending atomic.Int32
	done    chan struct{}
	// spin is each worker's wake-spin budget before it parks on its
	// channel. Zero on a single-proc runtime, where spinning only steals
	// cycles from the goroutine being waited on.
	spin    int
	windows uint64 // number of windows run (diagnostics)
	skipped uint64 // windows resolved without waking any worker
	stopped bool
}

type globalEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// Worker wake states (shardWorker.flag). The barrier is sense-free on
// the worker side: the driver arms a worker by swapping the flag to
// armed (publishing the horizon beforehand), and only pays a channel
// send when the worker had already declared itself parked.
const (
	wIdle   = 0 // between windows, spinning or about to park
	wArmed  = 1 // horizon published, run the window
	wParked = 2 // blocked on park, driver must send a token
	wQuit   = 3 // shut down
)

type shardWorker struct {
	s       *Scheduler
	horizon time.Duration // plain write by the driver, released by flag
	flag    atomic.Uint32
	park    chan struct{} // cap 1; wake token when armed while parked
	_       [4]uint64     // keep neighbouring workers off one cache line
}

// arm publishes the horizon and wakes the worker. Steady state (worker
// still spinning from the last window, or multicore) this is one atomic
// swap; the channel send happens only after the worker really parked.
func (w *shardWorker) arm(h time.Duration) {
	w.horizon = h
	if w.flag.Swap(wArmed) == wParked {
		w.park <- struct{}{}
	}
}

// awaitArm blocks until the driver arms the worker, spinning for the
// configured budget first. Reports false on shutdown.
func (w *shardWorker) awaitArm(spin int) bool {
	for spins := 0; ; {
		switch w.flag.Load() {
		case wArmed:
			w.flag.Store(wIdle)
			return true
		case wQuit:
			return false
		}
		if spins < spin {
			spins++
			runtime.Gosched()
			continue
		}
		if w.flag.CompareAndSwap(wIdle, wParked) {
			<-w.park
		}
	}
}

// NewDomain returns a domain of n fresh shard schedulers sharing one
// epoch. lookahead must be positive when n > 1: it is the minimum
// virtual latency of any cross-shard delivery, and the window protocol
// is only conservative (deadlock- and causality-safe) if that bound
// holds. A single-shard domain degenerates to the sequential scheduler
// with zero barriers in play.
func NewDomain(n int, lookahead time.Duration) *Domain {
	if n < 1 {
		panic("vtime: NewDomain needs at least one shard")
	}
	if n > 1 && lookahead <= 0 {
		panic("vtime: multi-shard domain needs positive lookahead")
	}
	d := &Domain{shards: make([]*Scheduler, n), lookahead: lookahead}
	for i := range d.shards {
		d.shards[i] = New()
	}
	d.nexts = make([]time.Duration, n)
	if n > 1 {
		// Persistent window workers: one goroutine per shard, woken
		// through a sense-reversing atomic flag. Windows are short (one
		// lookahead wide), so the wake path matters: armed-while-spinning
		// costs one atomic swap, and the driver waits on a single
		// completion token from the last finisher instead of a channel
		// round trip per shard per window.
		d.done = make(chan struct{}, 1)
		if runtime.GOMAXPROCS(0) > 1 {
			d.spin = 128
		}
		d.workers = make([]shardWorker, n)
		for i := range d.workers {
			w := &d.workers[i]
			w.s = d.shards[i]
			w.park = make(chan struct{}, 1)
			go d.workerLoop(w)
		}
	}
	return d
}

// workerLoop runs one shard's windows until shutdown.
func (d *Domain) workerLoop(w *shardWorker) {
	for w.awaitArm(d.spin) {
		w.s.RunUntil(w.horizon)
		if d.pending.Add(-1) == 0 {
			d.done <- struct{}{}
		}
	}
}

// Shards returns the number of shards.
func (d *Domain) Shards() int { return len(d.shards) }

// Shard returns shard i's scheduler. Actors and events on it must only
// touch that shard's state while a window is running; barrier code may
// touch anything.
func (d *Domain) Shard(i int) *Scheduler { return d.shards[i] }

// Lookahead returns the window width bound the domain was built with.
func (d *Domain) Lookahead() time.Duration { return d.lookahead }

// Now returns the committed horizon as wall time (all shard clocks agree
// with it between windows).
func (d *Domain) Now() time.Time { return d.shards[0].Now() }

// Elapsed returns the committed horizon.
func (d *Domain) Elapsed() time.Duration { return d.shards[0].Elapsed() }

// Windows returns the number of synchronization windows run so far.
func (d *Domain) Windows() uint64 { return d.windows }

// SkippedWindows returns how many of those windows were resolved
// without waking any worker goroutine (zero or one shard had events
// inside the horizon, so the driver ran the window inline).
func (d *Domain) SkippedWindows() uint64 { return d.skipped }

// OnBarrier registers fn to run at every barrier, after all shards have
// parked at the window horizon and before global events fire. The
// simulated network registers its cross-shard merge here. Callbacks run
// on the driver goroutine, serialized with all shard execution.
func (d *Domain) OnBarrier(fn func()) { d.barriers = append(d.barriers, fn) }

// ScheduleGlobal arranges for fn to run at virtual elapsed time at, on
// the driver goroutine, with every shard parked exactly at that time.
// This is how world-scoped mutations (churn failing a host, membership
// edits) are applied race-free in a sharded world: the barrier is a
// happens-before edge to every shard, so plain writes to shard state
// made inside fn are visible to all subsequent windows. Events stamped
// in the past fire at the next barrier.
func (d *Domain) ScheduleGlobal(at time.Duration, fn func()) {
	d.gmu.Lock()
	d.gseq++
	d.globals = append(d.globals, globalEvent{at: at, seq: d.gseq, fn: fn})
	d.gsorted = false
	d.gmu.Unlock()
}

// nextGlobalAt peeks the earliest pending global event time.
func (d *Domain) nextGlobalAt() (time.Duration, bool) {
	d.gmu.Lock()
	defer d.gmu.Unlock()
	if len(d.globals) == 0 {
		return 0, false
	}
	d.sortGlobalsLocked()
	return d.globals[0].at, true
}

func (d *Domain) sortGlobalsLocked() {
	if !d.gsorted {
		sort.Slice(d.globals, func(i, j int) bool {
			a, b := d.globals[i], d.globals[j]
			if a.at != b.at {
				return a.at < b.at
			}
			return a.seq < b.seq
		})
		d.gsorted = true
	}
}

// fireGlobals runs every global event stamped at or before h, in
// (at, seq) order. Shards are parked at h when this is called.
func (d *Domain) fireGlobals(h time.Duration) {
	for {
		d.gmu.Lock()
		d.sortGlobalsLocked()
		if len(d.globals) == 0 || d.globals[0].at > h {
			d.gmu.Unlock()
			return
		}
		ev := d.globals[0]
		d.globals = d.globals[1:]
		d.gmu.Unlock()
		ev.fn()
	}
}

// runWindow advances every shard to horizon h and waits for all of them
// to park there. Only shards with an event stamped at or before h (per
// the d.nexts scan step just did) can fire anything — the rest get
// their clocks bumped inline with AdvanceTo, skipping the goroutine
// handoff entirely. A window with exactly one busy shard runs it on the
// driver goroutine (the common case for sparse phases, and the whole
// window path for skewed worlds), so the barrier machinery engages only
// when there is real concurrency to win.
func (d *Domain) runWindow(h time.Duration) {
	d.windows++
	if d.workers == nil {
		d.shards[0].RunUntil(h)
		return
	}
	active, last := 0, -1
	for i := range d.shards {
		if at := d.nexts[i]; at >= 0 && at <= h {
			active++
			last = i
		}
	}
	if active <= 1 {
		d.skipped++
		for i, s := range d.shards {
			if i != last {
				s.AdvanceTo(h)
			}
		}
		if last >= 0 {
			d.shards[last].RunUntil(h)
		}
		return
	}
	d.pending.Store(int32(active))
	for i := range d.workers {
		if at := d.nexts[i]; at >= 0 && at <= h {
			d.workers[i].arm(h)
		} else {
			d.shards[i].AdvanceTo(h)
		}
	}
	<-d.done
}

// barrier runs the registered drain callbacks.
func (d *Domain) barrier() {
	for _, fn := range d.barriers {
		fn()
	}
}

// step runs one synchronization window bounded by fence. It reports
// false when no pending work exists anywhere (shards, outboxes already
// drained, globals) — the domain is idle.
func (d *Domain) step(fence time.Duration) bool {
	minNext := time.Duration(-1)
	for i, s := range d.shards {
		at, ok := s.NextEventAt()
		if !ok {
			d.nexts[i] = -1
			continue
		}
		d.nexts[i] = at
		if minNext < 0 || at < minNext {
			minNext = at
		}
	}
	gAt, gOK := d.nextGlobalAt()
	if minNext < 0 && !gOK {
		return false
	}
	h := fence
	if minNext >= 0 {
		if wh := minNext + d.lookahead; wh < h {
			h = wh
		}
	}
	if gOK && gAt < h {
		h = gAt
	}
	if h < d.now {
		h = d.now
	}
	d.runWindow(h)
	d.barrier()
	d.fireGlobals(h)
	d.now = h
	return true
}

// RunFor drives the whole domain for dur of virtual time and returns the
// amount advanced (always dur: like Scheduler.RunFor, the clock jumps to
// the fence when events run out, so consecutive calls tile the
// timeline). Must be called from outside every shard.
func (d *Domain) RunFor(dur time.Duration) time.Duration {
	start := d.now
	fence := start + dur
	for d.now < fence {
		if !d.step(fence) {
			break
		}
	}
	if d.now < fence {
		for _, s := range d.shards {
			s.AdvanceTo(fence)
		}
		d.barrier() // keep invariants simple: a barrier per committed hop
		d.now = fence
	}
	return d.now - start
}

// Wait runs windows until no shard has pending work and no global events
// remain. Parked actors may remain, as with Scheduler.Wait.
func (d *Domain) Wait() {
	const forever = time.Duration(1<<63 - 1)
	for d.step(forever) {
	}
}

// Shutdown stops every shard and the window workers. Idempotent.
func (d *Domain) Shutdown() {
	if d.stopped {
		return
	}
	d.stopped = true
	for i := range d.workers {
		w := &d.workers[i]
		if w.flag.Swap(wQuit) == wParked {
			w.park <- struct{}{}
		}
	}
	d.workers = nil
	for _, s := range d.shards {
		s.Shutdown()
	}
}

// String describes the domain for diagnostics.
func (d *Domain) String() string {
	return fmt.Sprintf("vtime.Domain{shards=%d lookahead=%s windows=%d}",
		len(d.shards), d.lookahead, d.windows)
}
