package vtime

import (
	"sync"
	"time"
)

// Mailbox is the runtime-portable unbounded FIFO used by middleware code
// to gather concurrent results (e.g. reservation fan-out answers). The
// scheduler implementation parks actors in virtual time; the Real
// implementation blocks goroutines on a condition variable. Code written
// against Runtime must use mailboxes — not bare channels or WaitGroups —
// wherever it blocks, or it would stall the virtual clock.
type Mailbox interface {
	// Push appends a value. Push on a closed mailbox is a no-op.
	Push(v any)
	// Pop blocks until a value is available; ok is false after Close
	// drains.
	Pop() (v any, ok bool)
	// PopTimeout is Pop with a deadline; d < 0 blocks forever. It
	// returns ErrTimeout or ErrClosed.
	PopTimeout(d time.Duration) (any, error)
	// Close wakes all waiters; buffered values remain poppable.
	Close()
	// Len returns the number of buffered values.
	Len() int
}

// NewMailbox returns a virtual-time mailbox. Part of the Runtime
// interface.
func (s *Scheduler) NewMailbox() Mailbox {
	return &schedMailbox{q: NewQueue[any](s)}
}

type schedMailbox struct{ q *Queue[any] }

func (m *schedMailbox) Push(v any) { m.q.Push(v) }
func (m *schedMailbox) Pop() (any, bool) {
	return m.q.Pop()
}
func (m *schedMailbox) PopTimeout(d time.Duration) (any, error) {
	return m.q.PopTimeout(d)
}
func (m *schedMailbox) Close()   { m.q.Close() }
func (m *schedMailbox) Len() int { return m.q.Len() }

// NewMailbox returns a wall-clock mailbox. Part of the Runtime interface.
func (Real) NewMailbox() Mailbox {
	m := &realMailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

type realMailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	closed bool
}

func (m *realMailbox) Push(v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, v)
	m.cond.Broadcast()
}

func (m *realMailbox) Pop() (any, bool) {
	v, err := m.PopTimeout(-1)
	return v, err == nil
}

func (m *realMailbox) PopTimeout(d time.Duration) (any, error) {
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
		// A timer wakes the cond so timed waiters can give up.
		t := time.AfterFunc(d, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer t.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(m.items) > 0 {
			v := m.items[0]
			m.items = m.items[1:]
			return v, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if d >= 0 && !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		m.cond.Wait()
	}
}

func (m *realMailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

func (m *realMailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
