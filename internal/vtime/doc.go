// Package vtime provides a deterministic discrete-event virtual-time
// scheduler. It is the substrate on which the whole Grid'5000 simulation
// runs: every daemon, every MPI process and every in-flight message is an
// actor or an event on a single virtual clock.
//
// The scheduler is conservative and strictly sequential: exactly one actor
// executes at any moment, and the clock advances only when every actor is
// parked. Together with seeded random sources this makes large simulations
// (hundreds of peers, hundreds of thousands of messages) reproducible
// bit-for-bit, which the experiment harness relies on — including its
// parallel sweep mode, where independent worlds run on separate OS
// threads without perturbing each other's timelines.
//
// The hot path is run-to-completion: pure timer events (Sleep expiries,
// queue timeouts) fire inline on the dispatch loop under one lock
// acquisition, events live in a pooled slab behind a 4-ary heap, and
// when the next runnable actor is the goroutine already driving the
// dispatch, the hand-off resolves without a channel round-trip. A Sleep
// tick costs one mutex cycle and zero allocations; Now/Elapsed are
// lock-free. See docs/PERF.md for the execution model and the
// determinism rules fast-path code must follow.
//
// Actors are ordinary goroutines registered with (*Scheduler).Go. They may
// block only through scheduler primitives (Sleep, Queue.Pop, Timer waits).
// Blocking through ordinary channel operations or OS calls would stall the
// virtual clock. Callbacks scheduled with After/Schedule/ScheduleArg run
// outside any actor context — never concurrently with an actor — and
// must not block.
//
// The Runtime interface is the portable subset middleware is written
// against: Scheduler implements it in virtual time, Real implements it
// on the wall clock, and the identical daemon code runs in both worlds.
// Mailbox is the portable blocking FIFO used wherever concurrent
// results are gathered.
package vtime
