package vtime

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw discrete-event processing: one
// actor sleeping through b.N virtual ticks.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	defer s.Shutdown()
	s.Go("ticker", func() {
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Millisecond)
		}
	})
	b.ResetTimer()
	s.Wait()
}

// BenchmarkQueueHandoff measures producer/consumer hand-offs between two
// actors.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New()
	defer s.Shutdown()
	q := NewQueue[int](s)
	s.Go("producer", func() {
		for i := 0; i < b.N; i++ {
			q.Push(i)
		}
	})
	s.Go("consumer", func() {
		for i := 0; i < b.N; i++ {
			if _, ok := q.Pop(); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	s.Wait()
}

// BenchmarkActorSpawn measures Go+exit cost for short-lived actors.
func BenchmarkActorSpawn(b *testing.B) {
	s := New()
	defer s.Shutdown()
	s.Go("spawner", func() {
		for i := 0; i < b.N; i++ {
			s.Go("child", func() {})
			s.Yield()
		}
	})
	b.ResetTimer()
	s.Wait()
}
