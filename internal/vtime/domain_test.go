package vtime

import (
	"testing"
	"time"
)

// TestDomainSingleShardRuns: an n=1 domain is a thin wrapper over one
// scheduler — no workers, no lookahead requirement.
func TestDomainSingleShardRuns(t *testing.T) {
	d := NewDomain(1, 0)
	defer d.Shutdown()
	var fired []time.Duration
	s := d.Shard(0)
	s.Go("a", func() {
		for i := 0; i < 3; i++ {
			s.Sleep(10 * time.Millisecond)
			fired = append(fired, s.Elapsed())
		}
	})
	d.Wait()
	if len(fired) != 3 || fired[2] != 30*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

// TestDomainZeroLookaheadPanics: a multi-shard domain with no positive
// lookahead has no sound window width.
func TestDomainZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(2, 0) did not panic")
		}
	}()
	NewDomain(2, 0)
}

// TestDomainWindowedAdvance: shards advance in lockstep windows; after
// Wait, every shard clock sits at the domain clock, which covers the
// latest event.
func TestDomainWindowedAdvance(t *testing.T) {
	d := NewDomain(3, 5*time.Millisecond)
	defer d.Shutdown()
	ends := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		i := i
		s := d.Shard(i)
		s.Go("w", func() {
			for j := 0; j <= i; j++ {
				s.Sleep(7 * time.Millisecond)
			}
			ends[i] = s.Elapsed()
		})
	}
	d.Wait()
	if ends[0] != 7*time.Millisecond || ends[1] != 14*time.Millisecond || ends[2] != 21*time.Millisecond {
		t.Fatalf("ends = %v", ends)
	}
	if got := d.Elapsed(); got < 21*time.Millisecond {
		t.Fatalf("domain clock %v behind the last event", got)
	}
	if d.Windows() == 0 {
		t.Fatal("no windows recorded")
	}
	for i := 0; i < 3; i++ {
		if got := d.Shard(i).Elapsed(); got != d.Elapsed() {
			t.Fatalf("shard %d parked at %v, domain at %v", i, got, d.Elapsed())
		}
	}
}

// TestDomainScheduleGlobal: a global event fires with every shard
// parked exactly at its timestamp, even when no shard has an event
// there; barrier callbacks run once per window.
func TestDomainScheduleGlobal(t *testing.T) {
	d := NewDomain(2, time.Millisecond)
	defer d.Shutdown()
	var at0, at1, domAt time.Duration
	d.ScheduleGlobal(13*time.Millisecond, func() {
		at0 = d.Shard(0).Elapsed()
		at1 = d.Shard(1).Elapsed()
		domAt = d.Elapsed()
	})
	var barriers int
	d.OnBarrier(func() { barriers++ })
	s := d.Shard(0)
	s.Go("busy", func() {
		for i := 0; i < 20; i++ {
			s.Sleep(time.Millisecond)
		}
	})
	d.Wait()
	const want = 13 * time.Millisecond
	if at0 != want || at1 != want || domAt != want {
		t.Fatalf("global fired at shard0=%v shard1=%v dom=%v, want %v", at0, at1, domAt, want)
	}
	if barriers == 0 {
		t.Fatal("no barrier callbacks ran")
	}
}

// TestDomainRunFor: RunFor stops at the fence even with work left, and
// leaves every shard clock at the fence.
func TestDomainRunFor(t *testing.T) {
	d := NewDomain(2, 2*time.Millisecond)
	defer d.Shutdown()
	var count int
	s := d.Shard(1)
	s.Go("ticker", func() {
		for {
			s.Sleep(3 * time.Millisecond)
			count++
		}
	})
	d.RunFor(10 * time.Millisecond)
	if count != 3 { // ticks at 3, 6, 9
		t.Fatalf("count = %d after 10ms, want 3", count)
	}
	if d.Elapsed() != 10*time.Millisecond {
		t.Fatalf("domain clock %v, want 10ms", d.Elapsed())
	}
	for i := 0; i < 2; i++ {
		if got := d.Shard(i).Elapsed(); got != 10*time.Millisecond {
			t.Fatalf("shard %d at %v, want 10ms", i, got)
		}
	}
	d.RunFor(10 * time.Millisecond)
	if count != 6 { // 12, 15, 18
		t.Fatalf("count = %d after 20ms, want 6", count)
	}
}

// TestSchedulerNextEventAt: the window computation's view of a shard's
// earliest pending work.
func TestSchedulerNextEventAt(t *testing.T) {
	s := New()
	defer s.Shutdown()
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("idle scheduler reported an event")
	}
	s.Go("a", func() {
		s.Sleep(5 * time.Millisecond)
	})
	// The spawned actor is runnable right now.
	at, ok := s.NextEventAt()
	if !ok || at != 0 {
		t.Fatalf("NextEventAt = %v, %v; want 0, true", at, ok)
	}
	s.Wait()
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("drained scheduler reported an event")
	}
}
