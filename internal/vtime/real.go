package vtime

import "time"

// Real is the wall-clock Runtime: Now and Sleep delegate to package time
// and Go starts plain goroutines. Daemons written against Runtime run
// unchanged over real networks with this implementation.
type Real struct{}

// Now returns the wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Sleep pauses the calling goroutine for d of wall-clock time.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go runs fn on a new goroutine. The name is ignored.
func (Real) Go(name string, fn func()) { go fn() }

// Schedule runs fn once after d of wall-clock time.
func (Real) Schedule(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

var _ Runtime = Real{}
var _ Runtime = (*Scheduler)(nil)
