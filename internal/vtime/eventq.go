package vtime

import (
	"sync"
	"time"
)

// Event kinds. Wake and abandon events are internal: the dispatch loop
// runs them to completion under the scheduler lock — no goroutine
// hand-off, no unlock round-trip, no closure. Func events carry user
// callbacks (After/Schedule) and run with the lock released, so the
// callback can re-enter public scheduler APIs.
const (
	evFunc    uint8 = iota
	evFuncArg       // like evFunc, closure-free: fnArg(arg)
	evWake          // resume a Sleep-parked actor
	evAbandon       // expire a queue waiter (Queue.PopTimeout)
)

// event is one slot of the scheduler's event slab. Events are addressed
// by slab index; gen disambiguates slot reuse so Timer handles stay O(1)
// without keeping freed slots alive. All fields are guarded by s.mu.
type event struct {
	at       time.Duration
	seq      uint64 // FIFO tie-break for equal timestamps
	kind     uint8
	canceled bool
	gen      uint32
	heapIdx  int32       // position in s.heap, -1 once popped
	actor    *actor      // evWake target
	w        *waiterCore // evAbandon target
	fn       func()      // evFunc callback; runs with s.mu NOT held
	fnArg    func(any)   // evFuncArg callback; runs with s.mu NOT held
	arg      any         // evFuncArg argument
}

// waiterCore is the non-generic half of a queue waiter, shared with the
// scheduler so PopTimeout expiries run as internal events instead of
// allocating a closure per timed receive.
type waiterCore struct {
	a    *actor
	got  bool // item was handed off
	gone bool // abandoned (timeout or close); Push must skip it
}

// arena is the recyclable bulk storage of one scheduler: the event slab
// and its index structures. Sweep harnesses boot one short-lived world
// per experiment point, and each world's slab grows to the point's
// in-flight-event high-water mark — recycling the arrays across points
// (and across the pool's OS workers) turns that into a one-time cost.
// Donation happens in Shutdown, after every slot has been freed and
// cleared, so an adopted arena carries capacity but no references; slot
// generation counters carry over, which only means recycled Timer
// handles from a previous scheduler read as "already fired".
type arena struct {
	slab []event
	free []int32
	heap []int32
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// newEventLocked takes a slot from the slab (reusing a freed one when
// available) and stamps it with the deadline and the next sequence
// number. The caller fills in the kind-specific fields and pushes it.
func (s *Scheduler) newEventLocked(d time.Duration) int32 {
	s.seq++
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slab = append(s.slab, event{})
		id = int32(len(s.slab) - 1)
	}
	ev := &s.slab[id]
	ev.at = s.now + d
	ev.seq = s.seq
	ev.canceled = false
	return id
}

// freeEventLocked returns a popped slot to the free list. The generation
// bump invalidates outstanding Timer handles; clearing the references
// lets the closure and targets be collected while the slot is idle.
func (s *Scheduler) freeEventLocked(id int32) {
	ev := &s.slab[id]
	ev.gen++
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.actor = nil
	ev.w = nil
	ev.heapIdx = -1
	s.free = append(s.free, id)
}

// cancelLocked marks an event canceled if the handle is still current.
// The slot stays in the heap and is dropped lazily when popped.
func (s *Scheduler) cancelLocked(id int32, gen uint32) {
	if ev := &s.slab[id]; ev.gen == gen {
		ev.canceled = true
	}
}

// The heap is a 4-ary min-heap of slab indices ordered by (at, seq). A
// wider node fans the tree out to a quarter of the depth of a binary
// heap and keeps sibling comparisons inside one cache line of int32s —
// the shape matters because sweeps park hundreds of thousands of
// in-flight deliveries here.

func (s *Scheduler) heapLess(a, b int32) bool {
	ea, eb := &s.slab[a], &s.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Scheduler) heapPush(id int32) {
	s.heap = append(s.heap, id)
	s.siftUp(len(s.heap) - 1)
}

func (s *Scheduler) heapPop() int32 {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.heap = h[:last]
	if last > 0 {
		s.siftDown(0)
	}
	s.slab[top].heapIdx = -1
	return top
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	id := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !s.heapLess(id, h[p]) {
			break
		}
		h[i] = h[p]
		s.slab[h[i]].heapIdx = int32(i)
		i = p
	}
	h[i] = id
	s.slab[id].heapIdx = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	id := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.heapLess(h[j], h[best]) {
				best = j
			}
		}
		if !s.heapLess(h[best], id) {
			break
		}
		h[i] = h[best]
		s.slab[h[i]].heapIdx = int32(i)
		i = best
	}
	h[i] = id
	s.slab[id].heapIdx = int32(i)
}
