package vtime

import (
	"errors"
	"time"
)

// ErrClosed is returned by Queue operations after Close.
var ErrClosed = errors.New("vtime: queue closed")

// ErrTimeout is returned by PopTimeout when the deadline expires first.
var ErrTimeout = errors.New("vtime: timeout")

// qwaiter is one actor blocked in Pop, waiting for a direct hand-off.
// The embedded waiterCore is what the scheduler's abandon events touch;
// waiters are recycled through the queue's free list, so steady-state
// blocking receives do not allocate.
type qwaiter[T any] struct {
	waiterCore
	item T
}

// Queue is an unbounded FIFO connecting actors (and event callbacks) to
// actors. Pop blocks the calling actor in virtual time; Push never blocks.
// Items are handed directly to the longest-waiting consumer, preserving
// FIFO order among both items and consumers.
type Queue[T any] struct {
	s       *Scheduler
	items   []T // ring: live items are items[head:]
	head    int
	waiters []*qwaiter[T] // ring: live waiters are waiters[whead:]
	whead   int
	free    []*qwaiter[T] // recycled waiters
	closed  bool
}

// NewQueue returns an empty queue bound to s.
func NewQueue[T any](s *Scheduler) *Queue[T] {
	return &Queue[T]{s: s}
}

func (q *Queue[T]) getWaiterLocked(a *actor) *qwaiter[T] {
	if n := len(q.free); n > 0 {
		w := q.free[n-1]
		q.free = q.free[:n-1]
		w.a = a
		w.got = false
		w.gone = false
		return w
	}
	return &qwaiter[T]{waiterCore: waiterCore{a: a}}
}

func (q *Queue[T]) putWaiterLocked(w *qwaiter[T]) {
	var zero T
	w.item = zero
	w.a = nil
	q.free = append(q.free, w)
}

// popItemLocked removes and returns the buffered head item.
func (q *Queue[T]) popItemLocked() T {
	x := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return x
}

// Push appends x (or hands it to a waiting consumer). It is safe to call
// from actors and from event callbacks. Push on a closed queue is a no-op.
func (q *Queue[T]) Push(x T) {
	s := q.s
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		return
	}
	for q.whead < len(q.waiters) {
		w := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead++
		if q.whead == len(q.waiters) {
			q.waiters = q.waiters[:0]
			q.whead = 0
		}
		if w.gone {
			// Abandoned by a timeout. Its owner may not have resumed yet
			// and still reads the struct, so only the owner ever recycles
			// a waiter — the ring just drops its reference.
			continue
		}
		w.item = x
		w.got = true
		s.WakeLocked(w.a)
		s.mu.Unlock()
		return
	}
	q.items = append(q.items, x)
	s.mu.Unlock()
}

// Pop removes and returns the head item, blocking the calling actor until
// one is available. The bool is false if the queue was closed.
func (q *Queue[T]) Pop() (T, bool) {
	v, err := q.PopTimeout(-1)
	return v, err == nil
}

// PopTimeout is Pop with a virtual-time deadline. d < 0 means no deadline.
// It returns ErrTimeout if d elapses first and ErrClosed after Close.
func (q *Queue[T]) PopTimeout(d time.Duration) (T, error) {
	var zero T
	s := q.s
	s.mu.Lock()
	if q.head < len(q.items) {
		x := q.popItemLocked()
		s.mu.Unlock()
		return x, nil
	}
	if q.closed {
		s.mu.Unlock()
		return zero, ErrClosed
	}
	if d == 0 {
		s.mu.Unlock()
		return zero, ErrTimeout
	}
	a := s.curActorLocked("Queue.Pop")
	w := q.getWaiterLocked(a)
	q.waiters = append(q.waiters, w)

	var tid int32
	var tgen uint32
	timed := d > 0
	if timed {
		tid = s.newEventLocked(d)
		ev := &s.slab[tid]
		ev.kind = evAbandon
		ev.w = &w.waiterCore
		tgen = ev.gen
		s.heapPush(tid)
	}
	s.parkLocked(a)
	// Re-acquired s.mu here.
	if timed {
		s.cancelLocked(tid, tgen)
	}
	if w.got {
		x := w.item
		q.putWaiterLocked(w) // Push removed it from the waiter ring
		s.mu.Unlock()
		return x, nil
	}
	w.gone = true
	if q.closed {
		// Close emptied the waiter ring and no new pushes can reference
		// w, so ownership is back here: recycle. A timed-out waiter, by
		// contrast, still sits in the ring (a later Push walks past it),
		// so it must leak to the GC rather than be recycled twice.
		q.putWaiterLocked(w)
		s.mu.Unlock()
		return zero, ErrClosed
	}
	s.mu.Unlock()
	return zero, ErrTimeout
}

// TryPop removes the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.head == len(q.items) {
		return zero, false
	}
	return q.popItemLocked(), true
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return len(q.items) - q.head
}

// Close wakes all waiting consumers with ErrClosed and drops future
// pushes. Buffered items remain poppable. Idempotent.
func (q *Queue[T]) Close() {
	s := q.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for i := q.whead; i < len(q.waiters); i++ {
		w := q.waiters[i]
		q.waiters[i] = nil
		if !w.gone && !w.got {
			w.gone = true
			s.WakeLocked(w.a)
		}
		// Never recycle here: a timed-out owner may not have resumed yet.
	}
	q.waiters = q.waiters[:0]
	q.whead = 0
}
