package vtime

import (
	"errors"
	"time"
)

// ErrClosed is returned by Queue operations after Close.
var ErrClosed = errors.New("vtime: queue closed")

// ErrTimeout is returned by PopTimeout when the deadline expires first.
var ErrTimeout = errors.New("vtime: timeout")

// qwaiter is one actor blocked in Pop, waiting for a direct hand-off.
type qwaiter[T any] struct {
	a    *actor
	item T
	got  bool // item was handed off
	gone bool // abandoned (timeout or close); Push must skip it
}

// Queue is an unbounded FIFO connecting actors (and event callbacks) to
// actors. Pop blocks the calling actor in virtual time; Push never blocks.
// Items are handed directly to the longest-waiting consumer, preserving
// FIFO order among both items and consumers.
type Queue[T any] struct {
	s       *Scheduler
	items   []T
	waiters []*qwaiter[T]
	closed  bool
}

// NewQueue returns an empty queue bound to s.
func NewQueue[T any](s *Scheduler) *Queue[T] {
	return &Queue[T]{s: s}
}

// Push appends x (or hands it to a waiting consumer). It is safe to call
// from actors and from event callbacks. Push on a closed queue is a no-op.
func (q *Queue[T]) Push(x T) {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.closed {
		return
	}
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.gone {
			continue
		}
		w.item = x
		w.got = true
		q.s.WakeLocked(w.a)
		return
	}
	q.items = append(q.items, x)
}

// Pop removes and returns the head item, blocking the calling actor until
// one is available. The bool is false if the queue was closed.
func (q *Queue[T]) Pop() (T, bool) {
	v, err := q.PopTimeout(-1)
	return v, err == nil
}

// PopTimeout is Pop with a virtual-time deadline. d < 0 means no deadline.
// It returns ErrTimeout if d elapses first and ErrClosed after Close.
func (q *Queue[T]) PopTimeout(d time.Duration) (T, error) {
	var zero T
	q.s.mu.Lock()
	if len(q.items) > 0 {
		x := q.items[0]
		q.items = q.items[1:]
		q.s.mu.Unlock()
		return x, nil
	}
	if q.closed {
		q.s.mu.Unlock()
		return zero, ErrClosed
	}
	if d == 0 {
		q.s.mu.Unlock()
		return zero, ErrTimeout
	}
	a := q.s.curActorLocked("Queue.Pop")
	w := &qwaiter[T]{a: a}
	q.waiters = append(q.waiters, w)

	var timer *event
	if d > 0 {
		timer = q.s.scheduleLocked(d, func() {
			q.s.mu.Lock()
			if !w.got && !w.gone {
				w.gone = true
				q.s.WakeLocked(a)
			}
			q.s.mu.Unlock()
		})
	}
	q.s.parkLocked(a)
	// Re-acquired s.mu here.
	if timer != nil {
		timer.canceled = true
	}
	defer q.s.mu.Unlock()
	if w.got {
		return w.item, nil
	}
	w.gone = true
	if q.closed {
		return zero, ErrClosed
	}
	return zero, ErrTimeout
}

// TryPop removes the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if len(q.items) == 0 {
		return zero, false
	}
	x := q.items[0]
	q.items = q.items[1:]
	return x, true
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return len(q.items)
}

// Close wakes all waiting consumers with ErrClosed and drops future
// pushes. Buffered items remain poppable. Idempotent.
func (q *Queue[T]) Close() {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		if !w.gone && !w.got {
			w.gone = true
			q.s.WakeLocked(w.a)
		}
	}
	q.waiters = nil
}
