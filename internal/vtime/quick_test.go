package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickTimerOrdering: for any multiset of delays, callbacks fire in
// nondecreasing deadline order, with FIFO order among equal deadlines.
func TestQuickTimerOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := New()
		defer s.Shutdown()
		type fired struct {
			at  time.Duration
			idx int
		}
		var log []fired
		s.Go("arm", func() {
			for i, d := range raw {
				i, dd := i, time.Duration(d)*time.Microsecond
				s.After(dd, func() {
					log = append(log, fired{at: s.Elapsed(), idx: i})
				})
			}
			s.Sleep(time.Second) // beyond every deadline
		})
		s.Wait()
		if len(log) != len(raw) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			// Equal firing times must preserve arming order.
			if log[i].at == log[i-1].at && raw[log[i].idx] == raw[log[i-1].idx] &&
				log[i].idx < log[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSleepersWakeInOrder: N actors with random sleeps always wake
// in sorted delay order.
func TestQuickSleepersWakeInOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		s := New()
		defer s.Shutdown()
		var woke []time.Duration
		for _, d := range raw {
			dd := time.Duration(d) * time.Microsecond
			s.Go("sleeper", func() {
				s.Sleep(dd)
				woke = append(woke, dd)
			})
		}
		s.Wait()
		if len(woke) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(woke, func(i, j int) bool { return woke[i] < woke[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueueFIFO: any interleaving of pushes drains in push order.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(vals []int16, seed int64) bool {
		if len(vals) > 128 {
			vals = vals[:128]
		}
		s := New()
		defer s.Shutdown()
		q := NewQueue[int16](s)
		rng := rand.New(rand.NewSource(seed))
		s.Go("producer", func() {
			for _, v := range vals {
				if rng.Intn(3) == 0 {
					s.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				}
				q.Push(v)
			}
		})
		var got []int16
		s.Go("consumer", func() {
			for range vals {
				v, ok := q.Pop()
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		s.Wait()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRunForTiling: consecutive RunFor calls advance the clock by
// exactly their durations regardless of event load.
func TestQuickRunForTiling(t *testing.T) {
	f := func(chunks []uint8) bool {
		if len(chunks) == 0 {
			return true
		}
		if len(chunks) > 16 {
			chunks = chunks[:16]
		}
		s := New()
		defer s.Shutdown()
		s.Go("noise", func() {
			for i := 0; i < 1000; i++ {
				s.Sleep(777 * time.Microsecond)
			}
		})
		var want time.Duration
		for _, c := range chunks {
			d := time.Duration(c) * time.Millisecond
			s.RunFor(d)
			want += d
			if s.Elapsed() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
