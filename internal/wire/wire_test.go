package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder(64)
	e.U8(7).Bool(true).Bool(false).U32(0xDEADBEEF).U64(1 << 60).
		Varint(-12345).Int(42).F64(math.Pi).Duration(17 * time.Millisecond).
		String("grid'5000").Blob([]byte{1, 2, 3}).
		StringSlice([]string{"nancy", "lyon"}).IntSlice([]int{-1, 0, 99})

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Fatalf("U64 = %x", v)
	}
	if v := d.Varint(); v != -12345 {
		t.Fatalf("Varint = %d", v)
	}
	if v := d.Int(); v != 42 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.Duration(); v != 17*time.Millisecond {
		t.Fatalf("Duration = %v", v)
	}
	if v := d.String(); v != "grid'5000" {
		t.Fatalf("String = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", v)
	}
	ss := d.StringSlice()
	if len(ss) != 2 || ss[0] != "nancy" || ss[1] != "lyon" {
		t.Fatalf("StringSlice = %v", ss)
	}
	is := d.IntSlice()
	if len(is) != 3 || is[0] != -1 || is[2] != 99 {
		t.Fatalf("IntSlice = %v", is)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if d.Err() != ErrShort {
		t.Fatalf("err = %v, want ErrShort", d.Err())
	}
	// Sticky error: further reads are zero values, no panic.
	if d.U64() != 0 || d.String() != "" || d.Blob() != nil {
		t.Fatal("reads after error should return zero values")
	}
}

func TestDecoderCorruptString(t *testing.T) {
	e := NewEncoder(8)
	e.Varint(1000) // claims a 1000-byte string follows
	d := NewDecoder(e.Bytes())
	if d.String() != "" || d.Err() == nil {
		t.Fatal("corrupt string not detected")
	}
}

func TestDecoderNegativeLength(t *testing.T) {
	e := NewEncoder(8)
	e.Varint(-5)
	d := NewDecoder(e.Bytes())
	if d.Blob() != nil || d.Err() == nil {
		t.Fatal("negative length not detected")
	}
}

func TestFinishTrailingBytes(t *testing.T) {
	e := NewEncoder(8)
	e.U8(1).U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should reject trailing bytes")
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string, b []byte, i int64, u uint64) bool {
		e := NewEncoder(16)
		e.String(s).Blob(b).Varint(i).U64(u)
		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.Blob()
		gi := d.Varint()
		gu := d.U64()
		if d.Finish() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) == (len(b) == len(gb)) && gi == i && gu == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSlicesRoundTrip(t *testing.T) {
	f := func(ss []string, is []int) bool {
		e := NewEncoder(16)
		e.StringSlice(ss).IntSlice(is)
		d := NewDecoder(e.Bytes())
		gss := d.StringSlice()
		gis := d.IntSlice()
		if d.Finish() != nil {
			return false
		}
		if len(gss) != len(ss) || len(gis) != len(is) {
			return false
		}
		for i := range ss {
			if gss[i] != ss[i] {
				return false
			}
		}
		for i := range is {
			if gis[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDecoder(b)
		_ = d.U8()
		_ = d.Varint()
		_ = d.String()
		_ = d.StringSlice()
		_ = d.IntSlice()
		_ = d.Blob()
		_ = d.F64()
		_ = d.Finish()
		return true // absence of panic is the property
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
