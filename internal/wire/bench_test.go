package wire

import "testing"

func BenchmarkEncodeControlMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		e.U8(7).String("grelon-12.nancy").String("nancy").
			String("grelon-12.nancy:9000").String("grelon-12.nancy:9001").
			Int(600).Duration(17167000)
		_ = e.Bytes()
	}
}

func BenchmarkDecodeControlMessage(b *testing.B) {
	e := NewEncoder(64)
	e.U8(7).String("grelon-12.nancy").String("nancy").
		String("grelon-12.nancy:9000").String("grelon-12.nancy:9001").
		Int(600).Duration(17167000)
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		_ = d.U8()
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.Int()
		_ = d.Duration()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

func BenchmarkEncodeIntSlice(b *testing.B) {
	vs := make([]int, 1024)
	for i := range vs {
		vs[i] = i * 3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(4096)
		e.IntSlice(vs)
	}
}
