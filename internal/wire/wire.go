// Package wire implements the compact binary encoding used by every
// P2P-MPI control-plane and data-plane message. It is a hand-rolled,
// allocation-light codec (length-prefixed strings, varint integers) so
// that the same frames flow over real TCP sockets and the simulated
// network without reflection overhead.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrShort is returned when a decoder runs past the end of its buffer.
var ErrShort = errors.New("wire: buffer too short")

// ErrCorrupt is returned when a frame fails structural validation.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Reset points the encoder at the front of buf, reusing its capacity.
// It is how hot paths encode into caller-owned scratch without
// allocating: var e Encoder; e.Reset(scratch); ...; scratch = e.Bytes().
func (e *Encoder) Reset(buf []byte) *Encoder {
	e.buf = buf[:0]
	return e
}

// Bytes returns the encoded frame. The slice aliases the encoder buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) *Encoder {
	e.buf = append(e.buf, v)
	return e
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// U32 appends a fixed-width big-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a fixed-width big-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
	return e
}

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) *Encoder {
	e.buf = binary.AppendVarint(e.buf, v)
	return e
}

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) *Encoder { return e.Varint(int64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) *Encoder { return e.U64(math.Float64bits(v)) }

// Duration appends a time.Duration as a varint of nanoseconds.
func (e *Encoder) Duration(d time.Duration) *Encoder { return e.Varint(int64(d)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) *Encoder {
	e.Varint(int64(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.Varint(int64(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// StringSlice appends a length-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) *Encoder {
	e.Varint(int64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
	return e
}

// IntSlice appends a length-prefixed slice of ints.
func (e *Encoder) IntSlice(vs []int) *Encoder {
	e.Varint(int64(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
	return e
}

// Decoder consumes primitive values from a byte buffer. The first decode
// error sticks: all subsequent reads return zero values, and Err reports
// the failure, so calling code can decode a whole struct and check once.
type Decoder struct {
	buf []byte
	off int
	err error

	// intern, when armed by InternStrings, is one shared string copy of
	// the buffer tail; String reads return substrings of it instead of
	// allocating one copy per field.
	intern     string
	internBase int
}

// NewDecoder returns a decoder over b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or bytes remain unread.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.buf) {
		d.fail(ErrShort)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a fixed-width big-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a fixed-width big-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrCorrupt)
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint as an int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Duration reads a time.Duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Varint()) }

// InternStrings arms string interning: every later String read returns a
// substring of one shared copy of the remaining buffer, so a frame with
// thousands of string fields (a full host-list reply) costs one string
// allocation instead of one per field. Worth arming only on
// string-dense frames — the shared copy stays alive as long as any
// substring does.
func (d *Decoder) InternStrings() {
	if d.intern == "" && d.off < len(d.buf) {
		d.intern = string(d.buf[d.off:])
		d.internBase = d.off
	}
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Varint()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > int64(d.Remaining()) {
		d.fail(ErrCorrupt)
		return ""
	}
	var s string
	if d.intern != "" {
		s = d.intern[d.off-d.internBase : d.off-d.internBase+int(n)]
	} else {
		s = string(d.buf[d.off : d.off+int(n)])
	}
	d.off += int(n)
	return s
}

// StringInto reads a length-prefixed string into *s, keeping the
// existing allocation when the decoded bytes are identical. The
// comparison is allocation-free, so decoding a stable value (a repeated
// heartbeat's job ID, a reservation key echoed through a handshake)
// into a reused struct costs nothing steady-state.
func (d *Decoder) StringInto(s *string) {
	n := d.Varint()
	if d.err != nil {
		return
	}
	if n < 0 || n > int64(d.Remaining()) {
		d.fail(ErrCorrupt)
		return
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if *s != string(b) { // compiler-optimized: no allocation to compare
		*s = string(b)
	}
}

// Blob reads a length-prefixed byte slice. The result is a copy.
func (d *Decoder) Blob() []byte {
	n := d.Varint()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > int64(d.Remaining()) {
		d.fail(ErrCorrupt)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// StringSlice reads a length-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.Varint()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > int64(d.Remaining()) { // each string needs >= 1 byte
		d.fail(ErrCorrupt)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, d.String())
	}
	return out
}

// IntSlice reads a length-prefixed slice of ints.
func (d *Decoder) IntSlice() []int {
	n := d.Varint()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > int64(d.Remaining()) {
		d.fail(ErrCorrupt)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, d.Int())
	}
	return out
}
