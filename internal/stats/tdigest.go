package stats

import (
	"math"
	"sort"
)

// TDigest is a mergeable quantile sketch (Dunning & Ertl's merging
// t-digest, scale function k₁). It holds O(compression) centroids
// whatever the stream length, which is what lets a million-submission
// open-system sweep report P50/P90/P99 without retaining samples.
//
// Accuracy contract (the sketch-accuracy property tests enforce it):
// the k₁ scale function k(q) = δ/(2π)·asin(2q−1) has slope
// δ/(2π·√(q(1−q))), so a centroid near quantile q spans at most about
// one k-unit, i.e. 2π·√(q(1−q))/δ of the rank range. Quantile
// interpolates between adjacent centroid means, so its rank error is
// bounded by one centroid width:
//
//	|rank(estimate)/n − q| ≤ MaxRankError(q) = 2π·√(q(1−q))/δ
//
// At the default compression δ = 512 that is ≤ 0.62% of ranks at the
// median, 0.37% at P90 and 0.12% at P99 — accuracy tightens toward the
// tails, exactly where fixed-bin histograms give up. Observed errors
// run roughly an order of magnitude under the bound. Value error
// follows from rank error through the local sample density.
//
// Determinism: the centroid state is a pure function of the insertion
// sequence (Add order) and the merge sequence. Merge is symmetric —
// Merge collects both operands' centroids, sorts by (mean, weight) and
// recompresses, so merge(a,b) and merge(b,a) yield byte-identical
// state. The zero value is NOT ready; use NewTDigest.
type TDigest struct {
	compression float64

	// Processed centroids, sorted by mean.
	means   []float64
	weights []float64
	n       float64 // total processed weight

	min, max float64

	// Unmerged incoming points. Flushed into the centroid list when
	// full; scratch is the merge workspace, reused across flushes so a
	// warmed digest adds with zero allocations.
	buf                []float64
	scratchM, scratchW []float64
}

// DefaultCompression is the centroid budget used by NewDefaultTDigest:
// ≈0.4% worst-case (median) rank error, ~24 KB of float64s per metric.
const DefaultCompression = 512

// NewTDigest returns an empty digest with the given compression
// (centroid budget δ; values below 16 are raised to 16).
func NewTDigest(compression float64) *TDigest {
	if compression < 16 {
		compression = 16
	}
	return &TDigest{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
		buf:         make([]float64, 0, bufferFor(compression)),
	}
}

// NewDefaultTDigest returns NewTDigest(DefaultCompression).
func NewDefaultTDigest() *TDigest { return NewTDigest(DefaultCompression) }

// bufferFor sizes the unmerged buffer: a few multiples of the centroid
// budget amortizes the O(buf·log buf) flush sort without growing the
// high-water memory past a small constant factor.
func bufferFor(compression float64) int { return 4 * int(compression) }

// Add records one observation. O(1) amortized, allocation-free once
// the internal buffers reached steady size.
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf = append(t.buf, x)
	if len(t.buf) >= cap(t.buf) {
		t.flush()
	}
}

// N returns the number of observations recorded.
func (t *TDigest) N() int64 { return int64(t.n) + int64(len(t.buf)) }

// Min and Max return the exact observed extremes (+Inf/−Inf when empty).
func (t *TDigest) Min() float64 { return t.min }
func (t *TDigest) Max() float64 { return t.max }

// Centroids returns the processed centroid count (tests and sizing).
func (t *TDigest) Centroids() int {
	t.flush()
	return len(t.means)
}

// k is the k₁ scale function: k(q) = δ/(2π) · asin(2q−1). Its steep
// slope near q∈{0,1} forces tail centroids to stay tiny, which is what
// buys the quadratic tail accuracy.
func (t *TDigest) k(q float64) float64 {
	if q <= 0 {
		return -t.compression / 4
	}
	if q >= 1 {
		return t.compression / 4
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInv inverts k.
func (t *TDigest) kInv(k float64) float64 {
	lim := t.compression / 4
	if k >= lim {
		return 1
	}
	if k <= -lim {
		return 0
	}
	return (math.Sin(k*2*math.Pi/t.compression) + 1) / 2
}

// flush merges the buffered points into the centroid list.
func (t *TDigest) flush() {
	if len(t.buf) == 0 {
		return
	}
	sort.Float64s(t.buf)
	// Merge the sorted buffer with the sorted centroid list into the
	// scratch arrays, then compress scratch back into means/weights.
	needed := len(t.means) + len(t.buf)
	t.scratchM = t.scratchM[:0]
	t.scratchW = t.scratchW[:0]
	if cap(t.scratchM) < needed {
		t.scratchM = make([]float64, 0, needed+needed/2)
		t.scratchW = make([]float64, 0, needed+needed/2)
	}
	i, j := 0, 0
	for i < len(t.means) || j < len(t.buf) {
		if j >= len(t.buf) || (i < len(t.means) && t.means[i] <= t.buf[j]) {
			t.scratchM = append(t.scratchM, t.means[i])
			t.scratchW = append(t.scratchW, t.weights[i])
			i++
		} else {
			t.scratchM = append(t.scratchM, t.buf[j])
			t.scratchW = append(t.scratchW, 1)
			j++
		}
	}
	t.n += float64(len(t.buf))
	t.buf = t.buf[:0]
	t.compress(t.scratchM, t.scratchW)
}

// compress rebuilds means/weights from a (mean-sorted) centroid
// sequence, merging neighbours while the k-scale budget allows. The
// input slices are the scratch arrays; the output is written over the
// (possibly reallocated) means/weights.
func (t *TDigest) compress(ms, ws []float64) {
	t.means = t.means[:0]
	t.weights = t.weights[:0]
	if len(ms) == 0 {
		return
	}
	var cumBefore float64 // total weight emitted so far
	qLimit := t.kInv(t.k(0) + 1)
	curM, curW := ms[0], ws[0]
	for idx := 1; idx < len(ms); idx++ {
		m, w := ms[idx], ws[idx]
		if (cumBefore+curW+w)/t.n <= qLimit {
			// Weighted-mean fold: deterministic given the sorted order.
			curM = curM + (m-curM)*(w/(curW+w))
			curW += w
			continue
		}
		t.means = append(t.means, curM)
		t.weights = append(t.weights, curW)
		cumBefore += curW
		qLimit = t.kInv(t.k(cumBefore/t.n) + 1)
		curM, curW = m, w
	}
	t.means = append(t.means, curM)
	t.weights = append(t.weights, curW)
}

// Merge folds o's observations into t. Symmetric by construction: both
// operands' centroid lists are concatenated, sorted by (mean, weight)
// and recompressed, so the result is byte-identical whichever operand
// is the receiver. o is flushed but not otherwise modified.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil {
		return
	}
	t.flush()
	o.flush()
	if o.n == 0 {
		return
	}
	if o.min < t.min {
		t.min = o.min
	}
	if o.max > t.max {
		t.max = o.max
	}
	type cw struct{ m, w float64 }
	all := make([]cw, 0, len(t.means)+len(o.means))
	for i := range t.means {
		all = append(all, cw{t.means[i], t.weights[i]})
	}
	for i := range o.means {
		all = append(all, cw{o.means[i], o.weights[i]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].m != all[j].m {
			return all[i].m < all[j].m
		}
		return all[i].w < all[j].w
	})
	t.scratchM = t.scratchM[:0]
	t.scratchW = t.scratchW[:0]
	for _, c := range all {
		t.scratchM = append(t.scratchM, c.m)
		t.scratchW = append(t.scratchW, c.w)
	}
	t.n += o.n
	t.compress(t.scratchM, t.scratchW)
}

// MaxRankError returns the documented worst-case rank error (as a
// fraction of n) of Quantile at quantile q — the bound the accuracy
// property tests assert against.
func (t *TDigest) MaxRankError(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	e := 2 * math.Pi * math.Sqrt(q*(1-q)) / t.compression
	// Even at the extreme tails two points of slack remain (singleton
	// centroids plus interpolation).
	if t.n > 0 {
		if floor := 2 / t.n; e < floor {
			e = floor
		}
	}
	return e
}

// Quantile estimates the q-quantile by piecewise-linear interpolation
// between centroid midpoints, anchored at the exact min and max. The
// target rank is q·(n−1)+½ — the same order-statistic convention as
// Summary.Quantile — so a digest whose relevant centroids are still
// singletons (always true at the extreme tails) reproduces the exact
// sorted-sample interpolation, not just a half-rank neighbour of it.
func (t *TDigest) Quantile(q float64) float64 {
	t.flush()
	if t.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q*(t.n-1) + 0.5
	// Cumulative weight up to the *midpoint* of each centroid: centroid
	// i's mean is taken to sit at cum_i + w_i/2.
	var cum float64
	prevMid, prevMean := 0.0, t.min
	for i := range t.means {
		mid := cum + t.weights[i]/2
		if target < mid {
			if mid == prevMid {
				return t.means[i]
			}
			frac := (target - prevMid) / (mid - prevMid)
			return prevMean + (t.means[i]-prevMean)*frac
		}
		cum += t.weights[i]
		prevMid, prevMean = mid, t.means[i]
	}
	// Between the last centroid midpoint and the exact max.
	if t.n == prevMid {
		return t.max
	}
	frac := (target - prevMid) / (t.n - prevMid)
	return prevMean + (t.max-prevMean)*frac
}

// RetainedBytes reports the digest's steady-state footprint: the
// capacity of every internal slice. Budget tests pin it.
func (t *TDigest) RetainedBytes() int {
	return 8 * (cap(t.means) + cap(t.weights) + cap(t.buf) + cap(t.scratchM) + cap(t.scratchW))
}
