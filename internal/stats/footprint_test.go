package stats

import (
	"math/rand"
	"testing"
)

// streamBudgetBytes is the enforced steady-state retention of one
// Stream, however long it is fed: the t-digest's centroid/buffer/
// scratch arrays (≈ 5 slices × up to 4δ float64s at δ=512) plus the
// O(1) moment fields. A metric that holds a megabyte after a
// million-submission sweep has silently regrown the Summarize
// behaviour this layer exists to kill.
const streamBudgetBytes = 256 << 10

// TestStreamFootprint1M feeds one million heavy-tailed observations —
// the acceptance-scale open-system sweep point — through a Stream and
// asserts the stats layer held O(1) memory: retention stays under the
// fixed budget and is identical to a 10k-observation run's, and a
// warmed Stream adds with zero allocations.
func TestStreamFootprint1M(t *testing.T) {
	feed := func(n int) *Stream {
		s := NewStream()
		rng := rand.New(rand.NewSource(9))
		gen := sketchDists[1].gen // bounded-pareto
		for i := 0; i < n; i++ {
			s.Add(gen(rng))
		}
		return s
	}
	small := feed(10_000)
	big := feed(1_000_000)
	smallBytes, bigBytes := small.Digest().RetainedBytes(), big.Digest().RetainedBytes()
	t.Logf("retained: %d B after 10k adds, %d B after 1M adds (%d centroids)",
		smallBytes, bigBytes, big.Digest().Centroids())
	if bigBytes > streamBudgetBytes {
		t.Fatalf("stream retains %d B after 1M observations, budget %d B", bigBytes, streamBudgetBytes)
	}
	if bigBytes > 2*smallBytes {
		t.Fatalf("retention grew with stream length: %d B at 10k vs %d B at 1M — not O(1)", smallBytes, bigBytes)
	}

	// A warmed stream's Add path must not allocate: a million-submission
	// sweep point cannot afford per-observation garbage either.
	rng := rand.New(rand.NewSource(10))
	gen := sketchDists[1].gen
	allocs := testing.AllocsPerRun(20_000, func() { big.Add(gen(rng)) })
	if allocs > 0.001 {
		t.Fatalf("warmed Stream.Add allocates %.3f times per call", allocs)
	}
}
