// Package stats provides the small statistical toolkit used by the
// experiment harness and the latency estimators: order-statistic
// summaries (Summarize), fixed-width histograms and Kendall-tau rank
// correlation for the estimator-quality ablations. Everything operates
// on plain float64 slices and copies its input — no package in the
// middleware proper depends on it, keeping the measurement code out of
// the measured code.
package stats
