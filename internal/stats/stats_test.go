package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty N = %d", s.N)
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("quantile of empty sample should be NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if got := s.Quantile(0.25); got != 2.5 {
		t.Fatalf("q25 = %v, want 2.5", got)
	}
	if s.Quantile(0) != 0 || s.Quantile(1) != 10 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if tau := KendallTau(a, a); tau != 1 {
		t.Fatalf("tau(self) = %v", tau)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if tau := KendallTau(a, rev); tau != -1 {
		t.Fatalf("tau(rev) = %v", tau)
	}
}

func TestKendallTauSymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		a, b = a[:n], b[:n]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		return KendallTau(a, b) == KendallTau(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, c)
		}
	}
	if h.Under != 1 || h.Over != 1 || h.Total() != 12 {
		t.Fatalf("outliers: under=%d over=%d total=%d", h.Under, h.Over, h.Total())
	}
}

func TestHistogramEdgeValue(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just under the upper bound
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Fatalf("edge value landed wrong: %+v", h)
	}
}

func TestHistogramInvalidBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 2)
	c.Inc("b", 1)
	c.Inc("a", 3)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zzz") != 0 {
		t.Fatal("counter arithmetic wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}
