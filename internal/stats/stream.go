package stats

import (
	"fmt"
	"math"
)

// Stream is the O(1)-memory counterpart of Summarize: an online
// mean/variance accumulator (Welford) fused with a t-digest quantile
// sketch. One Stream per metric is the unit of the open-system sweeps —
// ten million submissions cost the same few tens of KB as ten.
//
// Streams merge: Merge combines two independently fed Streams into the
// Stream of the concatenated input (moments exactly, quantiles within
// the digest's documented bounds), so per-shard accumulation composes.
type Stream struct {
	n        int64
	mean, m2 float64
	sum      float64
	min, max float64
	digest   *TDigest
}

// NewStream returns an empty Stream at the default digest compression.
func NewStream() *Stream { return NewStreamCompression(DefaultCompression) }

// NewStreamCompression returns an empty Stream with an explicit
// t-digest centroid budget.
func NewStreamCompression(compression float64) *Stream {
	return &Stream{
		min:    math.Inf(1),
		max:    math.Inf(-1),
		digest: NewTDigest(compression),
	}
}

// Add records one observation in O(1) amortized time and memory.
func (s *Stream) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.digest.Add(x)
}

// Merge folds o into s: the result is the Stream of both inputs'
// observations. Moments combine exactly (Chan et al.'s parallel
// update); quantiles combine through the digest merge. o is unchanged
// apart from a digest flush.
func (s *Stream) Merge(o *Stream) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2, s.sum = o.n, o.mean, o.m2, o.sum
		s.min, s.max = o.min, o.max
		s.digest.Merge(o.digest)
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	tot := n1 + n2
	s.m2 += o.m2 + delta*delta*n1*n2/tot
	s.mean += delta * n2 / tot
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.digest.Merge(o.digest)
}

// N returns the observation count.
func (s *Stream) N() int64 { return s.n }

// Sum returns the running sum.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Std returns the running sample standard deviation.
func (s *Stream) Std() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.m2 / float64(s.n-1)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Min and Max return the exact observed extremes (0 when empty).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-quantile from the sketch (NaN when empty).
func (s *Stream) Quantile(q float64) float64 { return s.digest.Quantile(q) }

// Digest exposes the underlying sketch (accuracy tests, RetainedBytes).
func (s *Stream) Digest() *TDigest { return s.digest }

// String renders a compact one-line summary, mirroring Summary.String.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g max=%.4g std=%.4g",
		s.n, s.Min(), s.Quantile(0.50), s.Mean(), s.Quantile(0.90), s.Max(), s.Std())
}

// Merge folds o's buckets into h. Both histograms must share identical
// bounds and bucket counts; merged counts add bin-wise, so histogram
// merging is exact, commutative and associative.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic("stats: Histogram.Merge bounds mismatch")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.samples += o.samples
}
