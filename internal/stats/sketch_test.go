package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Adversarial sample generators for the sketch-accuracy property tests.
// Each is deterministic in (rng) so failures reproduce.
var sketchDists = []struct {
	name string
	gen  func(rng *rand.Rand) float64
}{
	{"uniform", func(rng *rand.Rand) float64 { return rng.Float64() * 1000 }},
	{"bounded-pareto", func(rng *rand.Rand) float64 {
		// α=1.1 on [1, 1e5]: the heavy-tailed job-size shape of the
		// open-system generators.
		const alpha, lo, hi = 1.1, 1.0, 1e5
		u := rng.Float64()
		la, ha := math.Pow(lo, -alpha), math.Pow(hi, -alpha)
		return math.Pow(la-u*(la-ha), -1/alpha)
	}},
	{"bimodal", func(rng *rand.Rand) float64 {
		if rng.Intn(2) == 0 {
			return 10 + rng.NormFloat64()
		}
		return 1000 + 10*rng.NormFloat64()
	}},
	{"constant", func(rng *rand.Rand) float64 { return 42.5 }},
}

// rankOf returns the fraction of sorted xs that are <= v (the empirical
// CDF at v), the quantity the documented rank-error bound speaks about.
func rankOf(sorted []float64, v float64) float64 {
	i := sort.SearchFloat64s(sorted, v)
	// Count equal values as covered: the estimate sitting anywhere
	// inside a run of duplicates is rank-exact.
	j := i
	for j < len(sorted) && sorted[j] == v {
		j++
	}
	lo, hi := float64(i)/float64(len(sorted)), float64(j)/float64(len(sorted))
	return (lo + hi) / 2
}

// TestTDigestAccuracyBounds: P50/P90/P99 estimates stay within the
// documented rank-error bound of the exact order statistics, on every
// adversarial distribution.
func TestTDigestAccuracyBounds(t *testing.T) {
	const n = 200_000
	for _, dist := range sketchDists {
		dist := dist
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			td := NewDefaultTDigest()
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = dist.gen(rng)
				td.Add(xs[i])
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est := td.Quantile(q)
				if dist.name == "constant" {
					if est != 42.5 {
						t.Fatalf("q=%.2f: constant stream estimated %v, want 42.5", q, est)
					}
					continue
				}
				gotRank := rankOf(sorted, est)
				bound := td.MaxRankError(q)
				if err := math.Abs(gotRank - q); err > bound {
					t.Errorf("q=%.2f: estimate %.6g sits at rank %.5f (err %.5f > bound %.5f)",
						q, est, gotRank, err, bound)
				}
			}
			if c := td.Centroids(); float64(c) > 2*td.compression {
				t.Fatalf("%d centroids, budget %g", c, td.compression)
			}
		})
	}
}

// TestTDigestMergeCommutative: merge(a,b) and merge(b,a) produce
// byte-identical centroid state — the merge sorts the union by (mean,
// weight) and recompresses, so operand order cannot matter.
func TestTDigestMergeCommutative(t *testing.T) {
	build := func(seed int64, n int, gen func(*rand.Rand) float64) *TDigest {
		rng := rand.New(rand.NewSource(seed))
		td := NewTDigest(128)
		for i := 0; i < n; i++ {
			td.Add(gen(rng))
		}
		return td
	}
	for _, dist := range sketchDists {
		a1 := build(1, 40_000, dist.gen)
		b1 := build(2, 25_000, dist.gen)
		a2 := build(1, 40_000, dist.gen)
		b2 := build(2, 25_000, dist.gen)
		a1.Merge(b1) // a ← a∪b
		b2.Merge(a2) // b ← b∪a
		if len(a1.means) != len(b2.means) {
			t.Fatalf("%s: centroid counts differ: %d vs %d", dist.name, len(a1.means), len(b2.means))
		}
		for i := range a1.means {
			if a1.means[i] != b2.means[i] || a1.weights[i] != b2.weights[i] {
				t.Fatalf("%s: centroid %d differs: (%v,%v) vs (%v,%v)", dist.name, i,
					a1.means[i], a1.weights[i], b2.means[i], b2.weights[i])
			}
		}
		if a1.n != b2.n || a1.min != b2.min || a1.max != b2.max {
			t.Fatalf("%s: digest metadata differs", dist.name)
		}
	}
}

// TestTDigestShardedMergeMatchesSingleStream: splitting one stream over
// k independently fed digests and merging them estimates the same
// quantiles as the single-stream digest, within the documented bound
// of both. testing/quick drives the shard count and seed.
func TestTDigestShardedMergeMatchesSingleStream(t *testing.T) {
	check := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%7 + 2 // 2..8 shards
		rng := rand.New(rand.NewSource(seed))
		dist := sketchDists[int(uint64(seed)%uint64(len(sketchDists)-1))] // constant is covered elsewhere
		const n = 60_000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = dist.gen(rng)
		}
		single := NewDefaultTDigest()
		shards := make([]*TDigest, k)
		for i := range shards {
			shards[i] = NewDefaultTDigest()
		}
		for i, x := range xs {
			single.Add(x)
			shards[i%k].Add(x)
		}
		merged := NewDefaultTDigest()
		for _, sh := range shards {
			merged.Merge(sh)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			for _, td := range []*TDigest{single, merged} {
				est := td.Quantile(q)
				// A merged digest compounds two compressions; allow 2×
				// the single-stream bound.
				if math.Abs(rankOf(sorted, est)-q) > 2*td.MaxRankError(q) {
					return false
				}
			}
		}
		return merged.N() == single.N()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamMomentsMergeExact: Welford merge reproduces the
// concatenated stream's moments to floating-point accuracy, and the
// digest rides along.
func TestStreamMomentsMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all := NewStream()
	parts := []*Stream{NewStream(), NewStream(), NewStream()}
	var xs []float64
	for i := 0; i < 30_000; i++ {
		x := sketchDists[1].gen(rng) // bounded-pareto, the nasty one
		xs = append(xs, x)
		all.Add(x)
		parts[i%3].Add(x)
	}
	merged := NewStream()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != all.N() {
		t.Fatalf("N: %d vs %d", merged.N(), all.N())
	}
	relClose := func(name string, a, b float64) {
		if b == 0 && a == 0 {
			return
		}
		if math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
			t.Fatalf("%s: merged %v vs single %v", name, a, b)
		}
	}
	relClose("mean", merged.Mean(), all.Mean())
	relClose("std", merged.Std(), all.Std())
	relClose("sum", merged.Sum(), all.Sum())
	if merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Fatalf("extremes differ")
	}
	exact := Summarize(xs)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := merged.Quantile(q)
		exactQ := exact.Quantile(q)
		if exactQ != 0 && math.Abs(est-exactQ)/exactQ > 0.05 {
			t.Fatalf("q=%.2f: merged stream %.6g vs exact %.6g", q, est, exactQ)
		}
	}
}

// TestHistogramMerge: bin-wise merge is exact and panics on mismatched
// bounds.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 100, 10)
	b := NewHistogram(0, 100, 10)
	whole := NewHistogram(0, 100, 10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		x := rng.Float64()*120 - 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Total() != whole.Total() || a.Under != whole.Under || a.Over != whole.Over {
		t.Fatalf("totals differ: %d/%d/%d vs %d/%d/%d",
			a.Total(), a.Under, a.Over, whole.Total(), whole.Under, whole.Over)
	}
	for i := range a.Counts {
		if a.Counts[i] != whole.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, a.Counts[i], whole.Counts[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bounds merge did not panic")
		}
	}()
	a.Merge(NewHistogram(0, 50, 10))
}

// TestSummarizeGuard: Summarize past ExactLimit panics with a pointer
// to Stream instead of silently retaining O(n) memory.
func TestSummarizeGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize over ExactLimit did not panic")
		}
	}()
	Summarize(make([]float64, ExactLimit+1))
}
