package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics and moments for a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Std      float64
	P50, P90, P99  float64
	Sum            float64
	sorted         []float64
	sumSq          float64
	populationMode bool
}

// ExactLimit is the largest sample Summarize accepts. Summarize copies
// and sorts its input — O(n) memory per metric — which is fine for the
// bounded result sets of the closed-batch experiment families and a
// silent lie at open-system scale: a 10M-submission sweep would retain
// hundreds of MB per metric. Calls above the limit panic, pointing at
// Stream, the O(1)-memory accumulator the open sweeps use. The budget
// test on a 1M-observation Stream run enforces the other side of the
// contract.
const ExactLimit = 1 << 22

// Summarize computes a Summary over xs. It copies the input, so it is
// only for bounded result sets: above ExactLimit it panics — feed a
// Stream instead.
func Summarize(xs []float64) Summary {
	if len(xs) > ExactLimit {
		panic(fmt.Sprintf("stats: Summarize over %d samples retains O(n) memory; use stats.Stream for unbounded metrics", len(xs)))
	}
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.sorted = append([]float64(nil), xs...)
	sort.Float64s(s.sorted)
	s.Min = s.sorted[0]
	s.Max = s.sorted[len(s.sorted)-1]
	for _, x := range xs {
		s.Sum += x
		s.sumSq += x * x
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		v := (s.sumSq - s.Sum*s.Sum/float64(s.N)) / float64(s.N-1)
		if v > 0 {
			s.Std = math.Sqrt(v)
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s Summary) Quantile(q float64) float64 {
	if s.N == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[s.N-1]
	}
	pos := q * float64(s.N-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g max=%.4g std=%.4g",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.Max, s.Std)
}

// KendallTau computes the Kendall rank correlation coefficient (tau-a)
// between two equally long score vectors. It is used to grade latency
// estimators against the true RTT ranking: 1 means identical ranking,
// -1 fully reversed, 0 uncorrelated. Ties count as discordant-neutral.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: KendallTau length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Histogram is a fixed-bucket linear histogram.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	samples int
}

// NewHistogram creates a histogram of n equal buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard against FP rounding at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int { return h.samples }

// Counter is a simple named event counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the value of the named counter (zero if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns all counter names in sorted order.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
