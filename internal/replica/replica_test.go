package replica

import (
	"testing"
	"time"
)

var t0 = time.Date(2008, 4, 14, 0, 0, 0, 0, time.UTC)

func TestInitialLeaderIsReplicaZero(t *testing.T) {
	g := NewGroup(3, 1, time.Second, t0)
	if g.Leader() != 0 || g.IsLeader() {
		t.Fatalf("leader = %d", g.Leader())
	}
	if g.LiveCount() != 3 {
		t.Fatalf("live = %d", g.LiveCount())
	}
}

func TestSingleReplicaAlwaysLeads(t *testing.T) {
	g := NewGroup(1, 0, time.Second, t0)
	if !g.IsLeader() {
		t.Fatal("solo replica must lead")
	}
	if got := g.Suspect(t0.Add(time.Hour)); got != nil {
		t.Fatalf("suspected %v in a solo group", got)
	}
}

func TestSuspectPromotesNextBackup(t *testing.T) {
	g := NewGroup(3, 1, time.Second, t0)
	// Replica 2 keeps beating; replica 0 goes silent.
	g.HeartbeatFrom(2, t0.Add(2*time.Second))
	suspected := g.Suspect(t0.Add(2500 * time.Millisecond))
	if len(suspected) != 1 || suspected[0] != 0 {
		t.Fatalf("suspected = %v, want [0]", suspected)
	}
	if !g.IsLeader() {
		t.Fatal("replica 1 should lead after 0 died")
	}
}

func TestSuspectSkipsSelfAndDead(t *testing.T) {
	g := NewGroup(3, 0, time.Second, t0)
	g.MarkDead(2)
	suspected := g.Suspect(t0.Add(time.Hour))
	// Only replica 1 can be newly suspected; 2 was already dead, self exempt.
	if len(suspected) != 1 || suspected[0] != 1 {
		t.Fatalf("suspected = %v", suspected)
	}
	if g.Leader() != 0 {
		t.Fatalf("leader = %d", g.Leader())
	}
}

func TestHeartbeatResurrects(t *testing.T) {
	g := NewGroup(2, 1, time.Second, t0)
	g.Suspect(t0.Add(5 * time.Second))
	if g.Leader() != 1 {
		t.Fatal("promotion did not happen")
	}
	// A late heartbeat from 0 demotes us again (dedup makes this safe).
	g.HeartbeatFrom(0, t0.Add(6*time.Second))
	if g.Leader() != 0 {
		t.Fatal("resurrection did not restore leadership order")
	}
}

func TestMarkDeadAll(t *testing.T) {
	g := NewGroup(2, 0, time.Second, t0)
	g.MarkDead(0)
	g.MarkDead(1)
	if g.Leader() != -1 || g.LiveCount() != 0 {
		t.Fatalf("leader = %d live = %d", g.Leader(), g.LiveCount())
	}
}

func TestOutOfRangeObservationsIgnored(t *testing.T) {
	g := NewGroup(2, 0, time.Second, t0)
	g.HeartbeatFrom(-1, t0)
	g.HeartbeatFrom(99, t0)
	g.MarkDead(-5)
	if g.LiveCount() != 2 {
		t.Fatal("out-of-range ops changed state")
	}
	if g.Alive(99) || g.Alive(-1) {
		t.Fatal("alive out of range")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGroup(0, 0, time.Second, t0) },
		func() { NewGroup(2, 2, time.Second, t0) },
		func() { NewGroup(2, -1, time.Second, t0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEpochFencesStaleHeartbeats(t *testing.T) {
	g := NewMonitor(2, time.Second, t0)
	if g.Epoch(1) != 0 {
		t.Fatalf("fresh epoch = %d", g.Epoch(1))
	}
	// A probe launched now carries epoch 0; the replica dies before the
	// answer lands.
	probeEpoch := g.Epoch(1)
	g.MarkDead(1)
	if g.Epoch(1) != 1 {
		t.Fatalf("epoch after MarkDead = %d, want 1", g.Epoch(1))
	}
	g.HeartbeatAt(1, probeEpoch, t0.Add(time.Second))
	if g.Alive(1) {
		t.Fatal("stale-epoch heartbeat resurrected a written-off replica")
	}
	// A current-epoch heartbeat (fresh incarnation confirmed alive) does
	// land.
	g.HeartbeatAt(1, g.Epoch(1), t0.Add(2*time.Second))
	if !g.Alive(1) {
		t.Fatal("current-epoch heartbeat was dropped")
	}
}

func TestEpochAdvancesOnSuspect(t *testing.T) {
	g := NewMonitor(2, time.Second, t0)
	g.Suspect(t0.Add(5 * time.Second)) // both stale
	if g.Epoch(0) != 1 || g.Epoch(1) != 1 {
		t.Fatalf("epochs after Suspect = %d,%d, want 1,1", g.Epoch(0), g.Epoch(1))
	}
	// Re-declaring an already-dead member must not advance the epoch
	// (one death, one fence).
	g.MarkDead(0)
	g.Suspect(t0.Add(10 * time.Second))
	if g.Epoch(0) != 1 {
		t.Fatalf("epoch re-advanced on an already-dead member: %d", g.Epoch(0))
	}
	if g.Epoch(99) != 0 {
		t.Fatal("out-of-range epoch must read 0")
	}
}
