// Package replica implements the replica-group state machine behind
// P2P-MPI's fault tolerance (§3.2 and [11]): each MPI rank runs r
// copies on distinct hosts; one copy (the leader, lowest live replica
// index) transmits messages while backups log them, and a
// heartbeat-based failure detector promotes the next backup when the
// leader goes silent.
//
// The package is pure state: no I/O, no clocks of its own. Callers
// feed it heartbeat observations and timestamps and ask who leads.
// Two vantage points share the one Group type:
//
//   - NewGroup builds the member view a running process keeps of its
//     own rank's replica set (self is exempt from suspicion);
//   - NewMonitor builds the observer view the submitter's mid-run
//     failure detector keeps, one per rank: probe answers become
//     HeartbeatFrom calls, Suspect declares stale replicas dead, and
//     Leader names the surviving copy whose output stands — the
//     failover accounting of the churn experiments.
package replica
