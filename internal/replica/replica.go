package replica

import "time"

// Group tracks liveness and leadership inside one rank's replica set.
type Group struct {
	r           int // replication degree
	self        int // this process's replica index
	failTimeout time.Duration

	alive  []bool
	lastHB []time.Time
	// epoch counts death declarations per replica — an incarnation
	// fence. Heartbeat observations solicited before a declaration
	// carry the old epoch and HeartbeatAt rejects them, so a late or
	// duplicated answer from a pre-failover incarnation cannot
	// resurrect a replica the detector already wrote off.
	epoch []uint64
}

// NewGroup creates the state machine for a group of r replicas, of which
// this process is replica self. All members start alive; heartbeat
// staleness is judged against failTimeout.
func NewGroup(r, self int, failTimeout time.Duration, now time.Time) *Group {
	if self < 0 || self >= r {
		panic("replica: self index out of range")
	}
	return newGroup(r, self, failTimeout, now)
}

// NewMonitor creates an observer-side state machine for a group of r
// replicas: the caller is not a member (Self returns -1), so no replica
// is exempt from suspicion. The submitter's mid-run failure detector
// uses one monitor per MPI rank to track which replicas are still live
// and whether a backup was promoted (the leader moved past index 0).
func NewMonitor(r int, failTimeout time.Duration, now time.Time) *Group {
	return newGroup(r, -1, failTimeout, now)
}

// newGroup seeds the all-alive initial state shared by both vantage
// points; self = -1 builds an observer exempting no member.
func newGroup(r, self int, failTimeout time.Duration, now time.Time) *Group {
	if r < 1 {
		panic("replica: degree must be >= 1")
	}
	g := &Group{
		r:           r,
		self:        self,
		failTimeout: failTimeout,
		alive:       make([]bool, r),
		lastHB:      make([]time.Time, r),
		epoch:       make([]uint64, r),
	}
	for i := range g.alive {
		g.alive[i] = true
		g.lastHB[i] = now
	}
	return g
}

// Self returns this process's replica index (-1 for a monitor).
func (g *Group) Self() int { return g.self }

// Degree returns the replication degree r.
func (g *Group) Degree() int { return g.r }

// HeartbeatFrom records a heartbeat observation from a replica. A
// heartbeat resurrects a falsely suspected member (the detector is not
// perfect; transmission-level dedup keeps that safe). Callers that
// solicit heartbeats asynchronously should capture Epoch before the
// probe and feed the answer through HeartbeatAt instead, so answers
// from a pre-failover incarnation are fenced out.
func (g *Group) HeartbeatFrom(idx int, now time.Time) {
	if idx < 0 || idx >= g.r {
		return
	}
	g.alive[idx] = true
	g.lastHB[idx] = now
}

// Epoch returns a replica's current incarnation number: it advances on
// every death declaration (MarkDead, Suspect).
func (g *Group) Epoch(idx int) uint64 {
	if idx < 0 || idx >= g.r {
		return 0
	}
	return g.epoch[idx]
}

// HeartbeatAt records a heartbeat solicited while the replica was at
// the given epoch. A stale epoch means the probe predates a death
// declaration — the answer may come from the failed incarnation (a
// late or duplicated JobPong), so it is dropped rather than allowed to
// resurrect the member.
func (g *Group) HeartbeatAt(idx int, epoch uint64, now time.Time) {
	if idx < 0 || idx >= g.r || g.epoch[idx] != epoch {
		return
	}
	g.alive[idx] = true
	g.lastHB[idx] = now
}

// MarkDead declares a replica permanently failed (e.g. its host was
// reported down by the middleware).
func (g *Group) MarkDead(idx int) {
	if idx >= 0 && idx < g.r && g.alive[idx] {
		g.alive[idx] = false
		g.epoch[idx]++
	}
}

// Suspect marks every member whose heartbeat is older than failTimeout
// as dead, and returns the indices it newly suspected. Self is exempt.
func (g *Group) Suspect(now time.Time) []int {
	var suspected []int
	cutoff := now.Add(-g.failTimeout)
	for i := 0; i < g.r; i++ {
		if i == g.self || !g.alive[i] {
			continue
		}
		if g.lastHB[i].Before(cutoff) {
			g.alive[i] = false
			g.epoch[i]++
			suspected = append(suspected, i)
		}
	}
	return suspected
}

// Leader returns the lowest live replica index, or -1 when the whole
// group is considered dead (cannot happen for self-including views).
func (g *Group) Leader() int {
	for i := 0; i < g.r; i++ {
		if g.alive[i] {
			return i
		}
	}
	return -1
}

// IsLeader reports whether this process currently leads its group.
func (g *Group) IsLeader() bool { return g.Leader() == g.self }

// Alive reports a replica's current liveness.
func (g *Group) Alive(idx int) bool {
	return idx >= 0 && idx < g.r && g.alive[idx]
}

// LiveCount returns the number of live replicas.
func (g *Group) LiveCount() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}
