package simnet

import (
	"fmt"
	"testing"
	"time"

	"p2pmpi/internal/grid"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// testNet builds a two-site network with deterministic (zero) jitter.
func testNet(t *testing.T, cfg Config) (*vtime.Scheduler, *Net) {
	t.Helper()
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	topo := &StaticTopology{
		HostSite: map[string]string{
			"a1": "east", "a2": "east",
			"b1": "west", "b2": "west",
		},
		DefLat: 5 * time.Millisecond,
	}
	return s, New(s, topo, cfg)
}

func zeroJitter() Config {
	return Config{Seed: 1, JitterFrac: 0, JitterFloor: 0, NICBps: 1_000_000_000}
}

func TestListenDialSendRecv(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var got string
	s.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:100")
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		m, err := c.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = string(m.Payload)
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond) // let the server listen first
		c, err := n.Node("a1").Dial("b1:100")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(transport.Message{Payload: []byte("hello grid")}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	s.Wait()
	if got != "hello grid" {
		t.Fatalf("got %q", got)
	}
}

func TestDialObservesRTT(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var dialTook time.Duration
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		l.Accept()
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		start := s.Elapsed()
		if _, err := n.Node("a1").Dial("b1:100"); err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		dialTook = s.Elapsed() - start
	})
	s.Wait()
	// One-way is 5ms; a handshake is at least one RTT = 10ms.
	if dialTook < 10*time.Millisecond || dialTook > 12*time.Millisecond {
		t.Fatalf("dial took %v, want ≈10ms", dialTook)
	}
}

func TestDialUnreachable(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var err1, err2 error
	s.Go("client", func() {
		_, err1 = n.Node("a1").Dial("b1:999") // no listener
		_, err2 = n.Node("a1").Dial("nowhere:1")
	})
	s.Wait()
	if err1 != transport.ErrUnreachable {
		t.Fatalf("no-listener dial err = %v", err1)
	}
	if err2 != transport.ErrUnreachable {
		t.Fatalf("unknown-host dial err = %v", err2)
	}
}

func TestMessageLatency(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var elapsed time.Duration
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		c, _ := l.Accept()
		sent, _ := c.Recv()
		_ = sent
		elapsed = s.Elapsed()
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, _ := n.Node("a1").Dial("b1:100")
		sendAt := s.Elapsed()
		c.Send(transport.Message{Payload: []byte("x")})
		_ = sendAt
	})
	s.Wait()
	// 1ms listen delay + 10ms handshake + 5ms one-way = 16ms (+ tiny
	// serialization time).
	if elapsed < 16*time.Millisecond || elapsed > 17*time.Millisecond {
		t.Fatalf("message arrived at %v, want ≈16ms", elapsed)
	}
}

func TestFIFOPerConnection(t *testing.T) {
	s, n := testNet(t, Config{Seed: 7, JitterFrac: 0.5, JitterFloor: time.Millisecond, NICBps: 1e9})
	const msgs = 200
	var got []int
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		c, _ := l.Accept()
		for i := 0; i < msgs; i++ {
			m, err := c.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, int(m.Payload[0])<<8|int(m.Payload[1]))
		}
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, _ := n.Node("a1").Dial("b1:100")
		for i := 0; i < msgs; i++ {
			c.Send(transport.Message{Payload: []byte{byte(i >> 8), byte(i)}})
		}
	})
	s.Wait()
	if len(got) != msgs {
		t.Fatalf("received %d/%d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d (jitter must not break per-conn FIFO)", i, v)
		}
	}
}

func TestBandwidthShapesBigTransfer(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var arrival time.Duration
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		c, _ := l.Accept()
		c.Recv()
		arrival = s.Elapsed()
	})
	var sendStart time.Duration
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, _ := n.Node("a1").Dial("b1:100")
		sendStart = s.Elapsed()
		// 100 MB virtual payload over a 1 Gb/s NIC ≈ 0.8 s serialization.
		c.Send(transport.Message{Virtual: 100 << 20})
	})
	s.Wait()
	transfer := arrival - sendStart
	if transfer < 800*time.Millisecond || transfer > 900*time.Millisecond {
		t.Fatalf("100MB over 1Gb/s took %v, want ≈839ms", transfer)
	}
}

func TestSharedPipeContention(t *testing.T) {
	s, n := testNet(t, Config{Seed: 1, NICBps: 10_000_000_000}) // NICs faster than pipe
	n.cfg.JitterFrac, n.cfg.JitterFloor = 0, 0
	topo := n.topo.(*StaticTopology)
	topo.Bps = 1_000_000_000 // 1 Gb/s shared east-west pipe

	done := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		src := fmt.Sprintf("a%d", i+1)
		port := fmt.Sprintf("b1:%d", 200+i)
		s.Go("server"+src, func() {
			l, _ := n.Node("b1").Listen(port)
			c, _ := l.Accept()
			c.Recv()
			done[i] = s.Elapsed()
		})
		s.Go("client"+src, func() {
			s.Sleep(time.Millisecond)
			c, _ := n.Node(src).Dial(port)
			c.Send(transport.Message{Virtual: 50 << 20}) // 50 MB each
		})
	}
	s.Wait()
	// Two 50MB flows over one shared 1Gb/s pipe: the second finishes
	// after ≈0.8s of combined serialization, not 0.4s.
	last := done[0]
	if done[1] > last {
		last = done[1]
	}
	if last < 790*time.Millisecond {
		t.Fatalf("contended flows finished at %v, too fast for a shared pipe", last)
	}
}

func TestCloseDrainsInFlight(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var got int
	var finalErr error
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		c, _ := l.Accept()
		for {
			_, err := c.Recv()
			if err != nil {
				finalErr = err
				return
			}
			got++
		}
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, _ := n.Node("a1").Dial("b1:100")
		for i := 0; i < 5; i++ {
			c.Send(transport.Message{Payload: []byte{byte(i)}})
		}
		c.Close() // immediately after the sends
	})
	s.Wait()
	if got != 5 {
		t.Fatalf("receiver drained %d/5 before close", got)
	}
	if finalErr != transport.ErrClosed {
		t.Fatalf("final err = %v, want ErrClosed", finalErr)
	}
}

func TestFailHostDropsTraffic(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var recvErr error
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		c, _ := l.Accept()
		_, recvErr = c.RecvTimeout(100 * time.Millisecond)
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, _ := n.Node("a1").Dial("b1:100")
		s.Sleep(time.Millisecond)
		n.FailHost("a1")
		c.Send(transport.Message{Payload: []byte("lost")})
	})
	s.Wait()
	if recvErr != transport.ErrTimeout {
		t.Fatalf("recv err = %v, want timeout (message must be dropped)", recvErr)
	}
}

func TestDialToFailedHost(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	var err error
	s.Go("client", func() {
		n.FailHost("b1")
		_, err = n.Node("a1").Dial("b1:100")
	})
	s.Wait()
	if err != transport.ErrUnreachable {
		t.Fatalf("dial err = %v, want unreachable", err)
	}
}

func TestRequestReplyHelper(t *testing.T) {
	s, n := testNet(t, zeroJitter())
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:100")
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.Go("handler", func() {
				m, err := c.Recv()
				if err == nil {
					c.Send(transport.Message{Payload: append([]byte("re:"), m.Payload...)})
				}
			})
		}
	})
	var reply transport.Message
	var err error
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		reply, err = transport.RequestReply(n.Node("a1"), "b1:100",
			transport.Message{Payload: []byte("ping")}, time.Second)
	})
	s.Wait()
	if err != nil || string(reply.Payload) != "re:ping" {
		t.Fatalf("reply = %q, err = %v", reply.Payload, err)
	}
}

func TestGridTopologyLatencies(t *testing.T) {
	g := grid.Grid5000()
	topo := NewGridTopology(g)
	topo.AddHost("frontal.nancy", grid.Nancy)

	if got := topo.Site("grelon-1.nancy"); got != grid.Nancy {
		t.Fatalf("site of grelon-1 = %q", got)
	}
	if got := topo.Site("frontal.nancy"); got != grid.Nancy {
		t.Fatalf("extra host site = %q", got)
	}
	if got := topo.Site("unknown-host"); got != "" {
		t.Fatalf("unknown host mapped to %q", got)
	}
	oneWay := topo.SiteLatency(grid.Nancy, grid.Sophia)
	if oneWay != 17167*time.Microsecond/2 {
		t.Fatalf("nancy-sophia one way = %v", oneWay)
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		s := vtime.New()
		defer s.Shutdown()
		topo := &StaticTopology{
			HostSite: map[string]string{"a1": "east", "b1": "west"},
			DefLat:   5 * time.Millisecond,
		}
		n := New(s, topo, DefaultConfig(42))
		var arrivals []time.Duration
		s.Go("server", func() {
			l, _ := n.Node("b1").Listen("b1:1")
			c, _ := l.Accept()
			for i := 0; i < 20; i++ {
				if _, err := c.Recv(); err != nil {
					return
				}
				arrivals = append(arrivals, s.Elapsed())
			}
		})
		s.Go("client", func() {
			s.Sleep(time.Millisecond)
			c, _ := n.Node("a1").Dial("b1:1")
			for i := 0; i < 20; i++ {
				c.Send(transport.Message{Payload: []byte{1}})
				s.Sleep(time.Millisecond)
			}
		})
		s.Wait()
		return arrivals
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lost messages: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter diverged at msg %d: %v vs %v", i, a[i], b[i])
		}
	}
}
