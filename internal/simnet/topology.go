package simnet

import (
	"time"

	"p2pmpi/internal/grid"
)

// GridTopology adapts a grid.Grid to the simnet Topology interface and
// lets extra non-compute hosts (site frontends, the submitter) be pinned
// to sites.
type GridTopology struct {
	g     *grid.Grid
	extra map[string]string // hostID -> site
}

// NewGridTopology wraps g. Hosts from g resolve through their host table.
func NewGridTopology(g *grid.Grid) *GridTopology {
	return &GridTopology{g: g, extra: make(map[string]string)}
}

// AddHost pins an additional host ID (e.g. "frontal.nancy") to a site.
func (t *GridTopology) AddHost(id, site string) { t.extra[id] = site }

// Site maps a host to its site.
func (t *GridTopology) Site(host string) string {
	if h := t.g.HostByID(host); h != nil {
		return h.Site
	}
	return t.extra[host]
}

// SiteLatency returns the one-way latency: half the site RTT.
func (t *GridTopology) SiteLatency(a, b string) time.Duration {
	return t.g.SiteRTT(a, b) / 2
}

// SiteBps returns the shared inter-site pipe capacity.
func (t *GridTopology) SiteBps(a, b string) int64 { return t.g.SiteBandwidth(a, b) }

var _ Topology = (*GridTopology)(nil)

// StaticTopology is a flat test topology: every host is in the site named
// by the map value, with a fixed latency matrix.
type StaticTopology struct {
	HostSite map[string]string
	Lat      map[[2]string]time.Duration // site pair (sorted) -> one way
	DefLat   time.Duration
	Bps      int64
}

// Site implements Topology.
func (t *StaticTopology) Site(host string) string { return t.HostSite[host] }

// SiteLatency implements Topology.
func (t *StaticTopology) SiteLatency(a, b string) time.Duration {
	if a > b {
		a, b = b, a
	}
	if d, ok := t.Lat[[2]string{a, b}]; ok {
		return d
	}
	if a == b {
		return t.DefLat / 10
	}
	return t.DefLat
}

// SiteBps implements Topology.
func (t *StaticTopology) SiteBps(a, b string) int64 {
	if t.Bps > 0 {
		return t.Bps
	}
	return 10_000_000_000
}

var _ Topology = (*StaticTopology)(nil)
