package simnet

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Sharded-mode cross-shard traffic.
//
// Same-shard traffic takes the exact sequential code path (plan +
// ScheduleArg on the shard's own heap). A message whose endpoints live
// on different shards cannot touch the receiving shard's state from the
// sender's event loop, so its network plan is split in two:
//
//   - at send time (sender's shard): reserve the sender's NIC-out, draw
//     the flow's jitter, and append an xmsg to the shard's outbox;
//   - at the barrier (driver goroutine, all shards parked): sort every
//     outbox entry by (send time, sender host rank, emission seq),
//     replay the backbone-pipe and receiver-NIC reservations in that
//     global order, and schedule the delivery event on the receiving
//     shard's heap.
//
// The merge order is a superset of the sequential execution order for
// the cross traffic, so pipe and NIC frontiers advance identically; the
// rank tiebreak reproduces the sequential boot spawn order for the
// (measure-zero outside vtime 0, overwhelming at vtime 0) case of equal
// send timestamps. Each crossing message also carries the sender's
// post-draw jitter-stream state, which the receiver adopts on delivery —
// for the middleware's strictly alternating request/reply conns this
// reproduces the sequential shared-stream draw order exactly.
//
// The conservative lookahead guarantees every merged arrival lands at or
// after the shards' committed horizon; VTIME_CHECK mode asserts it.

// ShardConfig describes the static world layout NewSharded freezes.
type ShardConfig struct {
	// SiteShard maps every site to its shard index. All hosts of a site
	// share a shard so LAN traffic never crosses.
	SiteShard map[string]int
	// Hosts lists every host ID in deterministic boot order. The index
	// becomes the host's global rank — the merge tiebreak that
	// reproduces sequential ordering for same-timestamp sends. Hosts
	// not listed here are unreachable in sharded mode.
	Hosts []string
	// Sites, when non-empty, gives each host's site parallel to Hosts,
	// sparing NewSharded one topo.Site lookup per host. Callers that
	// already hold the sites (the exp harness walks grid.Host structs)
	// pass them so a million-host world never builds the grid's
	// host-by-ID index just to answer questions it already knows.
	Sites []string
	// Check enables the lookahead-safety assertion: a cross-shard
	// delivery computed to arrive before the receiving shard's committed
	// horizon panics instead of silently rewriting history. Enabled by
	// exp worlds when VTIME_CHECK=1.
	Check bool
	// LookaheadOverride, when positive, replaces the domain's lookahead
	// in diagnostics. Tests use it to describe the (possibly adversarial)
	// bound in violation messages.
	LookaheadOverride time.Duration
}

// NewSharded creates a simulated network spread over the shards of a
// vtime.Domain. The domain must have been built with a lookahead no
// larger than the minimum cross-shard SiteLatency of topo, or the
// conservative window protocol is unsound (enable ShardConfig.Check to
// assert it). The network registers its merge as a domain barrier
// callback.
func NewSharded(dom *vtime.Domain, topo Topology, cfg Config, sc ShardConfig) *Net {
	if cfg.NICBps <= 0 {
		cfg.NICBps = 1_000_000_000
	}
	ns := dom.Shards()
	n := &Net{
		topo:    topo,
		cfg:     cfg,
		sharded: ns > 1,
		check:   sc.Check,
		sh:      make([]*netShard, ns),
		hosts:   make(map[string]*netHost, len(sc.Hosts)),
		pipes:   make(map[sitePair]*serializer),
		winID:   1,
	}
	for i := range n.sh {
		n.sh[i] = &netShard{
			idx:     i,
			rt:      dom.Shard(i),
			flowSeq: make(map[flowKey]uint64),
		}
	}
	// Freeze the host table in rank order. One slab holds every netHost:
	// at a million hosts the per-object allocator overhead alone is tens
	// of MB, and the table never grows or shrinks after this loop.
	if len(sc.Sites) > 0 && len(sc.Sites) != len(sc.Hosts) {
		panic(fmt.Sprintf("simnet: %d sites for %d sharded hosts", len(sc.Sites), len(sc.Hosts)))
	}
	slab := make([]netHost, len(sc.Hosts))
	for rank, id := range sc.Hosts {
		var site string
		if len(sc.Sites) > 0 {
			site = sc.Sites[rank]
		} else {
			site = n.topo.Site(id)
		}
		if site == "" {
			panic(fmt.Sprintf("simnet: sharded host %q has no site", id))
		}
		shard, ok := sc.SiteShard[site]
		if !ok {
			panic(fmt.Sprintf("simnet: site %q of host %q has no shard", site, id))
		}
		h := &slab[rank]
		*h = netHost{
			id:       id,
			site:     site,
			sh:       n.sh[shard],
			rank:     rank,
			nicOut:   serializer{bps: cfg.NICBps},
			nicIn:    serializer{bps: cfg.NICBps},
			nextPort: 20000,
		}
		n.hosts[id] = h
	}
	n.nextRank = len(sc.Hosts)
	// Freeze the pipe table: lazy creation would race between shard
	// loops. Site order is irrelevant (pipes carry no creation-order
	// state) but sorted anyway for reproducible iteration in debugging.
	sites := make([]string, 0, len(sc.SiteShard))
	for s := range sc.SiteShard {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for i, a := range sites {
		for _, b := range sites[i:] {
			key := pipeKey(a, b)
			if n.pipes[key] == nil {
				n.pipes[key] = &serializer{bps: n.topo.SiteBps(a, b)}
			}
		}
	}
	if n.sharded {
		dom.OnBarrier(n.mergeCross)
	}
	return n
}

// xmsg kinds: the four ways traffic crosses a shard boundary.
const (
	xSend   uint8 = iota // established-conn data frame
	xDial                // SYN of a new connection
	xAccept              // handshake success travelling back
	xRefuse              // handshake RST travelling back
	xFin                 // close marker trailing the data
)

// xmsg is one cross-shard emission, parked in the sender shard's outbox
// until the barrier merge.
type xmsg struct {
	kind    uint8
	at      time.Duration // emission (send) time
	rank    int           // emitting host's global rank
	seq     uint64        // per-shard emission sequence
	size    int64         // wire size including frame overhead
	partial time.Duration // sender-side frontier: NIC-out finish time
	jit     time.Duration // jitter, drawn at emission from the flow stream
	state   uint64        // flow-stream state after the sender's draws

	// Fault outcomes, drawn at emission (xSend only). A dropped frame
	// still crosses so the merge replays its reservations and FIFO
	// clamp; only its delivery is suppressed (determinism rule 2,
	// faults.go). A duplicated frame schedules a second delivery
	// dupDelay after the first, outside the FIFO clamp.
	drop     bool
	dup      bool
	dupDelay time.Duration

	c *conn // xSend/xFin: the *sender's* endpoint

	// handshake fields
	from, to *netHost
	port     string
	local    string
	resultq  *vtime.Queue[dialResult]
	client   *conn // xAccept: the dialer's endpoint to hand back

	msg transport.Message // xSend payload (pool-less until retargeted)
}

// emit appends x to the shard's outbox, stamping the emission sequence.
func (sh *netShard) emit(x xmsg) {
	sh.seq++
	x.seq = sh.seq
	sh.out = append(sh.out, x)
}

// mergeCross is the barrier drain: it replays every cross-shard emission
// of the closing window in global (time, rank, seq) order against the
// shared serializers and schedules the resulting events on the receiving
// shards. It runs on the domain driver goroutine with all shards parked
// at the committed horizon, so it may touch any shard's state.
func (n *Net) mergeCross() {
	defer n.closeWindow()
	buf := n.xscratch[:0]
	for _, sh := range n.sh {
		buf = append(buf, sh.out...)
		clearX(sh.out)
		sh.out = sh.out[:0]
	}
	if len(buf) == 0 {
		n.xscratch = buf
		return
	}
	// slices.SortFunc, unlike sort.Slice, sorts without boxing the
	// slice or allocating a closure header — the merge is on the
	// zero-steady-state-allocation window path. (at, rank, seq) is a
	// total order — seq is unique per shard and a rank maps to exactly
	// one shard — so the unstable sort is still deterministic.
	slices.SortFunc(buf, func(a, b xmsg) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.rank != b.rank {
			return a.rank - b.rank
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	for i := range buf {
		n.applyCross(&buf[i])
	}
	clearX(buf)
	n.xscratch = buf[:0]
}

// clearX zeroes the entries so the scratch slice pins no conns/payloads.
func clearX(s []xmsg) {
	for i := range s {
		s[i] = xmsg{}
	}
}

// reserveCross computes the finish time of one cross-shard reservation
// on a receiver NIC as if it had been made in global (start, rank)
// order — the order the sequential run reserves in. It replays the
// window's logged local reservations up to the cross entry's sort
// position against a fresh frontier that starts at the window-start
// value, then slots the cross reservation in. Successive cross calls on
// one serializer arrive already sorted (the merge processes the global
// (at, rank, seq) order), so the cursor only moves forward.
func (n *Net) reserveCross(s *serializer, start time.Duration, rank int, size int64) time.Duration {
	if s.mergeID != n.winID {
		s.mergeID = n.winID
		if s.winID != n.winID { // no local reservations this window
			s.winID = n.winID
			s.winBusy = s.busy
			s.log = s.log[:0]
		}
		s.pos = 0
		s.xbusy = s.winBusy
		n.merged = append(n.merged, s)
	}
	s.replayLog(start, rank)
	if s.xbusy < start {
		s.xbusy = start
	}
	s.xbusy += s.cost(size)
	return s.xbusy
}

// replayLog advances the merge cursor through local log entries that
// sort before (start, rank), folding them into the replay frontier. A
// recomputed finish above the recorded one means a cross reservation
// queued ahead of a local message whose delivery already used the
// optimistic value — the frontier keeps the exact (recomputed) value so
// everything after it stays in sequential order; the delivered message
// itself cannot be recalled (its drift is bounded by the overlap).
func (s *serializer) replayLog(start time.Duration, rank int) {
	for s.pos < len(s.log) {
		e := &s.log[s.pos]
		if e.start > start || (e.start == start && e.rank > rank) {
			break
		}
		f := s.xbusy
		if f < e.start {
			f = e.start
		}
		f += s.cost(e.size)
		if f < e.finish {
			f = e.finish
		}
		s.xbusy = f
		s.pos++
	}
}

// closeWindow settles every serializer the merge touched — remaining
// local log entries replay into the frontier, which becomes the busy
// value the next window's local reservations build on — and opens the
// next window. Registered to run at the end of every barrier merge.
func (n *Net) closeWindow() {
	for i, s := range n.merged {
		s.replayLog(1<<62, 1<<31)
		s.busy = s.xbusy
		n.merged[i] = nil
	}
	n.merged = n.merged[:0]
	n.winID++
}

// horizonCheck panics when a cross-shard event would land in the
// receiving shard's past — the lookahead-safety invariant. now is the
// committed horizon (every shard clock equals it during a barrier).
func (n *Net) horizonCheck(kind string, at, arrival, now time.Duration) {
	if !n.check || arrival >= now {
		return
	}
	panic(fmt.Sprintf(
		"simnet: lookahead violation: cross-shard %s sent at %s arrives at %s, before the committed horizon %s (window too wide for the real minimum latency)",
		kind, at, arrival, now))
}

// applyCross replays one emission.
func (n *Net) applyCross(x *xmsg) {
	switch x.kind {
	case xSend:
		c := x.c
		peer := c.peer
		dst := peer.sh
		finish := x.partial
		if f := c.pipe.reserve(x.at, x.size); f > finish {
			finish = f
		}
		if f := n.reserveCross(&c.rh.nicIn, x.at, x.rank, x.size); f > finish {
			finish = f
		}
		arrival := finish + c.base + x.jit
		if arrival <= c.lastArrival {
			arrival = c.lastArrival + time.Nanosecond
		}
		c.lastArrival = arrival
		if x.drop {
			return // reservations and the FIFO clamp stand; delivery vanishes
		}
		now := dst.rt.Elapsed()
		n.horizonCheck("frame", x.at, arrival, now)
		d := dst.getDelivery()
		d.peer = peer
		d.msg = transport.Pooled(x.msg.Payload, x.msg.Virtual, &dst.bufPool)
		d.state = x.state
		d.sync = true
		dst.rt.ScheduleArg(arrival-now, fireDelivery, d)
		if x.dup {
			// The duplicate gets its own pooled copy (per-delivery
			// Release) on the receiving shard and does not sync the flow
			// stream — by the time it lands, later frames may already
			// have advanced the receiver's state past x.state.
			var cp []byte
			if len(x.msg.Payload) > 0 {
				cp = dst.bufPool.Get(len(x.msg.Payload))
				copy(cp, x.msg.Payload)
			}
			d2 := dst.getDelivery()
			d2.peer = peer
			d2.msg = transport.Pooled(cp, x.msg.Virtual, &dst.bufPool)
			dst.rt.ScheduleArg(arrival+x.dupDelay-now, fireDelivery, d2)
		}

	case xDial:
		from, to := x.from, x.to
		dst := to.sh
		pipe := n.pipe(from.site, to.site)
		base := n.topo.SiteLatency(from.site, to.site)
		finish := x.partial
		if f := pipe.reserve(x.at, x.size); f > finish {
			finish = f
		}
		if f := n.reserveCross(&to.nicIn, x.at, x.rank, x.size); f > finish {
			finish = f
		}
		syn := finish + base + x.jit
		now := dst.rt.Elapsed()
		n.horizonCheck("SYN", x.at, syn, now)
		dst.rt.ScheduleArg(syn-now, fireCrossSYN, &xdialEvt{
			n: n, from: from, to: to,
			port: x.port, local: x.local,
			resultq: x.resultq, state: x.state,
		})

	case xAccept, xRefuse:
		// Handshake reply travelling server→dialer.
		from, to := x.from, x.to // as in the original dial: from = dialer
		dst := from.sh
		pipe := n.pipe(to.site, from.site)
		base := n.topo.SiteLatency(to.site, from.site)
		finish := x.partial
		if f := pipe.reserve(x.at, x.size); f > finish {
			finish = f
		}
		if f := n.reserveCross(&from.nicIn, x.at, x.rank, x.size); f > finish {
			finish = f
		}
		arrival := finish + base + x.jit
		now := dst.rt.Elapsed()
		n.horizonCheck("handshake reply", x.at, arrival, now)
		ev := &xresEvt{resultq: x.resultq, state: x.state}
		if x.kind == xAccept {
			ev.c = x.client
		}
		dst.rt.ScheduleArg(arrival-now, fireCrossDialResult, ev)

	case xFin:
		c := x.c
		peer := c.peer
		dst := peer.sh
		fin := c.lastArrival
		if e := x.at + c.base; e > fin {
			fin = e
		}
		now := dst.rt.Elapsed()
		n.horizonCheck("FIN", x.at, fin, now)
		dst.rt.ScheduleArg(fin-now, fireCrossFin, peer)
	}
}

// xdialEvt carries a cross-shard SYN from the merge to the destination
// shard's event loop.
type xdialEvt struct {
	n        *Net
	from, to *netHost
	port     string
	local    string
	resultq  *vtime.Queue[dialResult]
	state    uint64
}

// fireCrossSYN runs on the destination shard when a cross-shard SYN
// arrives: it accepts or refuses exactly like the sequential dial
// callback, then emits the handshake reply back across the boundary.
func fireCrossSYN(a any) {
	e := a.(*xdialEvt)
	n, from, to := e.n, e.from, e.to
	sh := to.sh
	now := sh.rt.Elapsed()
	src := &flowSource{state: e.state}
	rng := rand.New(src)
	back := n.topo.SiteLatency(to.site, from.site)
	l := to.listener(e.port)
	if to.down || l == nil || l.closed {
		partial := to.nicOut.reserve(now, 64)
		jit := n.jitter(rng, back)
		sh.emit(xmsg{
			kind: xRefuse, at: now, rank: to.rank, size: 64,
			partial: partial, jit: jit, state: src.state,
			from: from, to: to, resultq: e.resultq,
		})
		return
	}
	pair := newConnPair(n, from, to, e.local, l.addr, rng, src)
	partial := to.nicOut.reserve(now, 64)
	jit := n.jitter(rng, back)
	l.deliver(pair.server)
	sh.emit(xmsg{
		kind: xAccept, at: now, rank: to.rank, size: 64,
		partial: partial, jit: jit, state: src.state,
		from: from, to: to, resultq: e.resultq, client: pair.client,
	})
}

// xresEvt carries a handshake reply from the merge to the dialer shard.
type xresEvt struct {
	resultq *vtime.Queue[dialResult]
	c       *conn // nil on refusal
	state   uint64
}

// fireCrossDialResult completes a cross-shard Dial on the dialer's
// shard, seeding the client endpoint's flow stream with the state the
// reply carried.
func fireCrossDialResult(a any) {
	e := a.(*xresEvt)
	if e.c == nil {
		e.resultq.Push(dialResult{err: transport.ErrUnreachable})
		return
	}
	e.c.src.state = e.state
	e.resultq.Push(dialResult{c: e.c})
}

// fireCrossFin closes the receiving endpoint when a cross-shard FIN
// arrives: pending Recvs drain buffered frames then see ErrClosed, and
// the endpoint's own sends start dropping into the void (the mirror of
// the sequential peer.closed check, shifted by one network trip — the
// earliest a remote shard can causally learn of the close).
func fireCrossFin(a any) {
	peer := a.(*conn)
	peer.peerClosed = true
	peer.inbox.Close()
}
