package simnet

import (
	"testing"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// TestMessageDeliveryZeroAllocSteadyState enforces the zero-allocation
// contract of the per-message path: once the pools are warm (delivery
// carriers, payload buffers, queue waiters, the scheduler's event slab)
// a send + receive + release cycle must not allocate. AllocsPerRun
// counts process-wide mallocs, so allocations on the scheduler's actor
// goroutines are included.
func TestMessageDeliveryZeroAllocSteadyState(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	topo := &StaticTopology{
		HostSite: map[string]string{"a1": "east", "b1": "west"},
		DefLat:   5 * time.Millisecond,
	}
	n := New(s, topo, DefaultConfig(1))

	s.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:1")
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			m.Release() // hand the payload copy back to the pool
		}
	})

	var client transport.Conn
	s.Go("client", func() {
		var err error
		client, err = n.Node("a1").Dial("b1:1")
		if err != nil {
			t.Error(err)
		}
	})
	s.Wait()
	if client == nil {
		t.Fatal("dial failed")
	}

	payload := []byte("0123456789abcdef")
	step := func() {
		if err := client.Send(transport.Message{Payload: payload}); err != nil {
			t.Error(err)
		}
		s.Wait() // delivery fires, server receives and releases, world idles
	}
	for i := 0; i < 200; i++ {
		step() // warm every pool to its steady-state population
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("message delivery: %v allocs/op, want 0", allocs)
	}
}
