package simnet

import (
	"testing"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// TestMessageDeliveryZeroAllocSteadyState enforces the zero-allocation
// contract of the per-message path: once the pools are warm (delivery
// carriers, payload buffers, queue waiters, the scheduler's event slab)
// a send + receive + release cycle must not allocate. AllocsPerRun
// counts process-wide mallocs, so allocations on the scheduler's actor
// goroutines are included.
func TestMessageDeliveryZeroAllocSteadyState(t *testing.T) {
	s := vtime.New()
	defer s.Shutdown()
	topo := &StaticTopology{
		HostSite: map[string]string{"a1": "east", "b1": "west"},
		DefLat:   5 * time.Millisecond,
	}
	n := New(s, topo, DefaultConfig(1))

	s.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:1")
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			m.Release() // hand the payload copy back to the pool
		}
	})

	var client transport.Conn
	s.Go("client", func() {
		var err error
		client, err = n.Node("a1").Dial("b1:1")
		if err != nil {
			t.Error(err)
		}
	})
	s.Wait()
	if client == nil {
		t.Fatal("dial failed")
	}

	payload := []byte("0123456789abcdef")
	step := func() {
		if err := client.Send(transport.Message{Payload: payload}); err != nil {
			t.Error(err)
		}
		s.Wait() // delivery fires, server receives and releases, world idles
	}
	for i := 0; i < 200; i++ {
		step() // warm every pool to its steady-state population
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("message delivery: %v allocs/op, want 0", allocs)
	}
}

// TestBarrierWindowZeroAllocSteadyState is the sharded twin of the test
// above: a full synchronization window with cross-shard traffic — send
// on shard 0, outbox drain, barrier sort + serializer replay, delivery
// on shard 1, reply crossing back — must not allocate once pools are
// warm. This pins the barrier fast path: outbox buffers, merge scratch,
// the sort, delivery carriers and the window barrier itself all recycle.
func TestBarrierWindowZeroAllocSteadyState(t *testing.T) {
	dom := vtime.NewDomain(2, 5*time.Millisecond)
	defer dom.Shutdown()
	topo := &StaticTopology{
		HostSite: map[string]string{"a1": "east", "b1": "west"},
		DefLat:   5 * time.Millisecond,
	}
	n := NewSharded(dom, topo, Config{Seed: 1, NICBps: 1_000_000_000}, ShardConfig{
		SiteShard: map[string]int{"east": 0, "west": 1},
		Hosts:     []string{"a1", "b1"},
		Check:     true,
	})
	rt0, rt1 := dom.Shard(0), dom.Shard(1)

	rt1.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:1")
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			// Bounce every frame back so the reverse direction of the
			// barrier path (shard 1 → shard 0) is exercised too.
			if err := c.Send(transport.Message{Payload: m.Payload}); err != nil {
				t.Error(err)
				return
			}
			m.Release()
		}
	})

	payload := []byte("0123456789abcdef")
	dialed := false
	rt0.Go("client", func() {
		c, err := n.Node("a1").Dial("b1:1")
		if err != nil {
			t.Error(err)
			return
		}
		dialed = true
		// Ping-pong forever: every frame crosses the shard boundary at a
		// barrier, the echo crosses back at a later one.
		for {
			rt0.Sleep(10 * time.Millisecond)
			if err := c.Send(transport.Message{Payload: payload}); err != nil {
				return
			}
			m, err := c.Recv()
			if err != nil {
				return
			}
			m.Release()
		}
	})
	dom.RunFor(time.Second)
	if !dialed {
		t.Fatal("dial failed")
	}

	step := func() { dom.RunFor(20 * time.Millisecond) }
	for i := 0; i < 200; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("cross-shard window: %v allocs/op, want 0", allocs)
	}
}
