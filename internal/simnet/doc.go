// Package simnet simulates the Grid'5000 wide-area network on top of the
// virtual-time scheduler. It implements the transport interfaces, so all
// middleware and MPI code runs unchanged inside it.
//
// The model, kept deliberately close to what shapes the paper's results:
//
//   - one-way propagation latency between sites (half the measured RTT),
//   - Gaussian jitter on every message, modelling the CPU and TCP load
//     variations the paper blames for its latency-ranking noise (§5.1),
//   - per-host NIC capacity (1 Gb/s GigE) and a shared inter-site pipe
//     (10 Gb/s backbone, 1 Gb/s toward bordeaux) with cut-through
//     queueing: a transfer occupies every resource on its path from its
//     start time, and a busy resource delays the transfer,
//   - strict FIFO per connection direction (TCP ordering).
//
// A Net is bound to one vtime.Scheduler and is fully deterministic under
// its seed; independent Nets (one per experiment world) never share
// state, which is what lets the parallel sweep harness run many worlds
// on separate OS threads with reproducible results.
//
// The per-message path is single-writer and allocation-free: a Net
// carries no lock (every call runs in scheduler context, which
// serializes it — see docs/PERF.md), connections cache their host,
// pipe and base-latency lookups at setup, in-flight messages ride
// pooled delivery carriers, and payload copies come from a buffer pool
// that receivers refill via Message.Release.
package simnet
