package simnet

import (
	"testing"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// BenchmarkMessageDelivery measures the simulator's cost per delivered
// message across a WAN link.
func BenchmarkMessageDelivery(b *testing.B) {
	s := vtime.New()
	defer s.Shutdown()
	topo := &StaticTopology{
		HostSite: map[string]string{"a1": "east", "b1": "west"},
		DefLat:   5 * time.Millisecond,
	}
	n := New(s, topo, DefaultConfig(1))

	s.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:1")
		if err != nil {
			b.Error(err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		c, err := n.Node("a1").Dial("b1:1")
		if err != nil {
			b.Error(err)
			return
		}
		msg := transport.Message{Payload: []byte("0123456789abcdef")}
		for i := 0; i < b.N; i++ {
			if err := c.Send(msg); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	s.Wait()
}

// BenchmarkDialTeardown measures connection setup/teardown pairs.
func BenchmarkDialTeardown(b *testing.B) {
	s := vtime.New()
	defer s.Shutdown()
	topo := &StaticTopology{
		HostSite: map[string]string{"a1": "east", "b1": "east"},
		DefLat:   time.Millisecond,
	}
	n := New(s, topo, DefaultConfig(2))
	s.Go("server", func() {
		l, _ := n.Node("b1").Listen("b1:1")
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	})
	s.Go("client", func() {
		s.Sleep(time.Millisecond)
		for i := 0; i < b.N; i++ {
			c, err := n.Node("a1").Dial("b1:1")
			if err != nil {
				b.Error(err)
				return
			}
			c.Close()
		}
	})
	b.ResetTimer()
	s.Wait()
}
