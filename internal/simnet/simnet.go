package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Topology supplies base latency and capacity between hosts, aggregated
// at site granularity.
type Topology interface {
	// Site maps a host ID to its site name; unknown hosts return "".
	Site(host string) string
	// SiteLatency returns the base one-way latency between two sites.
	SiteLatency(a, b string) time.Duration
	// SiteBps returns the shared pipe capacity between two sites.
	SiteBps(a, b string) int64
}

// Config tunes the noise and capacity model.
type Config struct {
	// Seed makes every jitter sample reproducible.
	Seed int64
	// JitterFrac is the jitter standard deviation as a fraction of the
	// base one-way latency.
	JitterFrac float64
	// JitterFloor is an additive jitter standard deviation, dominating on
	// near-zero-latency local links (models end-host scheduling noise).
	JitterFloor time.Duration
	// NICBps is each host's network interface capacity.
	NICBps int64
}

// DefaultConfig reflects the paper's setting: enough probe noise that
// lyon/rennes/bordeaux (≈1 ms apart) interleave in the measured ranking
// while nancy and sophia stay at their extremes.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		JitterFrac:  0.08,
		JitterFloor: 250 * time.Microsecond,
		NICBps:      1_000_000_000,
	}
}

// Net is a simulated network bound to one scheduler.
//
// Net carries no lock of its own: every method (and every method of the
// conns and listeners it hands out) executes in scheduler context —
// actor goroutines and event callbacks, of which exactly one runs at any
// moment — so the scheduler's own synchronization serializes all state
// and publishes it across goroutines. Callers outside that context
// (tests poking FailHost between RunFor pumps) are safe as long as the
// scheduler is idle at the time, which Wait/RunFor guarantee on return.
// This is the single-writer design that keeps the per-message fast path
// free of lock traffic; see docs/PERF.md.
type Net struct {
	rt   *vtime.Scheduler
	topo Topology
	cfg  Config

	rng     *rand.Rand
	hosts   map[string]*netHost
	pipes   map[sitePair]*serializer
	bufPool transport.BufferPool
	delFree *delivery // recycled delivery events
}

// sitePair is a normalized (sorted) site pair, the backbone pipe key.
// A comparable struct key avoids the per-lookup string concatenation the
// old "a|b" keys paid on every message.
type sitePair struct{ a, b string }

func pipeKey(a, b string) sitePair {
	if a > b {
		a, b = b, a
	}
	return sitePair{a, b}
}

type netHost struct {
	id        string
	site      string
	listeners map[string]*listener // by port
	nicOut    serializer
	nicIn     serializer
	nextPort  int
	down      bool // failed hosts drop all traffic
}

// serializer models one capacity-limited resource. A transfer starting at
// t of size bytes holds the resource until max(busy, t) + size/bps.
type serializer struct {
	bps  int64
	busy time.Duration
}

func (s *serializer) reserve(start time.Duration, size int64) time.Duration {
	if s.busy < start {
		s.busy = start
	}
	s.busy += time.Duration(float64(size*8) / float64(s.bps) * float64(time.Second))
	return s.busy
}

// New creates a simulated network over the scheduler and topology.
func New(rt *vtime.Scheduler, topo Topology, cfg Config) *Net {
	if cfg.NICBps <= 0 {
		cfg.NICBps = 1_000_000_000
	}
	return &Net{
		rt:    rt,
		topo:  topo,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		hosts: make(map[string]*netHost),
		pipes: make(map[sitePair]*serializer),
	}
}

// Node returns the transport.Network view bound to one host: Listen binds
// local ports, Dial originates from that host.
func (n *Net) Node(hostID string) transport.Network {
	return &nodeNet{n: n, host: hostID}
}

// FailHost makes a host unreachable: its listeners stop accepting, new
// messages to and from it are dropped. Used by fault-injection tests.
func (n *Net) FailHost(hostID string) {
	if h := n.host(hostID); h != nil {
		h.down = true
	}
}

// RestoreHost brings a failed host back (listeners must be re-created).
func (n *Net) RestoreHost(hostID string) {
	if h := n.host(hostID); h != nil {
		h.down = false
	}
}

// BaseOneWay exposes the noise-free one-way latency between two hosts,
// used by experiments to compute the "true" ranking.
func (n *Net) BaseOneWay(a, b string) time.Duration {
	return n.topo.SiteLatency(n.topo.Site(a), n.topo.Site(b))
}

// host returns (lazily creating) the state of one host, or nil when the
// topology does not know it.
func (n *Net) host(id string) *netHost {
	h := n.hosts[id]
	if h == nil {
		site := n.topo.Site(id)
		if site == "" {
			return nil
		}
		h = &netHost{
			id:        id,
			site:      site,
			listeners: make(map[string]*listener),
			nicOut:    serializer{bps: n.cfg.NICBps},
			nicIn:     serializer{bps: n.cfg.NICBps},
			nextPort:  20000,
		}
		n.hosts[id] = h
	}
	return h
}

// pipe returns (lazily creating) the shared backbone serializer between
// two sites.
func (n *Net) pipe(siteA, siteB string) *serializer {
	key := pipeKey(siteA, siteB)
	p := n.pipes[key]
	if p == nil {
		p = &serializer{bps: n.topo.SiteBps(siteA, siteB)}
		n.pipes[key] = p
	}
	return p
}

// jitter samples non-negative latency noise for a base latency. Draw
// order is what makes runs reproducible: calls happen in scheduler
// order, one per planned delivery, exactly as they always have.
func (n *Net) jitter(base time.Duration) time.Duration {
	std := float64(base)*n.cfg.JitterFrac + float64(n.cfg.JitterFloor)
	j := n.rng.NormFloat64() * std
	if j < 0 {
		j = -j
	}
	return time.Duration(j)
}

// plan computes the virtual arrival time of a message of the given size
// sent now from one host to another, reserving capacity along the path.
// The pipe and base latency are passed in so established conns pay no
// map lookups per message.
func (n *Net) plan(from, to *netHost, pipe *serializer, base time.Duration, size int64) time.Duration {
	now := n.rt.Elapsed()
	finish := from.nicOut.reserve(now, size)
	if f := pipe.reserve(now, size); f > finish {
		finish = f
	}
	if f := to.nicIn.reserve(now, size); f > finish {
		finish = f
	}
	return finish + base + n.jitter(base)
}

// planDelivery is plan with the per-call lookups, used by the dial path
// (which has no established conn to cache them on).
func (n *Net) planDelivery(from, to *netHost, size int64) time.Duration {
	base := n.topo.SiteLatency(from.site, to.site)
	return n.plan(from, to, n.pipe(from.site, to.site), base, size)
}

// splitAddr separates "host:port"; hosts contain dots but no colons.
func splitAddr(addr string) (host, port string, err error) {
	i := strings.LastIndex(addr, ":")
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("simnet: bad address %q", addr)
	}
	return addr[:i], addr[i+1:], nil
}
