package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Topology supplies base latency and capacity between hosts, aggregated
// at site granularity.
type Topology interface {
	// Site maps a host ID to its site name; unknown hosts return "".
	Site(host string) string
	// SiteLatency returns the base one-way latency between two sites.
	SiteLatency(a, b string) time.Duration
	// SiteBps returns the shared pipe capacity between two sites.
	SiteBps(a, b string) int64
}

// Config tunes the noise and capacity model.
type Config struct {
	// Seed makes every jitter sample reproducible.
	Seed int64
	// JitterFrac is the jitter standard deviation as a fraction of the
	// base one-way latency.
	JitterFrac float64
	// JitterFloor is an additive jitter standard deviation, dominating on
	// near-zero-latency local links (models end-host scheduling noise).
	JitterFloor time.Duration
	// NICBps is each host's network interface capacity.
	NICBps int64
}

// DefaultConfig reflects the paper's setting: enough probe noise that
// lyon/rennes/bordeaux (≈1 ms apart) interleave in the measured ranking
// while nancy and sophia stay at their extremes.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		JitterFrac:  0.08,
		JitterFloor: 250 * time.Microsecond,
		NICBps:      1_000_000_000,
	}
}

// Net is a simulated network bound to one scheduler.
type Net struct {
	rt   *vtime.Scheduler
	topo Topology
	cfg  Config

	mu       sync.Mutex
	rng      *rand.Rand
	hosts    map[string]*netHost
	pipes    map[string]*serializer
	downHost map[string]bool // failed hosts drop all traffic
}

type netHost struct {
	id        string
	site      string
	listeners map[string]*listener // by port
	nicOut    *serializer
	nicIn     *serializer
	nextPort  int
}

// serializer models one capacity-limited resource. A transfer starting at
// t of size bytes holds the resource until max(busy, t) + size/bps.
type serializer struct {
	bps  int64
	busy time.Duration
}

func (s *serializer) reserve(start time.Duration, size int64) time.Duration {
	if s.busy < start {
		s.busy = start
	}
	s.busy += time.Duration(float64(size*8) / float64(s.bps) * float64(time.Second))
	return s.busy
}

// New creates a simulated network over the scheduler and topology.
func New(rt *vtime.Scheduler, topo Topology, cfg Config) *Net {
	if cfg.NICBps <= 0 {
		cfg.NICBps = 1_000_000_000
	}
	return &Net{
		rt:       rt,
		topo:     topo,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		hosts:    make(map[string]*netHost),
		pipes:    make(map[string]*serializer),
		downHost: make(map[string]bool),
	}
}

// Node returns the transport.Network view bound to one host: Listen binds
// local ports, Dial originates from that host.
func (n *Net) Node(hostID string) transport.Network {
	return &nodeNet{n: n, host: hostID}
}

// FailHost makes a host unreachable: its listeners stop accepting, new
// messages to and from it are dropped. Used by fault-injection tests.
func (n *Net) FailHost(hostID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downHost[hostID] = true
}

// RestoreHost brings a failed host back (listeners must be re-created).
func (n *Net) RestoreHost(hostID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downHost, hostID)
}

// BaseOneWay exposes the noise-free one-way latency between two hosts,
// used by experiments to compute the "true" ranking.
func (n *Net) BaseOneWay(a, b string) time.Duration {
	return n.topo.SiteLatency(n.topo.Site(a), n.topo.Site(b))
}

func (n *Net) hostLocked(id string) *netHost {
	h := n.hosts[id]
	if h == nil {
		site := n.topo.Site(id)
		if site == "" {
			return nil
		}
		h = &netHost{
			id:        id,
			site:      site,
			listeners: make(map[string]*listener),
			nicOut:    &serializer{bps: n.cfg.NICBps},
			nicIn:     &serializer{bps: n.cfg.NICBps},
			nextPort:  20000,
		}
		n.hosts[id] = h
	}
	return h
}

func (n *Net) pipeLocked(siteA, siteB string) *serializer {
	a, b := siteA, siteB
	if a > b {
		a, b = b, a
	}
	key := a + "|" + b
	p := n.pipes[key]
	if p == nil {
		p = &serializer{bps: n.topo.SiteBps(siteA, siteB)}
		n.pipes[key] = p
	}
	return p
}

// jitterLocked samples non-negative latency noise for a base latency.
func (n *Net) jitterLocked(base time.Duration) time.Duration {
	std := float64(base)*n.cfg.JitterFrac + float64(n.cfg.JitterFloor)
	j := n.rng.NormFloat64() * std
	if j < 0 {
		j = -j
	}
	return time.Duration(j)
}

// planDelivery computes the virtual arrival time of a message of the
// given size sent now from a to b, reserving capacity along the path.
func (n *Net) planDelivery(from, to *netHost, size int64) time.Duration {
	now := n.rt.Elapsed()
	base := n.topo.SiteLatency(from.site, to.site)

	finish := from.nicOut.reserve(now, size)
	if f := n.pipeLocked(from.site, to.site).reserve(now, size); f > finish {
		finish = f
	}
	if f := to.nicIn.reserve(now, size); f > finish {
		finish = f
	}
	return finish + base + n.jitterLocked(base)
}

// splitAddr separates "host:port"; hosts contain dots but no colons.
func splitAddr(addr string) (host, port string, err error) {
	i := strings.LastIndex(addr, ":")
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("simnet: bad address %q", addr)
	}
	return addr[:i], addr[i+1:], nil
}
