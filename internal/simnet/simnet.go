package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// Topology supplies base latency and capacity between hosts, aggregated
// at site granularity.
type Topology interface {
	// Site maps a host ID to its site name; unknown hosts return "".
	Site(host string) string
	// SiteLatency returns the base one-way latency between two sites.
	SiteLatency(a, b string) time.Duration
	// SiteBps returns the shared pipe capacity between two sites.
	SiteBps(a, b string) int64
}

// Config tunes the noise and capacity model.
type Config struct {
	// Seed makes every jitter sample reproducible.
	Seed int64
	// JitterFrac is the jitter standard deviation as a fraction of the
	// base one-way latency.
	JitterFrac float64
	// JitterFloor is an additive jitter standard deviation, dominating on
	// near-zero-latency local links (models end-host scheduling noise).
	JitterFloor time.Duration
	// NICBps is each host's network interface capacity.
	NICBps int64
}

// DefaultConfig reflects the paper's setting: enough probe noise that
// lyon/rennes/bordeaux (≈1 ms apart) interleave in the measured ranking
// while nancy and sophia stay at their extremes.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		JitterFrac:  0.08,
		JitterFloor: 250 * time.Microsecond,
		NICBps:      1_000_000_000,
	}
}

// Net is a simulated network bound to one scheduler — or, in sharded
// mode (NewSharded), to the shards of a vtime.Domain.
//
// Net carries no lock of its own: every method (and every method of the
// conns and listeners it hands out) executes in scheduler context —
// actor goroutines and event callbacks, of which exactly one runs at any
// moment per shard — so the scheduler's own synchronization serializes
// all state and publishes it across goroutines. Callers outside that
// context (tests poking FailHost between RunFor pumps) are safe as long
// as the scheduler is idle at the time, which Wait/RunFor guarantee on
// return. This is the single-writer design that keeps the per-message
// fast path free of lock traffic; see docs/PERF.md.
//
// In sharded mode all mutable per-message state (jitter sequence maps,
// buffer pools, delivery free lists, outboxes) lives in per-shard
// netShard structs, each touched only by its own shard's event loop
// during a window; everything that spans shards (host table, pipe table)
// is pre-built and read-only while windows run, or touched only at
// barriers (cross-shard serializer frontiers, see shard.go).
type Net struct {
	topo Topology
	cfg  Config

	sh       []*netShard // per-shard mutable state; len 1 when unsharded
	sharded  bool
	check    bool        // panic on lookahead/causality violations (VTIME_CHECK)
	faults   *faultState // nil until a Set* fault API is used; see faults.go
	hosts    map[string]*netHost
	pipes    map[sitePair]*serializer
	nextRank int
	xscratch []xmsg        // barrier merge scratch, reused across windows
	winID    uint64        // current window, bumped at each barrier
	merged   []*serializer // serializers touched by the current merge
}

// netShard is the mutable state one shard's event loop owns exclusively
// while a window runs. The outbox is single-writer (the owning shard)
// and is read only at barriers, with the Domain's barrier providing the
// happens-before edge — no locks anywhere on the message path.
type netShard struct {
	idx     int
	rt      *vtime.Scheduler
	flowSeq map[flowKey]uint64
	bufPool transport.BufferPool
	delFree *delivery // recycled delivery events
	out     []xmsg    // cross-shard emissions this window
	seq     uint64    // emission sequence, tiebreak in the merge sort
}

// flowKey identifies one flow for jitter purposes: the dialing host,
// the destination host and the destination port (the service). Jitter
// noise is drawn from an independent seeded stream per (flow, dial
// sequence), so the draws one service's traffic consumes can never
// perturb the timing of another's — membership gossip, keep-alives and
// job traffic coexist without entangling their randomness. That
// compositionality is what lets a federated world (extra supernodes,
// extra control traffic) reproduce the data-plane timeline of a
// standalone one bit for bit.
type flowKey struct {
	from, to, port string
}

// flowSource is a SplitMix64 stream, the per-flow jitter source: one
// word of state instead of rand.NewSource's 607, since every
// request/reply exchange dials a fresh conn and pays this allocation.
type flowSource struct{ state uint64 }

func (s *flowSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *flowSource) Int63() int64 { return int64(s.Uint64() >> 1) }
func (s *flowSource) Seed(seed int64) {
	s.state = uint64(seed)
}

// flowRNG mints the jitter stream for the seq-th dial of a flow. The
// seed folds the config seed with the flow identity and the per-flow
// dial sequence, so a flow's noise is a pure function of (world seed,
// flow, its own dial history) — independent of any other traffic. The
// sequence counter is per shard: a flow is keyed by its dialing host,
// which lives on exactly one shard, so the counter is exclusive to that
// shard's event loop.
func (sh *netShard) flowRNG(seed int64, key flowKey) (*rand.Rand, *flowSource) {
	seq := sh.flowSeq[key]
	sh.flowSeq[key] = seq + 1
	h := fnvMix(uint64(seed), key.from)
	h = fnvMix(h, key.to)
	h = fnvMix(h, key.port)
	src := &flowSource{state: h ^ (seq * 0x9e3779b97f4a7c15)}
	return rand.New(src), src
}

// fnvMix folds a string into a running FNV-1a style hash.
func fnvMix(h uint64, s string) uint64 {
	const prime64 = 1099511628211
	h ^= 14695981039346656037
	h *= prime64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// sitePair is a normalized (sorted) site pair, the backbone pipe key.
// A comparable struct key avoids the per-lookup string concatenation the
// old "a|b" keys paid on every message.
type sitePair struct{ a, b string }

func pipeKey(a, b string) sitePair {
	if a > b {
		a, b = b, a
	}
	return sitePair{a, b}
}

type netHost struct {
	id   string
	site string
	sh   *netShard // owning shard's state
	rank int       // global boot-order rank (merge tiebreak)
	// listeners is a small linear-scan table: a host owns two or three
	// listeners (MPD, RS, plus MPI process ports while hosting a job),
	// and a per-host map costs ~200 bytes of buckets — real money at a
	// million hosts.
	listeners []portListener
	nicOut    serializer
	nicIn     serializer
	nextPort  int
	down      bool // failed hosts drop all traffic
}

// portListener is one bound port of a host.
type portListener struct {
	port string
	l    *listener
}

// listener returns the listener bound to a port, or nil.
func (h *netHost) listener(port string) *listener {
	for _, pl := range h.listeners {
		if pl.port == port {
			return pl.l
		}
	}
	return nil
}

func (h *netHost) addListener(port string, l *listener) {
	h.listeners = append(h.listeners, portListener{port: port, l: l})
}

func (h *netHost) dropListener(port string) {
	for i, pl := range h.listeners {
		if pl.port == port {
			last := len(h.listeners) - 1
			h.listeners[i] = h.listeners[last]
			h.listeners[last] = portListener{}
			h.listeners = h.listeners[:last]
			return
		}
	}
}

// serializer models one capacity-limited resource. A transfer starting at
// t of size bytes holds the resource until max(busy, t) + size/bps.
//
// The frontier model is exact only when reservations arrive in
// nondecreasing start order — true sequentially (events execute in
// virtual-time order) and within one shard's window, but NOT for the
// barrier merge: a cross-shard reservation replayed at the barrier can
// carry a start earlier than local reservations the window already
// made. A receiver NIC is the one serializer both kinds share, so in
// sharded mode its local reservations go through reserveLocal, which
// logs the window's (start, rank, finish) sequence; the merge then
// computes each cross reservation's finish by replaying the merged
// (start, rank)-sorted sequence from the window-start frontier
// (Net.reserveCross) — the order the sequential run would have used.
type serializer struct {
	bps  int64
	busy time.Duration

	// Sharded-mode exact-merge state (receiver NICs only).
	winID   uint64 // window the log belongs to
	winBusy time.Duration
	log     []resv
	mergeID uint64 // barrier this serializer last joined
	pos     int    // log replay cursor during a merge
	xbusy   time.Duration
}

// resv is one logged local reservation.
type resv struct {
	start, finish time.Duration
	rank          int
	size          int64
}

func (s *serializer) cost(size int64) time.Duration {
	return time.Duration(float64(size*8) / float64(s.bps) * float64(time.Second))
}

func (s *serializer) reserve(start time.Duration, size int64) time.Duration {
	if s.busy < start {
		s.busy = start
	}
	s.busy += s.cost(size)
	return s.busy
}

// reserveLocal is reserve plus the window log the barrier merge needs
// to slot cross-shard reservations into their exact sequential
// position. winID identifies the current window; a stale log is reset
// lazily, so idle serializers cost nothing at barriers.
func (s *serializer) reserveLocal(winID uint64, start time.Duration, rank int, size int64) time.Duration {
	if s.winID != winID {
		s.winID = winID
		s.winBusy = s.busy
		s.log = s.log[:0]
	}
	f := s.reserve(start, size)
	s.log = append(s.log, resv{start: start, finish: f, rank: rank, size: size})
	return f
}

// New creates a simulated network over the scheduler and topology.
func New(rt *vtime.Scheduler, topo Topology, cfg Config) *Net {
	if cfg.NICBps <= 0 {
		cfg.NICBps = 1_000_000_000
	}
	return &Net{
		topo:  topo,
		cfg:   cfg,
		sh:    []*netShard{{rt: rt, flowSeq: make(map[flowKey]uint64)}},
		hosts: make(map[string]*netHost),
		pipes: make(map[sitePair]*serializer),
		winID: 1,
	}
}

// Node returns the transport.Network view bound to one host: Listen binds
// local ports, Dial originates from that host.
func (n *Net) Node(hostID string) transport.Network {
	return &nodeNet{n: n, host: hostID}
}

// FailHost makes a host unreachable: its listeners stop accepting, new
// messages to and from it are dropped. Used by fault-injection tests.
func (n *Net) FailHost(hostID string) {
	if h := n.host(hostID); h != nil {
		h.down = true
	}
}

// RestoreHost brings a failed host back (listeners must be re-created).
func (n *Net) RestoreHost(hostID string) {
	if h := n.host(hostID); h != nil {
		h.down = false
	}
}

// BaseOneWay exposes the noise-free one-way latency between two hosts,
// used by experiments to compute the "true" ranking.
func (n *Net) BaseOneWay(a, b string) time.Duration {
	return n.topo.SiteLatency(n.topo.Site(a), n.topo.Site(b))
}

// Provision pre-registers hosts with their sites in rank order, as one
// slab allocation. Behaviour is identical to the lazy path — the same
// ranks, sites and per-host state — but a big world skips both the
// per-host allocations and the topology's host→site index (which for a
// grid topology is an O(world) map built just to answer these
// lookups). Single-shard only; NewSharded freezes its own table.
// Hosts already known keep their state (Provision is a no-op for them).
func (n *Net) Provision(hosts, sites []string) {
	if n.sharded || len(hosts) != len(sites) {
		return
	}
	slab := make([]netHost, len(hosts))
	for i, id := range hosts {
		if n.hosts[id] != nil {
			continue
		}
		h := &slab[i]
		*h = netHost{
			id:       id,
			site:     sites[i],
			sh:       n.sh[0],
			rank:     n.nextRank,
			nicOut:   serializer{bps: n.cfg.NICBps},
			nicIn:    serializer{bps: n.cfg.NICBps},
			nextPort: 20000,
		}
		n.nextRank++
		n.hosts[id] = h
	}
}

// host returns the state of one host, or nil when the topology does not
// know it. In single-shard mode unknown-but-mapped hosts are created
// lazily; in sharded mode the host table is frozen at NewSharded (lazy
// insertion from concurrent shard loops would race), so a host that was
// not pre-registered is simply unreachable.
func (n *Net) host(id string) *netHost {
	h := n.hosts[id]
	if h == nil && !n.sharded {
		site := n.topo.Site(id)
		if site == "" {
			return nil
		}
		h = &netHost{
			id:       id,
			site:     site,
			sh:       n.sh[0],
			rank:     n.nextRank,
			nicOut:   serializer{bps: n.cfg.NICBps},
			nicIn:    serializer{bps: n.cfg.NICBps},
			nextPort: 20000,
		}
		n.nextRank++
		n.hosts[id] = h
	}
	return h
}

// pipe returns (lazily creating) the shared backbone serializer between
// two sites.
func (n *Net) pipe(siteA, siteB string) *serializer {
	key := pipeKey(siteA, siteB)
	p := n.pipes[key]
	if p == nil {
		p = &serializer{bps: n.topo.SiteBps(siteA, siteB)}
		n.pipes[key] = p
	}
	return p
}

// jitter samples non-negative latency noise for a base latency from the
// flow's own stream. One message consumes one draw, in per-flow order —
// reproducibility holds flow by flow, so unrelated traffic cannot shift
// another flow's noise.
func (n *Net) jitter(rng *rand.Rand, base time.Duration) time.Duration {
	std := float64(base)*n.cfg.JitterFrac + float64(n.cfg.JitterFloor)
	j := rng.NormFloat64() * std
	if j < 0 {
		j = -j
	}
	return time.Duration(j)
}

// plan computes the virtual arrival time of a message of the given size
// sent now from one host to another, reserving capacity along the path.
// The pipe and base latency are passed in so established conns pay no
// map lookups per message. It is only valid when from and to share a
// shard (always true unsharded); cross-shard sends split the reservation
// between send time and the barrier merge instead — see shard.go.
func (n *Net) plan(rng *rand.Rand, from, to *netHost, pipe *serializer, base time.Duration, size int64) time.Duration {
	now := from.sh.rt.Elapsed()
	finish := from.nicOut.reserve(now, size)
	if f := pipe.reserve(now, size); f > finish {
		finish = f
	}
	var fin time.Duration
	if n.sharded {
		fin = to.nicIn.reserveLocal(n.winID, now, from.rank, size)
	} else {
		fin = to.nicIn.reserve(now, size)
	}
	if fin > finish {
		finish = fin
	}
	return finish + base + n.jitter(rng, base)
}

// planDelivery is plan with the per-call lookups, used by the dial path
// (which has no established conn to cache them on).
func (n *Net) planDelivery(rng *rand.Rand, from, to *netHost, size int64) time.Duration {
	base := n.topo.SiteLatency(from.site, to.site)
	return n.plan(rng, from, to, n.pipe(from.site, to.site), base, size)
}

// splitAddr separates "host:port"; hosts contain dots but no colons.
func splitAddr(addr string) (host, port string, err error) {
	i := strings.LastIndex(addr, ":")
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("simnet: bad address %q", addr)
	}
	return addr[:i], addr[i+1:], nil
}
