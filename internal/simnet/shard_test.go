package simnet

import (
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// twoSiteTopo is a minimal cross-shard world: two sites, two hosts
// each, a single backbone latency.
func twoSiteTopo(oneWay time.Duration) *StaticTopology {
	return &StaticTopology{
		HostSite: map[string]string{
			"a1": "east", "a2": "east",
			"b1": "west", "b2": "west",
		},
		DefLat: oneWay,
	}
}

// shardedNet builds a 2-shard domain (east on shard 0, west on shard 1)
// over the topology, with the given conservative lookahead.
func shardedNet(t *testing.T, topo *StaticTopology, lookahead time.Duration, check bool) (*vtime.Domain, *Net) {
	t.Helper()
	dom := vtime.NewDomain(2, lookahead)
	t.Cleanup(dom.Shutdown)
	n := NewSharded(dom, topo, Config{Seed: 1, NICBps: 1_000_000_000}, ShardConfig{
		SiteShard: map[string]int{"east": 0, "west": 1},
		Hosts:     []string{"a1", "a2", "b1", "b2"},
		Check:     check,
	})
	return dom, n
}

// echoWorld runs one request/reply exchange from a1 (shard 0) to b1
// (shard 1) and returns the dial completion and reply arrival virtual
// times as observed by the client.
func echoWorld(t *testing.T, rt0, rt1 *vtime.Scheduler, n *Net, run func()) (dialDone, replyAt time.Duration) {
	t.Helper()
	rt1.Go("server", func() {
		l, err := n.Node("b1").Listen("b1:700")
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		m, err := c.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		if err := c.Send(transport.Message{Payload: append([]byte("re:"), m.Payload...)}); err != nil {
			t.Errorf("server send: %v", err)
		}
	})
	rt0.Go("client", func() {
		rt0.Sleep(time.Millisecond)
		c, err := n.Node("a1").Dial("b1:700")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		dialDone = rt0.Elapsed()
		if err := c.Send(transport.Message{Payload: []byte("ping")}); err != nil {
			t.Errorf("client send: %v", err)
			return
		}
		m, err := c.Recv()
		if err != nil {
			t.Errorf("client recv: %v", err)
			return
		}
		if string(m.Payload) != "re:ping" {
			t.Errorf("bad reply %q", m.Payload)
		}
		replyAt = rt0.Elapsed()
	})
	run()
	return dialDone, replyAt
}

// TestCrossShardEchoMatchesSequential: the same exchange on a sharded
// domain and on a plain single scheduler must land at identical virtual
// times — the windowed barrier protocol is invisible to the simulated
// clocks.
func TestCrossShardEchoMatchesSequential(t *testing.T) {
	const oneWay = 5 * time.Millisecond

	s := vtime.New()
	n1 := New(s, twoSiteTopo(oneWay), Config{Seed: 1, NICBps: 1_000_000_000})
	seqDial, seqReply := echoWorld(t, s, s, n1, s.Wait)
	s.Shutdown()

	dom, n2 := shardedNet(t, twoSiteTopo(oneWay), oneWay, true)
	shDial, shReply := echoWorld(t, dom.Shard(0), dom.Shard(1), n2, dom.Wait)

	if seqDial == 0 || seqReply == 0 {
		t.Fatal("sequential exchange did not complete")
	}
	if shDial != seqDial || shReply != seqReply {
		t.Fatalf("sharded times diverged: dial %v vs %v, reply %v vs %v",
			shDial, seqDial, shReply, seqReply)
	}
	if dom.Windows() == 0 {
		t.Fatal("domain never ran a window")
	}
}

// TestLookaheadSafetyClean: with the lookahead at the true minimum
// backbone latency and VTIME_CHECK-style assertions armed, sustained
// bidirectional traffic never lands below a shard's committed horizon.
func TestLookaheadSafetyClean(t *testing.T) {
	const oneWay = 2 * time.Millisecond
	dom, n := shardedNet(t, twoSiteTopo(oneWay), oneWay, true)
	runShardTraffic(t, dom, n, 200)
}

// TestLookaheadViolationPanics: an adversarially wide window — the
// domain claims a lookahead far above the real backbone latency — must
// trip the Check assertion instead of silently rewriting a shard's
// past. This is the stress half of the lookahead-safety contract: the
// panic is the only thing standing between a mis-derived lookahead and
// corrupted simulation output.
func TestLookaheadViolationPanics(t *testing.T) {
	const oneWay = 100 * time.Microsecond // adversarially fast backbone
	topo := twoSiteTopo(oneWay)
	dom := vtime.NewDomain(2, 50*time.Millisecond) // wildly optimistic
	defer dom.Shutdown()
	n := NewSharded(dom, topo, Config{Seed: 1, NICBps: 1_000_000_000}, ShardConfig{
		SiteShard: map[string]int{"east": 0, "west": 1},
		Hosts:     []string{"a1", "a2", "b1", "b2"},
		Check:     true,
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a lookahead-violation panic, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "lookahead violation") {
			panic(r) // not ours — re-raise
		}
	}()
	runShardTraffic(t, dom, n, 50)
}

// runShardTraffic drives request/reply pairs in both directions across
// the shard boundary for the given number of rounds.
func runShardTraffic(t *testing.T, dom *vtime.Domain, n *Net, rounds int) {
	t.Helper()
	serve := func(rt *vtime.Scheduler, host, addr string) {
		rt.Go(host+".srv", func() {
			l, err := n.Node(host).Listen(addr)
			if err != nil {
				t.Errorf("%s listen: %v", host, err)
				return
			}
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				rt.Go(host+".conn", func() {
					for {
						m, err := c.Recv()
						if err != nil {
							return
						}
						if err := c.Send(transport.Message{Payload: m.Payload}); err != nil {
							return
						}
					}
				})
			}
		})
	}
	client := func(rt *vtime.Scheduler, host, target string) {
		rt.Go(host+".cli", func() {
			rt.Sleep(time.Millisecond)
			c, err := n.Node(host).Dial(target)
			if err != nil {
				t.Errorf("%s dial: %v", host, err)
				return
			}
			for i := 0; i < rounds; i++ {
				if err := c.Send(transport.Message{Payload: []byte("x")}); err != nil {
					return
				}
				if _, err := c.Recv(); err != nil {
					return
				}
			}
			c.Close()
		})
	}
	serve(dom.Shard(1), "b1", "b1:700")
	serve(dom.Shard(0), "a1", "a1:700")
	client(dom.Shard(0), "a2", "b1:700")
	client(dom.Shard(1), "b2", "a1:700")
	dom.Wait()
}
