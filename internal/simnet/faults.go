package simnet

import (
	"math/rand"
	"time"
)

// Network-fault state: site↔site partitions, constant cross-site link
// degradation, gray-failure hosts and bounded message duplication.
//
// Determinism contract (see docs/PERF.md). The fault state follows the
// FailHost rules — mutated only while the scheduler is idle or at a
// domain barrier, read freely from shard event loops — so within any
// conservative window it is constant and identical in the sequential
// and sharded engines. On top of that, three rules keep the two
// engines' traces byte-identical:
//
//  1. Extra RNG draws are gated only on predicates computable from
//     window-constant state (effective drop probability > 0, DupProb >
//     0), never on per-engine conditions, so every flow stream advances
//     identically everywhere.
//  2. A randomly dropped frame still pays its full path reservations
//     (sender NIC, backbone pipe, receiver NIC) and its FIFO arrival
//     clamp — only the delivery event (and its payload copy) is
//     suppressed. Serializer frontiers therefore never depend on drop
//     outcomes' delivery side effects.
//  3. Partition cuts and the latency multiplier draw nothing: a cut
//     send returns before any reservation or draw, and the multiplier
//     is a pure arithmetic surcharge on the planned arrival.
//
// Handshake and close frames (SYN, accept/refuse, FIN) are exempt from
// random loss, slowdown and duplication — the transport layer is
// assumed to retransmit them — which also keeps Dial from blocking
// forever on a lost handshake. Partitions do affect dials: a Dial
// across an active cut fails with ErrUnreachable after one round trip.
type faultState struct {
	loss     float64          // cross-site data-frame drop probability
	latMult  float64          // cross-site latency multiplier (≥ 1)
	cuts     map[sitePair]int // refcounted active partition cuts
	gray     map[string]*grayState
	dupProb  float64
	dupDelay time.Duration
}

// grayState is one host's active gray episode: alive, but dropping and
// slowing its own traffic in both directions.
type grayState struct {
	drop float64 // per-frame drop probability on any link of the host
	slow float64 // latency multiplier on any link of the host (≥ 1)
}

func (n *Net) ensureFaults() *faultState {
	if n.faults == nil {
		n.faults = &faultState{
			latMult: 1,
			cuts:    make(map[sitePair]int),
			gray:    make(map[string]*grayState),
		}
	}
	return n.faults
}

// SetLinkFault installs the constant cross-site degradation: every
// cross-site data frame is dropped with probability loss, and every
// cross-site base latency is multiplied by latMult (values below 1 mean
// unchanged). Like FailHost, callable only while the scheduler is idle
// or at a domain barrier.
func (n *Net) SetLinkFault(loss, latMult float64) {
	f := n.ensureFaults()
	f.loss = loss
	if latMult < 1 {
		latMult = 1
	}
	f.latMult = latMult
}

// SetCut cuts (on) or heals (off) the site↔site link between a and b.
// Cuts are reference-counted, so overlapping episodes compose. While
// cut, established-conn frames between the sites vanish silently (the
// sender learns via timeout) and new dials fail with ErrUnreachable.
// Same mutation contract as FailHost.
func (n *Net) SetCut(a, b string, on bool) {
	f := n.ensureFaults()
	key := pipeKey(a, b)
	if on {
		f.cuts[key]++
		return
	}
	if c := f.cuts[key]; c > 1 {
		f.cuts[key] = c - 1
	} else {
		delete(f.cuts, key)
	}
}

// SetGray starts (on) or ends (off) a host's gray episode: the host
// stays up and keeps answering, but every data frame it sends or
// receives is dropped with probability drop, and all its traffic is
// slowed by slow (values below 1 mean unchanged). Same mutation
// contract as FailHost.
func (n *Net) SetGray(host string, drop, slow float64, on bool) {
	f := n.ensureFaults()
	if !on {
		delete(f.gray, host)
		return
	}
	if slow < 1 {
		slow = 1
	}
	f.gray[host] = &grayState{drop: drop, slow: slow}
}

// SetDuplication makes every delivered data frame arrive twice with
// probability p; the copy lands a uniform draw of up to delay later,
// unordered against later traffic (the reordering mechanism). Same
// mutation contract as FailHost.
func (n *Net) SetDuplication(p float64, delay time.Duration) {
	f := n.ensureFaults()
	f.dupProb = p
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	f.dupDelay = delay
}

// cut reports whether the two sites are currently partitioned.
func (f *faultState) cut(a, b string) bool {
	if len(f.cuts) == 0 {
		return false
	}
	return f.cuts[pipeKey(a, b)] > 0
}

// dropProb returns the effective drop probability of one data frame:
// the cross-site link loss composed with each gray endpoint's drop,
// independently (1 - Π(1-p)). The result is a pure function of
// window-constant state — the draw-gating predicate of rule 1.
func (f *faultState) dropProb(from, to *netHost) float64 {
	var p float64
	if from.site != to.site {
		p = f.loss
	}
	if len(f.gray) > 0 {
		if g := f.gray[from.id]; g != nil {
			p = 1 - (1-p)*(1-g.drop)
		}
		if g := f.gray[to.id]; g != nil {
			p = 1 - (1-p)*(1-g.drop)
		}
	}
	return p
}

// slowExtra returns the deterministic latency surcharge of one frame:
// (multiplier − 1) × base, with the cross-site multiplier and both
// endpoints' gray slowdowns composed multiplicatively. Draws nothing.
func (f *faultState) slowExtra(from, to *netHost, base time.Duration) time.Duration {
	m := 1.0
	if from.site != to.site {
		m = f.latMult
	}
	if len(f.gray) > 0 {
		if g := f.gray[from.id]; g != nil {
			m *= g.slow
		}
		if g := f.gray[to.id]; g != nil {
			m *= g.slow
		}
	}
	if m <= 1 {
		return 0
	}
	return time.Duration((m - 1) * float64(base))
}

// frameFate draws one data frame's fault outcome from the flow's own
// jitter stream, in a fixed order (drop, then duplication, then the
// copy's delay) with each draw gated per rule 1. Dropped frames are
// never also duplicated.
func (f *faultState) frameFate(rng *rand.Rand, from, to *netHost) (dropped, dup bool, dupDelay time.Duration) {
	if p := f.dropProb(from, to); p > 0 {
		if rng.Float64() < p {
			return true, false, 0
		}
	}
	if f.dupProb > 0 {
		if rng.Float64() < f.dupProb {
			dup = true
			dupDelay = time.Duration(rng.Float64() * float64(f.dupDelay))
		}
	}
	return dropped, dup, dupDelay
}
