package simnet

import (
	"math/rand"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// nodeNet is the per-host transport.Network view.
type nodeNet struct {
	n    *Net
	host string
}

func (nn *nodeNet) Listen(addr string) (transport.Listener, error) {
	host, port, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	if host != nn.host {
		return nil, transport.ErrUnreachable
	}
	h := nn.n.host(host)
	if h == nil || h.down {
		return nil, transport.ErrUnreachable
	}
	if port == "0" {
		for {
			h.nextPort++
			port = itoa(h.nextPort)
			if h.listeners[port] == nil {
				break
			}
		}
	}
	if h.listeners[port] != nil {
		return nil, transport.ErrClosed // port in use
	}
	l := &listener{
		n:       nn.n,
		addr:    host + ":" + port,
		host:    host,
		port:    port,
		acceptq: vtime.NewQueue[*conn](nn.n.rt),
	}
	h.listeners[port] = l
	return l, nil
}

func (nn *nodeNet) Dial(addr string) (transport.Conn, error) {
	rhost, rport, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	n := nn.n
	from := n.host(nn.host)
	if from == nil {
		return nil, transport.ErrUnreachable
	}
	if from.down {
		return nil, transport.ErrClosed
	}
	to := n.host(rhost)
	if to == nil {
		return nil, transport.ErrUnreachable
	}
	// The whole connection — handshake and both directions of later
	// traffic — draws its jitter from one per-flow stream minted here,
	// keyed by (dialer, destination host, destination port, dial
	// sequence). See flowKey for why.
	rng := n.flowRNG(flowKey{from: nn.host, to: rhost, port: rport})
	// SYN travels one way; the handshake result travels back. The dialer
	// observes a full round trip before Dial returns, like TCP.
	synArrival := n.planDelivery(rng, from, to, 64)
	resultq := vtime.NewQueue[dialResult](n.rt)

	n.rt.Schedule(synArrival-n.rt.Elapsed(), func() {
		l := to.listeners[rport]
		if to.down || l == nil || l.closed {
			// Connection refused: the RST also takes one trip back.
			back := n.planDelivery(rng, to, from, 64)
			n.rt.Schedule(back-n.rt.Elapsed(), func() {
				resultq.Push(dialResult{err: transport.ErrUnreachable})
			})
			return
		}
		local := nn.host + ":" + itoa(ephemeral(from))
		pair := newConnPair(n, from, to, local, l.addr, rng)
		back := n.planDelivery(rng, to, from, 64)
		l.acceptq.Push(pair.server)
		n.rt.Schedule(back-n.rt.Elapsed(), func() {
			resultq.Push(dialResult{c: pair.client})
		})
	})
	r, ok := resultq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return r.c, r.err
}

func ephemeral(h *netHost) int {
	h.nextPort++
	return h.nextPort
}

type dialResult struct {
	c   transport.Conn
	err error
}

func itoa(v int) string {
	// Tiny positive-int formatter to avoid strconv in the hot path.
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

type listener struct {
	n       *Net
	addr    string
	host    string
	port    string
	acceptq *vtime.Queue[*conn]
	closed  bool
}

func (l *listener) Accept() (transport.Conn, error) {
	c, ok := l.acceptq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	if !l.closed {
		l.closed = true
		if h := l.n.hosts[l.host]; h != nil {
			delete(h.listeners, l.port)
		}
	}
	l.acceptq.Close()
	return nil
}

func (l *listener) Addr() string { return l.addr }

// connPair is the shared state of the two directions of one connection.
type connPair struct {
	client *conn
	server *conn
}

// conn is one endpoint. Messages pushed to inbox arrive via delivery
// events; lastArrival clamps arrivals to per-direction FIFO order.
//
// The host, pipe and base-latency pointers are resolved once at
// connection setup, so the per-message path does no map lookups at all.
type conn struct {
	n           *Net
	local       string
	remote      string
	lh          *netHost    // local endpoint host
	rh          *netHost    // remote endpoint host
	pipe        *serializer // backbone pipe between the two sites
	base        time.Duration
	rng         *rand.Rand // the flow's jitter stream (shared with peer)
	inbox       *vtime.Queue[transport.Message]
	peer        *conn
	closed      bool
	lastArrival time.Duration // FIFO clamp for messages *arriving at peer*
}

func newConnPair(n *Net, ch, sh *netHost, clientAddr, serverAddr string, rng *rand.Rand) *connPair {
	pipe := n.pipe(ch.site, sh.site)
	client := &conn{
		n: n, local: clientAddr, remote: serverAddr,
		lh: ch, rh: sh, pipe: pipe,
		base:  n.topo.SiteLatency(ch.site, sh.site),
		rng:   rng,
		inbox: vtime.NewQueue[transport.Message](n.rt),
	}
	server := &conn{
		n: n, local: serverAddr, remote: clientAddr,
		lh: sh, rh: ch, pipe: pipe,
		base:  n.topo.SiteLatency(sh.site, ch.site),
		rng:   rng,
		inbox: vtime.NewQueue[transport.Message](n.rt),
	}
	client.peer = server
	server.peer = client
	return &connPair{client: client, server: server}
}

// delivery is one in-flight message: a pooled, closure-free event
// payload scheduled through vtime.ScheduleArg. Carriers are recycled
// through a free list and allocated in blocks when it runs dry, so even
// a burst of sends that outruns delivery (nothing recycled yet) costs
// one allocation per block of messages, not one per message.
type delivery struct {
	n    *Net
	peer *conn
	msg  transport.Message
	next *delivery // free-list link
}

const deliveryBlock = 256

func (n *Net) getDelivery() *delivery {
	d := n.delFree
	if d == nil {
		block := make([]delivery, deliveryBlock)
		for i := 1; i < len(block); i++ {
			block[i].n = n
			block[i].next = n.delFree
			n.delFree = &block[i]
		}
		block[0].n = n
		return &block[0]
	}
	n.delFree = d.next
	d.next = nil
	return d
}

// fireDelivery delivers the message (or drops it if the destination died
// while it was in flight) and recycles the carrier. Package-level so
// scheduling it captures nothing.
func fireDelivery(a any) {
	d := a.(*delivery)
	n, peer, msg := d.n, d.peer, d.msg
	d.peer = nil
	d.msg = transport.Message{}
	d.next = n.delFree
	n.delFree = d
	if peer.lh.down {
		msg.Release()
		return
	}
	peer.inbox.Push(msg)
}

// frameOverhead approximates per-message header cost on the wire.
const frameOverhead = 64

func (c *conn) Send(m transport.Message) error {
	n := c.n
	if c.closed {
		return transport.ErrClosed
	}
	if c.lh.down {
		return transport.ErrClosed
	}
	if c.rh.down || c.peer.closed {
		// Messages into the void are silently dropped, like TCP segments
		// toward a dead host; the sender learns via higher-level timeout.
		return nil
	}
	arrival := n.plan(c.rng, c.lh, c.rh, c.pipe, c.base, m.Size()+frameOverhead)
	if arrival <= c.lastArrival {
		arrival = c.lastArrival + time.Nanosecond
	}
	c.lastArrival = arrival

	// Copy the payload — the sender may reuse its buffer immediately —
	// into a pooled buffer that the receiver's Release recycles.
	var cp []byte
	if len(m.Payload) > 0 {
		cp = n.bufPool.Get(len(m.Payload))
		copy(cp, m.Payload)
	}
	d := n.getDelivery()
	d.peer = c.peer
	d.msg = transport.Pooled(cp, m.Virtual, &n.bufPool)
	n.rt.ScheduleArg(arrival-n.rt.Elapsed(), fireDelivery, d)
	return nil
}

func (c *conn) Recv() (transport.Message, error) { return c.RecvTimeout(-1) }

func (c *conn) RecvTimeout(d time.Duration) (transport.Message, error) {
	m, err := c.inbox.PopTimeout(d)
	switch err {
	case nil:
		return m, nil
	case vtime.ErrTimeout:
		return transport.Message{}, transport.ErrTimeout
	default:
		return transport.Message{}, transport.ErrClosed
	}
}

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	peer := c.peer
	fin := c.lastArrival
	if e := c.n.rt.Elapsed() + c.base; e > fin {
		fin = e
	}
	c.inbox.Close()
	// FIN arrives after all in-flight data (FIFO), closing the peer's
	// inbox so its pending Recv drains buffered messages then ErrClosed.
	c.n.rt.Schedule(fin-c.n.rt.Elapsed(), func() {
		peer.inbox.Close()
	})
	return nil
}

func (c *conn) LocalAddr() string  { return c.local }
func (c *conn) RemoteAddr() string { return c.remote }

var _ transport.Conn = (*conn)(nil)
var _ transport.Listener = (*listener)(nil)
var _ transport.Network = (*nodeNet)(nil)
