package simnet

import (
	"math/rand"
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// nodeNet is the per-host transport.Network view.
type nodeNet struct {
	n    *Net
	host string
}

func (nn *nodeNet) Listen(addr string) (transport.Listener, error) {
	host, port, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	if host != nn.host {
		return nil, transport.ErrUnreachable
	}
	h := nn.n.host(host)
	if h == nil || h.down {
		return nil, transport.ErrUnreachable
	}
	laddr := addr
	if port == "0" {
		for {
			h.nextPort++
			port = itoa(h.nextPort)
			if h.listener(port) == nil {
				break
			}
		}
		laddr = host + ":" + port
	}
	if h.listener(port) != nil {
		return nil, transport.ErrClosed // port in use
	}
	l := &listener{
		n:    nn.n,
		rt:   h.sh.rt,
		addr: laddr, // the caller's string when the port stands; no rebuild
		host: host,
		port: port,
	}
	h.addListener(port, l)
	return l, nil
}

func (nn *nodeNet) Dial(addr string) (transport.Conn, error) {
	rhost, rport, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	n := nn.n
	from := n.host(nn.host)
	if from == nil {
		return nil, transport.ErrUnreachable
	}
	if from.down {
		return nil, transport.ErrClosed
	}
	to := n.host(rhost)
	if to == nil {
		return nil, transport.ErrUnreachable
	}
	if from.sh != to.sh {
		return nn.dialCross(from, to, rhost, rport)
	}
	// The whole connection — handshake and both directions of later
	// traffic — draws its jitter from one per-flow stream minted here,
	// keyed by (dialer, destination host, destination port, dial
	// sequence). See flowKey for why.
	rt := from.sh.rt
	rng, _ := from.sh.flowRNG(n.cfg.Seed, flowKey{from: nn.host, to: rhost, port: rport})
	if fa := n.faults; fa != nil && fa.cut(from.site, to.site) {
		return dialCut(n, rt, rng, from, to)
	}
	// SYN travels one way; the handshake result travels back. The dialer
	// observes a full round trip before Dial returns, like TCP.
	synArrival := n.planDelivery(rng, from, to, 64)
	resultq := vtime.NewQueue[dialResult](rt)

	rt.Schedule(synArrival-rt.Elapsed(), func() {
		l := to.listener(rport)
		if to.down || l == nil || l.closed {
			// Connection refused: the RST also takes one trip back.
			back := n.planDelivery(rng, to, from, 64)
			rt.Schedule(back-rt.Elapsed(), func() {
				resultq.Push(dialResult{err: transport.ErrUnreachable})
			})
			return
		}
		local := nn.host + ":" + itoa(ephemeral(from))
		pair := newConnPair(n, from, to, local, l.addr, rng, nil)
		back := n.planDelivery(rng, to, from, 64)
		l.deliver(pair.server)
		rt.Schedule(back-rt.Elapsed(), func() {
			resultq.Push(dialResult{c: pair.client})
		})
	})
	r, ok := resultq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return r.c, r.err
}

// dialCross originates a connection whose endpoints live on different
// shards. The SYN's sender-side work (flow stream mint, NIC-out
// reservation, jitter draw, ephemeral port) happens here on the dialer's
// shard; the rest of the handshake crosses via the barrier merge (see
// shard.go). Like the sequential path, the dialer blocks until a full
// round trip completes.
func (nn *nodeNet) dialCross(from, to *netHost, rhost, rport string) (transport.Conn, error) {
	n := nn.n
	sh := from.sh
	rng, src := sh.flowRNG(n.cfg.Seed, flowKey{from: nn.host, to: rhost, port: rport})
	if fa := n.faults; fa != nil && fa.cut(from.site, to.site) {
		return dialCut(n, sh.rt, rng, from, to)
	}
	now := sh.rt.Elapsed()
	partial := from.nicOut.reserve(now, 64)
	jit := n.jitter(rng, n.topo.SiteLatency(from.site, to.site))
	// The ephemeral port is allocated at dial time (the sequential path
	// allocates it when the SYN lands, but that would mutate the dialer
	// host from the remote shard). Port numbers never feed timing or
	// payload bytes, so the numbering difference is unobservable.
	local := nn.host + ":" + itoa(ephemeral(from))
	resultq := vtime.NewQueue[dialResult](sh.rt)
	sh.emit(xmsg{
		kind: xDial, at: now, rank: from.rank, size: 64,
		partial: partial, jit: jit, state: src.state,
		from: from, to: to, port: rport, local: local, resultq: resultq,
	})
	r, ok := resultq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return r.c, r.err
}

// dialCut fails a dial across an active partition cut: ErrUnreachable
// after one noisy round trip, the time an RST (or the dialer's own SYN
// give-up) would take. Runs entirely on the dialer's shard in both
// engines — no reservations, no cross traffic — and consumes exactly
// one jitter draw from the freshly minted flow stream, so the sharded
// and sequential engines advance identically. The flow stream dies with
// the failed dial, so its draw count perturbs no other flow.
func dialCut(n *Net, rt *vtime.Scheduler, rng *rand.Rand, from, to *netHost) (transport.Conn, error) {
	base := n.topo.SiteLatency(from.site, to.site)
	rtt := 2*base + n.jitter(rng, base)
	resultq := vtime.NewQueue[dialResult](rt)
	rt.Schedule(rtt, func() {
		resultq.Push(dialResult{err: transport.ErrUnreachable})
	})
	r, ok := resultq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return r.c, r.err
}

func ephemeral(h *netHost) int {
	h.nextPort++
	return h.nextPort
}

type dialResult struct {
	c   transport.Conn
	err error
}

func itoa(v int) string {
	// Tiny positive-int formatter to avoid strconv in the hot path.
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

type listener struct {
	n    *Net
	rt   *vtime.Scheduler
	addr string
	host string
	port string
	// Exactly one of handler/acceptq carries inbound conns. The handler
	// (transport.CallbackListener) is the daemon path: no Accept actor
	// parked per listener, no queue allocated. The queue is built lazily
	// for legacy Accept users. Both are touched only from the owning
	// shard's event loop, so no lock is needed.
	handler func(transport.Conn)
	acceptq *vtime.Queue[*conn]
	closed  bool
}

// deliver hands an accepted server endpoint to the listener's consumer:
// the installed handler (called inline from the delivery event — it
// just spawns the serving actor) or the accept queue.
func (l *listener) deliver(c *conn) {
	if l.handler != nil {
		l.handler(c)
		return
	}
	if l.acceptq == nil {
		l.acceptq = vtime.NewQueue[*conn](l.rt)
	}
	l.acceptq.Push(c)
}

// OnConn installs the inbound-connection handler (transport.CallbackListener).
func (l *listener) OnConn(h func(transport.Conn)) {
	if l.handler != nil {
		panic("simnet: OnConn installed twice on " + l.addr)
	}
	l.handler = h
}

func (l *listener) Accept() (transport.Conn, error) {
	if l.acceptq == nil {
		if l.closed {
			return nil, transport.ErrClosed
		}
		l.acceptq = vtime.NewQueue[*conn](l.rt)
	}
	c, ok := l.acceptq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	if !l.closed {
		l.closed = true
		if h := l.n.hosts[l.host]; h != nil {
			h.dropListener(l.port)
		}
	}
	if l.acceptq != nil {
		l.acceptq.Close()
	}
	return nil
}

func (l *listener) Addr() string { return l.addr }

// connPair is the shared state of the two directions of one connection.
type connPair struct {
	client *conn
	server *conn
}

// conn is one endpoint. Messages pushed to inbox arrive via delivery
// events; lastArrival clamps arrivals to per-direction FIFO order.
//
// The host, pipe and base-latency pointers are resolved once at
// connection setup, so the per-message path does no map lookups at all.
type conn struct {
	n      *Net
	local  string
	remote string
	lh     *netHost    // local endpoint host
	rh     *netHost    // remote endpoint host
	sh     *netShard   // local endpoint's shard state
	pipe   *serializer // backbone pipe between the two sites
	base   time.Duration
	rng    *rand.Rand // the flow's jitter stream (shared with peer
	//                        when same-shard; per-endpoint when cross)
	src         *flowSource // cross only: this endpoint's stream state
	inbox       *vtime.Queue[transport.Message]
	peer        *conn
	cross       bool // endpoints live on different shards
	closed      bool
	peerClosed  bool          // cross only: mirror of peer.closed, set by FIN
	lastArrival time.Duration // FIFO clamp for messages *arriving at peer*
}

// newConnPair wires both endpoints of one connection. src is the flow
// stream's raw state source, required (non-nil) when the endpoints live
// on different shards: the accepting endpoint keeps it, and the dialing
// endpoint gets a private stream whose state is synced from each
// crossing message, reproducing the sequential shared-stream draw order
// for alternating request/reply traffic.
func newConnPair(n *Net, ch, sh *netHost, clientAddr, serverAddr string, rng *rand.Rand, src *flowSource) *connPair {
	pipe := n.pipe(ch.site, sh.site)
	client := &conn{
		n: n, local: clientAddr, remote: serverAddr,
		lh: ch, rh: sh, sh: ch.sh, pipe: pipe,
		base:  n.topo.SiteLatency(ch.site, sh.site),
		rng:   rng,
		inbox: vtime.NewQueue[transport.Message](ch.sh.rt),
	}
	server := &conn{
		n: n, local: serverAddr, remote: clientAddr,
		lh: sh, rh: ch, sh: sh.sh, pipe: pipe,
		base:  n.topo.SiteLatency(sh.site, ch.site),
		rng:   rng,
		inbox: vtime.NewQueue[transport.Message](sh.sh.rt),
	}
	client.peer = server
	server.peer = client
	if ch.sh != sh.sh {
		client.cross, server.cross = true, true
		server.src = src
		csrc := &flowSource{}
		client.src = csrc
		client.rng = rand.New(csrc)
	}
	return &connPair{client: client, server: server}
}

// delivery is one in-flight message: a pooled, closure-free event
// payload scheduled through vtime.ScheduleArg. Carriers are recycled
// through a free list and allocated in blocks when it runs dry, so even
// a burst of sends that outruns delivery (nothing recycled yet) costs
// one allocation per block of messages, not one per message.
type delivery struct {
	sh    *netShard // owning (receiving) shard's free list
	peer  *conn
	msg   transport.Message
	state uint64    // cross only: sender's flow-stream state to adopt
	sync  bool      // cross only: apply state on delivery
	next  *delivery // free-list link
}

const deliveryBlock = 256

func (sh *netShard) getDelivery() *delivery {
	d := sh.delFree
	if d == nil {
		block := make([]delivery, deliveryBlock)
		for i := 1; i < len(block); i++ {
			block[i].sh = sh
			block[i].next = sh.delFree
			sh.delFree = &block[i]
		}
		block[0].sh = sh
		return &block[0]
	}
	sh.delFree = d.next
	d.next = nil
	return d
}

// fireDelivery delivers the message (or drops it if the destination died
// while it was in flight) and recycles the carrier. Package-level so
// scheduling it captures nothing. For cross-shard frames it first syncs
// the receiving endpoint's flow stream to the sender's post-draw state.
func fireDelivery(a any) {
	d := a.(*delivery)
	sh, peer, msg := d.sh, d.peer, d.msg
	if d.sync && peer.src != nil {
		peer.src.state = d.state
	}
	d.peer = nil
	d.msg = transport.Message{}
	d.state = 0
	d.sync = false
	d.next = sh.delFree
	sh.delFree = d
	if peer.lh.down {
		msg.Release()
		return
	}
	peer.inbox.Push(msg)
}

// frameOverhead approximates per-message header cost on the wire.
const frameOverhead = 64

func (c *conn) Send(m transport.Message) error {
	n := c.n
	if c.closed {
		return transport.ErrClosed
	}
	if c.lh.down {
		return transport.ErrClosed
	}
	if c.cross {
		return c.sendCross(m)
	}
	if c.rh.down || c.peer.closed {
		// Messages into the void are silently dropped, like TCP segments
		// toward a dead host; the sender learns via higher-level timeout.
		return nil
	}
	fa := n.faults
	if fa != nil && fa.cut(c.lh.site, c.rh.site) {
		// A partition swallows the frame before it reserves anything;
		// the sender learns via higher-level timeout, like rh.down.
		return nil
	}
	arrival := n.plan(c.rng, c.lh, c.rh, c.pipe, c.base, m.Size()+frameOverhead)
	var dropped, dup bool
	var dupDelay time.Duration
	if fa != nil {
		arrival += fa.slowExtra(c.lh, c.rh, c.base)
		dropped, dup, dupDelay = fa.frameFate(c.rng, c.lh, c.rh)
	}
	if arrival <= c.lastArrival {
		arrival = c.lastArrival + time.Nanosecond
	}
	c.lastArrival = arrival
	if dropped {
		// The frame paid its reservations and advanced the FIFO clamp;
		// only its delivery vanishes (determinism rule 2, faults.go).
		return nil
	}

	// Copy the payload — the sender may reuse its buffer immediately —
	// into a pooled buffer that the receiver's Release recycles.
	sh := c.sh
	var cp []byte
	if len(m.Payload) > 0 {
		cp = sh.bufPool.Get(len(m.Payload))
		copy(cp, m.Payload)
	}
	d := sh.getDelivery()
	d.peer = c.peer
	d.msg = transport.Pooled(cp, m.Virtual, &sh.bufPool)
	sh.rt.ScheduleArg(arrival-sh.rt.Elapsed(), fireDelivery, d)
	if dup {
		// The duplicate is its own copy (pooled buffers are released per
		// delivery) and skips the lastArrival clamp: it lands dupDelay
		// after the original, unordered against later frames.
		var cp2 []byte
		if len(m.Payload) > 0 {
			cp2 = sh.bufPool.Get(len(m.Payload))
			copy(cp2, m.Payload)
		}
		d2 := sh.getDelivery()
		d2.peer = c.peer
		d2.msg = transport.Pooled(cp2, m.Virtual, &sh.bufPool)
		sh.rt.ScheduleArg(arrival+dupDelay-sh.rt.Elapsed(), fireDelivery, d2)
	}
	return nil
}

// sendCross emits a frame whose receiver lives on another shard: the
// sender-side half of the plan runs now, the rest at the barrier merge.
// The down/closed checks mirror the sequential path, except peer state
// is known only as of the last barrier — the causal limit of what a
// remote shard can observe.
func (c *conn) sendCross(m transport.Message) error {
	if c.rh.down || c.peerClosed {
		return nil
	}
	n, sh := c.n, c.sh
	fa := n.faults
	if fa != nil && fa.cut(c.lh.site, c.rh.site) {
		return nil // mirrors the sequential cut check: nothing reserved, nothing drawn
	}
	now := sh.rt.Elapsed()
	size := m.Size() + frameOverhead
	partial := c.lh.nicOut.reserve(now, size)
	jit := n.jitter(c.rng, c.base)
	// Fault draws follow the jitter draw, the same stream order the
	// sequential path uses, and precede the state capture below so the
	// receiver adopts the post-draw stream position.
	var dropped, dup bool
	var dupDelay time.Duration
	if fa != nil {
		jit += fa.slowExtra(c.lh, c.rh, c.base)
		dropped, dup, dupDelay = fa.frameFate(c.rng, c.lh, c.rh)
	}
	// The payload copy comes from the sender shard's pool and is
	// released into the receiver shard's pool after delivery — capacity
	// migrates along traffic, each pool still touched by one shard only.
	// A dropped frame ships no payload: it exists only to replay its
	// reservations at the merge.
	var cp []byte
	if !dropped && len(m.Payload) > 0 {
		cp = sh.bufPool.Get(len(m.Payload))
		copy(cp, m.Payload)
	}
	sh.emit(xmsg{
		kind: xSend, at: now, rank: c.lh.rank, size: size,
		partial: partial, jit: jit, state: c.src.state,
		drop: dropped, dup: dup, dupDelay: dupDelay,
		c: c, msg: transport.Message{Payload: cp, Virtual: m.Virtual},
	})
	return nil
}

func (c *conn) Recv() (transport.Message, error) { return c.RecvTimeout(-1) }

func (c *conn) RecvTimeout(d time.Duration) (transport.Message, error) {
	m, err := c.inbox.PopTimeout(d)
	switch err {
	case nil:
		return m, nil
	case vtime.ErrTimeout:
		return transport.Message{}, transport.ErrTimeout
	default:
		return transport.Message{}, transport.ErrClosed
	}
}

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.inbox.Close()
	if c.cross {
		// The FIN crosses at the barrier; its arrival is computed there
		// so it trails any same-window data (FIFO via lastArrival).
		now := c.sh.rt.Elapsed()
		c.sh.emit(xmsg{kind: xFin, at: now, rank: c.lh.rank, c: c})
		return nil
	}
	peer := c.peer
	rt := c.sh.rt
	fin := c.lastArrival
	if e := rt.Elapsed() + c.base; e > fin {
		fin = e
	}
	// FIN arrives after all in-flight data (FIFO), closing the peer's
	// inbox so its pending Recv drains buffered messages then ErrClosed.
	rt.Schedule(fin-rt.Elapsed(), func() {
		peer.inbox.Close()
	})
	return nil
}

func (c *conn) LocalAddr() string  { return c.local }
func (c *conn) RemoteAddr() string { return c.remote }

var _ transport.Conn = (*conn)(nil)
var _ transport.Listener = (*listener)(nil)
var _ transport.CallbackListener = (*listener)(nil)
var _ transport.Network = (*nodeNet)(nil)
