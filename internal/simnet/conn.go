package simnet

import (
	"time"

	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// nodeNet is the per-host transport.Network view.
type nodeNet struct {
	n    *Net
	host string
}

func (nn *nodeNet) Listen(addr string) (transport.Listener, error) {
	host, port, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	if host != nn.host {
		return nil, transport.ErrUnreachable
	}
	nn.n.mu.Lock()
	defer nn.n.mu.Unlock()
	h := nn.n.hostLocked(host)
	if h == nil || nn.n.downHost[host] {
		return nil, transport.ErrUnreachable
	}
	if port == "0" {
		for {
			h.nextPort++
			port = itoa(h.nextPort)
			if h.listeners[port] == nil {
				break
			}
		}
	}
	if h.listeners[port] != nil {
		return nil, transport.ErrClosed // port in use
	}
	l := &listener{
		n:       nn.n,
		addr:    host + ":" + port,
		host:    host,
		port:    port,
		acceptq: vtime.NewQueue[*conn](nn.n.rt),
	}
	h.listeners[port] = l
	return l, nil
}

func (nn *nodeNet) Dial(addr string) (transport.Conn, error) {
	rhost, rport, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	n := nn.n
	n.mu.Lock()
	from := n.hostLocked(nn.host)
	to := n.hostLocked(rhost)
	if from == nil {
		n.mu.Unlock()
		return nil, transport.ErrUnreachable
	}
	if n.downHost[nn.host] {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if to == nil {
		n.mu.Unlock()
		return nil, transport.ErrUnreachable
	}
	// SYN travels one way; the handshake result travels back. The dialer
	// observes a full round trip before Dial returns, like TCP.
	synArrival := n.planDelivery(from, to, 64)
	resultq := vtime.NewQueue[dialResult](n.rt)
	n.mu.Unlock()

	n.rt.After(synArrival-n.rt.Elapsed(), func() {
		n.mu.Lock()
		l := to.listeners[rport]
		down := n.downHost[rhost]
		if down || l == nil || l.closed {
			// Connection refused: the RST also takes one trip back.
			back := n.planDelivery(to, from, 64)
			n.mu.Unlock()
			n.rt.After(back-n.rt.Elapsed(), func() {
				resultq.Push(dialResult{err: transport.ErrUnreachable})
			})
			return
		}
		local := nn.host + ":" + itoa(ephemeral(from))
		pair := newConnPair(n, local, l.addr)
		back := n.planDelivery(to, from, 64)
		n.mu.Unlock()
		l.acceptq.Push(pair.server)
		n.rt.After(back-n.rt.Elapsed(), func() {
			resultq.Push(dialResult{c: pair.client})
		})
	})
	r, ok := resultq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return r.c, r.err
}

func ephemeral(h *netHost) int {
	h.nextPort++
	return h.nextPort
}

type dialResult struct {
	c   transport.Conn
	err error
}

func itoa(v int) string {
	// Tiny positive-int formatter to avoid strconv in the hot path.
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

type listener struct {
	n       *Net
	addr    string
	host    string
	port    string
	acceptq *vtime.Queue[*conn]
	closed  bool
}

func (l *listener) Accept() (transport.Conn, error) {
	c, ok := l.acceptq.Pop()
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	l.n.mu.Lock()
	if !l.closed {
		l.closed = true
		if h := l.n.hosts[l.host]; h != nil {
			delete(h.listeners, l.port)
		}
	}
	l.n.mu.Unlock()
	l.acceptq.Close()
	return nil
}

func (l *listener) Addr() string { return l.addr }

// connPair is the shared state of the two directions of one connection.
type connPair struct {
	client *conn
	server *conn
}

// conn is one endpoint. Messages pushed to inbox arrive via delivery
// events; lastArrival clamps arrivals to per-direction FIFO order.
type conn struct {
	n           *Net
	local       string
	remote      string
	localHost   string
	remoteHost  string
	inbox       *vtime.Queue[transport.Message]
	peer        *conn
	closed      bool
	lastArrival time.Duration // FIFO clamp for messages *arriving at peer*
}

func newConnPair(n *Net, clientAddr, serverAddr string) *connPair {
	ch, _, _ := splitAddr(clientAddr)
	sh, _, _ := splitAddr(serverAddr)
	client := &conn{
		n: n, local: clientAddr, remote: serverAddr,
		localHost: ch, remoteHost: sh,
		inbox: vtime.NewQueue[transport.Message](n.rt),
	}
	server := &conn{
		n: n, local: serverAddr, remote: clientAddr,
		localHost: sh, remoteHost: ch,
		inbox: vtime.NewQueue[transport.Message](n.rt),
	}
	client.peer = server
	server.peer = client
	return &connPair{client: client, server: server}
}

// frameOverhead approximates per-message header cost on the wire.
const frameOverhead = 64

func (c *conn) Send(m transport.Message) error {
	n := c.n
	n.mu.Lock()
	if c.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if n.downHost[c.localHost] {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if n.downHost[c.remoteHost] || c.peer.closed {
		// Messages into the void are silently dropped, like TCP segments
		// toward a dead host; the sender learns via higher-level timeout.
		n.mu.Unlock()
		return nil
	}
	from := n.hostLocked(c.localHost)
	to := n.hostLocked(c.remoteHost)
	arrival := n.planDelivery(from, to, m.Size()+frameOverhead)
	if arrival <= c.lastArrival {
		arrival = c.lastArrival + time.Nanosecond
	}
	c.lastArrival = arrival
	peer := c.peer
	n.mu.Unlock()

	// Copy the payload: the sender may reuse its buffer immediately.
	var cp []byte
	if len(m.Payload) > 0 {
		cp = make([]byte, len(m.Payload))
		copy(cp, m.Payload)
	}
	msg := transport.Message{Payload: cp, Virtual: m.Virtual}
	n.rt.After(arrival-n.rt.Elapsed(), func() {
		n.mu.Lock()
		dead := n.downHost[peer.localHost]
		n.mu.Unlock()
		if !dead {
			peer.inbox.Push(msg)
		}
	})
	return nil
}

func (c *conn) Recv() (transport.Message, error) { return c.RecvTimeout(-1) }

func (c *conn) RecvTimeout(d time.Duration) (transport.Message, error) {
	m, err := c.inbox.PopTimeout(d)
	switch err {
	case nil:
		return m, nil
	case vtime.ErrTimeout:
		return transport.Message{}, transport.ErrTimeout
	default:
		return transport.Message{}, transport.ErrClosed
	}
}

func (c *conn) Close() error {
	n := c.n
	n.mu.Lock()
	if c.closed {
		n.mu.Unlock()
		return nil
	}
	c.closed = true
	peer := c.peer
	base := n.topo.SiteLatency(n.topo.Site(c.localHost), n.topo.Site(c.remoteHost))
	fin := c.lastArrival
	if e := n.rt.Elapsed() + base; e > fin {
		fin = e
	}
	n.mu.Unlock()
	c.inbox.Close()
	// FIN arrives after all in-flight data (FIFO), closing the peer's
	// inbox so its pending Recv drains buffered messages then ErrClosed.
	n.rt.After(fin-n.rt.Elapsed(), func() {
		peer.inbox.Close()
	})
	return nil
}

func (c *conn) LocalAddr() string  { return c.local }
func (c *conn) RemoteAddr() string { return c.remote }

var _ transport.Conn = (*conn)(nil)
var _ transport.Listener = (*listener)(nil)
var _ transport.Network = (*nodeNet)(nil)
