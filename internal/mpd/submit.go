package mpd

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/replica"
	"p2pmpi/internal/reservation"
	"p2pmpi/internal/transport"
	"p2pmpi/internal/vtime"
)

// JobSpec is one p2pmpirun invocation:
// p2pmpirun -n N -r R -a Strategy Program Args...
type JobSpec struct {
	Program  string
	Args     []string
	N        int
	R        int
	Strategy core.Strategy
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
	// Algorithms selects the collective implementations used by the
	// job's communicators (zero value = library defaults). Used by the
	// collective-algorithm ablations.
	Algorithms mpi.Algorithms
	// Exclude lists host IDs skipped during booking. The multi-job
	// scheduler feeds its live view of saturated hosts through here, so
	// concurrent submissions do not burn brokering round-trips on hosts
	// guaranteed to answer NOK.
	Exclude []string
	// ReserveRetries enables backoff-retry brokering rounds: when the
	// gathered offers cannot host the request, previously refused peers
	// are re-asked up to this many times before the submission fails.
	// Zero keeps the paper's one-shot §4.2 behaviour.
	ReserveRetries int
	// ReserveBackoff is the base pause before a brokering retry, doubled
	// each round (default 2s).
	ReserveBackoff time.Duration
	// OnAllocated, when set, is invoked with the computed assignment
	// right after allocation succeeds and before the launch phases. The
	// multi-job scheduler uses it to charge the placement to its slot
	// ledger for the lifetime of the job.
	OnAllocated func(*core.Assignment)
	// FailureDetect enables the mid-run failure detector: while waiting
	// for completion reports the submitter probes every silent host at
	// this period and feeds the answers into one replica monitor per
	// rank (internal/replica). A host whose replicas all go stale is
	// declared lost: its unreported slots fail immediately, the peer is
	// marked dead in the cache, and the submission either fails over to
	// the surviving replicas or — when a rank has none left — returns
	// ErrRanksLost right away instead of burning the rest of the
	// timeout. Zero keeps the paper's passive wait-until-timeout
	// behaviour.
	FailureDetect time.Duration
	// FailurePings is how many detect periods a host may stay silent
	// before its replicas are suspected (default 2).
	FailurePings int
	// Preemptable marks the job killable mid-run: hosting MPDs arm a
	// kill channel per local process, and the submitter exposes a
	// Preemption handle through OnPreempt. A killed job fails with
	// ErrPreempted; its reservations return through the normal release
	// paths (never conflict accounting).
	Preemptable bool
	// OnPreempt, when set on a Preemptable spec, receives the job's
	// preemption handle right after allocation succeeds — the earliest
	// instant a kill is meaningful. The multi-job scheduler registers
	// the handle so a starved higher-priority job can evict this one.
	OnPreempt func(*Preemption)
}

// FailoverStats summarises the mid-run failure handling of one
// submission (all zero when FailureDetect was off or nothing failed).
type FailoverStats struct {
	// HostsLost counts hosts the detector declared failed mid-run.
	HostsLost int
	// Failovers counts ranks whose leader (replica 0) was lost while a
	// backup replica delivered — the replication mechanism of §3.2
	// actually paying off.
	Failovers int
	// RanksLost counts ranks with no surviving replica: the job failed.
	RanksLost int
	// Probes counts detector ping probes issued.
	Probes int
}

// JobResult is the submitter's view of a completed job.
type JobResult struct {
	JobID      string
	Key        string
	Assignment *core.Assignment
	// Results holds one entry per process slot, sorted by (rank,
	// replica). Hosts that never reported produce OK=false entries.
	Results []proto.SlotResult
	// Duration is the wall/virtual time from Submit to the last report.
	Duration time.Duration
	// Reserve aggregates the brokering outcomes (offers, refusals, dead
	// peers, rounds) — the raw material of conflict-rate accounting.
	Reserve reservation.Conflicts
	// Failover reports the mid-run failure handling (see FailoverStats).
	Failover FailoverStats
}

// OutputOf returns the captured output of (rank, replica).
func (r *JobResult) OutputOf(rank, replica int) ([]byte, bool) {
	for _, sr := range r.Results {
		if sr.Rank == rank && sr.Replica == replica {
			return sr.Output, sr.OK
		}
	}
	return nil, false
}

// Failures counts slots that did not complete successfully.
func (r *JobResult) Failures() int {
	n := 0
	for _, sr := range r.Results {
		if !sr.OK {
			n++
		}
	}
	return n
}

// LostRanks counts ranks with no successful replica among the results —
// the replication-level failure criterion: a job delivered its work iff
// LostRanks is zero, however many individual replicas died.
func (r *JobResult) LostRanks() int {
	if r.Assignment == nil {
		return 0
	}
	ok := make([]bool, r.Assignment.N)
	for _, sr := range r.Results {
		if sr.OK && sr.Rank >= 0 && sr.Rank < len(ok) {
			ok[sr.Rank] = true
		}
	}
	lost := 0
	for _, v := range ok {
		if !v {
			lost++
		}
	}
	return lost
}

// Submission errors.
var (
	// ErrNotEnoughPeers: even after a cache refresh and brokering, the
	// selected hosts cannot satisfy the request.
	ErrNotEnoughPeers = errors.New("mpd: not enough peers to satisfy the request")
	// ErrLaunchFailed: a prepared host refused or timed out during launch.
	ErrLaunchFailed = errors.New("mpd: launch failed")
	// ErrRanksLost: the mid-run failure detector found a rank whose
	// replicas all died — no surviving copy can deliver the rank's
	// work, so the job is lost (re-book to retry).
	ErrRanksLost = errors.New("mpd: a rank lost every replica")
	// ErrPreempted: the job was checkpoint-killed by scheduler
	// preemption (Preemption.Kill). Terminal, never contention: the
	// scheduler chose to evict this job, so retrying it automatically
	// would undo the eviction.
	ErrPreempted = errors.New("mpd: job preempted")
)

// Preemption is the submitter-side kill switch of one preemptable
// in-flight job. Kill is phase-aware and exactly-once: during the
// launch phases it only marks the job killed — Submit checks the mark
// at each phase boundary and unwinds through the ordinary cancel path,
// so no kill frame races an un-acked Prepare or Start — and once the
// job is running (markRunning) the deferred or direct kill fans
// KillJob out to every used host exactly once. Hosts that died
// meanwhile simply time out; their reservations were already failed by
// the crash path, which is what keeps release exactly-once under
// preemption × churn.
type Preemption struct {
	m     *MPD
	key   string
	hosts []proto.PeerInfo

	mu      sync.Mutex
	killed  bool
	running bool
	sent    bool
}

// Kill requests the job's eviction. Safe from any goroutine; duplicate
// calls are no-ops.
func (p *Preemption) Kill() {
	p.mu.Lock()
	p.killed = true
	send := p.running && !p.sent
	if send {
		p.sent = true
	}
	p.mu.Unlock()
	if send {
		p.sendKills()
	}
}

// Killed reports whether Kill was called.
func (p *Preemption) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// markRunning flips the handle into the running phase; a kill that
// arrived during the launch phases is dispatched now, exactly once.
func (p *Preemption) markRunning() {
	p.mu.Lock()
	p.running = true
	send := p.killed && !p.sent
	if send {
		p.sent = true
	}
	p.mu.Unlock()
	if send {
		p.sendKills()
	}
}

// sendKills fans KillJob out to every used host, fire-and-forget: a
// dead host times out (its crash already failed the reservation) and
// handleKill is idempotent, so duplicates and losses are both safe.
func (p *Preemption) sendKills() {
	for _, h := range p.hosts {
		h := h
		p.m.rt.Go("mpd.kill."+p.m.cfg.Self.ID, func() {
			if reply, err := transport.RequestReply(p.m.net, h.MPDAddr,
				transport.Message{Payload: proto.MustMarshal(&proto.KillJob{Key: p.key})},
				p.m.cfg.ReserveTimeout); err == nil {
				reply.Release()
			}
		})
	}
}

// Submit runs the complete §4.2 procedure. It must be called from an
// actor/goroutine of the daemon's runtime and blocks until the job
// completes or times out.
func (m *MPD) Submit(spec JobSpec) (*JobResult, error) {
	if spec.N < 1 || spec.R < 1 {
		return nil, core.ErrBadRequest
	}
	if spec.Timeout <= 0 {
		spec.Timeout = 5 * time.Minute
	}
	if _, ok := m.cfg.Programs[spec.Program]; !ok {
		return nil, fmt.Errorf("mpd: program %q not in registry", spec.Program)
	}
	started := m.rt.Now()
	need := spec.N * spec.R

	// Step 2 (booking): make sure we know enough nodes; refresh the
	// cached list from the supernode if not. A supernode with bounded
	// replies (MaxPeersReturned) ships one rotating window per fetch, so
	// keep fetching while the cache grows toward the overbooked booking
	// target (not the bare demand — stopping at need would strip the
	// overbook margin that absorbs refusals and dead peers). A single
	// refresh would cap the candidate list at one window regardless of
	// how many hosts the overlay actually has. The loop ends when the
	// target is reached or two consecutive windows teach nothing (the
	// overlay has no more hosts to offer); the iteration cap scales with
	// the target and only backstops a pathological supernode.
	fetchTarget := mathCeil(float64(need)*m.cfg.Overbook) + 2
	for stalls, i := 0, 0; i < 2*fetchTarget+8 && stalls < 2 && m.cache.Size() < fetchTarget; i++ {
		prev := m.cache.Size()
		if err := m.fetchAndUpdate(); err != nil {
			break
		}
		if m.cache.Size() > prev {
			stalls = 0
		} else {
			stalls++
		}
	}

	// Sort by ascending latency and overbook, skipping hosts the caller
	// excluded (the scheduler's live view of saturated hosts).
	excluded := make(map[string]bool, len(spec.Exclude))
	for _, id := range spec.Exclude {
		excluded[id] = true
	}
	ranked := m.cache.RankedView() // read-only iteration: no copy
	candidates := make([]proto.PeerInfo, 0, len(ranked)+1)
	lats := make(map[string]time.Duration, len(ranked)+1)
	if m.cfg.P > 0 && !excluded[m.cfg.Self.ID] {
		// The submitter's own machine is a peer too, at zero latency.
		candidates = append(candidates, m.cfg.Self)
		lats[m.cfg.Self.ID] = 0
	}
	for _, rp := range ranked {
		if excluded[rp.Info.ID] {
			continue
		}
		candidates = append(candidates, rp.Info)
		lats[rp.Info.ID] = rp.Latency
	}
	book := mathCeil(float64(need)*m.cfg.Overbook) + 2
	if book > len(candidates) {
		book = len(candidates)
	}
	candidates = candidates[:book]

	// Step 3 (RS-RS brokering) with a unique hash key: an atomic
	// multi-host acquisition that keeps the n×r closest offers, cancels
	// the surplus, and — when the spec allows retries — re-asks refused
	// peers after a backoff instead of failing outright.
	key := m.newKey()
	jobID := m.newKey()[:16]
	m.mu.Lock()
	m.stats.JobsSubmitted++
	m.mu.Unlock()
	var enough func([]reservation.Offer) bool
	if spec.ReserveRetries > 0 {
		// Retry until the offers pass the §4.2 step 6 feasibility bar:
		// at least r hosts and Σ min(P_i, n) ≥ n×r processes.
		enough = func(offers []reservation.Offer) bool {
			if len(offers) < spec.R {
				return false
			}
			total := 0
			for _, o := range offers {
				total += core.Capacity(o.P, spec.N)
			}
			return total >= need
		}
	}
	res, conflicts, acqErr := reservation.Acquire(m.rt, m.net, candidates, reservation.AcquireSpec{
		Req:     proto.Reserve{Key: key, JobID: jobID, Submitter: m.cfg.Self, N: spec.N},
		Timeout: m.cfg.ReserveTimeout,
		Need:    need,
		Enough:  enough,
		Retries: spec.ReserveRetries,
		Backoff: spec.ReserveBackoff,
	})

	// Step 5: mark silent peers dead in the cache.
	for _, d := range res.Dead {
		if d.ID != m.cfg.Self.ID {
			m.cache.MarkDead(d.ID)
		}
	}
	if acqErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotEnoughPeers, acqErr)
	}

	// Step 6 (allocation): slist is the kept offer list, in ascending
	// latency order (Acquire already cancelled everything beyond n×r).
	slist := res.Offers

	hostSlots := make([]core.HostSlot, 0, len(slist))
	for _, o := range slist {
		hostSlots = append(hostSlots, core.HostSlot{
			ID:      o.Peer.ID,
			Site:    o.Peer.Site,
			P:       o.P,
			Latency: lats[o.Peer.ID],
		})
	}
	asg, err := core.Allocate(hostSlots, spec.N, spec.R, spec.Strategy)
	if err != nil {
		for _, o := range slist {
			m.cancelReservation(o.Peer, key)
		}
		return nil, fmt.Errorf("%w: %v", ErrNotEnoughPeers, err)
	}
	if spec.OnAllocated != nil {
		spec.OnAllocated(asg)
	}

	// Build the slot table; process g listens on ProcBasePort+g at its
	// host. Hosts with u_i = 0 get their reservations cancelled (§4.3).
	infoByID := make(map[string]proto.PeerInfo, len(slist))
	for _, o := range slist {
		infoByID[o.Peer.ID] = o.Peer
	}
	var table []proto.Slot
	var usedHosts []proto.PeerInfo
	global := 0
	for i, placements := range asg.Procs {
		if asg.U[i] == 0 {
			m.cancelReservation(infoByID[asg.Hosts[i].ID], key)
			continue
		}
		info := infoByID[asg.Hosts[i].ID]
		usedHosts = append(usedHosts, info)
		host := hostOf(info.MPDAddr)
		for _, pl := range placements {
			table = append(table, proto.Slot{
				Rank: pl.Rank, Replica: pl.Replica, Global: global,
				HostID: info.ID,
				Addr:   fmt.Sprintf("%s:%d", host, m.cfg.ProcBasePort+global),
			})
			global++
		}
	}

	// The preemption handle exists from allocation onward: a kill
	// during the launch phases only sets the mark (checked at each
	// phase boundary below); one during the run fans out KillJob.
	var pre *Preemption
	if spec.Preemptable {
		pre = &Preemption{m: m, key: key, hosts: usedHosts}
		if spec.OnPreempt != nil {
			spec.OnPreempt(pre)
		}
	}

	// Register the completion mailbox before anything can finish.
	doneMB := m.rt.NewMailbox()
	m.mu.Lock()
	if m.pendingDone == nil {
		m.pendingDone = make(map[string]vtime.Mailbox)
	}
	m.pendingDone[jobID] = doneMB
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pendingDone, jobID)
		m.mu.Unlock()
	}()

	// Phase one: Prepare on every used host (step 6-7).
	prep := &proto.Prepare{
		Key: key, JobID: jobID, Program: spec.Program, Args: spec.Args,
		N: spec.N, R: spec.R, Table: table,
		SubmitterMPD: m.cfg.Self.MPDAddr,
		Deadline:     spec.Timeout,
		Algorithms:   packAlgorithms(spec.Algorithms),
		Preemptable:  spec.Preemptable,
	}
	if err := m.fanOutReady(usedHosts, prep); err != nil {
		// Hosts whose Prepare succeeded already consumed their
		// reservation into a running application: cancelLaunch unwinds
		// both the RS hold and the prepared job.
		for _, o := range slist {
			m.cancelLaunch(o.Peer, key)
		}
		return nil, err
	}
	if pre != nil && pre.Killed() {
		// Killed during phase one: nothing started anywhere, so unwind
		// exactly like a failed Prepare — no kill frames needed.
		for _, o := range slist {
			m.cancelLaunch(o.Peer, key)
		}
		return nil, ErrPreempted
	}

	// Phase two: Start everywhere (step 8).
	if err := m.fanOutStart(usedHosts, key); err != nil {
		// Hosts that did receive Start run to completion and release
		// themselves; abortUnstarted is a no-op there.
		for _, h := range usedHosts {
			m.cancelLaunch(h, key)
		}
		return nil, err
	}
	if pre != nil {
		// Running from here on: a kill marked during the launch phases
		// is dispatched now, later ones go out directly.
		pre.markRunning()
	}

	// Collect one JobDone per used host — with spec.FailureDetect set,
	// under the watch of the mid-run failure detector.
	co := m.collectResults(spec, jobID, usedHosts, table, doneMB)

	out := &JobResult{
		JobID:      jobID,
		Key:        key,
		Assignment: asg,
		Duration:   m.rt.Now().Sub(started),
		Reserve:    conflicts,
		Failover:   co.failover,
	}
	okReplicas := make(map[int][]int, spec.N) // rank -> replicas that delivered
	for _, s := range table {
		slot := [2]int{s.Rank, s.Replica}
		if sr, ok := co.resultBySlot[slot]; ok {
			out.Results = append(out.Results, sr)
			if sr.OK {
				okReplicas[sr.Rank] = append(okReplicas[sr.Rank], sr.Replica)
			}
			continue
		}
		reason := "no completion report from host " + s.HostID
		if why, lost := co.lostSlots[slot]; lost {
			reason = why
		}
		out.Results = append(out.Results, proto.SlotResult{
			Rank: s.Rank, Replica: s.Replica, OK: false, Err: reason,
		})
	}
	sort.Slice(out.Results, func(i, j int) bool {
		if out.Results[i].Rank != out.Results[j].Rank {
			return out.Results[i].Rank < out.Results[j].Rank
		}
		return out.Results[i].Replica < out.Results[j].Replica
	})

	// Failover accounting: a rank failed over when it delivered but its
	// leader (replica 0) was not among the survivors. RanksLost comes
	// from the detector (collectResults) — only ranks *confirmed*
	// unable to deliver count, not ranks merely pending when an early
	// abort cut the wait short.
	for rank := 0; rank < spec.N; rank++ {
		oks := okReplicas[rank]
		if len(oks) == 0 {
			continue
		}
		leader := oks[0]
		for _, r := range oks[1:] {
			if r < leader {
				leader = r
			}
		}
		if leader > 0 {
			out.Failover.Failovers++
		}
	}
	// Preemption outranks the detector's verdict: a killed job's ranks
	// are "lost" by design, and reporting them as ErrRanksLost would
	// send the job back through churn's re-book path — undoing the
	// eviction the scheduler just paid for.
	if pre != nil && pre.Killed() {
		return out, fmt.Errorf("%w: job %s", ErrPreempted, jobID)
	}
	if spec.FailureDetect > 0 && out.Failover.RanksLost > 0 {
		return out, fmt.Errorf("%w: %d of %d ranks", ErrRanksLost, out.Failover.RanksLost, spec.N)
	}
	return out, nil
}

// collectOutcome is what collectResults hands back to Submit.
type collectOutcome struct {
	resultBySlot map[[2]int]proto.SlotResult
	lostSlots    map[[2]int]string // unreported slots on hosts declared dead
	failover     FailoverStats
}

// collectResults waits for one JobDone per used host, bounded by the
// job timeout. When spec.FailureDetect > 0 it interleaves a §3.2-style
// failure detector: every detect period the still-silent hosts are
// probed with application-level pings, answers feed one replica monitor
// per rank (replica.NewMonitor), and Suspect declares replicas on stale
// hosts dead. A host whose replicas are all dead is written off — its
// pending slots fail, the peer is marked dead in the cache — and the
// wait ends early once either every host is accounted for or some rank
// has no surviving replica left.
func (m *MPD) collectResults(spec JobSpec, jobID string, usedHosts []proto.PeerInfo,
	table []proto.Slot, doneMB vtime.Mailbox) collectOutcome {

	detect := spec.FailureDetect
	pingsNeeded := spec.FailurePings
	if pingsNeeded <= 0 {
		pingsNeeded = 2
	}
	deadline := m.rt.Now().Add(spec.Timeout)

	co := collectOutcome{
		resultBySlot: make(map[[2]int]proto.SlotResult),
		lostSlots:    make(map[[2]int]string),
	}
	outstanding := make(map[string]proto.PeerInfo, len(usedHosts))
	hostInfo := make(map[string]proto.PeerInfo, len(usedHosts))
	for _, h := range usedHosts {
		outstanding[h.ID] = h
		hostInfo[h.ID] = h
	}
	slotsByHost := make(map[string][]proto.Slot, len(usedHosts))
	pending := make([]int, spec.N) // undecided slots per rank
	okCount := make([]int, spec.N)
	for _, s := range table {
		slotsByHost[s.HostID] = append(slotsByHost[s.HostID], s)
		pending[s.Rank]++
	}
	var groups []*replica.Group
	if detect > 0 {
		now := m.rt.Now()
		// A replica is suspected after missing pingsNeeded whole probe
		// periods (plus the in-flight probe's own timeout).
		failTO := time.Duration(pingsNeeded)*detect + m.cfg.ReserveTimeout
		groups = make([]*replica.Group, spec.N)
		for k := range groups {
			groups[k] = replica.NewMonitor(spec.R, failTO, now)
		}
	}

	// writtenOff records hosts the detector declared lost, so that only
	// a report from an actually written-off host retracts a loss — a
	// merely duplicated JobDone (the host reported twice: network-level
	// duplication, or a retransmit whose first copy arrived) must not
	// decrement HostsLost for a write-off that never happened.
	writtenOff := make(map[string]bool)

	// ingest folds one completion report into the bookkeeping. A report
	// from a host the detector already wrote off retracts the loss:
	// delivered work counts, and the report itself proves the peer
	// alive, so the write-off's cache eviction is reverted too.
	ingest := func(d *proto.JobDone) {
		if _, waiting := outstanding[d.HostID]; !waiting {
			if writtenOff[d.HostID] {
				delete(writtenOff, d.HostID)
				co.failover.HostsLost--
				if info, ok := hostInfo[d.HostID]; ok {
					m.cache.Update([]proto.PeerInfo{info})
				}
			}
		}
		delete(outstanding, d.HostID)
		for _, sr := range d.Results {
			if sr.Rank < 0 || sr.Rank >= spec.N || sr.Replica < 0 || sr.Replica >= spec.R {
				continue
			}
			slot := [2]int{sr.Rank, sr.Replica}
			if _, seen := co.resultBySlot[slot]; seen {
				continue // duplicate report
			}
			if _, wroteOff := co.lostSlots[slot]; wroteOff {
				delete(co.lostSlots, slot) // pending already settled
			} else {
				pending[sr.Rank]--
			}
			co.resultBySlot[slot] = sr
			if sr.OK {
				okCount[sr.Rank]++
			} else if groups != nil {
				groups[sr.Rank].MarkDead(sr.Replica)
			}
		}
	}

	// probeRound runs one detector pass over the still-silent hosts and
	// reports whether some rank is now confirmed unable to deliver.
	// Hosts are visited in sorted order: every probe consumes seeded
	// nonce and jitter draws, and map order would leak runtime
	// randomization into the virtual timeline.
	probeRound := func() (rankLost bool) {
		ids := sortedHostIDs(outstanding)
		// Capture each replica's incarnation epoch before soliciting
		// heartbeats: an answer produced by a pre-failover incarnation
		// (late, duplicated, or raced by a death declaration while the
		// probes were in flight) then fails the epoch check in
		// HeartbeatAt instead of resurrecting a written-off replica.
		epochs := make(map[[2]int]uint64, len(ids))
		for _, id := range ids {
			for _, s := range slotsByHost[id] {
				epochs[[2]int{s.Rank, s.Replica}] = groups[s.Rank].Epoch(s.Replica)
			}
		}
		answers := m.probeHosts(ids, outstanding, jobID)
		co.failover.Probes += len(ids)
		// Completion reports that arrived while the probes were in
		// flight take precedence over the probes' verdicts: a host that
		// finished mid-round answers Known=false (the job is gone from
		// its table — because it completed), and judging that silence
		// without draining the queue would write off delivered work.
		for doneMB.Len() > 0 {
			if v, ok := doneMB.Pop(); ok {
				ingest(v.(*proto.JobDone))
			}
		}
		now := m.rt.Now()
		for _, id := range ids {
			if _, waiting := outstanding[id]; !waiting {
				continue // reported during the probe round
			}
			switch answers[id] {
			case probeAlive:
				for _, s := range slotsByHost[id] {
					groups[s.Rank].HeartbeatAt(s.Replica, epochs[[2]int{s.Rank, s.Replica}], now)
				}
			case probeGone:
				// The host answers but no longer knows the job: it
				// crashed and rebooted mid-run. Its processes are
				// definitively gone — no staleness threshold needed.
				for _, s := range slotsByHost[id] {
					groups[s.Rank].MarkDead(s.Replica)
				}
			case probeSilent:
				// No heartbeat; the staleness window decides below.
			}
		}
		for _, g := range groups {
			g.Suspect(now)
		}
		for _, id := range ids {
			if _, waiting := outstanding[id]; !waiting {
				continue // reported during the probe round
			}
			lost := true
			for _, s := range slotsByHost[id] {
				if groups[s.Rank].Alive(s.Replica) {
					lost = false
					break
				}
			}
			if !lost {
				continue
			}
			delete(outstanding, id)
			writtenOff[id] = true
			co.failover.HostsLost++
			m.cache.MarkDead(id)
			for _, s := range slotsByHost[id] {
				slot := [2]int{s.Rank, s.Replica}
				if _, done := co.resultBySlot[slot]; done {
					continue
				}
				co.lostSlots[slot] = "host " + id + " failed mid-run (detector)"
				pending[s.Rank]--
			}
		}
		// Early exit: a rank with no delivered and no pending replica
		// can never succeed, so waiting out the rest of the timeout
		// only inflates the measured completion time of a lost job.
		for rank := 0; rank < spec.N; rank++ {
			if okCount[rank] == 0 && pending[rank] <= 0 {
				return true
			}
		}
		return false
	}

	// The probe cadence is a fixed schedule, not a silence timer: a
	// steady trickle of completion reports arriving under one detect
	// period apart must not postpone detection of an early host death.
	nextProbe := m.rt.Now().Add(detect)
collect:
	for len(outstanding) > 0 {
		wait := deadline.Sub(m.rt.Now())
		if wait <= 0 {
			break // deadline reached: a zero-wait pop would spin forever
		}
		step := wait
		if detect > 0 {
			until := nextProbe.Sub(m.rt.Now())
			if until <= 0 {
				if probeRound() {
					break collect
				}
				nextProbe = m.rt.Now().Add(detect)
				continue
			}
			if until < step {
				step = until
			}
		}
		v, err := doneMB.PopTimeout(step)
		if err == nil {
			ingest(v.(*proto.JobDone))
			continue
		}
		if err != vtime.ErrTimeout {
			break collect // mailbox closed: the daemon is shutting down
		}
		// detect <= 0: passive wait, only the deadline ends it.
		// detect > 0: the pop timed out at the probe fence — the next
		// iteration runs the round.
	}
	// A rank is confirmed lost when no replica delivered and none is
	// still pending — every copy reported failure or was written off
	// with its host. Ranks merely pending (deadline expiry, early
	// abort for another rank's loss) are not counted: their fate is
	// unknown, and the legacy no-report accounting covers them.
	for rank := 0; rank < spec.N; rank++ {
		if okCount[rank] == 0 && pending[rank] <= 0 {
			co.failover.RanksLost++
		}
	}
	return co
}

// sortedHostIDs returns the map's keys in ascending order.
func sortedHostIDs(hosts map[string]proto.PeerInfo) []string {
	ids := make([]string, 0, len(hosts))
	for id := range hosts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// probeResult classifies one detector probe.
type probeResult int

const (
	// probeSilent: no answer before the timeout (host down or
	// partitioned) — staleness accumulates.
	probeSilent probeResult = iota
	// probeAlive: the host still hosts the job — a fresh heartbeat.
	probeAlive
	// probeGone: the host answers but no longer knows the job — it
	// crashed and rebooted mid-run, so its processes are dead for sure.
	probeGone
)

// probeHosts sends one JobPing to every given host concurrently — the
// detector's application-level heartbeat (§4.1-style, never ICMP) at
// job granularity, so a host reboot cannot masquerade as process
// liveness.
func (m *MPD) probeHosts(ids []string, hosts map[string]proto.PeerInfo, jobID string) map[string]probeResult {
	type ans struct {
		id  string
		res probeResult
	}
	mb := m.rt.NewMailbox()
	for _, id := range ids {
		id, info := id, hosts[id]
		m.rt.Go("mpd.detect."+m.cfg.Self.ID, func() {
			nonce := m.nextNonce()
			a := ans{id: id, res: probeSilent}
			reply, err := transport.RequestReply(m.net, info.MPDAddr,
				transport.Message{Payload: proto.MustMarshal(&proto.JobPing{Nonce: nonce, JobID: jobID})},
				m.cfg.ReserveTimeout)
			if err == nil {
				var pong proto.JobPong
				perr := proto.DecodeInto(reply.Payload, &pong)
				reply.Release()
				if perr == nil && pong.Nonce == nonce {
					if pong.Known {
						a.res = probeAlive
					} else {
						a.res = probeGone
					}
				}
			}
			mb.Push(a)
		})
	}
	answers := make(map[string]probeResult, len(ids))
	for range ids {
		v, err := mb.PopTimeout(2*m.cfg.ReserveTimeout + 15*time.Second)
		if err != nil {
			break
		}
		a := v.(ans)
		answers[a.id] = a.res
	}
	return answers
}

// fanOutReady sends Prepare to every host and fails if any is not
// Ready. Error classification (the transport.Retryable audit): a
// retryable failure — the exchange timed out or the listener was
// briefly unreachable — is re-attempted under the daemon's retry
// policy, because under a partition or gray link the host is alive and
// handlePrepare is idempotent (a duplicate Prepare whose first Ready
// was lost answers OK again). Only after the budget is exhausted, or
// on a terminal "peer gone" error (transport.ErrClosed), is the host
// marked dead in the cache so the re-booking retry a scheduler issues
// does not select it again — at launch time a host that stays silent
// through every retry is indistinguishable from a dead one, and the
// cache entry is re-learned on the next refresh either way.
func (m *MPD) fanOutReady(hosts []proto.PeerInfo, prep *proto.Prepare) error {
	type ans struct {
		host string
		ok   bool
		dead bool
		why  string
	}
	mb := m.rt.NewMailbox()
	for _, h := range hosts {
		h := h
		m.rt.Go("mpd.prepare."+m.cfg.Self.ID, func() {
			a := ans{host: h.ID}
			var reply transport.Message
			err := m.withRetry(h.MPDAddr, func() error {
				var e error
				reply, e = transport.RequestReply(m.net, h.MPDAddr,
					transport.Message{Payload: proto.MustMarshal(prep)}, m.cfg.PrepareTimeout)
				return e
			})
			if err != nil {
				a.dead, a.why = true, err.Error()
			} else {
				var rdy proto.Ready
				perr := proto.DecodeInto(reply.Payload, &rdy)
				reply.Release()
				if perr == nil {
					a.ok, a.why = rdy.OK, rdy.Reason
				}
			}
			mb.Push(a)
		})
	}
	var firstErr error
	for range hosts {
		v, err := mb.PopTimeout(2*m.rpcDeadline(m.cfg.PrepareTimeout) + 15*time.Second)
		if err != nil {
			return fmt.Errorf("%w: prepare fan-out stalled", ErrLaunchFailed)
		}
		a := v.(ans)
		if a.dead && a.host != m.cfg.Self.ID {
			m.cache.MarkDead(a.host)
		}
		if !a.ok && firstErr == nil {
			firstErr = fmt.Errorf("%w: host %s: %s", ErrLaunchFailed, a.host, a.why)
		}
	}
	return firstErr
}

// fanOutStart sends Start to every host and waits for the acks.
// Retryable failures re-send under the daemon's retry policy —
// handleStart is idempotent (a duplicate Start on a started job just
// acks), so a lost StartAck cannot double-launch.
func (m *MPD) fanOutStart(hosts []proto.PeerInfo, key string) error {
	mb := m.rt.NewMailbox()
	for _, h := range hosts {
		h := h
		m.rt.Go("mpd.start."+m.cfg.Self.ID, func() {
			err := m.withRetry(h.MPDAddr, func() error {
				_, e := transport.RequestReply(m.net, h.MPDAddr,
					transport.Message{Payload: proto.MustMarshal(&proto.Start{Key: key})},
					m.cfg.StartTimeout)
				return e
			})
			mb.Push(err == nil)
		})
	}
	for range hosts {
		v, err := mb.PopTimeout(2*m.rpcDeadline(m.cfg.StartTimeout) + 15*time.Second)
		if err != nil || !v.(bool) {
			return fmt.Errorf("%w: start fan-out failed", ErrLaunchFailed)
		}
	}
	return nil
}

// rpcDeadline bounds one retried exchange for fan-out stall timers:
// every attempt's timeout plus the largest possible backoff sequence.
// Identical to the bare timeout when retries are off.
func (m *MPD) rpcDeadline(timeout time.Duration) time.Duration {
	r := m.cfg.RPCRetries
	if r <= 0 {
		return timeout
	}
	base := m.cfg.RPCBackoff
	if base <= 0 {
		base = time.Second
	}
	maxBackoff := time.Duration(1.5 * float64(base) * float64((uint64(1)<<uint(r))-1))
	return time.Duration(r+1)*timeout + maxBackoff
}

// cancelLaunch unwinds one host after a failed launch phase: the RS
// hold (if the job never got past brokering there) and the
// prepared-but-unstarted application (if Prepare already consumed the
// hold) are both dropped.
func (m *MPD) cancelLaunch(peer proto.PeerInfo, key string) {
	m.cancelReservation(peer, key)
	if peer.MPDAddr == "" {
		return
	}
	m.rt.Go("mpd.cancel."+m.cfg.Self.ID, func() {
		transport.RequestReply(m.net, peer.MPDAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Cancel{Key: key})},
			m.cfg.ReserveTimeout)
	})
}

func (m *MPD) cancelReservation(peer proto.PeerInfo, key string) {
	if peer.RSAddr == "" {
		return
	}
	m.rt.Go("mpd.cancel."+m.cfg.Self.ID, func() {
		transport.RequestReply(m.net, peer.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Cancel{Key: key})},
			m.cfg.ReserveTimeout)
	})
}

// packAlgorithms flattens the algorithm selectors into the wire layout
// of proto.Prepare.Algorithms.
func packAlgorithms(a mpi.Algorithms) [5]int {
	return [5]int{int(a.Bcast), int(a.Reduce), int(a.Allreduce),
		int(a.Allgather), int(a.Alltoall)}
}

// unpackAlgorithms reverses packAlgorithms.
func unpackAlgorithms(v [5]int) mpi.Algorithms {
	return mpi.Algorithms{
		Bcast:     mpi.BcastAlg(v[0]),
		Reduce:    mpi.ReduceAlg(v[1]),
		Allreduce: mpi.AllreduceAlg(v[2]),
		Allgather: mpi.AllgatherAlg(v[3]),
		Alltoall:  mpi.AlltoallAlg(v[4]),
	}
}

// Hostname is the built-in program used by the paper's co-allocation
// experiment: every process simply echoes the name of its host.
func Hostname(env *Env) error {
	_, err := fmt.Fprintf(&env.Out, "%s", env.HostID)
	return err
}

// Spin is the built-in program of the churn experiments: it occupies
// its process for the duration given as the job's first argument (a
// bare number of seconds like "90", or a Go duration like "2m30s";
// default 30s), then echoes its host name like Hostname. A run long
// enough for seeded failures to strike mid-flight is what turns the
// replication degree into an observable survival edge.
func Spin(env *Env) error {
	d := 30 * time.Second
	if len(env.Args) > 0 {
		if secs, err := strconv.ParseFloat(env.Args[0], 64); err == nil {
			d = time.Duration(secs * float64(time.Second))
		} else if pd, err := time.ParseDuration(env.Args[0]); err == nil {
			d = pd
		} else {
			return fmt.Errorf("spin: bad duration %q", env.Args[0])
		}
	}
	if d > 0 {
		// Preemptible: a checkpoint-kill mid-spin ends the process with
		// ErrPreempted instead of burning the rest of the duration. For
		// non-preemptable jobs this is exactly RT.Sleep.
		if err := env.SleepPreemptible(d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(&env.Out, "%s", env.HostID)
	return err
}

// Estimator re-exports the latency kinds for configuration convenience.
var _ = latency.KindLast
