package mpd

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/latency"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/reservation"
	"p2pmpi/internal/transport"
)

// JobSpec is one p2pmpirun invocation:
// p2pmpirun -n N -r R -a Strategy Program Args...
type JobSpec struct {
	Program  string
	Args     []string
	N        int
	R        int
	Strategy core.Strategy
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
	// Algorithms selects the collective implementations used by the
	// job's communicators (zero value = library defaults). Used by the
	// collective-algorithm ablations.
	Algorithms mpi.Algorithms
	// Exclude lists host IDs skipped during booking. The multi-job
	// scheduler feeds its live view of saturated hosts through here, so
	// concurrent submissions do not burn brokering round-trips on hosts
	// guaranteed to answer NOK.
	Exclude []string
	// ReserveRetries enables backoff-retry brokering rounds: when the
	// gathered offers cannot host the request, previously refused peers
	// are re-asked up to this many times before the submission fails.
	// Zero keeps the paper's one-shot §4.2 behaviour.
	ReserveRetries int
	// ReserveBackoff is the base pause before a brokering retry, doubled
	// each round (default 2s).
	ReserveBackoff time.Duration
	// OnAllocated, when set, is invoked with the computed assignment
	// right after allocation succeeds and before the launch phases. The
	// multi-job scheduler uses it to charge the placement to its slot
	// ledger for the lifetime of the job.
	OnAllocated func(*core.Assignment)
}

// JobResult is the submitter's view of a completed job.
type JobResult struct {
	JobID      string
	Key        string
	Assignment *core.Assignment
	// Results holds one entry per process slot, sorted by (rank,
	// replica). Hosts that never reported produce OK=false entries.
	Results []proto.SlotResult
	// Duration is the wall/virtual time from Submit to the last report.
	Duration time.Duration
	// Reserve aggregates the brokering outcomes (offers, refusals, dead
	// peers, rounds) — the raw material of conflict-rate accounting.
	Reserve reservation.Conflicts
}

// OutputOf returns the captured output of (rank, replica).
func (r *JobResult) OutputOf(rank, replica int) ([]byte, bool) {
	for _, sr := range r.Results {
		if sr.Rank == rank && sr.Replica == replica {
			return sr.Output, sr.OK
		}
	}
	return nil, false
}

// Failures counts slots that did not complete successfully.
func (r *JobResult) Failures() int {
	n := 0
	for _, sr := range r.Results {
		if !sr.OK {
			n++
		}
	}
	return n
}

// Submission errors.
var (
	// ErrNotEnoughPeers: even after a cache refresh and brokering, the
	// selected hosts cannot satisfy the request.
	ErrNotEnoughPeers = errors.New("mpd: not enough peers to satisfy the request")
	// ErrLaunchFailed: a prepared host refused or timed out during launch.
	ErrLaunchFailed = errors.New("mpd: launch failed")
)

// Submit runs the complete §4.2 procedure. It must be called from an
// actor/goroutine of the daemon's runtime and blocks until the job
// completes or times out.
func (m *MPD) Submit(spec JobSpec) (*JobResult, error) {
	if spec.N < 1 || spec.R < 1 {
		return nil, core.ErrBadRequest
	}
	if spec.Timeout <= 0 {
		spec.Timeout = 5 * time.Minute
	}
	if _, ok := m.cfg.Programs[spec.Program]; !ok {
		return nil, fmt.Errorf("mpd: program %q not in registry", spec.Program)
	}
	started := m.rt.Now()
	need := spec.N * spec.R

	// Step 2 (booking): make sure we know enough nodes; refresh the
	// cached list from the supernode if not. A supernode with bounded
	// replies (MaxPeersReturned) ships one rotating window per fetch, so
	// keep fetching while the cache grows toward the overbooked booking
	// target (not the bare demand — stopping at need would strip the
	// overbook margin that absorbs refusals and dead peers). A single
	// refresh would cap the candidate list at one window regardless of
	// how many hosts the overlay actually has. The loop ends when the
	// target is reached or two consecutive windows teach nothing (the
	// overlay has no more hosts to offer); the iteration cap scales with
	// the target and only backstops a pathological supernode.
	fetchTarget := mathCeil(float64(need)*m.cfg.Overbook) + 2
	for stalls, i := 0, 0; i < 2*fetchTarget+8 && stalls < 2 && m.cache.Size() < fetchTarget; i++ {
		prev := m.cache.Size()
		peers, err := m.fetchAny()
		if err != nil {
			break
		}
		m.cache.Update(peers)
		if m.cache.Size() > prev {
			stalls = 0
		} else {
			stalls++
		}
	}

	// Sort by ascending latency and overbook, skipping hosts the caller
	// excluded (the scheduler's live view of saturated hosts).
	excluded := make(map[string]bool, len(spec.Exclude))
	for _, id := range spec.Exclude {
		excluded[id] = true
	}
	ranked := m.cache.Ranked()
	candidates := make([]proto.PeerInfo, 0, len(ranked)+1)
	lats := make(map[string]time.Duration, len(ranked)+1)
	if m.cfg.P > 0 && !excluded[m.cfg.Self.ID] {
		// The submitter's own machine is a peer too, at zero latency.
		candidates = append(candidates, m.cfg.Self)
		lats[m.cfg.Self.ID] = 0
	}
	for _, rp := range ranked {
		if excluded[rp.Info.ID] {
			continue
		}
		candidates = append(candidates, rp.Info)
		lats[rp.Info.ID] = rp.Latency
	}
	book := mathCeil(float64(need)*m.cfg.Overbook) + 2
	if book > len(candidates) {
		book = len(candidates)
	}
	candidates = candidates[:book]

	// Step 3 (RS-RS brokering) with a unique hash key: an atomic
	// multi-host acquisition that keeps the n×r closest offers, cancels
	// the surplus, and — when the spec allows retries — re-asks refused
	// peers after a backoff instead of failing outright.
	key := m.newKey()
	jobID := m.newKey()[:16]
	m.mu.Lock()
	m.stats.JobsSubmitted++
	m.mu.Unlock()
	var enough func([]reservation.Offer) bool
	if spec.ReserveRetries > 0 {
		// Retry until the offers pass the §4.2 step 6 feasibility bar:
		// at least r hosts and Σ min(P_i, n) ≥ n×r processes.
		enough = func(offers []reservation.Offer) bool {
			if len(offers) < spec.R {
				return false
			}
			total := 0
			for _, o := range offers {
				total += core.Capacity(o.P, spec.N)
			}
			return total >= need
		}
	}
	res, conflicts, acqErr := reservation.Acquire(m.rt, m.net, candidates, reservation.AcquireSpec{
		Req:     proto.Reserve{Key: key, JobID: jobID, Submitter: m.cfg.Self, N: spec.N},
		Timeout: m.cfg.ReserveTimeout,
		Need:    need,
		Enough:  enough,
		Retries: spec.ReserveRetries,
		Backoff: spec.ReserveBackoff,
	})

	// Step 5: mark silent peers dead in the cache.
	for _, d := range res.Dead {
		if d.ID != m.cfg.Self.ID {
			m.cache.MarkDead(d.ID)
		}
	}
	if acqErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotEnoughPeers, acqErr)
	}

	// Step 6 (allocation): slist is the kept offer list, in ascending
	// latency order (Acquire already cancelled everything beyond n×r).
	slist := res.Offers

	hostSlots := make([]core.HostSlot, 0, len(slist))
	for _, o := range slist {
		hostSlots = append(hostSlots, core.HostSlot{
			ID:      o.Peer.ID,
			Site:    o.Peer.Site,
			P:       o.P,
			Latency: lats[o.Peer.ID],
		})
	}
	asg, err := core.Allocate(hostSlots, spec.N, spec.R, spec.Strategy)
	if err != nil {
		for _, o := range slist {
			m.cancelReservation(o.Peer, key)
		}
		return nil, fmt.Errorf("%w: %v", ErrNotEnoughPeers, err)
	}
	if spec.OnAllocated != nil {
		spec.OnAllocated(asg)
	}

	// Build the slot table; process g listens on ProcBasePort+g at its
	// host. Hosts with u_i = 0 get their reservations cancelled (§4.3).
	infoByID := make(map[string]proto.PeerInfo, len(slist))
	for _, o := range slist {
		infoByID[o.Peer.ID] = o.Peer
	}
	var table []proto.Slot
	var usedHosts []proto.PeerInfo
	global := 0
	for i, placements := range asg.Procs {
		if asg.U[i] == 0 {
			m.cancelReservation(infoByID[asg.Hosts[i].ID], key)
			continue
		}
		info := infoByID[asg.Hosts[i].ID]
		usedHosts = append(usedHosts, info)
		host := hostOf(info.MPDAddr)
		for _, pl := range placements {
			table = append(table, proto.Slot{
				Rank: pl.Rank, Replica: pl.Replica, Global: global,
				HostID: info.ID,
				Addr:   fmt.Sprintf("%s:%d", host, m.cfg.ProcBasePort+global),
			})
			global++
		}
	}

	// Register the completion mailbox before anything can finish.
	doneMB := m.rt.NewMailbox()
	m.mu.Lock()
	m.pendingDone[jobID] = doneMB
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pendingDone, jobID)
		m.mu.Unlock()
	}()

	// Phase one: Prepare on every used host (step 6-7).
	prep := &proto.Prepare{
		Key: key, JobID: jobID, Program: spec.Program, Args: spec.Args,
		N: spec.N, R: spec.R, Table: table,
		SubmitterMPD: m.cfg.Self.MPDAddr,
		Deadline:     spec.Timeout,
		Algorithms:   packAlgorithms(spec.Algorithms),
	}
	if err := m.fanOutReady(usedHosts, prep); err != nil {
		for _, o := range slist {
			m.cancelReservation(o.Peer, key)
		}
		return nil, err
	}

	// Phase two: Start everywhere (step 8).
	if err := m.fanOutStart(usedHosts, key); err != nil {
		return nil, err
	}

	// Collect one JobDone per used host.
	resultBySlot := make(map[[2]int]proto.SlotResult)
	deadline := m.rt.Now().Add(spec.Timeout)
	for reported := 0; reported < len(usedHosts); reported++ {
		wait := deadline.Sub(m.rt.Now())
		if wait < 0 {
			break
		}
		v, err := doneMB.PopTimeout(wait)
		if err != nil {
			break
		}
		d := v.(*proto.JobDone)
		for _, sr := range d.Results {
			resultBySlot[[2]int{sr.Rank, sr.Replica}] = sr
		}
	}

	out := &JobResult{
		JobID:      jobID,
		Key:        key,
		Assignment: asg,
		Duration:   m.rt.Now().Sub(started),
		Reserve:    conflicts,
	}
	for _, s := range table {
		if sr, ok := resultBySlot[[2]int{s.Rank, s.Replica}]; ok {
			out.Results = append(out.Results, sr)
		} else {
			out.Results = append(out.Results, proto.SlotResult{
				Rank: s.Rank, Replica: s.Replica, OK: false,
				Err: "no completion report from host " + s.HostID,
			})
		}
	}
	sort.Slice(out.Results, func(i, j int) bool {
		if out.Results[i].Rank != out.Results[j].Rank {
			return out.Results[i].Rank < out.Results[j].Rank
		}
		return out.Results[i].Replica < out.Results[j].Replica
	})
	return out, nil
}

// fanOutReady sends Prepare to every host and fails if any is not Ready.
func (m *MPD) fanOutReady(hosts []proto.PeerInfo, prep *proto.Prepare) error {
	type ans struct {
		host string
		ok   bool
		why  string
	}
	mb := m.rt.NewMailbox()
	for _, h := range hosts {
		h := h
		m.rt.Go("mpd.prepare."+m.cfg.Self.ID, func() {
			a := ans{host: h.ID}
			reply, err := transport.RequestReply(m.net, h.MPDAddr,
				transport.Message{Payload: proto.MustMarshal(prep)}, m.cfg.PrepareTimeout)
			if err != nil {
				a.why = err.Error()
			} else if _, msg, err := proto.Unmarshal(reply.Payload); err == nil {
				if rdy, ok := msg.(*proto.Ready); ok {
					a.ok, a.why = rdy.OK, rdy.Reason
				}
			}
			mb.Push(a)
		})
	}
	var firstErr error
	for range hosts {
		v, err := mb.PopTimeout(2*m.cfg.PrepareTimeout + 15*time.Second)
		if err != nil {
			return fmt.Errorf("%w: prepare fan-out stalled", ErrLaunchFailed)
		}
		a := v.(ans)
		if !a.ok && firstErr == nil {
			firstErr = fmt.Errorf("%w: host %s: %s", ErrLaunchFailed, a.host, a.why)
		}
	}
	return firstErr
}

// fanOutStart sends Start to every host and waits for the acks.
func (m *MPD) fanOutStart(hosts []proto.PeerInfo, key string) error {
	mb := m.rt.NewMailbox()
	for _, h := range hosts {
		h := h
		m.rt.Go("mpd.start."+m.cfg.Self.ID, func() {
			_, err := transport.RequestReply(m.net, h.MPDAddr,
				transport.Message{Payload: proto.MustMarshal(&proto.Start{Key: key})},
				m.cfg.StartTimeout)
			mb.Push(err == nil)
		})
	}
	for range hosts {
		v, err := mb.PopTimeout(2*m.cfg.StartTimeout + 15*time.Second)
		if err != nil || !v.(bool) {
			return fmt.Errorf("%w: start fan-out failed", ErrLaunchFailed)
		}
	}
	return nil
}

func (m *MPD) cancelReservation(peer proto.PeerInfo, key string) {
	if peer.RSAddr == "" {
		return
	}
	m.rt.Go("mpd.cancel."+m.cfg.Self.ID, func() {
		transport.RequestReply(m.net, peer.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Cancel{Key: key})},
			m.cfg.ReserveTimeout)
	})
}

// packAlgorithms flattens the algorithm selectors into the wire layout
// of proto.Prepare.Algorithms.
func packAlgorithms(a mpi.Algorithms) [5]int {
	return [5]int{int(a.Bcast), int(a.Reduce), int(a.Allreduce),
		int(a.Allgather), int(a.Alltoall)}
}

// unpackAlgorithms reverses packAlgorithms.
func unpackAlgorithms(v [5]int) mpi.Algorithms {
	return mpi.Algorithms{
		Bcast:     mpi.BcastAlg(v[0]),
		Reduce:    mpi.ReduceAlg(v[1]),
		Allreduce: mpi.AllreduceAlg(v[2]),
		Allgather: mpi.AllgatherAlg(v[3]),
		Alltoall:  mpi.AlltoallAlg(v[4]),
	}
}

// Hostname is the built-in program used by the paper's co-allocation
// experiment: every process simply echoes the name of its host.
func Hostname(env *Env) error {
	_, err := fmt.Fprintf(&env.Out, "%s", env.HostID)
	return err
}

// Estimator re-exports the latency kinds for configuration convenience.
var _ = latency.KindLast
