package mpd

import (
	"errors"
	"testing"
	"time"

	"p2pmpi/internal/core"
)

// TestSubmitFailoverReplicaSurvives: a host dies mid-run under the
// failure detector; with R=2 every rank keeps a live replica, so the
// job succeeds and the promotion is visible in the failover stats.
func TestSubmitFailoverReplicaSurvives(t *testing.T) {
	tb := newTestbed(t, 6, 0, 1)
	tb.boot(t)
	defer tb.close()

	var victim string
	res, err := tb.submit(t, JobSpec{
		Program: "spin", Args: []string{"30"},
		N: 2, R: 2, Strategy: core.Spread,
		Timeout:       2 * time.Minute,
		FailureDetect: 5 * time.Second,
		OnAllocated: func(a *core.Assignment) {
			for i, u := range a.U {
				if u > 0 {
					victim = a.Hosts[i].ID
					break
				}
			}
			// Strike mid-run: the processes sleep 30s, kill at 10s.
			tb.s.Go("killer", func() {
				tb.s.Sleep(10 * time.Second)
				tb.killHost(victim)
			})
		},
	})
	if err != nil {
		t.Fatalf("submit with a surviving replica per rank failed: %v", err)
	}
	if victim == "" {
		t.Fatal("no victim selected")
	}
	fo := res.Failover
	if fo.HostsLost != 1 {
		t.Fatalf("detector lost %d hosts, want 1 (%+v)", fo.HostsLost, fo)
	}
	if fo.Failovers != 1 || fo.RanksLost != 0 {
		t.Fatalf("failover stats %+v, want exactly one promoted rank, none lost", fo)
	}
	if fo.Probes == 0 {
		t.Fatal("detector issued no probes")
	}
	// Every rank delivered through at least one replica; the victim's
	// slot is marked with the detector's reason.
	perRank := map[int]int{}
	sawDetector := false
	for _, sr := range res.Results {
		if sr.OK {
			perRank[sr.Rank]++
		} else if sr.Err != "" && !sr.OK {
			sawDetector = true
		}
	}
	for rank := 0; rank < 2; rank++ {
		if perRank[rank] == 0 {
			t.Fatalf("rank %d has no surviving replica: %+v", rank, res.Results)
		}
	}
	if !sawDetector {
		t.Fatalf("victim slot not failed: %+v", res.Results)
	}
	// (No Dead(victim) assertion here: the periodic cache refresh may
	// legitimately have resurrected the entry already — the supernode
	// still lists the host until its TTL expires, the documented §4.1
	// revival rule. TestHostDiesBetweenAcquireAndLaunch checks the
	// eviction in a refresh-free window.)
	// Completion tracked the 30s run plus detection, not the 2m timeout.
	if res.Duration > time.Minute {
		t.Fatalf("duration %v: detector did not end the wait early", res.Duration)
	}
}

// TestSubmitRanksLostAbortsEarly: with R=1 a mid-run host failure kills
// its rank for good. The submission must fail with ErrRanksLost well
// before either the healthy processes' completion or the job timeout.
func TestSubmitRanksLostAbortsEarly(t *testing.T) {
	tb := newTestbed(t, 6, 0, 1)
	tb.boot(t)
	defer tb.close()

	var victim string
	res, err := tb.submit(t, JobSpec{
		Program: "spin", Args: []string{"60"},
		N: 2, R: 1, Strategy: core.Spread,
		Timeout:       5 * time.Minute,
		FailureDetect: 5 * time.Second,
		OnAllocated: func(a *core.Assignment) {
			for i, u := range a.U {
				if u > 0 {
					victim = a.Hosts[i].ID
					break
				}
			}
			tb.s.Go("killer", func() {
				tb.s.Sleep(10 * time.Second)
				tb.killHost(victim)
			})
		},
	})
	if !errors.Is(err, ErrRanksLost) {
		t.Fatalf("err = %v, want ErrRanksLost", err)
	}
	if res == nil {
		t.Fatal("failed submission should still carry its result for diagnostics")
	}
	if res.Failover.RanksLost != 1 {
		t.Fatalf("failover stats %+v, want one lost rank", res.Failover)
	}
	// Early abort: the healthy process runs 60s; detection needs ~20s.
	// Waiting past the healthy completion would mean the early-exit
	// path never engaged.
	if res.Duration >= 55*time.Second {
		t.Fatalf("duration %v: lost rank did not abort the wait early", res.Duration)
	}
}

// TestSubmitPassiveTimeoutStillTerminates: with the detector off, a
// silent host costs exactly the configured timeout — no more.
// Regression: the collection loop once spun forever in virtual time
// when the deadline landed on a zero-wait pop.
func TestSubmitPassiveTimeoutStillTerminates(t *testing.T) {
	tb := newTestbed(t, 6, 0, 1)
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "spin", Args: []string{"60"},
		N: 2, R: 1, Strategy: core.Spread,
		Timeout: 90 * time.Second, // no FailureDetect: paper semantics
		OnAllocated: func(a *core.Assignment) {
			var victim string
			for i, u := range a.U {
				if u > 0 {
					victim = a.Hosts[i].ID
					break
				}
			}
			tb.s.Go("killer", func() {
				tb.s.Sleep(10 * time.Second)
				tb.killHost(victim)
			})
		},
	})
	if err != nil {
		t.Fatalf("legacy passive path must not error: %v", err)
	}
	if res.Failures() == 0 {
		t.Fatal("dead host's slot reported OK")
	}
	if res.Duration < 85*time.Second || res.Duration > 120*time.Second {
		t.Fatalf("duration %v, want ~ the 90s timeout", res.Duration)
	}
}

// TestHostDiesBetweenAcquireAndLaunch: the host fails in the window
// between winning the reservation and receiving Prepare. The launch
// must fail cleanly (no hang), the dead host must be evicted from the
// cache, and an immediate re-book — the scheduler's retry path — must
// succeed on the remaining hosts. Exercised under -race in CI.
func TestHostDiesBetweenAcquireAndLaunch(t *testing.T) {
	tb := newTestbed(t, 6, 0, 1)
	tb.boot(t)
	defer tb.close()

	var victim string
	spec := JobSpec{
		Program: "hostname",
		N:       2, R: 2, Strategy: core.Spread,
		Timeout: time.Minute,
	}
	first := spec
	first.OnAllocated = func(a *core.Assignment) {
		for i, u := range a.U {
			if u > 0 {
				victim = a.Hosts[i].ID
				break
			}
		}
		tb.killHost(victim) // dies before Prepare reaches it
	}
	_, err := tb.submit(t, first)
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("err = %v, want ErrLaunchFailed", err)
	}
	if victim == "" {
		t.Fatal("no victim selected")
	}
	if !tb.front.Cache().Dead(victim) {
		t.Fatalf("victim %s not marked dead after silent Prepare", victim)
	}

	// The retry books around the corpse.
	res, err := tb.submit(t, spec)
	if err != nil {
		t.Fatalf("re-book after host death failed: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("re-booked job had %d failures: %+v", res.Failures(), res.Results)
	}
	for _, s := range res.Assignment.Hosts {
		for i, u := range res.Assignment.U {
			if u > 0 && res.Assignment.Hosts[i].ID == victim {
				t.Fatalf("re-book placed processes on the dead host %s", s.ID)
			}
		}
	}
}
