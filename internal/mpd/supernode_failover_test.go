package mpd

import (
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/mpi"
	"p2pmpi/internal/overlay"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/simnet"
	"p2pmpi/internal/vtime"
)

// TestSupernodeFailover: with the primary supernode dead, peers bootstrap
// through the configured fallback and jobs still run.
func TestSupernodeFailover(t *testing.T) {
	s := vtime.New()
	t.Cleanup(s.Shutdown)
	hostSite := map[string]string{
		"sn1": "east", "sn2": "east", "frontal": "east",
		"p1": "east", "p2": "east",
	}
	net := simnet.New(s, &simnet.StaticTopology{HostSite: hostSite, DefLat: time.Millisecond},
		simnet.Config{Seed: 13, NICBps: 1e9})

	// Only the fallback supernode actually runs.
	sn2 := overlay.NewSupernode(s, net.Node("sn2"), overlay.SupernodeConfig{Addr: "sn2:8800"})

	mk := func(id string, p int) *MPD {
		return New(s, net.Node(id), Config{
			Self: proto.PeerInfo{ID: id, Site: "east",
				MPDAddr: id + ":9000", RSAddr: id + ":9001"},
			P:    p,
			Seed: int64(len(id)),
			Shared: &Shared{
				SupernodeAddr:      "sn1:8800", // dead primary
				SupernodeFallbacks: []string{"sn2:8800"},
				Programs:           programs(),
				PingInterval:       5 * time.Second,
				ReserveTimeout:     time.Second,
			},
		})
	}
	front := mk("frontal", 0)
	peers := []*MPD{mk("p1", 2), mk("p2", 2)}

	var res *JobResult
	var err error
	s.Go("main", func() {
		defer func() {
			sn2.Close()
			front.Close()
			for _, p := range peers {
				p.Close()
			}
		}()
		if e := sn2.Start(); e != nil {
			err = e
			return
		}
		if e := front.Start(); e != nil {
			err = e
			return
		}
		for _, p := range peers {
			if e := p.Start(); e != nil {
				err = e
				return
			}
		}
		s.Sleep(20 * time.Second) // registration via fallback + pings
		res, err = front.Submit(JobSpec{
			Program: "hostname", N: 3, R: 1, Strategy: core.Spread,
			Timeout: time.Minute,
		})
	})
	s.Wait()
	if err != nil {
		t.Fatalf("job via fallback supernode: %v", err)
	}
	if res.Failures() != 0 || len(res.Results) != 3 {
		t.Fatalf("results: %+v", res.Results)
	}
}

// TestJobAlgorithmsReachProcesses: the JobSpec's collective-algorithm
// selection must arrive in every launched process's environment.
func TestJobAlgorithmsReachProcesses(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	want := mpi.Algorithms{
		Bcast:     mpi.BcastLinear,
		Allreduce: mpi.AllreduceReduceBcast,
		Alltoall:  mpi.AlltoallLinear,
	}
	seen := make(chan mpi.Algorithms, 4)
	for _, d := range append(tb.peers, tb.front) {
		d.cfg.Programs["algcheck"] = func(env *Env) error {
			seen <- env.algs
			return nil
		}
	}
	tb.boot(t)
	defer tb.close()

	res, err := tb.submit(t, JobSpec{
		Program: "algcheck", N: 2, R: 1, Strategy: core.Spread,
		Algorithms: want,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures: %+v", res.Results)
	}
	close(seen)
	count := 0
	for got := range seen {
		count++
		if got != want {
			t.Fatalf("process saw algorithms %+v, want %+v", got, want)
		}
	}
	if count != 2 {
		t.Fatalf("%d processes reported, want 2", count)
	}
}
