package mpd

import (
	"strings"
	"testing"
	"time"

	"p2pmpi/internal/core"
	"p2pmpi/internal/proto"
	"p2pmpi/internal/transport"
)

// prepareVia sends a raw Prepare to a peer's MPD and decodes the Ready.
func prepareVia(t *testing.T, tb *testbed, target *MPD, p *proto.Prepare) *proto.Ready {
	t.Helper()
	reply, err := transport.RequestReply(tb.net.Node("frontal"), target.cfg.Self.MPDAddr,
		transport.Message{Payload: proto.MustMarshal(p)}, time.Second)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	_, msg, err := proto.Unmarshal(reply.Payload)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	rdy, ok := msg.(*proto.Ready)
	if !ok {
		t.Fatalf("reply = %+v", msg)
	}
	return rdy
}

func TestPrepareRejectsUnknownKey(t *testing.T) {
	tb := newTestbed(t, 1, 0, 2)
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]

	var rdy *proto.Ready
	tb.s.Go("probe", func() {
		rdy = prepareVia(t, tb, peer, &proto.Prepare{
			Key: "forged-key", JobID: "j", Program: "hostname", N: 1, R: 1,
			Table: []proto.Slot{{Rank: 0, HostID: peer.cfg.Self.ID,
				Addr: peer.cfg.Self.ID + ":41000"}},
			SubmitterMPD: "frontal:9000",
		})
	})
	tb.s.RunFor(5 * time.Second)
	if rdy == nil || rdy.OK {
		t.Fatalf("forged key accepted: %+v", rdy)
	}
	if !strings.Contains(rdy.Reason, "key") {
		t.Fatalf("reason = %q", rdy.Reason)
	}
}

func TestPrepareRejectsUnknownProgram(t *testing.T) {
	tb := newTestbed(t, 1, 0, 2)
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]

	var rdy *proto.Ready
	tb.s.Go("probe", func() {
		// Hold a real reservation first so the key is valid.
		reply, err := transport.RequestReply(tb.net.Node("frontal"), peer.cfg.Self.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Reserve{
				Key: "k1", JobID: "j", Submitter: tb.front.cfg.Self, N: 1,
			})}, time.Second)
		if err != nil {
			t.Errorf("reserve: %v", err)
			return
		}
		if _, msg, _ := proto.Unmarshal(reply.Payload); msg != nil {
			if _, ok := msg.(*proto.ReserveOK); !ok {
				t.Errorf("reserve reply %+v", msg)
				return
			}
		}
		rdy = prepareVia(t, tb, peer, &proto.Prepare{
			Key: "k1", JobID: "j", Program: "not-a-program", N: 1, R: 1,
			Table: []proto.Slot{{Rank: 0, HostID: peer.cfg.Self.ID,
				Addr: peer.cfg.Self.ID + ":41000"}},
			SubmitterMPD: "frontal:9000",
		})
	})
	tb.s.RunFor(5 * time.Second)
	if rdy == nil || rdy.OK {
		t.Fatalf("unknown program accepted: %+v", rdy)
	}
	if !strings.Contains(rdy.Reason, "registry") {
		t.Fatalf("reason = %q", rdy.Reason)
	}
}

func TestPrepareEnforcesGatekeeperP(t *testing.T) {
	tb := newTestbed(t, 1, 0, 2) // P=2
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]

	var rdy *proto.Ready
	tb.s.Go("probe", func() {
		transport.RequestReply(tb.net.Node("frontal"), peer.cfg.Self.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Reserve{
				Key: "k2", JobID: "j", Submitter: tb.front.cfg.Self, N: 3,
			})}, time.Second)
		// A malicious submitter maps 3 slots onto a P=2 host.
		table := []proto.Slot{
			{Rank: 0, Global: 0, HostID: peer.cfg.Self.ID, Addr: peer.cfg.Self.ID + ":41000"},
			{Rank: 1, Global: 1, HostID: peer.cfg.Self.ID, Addr: peer.cfg.Self.ID + ":41001"},
			{Rank: 2, Global: 2, HostID: peer.cfg.Self.ID, Addr: peer.cfg.Self.ID + ":41002"},
		}
		rdy = prepareVia(t, tb, peer, &proto.Prepare{
			Key: "k2", JobID: "j", Program: "hostname", N: 3, R: 1,
			Table: table, SubmitterMPD: "frontal:9000",
		})
	})
	tb.s.RunFor(5 * time.Second)
	if rdy == nil || rdy.OK {
		t.Fatalf("gatekeeper accepted 3 slots on a P=2 host: %+v", rdy)
	}
	if !strings.Contains(rdy.Reason, "gatekeeper") {
		t.Fatalf("reason = %q", rdy.Reason)
	}
}

func TestPrepareRejectsForeignTable(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]
	other := tb.peers[1]

	var rdy *proto.Ready
	tb.s.Go("probe", func() {
		transport.RequestReply(tb.net.Node("frontal"), peer.cfg.Self.RSAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Reserve{
				Key: "k3", JobID: "j", Submitter: tb.front.cfg.Self, N: 1,
			})}, time.Second)
		// The table names only the *other* host: nothing for this peer.
		rdy = prepareVia(t, tb, peer, &proto.Prepare{
			Key: "k3", JobID: "j", Program: "hostname", N: 1, R: 1,
			Table: []proto.Slot{{Rank: 0, HostID: other.cfg.Self.ID,
				Addr: other.cfg.Self.ID + ":41000"}},
			SubmitterMPD: "frontal:9000",
		})
	})
	tb.s.RunFor(5 * time.Second)
	if rdy == nil || rdy.OK {
		t.Fatalf("prepare with no local slots accepted: %+v", rdy)
	}
}

func TestStartUnknownKeyIsHarmless(t *testing.T) {
	tb := newTestbed(t, 1, 0, 2)
	tb.boot(t)
	defer tb.close()
	peer := tb.peers[0]

	ok := false
	tb.s.Go("probe", func() {
		reply, err := transport.RequestReply(tb.net.Node("frontal"), peer.cfg.Self.MPDAddr,
			transport.Message{Payload: proto.MustMarshal(&proto.Start{Key: "ghost"})}, time.Second)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		_, msg, _ := proto.Unmarshal(reply.Payload)
		_, ok = msg.(*proto.StartAck)
	})
	tb.s.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("no ack for unknown-key start")
	}
	if peer.Stats().JobsHosted != 0 {
		t.Fatal("ghost start created a job")
	}
}

func TestJobDoneForUnknownJobDropped(t *testing.T) {
	tb := newTestbed(t, 1, 0, 2)
	tb.boot(t)
	defer tb.close()

	tb.s.Go("probe", func() {
		c, err := tb.net.Node("frontal").Dial(tb.front.cfg.Self.MPDAddr)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(transport.Message{Payload: proto.MustMarshal(&proto.JobDone{
			JobID: "never-submitted", HostID: "x",
		})})
		c.Close()
	})
	tb.s.RunFor(5 * time.Second) // must not wedge or panic
}

func TestSequentialJobsReusePorts(t *testing.T) {
	tb := newTestbed(t, 3, 0, 2)
	tb.boot(t)
	defer tb.close()
	for i := 0; i < 3; i++ {
		res, err := tb.submit(t, JobSpec{
			Program: "echorank", N: 4, R: 1, Strategy: core.Spread,
		})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Failures() != 0 {
			t.Fatalf("job %d failures: %+v", i, res.Results)
		}
	}
}

func TestMixedStrategySubmission(t *testing.T) {
	tb := newTestbed(t, 4, 4, 2)
	tb.boot(t)
	defer tb.close()
	res, err := tb.submit(t, JobSpec{
		Program: "hostname", N: 8, R: 1, Strategy: core.Mixed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Mixed fills hosts (2 procs each) but round-robins the two sites.
	sites := res.Assignment.ProcsBySite()
	if sites["near"] != 4 || sites["far"] != 4 {
		t.Fatalf("mixed site split = %v, want 4/4", sites)
	}
	for i, u := range res.Assignment.U {
		if u != 0 && u != 2 {
			t.Fatalf("mixed host %d has %d procs", i, u)
		}
	}
}

func TestHostOf(t *testing.T) {
	if hostOf("a.b.c:123") != "a.b.c" || hostOf("plain") != "plain" {
		t.Fatal("hostOf broken")
	}
}

func TestStatsCounters(t *testing.T) {
	tb := newTestbed(t, 2, 0, 2)
	tb.boot(t)
	defer tb.close()
	if _, err := tb.submit(t, JobSpec{Program: "hostname", N: 2, R: 1, Strategy: core.Spread}); err != nil {
		t.Fatal(err)
	}
	if tb.front.Stats().JobsSubmitted != 1 {
		t.Fatalf("submitted = %d", tb.front.Stats().JobsSubmitted)
	}
	hosted := int64(0)
	for _, p := range tb.peers {
		hosted += p.Stats().JobsHosted
	}
	if hosted == 0 {
		t.Fatal("no peer hosted the job")
	}
	if tb.front.Stats().PingsSent == 0 || tb.peers[0].Stats().PingsAnswered == 0 {
		t.Fatal("ping counters flat")
	}
}
